// TPC-H Q3-style relational query, with the input either on HDFS-like
// storage or inside the Postgres-like DBMS. Shows cross-platform relational
// planning: selections/projections pushed into the DBMS, the join shipped to
// a parallel engine (the paper's Fig. 13 insight), and a real execution of
// the Fig. 3 running example.
//
//   ./build/examples/tpch_q3

#include <cstdio>

#include "core/optimizer.h"
#include "exec/executor.h"
#include "plan/cardinality.h"
#include "tdgen/tdgen.h"
#include "workloads/datagen.h"
#include "workloads/queries.h"

using namespace robopt;

int main() {
  PlatformRegistry registry = PlatformRegistry::Default(4);  // + Postgres.
  FeatureSchema schema(&registry);
  VirtualCost cost(&registry);
  Executor executor(&registry, &cost);
  RegisterWorkloadKernels();

  std::printf("Training the runtime model (4 platforms)...\n");
  TdgenOptions options;
  options.plans_per_shape = 10;
  options.max_operators = 16;
  auto model = TrainRuntimeModel(&registry, &schema, &executor, options);
  if (!model.ok()) return 1;
  MlCostOracle oracle(model->get());
  RoboptOptimizer optimizer(&registry, &schema, &oracle);

  // TPC-H Q3 over HDFS-like text files.
  {
    LogicalPlan q3 = MakeTpchQ3Plan(/*input_gb=*/10);
    const Cardinalities cards = CardinalityEstimator(&q3).Estimate();
    auto result = optimizer.Optimize(q3, &cards);
    if (!result.ok()) return 1;
    std::printf("\nTPC-H Q3, 10GB on files: predicted %.1f s\n%s",
                cost.PlanCost(result->plan, cards).total_s,
                result->plan.DebugString().c_str());
  }

  // The Fig. 3 running example with tables in Postgres.
  {
    LogicalPlan join = MakeJoinPlan(/*input_gb=*/10, /*table_sources=*/true);
    const Cardinalities cards = CardinalityEstimator(&join).Estimate();
    auto result = optimizer.Optimize(join, &cards);
    if (!result.ok()) return 1;
    std::printf("\nJoin query, 10GB in Postgres: true runtime %.1f s\n%s",
                cost.PlanCost(result->plan, cards).total_s,
                result->plan.DebugString().c_str());
  }

  // Execute the running example for real on sampled tables.
  {
    LogicalPlan join = MakeJoinPlan(/*input_gb=*/1e-6);
    auto result = optimizer.Optimize(join);
    if (!result.ok()) return 1;
    DataCatalog catalog;
    const auto sources = join.SourceIds();
    catalog.Bind(sources[0], GenerateTransactions(5000, 5000, 1, 200));
    catalog.Bind(sources[1], GenerateCustomers(200, 200, 2));
    auto run = executor.Execute(result->plan, catalog);
    if (!run.ok()) {
      std::fprintf(stderr, "execution failed: %s\n",
                   run.status().ToString().c_str());
      return 1;
    }
    std::printf("\nReal execution of the Fig. 3 join: %zu grouped customer "
                "rows, e.g. customer %lld spent %.2f\n",
                run->output.rows.size(),
                run->output.rows.empty()
                    ? 0LL
                    : static_cast<long long>(run->output.rows[0].key),
                run->output.rows.empty() ? 0.0 : run->output.rows[0].num);
  }
  return 0;
}
