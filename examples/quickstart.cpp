// Quickstart: build a logical plan, train a runtime model with TDGEN,
// optimize the plan with Robopt, and execute it on the simulated
// multi-platform cluster.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/optimizer.h"
#include "exec/executor.h"
#include "tdgen/tdgen.h"
#include "workloads/datagen.h"
#include "workloads/queries.h"

using namespace robopt;

int main() {
  // 1. The cross-platform setting: a Java-like single-node engine, a
  //    Spark-like and a Flink-like cluster engine (the paper's default trio).
  PlatformRegistry registry = PlatformRegistry::Default(3);
  FeatureSchema schema(&registry);

  // 2. The simulated cluster: kernels really execute, a virtual clock
  //    charges platform-dependent time.
  VirtualCost cost(&registry);
  Executor executor(&registry, &cost);
  RegisterWorkloadKernels();

  // 3. Train the runtime model from synthetic execution logs (TDGEN).
  //    A small configuration keeps this example under ~half a minute.
  std::printf("Training the runtime model with TDGEN...\n");
  TdgenOptions tdgen_options;
  tdgen_options.plans_per_shape = 6;
  tdgen_options.max_operators = 12;
  tdgen_options.max_structures_per_plan = 24;
  RegressionMetrics holdout;
  auto model = TrainRuntimeModel(&registry, &schema, &executor,
                                 tdgen_options, &holdout);
  if (!model.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }
  std::printf("  holdout: R2=%.3f  Spearman=%.3f\n", holdout.r2,
              holdout.spearman);

  // 4. A query: WordCount over ~300 MB of text (Table II's first row).
  LogicalPlan plan = MakeWordCountPlan(/*input_gb=*/0.3);
  std::printf("\nLogical plan:\n%s", plan.DebugString().c_str());

  // 5. Optimize: Robopt enumerates execution plans entirely over plan
  //    vectors, pruning with the ML model.
  MlCostOracle oracle(model->get());
  RoboptOptimizer optimizer(&registry, &schema, &oracle);
  auto result = optimizer.Optimize(plan);
  if (!result.ok()) {
    std::fprintf(stderr, "optimization failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("\nOptimized in %.2f ms (%zu plan vectors explored, %zu sent "
              "to the model)\n",
              result->latency_ms, result->stats.vectors_created,
              result->stats.oracle_rows);
  std::printf("Predicted runtime: %.2f s\n%s",
              result->predicted_runtime_s,
              result->plan.DebugString().c_str());

  // 6. Execute the chosen plan on real (sampled) data.
  DataCatalog catalog;
  catalog.Bind(plan.SourceIds()[0],
               GenerateTextLines(/*virtual_rows=*/3.75e6, /*cap=*/20000,
                                 /*seed=*/42));
  auto run = executor.Execute(result->plan, catalog);
  if (!run.ok()) {
    std::fprintf(stderr, "execution failed: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }
  std::printf("\nExecuted: %zu distinct words in the sample, virtual "
              "runtime %.2f s\n",
              run->output.rows.size(), run->cost.total_s);
  return 0;
}
