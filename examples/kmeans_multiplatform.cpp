// K-means with a loop-carried broadcast — the scenario where mixing
// platforms beats any single platform (the paper's Fig. 12(a)). The example
// also *really executes* the chosen plan: the loop converges on actual
// Gaussian-cluster data while the virtual clock charges multi-platform time.
//
//   ./build/examples/kmeans_multiplatform

#include <cstdio>

#include "core/optimizer.h"
#include "exec/executor.h"
#include "plan/cardinality.h"
#include "tdgen/tdgen.h"
#include "workloads/datagen.h"
#include "workloads/queries.h"

using namespace robopt;

int main() {
  PlatformRegistry registry = PlatformRegistry::Default(3);
  FeatureSchema schema(&registry);
  VirtualCost cost(&registry);
  Executor executor(&registry, &cost);
  RegisterWorkloadKernels();

  std::printf("Training the runtime model...\n");
  TdgenOptions options;
  options.plans_per_shape = 10;
  options.max_operators = 14;
  auto model = TrainRuntimeModel(&registry, &schema, &executor, options);
  if (!model.ok()) return 1;
  MlCostOracle oracle(model->get());
  RoboptOptimizer optimizer(&registry, &schema, &oracle);

  LogicalPlan plan = MakeKmeansPlan(/*input_mb=*/361, /*num_centroids=*/3,
                                    /*iterations=*/12);
  const Cardinalities cards = CardinalityEstimator(&plan).Estimate();

  // Multi-platform optimization.
  auto multi = optimizer.Optimize(plan, &cards);
  // Best single platform, for comparison.
  OptimizeOptions single_opt;
  single_opt.single_platform = true;
  auto single = optimizer.Optimize(plan, &cards, single_opt);
  if (!multi.ok() || !single.ok()) return 1;

  const double multi_s = cost.PlanCost(multi->plan, cards).total_s;
  const double single_s = cost.PlanCost(single->plan, cards).total_s;
  std::printf("\nBest single platform (%s): %.1f s\n",
              registry.platform(single->chosen_platform).name.c_str(),
              single_s);
  std::printf("Robopt multi-platform plan:  %.1f s  (%.2fx)\n", multi_s,
              single_s / multi_s);
  std::printf("%s", multi->plan.DebugString().c_str());

  // Execute the multi-platform plan for real on sampled points.
  DataCatalog catalog;
  catalog.Bind(plan.SourceIds()[0],
               GeneratePoints(/*virtual_rows=*/1e7, /*cap=*/3000, /*seed=*/7,
                              /*dim=*/2, /*clusters=*/3));
  for (const LogicalOperator& op : plan.operators()) {
    if (op.kind == LogicalOpKind::kCollectionSource) {
      catalog.Bind(op.id, MakeCentroids(3, 2, /*seed=*/8));
    }
  }
  auto run = executor.Execute(multi->plan, catalog);
  if (!run.ok()) {
    std::fprintf(stderr, "execution failed: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }
  std::printf("\nConverged centroids (from real execution):\n");
  for (const Record& centroid : run->output.rows) {
    std::printf("  cluster %lld: (", static_cast<long long>(centroid.key));
    for (size_t d = 0; d < centroid.vec.size(); ++d) {
      std::printf("%s%.2f", d ? ", " : "", centroid.vec[d]);
    }
    std::printf(")\n");
  }
  std::printf("Virtual runtime of the real run: %.1f s\n",
              run->cost.total_s);
  return 0;
}
