// TDGEN end to end: generate synthetic plans, execute a subset of jobs on
// the simulated cluster, impute the rest by piecewise polynomial
// interpolation, train the random forest, evaluate it, and save it to disk
// for reuse (the bench suite loads such files).
//
//   ./build/examples/train_model [output.forest]

#include <cstdio>

#include "tdgen/tdgen.h"
#include "workloads/queries.h"

using namespace robopt;

int main(int argc, char** argv) {
  const std::string output = argc > 1 ? argv[1] : "robopt_trained.forest";

  PlatformRegistry registry = PlatformRegistry::Default(3);
  FeatureSchema schema(&registry);
  VirtualCost cost(&registry);
  Executor executor(&registry, &cost);
  RegisterWorkloadKernels();

  TdgenOptions options;
  options.shapes = {"pipeline", "juncture", "loop"};
  options.plans_per_shape = 12;
  options.max_operators = 20;
  options.max_structures_per_plan = 32;
  std::printf("TDGEN: shapes={pipeline,juncture,loop}, up to %d operators, "
              "%d plans per shape\n",
              options.max_operators, options.plans_per_shape);

  RegressionMetrics holdout;
  TdgenReport report;
  auto model = TrainRuntimeModel(&registry, &schema, &executor, options,
                                 &holdout, &report);
  if (!model.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }

  std::printf("\nGeneration report:\n");
  std::printf("  logical plans    %zu\n", report.logical_plans);
  std::printf("  plan structures  %zu\n", report.structures);
  std::printf("  jobs total       %zu\n", report.jobs_total);
  std::printf("  jobs executed    %zu  (J_r)\n", report.jobs_executed);
  std::printf("  jobs imputed     %zu  (J_i, interpolated)\n",
              report.jobs_imputed);
  std::printf("  jobs failed      %zu  (out-of-memory, penalty label)\n",
              report.jobs_failed);
  std::printf("\nHoldout metrics (10%% split):\n");
  std::printf("  R2        %.3f\n", holdout.r2);
  std::printf("  Spearman  %.3f   <- ordering quality, what the optimizer "
              "needs\n",
              holdout.spearman);
  std::printf("  MAE       %.2f s\n", holdout.mae);

  const Status saved = (*model)->Save(output);
  if (!saved.ok()) {
    std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("\nModel saved to %s (%zu trees)\n", output.c_str(),
              (*model)->trees().size());
  return 0;
}
