// WordCount across input sizes: shows the single-platform crossover the
// paper's Fig. 11(a) is built on — a low-latency single-node engine wins on
// small inputs, a parallel engine wins at scale, and the single node
// eventually runs out of memory. Robopt rides the crossover without any
// tuned cost model.
//
//   ./build/examples/wordcount

#include <cstdio>

#include "core/optimizer.h"
#include "exec/executor.h"
#include "plan/cardinality.h"
#include "tdgen/tdgen.h"
#include "workloads/queries.h"

using namespace robopt;

int main() {
  PlatformRegistry registry = PlatformRegistry::Default(3);
  FeatureSchema schema(&registry);
  VirtualCost cost(&registry);
  Executor executor(&registry, &cost);
  RegisterWorkloadKernels();

  std::printf("Training the runtime model...\n");
  TdgenOptions options;
  options.plans_per_shape = 8;
  options.max_operators = 12;
  auto model = TrainRuntimeModel(&registry, &schema, &executor, options);
  if (!model.ok()) return 1;
  MlCostOracle oracle(model->get());
  RoboptOptimizer optimizer(&registry, &schema, &oracle);

  std::printf("\n%-10s %10s %10s %10s   %s\n", "size", "Java(s)", "Spark(s)",
              "Flink(s)", "Robopt picks");
  for (double gb : {0.01, 0.1, 1.0, 10.0, 100.0}) {
    LogicalPlan plan = MakeWordCountPlan(gb);
    const Cardinalities cards = CardinalityEstimator(&plan).Estimate();

    std::printf("%-9.2fGB", gb);
    for (PlatformId p = 0; p < registry.num_platforms(); ++p) {
      ExecutionPlan exec(&plan, &registry);
      for (const LogicalOperator& op : plan.operators()) {
        const auto& alts = registry.AlternativesFor(op.kind);
        for (size_t a = 0; a < alts.size(); ++a) {
          if (alts[a].platform == p && alts[a].variant == 0) {
            exec.Assign(op.id, static_cast<int>(a));
          }
        }
      }
      const double s = cost.PlanCost(exec, cards).total_s;
      if (std::isfinite(s)) {
        std::printf(" %10.2f", s);
      } else {
        std::printf(" %10s", "OOM");
      }
    }

    OptimizeOptions opt;
    opt.single_platform = true;
    auto result = optimizer.Optimize(plan, &cards, opt);
    if (result.ok()) {
      std::printf("   %s\n",
                  registry.platform(result->chosen_platform).name.c_str());
    } else {
      std::printf("   (failed: %s)\n",
                  result.status().ToString().c_str());
    }
  }
  return 0;
}
