#include "platform/registry.h"

#include <gtest/gtest.h>

namespace robopt {
namespace {

TEST(RegistryTest, DefaultThreePlatforms) {
  PlatformRegistry registry = PlatformRegistry::Default(3);
  ASSERT_EQ(registry.num_platforms(), 3);
  EXPECT_EQ(registry.platform(0).name, "Java");
  EXPECT_EQ(registry.platform(1).name, "Spark");
  EXPECT_EQ(registry.platform(2).name, "Flink");
  EXPECT_EQ(registry.platform(0).cls, PlatformClass::kSingleNode);
  EXPECT_EQ(registry.platform(1).cls, PlatformClass::kDistributed);
}

TEST(RegistryTest, DefaultFiveIncludesPostgresAndGraphX) {
  PlatformRegistry registry = PlatformRegistry::Default(5);
  ASSERT_EQ(registry.num_platforms(), 5);
  EXPECT_EQ(registry.platform(3).name, "Postgres");
  EXPECT_EQ(registry.platform(3).cls, PlatformClass::kRelational);
  EXPECT_EQ(registry.platform(4).name, "GraphX");
}

TEST(RegistryTest, FindPlatformByName) {
  PlatformRegistry registry = PlatformRegistry::Default(3);
  auto spark = registry.FindPlatform("Spark");
  ASSERT_TRUE(spark.ok());
  EXPECT_EQ(*spark, 1);
  EXPECT_FALSE(registry.FindPlatform("Hive").ok());
}

TEST(RegistryTest, MapHasOneAlternativePerEnginePlatform) {
  PlatformRegistry registry = PlatformRegistry::Default(3);
  const auto& alts = registry.AlternativesFor(LogicalOpKind::kMap);
  ASSERT_EQ(alts.size(), 3u);
  EXPECT_EQ(alts[0].name, "JavaMap");
  EXPECT_EQ(alts[1].name, "SparkMap");
  EXPECT_EQ(alts[2].name, "FlinkMap");
}

TEST(RegistryTest, SparkSampleHasTwoVariants) {
  PlatformRegistry registry = PlatformRegistry::Default(3);
  const auto& alts = registry.AlternativesFor(LogicalOpKind::kSample);
  // Java default, Spark stateful + cache variant, Flink default.
  ASSERT_EQ(alts.size(), 4u);
  int spark_variants = 0;
  for (const ExecutionAlt& alt : alts) {
    if (registry.platform(alt.platform).name == "Spark") ++spark_variants;
  }
  EXPECT_EQ(spark_variants, 2);
}

TEST(RegistryTest, TableSourceOnlyOnPostgres) {
  PlatformRegistry registry = PlatformRegistry::Default(4);
  const auto& alts = registry.AlternativesFor(LogicalOpKind::kTableSource);
  ASSERT_EQ(alts.size(), 1u);
  EXPECT_EQ(registry.platform(alts[0].platform).name, "Postgres");
}

TEST(RegistryTest, PostgresCannotRunFlatMapButCanFilter) {
  PlatformRegistry registry = PlatformRegistry::Default(4);
  const Platform& pg = registry.platform(3);
  EXPECT_FALSE(pg.Supports(LogicalOpKind::kFlatMap));
  EXPECT_TRUE(pg.Supports(LogicalOpKind::kFilter));
  EXPECT_TRUE(pg.Supports(LogicalOpKind::kJoin));
  EXPECT_FALSE(pg.Supports(LogicalOpKind::kLoopBegin));
}

TEST(RegistryTest, CollectionSourceIsJavaOnly) {
  PlatformRegistry registry = PlatformRegistry::Default(3);
  const auto& alts =
      registry.AlternativesFor(LogicalOpKind::kCollectionSource);
  ASSERT_EQ(alts.size(), 1u);
  EXPECT_EQ(registry.platform(alts[0].platform).name, "Java");
}

TEST(RegistryTest, SyntheticRegistrySupportsEverythingEverywhere) {
  for (int k = 2; k <= 5; ++k) {
    PlatformRegistry registry = PlatformRegistry::Synthetic(k);
    ASSERT_EQ(registry.num_platforms(), k);
    for (int kind = 0; kind < kNumLogicalOpKinds; ++kind) {
      EXPECT_EQ(registry.AlternativesFor(static_cast<LogicalOpKind>(kind))
                    .size(),
                static_cast<size_t>(k));
    }
  }
}

TEST(RegistryTest, MaxAlternativesCoversVariants) {
  PlatformRegistry registry = PlatformRegistry::Default(3);
  EXPECT_EQ(registry.MaxAlternatives(), 4);  // Sample: 3 platforms + 1.
}

TEST(RegistryTest, CapabilityMaskHelpers) {
  const uint32_t mask =
      CapabilityMask({LogicalOpKind::kMap, LogicalOpKind::kFilter});
  Platform platform;
  platform.capabilities = mask;
  EXPECT_TRUE(platform.Supports(LogicalOpKind::kMap));
  EXPECT_TRUE(platform.Supports(LogicalOpKind::kFilter));
  EXPECT_FALSE(platform.Supports(LogicalOpKind::kJoin));
}

}  // namespace
}  // namespace robopt
