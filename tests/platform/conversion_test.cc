#include "platform/conversion.h"

#include <gtest/gtest.h>

namespace robopt {
namespace {

TEST(ConversionTest, DistributedToSingleNodeIsCollect) {
  EXPECT_EQ(ConversionFor(PlatformClass::kDistributed,
                          PlatformClass::kSingleNode),
            ConversionKind::kCollect);
}

TEST(ConversionTest, SingleNodeToDistributedIsDistribute) {
  EXPECT_EQ(ConversionFor(PlatformClass::kSingleNode,
                          PlatformClass::kDistributed),
            ConversionKind::kDistribute);
}

TEST(ConversionTest, DistributedPairIsExchange) {
  EXPECT_EQ(ConversionFor(PlatformClass::kDistributed,
                          PlatformClass::kDistributed),
            ConversionKind::kExchange);
}

TEST(ConversionTest, RelationalSourceIsExport) {
  EXPECT_EQ(ConversionFor(PlatformClass::kRelational,
                          PlatformClass::kDistributed),
            ConversionKind::kExport);
  EXPECT_EQ(ConversionFor(PlatformClass::kRelational,
                          PlatformClass::kSingleNode),
            ConversionKind::kExport);
}

TEST(ConversionTest, RelationalTargetIsIngest) {
  EXPECT_EQ(ConversionFor(PlatformClass::kDistributed,
                          PlatformClass::kRelational),
            ConversionKind::kIngest);
}

TEST(ConversionTest, NamesAreStable) {
  EXPECT_EQ(ToString(ConversionKind::kCollect), "Collect");
  EXPECT_EQ(ToString(ConversionKind::kDistribute), "Distribute");
  EXPECT_EQ(ToString(ConversionKind::kExchange), "Exchange");
  EXPECT_EQ(ToString(ConversionKind::kExport), "Export");
  EXPECT_EQ(ToString(ConversionKind::kIngest), "Ingest");
}

}  // namespace
}  // namespace robopt
