#include "platform/dot.h"

#include <gtest/gtest.h>

#include "workloads/queries.h"

namespace robopt {
namespace {

TEST(DotTest, LogicalPlanRendersNodesAndEdges) {
  LogicalPlan plan = MakeJoinPlan(1.0);
  const std::string dot = ToDot(plan);
  EXPECT_NE(dot.find("digraph logical_plan"), std::string::npos);
  EXPECT_NE(dot.find("Join"), std::string::npos);
  // 9 operators, 8 data edges.
  size_t edges = 0;
  for (size_t pos = dot.find(" -> "); pos != std::string::npos;
       pos = dot.find(" -> ", pos + 1)) {
    ++edges;
  }
  EXPECT_EQ(edges, 8u);
}

TEST(DotTest, BroadcastEdgesAreDashed) {
  LogicalPlan plan = MakeKmeansPlan(10, 3, 5);
  const std::string dot = ToDot(plan);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);  // Loop ops.
}

TEST(DotTest, ExecutionPlanShowsConversionsAsDiamonds) {
  PlatformRegistry registry = PlatformRegistry::Default(2);
  LogicalPlan plan = MakeWordCountPlan(0.1);
  ExecutionPlan exec(&plan, &registry);
  // Spark plan with a Java sink -> one Collect conversion.
  for (const LogicalOperator& op : plan.operators()) {
    const auto& alts = registry.AlternativesFor(op.kind);
    const PlatformId want = IsSink(op.kind) ? 0 : 1;
    for (size_t a = 0; a < alts.size(); ++a) {
      if (alts[a].platform == want && alts[a].variant == 0) {
        exec.Assign(op.id, static_cast<int>(a));
      }
    }
  }
  const std::string dot = ToDot(exec);
  EXPECT_NE(dot.find("digraph execution_plan"), std::string::npos);
  EXPECT_NE(dot.find("shape=diamond"), std::string::npos);
  EXPECT_NE(dot.find("SparkCollect"), std::string::npos);
  EXPECT_NE(dot.find("SparkMap"), std::string::npos);
}

TEST(DotTest, UnassignedOperatorsRenderWhite) {
  PlatformRegistry registry = PlatformRegistry::Default(2);
  LogicalPlan plan = MakeWordCountPlan(0.1);
  ExecutionPlan exec(&plan, &registry);
  const std::string dot = ToDot(exec);
  EXPECT_NE(dot.find("fillcolor=white"), std::string::npos);
}

}  // namespace
}  // namespace robopt
