#include "platform/execution_plan.h"

#include <gtest/gtest.h>

#include "workloads/queries.h"

namespace robopt {
namespace {

class ExecutionPlanTest : public ::testing::Test {
 protected:
  ExecutionPlanTest()
      : registry_(PlatformRegistry::Default(3)), plan_(MakeJoinPlan(1.0)) {}

  /// Assigns every operator to the default alternative on `platform`.
  ExecutionPlan AllOn(PlatformId platform) {
    ExecutionPlan exec(&plan_, &registry_);
    for (const LogicalOperator& op : plan_.operators()) {
      const auto& alts = registry_.AlternativesFor(op.kind);
      for (size_t a = 0; a < alts.size(); ++a) {
        if (alts[a].platform == platform && alts[a].variant == 0) {
          exec.Assign(op.id, static_cast<int>(a));
          break;
        }
      }
    }
    return exec;
  }

  PlatformRegistry registry_;
  LogicalPlan plan_;
};

TEST_F(ExecutionPlanTest, SinglePlatformPlanHasNoConversions) {
  ExecutionPlan exec = AllOn(1);  // Spark.
  ASSERT_TRUE(exec.Validate().ok());
  EXPECT_TRUE(exec.Conversions().empty());
  EXPECT_EQ(exec.NumPlatformSwitches(), 0);
  EXPECT_EQ(exec.PlatformsUsed(), std::vector<PlatformId>{1});
}

TEST_F(ExecutionPlanTest, MixedPlanProducesConversions) {
  ExecutionPlan exec = AllOn(1);
  // Move the sink to Java: one Spark -> Java edge appears.
  const OperatorId sink = plan_.SinkIds()[0];
  const auto& alts =
      registry_.AlternativesFor(plan_.op(sink).kind);
  for (size_t a = 0; a < alts.size(); ++a) {
    if (registry_.platform(alts[a].platform).name == "Java") {
      exec.Assign(sink, static_cast<int>(a));
    }
  }
  const auto conversions = exec.Conversions();
  ASSERT_EQ(conversions.size(), 1u);
  EXPECT_EQ(conversions[0].kind, ConversionKind::kCollect);
  EXPECT_EQ(conversions[0].to_op, sink);
  EXPECT_EQ(exec.NumPlatformSwitches(), 1);
  EXPECT_EQ(exec.PlatformsUsed().size(), 2u);
}

TEST_F(ExecutionPlanTest, UnassignedPlanFailsValidation) {
  ExecutionPlan exec(&plan_, &registry_);
  EXPECT_FALSE(exec.Validate().ok());
  EXPECT_FALSE(exec.IsAssigned(0));
}

TEST_F(ExecutionPlanTest, AltAccessorsReturnChosenAlternative) {
  ExecutionPlan exec = AllOn(0);  // Java.
  for (const LogicalOperator& op : plan_.operators()) {
    ASSERT_TRUE(exec.IsAssigned(op.id));
    EXPECT_EQ(exec.PlatformOf(op.id), 0);
    EXPECT_EQ(exec.alt(op.id).variant, 0);
  }
}

TEST_F(ExecutionPlanTest, DebugStringShowsAssignmentsAndConversions) {
  ExecutionPlan exec = AllOn(1);
  const OperatorId sink = plan_.SinkIds()[0];
  const auto& alts = registry_.AlternativesFor(plan_.op(sink).kind);
  for (size_t a = 0; a < alts.size(); ++a) {
    if (registry_.platform(alts[a].platform).name == "Java") {
      exec.Assign(sink, static_cast<int>(a));
    }
  }
  const std::string dump = exec.DebugString();
  EXPECT_NE(dump.find("SparkJoin"), std::string::npos);
  EXPECT_NE(dump.find("Collect"), std::string::npos);
}

TEST_F(ExecutionPlanTest, BroadcastEdgesYieldConversions) {
  LogicalPlan kmeans = MakeKmeansPlan(10, 5, 3);
  ExecutionPlan exec(&kmeans, &registry_);
  // Everything on Spark except the broadcast, which goes to Java.
  for (const LogicalOperator& op : kmeans.operators()) {
    const auto& alts = registry_.AlternativesFor(op.kind);
    int chosen = -1;
    for (size_t a = 0; a < alts.size(); ++a) {
      const bool java = registry_.platform(alts[a].platform).name == "Java";
      const bool want_java = op.kind == LogicalOpKind::kBroadcast ||
                             op.kind == LogicalOpKind::kCollectionSource;
      if (alts[a].variant == 0 && java == want_java) {
        chosen = static_cast<int>(a);
        break;
      }
    }
    ASSERT_GE(chosen, 0) << op.name;
    exec.Assign(op.id, chosen);
  }
  // Broadcast (Java) feeds assign (Spark) over a side edge -> kDistribute.
  bool found_distribute = false;
  for (const ConversionInstance& conv : exec.Conversions()) {
    if (conv.kind == ConversionKind::kDistribute) found_distribute = true;
  }
  EXPECT_TRUE(found_distribute);
}

}  // namespace
}  // namespace robopt
