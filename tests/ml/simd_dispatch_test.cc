// Runtime SIMD dispatch: every compiled lane must agree with the portable
// scalar lane — bit for bit on the exact primitives and on exact-mode forest
// inference, and within the documented error bound in quantized mode. The CI
// scalar leg reruns this whole binary with ROBOPT_SIMD=scalar, so the lane
// matrix is covered from both directions.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "ml/forest_kernel.h"
#include "ml/random_forest.h"
#include "ml/simd_dispatch.h"

namespace robopt {
namespace {

// Every lane this binary compiled and this machine can run. kScalar is
// always present; ForceLaneForTest clamps an unavailable request back to the
// best available lane, so probing with a force + read-back tells us whether
// a lane is really runnable here.
std::vector<simd::Lane> RunnableLanes() {
  const simd::Lane initial = simd::ActiveLane();
  std::vector<simd::Lane> lanes = {simd::Lane::kScalar};
  for (simd::Lane lane : {simd::Lane::kAvx2, simd::Lane::kNeon}) {
    simd::ForceLaneForTest(lane);
    if (simd::ActiveLane() == lane) lanes.push_back(lane);
  }
  simd::ForceLaneForTest(initial);
  return lanes;
}

// Restores the pre-test lane even when an assertion fails mid-test.
class LaneGuard {
 public:
  LaneGuard() : saved_(simd::ActiveLane()) {}
  ~LaneGuard() { simd::ForceLaneForTest(saved_); }

 private:
  simd::Lane saved_;
};

MlDataset MakeDataset(size_t dim, size_t rows, uint64_t seed) {
  MlDataset data(dim);
  Rng rng(seed);
  std::vector<float> row(dim);
  for (size_t i = 0; i < rows; ++i) {
    for (float& cell : row) {
      cell = static_cast<float>(rng.NextUniform(0, 50));
    }
    data.Add(row, static_cast<float>(rng.NextUniform(0, 100)));
  }
  return data;
}

TEST(SimdDispatchTest, EnvOverrideOrBestAvailableLaneIsActive) {
  // ActiveLane() resolves once from ROBOPT_SIMD; when the variable pins a
  // lane (as the CI scalar leg does) the process must actually be on it.
  const char* env = std::getenv("ROBOPT_SIMD");
  const std::string requested = env == nullptr ? "" : env;
  const simd::Lane lane = simd::ActiveLane();
  EXPECT_NE(simd::LaneName(lane), nullptr);
  if (requested == "scalar") {
    EXPECT_EQ(lane, simd::Lane::kScalar);
  }
#if defined(__x86_64__) || defined(_M_X64)
  EXPECT_NE(lane, simd::Lane::kNeon);
#endif
#if defined(__aarch64__)
  EXPECT_NE(lane, simd::Lane::kAvx2);
#endif
}

TEST(SimdDispatchTest, ForceLaneClampsUnavailableRequests) {
  LaneGuard guard;
  simd::ForceLaneForTest(simd::Lane::kScalar);
  EXPECT_EQ(simd::ActiveLane(), simd::Lane::kScalar);
#if defined(__x86_64__) || defined(_M_X64)
  // NEON can never run on x86; the request must clamp, not crash.
  simd::ForceLaneForTest(simd::Lane::kNeon);
  EXPECT_NE(simd::ActiveLane(), simd::Lane::kNeon);
#endif
}

TEST(SimdDispatchTest, AddRowsMatchesScalarOnEveryLane) {
  LaneGuard guard;
  Rng rng(11);
  for (size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{8}, size_t{31},
                   size_t{200}}) {
    // One spare element so data() is non-null even at n == 0.
    std::vector<float> a(n + 1), b(n + 1), want(n + 1);
    for (size_t i = 0; i < n; ++i) {
      a[i] = static_cast<float>(rng.NextUniform(-10, 10));
      b[i] = static_cast<float>(rng.NextUniform(-10, 10));
    }
    simd::kScalarOps.add_rows_f32(want.data(), a.data(), b.data(), n);
    for (simd::Lane lane : RunnableLanes()) {
      simd::ForceLaneForTest(lane);
      std::vector<float> got(n + 1, -1.0f);
      simd::Ops().add_rows_f32(got.data(), a.data(), b.data(), n);
      EXPECT_EQ(std::memcmp(got.data(), want.data(), n * sizeof(float)), 0)
          << simd::LaneName(lane) << " n=" << n;
    }
  }
}

TEST(SimdDispatchTest, OrBytesMatchesScalarOnEveryLane) {
  LaneGuard guard;
  Rng rng(13);
  for (size_t n : {size_t{0}, size_t{1}, size_t{31}, size_t{32}, size_t{33},
                   size_t{100}}) {
    // One spare element so data() is non-null even at n == 0.
    std::vector<uint8_t> a(n + 1), b(n + 1), want(n + 1);
    for (size_t i = 0; i < n; ++i) {
      a[i] = static_cast<uint8_t>(rng.NextInt(0, 255));
      b[i] = static_cast<uint8_t>(rng.NextInt(0, 255));
    }
    simd::kScalarOps.or_bytes(want.data(), a.data(), b.data(), n);
    for (simd::Lane lane : RunnableLanes()) {
      simd::ForceLaneForTest(lane);
      std::vector<uint8_t> got(n + 1, 0xee);
      simd::Ops().or_bytes(got.data(), a.data(), b.data(), n);
      EXPECT_EQ(std::memcmp(got.data(), want.data(), n), 0)
          << simd::LaneName(lane) << " n=" << n;
    }
  }
}

TEST(SimdDispatchTest, FindU64MatchesScalarOnEveryLane) {
  LaneGuard guard;
  Rng rng(17);
  std::vector<uint64_t> keys(67);
  for (uint64_t& k : keys) {
    k = static_cast<uint64_t>(rng.NextInt(0, 1 << 20));
  }
  keys[3] = keys[40];  // Duplicate: the *first* hit must win.
  for (simd::Lane lane : RunnableLanes()) {
    simd::ForceLaneForTest(lane);
    for (size_t n : {size_t{0}, size_t{1}, size_t{4}, size_t{5}, keys.size()}) {
      for (size_t probe = 0; probe < keys.size(); ++probe) {
        const size_t want =
            simd::kScalarOps.find_u64(keys.data(), n, keys[probe]);
        const size_t got = simd::Ops().find_u64(keys.data(), n, keys[probe]);
        EXPECT_EQ(got, want)
            << simd::LaneName(lane) << " n=" << n << " probe=" << probe;
      }
      // A key that is absent must return n.
      EXPECT_EQ(simd::Ops().find_u64(keys.data(), n, ~uint64_t{0}), n);
    }
  }
}

TEST(SimdDispatchTest, MinMaxGroupMatchesScalarAndFlagsNaN) {
  LaneGuard guard;
  Rng rng(19);
  for (size_t dim : {size_t{1}, size_t{7}, size_t{8}, size_t{9}, size_t{40}}) {
    for (size_t w : {size_t{1}, size_t{5}, size_t{16}}) {
      std::vector<float> rows(w * dim);
      for (float& cell : rows) {
        cell = static_cast<float>(rng.NextUniform(-100, 100));
      }
      std::vector<float> want_min(dim), want_max(dim);
      const bool want_nan = simd::kScalarOps.min_max_group_f32(
          rows.data(), w, dim, want_min.data(), want_max.data());
      EXPECT_FALSE(want_nan);
      for (simd::Lane lane : RunnableLanes()) {
        simd::ForceLaneForTest(lane);
        std::vector<float> got_min(dim, -1), got_max(dim, -1);
        EXPECT_FALSE(simd::Ops().min_max_group_f32(
            rows.data(), w, dim, got_min.data(), got_max.data()));
        EXPECT_EQ(
            std::memcmp(got_min.data(), want_min.data(), dim * sizeof(float)),
            0)
            << simd::LaneName(lane) << " dim=" << dim << " w=" << w;
        EXPECT_EQ(
            std::memcmp(got_max.data(), want_max.data(), dim * sizeof(float)),
            0)
            << simd::LaneName(lane) << " dim=" << dim << " w=" << w;
      }
      // Poison one cell: every lane must report the NaN (vector min/max
      // would silently drop it, so the flag is what keeps speculation
      // exact).
      rows[(w / 2) * dim + (dim / 2)] =
          std::numeric_limits<float>::quiet_NaN();
      for (simd::Lane lane : RunnableLanes()) {
        simd::ForceLaneForTest(lane);
        std::vector<float> got_min(dim), got_max(dim);
        EXPECT_TRUE(simd::Ops().min_max_group_f32(
            rows.data(), w, dim, got_min.data(), got_max.data()))
            << simd::LaneName(lane) << " dim=" << dim << " w=" << w;
      }
    }
  }
}

TEST(SimdDispatchTest, ForestExactModeBitIdenticalAcrossLanesAndThreads) {
  LaneGuard guard;
  const MlDataset data = MakeDataset(24, 500, 23);
  RandomForest::Params params;
  params.num_trees = 12;
  RandomForest forest(params);
  ASSERT_TRUE(forest.Train(data).ok());
  const size_t n = data.size();
  const size_t dim = data.dim();

  std::vector<float> reference(n);
  forest.PredictBatchReference(data.features().data(), n, dim,
                               reference.data());
  std::vector<float> got(n);
  for (simd::Lane lane : RunnableLanes()) {
    simd::ForceLaneForTest(lane);
    for (int threads : {1, 2, 8}) {
      forest.set_num_threads(threads);
      forest.PredictBatch(data.features().data(), n, dim, got.data());
      EXPECT_EQ(std::memcmp(got.data(), reference.data(), n * sizeof(float)),
                0)
          << simd::LaneName(lane) << " threads=" << threads;
    }
  }
}

TEST(SimdDispatchTest, ForestQuantizedModeDeterministicAcrossLanesAndClose) {
  LaneGuard guard;
  const MlDataset data = MakeDataset(16, 400, 29);
  RandomForest::Params params;
  params.num_trees = 12;
  RandomForest forest(params);
  ASSERT_TRUE(forest.Train(data).ok());
  const size_t n = data.size();
  const size_t dim = data.dim();

  std::vector<float> exact(n);
  forest.PredictBatch(data.features().data(), n, dim, exact.data());

  // Quantized predictions: one canonical answer (scalar lane, one thread)…
  simd::ForceLaneForTest(simd::Lane::kScalar);
  forest.set_num_threads(1);
  std::vector<float> canonical(n);
  forest.PredictBatchQuantized(data.features().data(), n, dim,
                               canonical.data());

  // …must be reproduced bit for bit by every lane and thread count
  // (quantization changes the thresholds, not the determinism), and stay
  // within a loose absolute band of the exact answer.
  std::vector<float> got(n);
  for (simd::Lane lane : RunnableLanes()) {
    simd::ForceLaneForTest(lane);
    for (int threads : {1, 4}) {
      forest.set_num_threads(threads);
      forest.PredictBatchQuantized(data.features().data(), n, dim, got.data());
      EXPECT_EQ(std::memcmp(got.data(), canonical.data(), n * sizeof(float)),
                0)
          << simd::LaneName(lane) << " threads=" << threads;
    }
  }
  double mae = 0;
  for (size_t i = 0; i < n; ++i) {
    mae += std::abs(static_cast<double>(canonical[i]) - exact[i]);
  }
  mae /= static_cast<double>(n);
  EXPECT_LT(mae, 5.0) << "quantized drifted far from exact";
}

}  // namespace
}  // namespace robopt
