#include "ml/metrics.h"

#include <gtest/gtest.h>

#include "ml/linear_regression.h"

namespace robopt {
namespace {

TEST(MetricsTest, SpearmanPerfectMonotone) {
  EXPECT_NEAR(SpearmanCorrelation({1, 2, 3, 4}, {10, 20, 30, 40}), 1.0, 1e-9);
  // Monotone but nonlinear: rank correlation is still 1.
  EXPECT_NEAR(SpearmanCorrelation({1, 2, 3, 4}, {1, 100, 101, 1e6}), 1.0,
              1e-9);
}

TEST(MetricsTest, SpearmanReversed) {
  EXPECT_NEAR(SpearmanCorrelation({1, 2, 3, 4}, {4, 3, 2, 1}), -1.0, 1e-9);
}

TEST(MetricsTest, SpearmanHandlesTies) {
  const double rho = SpearmanCorrelation({1, 1, 2, 2}, {1, 1, 2, 2});
  EXPECT_NEAR(rho, 1.0, 1e-9);
}

TEST(MetricsTest, SpearmanDegenerateInput) {
  EXPECT_DOUBLE_EQ(SpearmanCorrelation({1}, {2}), 0.0);
  EXPECT_DOUBLE_EQ(SpearmanCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(MetricsTest, EvaluatePerfectModel) {
  // Train on noiseless data; in-sample metrics must be near perfect.
  MlDataset data(1);
  for (int i = 0; i < 100; ++i) {
    data.Add({static_cast<float>(i)}, static_cast<float>(2 * i + 1));
  }
  LinearRegression model(1e-9, /*log_label=*/false);
  ASSERT_TRUE(model.Train(data).ok());
  const RegressionMetrics metrics = Evaluate(model, data);
  EXPECT_LT(metrics.mse, 1e-3);
  EXPECT_LT(metrics.mae, 0.05);
  EXPECT_GT(metrics.r2, 0.999);
  EXPECT_GT(metrics.spearman, 0.999);
}

TEST(MetricsTest, EvaluateEmptyDatasetIsZero) {
  MlDataset data(1);
  LinearRegression model;
  const RegressionMetrics metrics = Evaluate(model, data);
  EXPECT_DOUBLE_EQ(metrics.mse, 0.0);
  EXPECT_DOUBLE_EQ(metrics.r2, 0.0);
}

}  // namespace
}  // namespace robopt
