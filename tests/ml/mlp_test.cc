#include "ml/mlp.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "ml/metrics.h"
#include "ml/random_forest.h"

namespace robopt {
namespace {

MlDataset Quadratic2d(size_t n, uint64_t seed) {
  Rng rng(seed);
  MlDataset data(2);
  for (size_t i = 0; i < n; ++i) {
    const float x0 = static_cast<float>(rng.NextUniform(-2, 2));
    const float x1 = static_cast<float>(rng.NextUniform(-2, 2));
    data.Add({x0, x1}, x0 * x0 + 0.5f * x1 * x1 + 1.0f);
  }
  return data;
}

TEST(MlpTest, LearnsSmoothNonlinearTarget) {
  MlDataset data = Quadratic2d(2000, 1);
  MlDataset train(2), test(2);
  data.Split(0.8, 2, &train, &test);
  MlpRegressor::Params params;
  params.log_label = false;
  params.epochs = 120;
  MlpRegressor mlp(params);
  ASSERT_TRUE(mlp.Train(train).ok());
  const RegressionMetrics metrics = Evaluate(mlp, test);
  EXPECT_GT(metrics.r2, 0.85);
  EXPECT_GT(metrics.spearman, 0.9);
}

TEST(MlpTest, EmptyTrainingSetFails) {
  MlDataset data(2);
  MlpRegressor mlp;
  EXPECT_FALSE(mlp.Train(data).ok());
}

TEST(MlpTest, DeterministicPerSeed) {
  MlDataset data = Quadratic2d(300, 3);
  MlpRegressor a;
  MlpRegressor b;
  ASSERT_TRUE(a.Train(data).ok());
  ASSERT_TRUE(b.Train(data).ok());
  const float x[2] = {0.5f, -1.0f};
  EXPECT_FLOAT_EQ(a.Predict(x, 2), b.Predict(x, 2));
}

TEST(MlpTest, PredictBatchMatchesSingle) {
  MlDataset data = Quadratic2d(300, 4);
  MlpRegressor mlp;
  ASSERT_TRUE(mlp.Train(data).ok());
  std::vector<float> x = {0.1f, 0.2f, -0.3f, 0.4f, 1.0f, -1.0f};
  std::vector<float> out(3);
  mlp.PredictBatch(x.data(), 3, 2, out.data());
  for (int i = 0; i < 3; ++i) {
    EXPECT_FLOAT_EQ(out[i], mlp.Predict(x.data() + 2 * i, 2));
  }
}

TEST(MlpTest, LogLabelNeverNegative) {
  Rng rng(5);
  MlDataset data(1);
  for (int i = 0; i < 300; ++i) {
    const float x = static_cast<float>(rng.NextUniform(0, 10));
    data.Add({x}, 0.5f * x + 0.1f);
  }
  MlpRegressor mlp;  // log_label defaults to true.
  ASSERT_TRUE(mlp.Train(data).ok());
  const float probe = -100.0f;
  EXPECT_GE(mlp.Predict(&probe, 1), 0.0f);
}

TEST(MlpTest, SaveLoadRoundTrip) {
  MlDataset data = Quadratic2d(500, 6);
  MlpRegressor mlp;
  ASSERT_TRUE(mlp.Train(data).ok());
  const std::string path = ::testing::TempDir() + "/mlp.txt";
  ASSERT_TRUE(mlp.Save(path).ok());
  MlpRegressor loaded;
  ASSERT_TRUE(loaded.Load(path).ok());
  const float x[2] = {0.7f, -0.2f};
  EXPECT_NEAR(loaded.Predict(x, 2), mlp.Predict(x, 2), 1e-4);
  std::remove(path.c_str());
}

TEST(MlpTest, ForestIsMoreRobustOnStepTargets) {
  // The paper's reason for choosing forests: discontinuous runtime cliffs
  // (platform switches, OOM penalties) suit trees better than a small MLP.
  Rng rng(7);
  MlDataset data(1);
  for (int i = 0; i < 1500; ++i) {
    const float x = static_cast<float>(rng.NextUniform(0, 1));
    data.Add({x}, x > 0.5f ? 500.0f : 1.0f);
  }
  MlDataset train(1), test(1);
  data.Split(0.8, 8, &train, &test);
  MlpRegressor::Params mlp_params;
  mlp_params.log_label = true;
  MlpRegressor mlp(mlp_params);
  RandomForest forest;
  ASSERT_TRUE(mlp.Train(train).ok());
  ASSERT_TRUE(forest.Train(train).ok());
  const RegressionMetrics mlp_metrics = Evaluate(mlp, test);
  const RegressionMetrics forest_metrics = Evaluate(forest, test);
  EXPECT_GE(forest_metrics.r2, mlp_metrics.r2 - 1e-6);
}

}  // namespace
}  // namespace robopt
