#include "ml/linear_regression.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "common/rng.h"

namespace robopt {
namespace {

MlDataset LinearData(size_t n, uint64_t seed) {
  // y = 3*x0 - 2*x1 + 5 (no noise).
  Rng rng(seed);
  MlDataset data(2);
  for (size_t i = 0; i < n; ++i) {
    const float x0 = static_cast<float>(rng.NextUniform(0, 10));
    const float x1 = static_cast<float>(rng.NextUniform(0, 10));
    data.Add({x0, x1}, 3.0f * x0 - 2.0f * x1 + 5.0f);
  }
  return data;
}

TEST(LinearRegressionTest, RecoversLinearFunction) {
  MlDataset data = LinearData(500, 1);
  LinearRegression model(/*l2=*/1e-6, /*log_label=*/false);
  ASSERT_TRUE(model.Train(data).ok());
  const float x[2] = {4.0f, 2.0f};
  EXPECT_NEAR(model.Predict(x, 2), 3.0f * 4 - 2.0f * 2 + 5, 0.05);
}

TEST(LinearRegressionTest, EmptyTrainingSetFails) {
  MlDataset data(2);
  LinearRegression model;
  EXPECT_FALSE(model.Train(data).ok());
}

TEST(LinearRegressionTest, PredictBatchMatchesSinglePredicts) {
  MlDataset data = LinearData(200, 2);
  LinearRegression model(1e-6, false);
  ASSERT_TRUE(model.Train(data).ok());
  std::vector<float> x = {1.0f, 2.0f, 3.0f, 4.0f, 5.0f, 6.0f};
  std::vector<float> batch(3);
  model.PredictBatch(x.data(), 3, 2, batch.data());
  for (int i = 0; i < 3; ++i) {
    EXPECT_FLOAT_EQ(batch[i], model.Predict(x.data() + 2 * i, 2));
  }
}

TEST(LinearRegressionTest, LogLabelNeverPredictsNegative) {
  Rng rng(3);
  MlDataset data(1);
  for (int i = 0; i < 100; ++i) {
    const float x = static_cast<float>(rng.NextUniform(0, 100));
    data.Add({x}, 0.1f * x);
  }
  LinearRegression model(1e-3, /*log_label=*/true);
  ASSERT_TRUE(model.Train(data).ok());
  const float probe = -50.0f;  // Far outside the training range.
  EXPECT_GE(model.Predict(&probe, 1), 0.0f);
}

TEST(LinearRegressionTest, ConstantFeatureDoesNotBreakTraining) {
  MlDataset data(2);
  for (int i = 0; i < 50; ++i) {
    data.Add({1.0f, static_cast<float>(i)}, static_cast<float>(2 * i));
  }
  LinearRegression model(1e-6, false);
  ASSERT_TRUE(model.Train(data).ok());
  const float x[2] = {1.0f, 10.0f};
  EXPECT_NEAR(model.Predict(x, 2), 20.0f, 0.5);
}

TEST(LinearRegressionTest, SaveLoadRoundTrip) {
  MlDataset data = LinearData(300, 4);
  LinearRegression model(1e-6, false);
  ASSERT_TRUE(model.Train(data).ok());
  const std::string path = ::testing::TempDir() + "/linreg.txt";
  ASSERT_TRUE(model.Save(path).ok());
  LinearRegression loaded;
  ASSERT_TRUE(loaded.Load(path).ok());
  const float x[2] = {7.0f, 3.0f};
  EXPECT_NEAR(loaded.Predict(x, 2), model.Predict(x, 2), 1e-4);
  std::remove(path.c_str());
}

TEST(LinearRegressionTest, LoadRejectsWrongMagic) {
  const std::string path = ::testing::TempDir() + "/not_a_model.txt";
  FILE* f = fopen(path.c_str(), "w");
  fputs("random_forest 1\n0 0\n", f);
  fclose(f);
  LinearRegression model;
  EXPECT_FALSE(model.Load(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace robopt
