// ForestKernel: the flattened SoA node pool must reproduce the per-tree
// reference path bit for bit — per tree, per batch, at every thread count,
// and after a Save/Load round trip.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/aligned_vector.h"
#include "common/rng.h"
#include "ml/forest_kernel.h"
#include "ml/random_forest.h"

namespace robopt {
namespace {

MlDataset MakeDataset(size_t dim, size_t rows, uint64_t seed) {
  MlDataset data(dim);
  Rng rng(seed);
  std::vector<float> row(dim);
  for (size_t i = 0; i < rows; ++i) {
    for (float& cell : row) {
      cell = static_cast<float>(rng.NextUniform(0, 50));
    }
    data.Add(row, static_cast<float>(rng.NextUniform(0, 100)));
  }
  return data;
}

RandomForest TrainForest(const MlDataset& data, int num_trees) {
  RandomForest::Params params;
  params.num_trees = num_trees;
  RandomForest forest(params);
  EXPECT_TRUE(forest.Train(data).ok());
  return forest;
}

TEST(ForestKernelTest, FlattensAllTreesIntoOnePool) {
  const MlDataset data = MakeDataset(16, 200, 3);
  const RandomForest forest = TrainForest(data, 10);
  const ForestKernel& kernel = forest.kernel();
  ASSERT_EQ(kernel.num_trees(), forest.trees().size());
  size_t total_nodes = 0;
  for (const DecisionTree& tree : forest.trees()) {
    total_nodes += tree.num_nodes();
  }
  EXPECT_EQ(kernel.num_nodes(), total_nodes);
  EXPECT_FALSE(kernel.empty());
}

TEST(ForestKernelTest, PerTreeWalkMatchesDecisionTreePredict) {
  const MlDataset data = MakeDataset(16, 200, 5);
  const RandomForest forest = TrainForest(data, 10);
  const ForestKernel& kernel = forest.kernel();
  const size_t dim = data.dim();
  for (size_t t = 0; t < kernel.num_trees(); ++t) {
    for (size_t i = 0; i < data.size(); ++i) {
      const float expected = forest.trees()[t].Predict(data.row(i), dim);
      EXPECT_EQ(kernel.PredictTree(t, data.row(i), dim), expected)
          << "tree " << t << ", row " << i;
    }
  }
}

TEST(ForestKernelTest, BatchMatchesReferenceBitForBitAcrossThreadCounts) {
  const MlDataset data = MakeDataset(24, 300, 7);
  RandomForest forest = TrainForest(data, 15);
  const size_t n = data.size();
  const size_t dim = data.dim();
  std::vector<float> reference(n), got(n);
  forest.PredictBatchReference(data.features().data(), n, dim,
                               reference.data());
  for (int threads : {1, 2, 8}) {
    forest.set_num_threads(threads);
    forest.PredictBatch(data.features().data(), n, dim, got.data());
    EXPECT_EQ(std::memcmp(got.data(), reference.data(), n * sizeof(float)), 0)
        << threads << " threads";
  }
}

TEST(ForestKernelTest, OddBatchSizesMatchReference) {
  // Exercise partial trailing blocks (n not a multiple of kRowBlock) and
  // tiny batches below one block.
  const MlDataset data = MakeDataset(12, 3 * ForestKernel::kRowBlock + 17, 9);
  RandomForest forest = TrainForest(data, 8);
  const size_t dim = data.dim();
  for (size_t n : {size_t{1}, size_t{2}, ForestKernel::kRowBlock - 1,
                   ForestKernel::kRowBlock, ForestKernel::kRowBlock + 1,
                   data.size()}) {
    std::vector<float> reference(n), got(n);
    forest.PredictBatchReference(data.features().data(), n, dim,
                                 reference.data());
    forest.PredictBatch(data.features().data(), n, dim, got.data());
    EXPECT_EQ(std::memcmp(got.data(), reference.data(), n * sizeof(float)), 0)
        << n << " rows";
  }
}

TEST(ForestKernelTest, EmptyKernelPredictsZeros) {
  ForestKernel kernel;
  EXPECT_TRUE(kernel.empty());
  EXPECT_EQ(kernel.num_trees(), 0u);
  const float x[4] = {1, 2, 3, 4};
  float out[2] = {-1, -1};
  kernel.PredictBatch(x, 2, 2, out, /*log_label=*/false, /*num_threads=*/1);
  EXPECT_EQ(out[0], 0.0f);
  EXPECT_EQ(out[1], 0.0f);
}

TEST(ForestKernelTest, NodeLessTreeContributesZeroLeaf) {
  // A default-constructed DecisionTree has no nodes; its Predict returns 0
  // and the kernel must flatten it to a single 0-valued leaf.
  std::vector<DecisionTree> trees(3);
  ForestKernel kernel;
  kernel.Build(trees);
  EXPECT_EQ(kernel.num_trees(), 3u);
  EXPECT_EQ(kernel.num_nodes(), 3u);
  const float row[2] = {5.0f, -1.0f};
  for (size_t t = 0; t < 3; ++t) {
    EXPECT_EQ(kernel.PredictTree(t, row, 2), 0.0f);
  }
}

TEST(ForestKernelTest, ClearEmptiesThePool) {
  const MlDataset data = MakeDataset(8, 100, 11);
  const RandomForest forest = TrainForest(data, 4);
  ForestKernel kernel = forest.kernel();
  ASSERT_FALSE(kernel.empty());
  kernel.Clear();
  EXPECT_TRUE(kernel.empty());
  EXPECT_EQ(kernel.num_nodes(), 0u);
}

TEST(ForestKernelTest, EmptyBatchReturnsBeforeTelemetry) {
  const MlDataset data = MakeDataset(8, 120, 21);
  const RandomForest forest = TrainForest(data, 4);
  const ForestKernel& kernel = forest.kernel();
  const uint64_t batches_before = ForestKernel::TotalBatches();
  const uint64_t rows_before = ForestKernel::TotalRowsScored();
  float out = -1.0f;
  kernel.PredictBatch(data.features().data(), 0, data.dim(), &out,
                      /*log_label=*/false, /*num_threads=*/1);
  EXPECT_EQ(ForestKernel::TotalBatches(), batches_before);
  EXPECT_EQ(ForestKernel::TotalRowsScored(), rows_before);
  EXPECT_EQ(out, -1.0f) << "n == 0 must not touch the output buffer";

  float out3[3] = {0, 0, 0};
  kernel.PredictBatch(data.features().data(), 3, data.dim(), out3,
                      /*log_label=*/false, /*num_threads=*/1);
  EXPECT_EQ(ForestKernel::TotalBatches(), batches_before + 1);
  EXPECT_EQ(ForestKernel::TotalRowsScored(), rows_before + 3);
}

TEST(ForestKernelTest, NodeArraysAre64ByteAligned) {
  static_assert(alignof(std::max_align_t) <= kCacheLineBytes,
                "AlignedVector must widen, not narrow, default alignment");
  const MlDataset data = MakeDataset(16, 200, 25);
  const RandomForest forest = TrainForest(data, 10);
  EXPECT_TRUE(forest.kernel().node_arrays_aligned());
  // The allocator itself, across a spread of sizes (including ones that a
  // size-classed malloc would place at 16-byte offsets).
  for (size_t n : {1, 3, 17, 100, 1000}) {
    AlignedVector<float> v(n);
    EXPECT_TRUE(IsAligned(v.data())) << n;
    AlignedVector<uint8_t> b(n);
    EXPECT_TRUE(IsAligned(b.data())) << n;
  }
}

TEST(ForestKernelTest, QuantizedThresholdErrorWithinAffineBound) {
  // Features are drawn from [0, 50], so every per-feature threshold range
  // is at most 50 and the documented bound (hi - lo) / 510 caps the
  // dequantization error at ~0.098.
  const MlDataset data = MakeDataset(16, 300, 27);
  const RandomForest forest = TrainForest(data, 10);
  const ForestKernel& kernel = forest.kernel();
  ASSERT_TRUE(kernel.has_quantized());
  EXPECT_LE(kernel.QuantizationMaxAbsError(), 50.0f / 510.0f + 1e-6f);
}

TEST(ForestKernelTest, QuantizedPredictionsDeterministicAcrossThreads) {
  const MlDataset data = MakeDataset(16, 300, 31);
  const RandomForest forest = TrainForest(data, 10);
  const ForestKernel& kernel = forest.kernel();
  const size_t n = data.size();
  const size_t dim = data.dim();
  std::vector<float> canonical(n), got(n);
  kernel.PredictBatch(data.features().data(), n, dim, canonical.data(),
                      /*log_label=*/true, /*num_threads=*/1,
                      /*quantized=*/true);
  for (int threads : {2, 8}) {
    kernel.PredictBatch(data.features().data(), n, dim, got.data(),
                        /*log_label=*/true, threads, /*quantized=*/true);
    EXPECT_EQ(std::memcmp(got.data(), canonical.data(), n * sizeof(float)), 0)
        << threads << " threads";
  }
}

TEST(ForestKernelTest, NaNRowsMatchReferenceBitForBit) {
  // NaN compares false against every threshold, so a NaN feature always
  // walks right — in the reference and in the kernel. The grouped SIMD path
  // must detect NaN groups in the extrema pass and fall back to per-row
  // walks; either way the bits must match.
  MlDataset data = MakeDataset(12, 4 * ForestKernel::kRowBlock, 33);
  RandomForest forest = TrainForest(data, 8);
  const size_t n = data.size();
  const size_t dim = data.dim();
  std::vector<float> features(data.features().begin(), data.features().end());
  for (size_t i = 0; i < n; i += 7) {
    features[i * dim + (i % dim)] = std::numeric_limits<float>::quiet_NaN();
  }
  std::vector<float> reference(n), got(n);
  forest.PredictBatchReference(features.data(), n, dim, reference.data());
  for (int threads : {1, 4}) {
    forest.set_num_threads(threads);
    forest.PredictBatch(features.data(), n, dim, got.data());
    EXPECT_EQ(std::memcmp(got.data(), reference.data(), n * sizeof(float)), 0)
        << threads << " threads";
  }
}

TEST(ForestKernelTest, NarrowBatchTakesGuardedPathAndMatchesReference) {
  // Score a batch narrower than the trained feature space: missing features
  // read as 0 in the reference walk, and the kernel must switch off the
  // grouped path (which assumes full-width rows) and still match bitwise.
  const MlDataset train = MakeDataset(20, 300, 35);
  RandomForest forest = TrainForest(train, 10);
  ASSERT_GT(forest.kernel().num_features(), 6u);
  const MlDataset narrow = MakeDataset(6, 200, 37);
  const size_t n = narrow.size();
  std::vector<float> reference(n), got(n);
  forest.PredictBatchReference(narrow.features().data(), n, narrow.dim(),
                               reference.data());
  forest.PredictBatch(narrow.features().data(), n, narrow.dim(), got.data());
  EXPECT_EQ(std::memcmp(got.data(), reference.data(), n * sizeof(float)), 0);
}

TEST(ForestKernelTest, SaveLoadRebuildsKernelWithIdenticalPredictions) {
  const MlDataset data = MakeDataset(16, 200, 13);
  RandomForest forest = TrainForest(data, 10);
  const size_t n = data.size();
  const size_t dim = data.dim();
  std::vector<float> before(n);
  forest.PredictBatch(data.features().data(), n, dim, before.data());

  const std::string path =
      ::testing::TempDir() + "/forest_kernel_roundtrip.rf";
  ASSERT_TRUE(forest.Save(path).ok());
  RandomForest loaded;
  ASSERT_TRUE(loaded.Load(path).ok());
  std::remove(path.c_str());

  ASSERT_EQ(loaded.kernel().num_trees(), forest.kernel().num_trees());
  EXPECT_EQ(loaded.kernel().num_nodes(), forest.kernel().num_nodes());
  std::vector<float> after(n);
  loaded.PredictBatch(data.features().data(), n, dim, after.data());
  EXPECT_EQ(std::memcmp(after.data(), before.data(), n * sizeof(float)), 0);
}

}  // namespace
}  // namespace robopt
