// ForestKernel: the flattened SoA node pool must reproduce the per-tree
// reference path bit for bit — per tree, per batch, at every thread count,
// and after a Save/Load round trip.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "ml/forest_kernel.h"
#include "ml/random_forest.h"

namespace robopt {
namespace {

MlDataset MakeDataset(size_t dim, size_t rows, uint64_t seed) {
  MlDataset data(dim);
  Rng rng(seed);
  std::vector<float> row(dim);
  for (size_t i = 0; i < rows; ++i) {
    for (float& cell : row) {
      cell = static_cast<float>(rng.NextUniform(0, 50));
    }
    data.Add(row, static_cast<float>(rng.NextUniform(0, 100)));
  }
  return data;
}

RandomForest TrainForest(const MlDataset& data, int num_trees) {
  RandomForest::Params params;
  params.num_trees = num_trees;
  RandomForest forest(params);
  EXPECT_TRUE(forest.Train(data).ok());
  return forest;
}

TEST(ForestKernelTest, FlattensAllTreesIntoOnePool) {
  const MlDataset data = MakeDataset(16, 200, 3);
  const RandomForest forest = TrainForest(data, 10);
  const ForestKernel& kernel = forest.kernel();
  ASSERT_EQ(kernel.num_trees(), forest.trees().size());
  size_t total_nodes = 0;
  for (const DecisionTree& tree : forest.trees()) {
    total_nodes += tree.num_nodes();
  }
  EXPECT_EQ(kernel.num_nodes(), total_nodes);
  EXPECT_FALSE(kernel.empty());
}

TEST(ForestKernelTest, PerTreeWalkMatchesDecisionTreePredict) {
  const MlDataset data = MakeDataset(16, 200, 5);
  const RandomForest forest = TrainForest(data, 10);
  const ForestKernel& kernel = forest.kernel();
  const size_t dim = data.dim();
  for (size_t t = 0; t < kernel.num_trees(); ++t) {
    for (size_t i = 0; i < data.size(); ++i) {
      const float expected = forest.trees()[t].Predict(data.row(i), dim);
      EXPECT_EQ(kernel.PredictTree(t, data.row(i), dim), expected)
          << "tree " << t << ", row " << i;
    }
  }
}

TEST(ForestKernelTest, BatchMatchesReferenceBitForBitAcrossThreadCounts) {
  const MlDataset data = MakeDataset(24, 300, 7);
  RandomForest forest = TrainForest(data, 15);
  const size_t n = data.size();
  const size_t dim = data.dim();
  std::vector<float> reference(n), got(n);
  forest.PredictBatchReference(data.features().data(), n, dim,
                               reference.data());
  for (int threads : {1, 2, 8}) {
    forest.set_num_threads(threads);
    forest.PredictBatch(data.features().data(), n, dim, got.data());
    EXPECT_EQ(std::memcmp(got.data(), reference.data(), n * sizeof(float)), 0)
        << threads << " threads";
  }
}

TEST(ForestKernelTest, OddBatchSizesMatchReference) {
  // Exercise partial trailing blocks (n not a multiple of kRowBlock) and
  // tiny batches below one block.
  const MlDataset data = MakeDataset(12, 3 * ForestKernel::kRowBlock + 17, 9);
  RandomForest forest = TrainForest(data, 8);
  const size_t dim = data.dim();
  for (size_t n : {size_t{1}, size_t{2}, ForestKernel::kRowBlock - 1,
                   ForestKernel::kRowBlock, ForestKernel::kRowBlock + 1,
                   data.size()}) {
    std::vector<float> reference(n), got(n);
    forest.PredictBatchReference(data.features().data(), n, dim,
                                 reference.data());
    forest.PredictBatch(data.features().data(), n, dim, got.data());
    EXPECT_EQ(std::memcmp(got.data(), reference.data(), n * sizeof(float)), 0)
        << n << " rows";
  }
}

TEST(ForestKernelTest, EmptyKernelPredictsZeros) {
  ForestKernel kernel;
  EXPECT_TRUE(kernel.empty());
  EXPECT_EQ(kernel.num_trees(), 0u);
  const float x[4] = {1, 2, 3, 4};
  float out[2] = {-1, -1};
  kernel.PredictBatch(x, 2, 2, out, /*log_label=*/false, /*num_threads=*/1);
  EXPECT_EQ(out[0], 0.0f);
  EXPECT_EQ(out[1], 0.0f);
}

TEST(ForestKernelTest, NodeLessTreeContributesZeroLeaf) {
  // A default-constructed DecisionTree has no nodes; its Predict returns 0
  // and the kernel must flatten it to a single 0-valued leaf.
  std::vector<DecisionTree> trees(3);
  ForestKernel kernel;
  kernel.Build(trees);
  EXPECT_EQ(kernel.num_trees(), 3u);
  EXPECT_EQ(kernel.num_nodes(), 3u);
  const float row[2] = {5.0f, -1.0f};
  for (size_t t = 0; t < 3; ++t) {
    EXPECT_EQ(kernel.PredictTree(t, row, 2), 0.0f);
  }
}

TEST(ForestKernelTest, ClearEmptiesThePool) {
  const MlDataset data = MakeDataset(8, 100, 11);
  const RandomForest forest = TrainForest(data, 4);
  ForestKernel kernel = forest.kernel();
  ASSERT_FALSE(kernel.empty());
  kernel.Clear();
  EXPECT_TRUE(kernel.empty());
  EXPECT_EQ(kernel.num_nodes(), 0u);
}

TEST(ForestKernelTest, SaveLoadRebuildsKernelWithIdenticalPredictions) {
  const MlDataset data = MakeDataset(16, 200, 13);
  RandomForest forest = TrainForest(data, 10);
  const size_t n = data.size();
  const size_t dim = data.dim();
  std::vector<float> before(n);
  forest.PredictBatch(data.features().data(), n, dim, before.data());

  const std::string path =
      ::testing::TempDir() + "/forest_kernel_roundtrip.rf";
  ASSERT_TRUE(forest.Save(path).ok());
  RandomForest loaded;
  ASSERT_TRUE(loaded.Load(path).ok());
  std::remove(path.c_str());

  ASSERT_EQ(loaded.kernel().num_trees(), forest.kernel().num_trees());
  EXPECT_EQ(loaded.kernel().num_nodes(), forest.kernel().num_nodes());
  std::vector<float> after(n);
  loaded.PredictBatch(data.features().data(), n, dim, after.data());
  EXPECT_EQ(std::memcmp(after.data(), before.data(), n * sizeof(float)), 0);
}

}  // namespace
}  // namespace robopt
