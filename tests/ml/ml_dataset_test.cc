#include "ml/ml_dataset.h"

#include <gtest/gtest.h>

namespace robopt {
namespace {

TEST(MlDatasetTest, AddAndAccess) {
  MlDataset data(3);
  data.Add({1.0f, 2.0f, 3.0f}, 10.0f);
  data.Add({4.0f, 5.0f, 6.0f}, 20.0f);
  ASSERT_EQ(data.size(), 2u);
  EXPECT_EQ(data.dim(), 3u);
  EXPECT_FLOAT_EQ(data.row(1)[0], 4.0f);
  EXPECT_FLOAT_EQ(data.label(0), 10.0f);
  EXPECT_EQ(data.features().size(), 6u);
}

TEST(MlDatasetTest, RowsAreContiguous) {
  MlDataset data(2);
  data.Add({1.0f, 2.0f}, 0.0f);
  data.Add({3.0f, 4.0f}, 0.0f);
  const float* base = data.features().data();
  EXPECT_EQ(data.row(0), base);
  EXPECT_EQ(data.row(1), base + 2);
}

TEST(MlDatasetTest, SplitPreservesAllRows) {
  MlDataset data(1);
  for (int i = 0; i < 100; ++i) {
    data.Add({static_cast<float>(i)}, static_cast<float>(i));
  }
  MlDataset train(1);
  MlDataset test(1);
  data.Split(0.8, /*seed=*/3, &train, &test);
  EXPECT_EQ(train.size(), 80u);
  EXPECT_EQ(test.size(), 20u);
  // Every label appears exactly once across the two splits.
  std::vector<int> seen(100, 0);
  for (size_t i = 0; i < train.size(); ++i) {
    ++seen[static_cast<int>(train.label(i))];
  }
  for (size_t i = 0; i < test.size(); ++i) {
    ++seen[static_cast<int>(test.label(i))];
  }
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(MlDatasetTest, SplitIsDeterministic) {
  MlDataset data(1);
  for (int i = 0; i < 50; ++i) {
    data.Add({static_cast<float>(i)}, static_cast<float>(i));
  }
  MlDataset train1(1), test1(1), train2(1), test2(1);
  data.Split(0.5, 7, &train1, &test1);
  data.Split(0.5, 7, &train2, &test2);
  ASSERT_EQ(train1.size(), train2.size());
  for (size_t i = 0; i < train1.size(); ++i) {
    EXPECT_EQ(train1.label(i), train2.label(i));
  }
}

}  // namespace
}  // namespace robopt
