#include "ml/random_forest.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "ml/metrics.h"

namespace robopt {
namespace {

/// A nonlinear target: y = x0 * log(x1 + 1) + step(x2), the kind of shape a
/// linear cost model cannot capture but a forest can.
MlDataset NonlinearData(size_t n, uint64_t seed) {
  Rng rng(seed);
  MlDataset data(3);
  for (size_t i = 0; i < n; ++i) {
    const float x0 = static_cast<float>(rng.NextUniform(0, 10));
    const float x1 = static_cast<float>(rng.NextUniform(0, 1000));
    const float x2 = static_cast<float>(rng.NextUniform(0, 1));
    const float y = x0 * std::log(x1 + 1.0f) + (x2 > 0.5f ? 25.0f : 0.0f);
    data.Add({x0, x1, x2}, y);
  }
  return data;
}

TEST(RandomForestTest, FitsNonlinearTarget) {
  MlDataset data = NonlinearData(2000, 1);
  MlDataset train(3), test(3);
  data.Split(0.8, 2, &train, &test);
  RandomForest::Params params;
  params.log_label = false;
  RandomForest forest(params);
  ASSERT_TRUE(forest.Train(train).ok());
  const RegressionMetrics metrics = Evaluate(forest, test);
  EXPECT_GT(metrics.r2, 0.9);
  EXPECT_GT(metrics.spearman, 0.95);
}

TEST(RandomForestTest, BeatsLinearModelOnStepFunction) {
  // Pure step function — the canonical "fixed function form" failure.
  Rng rng(3);
  MlDataset data(1);
  for (int i = 0; i < 1000; ++i) {
    const float x = static_cast<float>(rng.NextUniform(0, 1));
    data.Add({x}, x > 0.5f ? 100.0f : 1.0f);
  }
  RandomForest::Params params;
  params.log_label = false;
  RandomForest forest(params);
  ASSERT_TRUE(forest.Train(data).ok());
  const float lo = 0.2f;
  const float hi = 0.8f;
  EXPECT_NEAR(forest.Predict(&lo, 1), 1.0f, 5.0f);
  EXPECT_NEAR(forest.Predict(&hi, 1), 100.0f, 5.0f);
}

TEST(RandomForestTest, TrainingIsDeterministicPerSeed) {
  MlDataset data = NonlinearData(500, 5);
  RandomForest::Params params;
  params.seed = 77;
  RandomForest a(params);
  RandomForest b(params);
  ASSERT_TRUE(a.Train(data).ok());
  ASSERT_TRUE(b.Train(data).ok());
  const float x[3] = {5.0f, 100.0f, 0.3f};
  EXPECT_FLOAT_EQ(a.Predict(x, 3), b.Predict(x, 3));
}

TEST(RandomForestTest, EmptyTrainingSetFails) {
  MlDataset data(3);
  RandomForest forest;
  EXPECT_FALSE(forest.Train(data).ok());
}

TEST(RandomForestTest, PredictBatchMatchesSingle) {
  MlDataset data = NonlinearData(500, 7);
  RandomForest forest;
  ASSERT_TRUE(forest.Train(data).ok());
  std::vector<float> x;
  for (int i = 0; i < 10; ++i) {
    x.push_back(static_cast<float>(i));
    x.push_back(static_cast<float>(i * 10));
    x.push_back(0.5f);
  }
  std::vector<float> batch(10);
  forest.PredictBatch(x.data(), 10, 3, batch.data());
  for (int i = 0; i < 10; ++i) {
    EXPECT_FLOAT_EQ(batch[i], forest.Predict(x.data() + 3 * i, 3));
  }
}

TEST(RandomForestTest, LogLabelHandlesWideRuntimeRange) {
  // Labels spanning 1e-3 .. 1e4 seconds, as query runtimes do.
  Rng rng(9);
  MlDataset data(1);
  for (int i = 0; i < 1000; ++i) {
    const float x = static_cast<float>(rng.NextUniform(0, 7));
    data.Add({x}, std::pow(10.0f, x - 3.0f));
  }
  RandomForest forest;  // log_label defaults to true.
  ASSERT_TRUE(forest.Train(data).ok());
  const float small = 0.5f;
  const float large = 6.5f;
  EXPECT_LT(forest.Predict(&small, 1), 0.1f);
  EXPECT_GT(forest.Predict(&large, 1), 100.0f);
}

TEST(RandomForestTest, SaveLoadRoundTrip) {
  MlDataset data = NonlinearData(500, 11);
  RandomForest forest;
  ASSERT_TRUE(forest.Train(data).ok());
  const std::string path = ::testing::TempDir() + "/forest.txt";
  ASSERT_TRUE(forest.Save(path).ok());
  RandomForest loaded;
  ASSERT_TRUE(loaded.Load(path).ok());
  const float x[3] = {3.0f, 50.0f, 0.7f};
  EXPECT_FLOAT_EQ(loaded.Predict(x, 3), forest.Predict(x, 3));
  std::remove(path.c_str());
}

void WriteFile(const std::string& path, const std::string& content) {
  FILE* file = std::fopen(path.c_str(), "w");
  ASSERT_NE(file, nullptr);
  std::fputs(content.c_str(), file);
  std::fclose(file);
}

TEST(RandomForestTest, LoadRejectsUnsupportedVersion) {
  const std::string path = ::testing::TempDir() + "/bad_version.forest";
  WriteFile(path, "random_forest 3\n1 1\n");
  RandomForest forest;
  const Status status = forest.Load(path);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("version"), std::string::npos);
  std::remove(path.c_str());
}

TEST(RandomForestTest, SaveLoadRoundTripsMeta) {
  MlDataset data = NonlinearData(500, 15);
  RandomForest forest;
  ASSERT_TRUE(forest.Train(data).ok());
  EXPECT_EQ(forest.meta().trained_rows, 500u);
  ModelMeta meta = forest.meta();
  meta.version = 42;
  forest.set_meta(meta);
  const std::string path = ::testing::TempDir() + "/meta.forest";
  ASSERT_TRUE(forest.Save(path).ok());
  RandomForest loaded;
  ASSERT_TRUE(loaded.Load(path).ok());
  EXPECT_EQ(loaded.meta().version, 42u);
  EXPECT_EQ(loaded.meta().trained_rows, 500u);
  std::remove(path.c_str());
}

TEST(RandomForestTest, SaveLeavesNoTemporarySibling) {
  MlDataset data = NonlinearData(200, 17);
  RandomForest forest;
  ASSERT_TRUE(forest.Train(data).ok());
  const std::string path = ::testing::TempDir() + "/atomic.forest";
  ASSERT_TRUE(forest.Save(path).ok());
  // The write-then-rename protocol must not leave its staging file behind.
  FILE* tmp = std::fopen((path + ".tmp").c_str(), "r");
  EXPECT_EQ(tmp, nullptr);
  if (tmp != nullptr) std::fclose(tmp);
  std::remove(path.c_str());
}

TEST(RandomForestTest, LoadRejectsTruncatedFile) {
  MlDataset data = NonlinearData(200, 19);
  RandomForest forest;
  ASSERT_TRUE(forest.Train(data).ok());
  const std::string path = ::testing::TempDir() + "/truncated.forest";
  ASSERT_TRUE(forest.Save(path).ok());
  // Read the valid bytes back and truncate mid-tree — the torn file a
  // non-atomic save could have produced.
  std::string bytes;
  {
    FILE* file = std::fopen(path.c_str(), "r");
    ASSERT_NE(file, nullptr);
    char buf[4096];
    size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0) {
      bytes.append(buf, n);
    }
    std::fclose(file);
  }
  ASSERT_GT(bytes.size(), 64u);
  WriteFile(path, bytes.substr(0, bytes.size() / 2));
  RandomForest loaded;
  EXPECT_FALSE(loaded.Load(path).ok());
  // Truncation inside the v2 header line must also be caught.
  WriteFile(path, "random_forest 2\n7 100\n");
  const Status status = loaded.Load(path);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("truncated"), std::string::npos);
  std::remove(path.c_str());
}

TEST(RandomForestTest, LoadRejectsImplausibleTreeCount) {
  const std::string path = ::testing::TempDir() + "/bad_count.forest";
  // A corrupt count must be rejected before it drives an allocation.
  WriteFile(path, "random_forest 1\n987654321987 1\n");
  RandomForest forest;
  EXPECT_FALSE(forest.Load(path).ok());
  std::remove(path.c_str());
}

TEST(RandomForestTest, LoadRejectsGarbageHeader) {
  const std::string path = ::testing::TempDir() + "/garbage.forest";
  WriteFile(path, "random_forest one two three\n");
  RandomForest forest;
  EXPECT_FALSE(forest.Load(path).ok());
  std::remove(path.c_str());
}

TEST(RandomForestTest, LoadAcceptsMinimalValidTree) {
  // Baseline for the rejection tests below: one internal node with two
  // in-bounds, strictly-later children is a legitimate tree.
  const std::string path = ::testing::TempDir() + "/valid_tiny.forest";
  WriteFile(path,
            "random_forest 1\n1 1\n"
            "3\n0 0.5 1 2 0.0\n-1 0 -1 -1 1.0\n-1 0 -1 -1 2.0\n");
  RandomForest forest;
  ASSERT_TRUE(forest.Load(path).ok());
  const float lo = 0.0f;
  const float hi = 1.0f;
  EXPECT_FLOAT_EQ(forest.Predict(&lo, 1), std::expm1(1.0f));
  EXPECT_FLOAT_EQ(forest.Predict(&hi, 1), std::expm1(2.0f));
  std::remove(path.c_str());
}

TEST(RandomForestTest, LoadRejectsOutOfBoundsChild) {
  const std::string path = ::testing::TempDir() + "/oob_child.forest";
  // Internal node whose children point past the node array: accepting it
  // would send Predict out of bounds.
  WriteFile(path, "random_forest 1\n1 1\n1\n0 0.5 5 6 0.0\n");
  RandomForest forest;
  const Status status = forest.Load(path);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("corrupt"), std::string::npos);
  std::remove(path.c_str());
}

TEST(RandomForestTest, LoadRejectsBackwardChildCycle) {
  const std::string path = ::testing::TempDir() + "/cycle.forest";
  // Node 0 lists itself as its left child: accepting it would make Predict
  // loop forever. Children must come strictly after their parent.
  WriteFile(path,
            "random_forest 1\n1 1\n2\n0 0.5 0 1 0.0\n-1 0 -1 -1 1.0\n");
  RandomForest forest;
  EXPECT_FALSE(forest.Load(path).ok());
  std::remove(path.c_str());
}

TEST(RandomForestTest, LoadRejectsHugeFeatureIndex) {
  const std::string path = ::testing::TempDir() + "/huge_feature.forest";
  // Feature indices far beyond any plausible schema width mark corruption
  // even though Predict would merely read the feature as 0.
  WriteFile(path,
            "random_forest 1\n1 1\n"
            "3\n8388608 0.5 1 2 0.0\n-1 0 -1 -1 1.0\n-1 0 -1 -1 2.0\n");
  RandomForest forest;
  EXPECT_FALSE(forest.Load(path).ok());
  std::remove(path.c_str());
}

TEST(RandomForestTest, LoadRejectsImplausibleNodeCount) {
  const std::string path = ::testing::TempDir() + "/huge_nodes.forest";
  // A corrupt per-tree node count must be rejected before it drives an
  // allocation.
  WriteFile(path, "random_forest 1\n1 1\n99999999999\n");
  RandomForest forest;
  EXPECT_FALSE(forest.Load(path).ok());
  std::remove(path.c_str());
}

TEST(DecisionTreeTest, SingleLeafOnConstantLabels) {
  MlDataset data(1);
  for (int i = 0; i < 20; ++i) {
    data.Add({static_cast<float>(i)}, 5.0f);
  }
  std::vector<uint32_t> index(20);
  for (uint32_t i = 0; i < 20; ++i) index[i] = i;
  Rng rng(1);
  DecisionTree tree;
  tree.Fit(data, index, TreeParams{}, &rng);
  EXPECT_EQ(tree.num_nodes(), 1u);
  const float x = 3.0f;
  EXPECT_FLOAT_EQ(tree.Predict(&x, 1), 5.0f);
}

TEST(DecisionTreeTest, RespectsMaxDepth) {
  MlDataset data = NonlinearData(1000, 13);
  std::vector<uint32_t> index(data.size());
  for (uint32_t i = 0; i < index.size(); ++i) index[i] = i;
  TreeParams params;
  params.max_depth = 3;
  params.max_features = 0;  // All features.
  Rng rng(2);
  DecisionTree tree;
  tree.Fit(data, index, params, &rng);
  EXPECT_LE(tree.Depth(), 4);  // Root at depth 1.
}

TEST(DecisionTreeTest, EmptyIndicesYieldZeroLeaf) {
  MlDataset data(1);
  data.Add({1.0f}, 3.0f);
  Rng rng(3);
  DecisionTree tree;
  tree.Fit(data, {}, TreeParams{}, &rng);
  const float x = 1.0f;
  EXPECT_FLOAT_EQ(tree.Predict(&x, 1), 0.0f);
}

}  // namespace
}  // namespace robopt
