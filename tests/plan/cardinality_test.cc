#include "plan/cardinality.h"

#include <gtest/gtest.h>

#include "workloads/queries.h"

namespace robopt {
namespace {

LogicalPlan FilterChain(double source_card, double sel1, double sel2) {
  LogicalPlan plan;
  LogicalOperator src;
  src.kind = LogicalOpKind::kTextFileSource;
  src.source_cardinality = source_card;
  const OperatorId s = plan.Add(std::move(src));
  const OperatorId f1 =
      plan.Add(LogicalOpKind::kFilter, "f1", UdfComplexity::kLinear, sel1);
  plan.Connect(s, f1);
  const OperatorId f2 =
      plan.Add(LogicalOpKind::kFilter, "f2", UdfComplexity::kLinear, sel2);
  plan.Connect(f1, f2);
  const OperatorId sink = plan.Add(LogicalOpKind::kCollectionSink, "sink");
  plan.Connect(f2, sink);
  return plan;
}

TEST(CardinalityTest, FilterSelectivityCompounds) {
  LogicalPlan plan = FilterChain(1000.0, 0.5, 0.2);
  const Cardinalities cards = CardinalityEstimator(&plan).Estimate();
  EXPECT_DOUBLE_EQ(cards.output[0], 1000.0);
  EXPECT_DOUBLE_EQ(cards.output[1], 500.0);
  EXPECT_DOUBLE_EQ(cards.output[2], 100.0);
  EXPECT_DOUBLE_EQ(cards.input[3], 100.0);
}

TEST(CardinalityTest, InputIsSumOfParents) {
  LogicalPlan plan = MakeJoinPlan(1.0);
  const Cardinalities cards = CardinalityEstimator(&plan).Estimate();
  // Join input = filtered transactions + projected customers.
  OperatorId join = kInvalidOperatorId;
  for (const LogicalOperator& op : plan.operators()) {
    if (op.kind == LogicalOpKind::kJoin) join = op.id;
  }
  ASSERT_NE(join, kInvalidOperatorId);
  double expected = 0.0;
  for (OperatorId parent : plan.parents(join)) {
    expected += cards.output[parent];
  }
  EXPECT_DOUBLE_EQ(cards.input[join], expected);
}

TEST(CardinalityTest, JoinScalesWithLargerSide) {
  LogicalPlan plan;
  LogicalOperator big;
  big.kind = LogicalOpKind::kTextFileSource;
  big.source_cardinality = 1e6;
  const OperatorId b = plan.Add(std::move(big));
  LogicalOperator small;
  small.kind = LogicalOpKind::kTextFileSource;
  small.source_cardinality = 1e3;
  const OperatorId s = plan.Add(std::move(small));
  const OperatorId j =
      plan.Add(LogicalOpKind::kJoin, "join", UdfComplexity::kLinear, 0.5);
  plan.Connect(b, j);
  plan.Connect(s, j);
  const OperatorId sink = plan.Add(LogicalOpKind::kCollectionSink, "sink");
  plan.Connect(j, sink);
  const Cardinalities cards = CardinalityEstimator(&plan).Estimate();
  EXPECT_DOUBLE_EQ(cards.output[j], 0.5 * 1e6);
}

TEST(CardinalityTest, CartesianMultiplies) {
  LogicalPlan plan;
  LogicalOperator a;
  a.kind = LogicalOpKind::kTextFileSource;
  a.source_cardinality = 100;
  const OperatorId ida = plan.Add(std::move(a));
  LogicalOperator b;
  b.kind = LogicalOpKind::kTextFileSource;
  b.source_cardinality = 200;
  const OperatorId idb = plan.Add(std::move(b));
  const OperatorId c = plan.Add(LogicalOpKind::kCartesian, "cross");
  plan.Connect(ida, c);
  plan.Connect(idb, c);
  const OperatorId sink = plan.Add(LogicalOpKind::kCollectionSink, "sink");
  plan.Connect(c, sink);
  const Cardinalities cards = CardinalityEstimator(&plan).Estimate();
  EXPECT_DOUBLE_EQ(cards.output[c], 100.0 * 200.0);
}

TEST(CardinalityTest, CountEmitsOneTuple) {
  LogicalPlan plan;
  LogicalOperator src;
  src.kind = LogicalOpKind::kTextFileSource;
  src.source_cardinality = 5000;
  const OperatorId s = plan.Add(std::move(src));
  const OperatorId count = plan.Add(LogicalOpKind::kCount, "count");
  plan.Connect(s, count);
  const OperatorId sink = plan.Add(LogicalOpKind::kCollectionSink, "sink");
  plan.Connect(count, sink);
  const Cardinalities cards = CardinalityEstimator(&plan).Estimate();
  EXPECT_DOUBLE_EQ(cards.output[count], 1.0);
}

TEST(CardinalityTest, FlatMapFansOut) {
  LogicalPlan plan;
  LogicalOperator src;
  src.kind = LogicalOpKind::kTextFileSource;
  src.source_cardinality = 10;
  const OperatorId s = plan.Add(std::move(src));
  const OperatorId fm =
      plan.Add(LogicalOpKind::kFlatMap, "explode", UdfComplexity::kLinear,
               7.5);
  plan.Connect(s, fm);
  const OperatorId sink = plan.Add(LogicalOpKind::kCollectionSink, "sink");
  plan.Connect(fm, sink);
  const Cardinalities cards = CardinalityEstimator(&plan).Estimate();
  EXPECT_DOUBLE_EQ(cards.output[fm], 75.0);
}

TEST(CardinalityTest, InjectedCardinalityOverridesAndPropagates) {
  LogicalPlan plan = FilterChain(1000.0, 0.5, 0.2);
  CardinalityEstimator estimator(&plan);
  estimator.InjectOutputCardinality(1, 800.0);  // True card of filter 1.
  const Cardinalities cards = estimator.Estimate();
  EXPECT_DOUBLE_EQ(cards.output[1], 800.0);
  // Downstream re-propagates from the injected value.
  EXPECT_DOUBLE_EQ(cards.output[2], 160.0);
}

TEST(CardinalityTest, UnionAddsInputs) {
  LogicalPlan plan;
  LogicalOperator a;
  a.kind = LogicalOpKind::kTextFileSource;
  a.source_cardinality = 300;
  const OperatorId ida = plan.Add(std::move(a));
  LogicalOperator b;
  b.kind = LogicalOpKind::kTextFileSource;
  b.source_cardinality = 700;
  const OperatorId idb = plan.Add(std::move(b));
  const OperatorId u = plan.Add(LogicalOpKind::kUnion, "union");
  plan.Connect(ida, u);
  plan.Connect(idb, u);
  const OperatorId sink = plan.Add(LogicalOpKind::kCollectionSink, "sink");
  plan.Connect(u, sink);
  const Cardinalities cards = CardinalityEstimator(&plan).Estimate();
  EXPECT_DOUBLE_EQ(cards.output[u], 1000.0);
}

TEST(CardinalityTest, BroadcastEdgesDoNotAddStreamCardinality) {
  LogicalPlan plan = MakeKmeansPlan(10, 5, 3);
  const Cardinalities cards = CardinalityEstimator(&plan).Estimate();
  // The assign Map's stream input is the points, not points + centroids.
  OperatorId assign = kInvalidOperatorId;
  for (const LogicalOperator& op : plan.operators()) {
    if (op.name == "assign") assign = op.id;
  }
  ASSERT_NE(assign, kInvalidOperatorId);
  ASSERT_EQ(plan.parents(assign).size(), 1u);
  EXPECT_DOUBLE_EQ(cards.input[assign],
                   cards.output[plan.parents(assign)[0]]);
}

}  // namespace
}  // namespace robopt
