#include "plan/logical_plan.h"

#include <gtest/gtest.h>

namespace robopt {
namespace {

/// Builds the Fig. 3(a) running example: customers x transactions join.
LogicalPlan RunningExample() {
  LogicalPlan plan;
  LogicalOperator src1;
  src1.kind = LogicalOpKind::kTextFileSource;
  src1.name = "Transactions";
  src1.source_cardinality = 40e6;
  const OperatorId o1 = plan.Add(std::move(src1));
  const OperatorId o2 =
      plan.Add(LogicalOpKind::kFilter, "month", UdfComplexity::kLinear, 0.1);
  plan.Connect(o1, o2);
  LogicalOperator src2;
  src2.kind = LogicalOpKind::kTextFileSource;
  src2.name = "Customers";
  src2.source_cardinality = 2e6;
  const OperatorId o3 = plan.Add(std::move(src2));
  const OperatorId o4 =
      plan.Add(LogicalOpKind::kFilter, "country", UdfComplexity::kLinear, 0.1);
  plan.Connect(o3, o4);
  const OperatorId o5 = plan.Add(LogicalOpKind::kMap, "project");
  plan.Connect(o4, o5);
  const OperatorId o6 = plan.Add(LogicalOpKind::kJoin, "customer_id",
                                 UdfComplexity::kLinear, 0.5);
  plan.Connect(o2, o6);
  plan.Connect(o5, o6);
  const OperatorId o7 = plan.Add(LogicalOpKind::kReduceBy, "sum_count",
                                 UdfComplexity::kLinear, 0.01);
  plan.Connect(o6, o7);
  const OperatorId o8 = plan.Add(LogicalOpKind::kMap, "label");
  plan.Connect(o7, o8);
  const OperatorId o9 = plan.Add(LogicalOpKind::kCollectionSink, "sink");
  plan.Connect(o8, o9);
  return plan;
}

TEST(LogicalPlanTest, AddAssignsSequentialIds) {
  LogicalPlan plan;
  EXPECT_EQ(plan.Add(LogicalOpKind::kMap, "a"), 0);
  EXPECT_EQ(plan.Add(LogicalOpKind::kMap, "b"), 1);
  EXPECT_EQ(plan.num_operators(), 2);
}

TEST(LogicalPlanTest, ConnectTracksBothDirections) {
  LogicalPlan plan = RunningExample();
  EXPECT_EQ(plan.children(0).size(), 1u);
  EXPECT_EQ(plan.children(0)[0], 1);
  EXPECT_EQ(plan.parents(5).size(), 2u);  // Join has two inputs.
}

TEST(LogicalPlanTest, RunningExampleValidates) {
  EXPECT_TRUE(RunningExample().Validate().ok());
}

TEST(LogicalPlanTest, SourcesAndSinks) {
  LogicalPlan plan = RunningExample();
  const auto sources = plan.SourceIds();
  const auto sinks = plan.SinkIds();
  ASSERT_EQ(sources.size(), 2u);
  EXPECT_EQ(sources[0], 0);
  EXPECT_EQ(sources[1], 2);
  ASSERT_EQ(sinks.size(), 1u);
  EXPECT_EQ(sinks[0], 8);
}

TEST(LogicalPlanTest, TopologicalOrderRespectsEdges) {
  LogicalPlan plan = RunningExample();
  const auto order = plan.TopologicalOrder();
  ASSERT_EQ(order.size(), 9u);
  std::vector<int> position(9);
  for (size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
  for (const LogicalOperator& op : plan.operators()) {
    for (OperatorId child : plan.children(op.id)) {
      EXPECT_LT(position[op.id], position[child]);
    }
  }
}

TEST(LogicalPlanTest, ValidateRejectsEmptyPlan) {
  LogicalPlan plan;
  EXPECT_FALSE(plan.Validate().ok());
}

TEST(LogicalPlanTest, ValidateRejectsSourceWithoutCardinality) {
  LogicalPlan plan;
  plan.Add(LogicalOpKind::kTextFileSource, "src");
  EXPECT_FALSE(plan.Validate().ok());
}

TEST(LogicalPlanTest, ValidateRejectsDisconnectedUnary) {
  LogicalPlan plan;
  plan.Add(LogicalOpKind::kMap, "floating");
  EXPECT_FALSE(plan.Validate().ok());
}

TEST(LogicalPlanTest, ValidateRejectsJoinWithOneInput) {
  LogicalPlan plan;
  LogicalOperator src;
  src.kind = LogicalOpKind::kTextFileSource;
  src.source_cardinality = 10;
  const OperatorId s = plan.Add(std::move(src));
  const OperatorId j = plan.Add(LogicalOpKind::kJoin, "join");
  plan.Connect(s, j);
  EXPECT_FALSE(plan.Validate().ok());
}

TEST(LogicalPlanTest, ValidateRejectsUnpairedLoopEnd) {
  LogicalPlan plan;
  LogicalOperator src;
  src.kind = LogicalOpKind::kCollectionSource;
  src.source_cardinality = 10;
  const OperatorId s = plan.Add(std::move(src));
  LogicalOperator end;
  end.kind = LogicalOpKind::kLoopEnd;
  const OperatorId e = plan.Add(std::move(end));
  plan.Connect(s, e);
  EXPECT_FALSE(plan.Validate().ok());
}

TEST(LogicalPlanTest, ValidateRejectsLoopBeginWithoutIterations) {
  LogicalPlan plan;
  LogicalOperator src;
  src.kind = LogicalOpKind::kCollectionSource;
  src.source_cardinality = 10;
  const OperatorId s = plan.Add(std::move(src));
  LogicalOperator begin;
  begin.kind = LogicalOpKind::kLoopBegin;
  const OperatorId b = plan.Add(std::move(begin));
  plan.Connect(s, b);
  LogicalOperator end;
  end.kind = LogicalOpKind::kLoopEnd;
  end.loop_begin = b;
  const OperatorId e = plan.Add(std::move(end));
  plan.Connect(b, e);
  EXPECT_FALSE(plan.Validate().ok());
}

LogicalPlan LoopPlan(int iterations) {
  LogicalPlan plan;
  LogicalOperator data;
  data.kind = LogicalOpKind::kTextFileSource;
  data.source_cardinality = 1000;
  const OperatorId src = plan.Add(std::move(data));
  LogicalOperator init;
  init.kind = LogicalOpKind::kCollectionSource;
  init.source_cardinality = 3;
  const OperatorId i = plan.Add(std::move(init));
  LogicalOperator begin;
  begin.kind = LogicalOpKind::kLoopBegin;
  begin.loop_iterations = iterations;
  const OperatorId b = plan.Add(std::move(begin));
  plan.Connect(i, b);
  const OperatorId bcast = plan.Add(LogicalOpKind::kBroadcast, "state");
  plan.Connect(b, bcast);
  const OperatorId map = plan.Add(LogicalOpKind::kMap, "body");
  plan.Connect(src, map);
  plan.ConnectBroadcast(bcast, map);
  const OperatorId agg =
      plan.Add(LogicalOpKind::kReduceBy, "update", UdfComplexity::kLinear,
               0.01);
  plan.Connect(map, agg);
  LogicalOperator end;
  end.kind = LogicalOpKind::kLoopEnd;
  end.loop_begin = b;
  const OperatorId e = plan.Add(std::move(end));
  plan.Connect(agg, e);
  const OperatorId sink = plan.Add(LogicalOpKind::kCollectionSink, "sink");
  plan.Connect(e, sink);
  return plan;
}

TEST(LogicalPlanTest, LoopMembershipViaBroadcastEdges) {
  LogicalPlan plan = LoopPlan(10);
  ASSERT_TRUE(plan.Validate().ok());
  EXPECT_FALSE(plan.InLoop(0));  // Data source.
  EXPECT_FALSE(plan.InLoop(1));  // Init source.
  EXPECT_TRUE(plan.InLoop(2));   // LoopBegin.
  EXPECT_TRUE(plan.InLoop(3));   // Broadcast.
  EXPECT_TRUE(plan.InLoop(4));   // Body map (reached via side edge).
  EXPECT_TRUE(plan.InLoop(5));   // ReduceBy.
  EXPECT_TRUE(plan.InLoop(6));   // LoopEnd.
  EXPECT_FALSE(plan.InLoop(7));  // Sink.
}

TEST(LogicalPlanTest, LoopIterationsMultiplier) {
  LogicalPlan plan = LoopPlan(25);
  EXPECT_EQ(plan.LoopIterations(4), 25);
  EXPECT_EQ(plan.LoopIterations(0), 1);
}

TEST(LogicalPlanTest, LoopBodyContainsExactlyBodyOps) {
  LogicalPlan plan = LoopPlan(10);
  const auto body = plan.LoopBody(2);
  EXPECT_EQ(body.size(), 5u);  // begin, broadcast, map, reduce, end.
  for (OperatorId id : body) {
    EXPECT_TRUE(plan.InLoop(id));
  }
}

TEST(LogicalPlanTest, AllParentsIncludesSideEdges) {
  LogicalPlan plan = LoopPlan(10);
  EXPECT_EQ(plan.parents(4).size(), 1u);      // Data edge only.
  EXPECT_EQ(plan.AllParents(4).size(), 2u);   // + broadcast edge.
  EXPECT_EQ(plan.side_parents(4).size(), 1u);
}

TEST(LogicalPlanTest, DebugStringMentionsOperators) {
  LogicalPlan plan = RunningExample();
  const std::string dump = plan.DebugString();
  EXPECT_NE(dump.find("Join"), std::string::npos);
  EXPECT_NE(dump.find("o0"), std::string::npos);
}

}  // namespace
}  // namespace robopt
