#include <gtest/gtest.h>

#include "plan/logical_plan.h"
#include "workloads/queries.h"
#include "workloads/synthetic.h"

namespace robopt {
namespace {

TEST(TopologyTest, PipelinePlanIsOnePipeline) {
  LogicalPlan plan = MakeSyntheticPipeline(8, 1e6, /*seed=*/1);
  const TopologyCounts counts = plan.CountTopologies();
  EXPECT_EQ(counts.pipeline, 1);
  EXPECT_EQ(counts.juncture, 0);
  EXPECT_EQ(counts.replicate, 0);
  EXPECT_EQ(counts.loop, 0);
}

TEST(TopologyTest, RunningExampleMatchesPaperFig3) {
  // The paper states Fig. 3(a) has three pipelines and one juncture.
  LogicalPlan plan = MakeJoinPlan(1.0);
  const TopologyCounts counts = plan.CountTopologies();
  EXPECT_EQ(counts.juncture, 1);
  EXPECT_EQ(counts.pipeline, 3);
  EXPECT_EQ(counts.loop, 0);
}

TEST(TopologyTest, JoinTreeCountsJunctures) {
  LogicalPlan plan = MakeSyntheticJoinTree(3, 1e6, /*seed=*/2);
  const TopologyCounts counts = plan.CountTopologies();
  EXPECT_EQ(counts.juncture, 3);
  EXPECT_GE(counts.pipeline, 4);  // One chain per source branch + tail.
}

TEST(TopologyTest, LoopPlanCountsOneLoop) {
  LogicalPlan plan = MakeSyntheticLoopPlan(12, 1e6, 10, /*seed=*/3);
  const TopologyCounts counts = plan.CountTopologies();
  EXPECT_EQ(counts.loop, 1);
}

TEST(TopologyTest, KmeansTagsBodyAsLoop) {
  LogicalPlan plan = MakeKmeansPlan(100, 10, 5);
  const auto tags = plan.OperatorTopologies();
  int loop_tagged = 0;
  for (Topology tag : tags) {
    if (tag == Topology::kLoop) ++loop_tagged;
  }
  EXPECT_EQ(loop_tagged, 5);  // begin, broadcast, assign, update, end.
}

TEST(TopologyTest, JunctureTagOnJoinOperator) {
  LogicalPlan plan = MakeJoinPlan(1.0);
  const auto tags = plan.OperatorTopologies();
  int junctures = 0;
  for (const LogicalOperator& op : plan.operators()) {
    if (tags[op.id] == Topology::kJuncture) {
      ++junctures;
      EXPECT_EQ(op.kind, LogicalOpKind::kJoin);
    }
  }
  EXPECT_EQ(junctures, 1);
}

TEST(TopologyTest, ReplicateTagOnMultiOutputOperator) {
  LogicalPlan plan;
  LogicalOperator src;
  src.kind = LogicalOpKind::kTextFileSource;
  src.source_cardinality = 100;
  const OperatorId s = plan.Add(std::move(src));
  const OperatorId cache = plan.Add(LogicalOpKind::kCache, "shared");
  plan.Connect(s, cache);
  const OperatorId m1 = plan.Add(LogicalOpKind::kMap, "branch1");
  const OperatorId m2 = plan.Add(LogicalOpKind::kMap, "branch2");
  plan.Connect(cache, m1);
  plan.Connect(cache, m2);
  const OperatorId sink1 = plan.Add(LogicalOpKind::kCollectionSink, "s1");
  const OperatorId sink2 = plan.Add(LogicalOpKind::kCollectionSink, "s2");
  plan.Connect(m1, sink1);
  plan.Connect(m2, sink2);

  const auto tags = plan.OperatorTopologies();
  EXPECT_EQ(tags[cache], Topology::kReplicate);
  const TopologyCounts counts = plan.CountTopologies();
  EXPECT_EQ(counts.replicate, 1);
  EXPECT_EQ(counts.pipeline, 3);  // src chain, and the two branches.
}

TEST(TopologyTest, ToStringNames) {
  EXPECT_EQ(ToString(Topology::kPipeline), "pipeline");
  EXPECT_EQ(ToString(Topology::kJuncture), "juncture");
  EXPECT_EQ(ToString(Topology::kReplicate), "replicate");
  EXPECT_EQ(ToString(Topology::kLoop), "loop");
}

}  // namespace
}  // namespace robopt
