#include "plan/fingerprint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace robopt {
namespace {

LogicalOperator Source(double cardinality) {
  LogicalOperator op;
  op.kind = LogicalOpKind::kCollectionSource;
  op.name = "source";
  op.source_cardinality = cardinality;
  return op;
}

LogicalOperator Op(LogicalOpKind kind, double selectivity = 1.0) {
  LogicalOperator op;
  op.kind = kind;
  op.selectivity = selectivity;
  return op;
}

/// The reference shape: two sources joined, then filtered into a sink.
LogicalPlan JoinPlan(bool swap_insertion_order, bool swap_join_sides = false) {
  LogicalPlan plan;
  OperatorId left, right, join, filter, sink;
  if (!swap_insertion_order) {
    left = plan.Add(Source(1e6));
    right = plan.Add(Source(1e3));
    join = plan.Add(Op(LogicalOpKind::kJoin, 0.01));
    filter = plan.Add(Op(LogicalOpKind::kFilter, 0.5));
    sink = plan.Add(Op(LogicalOpKind::kCollectionSink));
  } else {
    // Same graph, operators added back to front.
    sink = plan.Add(Op(LogicalOpKind::kCollectionSink));
    filter = plan.Add(Op(LogicalOpKind::kFilter, 0.5));
    join = plan.Add(Op(LogicalOpKind::kJoin, 0.01));
    right = plan.Add(Source(1e3));
    left = plan.Add(Source(1e6));
  }
  if (swap_join_sides) {
    plan.Connect(right, join);
    plan.Connect(left, join);
  } else {
    plan.Connect(left, join);
    plan.Connect(right, join);
  }
  plan.Connect(join, filter);
  plan.Connect(filter, sink);
  return plan;
}

TEST(PlanFingerprintTest, DeterministicAcrossCalls) {
  const LogicalPlan plan = JoinPlan(false);
  const PlanFingerprint a = FingerprintPlan(plan);
  const PlanFingerprint b = FingerprintPlan(plan);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, PlanFingerprint{});  // Not the zero value.
}

TEST(PlanFingerprintTest, InsertionOrderDoesNotMatter) {
  // The same dataflow graph built in two different Add() orders must
  // fingerprint identically — that is the cache key's whole contract.
  EXPECT_EQ(FingerprintPlan(JoinPlan(false)), FingerprintPlan(JoinPlan(true)));
}

TEST(PlanFingerprintTest, NodeHashesGiveCanonicalCorrespondence) {
  // The fingerprint is insertion-order independent, but operator ids are
  // not: the same operator gets a different id in each build. The per-node
  // hashes are the canonical correspondence between the two id spaces —
  // anything cached per operator under the fingerprint must transfer
  // through them, never by raw id (the serving plan cache relies on this).
  LogicalPlan a = JoinPlan(false);  // ids: left 0, right 1, join 2, ...
  LogicalPlan b = JoinPlan(true);   // ids: sink 0, filter 1, join 2, ...
  std::vector<uint64_t> ha, hb;
  EXPECT_EQ(FingerprintPlan(a, &ha), FingerprintPlan(b, &hb));
  ASSERT_EQ(ha.size(), 5u);
  ASSERT_EQ(hb.size(), 5u);

  // The hash multisets are equal even though the id-indexed sequences are
  // permuted relative to each other.
  std::vector<uint64_t> sa = ha;
  std::vector<uint64_t> sb = hb;
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  EXPECT_EQ(sa, sb);
  EXPECT_NE(ha, hb);

  // Each operator keeps its hash across builds; b's ids run back to front.
  EXPECT_EQ(ha[0], hb[4]);  // source 1e6
  EXPECT_EQ(ha[1], hb[3]);  // source 1e3
  EXPECT_EQ(ha[2], hb[2]);  // join
  EXPECT_EQ(ha[3], hb[1]);  // filter
  EXPECT_EQ(ha[4], hb[0]);  // sink

  // The node-hash overload computes the same fingerprint as the plain one.
  EXPECT_EQ(FingerprintPlan(a, &ha), FingerprintPlan(a));
}

TEST(PlanFingerprintTest, NamesDoNotMatter) {
  LogicalPlan a = JoinPlan(false);
  LogicalPlan b = JoinPlan(false);
  b.mutable_op(0).name = "renamed";
  EXPECT_EQ(FingerprintPlan(a), FingerprintPlan(b));
}

TEST(PlanFingerprintTest, JoinSidesArePositional) {
  // Build vs probe side is semantic: swapping the join inputs is a
  // different plan even though the operator multiset is unchanged.
  EXPECT_NE(FingerprintPlan(JoinPlan(false, false)),
            FingerprintPlan(JoinPlan(false, true)));
}

TEST(PlanFingerprintTest, LocalFieldsMatter) {
  const PlanFingerprint base = FingerprintPlan(JoinPlan(false));

  LogicalPlan selectivity = JoinPlan(false);
  selectivity.mutable_op(3).selectivity = 0.25;
  EXPECT_NE(FingerprintPlan(selectivity), base);

  LogicalPlan udf = JoinPlan(false);
  udf.mutable_op(3).udf = UdfComplexity::kQuadratic;
  EXPECT_NE(FingerprintPlan(udf), base);

  LogicalPlan kernel = JoinPlan(false);
  kernel.mutable_op(3).kernel = "custom_filter";
  EXPECT_NE(FingerprintPlan(kernel), base);

  LogicalPlan cardinality = JoinPlan(false);
  cardinality.mutable_op(0).source_cardinality = 2e6;
  EXPECT_NE(FingerprintPlan(cardinality), base);
}

TEST(PlanFingerprintTest, SignedZeroSelectivityIsCanonical) {
  LogicalPlan pos = JoinPlan(false);
  LogicalPlan neg = JoinPlan(false);
  pos.mutable_op(3).selectivity = 0.0;
  neg.mutable_op(3).selectivity = -0.0;
  EXPECT_EQ(FingerprintPlan(pos), FingerprintPlan(neg));
}

TEST(PlanFingerprintTest, StructureMatters) {
  // source -> a -> b -> sink  vs  source -> b -> a -> sink: same operator
  // multiset, different wiring.
  LogicalPlan ab;
  {
    const OperatorId src = ab.Add(Source(1e5));
    const OperatorId a = ab.Add(Op(LogicalOpKind::kFilter, 0.5));
    const OperatorId b = ab.Add(Op(LogicalOpKind::kMap));
    const OperatorId sink = ab.Add(Op(LogicalOpKind::kCollectionSink));
    ab.Connect(src, a);
    ab.Connect(a, b);
    ab.Connect(b, sink);
  }
  LogicalPlan ba;
  {
    const OperatorId src = ba.Add(Source(1e5));
    const OperatorId a = ba.Add(Op(LogicalOpKind::kFilter, 0.5));
    const OperatorId b = ba.Add(Op(LogicalOpKind::kMap));
    const OperatorId sink = ba.Add(Op(LogicalOpKind::kCollectionSink));
    ba.Connect(src, b);
    ba.Connect(b, a);
    ba.Connect(a, sink);
  }
  EXPECT_NE(FingerprintPlan(ab), FingerprintPlan(ba));
}

TEST(PlanFingerprintTest, BroadcastEdgesAreDistinctFromDataEdges) {
  LogicalPlan data;
  {
    const OperatorId src = data.Add(Source(1e5));
    const OperatorId side = data.Add(Source(100));
    const OperatorId join = data.Add(Op(LogicalOpKind::kJoin, 0.1));
    const OperatorId sink = data.Add(Op(LogicalOpKind::kCollectionSink));
    data.Connect(src, join);
    data.Connect(side, join);
    data.Connect(join, sink);
  }
  LogicalPlan broadcast;
  {
    const OperatorId src = broadcast.Add(Source(1e5));
    const OperatorId side = broadcast.Add(Source(100));
    const OperatorId map = broadcast.Add(Op(LogicalOpKind::kJoin, 0.1));
    const OperatorId sink = broadcast.Add(Op(LogicalOpKind::kCollectionSink));
    broadcast.Connect(src, map);
    broadcast.ConnectBroadcast(side, map);
    broadcast.Connect(map, sink);
  }
  EXPECT_NE(FingerprintPlan(data), FingerprintPlan(broadcast));
}

TEST(PlanFingerprintTest, ToStringIs32HexDigits) {
  const PlanFingerprint fp = FingerprintPlan(JoinPlan(false));
  const std::string hex = fp.ToString();
  ASSERT_EQ(hex.size(), 32u);
  for (const char c : hex) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << c;
  }
  EXPECT_NE(hex, PlanFingerprint{}.ToString());
}

TEST(PlanFingerprintTest, CardsHashIsOrderAndValueSensitive) {
  Cardinalities a;
  a.input = {10.0, 20.0};
  a.output = {5.0, 2.0};
  Cardinalities b = a;
  EXPECT_EQ(FingerprintCards(a), FingerprintCards(b));
  b.output = {2.0, 5.0};
  EXPECT_NE(FingerprintCards(a), FingerprintCards(b));
  Cardinalities zero;
  zero.input = {0.0};
  Cardinalities negzero;
  negzero.input = {-0.0};
  EXPECT_EQ(FingerprintCards(zero), FingerprintCards(negzero));
}

}  // namespace
}  // namespace robopt
