#include "common/stopwatch.h"

#include <gtest/gtest.h>

#include <thread>

namespace robopt {
namespace {

// The whole point of the stopwatch: it must be immune to wall-clock steps,
// which requires a monotonic clock. Compile-time regression — if anyone
// swaps in system_clock (or high_resolution_clock, which aliases it on some
// standard libraries), this fails to build.
static_assert(Stopwatch::Clock::is_steady,
              "Stopwatch must measure on a monotonic (steady) clock");

TEST(StopwatchTest, ElapsedNeverDecreases) {
  Stopwatch stopwatch;
  double last = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double now = stopwatch.ElapsedMicros();
    ASSERT_GE(now, last) << "monotonic clock went backwards at i=" << i;
    last = now;
  }
  EXPECT_GE(last, 0.0);
}

TEST(StopwatchTest, UnitsAgree) {
  Stopwatch stopwatch;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const double us = stopwatch.ElapsedMicros();
  const double ms = stopwatch.ElapsedMillis();
  const double s = stopwatch.ElapsedSeconds();
  EXPECT_GE(us, 2000.0);
  // Readings are taken in sequence, so each later one may only be larger.
  EXPECT_GE(ms * 1000.0, us);
  EXPECT_GE(s * 1000.0, ms);
  EXPECT_LT(s, 10.0);  // Sanity: nowhere near seconds.
}

TEST(StopwatchTest, RestartResets) {
  Stopwatch stopwatch;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const double before = stopwatch.ElapsedMicros();
  stopwatch.Restart();
  const double after = stopwatch.ElapsedMicros();
  EXPECT_LT(after, before);
  EXPECT_GE(after, 0.0);
}

}  // namespace
}  // namespace robopt
