#include "common/strings.h"

#include <gtest/gtest.h>

#include <limits>

namespace robopt {
namespace {

TEST(StringsTest, SplitTokensBasic) {
  const auto tokens = SplitTokens("hello brave  new world");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0], "hello");
  EXPECT_EQ(tokens[3], "world");
}

TEST(StringsTest, SplitTokensEmptyAndWhitespaceOnly) {
  EXPECT_TRUE(SplitTokens("").empty());
  EXPECT_TRUE(SplitTokens("   \t\n ").empty());
}

TEST(StringsTest, SplitTokensCustomDelims) {
  const auto tokens = SplitTokens("a,b;;c", ",;");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1], "b");
}

TEST(StringsTest, JoinStrings) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(JoinStrings({"solo"}, ","), "solo");
}

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(StringsTest, FormatSecondsRanges) {
  EXPECT_EQ(FormatSeconds(5e-6), "5.0 us");
  EXPECT_EQ(FormatSeconds(0.25), "250.0 ms");
  EXPECT_EQ(FormatSeconds(42.0), "42.00 s");
  EXPECT_EQ(FormatSeconds(600.0), "10.0 min");
  EXPECT_EQ(FormatSeconds(std::numeric_limits<double>::infinity()), "inf");
}

}  // namespace
}  // namespace robopt
