#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

namespace robopt {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsHalf) {
  Rng rng(7);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NextBoundedStaysInBound) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextIntCoversInclusiveRange) {
  Rng rng(11);
  std::map<int64_t, int> histogram;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.NextInt(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    ++histogram[v];
  }
  EXPECT_EQ(histogram.size(), 5u);  // All five values hit.
}

TEST(RngTest, NextGaussianMoments) {
  Rng rng(13);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(RngTest, ZipfRanksWithinRange) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t rank = rng.NextZipf(1000, 1.3);
    EXPECT_GE(rank, 1u);
    EXPECT_LE(rank, 1000u);
  }
}

TEST(RngTest, ZipfIsSkewedTowardsLowRanks) {
  Rng rng(19);
  int low = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextZipf(10000, 1.5) <= 10) ++low;
  }
  // The head of a Zipf(1.5) distribution carries most of the mass.
  EXPECT_GT(low, n / 2);
}

TEST(RngTest, ZipfHandlesExponentOne) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t rank = rng.NextZipf(100, 1.0);
    EXPECT_GE(rank, 1u);
    EXPECT_LE(rank, 100u);
  }
}

TEST(RngTest, BernoulliRespectsProbability) {
  Rng rng(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

}  // namespace
}  // namespace robopt
