#include "common/status.h"

#include <gtest/gtest.h>

namespace robopt {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad operator id");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad operator id");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad operator id");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = Status::NotFound("missing");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> result = std::string("payload");
  ASSERT_TRUE(result.ok());
  std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> result = std::string("abc");
  EXPECT_EQ(result->size(), 3u);
}

Status FailsFast() {
  ROBOPT_RETURN_IF_ERROR(Status::Internal("inner"));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(FailsFast().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace robopt
