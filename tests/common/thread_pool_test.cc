#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace robopt {
namespace {

TEST(ThreadPoolTest, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  for (auto& h : hits) h = 0;
  pool.ParallelFor(0, hits.size(), 1, 4, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i]++;
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, EmptyRangeIsNoOp) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(5, 5, 1, 2, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, GrainBoundsShardCount) {
  ThreadPool pool(8);
  std::atomic<int> chunks{0};
  std::atomic<size_t> total{0};
  // 100 indices with grain 60: at most 2 shards despite 8 threads.
  pool.ParallelFor(0, 100, 60, 8, [&](size_t begin, size_t end) {
    ++chunks;
    total += end - begin;
  });
  EXPECT_LE(chunks.load(), 2);
  EXPECT_EQ(total.load(), 100u);
}

TEST(ThreadPoolTest, ReusableAcrossManyCalls) {
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<long> sum{0};
    pool.ParallelFor(0, 1000, 10, 4, [&](size_t begin, size_t end) {
      long local = 0;
      for (size_t i = begin; i < end; ++i) local += static_cast<long>(i);
      sum += local;
    });
    EXPECT_EQ(sum.load(), 499500);
  }
}

TEST(ThreadPoolTest, NestedCallRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> inner_total{0};
  pool.ParallelFor(0, 8, 1, 4, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      pool.ParallelFor(0, 10, 1, 4, [&](size_t b, size_t e) {
        inner_total += static_cast<int>(e - b);
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 80);
}

TEST(ThreadPoolTest, SerialHelperBypassesPool) {
  // num_threads <= 1 must call fn exactly once with the whole range, from
  // the calling thread (the "exact serial path" contract).
  const auto caller = std::this_thread::get_id();
  int calls = 0;
  ParallelFor(1, 3, 17, 1, [&](size_t begin, size_t end) {
    ++calls;
    EXPECT_EQ(begin, 3u);
    EXPECT_EQ(end, 17u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, GlobalPoolMatchesHardware) {
  EXPECT_GE(ThreadPool::HardwareThreads(), 1);
  EXPECT_EQ(ThreadPool::Global().num_threads(), ThreadPool::HardwareThreads());
}

}  // namespace
}  // namespace robopt
