#include "common/ticket_queue.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace robopt {
namespace {

TEST(TicketQueueTest, AdmitsUpToCapacityThenSheds) {
  TicketQueue queue(2);
  uint64_t t0 = 0, t1 = 0, t2 = 0;
  EXPECT_TRUE(queue.TryEnter(&t0));
  EXPECT_TRUE(queue.TryEnter(&t1));
  EXPECT_EQ(queue.depth(), 2u);
  // Full: the third caller sheds without side effects.
  EXPECT_FALSE(queue.TryEnter(&t2));
  EXPECT_EQ(queue.depth(), 2u);
  // Serving the first ticket frees a slot.
  queue.WaitTurn(t0);
  queue.Leave();
  EXPECT_TRUE(queue.TryEnter(&t2));
  EXPECT_EQ(t2, 2u);
  queue.WaitTurn(t1);
  queue.Leave();
  queue.WaitTurn(t2);
  queue.Leave();
  EXPECT_EQ(queue.depth(), 0u);
}

TEST(TicketQueueTest, TicketsAreSequential) {
  TicketQueue queue(8);
  for (uint64_t round = 0; round < 3; ++round) {
    uint64_t ticket = 0;
    ASSERT_TRUE(queue.TryEnter(&ticket));
    EXPECT_EQ(ticket, round);
    queue.WaitTurn(ticket);
    queue.Leave();
  }
}

TEST(TicketQueueTest, SerializesConcurrentHoldersFifo) {
  // The serving window admits exactly one holder at a time, in ticket
  // order. Both invariants are checked through *plain* (non-atomic) state
  // mutated inside the window — under TSan this also proves the
  // release/acquire chain that sharded serving relies on for its
  // shard-local state.
  TicketQueue queue(64);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  uint64_t last_served = 0;  // Plain: only the window holder touches it.
  bool first = true;
  uint64_t counter = 0;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        uint64_t ticket = 0;
        while (!queue.TryEnter(&ticket)) std::this_thread::yield();
        queue.WaitTurn(ticket);
        if (!first) {
          EXPECT_EQ(ticket, last_served + 1) << "FIFO violated";
        }
        first = false;
        last_served = ticket;
        ++counter;
        queue.Leave();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(queue.depth(), 0u);
}

}  // namespace
}  // namespace robopt
