#include "workload/workload.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "workload/arrival.h"
#include "workload/generators.h"
#include "workload/plan_serde.h"

namespace robopt {
namespace {

/// Byte-level identity of two workload ops (plans compared through the
/// serializer, which captures every field and both adjacency orders).
std::string OpKey(const WorkloadOp& op) {
  std::string key;
  SerializePlan(op.plan, &key);
  key += '|';
  key += std::to_string(static_cast<int>(op.kind)) + '|' +
         std::to_string(op.tenant) + '|' + std::to_string(op.arrival_s) +
         '|' + std::to_string(op.actual_runtime_s) + '|' +
         std::to_string(op.has_cards);
  if (op.has_cards) {
    SerializeCards(op.cards, &key);
  }
  return key;
}

std::vector<WorkloadOp> Drain(WorkloadSource* source) {
  std::vector<WorkloadOp> ops;
  WorkloadOp op;
  while (source->GetNext(&op)) ops.push_back(op);
  return ops;
}

TEST(OpenLoopSourceTest, SeedMakesTheStreamByteIdentical) {
  GeneratorOptions options;
  options.base.seed = 99;
  options.base.max_ops = 64;
  options.arrival.kind = ArrivalOptions::Kind::kBursty;
  OpenLoopSource a(PlanPool::kSynthetic, options);
  OpenLoopSource b(PlanPool::kSynthetic, options);
  ASSERT_TRUE(a.Load().ok());
  ASSERT_TRUE(b.Load().ok());
  const std::vector<WorkloadOp> ops_a = Drain(&a);
  const std::vector<WorkloadOp> ops_b = Drain(&b);
  ASSERT_EQ(ops_a.size(), 64u);
  ASSERT_EQ(ops_a.size(), ops_b.size());
  for (size_t i = 0; i < ops_a.size(); ++i) {
    EXPECT_EQ(OpKey(ops_a[i]), OpKey(ops_b[i])) << "op " << i;
    EXPECT_EQ(ops_a[i].sequence, i);
  }
}

TEST(OpenLoopSourceTest, DifferentSeedsDiverge) {
  GeneratorOptions options;
  options.base.max_ops = 32;
  options.base.seed = 1;
  OpenLoopSource a(PlanPool::kSynthetic, options);
  options.base.seed = 2;
  OpenLoopSource b(PlanPool::kSynthetic, options);
  ASSERT_TRUE(a.Load().ok());
  ASSERT_TRUE(b.Load().ok());
  const std::vector<WorkloadOp> ops_a = Drain(&a);
  const std::vector<WorkloadOp> ops_b = Drain(&b);
  ASSERT_EQ(ops_a.size(), ops_b.size());
  bool any_diff = false;
  for (size_t i = 0; i < ops_a.size() && !any_diff; ++i) {
    any_diff = OpKey(ops_a[i]) != OpKey(ops_b[i]);
  }
  EXPECT_TRUE(any_diff);
}

TEST(OpenLoopSourceTest, ArrivalsAreNonDecreasingAndTenantsHeavyTailed) {
  GeneratorOptions options;
  options.base.seed = 7;
  options.base.max_ops = 512;
  options.base.num_tenants = 16;
  options.base.tenant_zipf_s = 1.5;
  options.arrival.kind = ArrivalOptions::Kind::kDiurnal;
  OpenLoopSource source(PlanPool::kSynthetic, options);
  ASSERT_TRUE(source.Load().ok());
  const std::vector<WorkloadOp> ops = Drain(&source);
  ASSERT_EQ(ops.size(), 512u);
  std::map<uint64_t, int> per_tenant;
  double last = 0.0;
  for (const WorkloadOp& op : ops) {
    EXPECT_GE(op.arrival_s, last);
    last = op.arrival_s;
    EXPECT_LT(op.tenant, 16u);
    ++per_tenant[op.tenant];
  }
  // Zipf s=1.5: the most popular tenant dominates any mid-rank tenant.
  int top = 0;
  for (const auto& [tenant, count] : per_tenant) top = std::max(top, count);
  EXPECT_GT(top, static_cast<int>(ops.size()) / 8);
}

TEST(OpenLoopSourceTest, FeedbackOpsRideTheStream) {
  GeneratorOptions options;
  options.base.seed = 5;
  options.base.max_ops = 128;
  options.feedback_fraction = 0.5;
  OpenLoopSource source(PlanPool::kSynthetic, options);
  ASSERT_TRUE(source.Load().ok());
  size_t feedbacks = 0;
  for (const WorkloadOp& op : Drain(&source)) {
    if (op.kind == WorkloadOpKind::kFeedback) {
      ++feedbacks;
      EXPECT_TRUE(op.has_cards);
      EXPECT_TRUE(op.assignment.empty());
      EXPECT_GT(op.actual_runtime_s, 0.0);
    }
  }
  EXPECT_GT(feedbacks, 16u);
}

TEST(OpenLoopSourceTest, PaperPoolStreams) {
  GeneratorOptions options;
  options.base.seed = 3;
  options.base.max_ops = 24;
  OpenLoopSource source(PlanPool::kPaper, options);
  ASSERT_TRUE(source.Load().ok());
  EXPECT_EQ(source.name(), "open_loop_paper");
  const std::vector<WorkloadOp> ops = Drain(&source);
  ASSERT_EQ(ops.size(), 24u);
  for (const WorkloadOp& op : ops) {
    EXPECT_TRUE(op.plan.Validate().ok());
  }
}

TEST(OpenLoopSourceTest, OpCounterLandsInTheRegistry) {
  MetricsRegistry metrics;
  GeneratorOptions options;
  options.base.max_ops = 8;
  options.base.metrics = &metrics;
  OpenLoopSource source(PlanPool::kSynthetic, options);
  ASSERT_TRUE(source.Load().ok());
  (void)Drain(&source);
  const MetricsSnapshot snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.Value(
                "robopt_workload_ops_total{source=\"open_loop_synthetic\"}",
                -1.0),
            8.0);
}

TEST(ArrivalProcessTest, EveryKindIsMonotoneAndDeterministic) {
  for (const auto kind :
       {ArrivalOptions::Kind::kClosedLoop, ArrivalOptions::Kind::kFixedRate,
        ArrivalOptions::Kind::kPoisson, ArrivalOptions::Kind::kDiurnal,
        ArrivalOptions::Kind::kBursty}) {
    ArrivalOptions options;
    options.kind = kind;
    options.rate_per_s = 50.0;
    ArrivalProcess a(options, 11);
    ArrivalProcess b(options, 11);
    double last = 0.0;
    for (int i = 0; i < 200; ++i) {
      const double t = a.Next();
      EXPECT_EQ(t, b.Next());
      EXPECT_GE(t, last);
      last = t;
    }
  }
}

TEST(ArrivalProcessTest, PoissonRateIsRoughlyHonored) {
  ArrivalOptions options;
  options.kind = ArrivalOptions::Kind::kPoisson;
  options.rate_per_s = 100.0;
  ArrivalProcess arrivals(options, 23);
  double last = 0.0;
  for (int i = 0; i < 2000; ++i) last = arrivals.Next();
  // 2000 arrivals at 100/s ≈ 20s of stream time (±30% is generous).
  EXPECT_GT(last, 14.0);
  EXPECT_LT(last, 26.0);
}

TEST(ArrivalProcessTest, BurstyIsBurstierThanPoisson) {
  ArrivalOptions poisson;
  poisson.kind = ArrivalOptions::Kind::kPoisson;
  poisson.rate_per_s = 100.0;
  ArrivalOptions bursty;
  bursty.kind = ArrivalOptions::Kind::kBursty;
  bursty.rate_per_s = 100.0;
  bursty.burst_rate_multiplier = 20.0;
  auto cv2 = [](ArrivalOptions options) {
    ArrivalProcess arrivals(options, 31);
    double last = 0.0, sum = 0.0, sum2 = 0.0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
      const double t = arrivals.Next();
      const double gap = t - last;
      last = t;
      sum += gap;
      sum2 += gap * gap;
    }
    const double mean = sum / n;
    const double var = sum2 / n - mean * mean;
    return var / (mean * mean);  // Squared coefficient of variation.
  };
  // Poisson has CV² ≈ 1; an MMPP with a 20x burst state is well above it.
  EXPECT_GT(cv2(bursty), cv2(poisson) * 1.5);
}

TEST(CheckpointRestartSourceTest, DalyIntervalAndSegmentStream) {
  CheckpointRestartSource::Options options;
  options.base.seed = 13;
  options.base.max_ops = 96;
  options.mtbf_s = 400.0;
  options.checkpoint_cost_s = 2.0;
  options.job_work_s = 300.0;
  CheckpointRestartSource source(options);
  EXPECT_NEAR(source.daly_interval_s(), std::sqrt(2.0 * 2.0 * 400.0), 1e-9);
  ASSERT_TRUE(source.Load().ok());
  const std::vector<WorkloadOp> ops = Drain(&source);
  ASSERT_EQ(ops.size(), 96u);
  size_t optimizes = 0, feedbacks = 0;
  double last = 0.0;
  for (const WorkloadOp& op : ops) {
    EXPECT_GE(op.arrival_s, last);
    last = op.arrival_s;
    if (op.kind == WorkloadOpKind::kOptimize) {
      ++optimizes;
    } else {
      ++feedbacks;
      // A segment's wall time is at least its checkpoint write.
      EXPECT_GE(op.actual_runtime_s, options.checkpoint_cost_s);
    }
  }
  EXPECT_GT(optimizes, 0u);
  // Long jobs: several checkpointed segments per submission.
  EXPECT_GT(feedbacks, optimizes);

  CheckpointRestartSource again(options);
  ASSERT_TRUE(again.Load().ok());
  const std::vector<WorkloadOp> ops2 = Drain(&again);
  ASSERT_EQ(ops.size(), ops2.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    EXPECT_EQ(OpKey(ops[i]), OpKey(ops2[i])) << "op " << i;
  }
}

TEST(PlanSerdeTest, PaperPlansRoundTripByteForByte) {
  for (LogicalPlan& plan : MakePaperPlanPool(0.01)) {
    std::string bytes;
    SerializePlan(plan, &bytes);
    auto restored = DeserializePlan(bytes);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    std::string bytes2;
    SerializePlan(*restored, &bytes2);
    EXPECT_EQ(bytes, bytes2);
    EXPECT_TRUE(restored->Validate().ok());
  }
}

TEST(PlanSerdeTest, AdjacencyOrderSurvivesTheRoundTrip) {
  // A join whose build/probe order matters: children/parents list orders
  // must come back exactly, or replayed optimizations could enumerate in a
  // different order.
  LogicalPlan plan;
  auto source = [&](double cardinality) {
    LogicalOperator op;
    op.kind = LogicalOpKind::kCollectionSource;
    op.source_cardinality = cardinality;
    op.tuple_bytes = 8;
    return plan.Add(op);
  };
  const OperatorId left = source(1000);
  const OperatorId right = source(500);
  LogicalOperator join_op;
  join_op.kind = LogicalOpKind::kJoin;
  join_op.selectivity = 0.1;
  const OperatorId join = plan.Add(join_op);
  LogicalOperator sink_op;
  sink_op.kind = LogicalOpKind::kCollectionSink;
  const OperatorId sink = plan.Add(sink_op);
  plan.Connect(left, join);
  plan.Connect(right, join);
  plan.Connect(join, sink);

  std::string bytes;
  SerializePlan(plan, &bytes);
  auto restored = DeserializePlan(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored->parents(join).size(), 2u);
  EXPECT_EQ(restored->parents(join)[0], left);
  EXPECT_EQ(restored->parents(join)[1], right);
  EXPECT_EQ(restored->children(left), plan.children(left));
  EXPECT_EQ(restored->TopologicalOrder(), plan.TopologicalOrder());
}

TEST(PlanSerdeTest, CorruptPlansAreRejectedNotCrashed) {
  LogicalPlan plan = MakeSyntheticPlanPool(1, 5)[0];
  std::string bytes;
  SerializePlan(plan, &bytes);

  // Truncations at every prefix length must reject cleanly.
  for (size_t len = 0; len < bytes.size(); len += 7) {
    auto truncated = DeserializePlan(bytes.substr(0, len));
    EXPECT_FALSE(truncated.ok()) << "prefix " << len;
  }
  // Trailing garbage.
  EXPECT_FALSE(DeserializePlan(bytes + "xx").ok());
  // Version bump.
  std::string wrong_version = bytes;
  wrong_version[0] = 9;
  EXPECT_FALSE(DeserializePlan(wrong_version).ok());
  // Operator count out of range.
  std::string too_many = bytes;
  too_many[1] = '\xff';
  too_many[2] = '\xff';
  EXPECT_FALSE(DeserializePlan(too_many).ok());
}

TEST(PlanSerdeTest, CardsRoundTripAndBoundsCheck) {
  Cardinalities cards;
  cards.input = {10.0, 20.5, 30.0};
  cards.output = {9.0, 19.5, 1.0};
  std::string bytes;
  SerializeCards(cards, &bytes);
  auto restored = DeserializeCards(bytes, 3);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->input, cards.input);
  EXPECT_EQ(restored->output, cards.output);
  // A cards block longer than its plan is corruption.
  EXPECT_FALSE(DeserializeCards(bytes, 2).ok());
  EXPECT_FALSE(DeserializeCards(bytes.substr(0, bytes.size() - 3), 3).ok());
}

}  // namespace
}  // namespace robopt
