#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "tdgen/tdgen.h"
#include "workload/driver.h"
#include "workload/generators.h"
#include "workload/trace_recorder.h"
#include "workload/trace_replay.h"
#include "workloads/queries.h"

namespace robopt {
namespace {

bool FileExists(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return in.good();
}

/// Record a live serving run into a trace, then re-drive the trace through
/// a *fresh* service and demand bit-identical outcomes. Both services train
/// v1 from the same TDGEN base set with background retraining off, so any
/// mismatch is a replay bug, not model drift.
class RecordReplayTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    RegisterWorkloadKernels();
    registry_ = new PlatformRegistry(PlatformRegistry::Default(2));
    schema_ = new FeatureSchema(registry_);
    cost_ = new VirtualCost(registry_);
    TdgenOptions options;
    options.plans_per_shape = 4;
    options.max_operators = 10;
    options.max_structures_per_plan = 16;
    options.seed = 321;
    Executor plain(registry_, cost_);
    Tdgen tdgen(registry_, schema_, &plain, options);
    auto base = tdgen.Generate();
    ASSERT_TRUE(base.ok()) << base.status().ToString();
    base_ = new MlDataset(std::move(base.value()));
  }

  void TearDown() override {
    for (const std::string& path : cleanup_) {
      std::remove(path.c_str());
      std::remove((path + ".tmp").c_str());
    }
  }

  std::string TracePath(const std::string& name) {
    const std::string path = ::testing::TempDir() + "robopt_rr_" + name;
    cleanup_.push_back(path);
    return path;
  }

  static ServeOptions SmallServeOptions(int num_shards) {
    ServeOptions options;
    options.background_retrain = false;
    options.num_shards = num_shards;
    options.forest.num_trees = 20;
    return options;
  }

  static std::unique_ptr<OptimizerService> NewService(
      const ServeOptions& options) {
    auto service = OptimizerService::Create(registry_, schema_, *base_,
                                            /*initial=*/nullptr, options);
    EXPECT_TRUE(service.ok()) << service.status().ToString();
    return std::move(service.value());
  }

  /// Serves a deterministic open-loop synthetic stream with a recorder
  /// attached and closes the trace. Returns the live-run stats.
  ReplayStats RecordRun(const std::string& trace_path, int num_shards,
                        TraceRecorderStats* recorder_stats) {
    auto recorder = TraceRecorder::Open(trace_path);
    EXPECT_TRUE(recorder.ok()) << recorder.status().ToString();
    // The atomic-publish contract: only the .tmp exists while recording.
    EXPECT_TRUE(FileExists(trace_path + ".tmp"));
    EXPECT_FALSE(FileExists(trace_path));

    ServeOptions serve = SmallServeOptions(num_shards);
    serve.request_observer = recorder->get();
    auto service = NewService(serve);

    GeneratorOptions gen;
    gen.base.seed = 2026;
    gen.base.max_ops = 48;
    gen.base.num_tenants = 8;
    gen.arrival.kind = ArrivalOptions::Kind::kBursty;
    OpenLoopSource source(PlanPool::kSynthetic, gen);
    EXPECT_TRUE(source.Load().ok());

    DriveOptions drive;
    drive.registry = registry_;
    const ReplayStats live = DriveWorkload(service.get(), &source, drive);
    EXPECT_GT(live.optimizes, 0u);
    EXPECT_EQ(live.optimize_errors, 0u);
    EXPECT_GT(live.feedbacks, 0u);

    EXPECT_TRUE(recorder->get()->Close().ok());
    *recorder_stats = recorder->get()->Stats();
    // ...and after Close() the rename published the final trace.
    EXPECT_TRUE(FileExists(trace_path));
    EXPECT_FALSE(FileExists(trace_path + ".tmp"));
    return live;
  }

  /// Replays `trace_path` through a fresh service and verifies every
  /// recorded outcome byte-for-byte.
  ReplayStats ReplayRun(const std::string& trace_path, int num_shards,
                        size_t* out_num_plans = nullptr) {
    auto service = NewService(SmallServeOptions(num_shards));
    TraceReplaySource source(trace_path);
    Status load = source.Load();
    EXPECT_TRUE(load.ok()) << load.ToString();
    DriveOptions drive;
    drive.verify = true;
    drive.registry = registry_;
    const ReplayStats stats = DriveWorkload(service.get(), &source, drive);
    if (out_num_plans != nullptr) *out_num_plans = source.num_plans();
    return stats;
  }

  std::vector<std::string> cleanup_;

  static PlatformRegistry* registry_;
  static FeatureSchema* schema_;
  static VirtualCost* cost_;
  static MlDataset* base_;
};

PlatformRegistry* RecordReplayTest::registry_ = nullptr;
FeatureSchema* RecordReplayTest::schema_ = nullptr;
VirtualCost* RecordReplayTest::cost_ = nullptr;
MlDataset* RecordReplayTest::base_ = nullptr;

TEST_F(RecordReplayTest, ReplayReproducesTheLiveRunBitForBit) {
  const std::string path = TracePath("single_shard");
  TraceRecorderStats rec;
  const ReplayStats live = RecordRun(path, /*num_shards=*/1, &rec);
  ASSERT_GT(rec.records_written, 0u);
  EXPECT_EQ(rec.records_dropped, 0u);

  const ReplayStats replay = ReplayRun(path, /*num_shards=*/1);
  EXPECT_EQ(replay.optimizes, live.optimizes);
  EXPECT_EQ(replay.feedbacks, live.feedbacks);
  EXPECT_EQ(replay.verified, live.optimizes - live.optimize_errors);
  EXPECT_EQ(replay.mismatches, 0u);
  EXPECT_EQ(replay.options_hash_mismatches, 0u);
}

TEST_F(RecordReplayTest, ReplayIsBitIdenticalAcrossShardCounts) {
  // Serving guarantees shard-count-invariant plans; the trace pipeline must
  // preserve that. Record on one shard, verify on four (and vice versa).
  const std::string path = TracePath("sharded");
  TraceRecorderStats rec;
  const ReplayStats live = RecordRun(path, /*num_shards=*/4, &rec);
  EXPECT_EQ(rec.records_dropped, 0u);

  size_t num_plans = 0;
  const ReplayStats on_four = ReplayRun(path, /*num_shards=*/4, &num_plans);
  EXPECT_EQ(on_four.verified, live.optimizes - live.optimize_errors);
  EXPECT_EQ(on_four.mismatches, 0u);
  EXPECT_EQ(num_plans, rec.plan_defs);

  const ReplayStats on_one = ReplayRun(path, /*num_shards=*/1);
  EXPECT_EQ(on_one.verified, on_four.verified);
  EXPECT_EQ(on_one.mismatches, 0u);
  EXPECT_EQ(on_one.options_hash_mismatches, 0u);
}

TEST_F(RecordReplayTest, ConcurrentRecordingIsRaceFreeAndLossless) {
  // Hammer one recorder from four serving threads sharing a small plan
  // pool (maximum fingerprint-dedup contention) while a fifth thread polls
  // SnapshotMetrics() to race ExportTo. Run under TSan in CI.
  const std::string path = TracePath("concurrent");
  auto recorder = TraceRecorder::Open(path);
  ASSERT_TRUE(recorder.ok());
  ServeOptions serve = SmallServeOptions(/*num_shards=*/2);
  serve.request_observer = recorder->get();
  auto service = NewService(serve);

  const std::vector<LogicalPlan> pool = MakeSyntheticPlanPool(4, 99);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 32;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      RequestContext ctx;
      ctx.tenant = static_cast<uint64_t>(t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        auto result = service->Optimize(pool[(t + i) % pool.size()], nullptr,
                                        OptimizeOptions{}, ctx);
        (void)result;
      }
    });
  }
  std::thread poller([&] {
    for (int i = 0; i < 16; ++i) (void)service->SnapshotMetrics();
  });
  for (std::thread& thread : threads) thread.join();
  poller.join();

  ASSERT_TRUE(recorder->get()->Close().ok());
  const TraceRecorderStats stats = recorder->get()->Stats();
  EXPECT_EQ(stats.records_dropped, 0u);
  // Every optimize made it to disk exactly once, plus one def per plan.
  EXPECT_EQ(stats.plan_defs, pool.size());
  EXPECT_EQ(stats.records_written,
            static_cast<uint64_t>(kThreads * kOpsPerThread) + stats.plan_defs);

  TraceReplaySource source(path);
  ASSERT_TRUE(source.Load().ok());
  EXPECT_EQ(source.num_ops(), static_cast<size_t>(kThreads * kOpsPerThread));
  EXPECT_EQ(source.num_plans(), pool.size());
}

TEST_F(RecordReplayTest, TraceAndReplayMetricsLandInTheRegistries) {
  const std::string path = TracePath("metrics");
  auto recorder = TraceRecorder::Open(path);
  ASSERT_TRUE(recorder.ok());
  ServeOptions serve = SmallServeOptions(/*num_shards=*/1);
  serve.request_observer = recorder->get();
  auto service = NewService(serve);
  const std::vector<LogicalPlan> pool = MakeSyntheticPlanPool(2, 7);
  for (const LogicalPlan& plan : pool) {
    ASSERT_TRUE(service->Optimize(plan).ok());
  }
  // Close() first so the writer thread has drained and the counters are
  // exact, then SnapshotMetrics() pulls the observer's counters into the
  // service registry via RequestObserver::ExportTo.
  ASSERT_TRUE(recorder->get()->Close().ok());
  const MetricsSnapshot snapshot = service->SnapshotMetrics();
  EXPECT_EQ(snapshot.Value("robopt_trace_records_written_total", -1.0), 4.0);
  EXPECT_EQ(snapshot.Value("robopt_trace_plan_defs_total", -1.0), 2.0);
  EXPECT_EQ(snapshot.Value("robopt_trace_records_dropped_total", -1.0), 0.0);
  EXPECT_GT(snapshot.Value("robopt_trace_bytes_written_total", 0.0), 0.0);

  // The replay side exports its own op counter and lag histogram.
  auto replay_service = NewService(SmallServeOptions(/*num_shards=*/1));
  TraceReplaySource source(path);
  ASSERT_TRUE(source.Load().ok());
  MetricsRegistry registry;
  DriveOptions drive;
  drive.metrics = &registry;
  drive.registry = registry_;
  const ReplayStats stats = DriveWorkload(replay_service.get(), &source, drive);
  EXPECT_EQ(stats.optimizes, 2u);
  const MetricsSnapshot replay_snapshot = registry.Snapshot();
  EXPECT_EQ(replay_snapshot.Value("robopt_replay_ops_total", -1.0), 2.0);
  EXPECT_EQ(replay_snapshot.Value("robopt_replay_mismatches_total", -1.0), 0.0);
  EXPECT_TRUE(replay_snapshot.Has("robopt_replay_lag_us"));
}

TEST_F(RecordReplayTest, TimeWarpPacesRealTimeAndSkipsPacingWhenAsked) {
  auto service = NewService(SmallServeOptions(/*num_shards=*/1));
  GeneratorOptions gen;
  gen.base.seed = 11;
  gen.base.max_ops = 16;
  gen.feedback_fraction = 0.0;  // Keep the stream's horizon tight.
  gen.arrival.kind = ArrivalOptions::Kind::kFixedRate;
  gen.arrival.rate_per_s = 100.0;  // Last arrival ~0.15s into the stream.
  OpenLoopSource source(PlanPool::kSynthetic, gen);
  ASSERT_TRUE(source.Load().ok());
  DriveOptions realtime;
  realtime.speedup = 1.0;
  const ReplayStats paced = DriveWorkload(service.get(), &source, realtime);
  EXPECT_EQ(paced.optimizes, 16u);
  // 16 arrivals at 100/s ⇒ the run cannot finish before the last arrival.
  EXPECT_GE(paced.wall_s, 0.14);

  OpenLoopSource again(PlanPool::kSynthetic, gen);
  ASSERT_TRUE(again.Load().ok());
  const ReplayStats fast = DriveWorkload(service.get(), &again, DriveOptions{});
  EXPECT_EQ(fast.optimizes, 16u);
  EXPECT_EQ(fast.max_lag_s, 0.0);  // No pacing, no lag accounting.
  EXPECT_LT(fast.wall_s, paced.wall_s);
}

}  // namespace
}  // namespace robopt
