#include "workload/trace_format.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "workload/generators.h"
#include "workload/plan_serde.h"
#include "workload/trace_records.h"
#include "workload/trace_replay.h"

namespace robopt {
namespace {

class TraceFormatTest : public ::testing::Test {
 protected:
  std::string Path(const std::string& name) {
    return ::testing::TempDir() + "robopt_trace_" + name;
  }

  void TearDown() override {
    for (const std::string& path : cleanup_) std::remove(path.c_str());
  }

  std::string NewTrace(const std::string& name,
                       const std::vector<std::string>& payloads) {
    const std::string path = Path(name);
    cleanup_.push_back(path);
    auto writer = TraceFileWriter::Open(path);
    EXPECT_TRUE(writer.ok());
    EXPECT_TRUE(WriteTraceHeader(writer->get(), 12345).ok());
    for (const std::string& payload : payloads) {
      EXPECT_TRUE((*writer)->Append(payload).ok());
    }
    EXPECT_TRUE((*writer)->Close().ok());
    return path;
  }

  static std::string ReadFile(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }

  static void WriteFile(const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::vector<std::string> cleanup_;
};

TEST_F(TraceFormatTest, Crc32MatchesTheIeeeReference) {
  // The canonical CRC-32 check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST_F(TraceFormatTest, WriteThenReadRoundTrips) {
  const std::string path =
      NewTrace("roundtrip", {std::string("\x01week", 5),
                             std::string("\x02", 1) + std::string(300, 'x')});
  auto reader = TraceFileReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ((*reader)->version(), kTraceVersion);
  EXPECT_EQ((*reader)->created_wall_ns(), 12345u);
  std::string payload;
  ASSERT_TRUE((*reader)->Next(&payload).ok());
  EXPECT_EQ(payload, std::string("\x01week", 5));
  ASSERT_TRUE((*reader)->Next(&payload).ok());
  EXPECT_EQ(payload.size(), 301u);
  // Clean end of stream is kNotFound, repeatably.
  EXPECT_EQ((*reader)->Next(&payload).code(), StatusCode::kNotFound);
  EXPECT_EQ((*reader)->Next(&payload).code(), StatusCode::kNotFound);
}

TEST_F(TraceFormatTest, RejectsForeignAndTruncatedHeaders) {
  const std::string not_a_trace = Path("not_a_trace");
  cleanup_.push_back(not_a_trace);
  WriteFile(not_a_trace, "definitely not a robopt trace file....");
  EXPECT_EQ(TraceFileReader::Open(not_a_trace).status().code(),
            StatusCode::kInvalidArgument);

  const std::string stub = Path("stub");
  cleanup_.push_back(stub);
  WriteFile(stub, std::string(kTraceMagic, 4));  // Shorter than the header.
  EXPECT_EQ(TraceFileReader::Open(stub).status().code(),
            StatusCode::kOutOfRange);

  EXPECT_EQ(TraceFileReader::Open(Path("missing")).status().code(),
            StatusCode::kNotFound);
}

TEST_F(TraceFormatTest, RejectsHeaderCorruption) {
  const std::string path = NewTrace("header_flip", {"\x01ok"});
  std::string bytes = ReadFile(path);
  bytes[10] ^= 0x40;  // Inside the versioned header body.
  WriteFile(path, bytes);
  EXPECT_EQ(TraceFileReader::Open(path).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(TraceFormatTest, DetectsTornTailAtTheExactRecord) {
  const std::string path =
      NewTrace("torn", {"\x01first-record", "\x01second-record"});
  const std::string bytes = ReadFile(path);
  // Cut into the middle of the second record's payload.
  WriteFile(path, bytes.substr(0, bytes.size() - 5));
  auto reader = TraceFileReader::Open(path);
  ASSERT_TRUE(reader.ok());
  std::string payload;
  EXPECT_TRUE((*reader)->Next(&payload).ok());  // First record intact.
  EXPECT_EQ((*reader)->Next(&payload).code(), StatusCode::kOutOfRange);
}

TEST_F(TraceFormatTest, DetectsPayloadBitFlips) {
  const std::string path = NewTrace("bitflip", {"\1abcdefgh"});
  std::string bytes = ReadFile(path);
  bytes[bytes.size() - 2] ^= 0x01;  // Flip a payload byte.
  WriteFile(path, bytes);
  auto reader = TraceFileReader::Open(path);
  ASSERT_TRUE(reader.ok());
  std::string payload;
  EXPECT_EQ((*reader)->Next(&payload).code(), StatusCode::kInvalidArgument);
}

TEST_F(TraceFormatTest, RejectsInsaneRecordLengths) {
  const std::string path = NewTrace("hugelen", {"\1abc"});
  std::string bytes = ReadFile(path);
  // The first record's u32 length field sits right after the 28-byte
  // header (magic 8 + body 16 + crc 4); blow it past kMaxTracePayload.
  const uint32_t huge = kMaxTracePayload + 1;
  std::memcpy(bytes.data() + 28, &huge, sizeof huge);
  WriteFile(path, bytes);
  auto reader = TraceFileReader::Open(path);
  ASSERT_TRUE(reader.ok());
  std::string payload;
  EXPECT_EQ((*reader)->Next(&payload).code(), StatusCode::kInvalidArgument);
}

TEST_F(TraceFormatTest, RecordPayloadsRoundTrip) {
  TracePlanDef def;
  def.fp_hi = 0x1122334455667788ull;
  def.fp_lo = 0x99aabbccddeeff00ull;
  SerializePlan(MakeSyntheticPlanPool(1, 77)[0], &def.plan_bytes);
  auto def2 = DecodePlanDef(EncodePlanDef(def));
  ASSERT_TRUE(def2.ok());
  EXPECT_EQ(def2->fp_hi, def.fp_hi);
  EXPECT_EQ(def2->fp_lo, def.fp_lo);
  EXPECT_EQ(def2->plan_bytes, def.plan_bytes);

  TraceOptimizeRecord opt;
  opt.sequence = 42;
  opt.tenant = 7;
  opt.wall_ns = 111;
  opt.rel_ns = 222;
  opt.fp_hi = def.fp_hi;
  opt.fp_lo = def.fp_lo;
  opt.options_hash = 0xdeadbeef;
  opt.status_code = static_cast<uint8_t>(StatusCode::kResourceExhausted);
  opt.cache_hit = true;
  opt.predicted_runtime_s = 1.5f;
  opt.model_version = 3;
  opt.chosen_platform = 1;
  opt.assignment = {0, 2, -1, 5};
  opt.has_cards = true;
  Cardinalities cards;
  cards.input = {1, 2};
  cards.output = {3, 4};
  SerializeCards(cards, &opt.cards_bytes);
  auto opt2 = DecodeOptimizeRecord(EncodeOptimizeRecord(opt));
  ASSERT_TRUE(opt2.ok()) << opt2.status().ToString();
  EXPECT_EQ(opt2->sequence, opt.sequence);
  EXPECT_EQ(opt2->tenant, opt.tenant);
  EXPECT_EQ(opt2->rel_ns, opt.rel_ns);
  EXPECT_EQ(opt2->options_hash, opt.options_hash);
  EXPECT_EQ(opt2->status_code, opt.status_code);
  EXPECT_EQ(opt2->cache_hit, opt.cache_hit);
  EXPECT_EQ(opt2->predicted_runtime_s, opt.predicted_runtime_s);
  EXPECT_EQ(opt2->model_version, opt.model_version);
  EXPECT_EQ(opt2->assignment, opt.assignment);
  EXPECT_EQ(opt2->cards_bytes, opt.cards_bytes);

  TraceFeedbackRecord fb;
  fb.tenant = 9;
  fb.rel_ns = 333;
  fb.fp_hi = 1;
  fb.fp_lo = 2;
  fb.actual_runtime_s = 12.25;
  fb.assignment = {1, 1, 0};
  SerializeCards(cards, &fb.cards_bytes);
  auto fb2 = DecodeFeedbackRecord(EncodeFeedbackRecord(fb));
  ASSERT_TRUE(fb2.ok());
  EXPECT_EQ(fb2->actual_runtime_s, fb.actual_runtime_s);
  EXPECT_EQ(fb2->assignment, fb.assignment);

  // Decoders reject the wrong record type and trailing bytes.
  EXPECT_FALSE(DecodePlanDef(EncodeOptimizeRecord(opt)).ok());
  EXPECT_FALSE(DecodeOptimizeRecord(EncodeOptimizeRecord(opt) + "x").ok());
  std::string truncated = EncodeFeedbackRecord(fb);
  truncated.resize(truncated.size() / 2);
  EXPECT_FALSE(DecodeFeedbackRecord(truncated).ok());
}

TEST_F(TraceFormatTest, ReplaySourceRejectsCorruptTraces) {
  // A record referencing an undefined plan is structural corruption.
  TraceOptimizeRecord opt;
  opt.fp_hi = 1;
  opt.fp_lo = 2;
  const std::string path =
      NewTrace("undefined_plan", {EncodeOptimizeRecord(opt)});
  TraceReplaySource source(path);
  EXPECT_EQ(source.Load().code(), StatusCode::kInvalidArgument);

  // A CRC-valid frame whose payload is not a known record type.
  const std::string path2 = NewTrace("unknown_type", {"\x7fmystery"});
  TraceReplaySource source2(path2);
  EXPECT_EQ(source2.Load().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace robopt
