#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "baseline/baseline_optimizers.h"
#include "core/optimizer.h"
#include "exec/executor.h"
#include "tdgen/tdgen.h"
#include "workloads/datagen.h"
#include "workloads/queries.h"

namespace robopt {
namespace {

/// Full-stack fixture: simulated cluster, TDGEN-trained runtime model,
/// Robopt + RHEEMix optimizers. Built once for the whole suite (training
/// takes a few seconds).
class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    RegisterWorkloadKernels();
    registry_ = new PlatformRegistry(PlatformRegistry::Default(3));
    schema_ = new FeatureSchema(registry_);
    cost_ = new VirtualCost(registry_);
    executor_ = new Executor(registry_, cost_);
    TdgenOptions options;
    options.plans_per_shape = 5;
    options.max_operators = 14;
    options.max_structures_per_plan = 24;
    options.seed = 1234;
    auto model =
        TrainRuntimeModel(registry_, schema_, executor_, options, nullptr,
                          nullptr);
    ASSERT_TRUE(model.ok()) << model.status().ToString();
    model_ = model->release();
    oracle_ = new MlCostOracle(model_);
    robopt_ = new RoboptOptimizer(registry_, schema_, oracle_);
    cost_model_ = new CostModel(registry_, cost_,
                                CostModel::Tuning::kWellTuned);
    rheemix_ = new RheemixOptimizer(registry_, schema_, cost_model_);
  }

  /// True runtime of an execution plan on the simulated cluster.
  static double TrueRuntime(const ExecutionPlan& plan,
                            const Cardinalities& cards) {
    return cost_->PlanCost(plan, cards).total_s;
  }

  /// True runtime of the best single-platform execution (the "fastest
  /// platform" bars of Fig. 11).
  static double BestSinglePlatformRuntime(const LogicalPlan& plan,
                                          const Cardinalities& cards) {
    double best = std::numeric_limits<double>::infinity();
    for (const Platform& platform : registry_->platforms()) {
      ExecutionPlan exec(&plan, registry_);
      bool ok = true;
      for (const LogicalOperator& op : plan.operators()) {
        const auto& alts = registry_->AlternativesFor(op.kind);
        int chosen = -1;
        for (size_t a = 0; a < alts.size(); ++a) {
          if (alts[a].platform == platform.id && alts[a].variant == 0) {
            chosen = static_cast<int>(a);
          }
        }
        if (chosen < 0) {
          ok = false;
          break;
        }
        exec.Assign(op.id, chosen);
      }
      if (!ok) continue;
      best = std::min(best, TrueRuntime(exec, cards));
    }
    return best;
  }

  static PlatformRegistry* registry_;
  static FeatureSchema* schema_;
  static VirtualCost* cost_;
  static Executor* executor_;
  static RandomForest* model_;
  static MlCostOracle* oracle_;
  static RoboptOptimizer* robopt_;
  static CostModel* cost_model_;
  static RheemixOptimizer* rheemix_;
};

PlatformRegistry* EndToEndTest::registry_ = nullptr;
FeatureSchema* EndToEndTest::schema_ = nullptr;
VirtualCost* EndToEndTest::cost_ = nullptr;
Executor* EndToEndTest::executor_ = nullptr;
RandomForest* EndToEndTest::model_ = nullptr;
MlCostOracle* EndToEndTest::oracle_ = nullptr;
RoboptOptimizer* EndToEndTest::robopt_ = nullptr;
CostModel* EndToEndTest::cost_model_ = nullptr;
RheemixOptimizer* EndToEndTest::rheemix_ = nullptr;

TEST_F(EndToEndTest, RoboptPicksJavaForTinyInputs) {
  LogicalPlan plan = MakeWordCountPlan(0.00003);  // 30 KB.
  OptimizeOptions options;
  options.single_platform = true;
  auto result = robopt_->Optimize(plan, nullptr, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(registry_->platform(result->chosen_platform).name, "Java");
}

TEST_F(EndToEndTest, RoboptAvoidsJavaForHugeInputs) {
  LogicalPlan plan = MakeWordCountPlan(24.0);  // 24 GB: Java OOMs.
  OptimizeOptions options;
  options.single_platform = true;
  auto result = robopt_->Optimize(plan, nullptr, options);
  ASSERT_TRUE(result.ok());
  EXPECT_NE(registry_->platform(result->chosen_platform).name, "Java");
}

TEST_F(EndToEndTest, RoboptSinglePlatformChoiceIsNearOptimal) {
  // Across a size sweep, Robopt's single-platform pick must stay within a
  // small factor of the best platform (the Table III "diff from optimal").
  int good = 0;
  int total = 0;
  for (double gb : {0.0001, 0.001, 0.01, 0.1, 1.0, 10.0}) {
    LogicalPlan plan = MakeWordCountPlan(gb);
    const Cardinalities cards = CardinalityEstimator(&plan).Estimate();
    OptimizeOptions options;
    options.single_platform = true;
    auto result = robopt_->Optimize(plan, nullptr, options);
    ASSERT_TRUE(result.ok());
    const double chosen = TrueRuntime(result->plan, cards);
    const double best = BestSinglePlatformRuntime(plan, cards);
    ++total;
    if (chosen <= best * 1.5 + 0.5) ++good;
  }
  EXPECT_GE(good, total - 1);  // At most one miss across the sweep.
}

TEST_F(EndToEndTest, OptimizedPlanActuallyExecutes) {
  LogicalPlan plan = MakeWordCountPlan(0.001);
  auto result = robopt_->Optimize(plan);
  ASSERT_TRUE(result.ok());
  DataCatalog catalog;
  catalog.Bind(plan.SourceIds()[0], GenerateTextLines(1000, 1000, 5));
  auto exec_result = executor_->Execute(result->plan, catalog);
  ASSERT_TRUE(exec_result.ok()) << exec_result.status().ToString();
  EXPECT_GT(exec_result->output.rows.size(), 0u);
  EXPECT_TRUE(std::isfinite(exec_result->cost.total_s));
}

TEST_F(EndToEndTest, RheemixAndRoboptBothProduceValidPlans) {
  for (double gb : {0.001, 1.0}) {
    LogicalPlan plan = MakeTpchQ1Plan(gb);
    auto ml_result = robopt_->Optimize(plan);
    auto cost_result = rheemix_->Optimize(plan);
    ASSERT_TRUE(ml_result.ok());
    ASSERT_TRUE(cost_result.ok());
    EXPECT_TRUE(ml_result->plan.Validate().ok());
    EXPECT_TRUE(cost_result->plan.Validate().ok());
  }
}

TEST_F(EndToEndTest, RoboptMatchesOrBeatsRheemixOnKmeans) {
  // The Fig. 12(a) scenario: loop-carried broadcast. The cost model's
  // fixed-form assumptions misprice it; the learned model should not lose.
  LogicalPlan plan = MakeKmeansPlan(361.0, 100, 100);
  const Cardinalities cards = CardinalityEstimator(&plan).Estimate();
  auto ml_result = robopt_->Optimize(plan, &cards);
  auto cost_result = rheemix_->Optimize(plan, &cards);
  ASSERT_TRUE(ml_result.ok());
  ASSERT_TRUE(cost_result.ok());
  const double ml_true = TrueRuntime(ml_result->plan, cards);
  const double cost_true = TrueRuntime(cost_result->plan, cards);
  EXPECT_LE(ml_true, cost_true * 1.25);
}

TEST_F(EndToEndTest, ModelPredictionsCorrelateWithTrueRuntimes) {
  // Sanity: across random plans of one query, predicted and true runtimes
  // must rank-correlate strongly (this is what makes pruning meaningful).
  LogicalPlan plan = MakeAggregatePlan(5.0);
  const Cardinalities cards = CardinalityEstimator(&plan).Estimate();
  auto ctx = EnumerationContext::Make(&plan, registry_, schema_, &cards);
  ASSERT_TRUE(ctx.ok());
  const PlanVectorEnumeration all = Enumerate(*ctx, Vectorize(*ctx));
  std::vector<double> predicted;
  std::vector<double> truth;
  for (size_t row = 0; row < all.size(); row += 7) {
    const ExecutionPlan exec = Unvectorize(*ctx, all, row);
    const double true_s = TrueRuntime(exec, cards);
    if (!std::isfinite(true_s)) continue;
    predicted.push_back(
        model_->Predict(all.features(row), schema_->width()));
    truth.push_back(true_s);
  }
  ASSERT_GT(predicted.size(), 20u);
  EXPECT_GT(SpearmanCorrelation(truth, predicted), 0.5);
}

}  // namespace
}  // namespace robopt
