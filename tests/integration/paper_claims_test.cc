// Assertions for the paper's headline claims, verified as code rather than
// eyeballed from bench output. Each test names the claim it pins.

#include <gtest/gtest.h>

#include <cmath>

#include "baseline/baseline_optimizers.h"
#include "baseline/traditional_enumerator.h"
#include "common/stopwatch.h"
#include "core/linear_oracle.h"
#include "core/priority_enumeration.h"
#include "exec/virtual_cost.h"
#include "plan/cardinality.h"
#include "workloads/queries.h"
#include "workloads/synthetic.h"

namespace robopt {
namespace {

// --- Lemma 1: pruning makes the search space O(n k^2). -------------------

TEST(PaperClaims, Lemma1SearchSpaceIsQuadraticNotExponential) {
  for (int k : {2, 3, 4, 5}) {
    PlatformRegistry registry = PlatformRegistry::Synthetic(k);
    FeatureSchema schema(&registry);
    LinearFeatureOracle oracle(schema, 5);
    size_t prev = 0;
    for (int n : {10, 20, 40}) {
      LogicalPlan plan = MakeSyntheticPipeline(n, 1e6, 11);
      auto ctx = EnumerationContext::Make(&plan, &registry, &schema);
      ASSERT_TRUE(ctx.ok());
      PriorityEnumerator enumerator(&ctx.value(), &oracle);
      auto result = enumerator.Run();
      ASSERT_TRUE(result.ok());
      // Upper bound n*k^3 + singletons; and growth in n is ~linear.
      EXPECT_LE(result->stats.vectors_created,
                static_cast<size_t>(n) * k * k * k + n * k);
      if (prev > 0) {
        EXPECT_LT(result->stats.vectors_created, prev * 4);  // Not 2^n.
      }
      prev = result->stats.vectors_created;
    }
  }
}

// --- Figure 1 / 9: vectorized enumeration beats the object-based one. ----

TEST(PaperClaims, VectorizedEnumerationFasterThanObjectBasedAtScale) {
  PlatformRegistry registry = PlatformRegistry::Synthetic(3);
  FeatureSchema schema(&registry);
  LinearFeatureOracle oracle(schema, 3);
  LogicalPlan plan = MakeSyntheticPipeline(60, 1e7, 9);
  auto ctx = EnumerationContext::Make(&plan, &registry, &schema);
  ASSERT_TRUE(ctx.ok());

  // Median of 5 runs each.
  auto median = [](std::vector<double> xs) {
    std::sort(xs.begin(), xs.end());
    return xs[xs.size() / 2];
  };
  std::vector<double> vec_ms;
  std::vector<double> obj_ms;
  class OracleModel : public RuntimeModel {
   public:
    explicit OracleModel(const LinearFeatureOracle* oracle)
        : oracle_(oracle) {}
    Status Train(const MlDataset&) override { return Status::OK(); }
    void PredictBatch(const float* x, size_t n, size_t dim,
                      float* out) const override {
      oracle_->EstimateBatch(x, n, dim, out);
    }
    Status Save(const std::string&) const override { return Status::OK(); }
    Status Load(const std::string&) override { return Status::OK(); }
    std::string Name() const override { return "OracleModel"; }

   private:
    const LinearFeatureOracle* oracle_;
  } model(&oracle);

  for (int r = 0; r < 5; ++r) {
    Stopwatch watch;
    PriorityEnumerator enumerator(&ctx.value(), &oracle);
    ASSERT_TRUE(enumerator.Run().ok());
    vec_ms.push_back(watch.ElapsedMillis());
  }
  for (int r = 0; r < 5; ++r) {
    Stopwatch watch;
    TraditionalOptions options;
    options.oracle = TraditionalOracle::kMlModel;
    TraditionalEnumerator enumerator(&ctx.value(), nullptr, &model, options);
    ASSERT_TRUE(enumerator.Run().ok());
    obj_ms.push_back(watch.ElapsedMillis());
  }
  EXPECT_LT(median(vec_ms), median(obj_ms));
}

// --- Section VII-C2: the SGD sampler trap. --------------------------------

TEST(PaperClaims, CostModelFallsIntoSamplerTrapGroundTruthDoesNot) {
  PlatformRegistry registry = PlatformRegistry::Default(3);
  VirtualCost truth(&registry);
  CostModel model(&registry, &truth, CostModel::Tuning::kWellTuned);

  LogicalPlan plan = MakeSgdPlan(0.74, 100, 1000);
  const Cardinalities cards = CardinalityEstimator(&plan).Estimate();

  // Two otherwise-identical plans (loop state on Java, data scan on Spark)
  // differing only in the Spark sampler variant — the choice RHEEMix gets
  // wrong in Fig. 12(b).
  auto assign = [&](uint8_t sample_variant) {
    ExecutionPlan exec(&plan, &registry);
    for (const LogicalOperator& op : plan.operators()) {
      const auto& alts = registry.AlternativesFor(op.kind);
      int chosen = -1;
      for (size_t a = 0; a < alts.size(); ++a) {
        if (op.kind == LogicalOpKind::kSample) {
          if (alts[a].platform == 1 && alts[a].variant == sample_variant) {
            chosen = static_cast<int>(a);
          }
        } else if (op.kind == LogicalOpKind::kTextFileSource) {
          if (alts[a].platform == 1) chosen = static_cast<int>(a);
        } else if (alts[a].platform == 0 && alts[a].variant == 0) {
          chosen = static_cast<int>(a);  // Everything else on Java.
        }
      }
      EXPECT_GE(chosen, 0) << op.name;
      exec.Assign(op.id, chosen);
    }
    return exec;
  };
  const ExecutionPlan stateful = assign(0);
  const ExecutionPlan cached = assign(1);

  // The tuned cost model prefers the cached sampler...
  EXPECT_LT(model.PlanCost(cached, cards), model.PlanCost(stateful, cards));
  // ...the ground truth knows better, by a factor (the paper saw ~2x).
  const double truth_cached = truth.PlanCost(cached, cards).total_s;
  const double truth_stateful = truth.PlanCost(stateful, cards).total_s;
  EXPECT_GT(truth_cached, truth_stateful * 1.5);
}

// --- Section II / Fig. 2: mis-tuned cost models pick bad platforms. ------

TEST(PaperClaims, SimplyTunedModelPicksWorsePlansThanWellTuned) {
  PlatformRegistry registry = PlatformRegistry::Default(3);
  FeatureSchema schema(&registry);
  VirtualCost truth(&registry);
  CostModel well(&registry, &truth, CostModel::Tuning::kWellTuned);
  CostModel simple(&registry, &truth, CostModel::Tuning::kSimplyTuned);
  RheemixOptimizer well_opt(&registry, &schema, &well);
  RheemixOptimizer simple_opt(&registry, &schema, &simple);

  double well_total = 0.0;
  double simple_total = 0.0;
  for (double gb : {2.0, 20.0}) {
    LogicalPlan plan = MakeCrocoPrPlan(gb, 10);
    const Cardinalities cards = CardinalityEstimator(&plan).Estimate();
    auto w = well_opt.Optimize(plan, &cards);
    auto s = simple_opt.Optimize(plan, &cards);
    ASSERT_TRUE(w.ok() && s.ok());
    well_total += truth.PlanCost(w->plan, cards).total_s;
    simple_total += truth.PlanCost(s->plan, cards).total_s;
  }
  EXPECT_GT(simple_total, well_total * 2.0);
}

// --- Fig. 11: the Java/Spark crossover and Java's memory ceiling. --------

TEST(PaperClaims, GroundTruthShowsCrossoverAndMemoryCeiling) {
  PlatformRegistry registry = PlatformRegistry::Default(3);
  VirtualCost truth(&registry);
  auto single = [&](const LogicalPlan& plan, PlatformId p) {
    ExecutionPlan exec(&plan, &registry);
    for (const LogicalOperator& op : plan.operators()) {
      const auto& alts = registry.AlternativesFor(op.kind);
      for (size_t a = 0; a < alts.size(); ++a) {
        if (alts[a].platform == p && alts[a].variant == 0) {
          exec.Assign(op.id, static_cast<int>(a));
        }
      }
    }
    const Cardinalities cards = CardinalityEstimator(&plan).Estimate();
    return truth.PlanCost(exec, cards).total_s;
  };
  LogicalPlan tiny = MakeWordCountPlan(0.0001);
  LogicalPlan big = MakeWordCountPlan(10.0);
  LogicalPlan huge = MakeWordCountPlan(1000.0);
  EXPECT_LT(single(tiny, 0), single(tiny, 1));   // Java wins small.
  EXPECT_LT(single(big, 1), single(big, 0));     // Spark wins large.
  EXPECT_TRUE(std::isinf(single(huge, 0)));      // Java OOMs at 1 TB.
  EXPECT_TRUE(std::isfinite(single(huge, 1)));
}

// --- Fig. 13: engine + DBMS beats the all-DBMS plan. ----------------------

TEST(PaperClaims, PushdownPlusParallelJoinBeatsAllPostgres) {
  PlatformRegistry registry = PlatformRegistry::Default(4);
  VirtualCost truth(&registry);
  LogicalPlan plan = MakeJoinPlan(100.0, /*table_sources=*/true);
  const Cardinalities cards = CardinalityEstimator(&plan).Estimate();

  // All-Postgres... except the sink, which must collect to the driver.
  ExecutionPlan all_pg(&plan, &registry);
  ExecutionPlan hybrid(&plan, &registry);
  for (const LogicalOperator& op : plan.operators()) {
    const auto& alts = registry.AlternativesFor(op.kind);
    int pg = -1;
    int spark = -1;
    int fallback = 0;
    for (size_t a = 0; a < alts.size(); ++a) {
      if (registry.platform(alts[a].platform).name == "Postgres") {
        pg = static_cast<int>(a);
      }
      if (registry.platform(alts[a].platform).name == "Spark" &&
          alts[a].variant == 0) {
        spark = static_cast<int>(a);
      }
    }
    all_pg.Assign(op.id, pg >= 0 ? pg : fallback);
    // Hybrid: selections/projections + sources stay in Postgres, the rest
    // moves to Spark.
    const bool pushdown = op.kind == LogicalOpKind::kTableSource ||
                          op.kind == LogicalOpKind::kFilter ||
                          op.kind == LogicalOpKind::kProject;
    if (pushdown && pg >= 0) {
      hybrid.Assign(op.id, pg);
    } else if (spark >= 0) {
      hybrid.Assign(op.id, spark);
    } else {
      hybrid.Assign(op.id, fallback);
    }
  }
  const double pg_s = truth.PlanCost(all_pg, cards).total_s;
  const double hybrid_s = truth.PlanCost(hybrid, cards).total_s;
  EXPECT_LT(hybrid_s, pg_s);  // The paper saw up to 2.5x.
}

}  // namespace
}  // namespace robopt
