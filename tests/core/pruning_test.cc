#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/operations.h"
#include "test_oracles.h"
#include "workloads/queries.h"
#include "workloads/synthetic.h"

namespace robopt {
namespace {

class PruningTest : public ::testing::Test {
 protected:
  PruningTest()
      : registry_(PlatformRegistry::Synthetic(3)), schema_(&registry_) {}

  EnumerationContext MakeCtx(const LogicalPlan& plan) {
    auto ctx = EnumerationContext::Make(&plan, &registry_, &schema_);
    EXPECT_TRUE(ctx.ok()) << ctx.status().ToString();
    return std::move(ctx).value();
  }

  PlatformRegistry registry_;
  FeatureSchema schema_;
};

TEST_F(PruningTest, KeepsOneRowPerFootprint) {
  LogicalPlan plan = MakeSyntheticPipeline(4, 1e5, 1);
  const EnumerationContext ctx = MakeCtx(plan);
  // Enumerate the middle two operators: boundary = both of them.
  AbstractPlanVector middle;
  middle.ops = {1, 2};
  const PlanVectorEnumeration v = Enumerate(ctx, middle);
  ASSERT_EQ(v.size(), 9u);  // 3 x 3 platforms.
  LinearFeatureOracle oracle(schema_, 42);
  PruneStats stats;
  const PlanVectorEnumeration pruned = PruneBoundary(ctx, v, oracle, &stats);
  // Both operators are boundary: all 9 footprints distinct, nothing pruned.
  EXPECT_EQ(pruned.size(), 9u);
  EXPECT_EQ(stats.rows_in, 9u);
  EXPECT_EQ(stats.rows_out, 9u);
}

TEST_F(PruningTest, PrunesInteriorAlternatives) {
  LogicalPlan plan = MakeSyntheticPipeline(5, 1e5, 2);
  const EnumerationContext ctx = MakeCtx(plan);
  AbstractPlanVector middle;
  middle.ops = {1, 2, 3};  // Boundary = {1, 3}; operator 2 is interior.
  const PlanVectorEnumeration v = Enumerate(ctx, middle);
  ASSERT_EQ(v.size(), 27u);
  LinearFeatureOracle oracle(schema_, 42);
  const PlanVectorEnumeration pruned = PruneBoundary(ctx, v, oracle);
  // 9 boundary footprints survive; interior choices collapse.
  EXPECT_EQ(pruned.size(), 9u);
}

TEST_F(PruningTest, PruningIsLosslessAgainstAdditiveOracle) {
  // Brute-force the full search space; pruned enumeration must contain a
  // row achieving the global minimum cost (Definition 2's guarantee).
  LogicalPlan plan = MakeSyntheticPipeline(6, 1e5, 3);
  const EnumerationContext ctx = MakeCtx(plan);
  LinearFeatureOracle oracle(schema_, 7);

  const PlanVectorEnumeration all = Enumerate(ctx, Vectorize(ctx));
  float brute_min = std::numeric_limits<float>::infinity();
  std::vector<float> costs(all.size());
  oracle.EstimateBatch(all.feature_pool().data(), all.size(), all.width(),
                       costs.data());
  for (float c : costs) brute_min = std::min(brute_min, c);

  // Pruned pipeline enumeration: fold singletons left to right with
  // pruning after every concat (as Algorithm 1 does).
  PlanVectorEnumeration acc(schema_.width(), plan.num_operators());
  bool first = true;
  for (int op = 0; op < plan.num_operators(); ++op) {
    AbstractPlanVector single;
    single.ops = {static_cast<OperatorId>(op)};
    PlanVectorEnumeration sv = Enumerate(ctx, single);
    if (first) {
      acc = std::move(sv);
      first = false;
    } else {
      acc = PruneBoundary(ctx, Concat(ctx, acc, sv), oracle);
    }
  }
  float pruned_min = 0;
  ArgMinCost(ctx, acc, oracle, &pruned_min);
  EXPECT_NEAR(pruned_min, brute_min, std::abs(brute_min) * 1e-5);
}

TEST_F(PruningTest, Lemma1QuadraticBound) {
  // Lemma 1: a pipeline of n operators over k platforms keeps at most k^2
  // vectors per enumeration step after boundary pruning.
  for (int k = 2; k <= 4; ++k) {
    PlatformRegistry registry = PlatformRegistry::Synthetic(k);
    FeatureSchema schema(&registry);
    for (int n : {5, 10, 20}) {
      LogicalPlan plan = MakeSyntheticPipeline(n, 1e5, n);
      auto ctx =
          EnumerationContext::Make(&plan, &registry, &schema);
      ASSERT_TRUE(ctx.ok());
      LinearFeatureOracle oracle(schema, 11);
      PlanVectorEnumeration acc(schema.width(), plan.num_operators());
      bool first = true;
      size_t total_created = 0;
      for (int op = 0; op < plan.num_operators(); ++op) {
        AbstractPlanVector single;
        single.ops = {static_cast<OperatorId>(op)};
        PlanVectorEnumeration sv = Enumerate(*ctx, single);
        if (first) {
          acc = std::move(sv);
          first = false;
          continue;
        }
        PlanVectorEnumeration merged = Concat(*ctx, acc, sv);
        total_created += merged.size();
        acc = PruneBoundary(*ctx, merged, oracle);
        EXPECT_LE(acc.size(), static_cast<size_t>(k * k))
            << "n=" << n << " k=" << k;
      }
      // Total vectors materialized is O(n * k^3): each of the n-1 steps
      // concatenates at most k^2 survivors with k singleton rows.
      EXPECT_LE(total_created, static_cast<size_t>(n * k * k * k));
    }
  }
}

TEST_F(PruningTest, SwitchCapDropsHighSwitchRows) {
  LogicalPlan plan = MakeSyntheticPipeline(6, 1e5, 5);
  const EnumerationContext ctx = MakeCtx(plan);
  const PlanVectorEnumeration all = Enumerate(ctx, Vectorize(ctx));
  PruneStats stats;
  const PlanVectorEnumeration capped = PruneSwitchCap(ctx, all, 1, &stats);
  EXPECT_LT(capped.size(), all.size());
  for (size_t i = 0; i < capped.size(); ++i) {
    EXPECT_LE(capped.switches(i), 1);
  }
  // beta = max possible switches keeps everything.
  const PlanVectorEnumeration loose = PruneSwitchCap(ctx, all, 100);
  EXPECT_EQ(loose.size(), all.size());
}

TEST_F(PruningTest, SwitchCapZeroKeepsSinglePlatformPlansOnly) {
  LogicalPlan plan = MakeSyntheticPipeline(5, 1e5, 6);
  const EnumerationContext ctx = MakeCtx(plan);
  const PlanVectorEnumeration all = Enumerate(ctx, Vectorize(ctx));
  const PlanVectorEnumeration capped = PruneSwitchCap(ctx, all, 0);
  EXPECT_EQ(capped.size(), 3u);  // One per platform.
}

TEST_F(PruningTest, PruneKeepsCheapestOfEachGroup) {
  LogicalPlan plan = MakeSyntheticPipeline(5, 1e5, 7);
  const EnumerationContext ctx = MakeCtx(plan);
  AbstractPlanVector middle;
  middle.ops = {1, 2, 3};
  const PlanVectorEnumeration v = Enumerate(ctx, middle);
  LinearFeatureOracle oracle(schema_, 13);
  const PlanVectorEnumeration pruned = PruneBoundary(ctx, v, oracle);

  // For every surviving row, no same-footprint row in the original is
  // cheaper.
  std::vector<float> all_costs(v.size());
  oracle.EstimateBatch(v.feature_pool().data(), v.size(), v.width(),
                       all_costs.data());
  std::vector<float> kept_costs(pruned.size());
  oracle.EstimateBatch(pruned.feature_pool().data(), pruned.size(),
                       pruned.width(), kept_costs.data());
  const auto& boundary = v.boundary();
  auto footprint = [&](const PlanVectorEnumeration& e, size_t row) {
    std::string key;
    for (OperatorId b : boundary) {
      key.push_back(
          static_cast<char>(ctx.PlatformOfAssignment(e.assignment(row), b)));
    }
    return key;
  };
  for (size_t kept = 0; kept < pruned.size(); ++kept) {
    const std::string key = footprint(pruned, kept);
    for (size_t row = 0; row < v.size(); ++row) {
      if (footprint(v, row) == key) {
        EXPECT_GE(all_costs[row], kept_costs[kept] - 1e-3);
      }
    }
  }
}

TEST_F(PruningTest, SingleRowEnumerationPassesThrough) {
  LogicalPlan plan = MakeSyntheticPipeline(3, 1e5, 8);
  auto single_platform_registry = PlatformRegistry::Synthetic(1);
  FeatureSchema schema(&single_platform_registry);
  auto ctx = EnumerationContext::Make(&plan, &single_platform_registry,
                                      &schema);
  ASSERT_TRUE(ctx.ok());
  const PlanVectorEnumeration all = Enumerate(*ctx, Vectorize(*ctx));
  ASSERT_EQ(all.size(), 1u);
  LinearFeatureOracle oracle(schema, 1);
  const PlanVectorEnumeration pruned = PruneBoundary(*ctx, all, oracle);
  EXPECT_EQ(pruned.size(), 1u);
}

}  // namespace
}  // namespace robopt
