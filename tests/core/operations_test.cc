#include "core/operations.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>

#include "core/feature_schema.h"
#include "workloads/queries.h"
#include "workloads/synthetic.h"

namespace robopt {
namespace {

class OperationsTest : public ::testing::Test {
 protected:
  OperationsTest()
      : registry_(PlatformRegistry::Default(2)), schema_(&registry_) {}

  EnumerationContext MakeCtx(const LogicalPlan& plan,
                             uint64_t mask = ~0ull) {
    auto ctx = EnumerationContext::Make(&plan, &registry_, &schema_, nullptr,
                                        mask);
    EXPECT_TRUE(ctx.ok()) << ctx.status().ToString();
    return std::move(ctx).value();
  }

  PlatformRegistry registry_;
  FeatureSchema schema_;
};

TEST_F(OperationsTest, VectorizeMarksAlternativesWithMinusOne) {
  LogicalPlan plan = MakeWordCountPlan(0.1);
  const EnumerationContext ctx = MakeCtx(plan);
  const AbstractPlanVector v = Vectorize(ctx);
  EXPECT_EQ(v.ops.size(), 6u);
  // Map exists in the plan; both its platform cells are -1.
  EXPECT_FLOAT_EQ(v.features[schema_.OpAltCell(LogicalOpKind::kMap, 0)],
                  -1.0f);
  EXPECT_FLOAT_EQ(v.features[schema_.OpAltCell(LogicalOpKind::kMap, 1)],
                  -1.0f);
  // Join does not appear: count 0, alternatives untouched.
  EXPECT_FLOAT_EQ(v.features[schema_.OpCountCell(LogicalOpKind::kJoin)], 0.0f);
  EXPECT_FLOAT_EQ(v.features[schema_.OpAltCell(LogicalOpKind::kJoin, 0)],
                  0.0f);
}

TEST_F(OperationsTest, VectorizeEncodesExactTopologyCounts) {
  LogicalPlan plan = MakeJoinPlan(1.0);
  const EnumerationContext ctx = MakeCtx(plan);
  const AbstractPlanVector v = Vectorize(ctx);
  EXPECT_FLOAT_EQ(v.features[schema_.TopologyCell(Topology::kPipeline)], 3.0f);
  EXPECT_FLOAT_EQ(v.features[schema_.TopologyCell(Topology::kJuncture)], 1.0f);
}

TEST_F(OperationsTest, SplitProducesOneSingletonPerOperator) {
  LogicalPlan plan = MakeWordCountPlan(0.1);
  const EnumerationContext ctx = MakeCtx(plan);
  const auto singles = Split(ctx, Vectorize(ctx));
  ASSERT_EQ(singles.size(), 6u);
  for (size_t i = 0; i < singles.size(); ++i) {
    ASSERT_EQ(singles[i].ops.size(), 1u);
    EXPECT_EQ(singles[i].ops[0], static_cast<OperatorId>(i));
  }
}

TEST_F(OperationsTest, EnumerateSingletonHasOneRowPerAlternative) {
  LogicalPlan plan = MakeWordCountPlan(0.1);
  const EnumerationContext ctx = MakeCtx(plan);
  AbstractPlanVector single;
  single.ops = {2};  // The Map operator: Java + Spark.
  const PlanVectorEnumeration v = Enumerate(ctx, single);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_TRUE(v.scope().test(2));
  EXPECT_EQ(v.scope().count(), 1u);
  // Assignments record distinct alternatives.
  EXPECT_NE(v.assignment(0)[2], v.assignment(1)[2]);
  EXPECT_NE(v.assignment(0)[2], 0);
}

TEST_F(OperationsTest, EnumerateFullPlanIsExponential) {
  LogicalPlan plan = MakeSyntheticPipeline(4, 1e5, 3);
  const EnumerationContext ctx = MakeCtx(plan);
  const PlanVectorEnumeration v = Enumerate(ctx, Vectorize(ctx));
  EXPECT_EQ(v.size(), 16u);  // 2^4.
}

TEST_F(OperationsTest, PlatformMaskRestrictsAlternatives) {
  LogicalPlan plan = MakeWordCountPlan(0.1);
  const EnumerationContext ctx = MakeCtx(plan, /*mask=*/0b10);  // Spark only.
  const PlanVectorEnumeration v = Enumerate(ctx, Vectorize(ctx));
  EXPECT_EQ(v.size(), 1u);
}

TEST_F(OperationsTest, MaskWithoutCapablePlatformFails) {
  LogicalPlan plan = MakeJoinPlan(1.0, /*table_sources=*/true);
  // Postgres-only sources; mask allowing only Java cannot run them.
  auto ctx = EnumerationContext::Make(&plan, &registry_, &schema_, nullptr,
                                      0b01);
  EXPECT_FALSE(ctx.ok());
}

TEST_F(OperationsTest, ComputeBoundaryOfMiddleOperator) {
  LogicalPlan plan = MakeSyntheticPipeline(5, 1e5, 4);
  const EnumerationContext ctx = MakeCtx(plan);
  Scope scope;
  scope.set(1);
  scope.set(2);
  const auto boundary = ComputeBoundary(ctx, scope);
  // Op 1 touches op 0 (outside), op 2 touches op 3 (outside).
  EXPECT_EQ(boundary, (std::vector<OperatorId>{1, 2}));
}

TEST_F(OperationsTest, BoundaryOfFullScopeIsEmpty) {
  LogicalPlan plan = MakeSyntheticPipeline(5, 1e5, 4);
  const EnumerationContext ctx = MakeCtx(plan);
  Scope scope;
  for (int i = 0; i < plan.num_operators(); ++i) scope.set(i);
  EXPECT_TRUE(ComputeBoundary(ctx, scope).empty());
}

TEST_F(OperationsTest, ConcatCountsConversionsOnCrossEdges) {
  LogicalPlan plan = MakeSyntheticPipeline(3, 1e5, 4);  // src, op, sink.
  const EnumerationContext ctx = MakeCtx(plan);
  AbstractPlanVector a;
  a.ops = {0};
  AbstractPlanVector b;
  b.ops = {1};
  const PlanVectorEnumeration va = Enumerate(ctx, a);
  const PlanVectorEnumeration vb = Enumerate(ctx, b);
  const PlanVectorEnumeration merged = Concat(ctx, va, vb);
  ASSERT_EQ(merged.size(), 4u);
  int with_conversion = 0;
  for (size_t i = 0; i < merged.size(); ++i) {
    double conv_count = 0.0;
    for (int c = 0; c < kNumConversionKinds; ++c) {
      for (int p = 0; p < registry_.num_platforms(); ++p) {
        conv_count += merged.features(i)[schema_.ConvPlatformCell(
            static_cast<ConversionKind>(c), static_cast<PlatformId>(p))];
      }
    }
    if (conv_count > 0) {
      ++with_conversion;
      EXPECT_EQ(merged.switches(i), 1);
    } else {
      EXPECT_EQ(merged.switches(i), 0);
    }
  }
  EXPECT_EQ(with_conversion, 2);  // Java->Spark and Spark->Java.
}

TEST_F(OperationsTest, MergedRowEqualsDirectEncoding) {
  // The incremental merge must agree exactly with re-encoding the full
  // assignment from scratch — this pins the conversion accounting.
  LogicalPlan plan = MakeJoinPlan(1.0);
  const EnumerationContext ctx = MakeCtx(plan);
  const PlanVectorEnumeration full = Enumerate(ctx, Vectorize(ctx));
  ASSERT_GT(full.size(), 0u);
  for (size_t row = 0; row < full.size(); row += 37) {
    const std::vector<float> direct =
        EncodeAssignment(ctx, full.assignment(row));
    for (size_t c = 0; c < schema_.width(); ++c) {
      ASSERT_NEAR(full.features(row)[c], direct[c], 1e-3)
          << "row " << row << " cell " << c << " ("
          << schema_.FeatureNames()[c] << ")";
    }
  }
}

TEST_F(OperationsTest, MergedRowEqualsDirectEncodingWithLoops) {
  LogicalPlan plan = MakeKmeansPlan(10.0, 5, 20);
  const EnumerationContext ctx = MakeCtx(plan);
  const PlanVectorEnumeration full = Enumerate(ctx, Vectorize(ctx));
  ASSERT_GT(full.size(), 0u);
  for (size_t row = 0; row < full.size(); row += 11) {
    const std::vector<float> direct =
        EncodeAssignment(ctx, full.assignment(row));
    for (size_t c = 0; c < schema_.width(); ++c) {
      const float merged = full.features(row)[c];
      const float expected = direct[c];
      const float tolerance =
          std::max(1.0f, std::abs(expected)) * 1e-5f;
      ASSERT_NEAR(merged, expected, tolerance)
          << "row " << row << " cell " << c << " ("
          << schema_.FeatureNames()[c] << ")";
    }
  }
}

TEST_F(OperationsTest, UnvectorizeRoundTripsAssignments) {
  LogicalPlan plan = MakeWordCountPlan(0.1);
  const EnumerationContext ctx = MakeCtx(plan);
  const PlanVectorEnumeration full = Enumerate(ctx, Vectorize(ctx));
  for (size_t row = 0; row < full.size(); row += 13) {
    const ExecutionPlan exec = Unvectorize(ctx, full, row);
    ASSERT_TRUE(exec.Validate().ok());
    for (const LogicalOperator& op : plan.operators()) {
      EXPECT_EQ(exec.alt_index(op.id), full.assignment(row)[op.id] - 1);
    }
  }
}

TEST_F(OperationsTest, MergeIsCommutative) {
  LogicalPlan plan = MakeSyntheticPipeline(4, 1e5, 9);
  const EnumerationContext ctx = MakeCtx(plan);
  AbstractPlanVector a;
  a.ops = {0, 1};
  AbstractPlanVector b;
  b.ops = {2, 3};
  const PlanVectorEnumeration va = Enumerate(ctx, a);
  const PlanVectorEnumeration vb = Enumerate(ctx, b);
  const PlanVectorEnumeration ab = Concat(ctx, va, vb);
  const PlanVectorEnumeration ba = Concat(ctx, vb, va);
  ASSERT_EQ(ab.size(), ba.size());
  // Compare as sets keyed by assignment.
  auto key = [&](const PlanVectorEnumeration& v, size_t row) {
    return std::string(reinterpret_cast<const char*>(v.assignment(row)),
                       v.num_ops());
  };
  std::map<std::string, const float*> ab_rows;
  for (size_t i = 0; i < ab.size(); ++i) ab_rows[key(ab, i)] = ab.features(i);
  for (size_t i = 0; i < ba.size(); ++i) {
    auto it = ab_rows.find(key(ba, i));
    ASSERT_NE(it, ab_rows.end());
    for (size_t c = 0; c < schema_.width(); ++c) {
      EXPECT_FLOAT_EQ(ba.features(i)[c], it->second[c]);
    }
  }
}

TEST_F(OperationsTest, TupleSizeCellTakesMax) {
  LogicalPlan plan = MakeWordCountPlan(0.1);  // Source 80B, words 12B.
  const EnumerationContext ctx = MakeCtx(plan);
  const PlanVectorEnumeration full = Enumerate(ctx, Vectorize(ctx));
  for (size_t i = 0; i < full.size(); ++i) {
    EXPECT_FLOAT_EQ(full.features(i)[schema_.TupleSizeCell()], 80.0f);
  }
}

TEST_F(OperationsTest, LoopCardinalityFeaturesScaleWithIterations) {
  LogicalPlan few = MakeKmeansPlan(10.0, 5, 2);
  LogicalPlan many = MakeKmeansPlan(10.0, 5, 200);
  const EnumerationContext ctx_few = MakeCtx(few);
  const EnumerationContext ctx_many = MakeCtx(many);
  const std::vector<float> f_few =
      Vectorize(ctx_few).features;
  const std::vector<float> f_many = Vectorize(ctx_many).features;
  const size_t cell = schema_.OpInCardCell(LogicalOpKind::kMap);
  EXPECT_NEAR(f_many[cell] / f_few[cell], 100.0, 1.0);
}

}  // namespace
}  // namespace robopt
