// The threading contract of the vector algebra: for every thread count the
// enumerator returns the identical chosen assignment, identical predicted
// cost, and identical EnumerationStats; and the packed uint64_t footprint
// keys group exactly like the original string keys.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/linear_oracle.h"
#include "core/operations.h"
#include "core/optimizer.h"
#include "ml/random_forest.h"
#include "workloads/synthetic.h"

namespace robopt {
namespace {

bool SameEnumeration(const PlanVectorEnumeration& a,
                     const PlanVectorEnumeration& b) {
  if (a.size() != b.size() || a.width() != b.width() ||
      a.num_ops() != b.num_ops()) {
    return false;
  }
  if (std::memcmp(a.feature_pool().data(), b.feature_pool().data(),
                  a.size() * a.width() * sizeof(float)) != 0) {
    return false;
  }
  for (size_t row = 0; row < a.size(); ++row) {
    if (a.switches(row) != b.switches(row)) return false;
    if (std::memcmp(a.assignment(row), b.assignment(row), a.num_ops()) != 0) {
      return false;
    }
  }
  return true;
}

class ParallelDeterminismTest : public ::testing::Test {
 protected:
  ParallelDeterminismTest()
      : registry_(PlatformRegistry::Synthetic(3)), schema_(&registry_) {}

  EnumerationContext MakeCtx(const LogicalPlan& plan) {
    auto ctx = EnumerationContext::Make(&plan, &registry_, &schema_);
    EXPECT_TRUE(ctx.ok()) << ctx.status().ToString();
    return std::move(ctx).value();
  }

  PlatformRegistry registry_;
  FeatureSchema schema_;
};

TEST_F(ParallelDeterminismTest, ConcatParallelMatchesSerialBitForBit) {
  LogicalPlan plan = MakeSyntheticPipeline(10, 1e6, 3);
  const EnumerationContext ctx = MakeCtx(plan);
  AbstractPlanVector left_ops;
  for (OperatorId op = 0; op < 8; ++op) left_ops.ops.push_back(op);
  AbstractPlanVector right_ops;
  right_ops.ops = {8};
  const PlanVectorEnumeration left = Enumerate(ctx, left_ops);   // 3^8 rows.
  const PlanVectorEnumeration right = Enumerate(ctx, right_ops);
  const PlanVectorEnumeration serial = Concat(ctx, left, right, 1);
  ASSERT_GE(serial.size(), 19683u);  // Above the parallel cutover.
  for (int threads : {2, 3, 8}) {
    const PlanVectorEnumeration parallel = Concat(ctx, left, right, threads);
    EXPECT_TRUE(SameEnumeration(serial, parallel)) << threads << " threads";
  }
}

TEST_F(ParallelDeterminismTest, PruneBoundaryParallelMatchesSerial) {
  LogicalPlan plan = MakeSyntheticPipeline(10, 1e6, 5);
  const EnumerationContext ctx = MakeCtx(plan);
  AbstractPlanVector middle;
  for (OperatorId op = 1; op < 9; ++op) middle.ops.push_back(op);
  const PlanVectorEnumeration v = Enumerate(ctx, middle);  // 3^8 rows.
  LinearFeatureOracle oracle(schema_, 23);
  PruneStats serial_stats;
  const PlanVectorEnumeration serial =
      PruneBoundary(ctx, v, oracle, &serial_stats, 1);
  for (int threads : {2, 3, 8}) {
    PruneStats stats;
    const PlanVectorEnumeration parallel =
        PruneBoundary(ctx, v, oracle, &stats, threads);
    EXPECT_TRUE(SameEnumeration(serial, parallel)) << threads << " threads";
    EXPECT_EQ(stats.rows_in, serial_stats.rows_in);
    EXPECT_EQ(stats.rows_out, serial_stats.rows_out);
  }
}

TEST_F(ParallelDeterminismTest, ArgMinCostThreadCountIndependent) {
  LogicalPlan plan = MakeSyntheticPipeline(10, 1e6, 9);
  const EnumerationContext ctx = MakeCtx(plan);
  const PlanVectorEnumeration all = Enumerate(ctx, Vectorize(ctx));
  LinearFeatureOracle oracle(schema_, 31);
  float serial_cost = 0.0f;
  const size_t serial_best = ArgMinCost(ctx, all, oracle, &serial_cost, 1);
  for (int threads : {2, 8}) {
    float cost = 0.0f;
    EXPECT_EQ(ArgMinCost(ctx, all, oracle, &cost, threads), serial_best);
    EXPECT_EQ(cost, serial_cost);
  }
}

/// Reference string-key grouping (the pre-packed-key implementation):
/// cheapest row per footprint, in first-seen footprint order.
std::vector<size_t> StringKeyReference(const EnumerationContext& ctx,
                                       const PlanVectorEnumeration& v,
                                       const std::vector<float>& costs) {
  const std::vector<OperatorId>& boundary = v.boundary();
  std::unordered_map<std::string, size_t> best;
  std::vector<std::string> order;
  std::string key(boundary.size(), '\0');
  for (size_t row = 0; row < v.size(); ++row) {
    for (size_t bi = 0; bi < boundary.size(); ++bi) {
      key[bi] = static_cast<char>(
          ctx.PlatformOfAssignment(v.assignment(row), boundary[bi]) + 1);
    }
    auto [it, inserted] = best.try_emplace(key, row);
    if (inserted) {
      order.push_back(key);
    } else if (costs[row] < costs[it->second]) {
      it->second = row;
    }
  }
  std::vector<size_t> kept;
  for (const std::string& k : order) kept.push_back(best[k]);
  return kept;
}

void ExpectMatchesStringReference(const EnumerationContext& ctx,
                                  const PlanVectorEnumeration& v,
                                  const LinearFeatureOracle& oracle) {
  std::vector<float> costs(v.size());
  oracle.EstimateBatch(v.feature_pool().data(), v.size(), v.width(),
                       costs.data());
  const std::vector<size_t> expected = StringKeyReference(ctx, v, costs);
  for (int threads : {1, 4}) {
    const PlanVectorEnumeration pruned =
        PruneBoundary(ctx, v, oracle, nullptr, threads);
    ASSERT_EQ(pruned.size(), expected.size()) << threads << " threads";
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(std::memcmp(pruned.assignment(i),
                            v.assignment(expected[i]), v.num_ops()),
                0)
          << "row " << i << ", " << threads << " threads";
    }
  }
}

TEST_F(ParallelDeterminismTest, PackedKeysGroupLikeStringKeys) {
  // Narrow boundary (<= 8 operators): the packed uint64_t path.
  LogicalPlan plan = MakeSyntheticPipeline(8, 1e6, 11);
  const EnumerationContext ctx = MakeCtx(plan);
  AbstractPlanVector middle;
  for (OperatorId op = 1; op < 7; ++op) middle.ops.push_back(op);
  const PlanVectorEnumeration v = Enumerate(ctx, middle);
  ASSERT_LE(v.boundary().size(), 8u);
  LinearFeatureOracle oracle(schema_, 41);
  ExpectMatchesStringReference(ctx, v, oracle);
}

TEST_F(ParallelDeterminismTest, WideBoundaryFallsBackToStringKeys) {
  // Every other operator of a long pipeline: 9 scope members, all of them
  // boundary, which exceeds the 8-operator packed-key cap.
  PlatformRegistry registry = PlatformRegistry::Synthetic(2);
  FeatureSchema schema(&registry);
  LogicalPlan plan = MakeSyntheticPipeline(20, 1e6, 13);
  auto made = EnumerationContext::Make(&plan, &registry, &schema);
  ASSERT_TRUE(made.ok());
  const EnumerationContext ctx = std::move(made).value();
  AbstractPlanVector alternating;
  for (OperatorId op = 1; op < 19; op += 2) alternating.ops.push_back(op);
  const PlanVectorEnumeration v = Enumerate(ctx, alternating);  // 2^9 rows.
  ASSERT_GT(v.boundary().size(), 8u);
  LinearFeatureOracle oracle(schema, 43);
  ExpectMatchesStringReference(ctx, v, oracle);
}

TEST_F(ParallelDeterminismTest, OptimizerDeterministicAcrossThreadCounts) {
  LinearFeatureOracle oracle(schema_, 59);
  RoboptOptimizer optimizer(&registry_, &schema_, &oracle);
  const LogicalPlan plans[] = {
      MakeSyntheticPipeline(12, 1e7, 3),
      MakeSyntheticJoinTree(3, 1e6, 7),
      MakeSyntheticLoopPlan(10, 1e6, 20, 5),
  };
  for (const LogicalPlan& plan : plans) {
    OptimizeOptions serial_options;
    serial_options.num_threads = 1;
    auto serial = optimizer.Optimize(plan, nullptr, serial_options);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    for (int threads : {2, 8}) {
      OptimizeOptions options;
      options.num_threads = threads;
      auto parallel = optimizer.Optimize(plan, nullptr, options);
      ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
      // Identical chosen assignment...
      for (const LogicalOperator& op : plan.operators()) {
        EXPECT_EQ(parallel->plan.alt_index(op.id),
                  serial->plan.alt_index(op.id))
            << "operator " << op.name << ", " << threads << " threads";
      }
      // ... identical cost (bit-for-bit) ...
      EXPECT_EQ(parallel->predicted_runtime_s, serial->predicted_runtime_s);
      // ... and identical enumeration row counts.
      EXPECT_EQ(parallel->stats.vectors_created,
                serial->stats.vectors_created);
      EXPECT_EQ(parallel->stats.vectors_pruned, serial->stats.vectors_pruned);
      EXPECT_EQ(parallel->stats.final_vectors, serial->stats.final_vectors);
      EXPECT_EQ(parallel->stats.oracle_rows, serial->stats.oracle_rows);
      EXPECT_EQ(parallel->stats.concat_steps, serial->stats.concat_steps);
    }
  }
}

TEST_F(ParallelDeterminismTest, ForestBlockedKernelMatchesPerRowTraversal) {
  const size_t dim = 24;
  MlDataset data(dim);
  Rng rng(7);
  std::vector<float> row(dim);
  for (int i = 0; i < 300; ++i) {
    for (float& cell : row) {
      cell = static_cast<float>(rng.NextUniform(0, 50));
    }
    data.Add(row, static_cast<float>(rng.NextUniform(0, 100)));
  }
  RandomForest::Params params;
  params.num_trees = 15;
  RandomForest forest(params);
  ASSERT_TRUE(forest.Train(data).ok());

  // Expected: the plain per-row mean over trees (the pre-blocking kernel).
  const size_t n = data.size();
  std::vector<float> expected(n);
  for (size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (const DecisionTree& tree : forest.trees()) {
      acc += tree.Predict(data.row(i), dim);
    }
    acc = std::expm1(acc / static_cast<double>(forest.trees().size()));
    expected[i] = static_cast<float>(acc < 0 ? 0 : acc);
  }

  std::vector<float> got(n);
  for (int threads : {1, 2, 8}) {
    forest.set_num_threads(threads);
    forest.PredictBatch(data.features().data(), n, dim, got.data());
    EXPECT_EQ(std::memcmp(got.data(), expected.data(), n * sizeof(float)), 0)
        << threads << " threads";
  }
}

}  // namespace
}  // namespace robopt
