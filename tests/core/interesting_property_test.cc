#include "core/interesting_property.h"

#include <gtest/gtest.h>

#include <limits>

#include "core/linear_oracle.h"
#include "workloads/queries.h"
#include "workloads/synthetic.h"

namespace robopt {
namespace {

class InterestingPropertyTest : public ::testing::Test {
 protected:
  InterestingPropertyTest()
      : registry_(PlatformRegistry::Default(2)), schema_(&registry_) {}

  PlatformRegistry registry_;
  FeatureSchema schema_;
};

TEST_F(InterestingPropertyTest, EmptyPropertyListMatchesPlainPrune) {
  LogicalPlan plan = MakeSyntheticPipeline(5, 1e5, 3);
  auto ctx = EnumerationContext::Make(&plan, &registry_, &schema_);
  ASSERT_TRUE(ctx.ok());
  AbstractPlanVector middle;
  middle.ops = {1, 2, 3};
  const PlanVectorEnumeration v = Enumerate(*ctx, middle);
  LinearFeatureOracle oracle(schema_, 9);
  const PlanVectorEnumeration plain = PruneBoundary(*ctx, v, oracle);
  const PlanVectorEnumeration with_props =
      PruneBoundaryWithProperties(*ctx, v, oracle, {});
  ASSERT_EQ(plain.size(), with_props.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    for (size_t c = 0; c < schema_.width(); ++c) {
      EXPECT_FLOAT_EQ(plain.features(i)[c], with_props.features(i)[c]);
    }
  }
}

TEST_F(InterestingPropertyTest, VariantPropertyKeepsBothSamplerVariants) {
  // A scope whose boundary is a Spark Sample: without the variant property
  // the two Spark variants share a footprint (platform Spark) and one is
  // pruned; with it, both survive.
  LogicalPlan plan = MakeSgdPlan(0.5, 100, 10);
  OperatorId sample = kInvalidOperatorId;
  for (const LogicalOperator& op : plan.operators()) {
    if (op.kind == LogicalOpKind::kSample) sample = op.id;
  }
  ASSERT_NE(sample, kInvalidOperatorId);
  auto ctx = EnumerationContext::Make(&plan, &registry_, &schema_);
  ASSERT_TRUE(ctx.ok());
  AbstractPlanVector single;
  single.ops = {sample};
  const PlanVectorEnumeration v = Enumerate(*ctx, single);
  // Java sampler + 2 Spark variants.
  ASSERT_EQ(v.size(), 3u);
  LinearFeatureOracle oracle(schema_, 21);
  const PlanVectorEnumeration plain = PruneBoundary(*ctx, v, oracle);
  EXPECT_EQ(plain.size(), 2u);  // One per platform.
  VariantProperty variant;
  const PlanVectorEnumeration finer =
      PruneBoundaryWithProperties(*ctx, v, oracle, {&variant});
  EXPECT_EQ(finer.size(), 3u);  // Variants kept distinct.
}

TEST_F(InterestingPropertyTest, FinerFootprintStillKeepsTheCheapest) {
  LogicalPlan plan = MakeSyntheticPipeline(6, 1e5, 5);
  auto ctx = EnumerationContext::Make(&plan, &registry_, &schema_);
  ASSERT_TRUE(ctx.ok());
  AbstractPlanVector middle;
  middle.ops = {1, 2, 3, 4};
  const PlanVectorEnumeration v = Enumerate(*ctx, middle);
  LinearFeatureOracle oracle(schema_, 13);
  SortednessProperty sortedness;
  const PlanVectorEnumeration pruned =
      PruneBoundaryWithProperties(*ctx, v, oracle, {&sortedness});
  // The global cheapest row always survives any lossless prune.
  std::vector<float> all_costs(v.size());
  oracle.EstimateBatch(v.feature_pool().data(), v.size(), v.width(),
                       all_costs.data());
  float global_min = std::numeric_limits<float>::infinity();
  for (float c : all_costs) global_min = std::min(global_min, c);
  std::vector<float> kept_costs(pruned.size());
  oracle.EstimateBatch(pruned.feature_pool().data(), pruned.size(),
                       pruned.width(), kept_costs.data());
  float kept_min = std::numeric_limits<float>::infinity();
  for (float c : kept_costs) kept_min = std::min(kept_min, c);
  EXPECT_FLOAT_EQ(kept_min, global_min);
}

TEST_F(InterestingPropertyTest, PropertyNames) {
  EXPECT_EQ(VariantProperty().Name(), "variant");
  EXPECT_EQ(SortednessProperty().Name(), "sortedness");
}

}  // namespace
}  // namespace robopt
