// The Concat row merge and the PruneBoundary packed-footprint grouping call
// through the runtime SIMD dispatch table (simd::Ops()). Lane selection must
// be invisible in the results: the scalar lane and the best available lane
// have to produce bit-identical enumerations, at every thread count, both on
// small footprint sets (flat SIMD probe) and past the flat-array cap where
// the grouping migrates to a hash index.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/operations.h"
#include "ml/simd_dispatch.h"
#include "test_oracles.h"
#include "workloads/synthetic.h"

namespace robopt {
namespace {

class SimdLaneTest : public ::testing::Test {
 protected:
  SimdLaneTest() : initial_lane_(simd::ActiveLane()) {}
  ~SimdLaneTest() override { simd::ForceLaneForTest(initial_lane_); }

  static bool Identical(const PlanVectorEnumeration& a,
                        const PlanVectorEnumeration& b) {
    if (a.size() != b.size() || a.width() != b.width()) return false;
    if (std::memcmp(a.feature_pool().data(), b.feature_pool().data(),
                    a.feature_pool().size() * sizeof(float)) != 0) {
      return false;
    }
    for (size_t row = 0; row < a.size(); ++row) {
      if (std::memcmp(a.assignment(row), b.assignment(row), a.num_ops()) !=
              0 ||
          a.switches(row) != b.switches(row)) {
        return false;
      }
    }
    return true;
  }

  simd::Lane initial_lane_;
};

TEST_F(SimdLaneTest, ConcatAndPruneBitIdenticalAcrossLanesAndThreads) {
  PlatformRegistry registry = PlatformRegistry::Synthetic(3);
  FeatureSchema schema(&registry);
  LogicalPlan plan = MakeSyntheticPipeline(7, 1e5, 41);
  auto ctx = EnumerationContext::Make(&plan, &registry, &schema);
  ASSERT_TRUE(ctx.ok());
  LinearFeatureOracle oracle(schema, 19);

  // Fold the pipeline with concat + prune once per lane / thread count and
  // demand identical bits everywhere.
  auto fold = [&](int num_threads) {
    PlanVectorEnumeration acc(schema.width(), plan.num_operators());
    bool first = true;
    for (int op = 0; op < plan.num_operators(); ++op) {
      AbstractPlanVector single;
      single.ops = {static_cast<OperatorId>(op)};
      PlanVectorEnumeration sv = Enumerate(*ctx, single);
      if (first) {
        acc = std::move(sv);
        first = false;
      } else {
        acc = PruneBoundary(*ctx, Concat(*ctx, acc, sv, num_threads), oracle,
                            nullptr, num_threads);
      }
    }
    return acc;
  };

  simd::ForceLaneForTest(simd::Lane::kScalar);
  const PlanVectorEnumeration want = fold(1);
  ASSERT_GT(want.size(), 0u);
  for (simd::Lane lane : {simd::Lane::kScalar, simd::Lane::kAvx2,
                          simd::Lane::kNeon}) {
    simd::ForceLaneForTest(lane);  // Unavailable lanes clamp; still valid.
    for (int threads : {1, 4}) {
      const PlanVectorEnumeration got = fold(threads);
      EXPECT_TRUE(Identical(got, want))
          << "lane request " << simd::LaneName(lane) << " resolved to "
          << simd::LaneName(simd::ActiveLane()) << ", threads=" << threads;
    }
  }
}

TEST_F(SimdLaneTest, PrunePastFlatCapMatchesScalarLane) {
  // A non-contiguous operator subset makes every chosen operator a boundary
  // operator: 6 boundary operators over 4 platforms yield 4^6 = 4096 rows
  // with 4^5 = 1024 distinct footprints — past the 512-entry flat-probe cap,
  // so the grouping migrates to its hash index mid-scan. (Operators 1..3 are
  // contiguous, so operator 2 is interior; the rest are isolated.)
  PlatformRegistry registry = PlatformRegistry::Synthetic(4);
  FeatureSchema schema(&registry);
  LogicalPlan plan = MakeSyntheticPipeline(11, 1e5, 43);
  auto ctx = EnumerationContext::Make(&plan, &registry, &schema);
  ASSERT_TRUE(ctx.ok());
  AbstractPlanVector subset;
  subset.ops = {1, 2, 3, 5, 7, 9};
  const PlanVectorEnumeration v = Enumerate(*ctx, subset);
  ASSERT_EQ(v.size(), 4096u);
  LinearFeatureOracle oracle(schema, 47);

  simd::ForceLaneForTest(simd::Lane::kScalar);
  const PlanVectorEnumeration want = PruneBoundary(*ctx, v, oracle);
  EXPECT_EQ(want.size(), 1024u);

  for (simd::Lane lane : {simd::Lane::kAvx2, simd::Lane::kNeon}) {
    simd::ForceLaneForTest(lane);
    for (int threads : {1, 4}) {
      const PlanVectorEnumeration got =
          PruneBoundary(*ctx, v, oracle, nullptr, threads);
      EXPECT_TRUE(Identical(got, want))
          << "lane request " << simd::LaneName(lane) << " resolved to "
          << simd::LaneName(simd::ActiveLane()) << ", threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace robopt
