// CachingCostOracle: batch dedup, cross-batch memoization, generation
// eviction at the byte budget, stats accounting, bit-equality with the
// uncached oracle — and the full-optimizer contract that cache on/off at
// every thread count picks the identical plan at the identical cost.

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/cost_oracle.h"
#include "core/linear_oracle.h"
#include "core/optimizer.h"
#include "ml/random_forest.h"
#include "workloads/synthetic.h"

namespace robopt {
namespace {

/// A batch of `n` rows over exactly `distinct` underlying rows (requires
/// n >= distinct): the first `distinct` rows are the distinct pool in order,
/// the rest are random repeats of it.
std::vector<float> MakeBatch(size_t n, size_t distinct, size_t dim,
                             uint64_t seed) {
  Rng rng(seed);
  std::vector<float> batch(n * dim);
  for (size_t i = 0; i < distinct * dim; ++i) {
    batch[i] = static_cast<float>(rng.NextUniform(0.0, 100.0));
  }
  for (size_t i = distinct; i < n; ++i) {
    const size_t pick = rng.NextBounded(distinct);
    std::memcpy(batch.data() + i * dim, batch.data() + pick * dim,
                dim * sizeof(float));
  }
  return batch;
}

class OracleCacheTest : public ::testing::Test {
 protected:
  OracleCacheTest()
      : registry_(PlatformRegistry::Synthetic(3)),
        schema_(&registry_),
        inner_(schema_, 17) {}

  PlatformRegistry registry_;
  FeatureSchema schema_;
  LinearFeatureOracle inner_;
};

TEST_F(OracleCacheTest, CachedMatchesUncachedBitForBit) {
  const size_t dim = schema_.width();
  CachingCostOracle cache(&inner_, 1 << 20);
  for (uint64_t seed : {1u, 2u, 3u}) {
    const std::vector<float> batch = MakeBatch(257, 40, dim, seed);
    std::vector<float> expected(257), got(257);
    inner_.EstimateBatch(batch.data(), 257, dim, expected.data());
    cache.EstimateBatch(batch.data(), 257, dim, got.data());
    EXPECT_EQ(std::memcmp(got.data(), expected.data(), 257 * sizeof(float)),
              0)
        << "seed " << seed;
    // Replay: the second pass is served from the table, still bit-equal.
    cache.EstimateBatch(batch.data(), 257, dim, got.data());
    EXPECT_EQ(std::memcmp(got.data(), expected.data(), 257 * sizeof(float)),
              0)
        << "warm seed " << seed;
  }
}

TEST_F(OracleCacheTest, BatchDedupSendsOnlyUniqueRowsToInner) {
  const size_t dim = schema_.width();
  const std::vector<float> pool = MakeBatch(10, 10, dim, 5);
  // Tile the 10 distinct rows 8x: 80 rows, 10 unique.
  std::vector<float> batch;
  for (int copy = 0; copy < 8; ++copy) {
    batch.insert(batch.end(), pool.begin(), pool.end());
  }
  CachingCostOracle cache(&inner_, 1 << 20);
  const size_t inner_rows_before = inner_.rows_estimated();
  std::vector<float> out(80);
  cache.EstimateBatch(batch.data(), 80, dim, out.data());
  EXPECT_EQ(inner_.rows_estimated() - inner_rows_before, 10u);
  EXPECT_EQ(cache.rows_estimated(), 80u);  // Outer counter is cache-blind.
  const OracleCacheStats stats = cache.stats();
  EXPECT_EQ(stats.rows, 80u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.batch_dups, 70u);
  EXPECT_EQ(stats.unique_rows, 10u);
  // Tiled rows scatter back identically to their first occurrence.
  for (size_t i = 10; i < 80; ++i) {
    EXPECT_EQ(out[i], out[i % 10]) << "row " << i;
  }
}

TEST_F(OracleCacheTest, CrossBatchMemoizationServesSecondBatchFromTable) {
  const size_t dim = schema_.width();
  const std::vector<float> batch = MakeBatch(50, 50, dim, 7);
  CachingCostOracle cache(&inner_, 1 << 20);
  std::vector<float> out(50);
  cache.EstimateBatch(batch.data(), 50, dim, out.data());
  const size_t inner_rows_after_first = inner_.rows_estimated();
  cache.EstimateBatch(batch.data(), 50, dim, out.data());
  EXPECT_EQ(inner_.rows_estimated(), inner_rows_after_first);
  const OracleCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 50u);
  EXPECT_EQ(stats.unique_rows, 50u);
  EXPECT_EQ(stats.rows, stats.hits + stats.batch_dups + stats.unique_rows);
}

TEST_F(OracleCacheTest, EvictsByGenerationAtTheByteBudget) {
  const size_t dim = schema_.width();
  // Budget for only a handful of 32-byte slots, far below the 400 unique
  // rows pushed through: generations must turn over, results must stay
  // exact.
  CachingCostOracle cache(&inner_, 256);
  const std::vector<float> batch = MakeBatch(400, 400, dim, 9);
  std::vector<float> expected(400), got(400);
  inner_.EstimateBatch(batch.data(), 400, dim, expected.data());
  cache.EstimateBatch(batch.data(), 400, dim, got.data());
  EXPECT_EQ(std::memcmp(got.data(), expected.data(), 400 * sizeof(float)), 0);
  const OracleCacheStats stats = cache.stats();
  EXPECT_GT(stats.capacity, 0u);
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_LE(stats.entries, stats.capacity);
  EXPECT_EQ(stats.unique_rows, 400u);
}

TEST_F(OracleCacheTest, TinyBudgetDisablesTableButKeepsBatchDedup) {
  const size_t dim = schema_.width();
  CachingCostOracle cache(&inner_, 1);  // Too small for even one entry.
  const std::vector<float> pool = MakeBatch(5, 5, dim, 11);
  std::vector<float> batch;
  for (int copy = 0; copy < 4; ++copy) {
    batch.insert(batch.end(), pool.begin(), pool.end());
  }
  std::vector<float> expected(20), got(20);
  inner_.EstimateBatch(batch.data(), 20, dim, expected.data());
  const size_t inner_rows_before = inner_.rows_estimated();
  cache.EstimateBatch(batch.data(), 20, dim, got.data());
  cache.EstimateBatch(batch.data(), 20, dim, got.data());
  EXPECT_EQ(std::memcmp(got.data(), expected.data(), 20 * sizeof(float)), 0);
  const OracleCacheStats stats = cache.stats();
  EXPECT_EQ(stats.capacity, 0u);
  EXPECT_EQ(stats.hits, 0u);  // No table, no cross-batch hits...
  EXPECT_EQ(stats.batch_dups, 30u);  // ... but in-batch dedup still works.
  EXPECT_EQ(inner_.rows_estimated() - inner_rows_before, 10u);
}

TEST_F(OracleCacheTest, WidthChangeReconfiguresTheTable) {
  const size_t dim = schema_.width();
  CachingCostOracle cache(&inner_, 1 << 20);
  const std::vector<float> wide = MakeBatch(30, 30, dim, 13);
  std::vector<float> out(30);
  cache.EstimateBatch(wide.data(), 30, dim, out.data());
  // Same oracle, narrower rows (LinearFeatureOracle handles any dim).
  const std::vector<float> narrow = MakeBatch(30, 30, 8, 15);
  std::vector<float> expected(30);
  inner_.EstimateBatch(narrow.data(), 30, 8, expected.data());
  cache.EstimateBatch(narrow.data(), 30, 8, out.data());
  EXPECT_EQ(std::memcmp(out.data(), expected.data(), 30 * sizeof(float)), 0);
  cache.EstimateBatch(narrow.data(), 30, 8, out.data());
  EXPECT_EQ(std::memcmp(out.data(), expected.data(), 30 * sizeof(float)), 0);
}

TEST_F(OracleCacheTest, SharedAcrossThreadsStaysConsistent) {
  // The cache (and the base-class counters) may be shared by concurrent
  // optimize calls: hammer one instance from several threads and check the
  // books still balance. Run under TSan in CI.
  const size_t dim = schema_.width();
  CachingCostOracle cache(&inner_, 1 << 18);
  constexpr int kThreads = 4;
  constexpr int kBatches = 25;
  constexpr size_t kRows = 64;
  std::vector<std::thread> threads;
  std::vector<float> expected(kRows);
  const std::vector<float> batch = MakeBatch(kRows, 16, dim, 21);
  inner_.EstimateBatch(batch.data(), kRows, dim, expected.data());
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      std::vector<float> out(kRows);
      for (int b = 0; b < kBatches; ++b) {
        cache.EstimateBatch(batch.data(), kRows, dim, out.data());
        ASSERT_EQ(
            std::memcmp(out.data(), expected.data(), kRows * sizeof(float)),
            0);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(cache.rows_estimated(), kThreads * kBatches * kRows);
  EXPECT_EQ(cache.batches(), static_cast<size_t>(kThreads * kBatches));
  const OracleCacheStats stats = cache.stats();
  EXPECT_EQ(stats.rows, kThreads * kBatches * kRows);
  EXPECT_EQ(stats.rows, stats.hits + stats.batch_dups + stats.unique_rows);
}

TEST_F(OracleCacheTest, OptimizerCachedVsUncachedAcrossThreadCounts) {
  LinearFeatureOracle oracle(schema_, 59);
  RoboptOptimizer optimizer(&registry_, &schema_, &oracle);
  const LogicalPlan plans[] = {
      MakeSyntheticPipeline(12, 1e7, 3),
      MakeSyntheticJoinTree(3, 1e6, 7),
      MakeSyntheticLoopPlan(10, 1e6, 20, 5),
  };
  size_t reused = 0;
  for (const LogicalPlan& plan : plans) {
    OptimizeOptions base_options;
    base_options.num_threads = 1;
    auto base = optimizer.Optimize(plan, nullptr, base_options);
    ASSERT_TRUE(base.ok()) << base.status().ToString();
    // A roomy budget and a starved one (constant evictions): both must
    // reproduce the uncached run exactly at every thread count.
    for (size_t budget : {size_t{1} << 22, size_t{4} << 10}) {
      for (int threads : {1, 2, 8}) {
        OptimizeOptions options;
        options.num_threads = threads;
        options.oracle_cache_bytes = budget;
        auto cached = optimizer.Optimize(plan, nullptr, options);
        ASSERT_TRUE(cached.ok()) << cached.status().ToString();
        for (const LogicalOperator& op : plan.operators()) {
          EXPECT_EQ(cached->plan.alt_index(op.id), base->plan.alt_index(op.id))
              << "operator " << op.name << ", " << threads << " threads, "
              << budget << " bytes";
        }
        EXPECT_EQ(cached->predicted_runtime_s, base->predicted_runtime_s);
        EXPECT_EQ(cached->stats.vectors_created, base->stats.vectors_created);
        EXPECT_EQ(cached->stats.vectors_pruned, base->stats.vectors_pruned);
        EXPECT_EQ(cached->stats.final_vectors, base->stats.final_vectors);
        // The outer oracle counter is cache-blind, so instrumentation is
        // knob-invariant; the cache's own books must balance.
        EXPECT_EQ(cached->stats.oracle_rows, base->stats.oracle_rows);
        EXPECT_EQ(cached->oracle_cache.rows, cached->stats.oracle_rows);
        EXPECT_EQ(cached->oracle_cache.rows,
                  cached->oracle_cache.hits + cached->oracle_cache.batch_dups +
                      cached->oracle_cache.unique_rows);
        reused +=
            cached->oracle_cache.hits + cached->oracle_cache.batch_dups;
      }
    }
  }
  // The cache must actually pay off somewhere: the pipeline plan's final
  // ArgMinCost replays rows its last boundary prune just estimated. (Plans
  // whose only oracle batch is the final ArgMinCost contribute nothing.)
  EXPECT_GT(reused, 0u);
}

TEST_F(OracleCacheTest, ForestBackedOptimizerMatchesUncached) {
  // Same contract with the real oracle flavor: an MlCostOracle over the
  // flattened forest kernel.
  MlDataset data(schema_.width());
  Rng rng(31);
  std::vector<float> row(schema_.width());
  for (int i = 0; i < 256; ++i) {
    for (float& cell : row) {
      cell = static_cast<float>(rng.NextUniform(0, 100));
    }
    data.Add(row, static_cast<float>(rng.NextUniform(0, 1000)));
  }
  RandomForest::Params params;
  params.num_trees = 12;
  RandomForest forest(params);
  ASSERT_TRUE(forest.Train(data).ok());
  MlCostOracle oracle(&forest);
  RoboptOptimizer optimizer(&registry_, &schema_, &oracle);
  const LogicalPlan plan = MakeSyntheticPipeline(10, 1e6, 13);
  OptimizeOptions base_options;
  base_options.num_threads = 1;
  auto base = optimizer.Optimize(plan, nullptr, base_options);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  OptimizeOptions options;
  options.num_threads = 4;
  options.oracle_cache_bytes = 1 << 22;
  auto cached = optimizer.Optimize(plan, nullptr, options);
  ASSERT_TRUE(cached.ok()) << cached.status().ToString();
  for (const LogicalOperator& op : plan.operators()) {
    EXPECT_EQ(cached->plan.alt_index(op.id), base->plan.alt_index(op.id));
  }
  EXPECT_EQ(cached->predicted_runtime_s, base->predicted_runtime_s);
}

}  // namespace
}  // namespace robopt
