#include "core/feature_schema.h"

#include <gtest/gtest.h>

#include <set>

namespace robopt {
namespace {

TEST(FeatureSchemaTest, WidthAccountsForAllRegions) {
  PlatformRegistry registry = PlatformRegistry::Default(3);
  FeatureSchema schema(&registry);
  size_t expected = kNumTopologies;
  for (int k = 0; k < kNumLogicalOpKinds; ++k) {
    expected += 1 +
                registry.AlternativesFor(static_cast<LogicalOpKind>(k)).size() +
                kNumTopologies + 3;
  }
  expected += kNumConversionKinds * (3 + 2);
  expected += 1;  // Tuple size.
  EXPECT_EQ(schema.width(), expected);
}

TEST(FeatureSchemaTest, CellsAreDisjoint) {
  PlatformRegistry registry = PlatformRegistry::Default(4);
  FeatureSchema schema(&registry);
  std::set<size_t> seen;
  auto check = [&](size_t cell) {
    EXPECT_LT(cell, schema.width());
    EXPECT_TRUE(seen.insert(cell).second) << "cell " << cell << " reused";
  };
  for (int t = 0; t < kNumTopologies; ++t) {
    check(schema.TopologyCell(static_cast<Topology>(t)));
  }
  for (int k = 0; k < kNumLogicalOpKinds; ++k) {
    const auto kind = static_cast<LogicalOpKind>(k);
    check(schema.OpCountCell(kind));
    for (size_t a = 0; a < schema.OpAlternatives(kind); ++a) {
      check(schema.OpAltCell(kind, a));
    }
    for (int t = 0; t < kNumTopologies; ++t) {
      check(schema.OpTopologyCell(kind, static_cast<Topology>(t)));
    }
    check(schema.OpUdfCell(kind));
    check(schema.OpInCardCell(kind));
    check(schema.OpOutCardCell(kind));
  }
  for (int c = 0; c < kNumConversionKinds; ++c) {
    const auto kind = static_cast<ConversionKind>(c);
    for (int p = 0; p < registry.num_platforms(); ++p) {
      check(schema.ConvPlatformCell(kind, static_cast<PlatformId>(p)));
    }
    check(schema.ConvInCardCell(kind));
    check(schema.ConvOutCardCell(kind));
  }
  check(schema.TupleSizeCell());
  EXPECT_EQ(seen.size(), schema.width());
}

TEST(FeatureSchemaTest, MaxMaskMarksPipelineAndTupleSize) {
  PlatformRegistry registry = PlatformRegistry::Default(2);
  FeatureSchema schema(&registry);
  const auto& mask = schema.MaxMergeMask();
  ASSERT_EQ(mask.size(), schema.width());
  size_t max_cells = 0;
  for (uint8_t m : mask) max_cells += m;
  EXPECT_EQ(max_cells, 2u);
  EXPECT_EQ(mask[schema.TopologyCell(Topology::kPipeline)], 1);
  EXPECT_EQ(mask[schema.TupleSizeCell()], 1);
}

TEST(FeatureSchemaTest, FeatureNamesCoverEveryCell) {
  PlatformRegistry registry = PlatformRegistry::Default(3);
  FeatureSchema schema(&registry);
  const auto names = schema.FeatureNames();
  ASSERT_EQ(names.size(), schema.width());
  for (const std::string& name : names) {
    EXPECT_FALSE(name.empty());
  }
  EXPECT_EQ(names[0], "#pipeline");
  EXPECT_EQ(names.back(), "avg_tuple_bytes");
}

TEST(FeatureSchemaTest, AltCellsReflectVariants) {
  PlatformRegistry registry = PlatformRegistry::Default(3);
  FeatureSchema schema(&registry);
  // Sample has 4 alternatives (Java, Spark stateful, Spark cached, Flink).
  EXPECT_EQ(schema.OpAlternatives(LogicalOpKind::kSample), 4u);
  EXPECT_EQ(schema.OpAlternatives(LogicalOpKind::kMap), 3u);
}

TEST(FeatureSchemaTest, WidthGrowsWithPlatformCount) {
  PlatformRegistry two = PlatformRegistry::Synthetic(2);
  PlatformRegistry five = PlatformRegistry::Synthetic(5);
  FeatureSchema schema2(&two);
  FeatureSchema schema5(&five);
  EXPECT_GT(schema5.width(), schema2.width());
}

}  // namespace
}  // namespace robopt
