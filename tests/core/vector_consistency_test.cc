// Property tests over many random plans: the incremental vector algebra
// must agree with direct encoding, and the pruned priority enumeration must
// find the brute-force optimum (losslessness), across shapes, sizes, seeds
// and platform counts.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>

#include "core/linear_oracle.h"
#include "core/priority_enumeration.h"
#include "workloads/synthetic.h"

namespace robopt {
namespace {

enum class Shape { kPipeline, kJoinTree, kLoop };

LogicalPlan MakeShape(Shape shape, int size, uint64_t seed) {
  switch (shape) {
    case Shape::kPipeline:
      return MakeSyntheticPipeline(std::max(3, size), 1e6, seed);
    case Shape::kJoinTree:
      return MakeSyntheticJoinTree(std::max(1, size / 4), 1e6, seed);
    case Shape::kLoop:
      return MakeSyntheticLoopPlan(std::max(9, size), 1e6, 15, seed);
  }
  return LogicalPlan();
}

class VectorConsistencyTest
    : public ::testing::TestWithParam<std::tuple<Shape, int, uint64_t>> {};

TEST_P(VectorConsistencyTest, MergedFeaturesEqualDirectEncoding) {
  const auto [shape, num_platforms, seed] = GetParam();
  PlatformRegistry registry = PlatformRegistry::Synthetic(num_platforms);
  FeatureSchema schema(&registry);
  LogicalPlan plan = MakeShape(shape, 8, seed);
  auto ctx = EnumerationContext::Make(&plan, &registry, &schema);
  ASSERT_TRUE(ctx.ok()) << ctx.status().ToString();

  const PlanVectorEnumeration all = Enumerate(*ctx, Vectorize(*ctx));
  ASSERT_GT(all.size(), 0u);
  const size_t step = std::max<size_t>(1, all.size() / 16);
  for (size_t row = 0; row < all.size(); row += step) {
    const std::vector<float> direct =
        EncodeAssignment(*ctx, all.assignment(row));
    for (size_t cell = 0; cell < schema.width(); ++cell) {
      const float expected = direct[cell];
      const float tolerance = std::max(1.0f, std::abs(expected)) * 1e-5f;
      ASSERT_NEAR(all.features(row)[cell], expected, tolerance)
          << "row " << row << " cell " << schema.FeatureNames()[cell];
    }
  }
}

TEST_P(VectorConsistencyTest, PrunedEnumerationIsLossless) {
  const auto [shape, num_platforms, seed] = GetParam();
  PlatformRegistry registry = PlatformRegistry::Synthetic(num_platforms);
  FeatureSchema schema(&registry);
  LogicalPlan plan = MakeShape(shape, 7, seed);
  if (std::pow(num_platforms, plan.num_operators()) > 200000) {
    GTEST_SKIP() << "brute force too large";
  }
  auto ctx = EnumerationContext::Make(&plan, &registry, &schema);
  ASSERT_TRUE(ctx.ok());
  LinearFeatureOracle oracle(schema, seed * 31 + 7);

  const PlanVectorEnumeration all = Enumerate(*ctx, Vectorize(*ctx));
  std::vector<float> costs(all.size());
  oracle.EstimateBatch(all.feature_pool().data(), all.size(), all.width(),
                       costs.data());
  float brute = std::numeric_limits<float>::infinity();
  for (float c : costs) brute = std::min(brute, c);

  PriorityEnumerator enumerator(&ctx.value(), &oracle);
  auto result = enumerator.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NEAR(result->predicted_runtime_s, brute, std::abs(brute) * 1e-5);
}

std::string ShapeParamName(
    const ::testing::TestParamInfo<std::tuple<Shape, int, uint64_t>>& info) {
  std::string name;
  switch (std::get<0>(info.param)) {
    case Shape::kPipeline: name = "Pipeline"; break;
    case Shape::kJoinTree: name = "JoinTree"; break;
    case Shape::kLoop: name = "Loop"; break;
  }
  return name + "_k" + std::to_string(std::get<1>(info.param)) + "_s" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, VectorConsistencyTest,
    ::testing::Combine(::testing::Values(Shape::kPipeline, Shape::kJoinTree,
                                         Shape::kLoop),
                       ::testing::Values(2, 3),
                       ::testing::Values(1u, 2u, 3u, 4u)),
    ShapeParamName);

class DefaultRegistryConsistencyTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DefaultRegistryConsistencyTest, LosslessWithVariantsAndConversions) {
  // The default registry has heterogeneous capabilities (Java-only
  // collection sources, Spark sampler variants) — pruning must stay
  // lossless there too.
  PlatformRegistry registry = PlatformRegistry::Default(3);
  FeatureSchema schema(&registry);
  LogicalPlan plan = MakeSyntheticLoopPlan(9, 1e6, 10, GetParam());
  auto ctx = EnumerationContext::Make(&plan, &registry, &schema);
  ASSERT_TRUE(ctx.ok());
  LinearFeatureOracle oracle(schema, GetParam() + 100);

  const PlanVectorEnumeration all = Enumerate(*ctx, Vectorize(*ctx));
  std::vector<float> costs(all.size());
  oracle.EstimateBatch(all.feature_pool().data(), all.size(), all.width(),
                       costs.data());
  float brute = std::numeric_limits<float>::infinity();
  for (float c : costs) brute = std::min(brute, c);

  PriorityEnumerator enumerator(&ctx.value(), &oracle);
  auto result = enumerator.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->predicted_runtime_s, brute, std::abs(brute) * 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DefaultRegistryConsistencyTest,
                         ::testing::Range(uint64_t{10}, uint64_t{18}));

}  // namespace
}  // namespace robopt
