#ifndef ROBOPT_TESTS_CORE_TEST_ORACLES_H_
#define ROBOPT_TESTS_CORE_TEST_ORACLES_H_

// Test shim: the deterministic additive oracle now lives in the library
// proper (benches use it too).
#include "core/linear_oracle.h"

#endif  // ROBOPT_TESTS_CORE_TEST_ORACLES_H_
