#include "core/priority_enumeration.h"

#include <gtest/gtest.h>

#include <limits>

#include "test_oracles.h"
#include "workloads/queries.h"
#include "workloads/synthetic.h"

namespace robopt {
namespace {

class PriorityEnumerationTest : public ::testing::Test {
 protected:
  PriorityEnumerationTest()
      : registry_(PlatformRegistry::Synthetic(3)),
        schema_(&registry_),
        oracle_(schema_, 99) {}

  EnumerationContext MakeCtx(const LogicalPlan& plan) {
    auto ctx = EnumerationContext::Make(&plan, &registry_, &schema_);
    EXPECT_TRUE(ctx.ok()) << ctx.status().ToString();
    return std::move(ctx).value();
  }

  /// Brute-force optimum over the complete search space.
  float BruteForceMin(const EnumerationContext& ctx) {
    const PlanVectorEnumeration all = Enumerate(ctx, Vectorize(ctx));
    std::vector<float> costs(all.size());
    oracle_.EstimateBatch(all.feature_pool().data(), all.size(), all.width(),
                          costs.data());
    float best = std::numeric_limits<float>::infinity();
    for (float c : costs) best = std::min(best, c);
    return best;
  }

  PlatformRegistry registry_;
  FeatureSchema schema_;
  LinearFeatureOracle oracle_;
};

TEST_F(PriorityEnumerationTest, FindsBruteForceOptimumOnPipeline) {
  LogicalPlan plan = MakeSyntheticPipeline(6, 1e5, 21);
  const EnumerationContext ctx = MakeCtx(plan);
  PriorityEnumerator enumerator(&ctx, &oracle_);
  auto result = enumerator.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NEAR(result->predicted_runtime_s, BruteForceMin(ctx),
              std::abs(BruteForceMin(ctx)) * 1e-5);
  EXPECT_TRUE(result->plan.Validate().ok());
}

TEST_F(PriorityEnumerationTest, FindsBruteForceOptimumOnJoinTree) {
  LogicalPlan plan = MakeSyntheticJoinTree(2, 1e5, 22);
  const EnumerationContext ctx = MakeCtx(plan);
  PriorityEnumerator enumerator(&ctx, &oracle_);
  auto result = enumerator.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NEAR(result->predicted_runtime_s, BruteForceMin(ctx),
              std::abs(BruteForceMin(ctx)) * 1e-5);
}

TEST_F(PriorityEnumerationTest, FindsBruteForceOptimumOnLoopPlan) {
  LogicalPlan plan = MakeSyntheticLoopPlan(9, 1e5, 10, 23);
  const EnumerationContext ctx = MakeCtx(plan);
  PriorityEnumerator enumerator(&ctx, &oracle_);
  auto result = enumerator.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NEAR(result->predicted_runtime_s, BruteForceMin(ctx),
              std::abs(BruteForceMin(ctx)) * 1e-5);
}

TEST_F(PriorityEnumerationTest, AllPriorityModesFindTheSameOptimum) {
  LogicalPlan plan = MakeSyntheticJoinTree(3, 1e5, 24);
  const EnumerationContext ctx = MakeCtx(plan);
  std::vector<float> minima;
  for (PriorityMode mode : {PriorityMode::kPaper, PriorityMode::kTopDown,
                            PriorityMode::kBottomUp}) {
    EnumeratorOptions options;
    options.priority = mode;
    PriorityEnumerator enumerator(&ctx, &oracle_, options);
    auto result = enumerator.Run();
    ASSERT_TRUE(result.ok());
    minima.push_back(result->predicted_runtime_s);
  }
  EXPECT_FLOAT_EQ(minima[0], minima[1]);
  EXPECT_FLOAT_EQ(minima[0], minima[2]);
}

TEST_F(PriorityEnumerationTest, ExhaustiveMatchesPrunedResult) {
  LogicalPlan plan = MakeSyntheticPipeline(5, 1e5, 25);
  const EnumerationContext ctx = MakeCtx(plan);
  EnumeratorOptions exhaustive;
  exhaustive.prune = PruneMode::kNone;
  PriorityEnumerator a(&ctx, &oracle_, exhaustive);
  PriorityEnumerator b(&ctx, &oracle_);
  auto ra = a.Run();
  auto rb = b.Run();
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_FLOAT_EQ(ra->predicted_runtime_s, rb->predicted_runtime_s);
  // Exhaustive creates exponentially more vectors.
  EXPECT_GT(ra->stats.vectors_created, rb->stats.vectors_created);
}

TEST_F(PriorityEnumerationTest, PruningKeepsVectorCountQuadratic) {
  // Table I's structure: with pruning the count grows ~linearly in ops and
  // ~cubically in platforms; without, it explodes.
  for (int k : {2, 3}) {
    PlatformRegistry registry = PlatformRegistry::Synthetic(k);
    FeatureSchema schema(&registry);
    LinearFeatureOracle oracle(schema, 1);
    LogicalPlan plan = MakeSyntheticPipeline(20, 1e5, 26);
    auto ctx = EnumerationContext::Make(&plan, &registry, &schema);
    ASSERT_TRUE(ctx.ok());
    PriorityEnumerator enumerator(&ctx.value(), &oracle);
    auto result = enumerator.Run();
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->stats.vectors_created,
              static_cast<size_t>(20 * k * k * k + 20 * k));
    EXPECT_LE(result->stats.final_vectors, static_cast<size_t>(k * k));
  }
}

TEST_F(PriorityEnumerationTest, ExhaustiveRespectsMaxVectors) {
  LogicalPlan plan = MakeSyntheticPipeline(20, 1e5, 27);
  const EnumerationContext ctx = MakeCtx(plan);
  EnumeratorOptions options;
  options.prune = PruneMode::kNone;
  options.max_vectors = 10000;
  PriorityEnumerator enumerator(&ctx, &oracle_, options);
  auto result = enumerator.Run();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(PriorityEnumerationTest, SwitchCapModeBoundsSwitches) {
  LogicalPlan plan = MakeSyntheticPipeline(8, 1e5, 28);
  const EnumerationContext ctx = MakeCtx(plan);
  EnumeratorOptions options;
  options.prune = PruneMode::kSwitchCap;
  options.beta = 2;
  PriorityEnumerator enumerator(&ctx, &oracle_, options);
  auto result = enumerator.Run();
  ASSERT_TRUE(result.ok());
  for (size_t i = 0; i < result->final_enumeration.size(); ++i) {
    EXPECT_LE(result->final_enumeration.switches(i), 2);
  }
  EXPECT_GT(result->final_enumeration.size(), 3u);
}

TEST_F(PriorityEnumerationTest, MaxRowsCapSubsamples) {
  LogicalPlan plan = MakeSyntheticPipeline(8, 1e5, 29);
  const EnumerationContext ctx = MakeCtx(plan);
  EnumeratorOptions options;
  options.prune = PruneMode::kSwitchCap;
  options.beta = 3;
  options.max_rows_per_enumeration = 16;
  PriorityEnumerator enumerator(&ctx, &oracle_, options);
  auto result = enumerator.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->final_enumeration.size(), 16u);
  EXPECT_GT(result->final_enumeration.size(), 0u);
}

TEST_F(PriorityEnumerationTest, StatsCountOracleTraffic) {
  LogicalPlan plan = MakeSyntheticPipeline(6, 1e5, 30);
  const EnumerationContext ctx = MakeCtx(plan);
  PriorityEnumerator enumerator(&ctx, &oracle_);
  auto result = enumerator.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.oracle_rows, 0u);
  EXPECT_GT(result->stats.oracle_batches, 0u);
  EXPECT_GT(result->stats.concat_steps, 0u);
  EXPECT_GT(result->stats.vectors_pruned, 0u);
}

TEST_F(PriorityEnumerationTest, ResultPlanMatchesPredictedCost) {
  LogicalPlan plan = MakeSyntheticJoinTree(2, 1e5, 31);
  const EnumerationContext ctx = MakeCtx(plan);
  PriorityEnumerator enumerator(&ctx, &oracle_);
  auto result = enumerator.Run();
  ASSERT_TRUE(result.ok());
  // Re-encode the returned plan and check the oracle agrees.
  std::vector<uint8_t> assignment(plan.num_operators(), 0);
  for (const LogicalOperator& op : plan.operators()) {
    assignment[op.id] =
        static_cast<uint8_t>(result->plan.alt_index(op.id) + 1);
  }
  const std::vector<float> features =
      EncodeAssignment(ctx, assignment.data());
  EXPECT_NEAR(oracle_.CostOf(features), result->predicted_runtime_s,
              std::abs(result->predicted_runtime_s) * 1e-4);
}

}  // namespace
}  // namespace robopt
