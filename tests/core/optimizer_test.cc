#include "core/optimizer.h"

#include <gtest/gtest.h>

#include "exec/virtual_cost.h"
#include "plan/cardinality.h"
#include "test_oracles.h"
#include "workloads/queries.h"

namespace robopt {
namespace {

class OptimizerTest : public ::testing::Test {
 protected:
  OptimizerTest()
      : registry_(PlatformRegistry::Default(3)),
        schema_(&registry_),
        oracle_(schema_, 5),
        optimizer_(&registry_, &schema_, &oracle_) {}

  PlatformRegistry registry_;
  FeatureSchema schema_;
  LinearFeatureOracle oracle_;
  RoboptOptimizer optimizer_;
};

TEST_F(OptimizerTest, ProducesValidExecutionPlan) {
  LogicalPlan plan = MakeWordCountPlan(1.0);
  auto result = optimizer_.Optimize(plan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->plan.Validate().ok());
  EXPECT_GT(result->latency_ms, 0.0);
  EXPECT_GT(result->stats.vectors_created, 0u);
}

TEST_F(OptimizerTest, SinglePlatformModeUsesExactlyOnePlatform) {
  LogicalPlan plan = MakeWordCountPlan(1.0);
  OptimizeOptions options;
  options.single_platform = true;
  auto result = optimizer_.Optimize(plan, nullptr, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->plan.Validate().ok());
  EXPECT_EQ(result->plan.PlatformsUsed().size(), 1u);
  EXPECT_EQ(result->plan.PlatformsUsed()[0], result->chosen_platform);
}

TEST_F(OptimizerTest, SinglePlatformModeSkipsIncapablePlatforms) {
  // K-means needs loops, which Postgres cannot run; the search must still
  // succeed on the engines.
  PlatformRegistry registry = PlatformRegistry::Default(4);
  FeatureSchema schema(&registry);
  LinearFeatureOracle oracle(schema, 6);
  RoboptOptimizer optimizer(&registry, &schema, &oracle);
  LogicalPlan plan = MakeKmeansPlan(10, 5, 3);
  OptimizeOptions options;
  options.single_platform = true;
  auto result = optimizer.Optimize(plan, nullptr, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NE(registry.platform(result->chosen_platform).name, "Postgres");
}

TEST_F(OptimizerTest, PlatformMaskRestrictsResult) {
  LogicalPlan plan = MakeWordCountPlan(1.0);
  OptimizeOptions options;
  options.allowed_platform_mask = 0b100;  // Flink only.
  auto result = optimizer_.Optimize(plan, nullptr, options);
  ASSERT_TRUE(result.ok());
  const auto used = result->plan.PlatformsUsed();
  ASSERT_EQ(used.size(), 1u);
  EXPECT_EQ(registry_.platform(used[0]).name, "Flink");
}

TEST_F(OptimizerTest, InjectedCardinalitiesChangeFeatures) {
  LogicalPlan plan = MakeWordCountPlan(1.0);
  CardinalityEstimator estimator(&plan);
  estimator.InjectOutputCardinality(1, 1.0);  // Tokenize emits ~nothing.
  const Cardinalities injected = estimator.Estimate();
  auto with_injection = optimizer_.Optimize(plan, &injected);
  ASSERT_TRUE(with_injection.ok());
  EXPECT_TRUE(with_injection->plan.Validate().ok());
}

TEST_F(OptimizerTest, OptimizeIsDeterministic) {
  LogicalPlan plan = MakeTpchQ3Plan(1.0);
  auto a = optimizer_.Optimize(plan);
  auto b = optimizer_.Optimize(plan);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_FLOAT_EQ(a->predicted_runtime_s, b->predicted_runtime_s);
  for (const LogicalOperator& op : plan.operators()) {
    EXPECT_EQ(a->plan.alt_index(op.id), b->plan.alt_index(op.id));
  }
}

TEST_F(OptimizerTest, InvalidPlanIsRejected) {
  LogicalPlan broken;
  broken.Add(LogicalOpKind::kMap, "floating");
  auto result = optimizer_.Optimize(broken);
  EXPECT_FALSE(result.ok());
}

TEST_F(OptimizerTest, MultiPlatformBeatsOrMatchesSinglePlatform) {
  // The unconstrained optimum can only be at least as good (w.r.t. the
  // oracle) as the best single-platform plan.
  LogicalPlan plan = MakeKmeansPlan(100, 10, 20);
  auto multi = optimizer_.Optimize(plan);
  OptimizeOptions options;
  options.single_platform = true;
  auto single = optimizer_.Optimize(plan, nullptr, options);
  ASSERT_TRUE(multi.ok() && single.ok());
  EXPECT_LE(multi->predicted_runtime_s,
            single->predicted_runtime_s * 1.0001f);
}

}  // namespace
}  // namespace robopt
