#include "core/plan_vector.h"

#include <gtest/gtest.h>

namespace robopt {
namespace {

TEST(PlanVectorEnumerationTest, AppendZeroGrowsPools) {
  PlanVectorEnumeration v(4, 3);
  EXPECT_EQ(v.size(), 0u);
  const size_t row = v.AppendZero();
  EXPECT_EQ(row, 0u);
  EXPECT_EQ(v.size(), 1u);
  for (size_t c = 0; c < 4; ++c) {
    EXPECT_FLOAT_EQ(v.features(0)[c], 0.0f);
  }
  for (size_t o = 0; o < 3; ++o) {
    EXPECT_EQ(v.assignment(0)[o], 0);
  }
  EXPECT_EQ(v.switches(0), 0);
}

TEST(PlanVectorEnumerationTest, RowsAreContiguous) {
  PlanVectorEnumeration v(5, 2);
  v.AppendZero();
  v.AppendZero();
  v.AppendZero();
  EXPECT_EQ(v.features(1), v.features(0) + 5);
  EXPECT_EQ(v.features(2), v.features(0) + 10);
  EXPECT_EQ(v.feature_pool().size(), 15u);
}

TEST(PlanVectorEnumerationTest, AppendCopyCopiesEverything) {
  PlanVectorEnumeration a(3, 2);
  const size_t row = a.AppendZero();
  a.features(row)[1] = 7.5f;
  a.assignment(row)[0] = 2;
  a.set_switches(row, 4);

  PlanVectorEnumeration b(3, 2);
  const size_t copied = b.AppendCopy(a, row);
  EXPECT_FLOAT_EQ(b.features(copied)[1], 7.5f);
  EXPECT_EQ(b.assignment(copied)[0], 2);
  EXPECT_EQ(b.switches(copied), 4);
}

TEST(PlanVectorEnumerationTest, ClearKeepsScopeDropsRows) {
  PlanVectorEnumeration v(3, 2);
  v.mutable_scope().set(1);
  v.set_boundary({1});
  v.AppendZero();
  v.AppendZero();
  v.Clear();
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.scope().test(1));
  EXPECT_EQ(v.boundary().size(), 1u);
}

TEST(PlanVectorEnumerationTest, ScopeAndBoundaryAccessors) {
  PlanVectorEnumeration v(2, 4);
  v.mutable_scope().set(0);
  v.mutable_scope().set(3);
  EXPECT_EQ(v.scope().count(), 2u);
  v.set_boundary({0, 3});
  EXPECT_EQ(v.boundary(), (std::vector<OperatorId>{0, 3}));
}

TEST(PlanVectorEnumerationTest, SwitchCounterRoundTrips) {
  PlanVectorEnumeration v(2, 2);
  const size_t row = v.AppendZero();
  v.set_switches(row, 999);
  EXPECT_EQ(v.switches(row), 999);
}

}  // namespace
}  // namespace robopt
