#include "exec/platform_health.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

namespace robopt {
namespace {

BreakerOptions Opts(int threshold, double cooldown_s) {
  BreakerOptions options;
  options.failure_threshold = threshold;
  options.cooldown_s = cooldown_s;
  return options;
}

TEST(PlatformHealthTest, ClosedBreakerAllowsAndCountsFailures) {
  PlatformHealth health(Opts(3, 10.0));
  EXPECT_TRUE(health.AllowRequest(0));
  EXPECT_EQ(health.state(0), BreakerState::kClosed);
  health.RecordFailure(0);
  health.RecordFailure(0);
  EXPECT_EQ(health.state(0), BreakerState::kClosed);
  EXPECT_EQ(health.snapshot(0).consecutive_failures, 2);
  EXPECT_TRUE(health.AllowRequest(0));
}

TEST(PlatformHealthTest, TripsAtConsecutiveFailureThreshold) {
  PlatformHealth health(Opts(3, 10.0));
  health.RecordFailure(1);
  health.RecordFailure(1);
  health.RecordFailure(1);
  EXPECT_EQ(health.state(1), BreakerState::kOpen);
  EXPECT_EQ(health.snapshot(1).trips, 1u);
  EXPECT_FALSE(health.AllowRequest(1));
  EXPECT_EQ(health.snapshot(1).rejected, 1u);
  // Other platforms are unaffected.
  EXPECT_EQ(health.state(0), BreakerState::kClosed);
  EXPECT_TRUE(health.AllowRequest(0));
  EXPECT_EQ(health.OpenMask(), 1ull << 1);
}

TEST(PlatformHealthTest, SuccessResetsConsecutiveCount) {
  PlatformHealth health(Opts(3, 10.0));
  health.RecordFailure(0);
  health.RecordFailure(0);
  health.RecordSuccess(0);  // Non-consecutive: the streak restarts.
  health.RecordFailure(0);
  health.RecordFailure(0);
  EXPECT_EQ(health.state(0), BreakerState::kClosed);
  health.RecordFailure(0);
  EXPECT_EQ(health.state(0), BreakerState::kOpen);
}

TEST(PlatformHealthTest, CooldownElapsesOnVirtualClockOnly) {
  PlatformHealth health(Opts(1, 30.0));
  health.RecordFailure(0);
  EXPECT_EQ(health.state(0), BreakerState::kOpen);
  // No wall time involved: without AdvanceClock the breaker stays open.
  EXPECT_FALSE(health.AllowRequest(0));
  health.AdvanceClock(29.9);
  EXPECT_FALSE(health.AllowRequest(0));
  EXPECT_EQ(health.state(0), BreakerState::kOpen);
  health.AdvanceClock(0.1);
  // Cooldown elapsed: the next request is admitted as the half-open probe.
  EXPECT_EQ(health.state(0), BreakerState::kHalfOpen);
  EXPECT_TRUE(health.AllowRequest(0));
  EXPECT_EQ(health.OpenMask(), 0u);  // Half-open is routable, not masked.
}

TEST(PlatformHealthTest, HalfOpenProbeSuccessRecovers) {
  PlatformHealth health(Opts(1, 5.0));
  health.RecordFailure(0);
  health.AdvanceClock(5.0);
  ASSERT_TRUE(health.AllowRequest(0));
  health.RecordSuccess(0);
  EXPECT_EQ(health.state(0), BreakerState::kClosed);
  EXPECT_EQ(health.snapshot(0).recoveries, 1u);
  EXPECT_EQ(health.total_recoveries(), 1u);
  // Fully healthy again: the failure streak starts from zero.
  EXPECT_EQ(health.snapshot(0).consecutive_failures, 0);
}

TEST(PlatformHealthTest, HalfOpenProbeFailureReopensWithFreshCooldown) {
  PlatformHealth health(Opts(1, 5.0));
  health.RecordFailure(0);
  health.AdvanceClock(5.0);
  ASSERT_EQ(health.state(0), BreakerState::kHalfOpen);
  health.RecordFailure(0);  // The probe failed.
  EXPECT_EQ(health.state(0), BreakerState::kOpen);
  EXPECT_EQ(health.snapshot(0).trips, 2u);
  // The cooldown restarted at the re-trip, not at the original trip.
  health.AdvanceClock(4.9);
  EXPECT_EQ(health.state(0), BreakerState::kOpen);
  health.AdvanceClock(0.1);
  EXPECT_EQ(health.state(0), BreakerState::kHalfOpen);
}

TEST(PlatformHealthTest, NonFiniteClockAdvancesAreIgnored) {
  PlatformHealth health(Opts(1, 10.0));
  health.RecordFailure(0);
  // An OOM reports +inf virtual seconds; it must not fast-forward the
  // cooldown (nor may NaN or negative deltas corrupt the clock).
  health.AdvanceClock(std::numeric_limits<double>::infinity());
  health.AdvanceClock(std::nan(""));
  health.AdvanceClock(-100.0);
  EXPECT_DOUBLE_EQ(health.now_s(), 0.0);
  EXPECT_EQ(health.state(0), BreakerState::kOpen);
}

TEST(PlatformHealthTest, TotalsAggregateAcrossPlatforms) {
  PlatformHealth health(Opts(1, 1.0));
  health.RecordFailure(0);
  health.RecordFailure(2);
  EXPECT_EQ(health.total_trips(), 2u);
  EXPECT_EQ(health.OpenMask(), (1ull << 0) | (1ull << 2));
  // The shared clock advances every breaker's cooldown: both platforms go
  // half-open (routable, so no longer masked), and only platform 0's probe
  // succeeds.
  health.AdvanceClock(1.0);
  EXPECT_EQ(health.OpenMask(), 0u);
  ASSERT_TRUE(health.AllowRequest(0));
  health.RecordSuccess(0);
  EXPECT_EQ(health.total_recoveries(), 1u);
  EXPECT_EQ(health.state(0), BreakerState::kClosed);
  EXPECT_EQ(health.state(2), BreakerState::kHalfOpen);
}

TEST(PlatformHealthTest, ConcurrentRecordersConvergeToOpen) {
  // Raced under TSan: many threads hammer one breaker; the registry must
  // stay consistent and end up open with every failure accounted.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100;
  PlatformHealth health(Opts(5, 1000.0));
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&health] {
      for (int i = 0; i < kPerThread; ++i) {
        (void)health.AllowRequest(0);
        health.RecordFailure(0);
        health.AdvanceClock(0.001);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(health.state(0), BreakerState::kOpen);
  EXPECT_GE(health.snapshot(0).trips, 1u);
  EXPECT_EQ(health.snapshot(0).consecutive_failures, kThreads * kPerThread);
}

}  // namespace
}  // namespace robopt
