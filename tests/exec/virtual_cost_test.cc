#include "exec/virtual_cost.h"

#include <gtest/gtest.h>

#include <cmath>

#include "plan/cardinality.h"
#include "workloads/queries.h"
#include "workloads/synthetic.h"

namespace robopt {
namespace {

ExecutionPlan AllOn(const LogicalPlan& plan, const PlatformRegistry& registry,
                    PlatformId platform) {
  ExecutionPlan exec(&plan, &registry);
  for (const LogicalOperator& op : plan.operators()) {
    const auto& alts = registry.AlternativesFor(op.kind);
    for (size_t a = 0; a < alts.size(); ++a) {
      if (alts[a].platform == platform && alts[a].variant == 0) {
        exec.Assign(op.id, static_cast<int>(a));
        break;
      }
    }
  }
  return exec;
}

class VirtualCostTest : public ::testing::Test {
 protected:
  VirtualCostTest()
      : registry_(PlatformRegistry::Default(3)), cost_(&registry_) {}

  PlatformRegistry registry_;
  VirtualCost cost_;
};

TEST_F(VirtualCostTest, SmallInputsFavorJavaOverSpark) {
  LogicalPlan plan = MakeWordCountPlan(0.00003);  // 30 KB.
  const Cardinalities cards = CardinalityEstimator(&plan).Estimate();
  const double java = cost_.PlanCost(AllOn(plan, registry_, 0), cards).total_s;
  const double spark =
      cost_.PlanCost(AllOn(plan, registry_, 1), cards).total_s;
  EXPECT_LT(java, spark);  // Spark pays seconds of job startup.
}

TEST_F(VirtualCostTest, LargeInputsFavorSparkOverJava) {
  LogicalPlan plan = MakeWordCountPlan(6.0);  // 6 GB.
  const Cardinalities cards = CardinalityEstimator(&plan).Estimate();
  const double java = cost_.PlanCost(AllOn(plan, registry_, 0), cards).total_s;
  const double spark =
      cost_.PlanCost(AllOn(plan, registry_, 1), cards).total_s;
  EXPECT_LT(spark, java);  // Parallelism wins at scale.
}

TEST_F(VirtualCostTest, JavaGoesOutOfMemoryAtTerabyteScale) {
  LogicalPlan plan = MakeWordCountPlan(1000.0);  // 1 TB.
  const Cardinalities cards = CardinalityEstimator(&plan).Estimate();
  const CostBreakdown java = cost_.PlanCost(AllOn(plan, registry_, 0), cards);
  EXPECT_TRUE(java.oom);
  EXPECT_TRUE(std::isinf(java.total_s));
  EXPECT_NE(java.failure.find("out-of-memory"), std::string::npos);
  const CostBreakdown spark = cost_.PlanCost(AllOn(plan, registry_, 1), cards);
  EXPECT_FALSE(spark.oom);
  EXPECT_TRUE(std::isfinite(spark.total_s));
}

TEST_F(VirtualCostTest, StartupChargedPerPlatformUsed) {
  LogicalPlan plan = MakeWordCountPlan(0.1);
  const Cardinalities cards = CardinalityEstimator(&plan).Estimate();
  ExecutionPlan mixed = AllOn(plan, registry_, 1);
  const double spark_only_startup = cost_.PlanCost(mixed, cards).startup_s;
  // Move the sink to Java: both startups are now paid.
  const OperatorId sink = plan.SinkIds()[0];
  const auto& alts = registry_.AlternativesFor(plan.op(sink).kind);
  for (size_t a = 0; a < alts.size(); ++a) {
    if (alts[a].platform == 0) mixed.Assign(sink, static_cast<int>(a));
  }
  const double both_startup = cost_.PlanCost(mixed, cards).startup_s;
  EXPECT_GT(both_startup, spark_only_startup);
  EXPECT_NEAR(both_startup - spark_only_startup,
              cost_.profile(0).startup_s, 1e-9);
}

TEST_F(VirtualCostTest, ConversionCostGrowsWithBytes) {
  ConversionInstance conv;
  conv.from_platform = 1;
  conv.to_platform = 0;
  conv.kind = ConversionKind::kCollect;
  const double small = cost_.ConversionCost(conv, 1e3, 16.0);
  const double large = cost_.ConversionCost(conv, 1e8, 16.0);
  // Fixed latencies dominate the small move; the large one is rate-bound.
  EXPECT_GT(large, small * 20);
}

TEST_F(VirtualCostTest, ExchangeCostsMoreThanCollectAtSameVolume) {
  ConversionInstance collect;
  collect.from_platform = 1;
  collect.to_platform = 0;
  collect.kind = ConversionKind::kCollect;
  ConversionInstance exchange;
  exchange.from_platform = 1;
  exchange.to_platform = 2;
  exchange.kind = ConversionKind::kExchange;
  // Per byte (ignoring fixed latencies), writing + re-reading shared
  // storage beats a single funnel.
  const double collect_rate = cost_.ConversionCost(collect, 2e8, 16.0) -
                              cost_.ConversionCost(collect, 1e8, 16.0);
  const double exchange_rate = cost_.ConversionCost(exchange, 2e8, 16.0) -
                               cost_.ConversionCost(exchange, 1e8, 16.0);
  EXPECT_GT(exchange_rate, collect_rate);
}

TEST_F(VirtualCostTest, ShuffleKindsAreSuperlinear) {
  LogicalOperator op;
  op.kind = LogicalOpKind::kReduceBy;
  op.udf = UdfComplexity::kLinear;
  op.tuple_bytes = 16.0;
  const auto& alts = registry_.AlternativesFor(op.kind);
  const ExecutionAlt* java = &alts[0];
  ASSERT_EQ(java->platform, 0);
  const double overhead = cost_.profile(0).stage_overhead_s;
  const double at_1m = cost_.OpCostRaw(op, *java, 1e6, 1e4, 0) - overhead;
  const double at_100m = cost_.OpCostRaw(op, *java, 1e8, 1e6, 0) - overhead;
  // 100x the input must cost more than 100x (n log n).
  EXPECT_GT(at_100m, at_1m * 100);
}

TEST_F(VirtualCostTest, MapIsLinearIsh) {
  LogicalOperator op;
  op.kind = LogicalOpKind::kMap;
  op.udf = UdfComplexity::kLinear;
  op.tuple_bytes = 16.0;
  const auto& alts = registry_.AlternativesFor(op.kind);
  const ExecutionAlt* java = &alts[0];
  const double at_1m = cost_.OpCostRaw(op, *java, 1e6, 1e6, 0);
  const double at_10m = cost_.OpCostRaw(op, *java, 1e7, 1e7, 0);
  EXPECT_NEAR(at_10m / at_1m, 10.0, 1.5);
}

TEST_F(VirtualCostTest, UdfComplexityScalesCost) {
  LogicalOperator linear;
  linear.kind = LogicalOpKind::kMap;
  linear.udf = UdfComplexity::kLinear;
  LogicalOperator quadratic = linear;
  quadratic.udf = UdfComplexity::kQuadratic;
  const ExecutionAlt& java =
      registry_.AlternativesFor(LogicalOpKind::kMap)[0];
  EXPECT_GT(cost_.OpCostRaw(quadratic, java, 1e7, 1e7, 0),
            cost_.OpCostRaw(linear, java, 1e7, 1e7, 0) * 2);
}

TEST_F(VirtualCostTest, StatefulSamplerOnlyShufflesOnce) {
  LogicalOperator op;
  op.kind = LogicalOpKind::kSample;
  op.tuple_bytes = 16.0;
  const auto& alts = registry_.AlternativesFor(op.kind);
  const ExecutionAlt* stateful = nullptr;
  const ExecutionAlt* cached = nullptr;
  for (const auto& alt : alts) {
    if (alt.platform != 1) continue;
    (alt.variant == 0 ? stateful : cached) = &alt;
  }
  ASSERT_NE(stateful, nullptr);
  ASSERT_NE(cached, nullptr);
  // Steady-state iterations: the stateful sampler is much cheaper.
  const double stateful_steady = cost_.OpCostRaw(op, *stateful, 1e7, 100, 1);
  const double cached_steady = cost_.OpCostRaw(op, *cached, 1e7, 100, 1);
  EXPECT_LT(stateful_steady * 3, cached_steady);
  // And the first iteration pays the partition shuffle on both.
  EXPECT_GT(cost_.OpCostRaw(op, *stateful, 1e7, 100, 0), stateful_steady * 3);
}

TEST_F(VirtualCostTest, LoopMultipliesBodyCost) {
  LogicalPlan few = MakeKmeansPlan(10.0, 10, 2);
  LogicalPlan many = MakeKmeansPlan(10.0, 10, 50);
  const Cardinalities cards_few = CardinalityEstimator(&few).Estimate();
  const Cardinalities cards_many = CardinalityEstimator(&many).Estimate();
  const double cost_few =
      cost_.PlanCost(AllOn(few, registry_, 0), cards_few).total_s;
  const double cost_many =
      cost_.PlanCost(AllOn(many, registry_, 0), cards_many).total_s;
  EXPECT_GT(cost_many, cost_few * 5);
}

TEST_F(VirtualCostTest, NoiseIsDeterministicPerSeed) {
  VirtualCostOptions options;
  options.noise_sigma = 0.2;
  options.noise_seed = 99;
  VirtualCost noisy1(&registry_, options);
  VirtualCost noisy2(&registry_, options);
  LogicalPlan plan = MakeWordCountPlan(0.1);
  const Cardinalities cards = CardinalityEstimator(&plan).Estimate();
  const ExecutionPlan exec = AllOn(plan, registry_, 1);
  EXPECT_DOUBLE_EQ(noisy1.PlanCost(exec, cards).total_s,
                   noisy2.PlanCost(exec, cards).total_s);
  // And differs from the noiseless clock.
  EXPECT_NE(noisy1.PlanCost(exec, cards).total_s,
            cost_.PlanCost(exec, cards).total_s);
}

TEST_F(VirtualCostTest, PerOpSecondsSumToTotal) {
  LogicalPlan plan = MakeTpchQ1Plan(1.0);
  const Cardinalities cards = CardinalityEstimator(&plan).Estimate();
  const CostBreakdown breakdown =
      cost_.PlanCost(AllOn(plan, registry_, 2), cards);
  double sum = breakdown.startup_s + breakdown.conversion_s;
  for (double s : breakdown.op_seconds) sum += s;
  EXPECT_NEAR(sum, breakdown.total_s, 1e-9);
}

}  // namespace
}  // namespace robopt
