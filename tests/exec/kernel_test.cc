#include "exec/kernel.h"

#include <gtest/gtest.h>

#include <set>

namespace robopt {
namespace {

Dataset KeyedRows(std::vector<std::pair<int64_t, double>> rows) {
  std::vector<Record> records;
  for (auto [key, num] : rows) {
    Record r;
    r.key = key;
    r.num = num;
    records.push_back(std::move(r));
  }
  return Dataset::Of(std::move(records));
}

class KernelTest : public ::testing::Test {
 protected:
  StatusOr<Dataset> Run(LogicalOpKind kind, std::vector<const Dataset*> inputs,
                        double selectivity = 1.0, double param = 0.0) {
    op_.kind = kind;
    op_.name = "test";
    op_.selectivity = selectivity;
    op_.param = param;
    KernelContext ctx;
    ctx.op = &op_;
    ctx.inputs = std::move(inputs);
    ctx.rng = &rng_;
    return DefaultKernel(ctx);
  }

  LogicalOperator op_;
  Rng rng_{42};
};

TEST_F(KernelTest, FilterKeepsApproximatelySelectivity) {
  std::vector<Record> rows(10000);
  for (size_t i = 0; i < rows.size(); ++i) rows[i].key = i;
  Dataset in = Dataset::Of(std::move(rows));
  auto out = Run(LogicalOpKind::kFilter, {&in}, 0.3);
  ASSERT_TRUE(out.ok());
  EXPECT_NEAR(static_cast<double>(out->rows.size()) / 10000.0, 0.3, 0.05);
  EXPECT_NEAR(out->virtual_cardinality, out->rows.size(), 1e-9);
}

TEST_F(KernelTest, FilterIsDeterministic) {
  std::vector<Record> rows(1000);
  for (size_t i = 0; i < rows.size(); ++i) rows[i].key = i;
  Dataset in = Dataset::Of(std::move(rows));
  auto a = Run(LogicalOpKind::kFilter, {&in}, 0.5);
  auto b = Run(LogicalOpKind::kFilter, {&in}, 0.5);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->rows.size(), b->rows.size());
}

TEST_F(KernelTest, MapPassesThrough) {
  Dataset in = KeyedRows({{1, 1.0}, {2, 2.0}});
  auto out = Run(LogicalOpKind::kMap, {&in});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->rows.size(), 2u);
}

TEST_F(KernelTest, ReduceBySumsPerKey) {
  Dataset in = KeyedRows({{1, 1.0}, {2, 5.0}, {1, 3.0}, {2, 2.0}, {3, 7.0}});
  auto out = Run(LogicalOpKind::kReduceBy, {&in});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->rows.size(), 3u);
  // Sorted by key.
  EXPECT_EQ(out->rows[0].key, 1);
  EXPECT_DOUBLE_EQ(out->rows[0].num, 4.0);
  EXPECT_DOUBLE_EQ(out->rows[1].num, 7.0);
  EXPECT_DOUBLE_EQ(out->rows[2].num, 7.0);
}

TEST_F(KernelTest, JoinMatchesKeys) {
  Dataset left = KeyedRows({{1, 10.0}, {2, 20.0}, {3, 30.0}});
  Dataset right = KeyedRows({{2, 1.0}, {3, 2.0}, {4, 3.0}});
  auto out = Run(LogicalOpKind::kJoin, {&left, &right});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->rows.size(), 2u);
  std::set<int64_t> keys;
  for (const Record& r : out->rows) keys.insert(r.key);
  EXPECT_EQ(keys, (std::set<int64_t>{2, 3}));
}

TEST_F(KernelTest, JoinHandlesDuplicateBuildKeys) {
  Dataset left = KeyedRows({{1, 1.0}, {1, 2.0}});
  Dataset right = KeyedRows({{1, 10.0}, {1, 20.0}, {1, 30.0}});
  auto out = Run(LogicalOpKind::kJoin, {&left, &right});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->rows.size(), 6u);  // Full 2x3 match.
}

TEST_F(KernelTest, SortOrdersByKey) {
  Dataset in = KeyedRows({{3, 0.0}, {1, 0.0}, {2, 0.0}});
  auto out = Run(LogicalOpKind::kSort, {&in});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->rows[0].key, 1);
  EXPECT_EQ(out->rows[1].key, 2);
  EXPECT_EQ(out->rows[2].key, 3);
}

TEST_F(KernelTest, DistinctDropsDuplicates) {
  Dataset in = KeyedRows({{1, 0.0}, {1, 0.0}, {2, 0.0}});
  auto out = Run(LogicalOpKind::kDistinct, {&in});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->rows.size(), 2u);
}

TEST_F(KernelTest, CountUsesVirtualCardinality) {
  Dataset in = KeyedRows({{1, 0.0}, {2, 0.0}});
  in.virtual_cardinality = 5e6;  // Physical sample of a 5M-row dataset.
  auto out = Run(LogicalOpKind::kCount, {&in});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->rows.size(), 1u);
  EXPECT_DOUBLE_EQ(out->rows[0].num, 5e6);
  EXPECT_DOUBLE_EQ(out->virtual_cardinality, 1.0);
}

TEST_F(KernelTest, GlobalReduceSumsNumAndVectors) {
  Record a;
  a.num = 2.0;
  a.vec = {1.0, 2.0};
  Record b;
  b.num = 3.0;
  b.vec = {10.0, 20.0};
  Dataset in = Dataset::Of({a, b});
  auto out = Run(LogicalOpKind::kGlobalReduce, {&in});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->rows.size(), 1u);
  EXPECT_DOUBLE_EQ(out->rows[0].num, 5.0);
  ASSERT_EQ(out->rows[0].vec.size(), 2u);
  EXPECT_DOUBLE_EQ(out->rows[0].vec[0], 11.0);
}

TEST_F(KernelTest, SampleTakesParamRows) {
  std::vector<Record> rows(1000);
  Dataset in = Dataset::Of(std::move(rows));
  auto out = Run(LogicalOpKind::kSample, {&in}, 1.0, /*param=*/32);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->rows.size(), 32u);
  EXPECT_DOUBLE_EQ(out->virtual_cardinality, 32.0);
}

TEST_F(KernelTest, SampleFallsBackToSelectivity) {
  std::vector<Record> rows(1000);
  Dataset in = Dataset::Of(std::move(rows));
  auto out = Run(LogicalOpKind::kSample, {&in}, 0.1);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->rows.size(), 100u);
}

TEST_F(KernelTest, UnionConcatenates) {
  Dataset a = KeyedRows({{1, 0.0}});
  Dataset b = KeyedRows({{2, 0.0}, {3, 0.0}});
  auto out = Run(LogicalOpKind::kUnion, {&a, &b});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->rows.size(), 3u);
  EXPECT_DOUBLE_EQ(out->virtual_cardinality, 3.0);
}

TEST_F(KernelTest, FlatMapFansOutVirtually) {
  std::vector<Record> rows(100);
  Dataset in = Dataset::Of(std::move(rows));
  auto out = Run(LogicalOpKind::kFlatMap, {&in}, 3.0);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->rows.size(), 300u);
  EXPECT_DOUBLE_EQ(out->virtual_cardinality, 300.0);
}

TEST_F(KernelTest, CartesianCapsPhysicalButTracksVirtual) {
  std::vector<Record> big(2000);
  std::vector<Record> big2(2000);
  Dataset a = Dataset::Of(std::move(big));
  Dataset b = Dataset::Of(std::move(big2));
  auto out = Run(LogicalOpKind::kCartesian, {&a, &b});
  ASSERT_TRUE(out.ok());
  EXPECT_LE(out->rows.size(), 1u << 20);
  EXPECT_DOUBLE_EQ(out->virtual_cardinality, 4e6);
}

TEST_F(KernelTest, SourceWithoutCatalogFails) {
  auto out = Run(LogicalOpKind::kTextFileSource, {});
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(KernelTest, ScaleVirtualHelper) {
  EXPECT_DOUBLE_EQ(ScaleVirtual(1e6, 100, 50, 0.9), 5e5);
  EXPECT_DOUBLE_EQ(ScaleVirtual(1e6, 0, 0, 0.25), 2.5e5);  // Fallback.
}

TEST(KernelRegistryTest, RegisterAndFind) {
  KernelRegistry registry;
  registry.Register("noop", [](const KernelContext&) -> StatusOr<Dataset> {
    return Dataset{};
  });
  EXPECT_NE(registry.Find("noop"), nullptr);
  EXPECT_EQ(registry.Find("missing"), nullptr);
}

}  // namespace
}  // namespace robopt
