#include "exec/record.h"

#include <gtest/gtest.h>

namespace robopt {
namespace {

TEST(DatasetTest, OfSetsVirtualCardinalityToPhysical) {
  std::vector<Record> rows(42);
  Dataset dataset = Dataset::Of(std::move(rows), 24.0);
  EXPECT_EQ(dataset.rows.size(), 42u);
  EXPECT_DOUBLE_EQ(dataset.virtual_cardinality, 42.0);
  EXPECT_DOUBLE_EQ(dataset.tuple_bytes, 24.0);
  EXPECT_DOUBLE_EQ(dataset.Scale(), 1.0);
}

TEST(DatasetTest, ScaleReflectsCappedSample) {
  std::vector<Record> rows(100);
  Dataset dataset = Dataset::Of(std::move(rows));
  dataset.virtual_cardinality = 1e6;
  EXPECT_DOUBLE_EQ(dataset.Scale(), 1e4);
}

TEST(DatasetTest, EmptyDatasetScaleIsOne) {
  Dataset dataset;
  dataset.virtual_cardinality = 1e9;
  EXPECT_DOUBLE_EQ(dataset.Scale(), 1.0);
}

TEST(DataCatalogTest, BindAndLookup) {
  DataCatalog catalog;
  std::vector<Record> rows(3);
  catalog.Bind(7, Dataset::Of(std::move(rows)));
  ASSERT_EQ(catalog.by_op.count(7), 1u);
  EXPECT_EQ(catalog.by_op.at(7).rows.size(), 3u);
  EXPECT_EQ(catalog.by_op.count(8), 0u);
}

TEST(DataCatalogTest, RebindOverwrites) {
  DataCatalog catalog;
  catalog.Bind(1, Dataset::Of(std::vector<Record>(2)));
  catalog.Bind(1, Dataset::Of(std::vector<Record>(5)));
  EXPECT_EQ(catalog.by_op.at(1).rows.size(), 5u);
}

}  // namespace
}  // namespace robopt
