#include "exec/perf_profile.h"

#include <gtest/gtest.h>

namespace robopt {
namespace {

TEST(PerfProfileTest, BuiltinNamesResolve) {
  for (const char* name : {"Java", "Spark", "Flink", "Postgres", "GraphX"}) {
    const PlatformProfile profile = PlatformProfile::ForName(name);
    EXPECT_EQ(profile.name, name);
    EXPECT_GT(profile.tuple_cpu_ns, 0.0);
    EXPECT_GT(profile.startup_s, 0.0);
    EXPECT_GT(profile.mem_capacity_bytes, 0.0);
  }
}

TEST(PerfProfileTest, JavaIsLowLatencySingleThread) {
  const PlatformProfile java = PlatformProfile::ForName("Java");
  const PlatformProfile spark = PlatformProfile::ForName("Spark");
  EXPECT_LT(java.startup_s, spark.startup_s / 10);
  EXPECT_DOUBLE_EQ(java.parallelism, 1.0);
  EXPECT_GT(spark.parallelism, 10.0);
  EXPECT_LT(java.mem_capacity_bytes, spark.mem_capacity_bytes);
}

TEST(PerfProfileTest, FlinkSitsBetweenJavaAndSparkOnStartup) {
  const PlatformProfile java = PlatformProfile::ForName("Java");
  const PlatformProfile spark = PlatformProfile::ForName("Spark");
  const PlatformProfile flink = PlatformProfile::ForName("Flink");
  EXPECT_GT(flink.startup_s, java.startup_s);
  EXPECT_LT(flink.startup_s, spark.startup_s);
  // Flink's native iterations beat Spark's per-iteration scheduling.
  EXPECT_LT(flink.loop_overhead_s, spark.loop_overhead_s);
}

TEST(PerfProfileTest, PostgresIsRelationalFlavored) {
  const PlatformProfile pg = PlatformProfile::ForName("Postgres");
  // Relational operators cheap, opaque UDFs expensive.
  EXPECT_LT(pg.KindMultiplier(LogicalOpKind::kFilter), 0.5);
  EXPECT_GT(pg.KindMultiplier(LogicalOpKind::kMap), 1.5);
  // Iteration hurts and data export is slow.
  EXPECT_GT(pg.loop_overhead_s, 0.1);
  EXPECT_GT(pg.move_ns_per_byte,
            PlatformProfile::ForName("Java").move_ns_per_byte);
}

TEST(PerfProfileTest, EffectiveParallelismSaturates) {
  const PlatformProfile spark = PlatformProfile::ForName("Spark");
  EXPECT_DOUBLE_EQ(spark.EffectiveParallelism(100), 1.0);  // Tiny input.
  EXPECT_LT(spark.EffectiveParallelism(1e5), spark.parallelism);
  EXPECT_DOUBLE_EQ(spark.EffectiveParallelism(1e9), spark.parallelism);
}

TEST(PerfProfileTest, SyntheticProfilesAreDeterministicAndDistinct) {
  const PlatformProfile p1a = PlatformProfile::ForName("P1");
  const PlatformProfile p1b = PlatformProfile::ForName("P1");
  const PlatformProfile p2 = PlatformProfile::ForName("P2");
  EXPECT_DOUBLE_EQ(p1a.startup_s, p1b.startup_s);
  EXPECT_NE(p1a.tuple_cpu_ns, p2.tuple_cpu_ns);
}

TEST(PerfProfileTest, SyntheticP0IsSingleNodeFlavored) {
  const PlatformProfile p0 = PlatformProfile::ForName("P0");
  EXPECT_DOUBLE_EQ(p0.parallelism, 1.0);
  EXPECT_LT(p0.startup_s, 0.1);
}

TEST(PerfProfileTest, KindMultiplierDefaultsToOne) {
  PlatformProfile profile;
  for (int k = 0; k < kNumLogicalOpKinds; ++k) {
    EXPECT_DOUBLE_EQ(profile.KindMultiplier(static_cast<LogicalOpKind>(k)),
                     1.0);
  }
  profile.SetKindMultiplier(LogicalOpKind::kJoin, 0.5);
  EXPECT_DOUBLE_EQ(profile.KindMultiplier(LogicalOpKind::kJoin), 0.5);
  EXPECT_DOUBLE_EQ(profile.KindMultiplier(LogicalOpKind::kMap), 1.0);
}

}  // namespace
}  // namespace robopt
