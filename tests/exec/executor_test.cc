#include "exec/executor.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workloads/datagen.h"
#include "workloads/queries.h"

namespace robopt {
namespace {

ExecutionPlan AllOn(const LogicalPlan& plan, const PlatformRegistry& registry,
                    PlatformId platform) {
  ExecutionPlan exec(&plan, &registry);
  for (const LogicalOperator& op : plan.operators()) {
    const auto& alts = registry.AlternativesFor(op.kind);
    for (size_t a = 0; a < alts.size(); ++a) {
      if (alts[a].platform == platform && alts[a].variant == 0) {
        exec.Assign(op.id, static_cast<int>(a));
        break;
      }
    }
  }
  return exec;
}

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest()
      : registry_(PlatformRegistry::Default(3)),
        cost_(&registry_),
        executor_(&registry_, &cost_) {
    RegisterWorkloadKernels();
  }

  PlatformRegistry registry_;
  VirtualCost cost_;
  Executor executor_;
};

TEST_F(ExecutorTest, WordCountCountsRealWords) {
  LogicalPlan plan = MakeWordCountPlan(1e-6);  // Tiny.
  DataCatalog catalog;
  std::vector<Record> lines(2);
  lines[0].text = "a b a";
  lines[1].text = "b a c";
  catalog.Bind(plan.SourceIds()[0], Dataset::Of(std::move(lines)));

  auto result = executor_.Execute(AllOn(plan, registry_, 0), catalog);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Three distinct words with counts 3 (a), 2 (b), 1 (c).
  std::multiset<double> counts;
  for (const Record& r : result->output.rows) counts.insert(r.num);
  EXPECT_EQ(counts, (std::multiset<double>{1.0, 2.0, 3.0}));
}

TEST_F(ExecutorTest, ObservedCardinalitiesAreRecorded) {
  LogicalPlan plan = MakeWordCountPlan(1e-6);
  DataCatalog catalog;
  catalog.Bind(plan.SourceIds()[0], GenerateTextLines(100, 100, 5));
  auto result = executor_.Execute(AllOn(plan, registry_, 0), catalog);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->observed.output[0], 100.0);
  EXPECT_GT(result->observed.output[1], 100.0);  // Tokenize fans out.
  EXPECT_GT(result->cost.total_s, 0.0);
}

TEST_F(ExecutorTest, VirtualCardinalityScalesBeyondPhysicalSample) {
  LogicalPlan plan = MakeWordCountPlan(1e-6);
  DataCatalog catalog;
  // 1e6 virtual rows, 1000 physical.
  catalog.Bind(plan.SourceIds()[0], GenerateTextLines(1e6, 1000, 5));
  auto result = executor_.Execute(AllOn(plan, registry_, 0), catalog);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->observed.output[0], 1e6);
  // The tokenizer's virtual output scales with the virtual input.
  EXPECT_GT(result->observed.output[1], 1e6);
}

TEST_F(ExecutorTest, SimulateAgreesWithExecuteOnObservedCards) {
  LogicalPlan plan = MakeWordCountPlan(1e-6);
  DataCatalog catalog;
  catalog.Bind(plan.SourceIds()[0], GenerateTextLines(1000, 1000, 5));
  const ExecutionPlan exec = AllOn(plan, registry_, 1);
  auto result = executor_.Execute(exec, catalog);
  ASSERT_TRUE(result.ok());
  const CostBreakdown simulated = executor_.Simulate(exec, result->observed);
  EXPECT_DOUBLE_EQ(simulated.total_s, result->cost.total_s);
}

TEST_F(ExecutorTest, KmeansLoopConvergesToClusterCenters) {
  LogicalPlan plan = MakeKmeansPlan(1e-4, 3, 10);
  DataCatalog catalog;
  catalog.Bind(plan.SourceIds()[0],
               GeneratePoints(300, 300, /*seed=*/11, /*dim=*/2,
                              /*clusters=*/3));
  // Find the centroid collection source.
  OperatorId init = kInvalidOperatorId;
  for (const LogicalOperator& op : plan.operators()) {
    if (op.kind == LogicalOpKind::kCollectionSource) init = op.id;
  }
  ASSERT_NE(init, kInvalidOperatorId);
  catalog.Bind(init, MakeCentroids(3, 2, /*seed=*/12));

  auto result = executor_.Execute(AllOn(plan, registry_, 0), catalog);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Output = final centroids; they must be finite and distinct.
  ASSERT_GE(result->output.rows.size(), 1u);
  ASSERT_LE(result->output.rows.size(), 3u);
  for (const Record& centroid : result->output.rows) {
    ASSERT_EQ(centroid.vec.size(), 2u);
    EXPECT_TRUE(std::isfinite(centroid.vec[0]));
  }
}

TEST_F(ExecutorTest, SgdLoopReducesLoss) {
  LogicalPlan plan = MakeSgdPlan(1e-9, /*batch=*/32, /*iterations=*/50);
  DataCatalog catalog;
  Dataset samples = GenerateLabeledSamples(500, 500, 21, /*dim=*/3);
  catalog.Bind(plan.SourceIds()[0], samples);
  OperatorId init = kInvalidOperatorId;
  for (const LogicalOperator& op : plan.operators()) {
    if (op.kind == LogicalOpKind::kCollectionSource) init = op.id;
  }
  ASSERT_NE(init, kInvalidOperatorId);
  catalog.Bind(init, MakeInitialWeights(3));

  auto result = executor_.Execute(AllOn(plan, registry_, 0), catalog);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->output.rows.size(), 1u);
  const std::vector<double>& weights = result->output.rows[0].vec;
  ASSERT_EQ(weights.size(), 3u);
  // Loss with learned weights must beat the zero-weight baseline.
  double loss_learned = 0.0;
  double loss_zero = 0.0;
  for (const Record& sample : samples.rows) {
    double prediction = 0.0;
    for (size_t d = 0; d < 3; ++d) prediction += weights[d] * sample.vec[d];
    loss_learned += (prediction - sample.num) * (prediction - sample.num);
    loss_zero += sample.num * sample.num;
  }
  EXPECT_LT(loss_learned, loss_zero * 0.5);
}

TEST_F(ExecutorTest, MissingSourceBindingFails) {
  LogicalPlan plan = MakeWordCountPlan(1e-6);
  DataCatalog empty;
  auto result = executor_.Execute(AllOn(plan, registry_, 0), empty);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ExecutorTest, UnassignedPlanFails) {
  LogicalPlan plan = MakeWordCountPlan(1e-6);
  ExecutionPlan exec(&plan, &registry_);
  DataCatalog catalog;
  catalog.Bind(plan.SourceIds()[0], GenerateTextLines(10, 10, 5));
  auto result = executor_.Execute(exec, catalog);
  EXPECT_FALSE(result.ok());
}

TEST_F(ExecutorTest, OomPlanReportsInfiniteCostButStillRuns) {
  LogicalPlan plan = MakeWordCountPlan(1000.0);  // 1 TB on Java.
  DataCatalog catalog;
  catalog.Bind(plan.SourceIds()[0], GenerateTextLines(1000.0 * 1e9 / 80, 500,
                                                      5));
  auto result = executor_.Execute(AllOn(plan, registry_, 0), catalog);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->cost.oom);
  EXPECT_TRUE(std::isinf(result->cost.total_s));
}

TEST_F(ExecutorTest, JoinQueryProducesGroupedOutput) {
  LogicalPlan plan = MakeJoinPlan(1e-6);
  DataCatalog catalog;
  const auto sources = plan.SourceIds();
  ASSERT_EQ(sources.size(), 2u);
  catalog.Bind(sources[0], GenerateTransactions(5000, 5000, 31, 200));
  catalog.Bind(sources[1], GenerateCustomers(200, 200, 32));
  auto result = executor_.Execute(AllOn(plan, registry_, 0), catalog);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->output.rows.size(), 0u);
  // Each output key appears once (ReduceBy grouped it).
  std::set<int64_t> keys;
  for (const Record& r : result->output.rows) {
    EXPECT_TRUE(keys.insert(r.key).second);
  }
}

}  // namespace
}  // namespace robopt
