// Failure-injection tests for the executor: malformed plans, missing
// kernels, unsupported constructs.

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "workloads/datagen.h"
#include "workloads/queries.h"

namespace robopt {
namespace {

class ExecutorErrorsTest : public ::testing::Test {
 protected:
  ExecutorErrorsTest()
      : registry_(PlatformRegistry::Default(2)),
        cost_(&registry_),
        executor_(&registry_, &cost_) {
    RegisterWorkloadKernels();
  }

  ExecutionPlan AllOnJava(const LogicalPlan& plan) {
    ExecutionPlan exec(&plan, &registry_);
    for (const LogicalOperator& op : plan.operators()) {
      const auto& alts = registry_.AlternativesFor(op.kind);
      for (size_t a = 0; a < alts.size(); ++a) {
        if (alts[a].platform == 0 && alts[a].variant == 0) {
          exec.Assign(op.id, static_cast<int>(a));
        }
      }
    }
    return exec;
  }

  PlatformRegistry registry_;
  VirtualCost cost_;
  Executor executor_;
};

TEST_F(ExecutorErrorsTest, UnknownNamedKernelFails) {
  LogicalPlan plan;
  LogicalOperator src;
  src.kind = LogicalOpKind::kTextFileSource;
  src.source_cardinality = 10;
  const OperatorId s = plan.Add(std::move(src));
  LogicalOperator map;
  map.kind = LogicalOpKind::kMap;
  map.name = "mystery";
  map.kernel = "no_such_kernel";
  const OperatorId m = plan.Add(std::move(map));
  plan.Connect(s, m);
  const OperatorId sink = plan.Add(LogicalOpKind::kCollectionSink, "sink");
  plan.Connect(m, sink);

  DataCatalog catalog;
  catalog.Bind(s, GenerateTextLines(10, 10, 1));
  auto result = executor_.Execute(AllOnJava(plan), catalog);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(ExecutorErrorsTest, NestedLoopsAreRejected) {
  LogicalPlan plan;
  LogicalOperator init;
  init.kind = LogicalOpKind::kCollectionSource;
  init.source_cardinality = 5;
  const OperatorId i = plan.Add(std::move(init));
  LogicalOperator outer;
  outer.kind = LogicalOpKind::kLoopBegin;
  outer.loop_iterations = 2;
  const OperatorId ob = plan.Add(std::move(outer));
  plan.Connect(i, ob);
  LogicalOperator inner;
  inner.kind = LogicalOpKind::kLoopBegin;
  inner.loop_iterations = 2;
  const OperatorId ib = plan.Add(std::move(inner));
  plan.Connect(ob, ib);
  const OperatorId body = plan.Add(LogicalOpKind::kMap, "body");
  plan.Connect(ib, body);
  LogicalOperator inner_end;
  inner_end.kind = LogicalOpKind::kLoopEnd;
  inner_end.loop_begin = ib;
  const OperatorId ie = plan.Add(std::move(inner_end));
  plan.Connect(body, ie);
  LogicalOperator outer_end;
  outer_end.kind = LogicalOpKind::kLoopEnd;
  outer_end.loop_begin = ob;
  const OperatorId oe = plan.Add(std::move(outer_end));
  plan.Connect(ie, oe);
  const OperatorId sink = plan.Add(LogicalOpKind::kCollectionSink, "sink");
  plan.Connect(oe, sink);
  ASSERT_TRUE(plan.Validate().ok());

  DataCatalog catalog;
  catalog.Bind(i, MakeCentroids(5, 2, 1));
  auto result = executor_.Execute(AllOnJava(plan), catalog);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
}

TEST_F(ExecutorErrorsTest, InvalidLogicalPlanIsRejectedBeforeRunning) {
  LogicalPlan plan;
  plan.Add(LogicalOpKind::kMap, "orphan");
  ExecutionPlan exec(&plan, &registry_);
  DataCatalog catalog;
  auto result = executor_.Execute(exec, catalog);
  EXPECT_FALSE(result.ok());
}

TEST_F(ExecutorErrorsTest, CatalogCardinalityDefaultsToPhysical) {
  LogicalPlan plan = MakeWordCountPlan(1e-6);
  DataCatalog catalog;
  Dataset lines = GenerateTextLines(50, 50, 2);
  lines.virtual_cardinality = 0;  // Unset: executor falls back to physical.
  catalog.Bind(plan.SourceIds()[0], lines);
  auto result = executor_.Execute(AllOnJava(plan), catalog);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_DOUBLE_EQ(result->observed.output[0], 50.0);
}

TEST_F(ExecutorErrorsTest, LoopWithoutInitialInputFails) {
  LogicalPlan plan;
  LogicalOperator src;
  src.kind = LogicalOpKind::kTextFileSource;
  src.source_cardinality = 10;
  const OperatorId s = plan.Add(std::move(src));
  LogicalOperator begin;
  begin.kind = LogicalOpKind::kLoopBegin;
  begin.loop_iterations = 3;
  const OperatorId b = plan.Add(std::move(begin));
  plan.Connect(s, b);  // Has an input, so Validate passes...
  const OperatorId body = plan.Add(LogicalOpKind::kMap, "body");
  plan.Connect(b, body);
  LogicalOperator end;
  end.kind = LogicalOpKind::kLoopEnd;
  end.loop_begin = b;
  const OperatorId e = plan.Add(std::move(end));
  plan.Connect(body, e);
  const OperatorId sink = plan.Add(LogicalOpKind::kCollectionSink, "sink");
  plan.Connect(e, sink);
  ASSERT_TRUE(plan.Validate().ok());
  DataCatalog catalog;
  catalog.Bind(s, GenerateTextLines(10, 10, 3));
  // ...and execution drives the loop off the bound source.
  auto result = executor_.Execute(AllOnJava(plan), catalog);
  EXPECT_TRUE(result.ok());
}

}  // namespace
}  // namespace robopt
