#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "exec/executor.h"
#include "exec/fault.h"
#include "exec/platform_health.h"
#include "workloads/datagen.h"
#include "workloads/queries.h"

namespace robopt {
namespace {

ExecutionPlan AllOn(const LogicalPlan& plan, const PlatformRegistry& registry,
                    PlatformId platform) {
  ExecutionPlan exec(&plan, &registry);
  for (const LogicalOperator& op : plan.operators()) {
    const auto& alts = registry.AlternativesFor(op.kind);
    for (size_t a = 0; a < alts.size(); ++a) {
      if (alts[a].platform == platform && alts[a].variant == 0) {
        exec.Assign(op.id, static_cast<int>(a));
        break;
      }
    }
  }
  return exec;
}

/// Records every failure report delivered through the observer hook.
class FailureRecorder : public ExecutionObserver {
 public:
  void OnExecution(const ExecutionPlan&, const ExecResult&) override {
    std::lock_guard<std::mutex> lock(mu_);
    ++successes_;
  }
  void OnExecutionFailure(const ExecutionPlan&,
                          const FailureReport& report) override {
    std::lock_guard<std::mutex> lock(mu_);
    reports_.push_back(report);
  }

  std::vector<FailureReport> reports() const {
    std::lock_guard<std::mutex> lock(mu_);
    return reports_;
  }
  int successes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return successes_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<FailureReport> reports_;
  int successes_ = 0;
};

class FaultInjectionTest : public ::testing::Test {
 protected:
  FaultInjectionTest()
      : registry_(PlatformRegistry::Default(2)), cost_(&registry_) {
    RegisterWorkloadKernels();
    plan_ = MakeWordCountPlan(1e-6);
    catalog_.Bind(plan_.SourceIds()[0], GenerateTextLines(100, 100, 5));
  }

  StatusOr<ExecResult> Run(const ExecutorOptions& options,
                           FailureReport* failure = nullptr) {
    Executor executor(&registry_, &cost_, nullptr, options);
    return executor.Execute(AllOn(plan_, registry_, 0), catalog_, failure);
  }

  PlatformRegistry registry_;
  VirtualCost cost_;
  LogicalPlan plan_ = MakeWordCountPlan(1e-6);
  DataCatalog catalog_;
};

TEST_F(FaultInjectionTest, EmptyFaultPlanLeavesAccountingAtZero) {
  auto result = Run(ExecutorOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->faults.attempts, 0);
  EXPECT_EQ(result->faults.retries, 0);
  EXPECT_EQ(result->faults.faults_injected, 0);
  EXPECT_DOUBLE_EQ(result->faults.backoff_s, 0.0);
  EXPECT_DOUBLE_EQ(result->faults.retry_s, 0.0);
  EXPECT_DOUBLE_EQ(result->faults.slowdown_s, 0.0);
}

TEST_F(FaultInjectionTest, FailNthInvocationRetriesAndSucceeds) {
  auto baseline = Run(ExecutorOptions{});
  ASSERT_TRUE(baseline.ok());

  // "Fail the 3rd platform-0 operator invocation": the first attempt of
  // invocation 3 fails, its retry succeeds, the query completes.
  ExecutorOptions options;
  options.fault_plan.profiles.push_back(
      FaultProfile{/*platform=*/0, kAnyOpKind, /*failure_rate=*/0.0,
                   /*fail_on_invocation=*/3, /*permanent=*/false,
                   /*slowdown=*/1.0});
  auto result = Run(options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->faults.faults_injected, 1);
  EXPECT_EQ(result->faults.retries, 1);
  EXPECT_EQ(result->faults.attempts,
            static_cast<int>(plan_.num_operators()) + 1);
  EXPECT_GT(result->faults.backoff_s, 0.0);
  EXPECT_GT(result->faults.retry_s, 0.0);
  // The overhead is itemized exactly: total = fault-free total + retry work
  // + backoff (no slowdown rule is configured).
  EXPECT_DOUBLE_EQ(result->cost.total_s,
                   baseline->cost.total_s + result->faults.retry_s +
                       result->faults.backoff_s);
  // The computed answer is unaffected by the retry.
  EXPECT_EQ(result->output.rows.size(), baseline->output.rows.size());
}

TEST_F(FaultInjectionTest, PermanentFaultFailsWithStructuredReport) {
  FailureRecorder recorder;
  ExecutorOptions options;
  options.observer = &recorder;
  options.fault_plan.profiles.push_back(
      FaultProfile{/*platform=*/0, kAnyOpKind, /*failure_rate=*/1.0,
                   /*fail_on_invocation=*/0, /*permanent=*/true,
                   /*slowdown=*/1.0});
  FailureReport report;
  auto result = Run(options, &report);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(report.failed);
  EXPECT_TRUE(report.permanent);
  EXPECT_FALSE(report.breaker_open);
  EXPECT_EQ(report.platform, 0);
  EXPECT_NE(report.op, kInvalidOperatorId);
  EXPECT_EQ(report.attempts, 1);  // Permanent faults are not retried.
  EXPECT_FALSE(report.message.empty());
  // The failure reached the observer hook, and OnExecution did not fire.
  ASSERT_EQ(recorder.reports().size(), 1u);
  EXPECT_TRUE(recorder.reports()[0].permanent);
  EXPECT_EQ(recorder.successes(), 0);
}

TEST_F(FaultInjectionTest, TransientFaultExhaustsRetries) {
  ExecutorOptions options;
  options.retry.max_attempts = 3;
  options.fault_plan.profiles.push_back(
      FaultProfile{/*platform=*/0, kAnyOpKind, /*failure_rate=*/1.0,
                   /*fail_on_invocation=*/0, /*permanent=*/false,
                   /*slowdown=*/1.0});
  FailureReport report;
  auto result = Run(options, &report);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(report.failed);
  EXPECT_FALSE(report.permanent);
  EXPECT_EQ(report.attempts, 3);
  EXPECT_GT(report.backoff_s, 0.0);  // Two backoffs were charged.
}

TEST_F(FaultInjectionTest, SlowdownAccountingIsExact) {
  auto baseline = Run(ExecutorOptions{});
  ASSERT_TRUE(baseline.ok());
  double baseline_op_s = 0.0;
  for (double s : baseline->cost.op_seconds) baseline_op_s += s;

  // 2x slowdown on every platform-0 operator: each operator's virtual cost
  // doubles, everything else is untouched.
  ExecutorOptions options;
  options.fault_plan.profiles.push_back(
      FaultProfile{/*platform=*/0, kAnyOpKind, /*failure_rate=*/0.0,
                   /*fail_on_invocation=*/0, /*permanent=*/false,
                   /*slowdown=*/2.0});
  auto result = Run(options);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->faults.slowdown_s, baseline_op_s);
  EXPECT_DOUBLE_EQ(result->cost.total_s,
                   baseline->cost.total_s + baseline_op_s);
  for (size_t i = 0; i < baseline->cost.op_seconds.size(); ++i) {
    EXPECT_DOUBLE_EQ(result->cost.op_seconds[i],
                     2.0 * baseline->cost.op_seconds[i]);
  }
}

TEST_F(FaultInjectionTest, SameSeedIsByteIdenticalAcrossRuns) {
  ExecutorOptions options;
  options.fault_plan.seed = 0xdecafULL;
  options.fault_plan.profiles.push_back(
      FaultProfile{/*platform=*/0, kAnyOpKind, /*failure_rate=*/0.3,
                   /*fail_on_invocation=*/0, /*permanent=*/false,
                   /*slowdown=*/1.0});
  FailureReport report_a;
  FailureReport report_b;
  auto a = Run(options, &report_a);
  auto b = Run(options, &report_b);
  ASSERT_EQ(a.ok(), b.ok());
  if (a.ok()) {
    EXPECT_EQ(a->faults.attempts, b->faults.attempts);
    EXPECT_EQ(a->faults.retries, b->faults.retries);
    EXPECT_EQ(a->faults.faults_injected, b->faults.faults_injected);
    // Bit-identical virtual time, not merely approximately equal.
    EXPECT_EQ(std::memcmp(&a->cost.total_s, &b->cost.total_s,
                          sizeof(double)),
              0);
    EXPECT_EQ(a->cost.op_seconds, b->cost.op_seconds);
    EXPECT_EQ(std::memcmp(&a->faults.backoff_s, &b->faults.backoff_s,
                          sizeof(double)),
              0);
  } else {
    EXPECT_EQ(report_a.platform, report_b.platform);
    EXPECT_EQ(report_a.op, report_b.op);
    EXPECT_EQ(report_a.attempts, report_b.attempts);
    EXPECT_EQ(report_a.message, report_b.message);
  }
}

TEST_F(FaultInjectionTest, ConcurrentExecutionsAreByteIdentical) {
  // Raced under TSan: one executor + one breaker registry shared by every
  // thread. Each Execute() owns its fault-injector state, so every thread
  // must reproduce the serial reference byte-for-byte regardless of
  // interleaving.
  ExecutorOptions options;
  options.fault_plan.seed = 77;
  options.fault_plan.profiles.push_back(
      FaultProfile{/*platform=*/0, kAnyOpKind, /*failure_rate=*/0.25,
                   /*fail_on_invocation=*/0, /*permanent=*/false,
                   /*slowdown=*/1.5});
  PlatformHealth health(BreakerOptions{/*failure_threshold=*/1 << 20,
                                       /*cooldown_s=*/1e9});
  options.health = &health;
  Executor executor(&registry_, &cost_, nullptr, options);
  const ExecutionPlan exec = AllOn(plan_, registry_, 0);

  auto reference = executor.Execute(exec, catalog_);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
  for (unsigned num_threads : {1u, 4u, hw}) {
    std::vector<StatusOr<ExecResult>> results;
    results.reserve(num_threads);
    for (unsigned t = 0; t < num_threads; ++t) {
      results.push_back(Status::Internal("not run"));
    }
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    for (unsigned t = 0; t < num_threads; ++t) {
      threads.emplace_back([&, t] {
        results[t] = executor.Execute(exec, catalog_);
      });
    }
    for (std::thread& thread : threads) thread.join();
    for (unsigned t = 0; t < num_threads; ++t) {
      ASSERT_TRUE(results[t].ok());
      EXPECT_EQ(results[t]->faults.attempts, reference->faults.attempts);
      EXPECT_EQ(results[t]->faults.retries, reference->faults.retries);
      EXPECT_EQ(results[t]->faults.faults_injected,
                reference->faults.faults_injected);
      EXPECT_EQ(std::memcmp(&results[t]->cost.total_s,
                            &reference->cost.total_s, sizeof(double)),
                0);
      EXPECT_EQ(results[t]->cost.op_seconds, reference->cost.op_seconds);
      EXPECT_EQ(results[t]->observed.output, reference->observed.output);
    }
  }
}

TEST_F(FaultInjectionTest, OpenBreakerFailsFastWithReport) {
  FailureRecorder recorder;
  PlatformHealth health(BreakerOptions{/*failure_threshold=*/1,
                                       /*cooldown_s=*/1e9});
  health.RecordFailure(0);  // Trip platform 0.
  ASSERT_EQ(health.state(0), BreakerState::kOpen);

  ExecutorOptions options;
  options.observer = &recorder;
  options.health = &health;
  FailureReport report;
  auto result = Run(options, &report);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(report.failed);
  EXPECT_TRUE(report.breaker_open);
  EXPECT_EQ(report.platform, 0);
  EXPECT_FALSE(report.message.empty());
  ASSERT_EQ(recorder.reports().size(), 1u);
  EXPECT_TRUE(recorder.reports()[0].breaker_open);
  EXPECT_GE(health.snapshot(0).rejected, 1u);
}

TEST_F(FaultInjectionTest, OomFeedsBreakerButNotTheClock) {
  PlatformHealth health(BreakerOptions{/*failure_threshold=*/2,
                                       /*cooldown_s=*/10.0});
  ExecutorOptions options;
  options.health = &health;
  Executor executor(&registry_, &cost_, nullptr, options);

  LogicalPlan oom_plan = MakeWordCountPlan(1000.0);  // 1 TB on Java.
  DataCatalog catalog;
  catalog.Bind(oom_plan.SourceIds()[0],
               GenerateTextLines(1000.0 * 1e9 / 80, 500, 5));
  auto result = executor.Execute(AllOn(oom_plan, registry_, 0), catalog);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->cost.oom);
  // The OOM counted as a platform failure...
  EXPECT_EQ(health.snapshot(0).consecutive_failures, 1);
  // ...but its +inf virtual runtime did not advance the breaker clock.
  EXPECT_DOUBLE_EQ(health.now_s(), 0.0);
}

}  // namespace
}  // namespace robopt
