#include "baseline/traditional_enumerator.h"

#include <gtest/gtest.h>

#include "baseline/baseline_optimizers.h"
#include "core/optimizer.h"
#include "ml/random_forest.h"
#include "workloads/queries.h"
#include "workloads/synthetic.h"

namespace robopt {
namespace {

/// A runtime model with a fixed linear form over features — deterministic
/// and additive, so the traditional and vectorized enumerations must agree.
class LinearRuntimeModel : public RuntimeModel {
 public:
  explicit LinearRuntimeModel(size_t dim) : weights_(dim) {
    for (size_t i = 0; i < dim; ++i) {
      weights_[i] = 0.001 * static_cast<double>((i * 2654435761u) % 97);
    }
  }

  Status Train(const MlDataset&) override { return Status::OK(); }
  void PredictBatch(const float* x, size_t n, size_t dim,
                    float* out) const override {
    for (size_t i = 0; i < n; ++i) {
      double acc = 0.0;
      for (size_t j = 0; j < dim && j < weights_.size(); ++j) {
        acc += weights_[j] * x[i * dim + j];
      }
      out[i] = static_cast<float>(acc);
    }
  }
  Status Save(const std::string&) const override { return Status::OK(); }
  Status Load(const std::string&) override { return Status::OK(); }
  std::string Name() const override { return "LinearRuntimeModel"; }

 private:
  std::vector<double> weights_;
};

class TraditionalEnumeratorTest : public ::testing::Test {
 protected:
  TraditionalEnumeratorTest()
      : registry_(PlatformRegistry::Default(2)),
        schema_(&registry_),
        truth_(&registry_),
        cost_model_(&registry_, &truth_, CostModel::Tuning::kWellTuned),
        ml_model_(schema_.width()) {
    // Zero the max-merged cells so the linear model is exactly additive.
  }

  EnumerationContext MakeCtx(const LogicalPlan& plan) {
    auto ctx = EnumerationContext::Make(&plan, &registry_, &schema_);
    EXPECT_TRUE(ctx.ok()) << ctx.status().ToString();
    return std::move(ctx).value();
  }

  PlatformRegistry registry_;
  FeatureSchema schema_;
  VirtualCost truth_;
  CostModel cost_model_;
  LinearRuntimeModel ml_model_;
};

TEST_F(TraditionalEnumeratorTest, CostModelOracleProducesValidPlan) {
  LogicalPlan plan = MakeWordCountPlan(1.0);
  const EnumerationContext ctx = MakeCtx(plan);
  TraditionalOptions options;
  options.oracle = TraditionalOracle::kCostModel;
  TraditionalEnumerator enumerator(&ctx, &cost_model_, nullptr, options);
  auto result = enumerator.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->plan.Validate().ok());
  EXPECT_GT(result->stats.subplans_created, 0u);
  EXPECT_GT(result->stats.oracle_ms, 0.0);
  EXPECT_DOUBLE_EQ(result->stats.vectorize_ms, 0.0);
}

TEST_F(TraditionalEnumeratorTest, MlOracleTracksVectorizationTime) {
  LogicalPlan plan = MakeWordCountPlan(1.0);
  const EnumerationContext ctx = MakeCtx(plan);
  TraditionalOptions options;
  options.oracle = TraditionalOracle::kMlModel;
  TraditionalEnumerator enumerator(&ctx, nullptr, &ml_model_, options);
  auto result = enumerator.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->plan.Validate().ok());
  EXPECT_GT(result->stats.vectorize_ms, 0.0);
}

TEST_F(TraditionalEnumeratorTest, MissingOracleFails) {
  LogicalPlan plan = MakeWordCountPlan(1.0);
  const EnumerationContext ctx = MakeCtx(plan);
  TraditionalOptions options;
  options.oracle = TraditionalOracle::kCostModel;
  TraditionalEnumerator enumerator(&ctx, nullptr, nullptr, options);
  EXPECT_FALSE(enumerator.Run().ok());
}

TEST_F(TraditionalEnumeratorTest, RheemMlFindsSamePlanAsRobopt) {
  // Same model, same pruning, same priority: the object-based and the
  // vectorized enumerations must pick the same execution plan (the paper's
  // Fig. 1 setup: "both approaches explore the same number of plans").
  for (uint64_t seed : {41u, 42u, 43u}) {
    LogicalPlan plan = MakeSyntheticPipeline(7, 1e6, seed);
    const EnumerationContext ctx = MakeCtx(plan);

    TraditionalOptions options;
    options.oracle = TraditionalOracle::kMlModel;
    TraditionalEnumerator traditional(&ctx, nullptr, &ml_model_, options);
    auto object_result = traditional.Run();
    ASSERT_TRUE(object_result.ok());

    MlCostOracle oracle(&ml_model_);
    PriorityEnumerator vectorized(&ctx, &oracle);
    auto vector_result = vectorized.Run();
    ASSERT_TRUE(vector_result.ok());

    EXPECT_NEAR(object_result->predicted_cost,
                vector_result->predicted_runtime_s,
                std::abs(vector_result->predicted_runtime_s) * 1e-4)
        << "seed " << seed;
  }
}

TEST_F(TraditionalEnumeratorTest, RheemixFacadeSinglePlatformMode) {
  RheemixOptimizer rheemix(&registry_, &schema_, &cost_model_);
  LogicalPlan plan = MakeWordCountPlan(0.001);
  OptimizeOptions options;
  options.single_platform = true;
  auto result = rheemix.Optimize(plan, nullptr, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->plan.PlatformsUsed().size(), 1u);
}

TEST_F(TraditionalEnumeratorTest, RheemMlFacadeRuns) {
  RheemMlOptimizer rheem_ml(&registry_, &schema_, &ml_model_);
  LogicalPlan plan = MakeTpchQ1Plan(1.0);
  auto result = rheem_ml.Optimize(plan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->plan.Validate().ok());
  EXPECT_GT(result->latency_ms, 0.0);
}

TEST_F(TraditionalEnumeratorTest, SubplanCountsMatchVectorizedCounts) {
  // Identical search strategy -> identical number of explored sub-plans.
  LogicalPlan plan = MakeSyntheticPipeline(6, 1e6, 44);
  const EnumerationContext ctx = MakeCtx(plan);
  TraditionalOptions options;
  options.oracle = TraditionalOracle::kMlModel;
  TraditionalEnumerator traditional(&ctx, nullptr, &ml_model_, options);
  auto object_result = traditional.Run();
  ASSERT_TRUE(object_result.ok());
  MlCostOracle oracle(&ml_model_);
  PriorityEnumerator vectorized(&ctx, &oracle);
  auto vector_result = vectorized.Run();
  ASSERT_TRUE(vector_result.ok());
  EXPECT_EQ(object_result->stats.subplans_created,
            vector_result->stats.vectors_created);
}

}  // namespace
}  // namespace robopt
