#include "baseline/cost_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "plan/cardinality.h"
#include "workloads/queries.h"

namespace robopt {
namespace {

ExecutionPlan AllOn(const LogicalPlan& plan, const PlatformRegistry& registry,
                    PlatformId platform) {
  ExecutionPlan exec(&plan, &registry);
  for (const LogicalOperator& op : plan.operators()) {
    const auto& alts = registry.AlternativesFor(op.kind);
    for (size_t a = 0; a < alts.size(); ++a) {
      if (alts[a].platform == platform && alts[a].variant == 0) {
        exec.Assign(op.id, static_cast<int>(a));
        break;
      }
    }
  }
  return exec;
}

class CostModelTest : public ::testing::Test {
 protected:
  CostModelTest()
      : registry_(PlatformRegistry::Default(3)),
        truth_(&registry_),
        well_(&registry_, &truth_, CostModel::Tuning::kWellTuned),
        simple_(&registry_, &truth_, CostModel::Tuning::kSimplyTuned) {}

  PlatformRegistry registry_;
  VirtualCost truth_;
  CostModel well_;
  CostModel simple_;
};

TEST_F(CostModelTest, WellTunedTracksGroundTruthWithinFactor) {
  LogicalPlan plan = MakeWordCountPlan(5.0);
  const Cardinalities cards = CardinalityEstimator(&plan).Estimate();
  for (PlatformId p : {PlatformId{0}, PlatformId{1}, PlatformId{2}}) {
    const ExecutionPlan exec = AllOn(plan, registry_, p);
    const double truth = truth_.PlanCost(exec, cards).total_s;
    const double model = well_.PlanCost(exec, cards);
    if (!std::isfinite(truth)) continue;
    EXPECT_LT(model, truth * 8.0) << registry_.platform(p).name;
    EXPECT_GT(model, truth / 8.0) << registry_.platform(p).name;
  }
}

TEST_F(CostModelTest, WellTunedRanksJavaVsSparkCorrectlyAtExtremes) {
  // The linear fit is weak, but it must get the gross small-vs-large
  // crossover right — the paper's "well-tuned" admin achieves that.
  LogicalPlan small = MakeWordCountPlan(0.00003);
  LogicalPlan large = MakeWordCountPlan(50.0);
  const Cardinalities small_cards = CardinalityEstimator(&small).Estimate();
  const Cardinalities large_cards = CardinalityEstimator(&large).Estimate();
  EXPECT_LT(well_.PlanCost(AllOn(small, registry_, 0), small_cards),
            well_.PlanCost(AllOn(small, registry_, 1), small_cards));
  EXPECT_LT(well_.PlanCost(AllOn(large, registry_, 1), large_cards),
            well_.PlanCost(AllOn(large, registry_, 0), large_cards));
}

TEST_F(CostModelTest, SimplyTunedMispredictsAtScale) {
  // Profiling at small scale misses the n log n shuffle growth: the simply
  // tuned model's error at 50 GB is much larger than the well-tuned one's.
  LogicalPlan plan = MakeAggregatePlan(50.0);
  const Cardinalities cards = CardinalityEstimator(&plan).Estimate();
  const ExecutionPlan spark = AllOn(plan, registry_, 1);
  const double truth = truth_.PlanCost(spark, cards).total_s;
  const double well_err =
      std::abs(well_.PlanCost(spark, cards) - truth) / truth;
  const double simple_err =
      std::abs(simple_.PlanCost(spark, cards) - truth) / truth;
  EXPECT_GT(simple_err, well_err);
}

TEST_F(CostModelTest, SimplyTunedStartupLeaksIntoOperators) {
  // The simply-tuned model folds job startup into every operator's c0, so
  // multi-operator Spark plans look far too expensive.
  LogicalPlan plan = MakeWordCountPlan(0.001);
  const Cardinalities cards = CardinalityEstimator(&plan).Estimate();
  const ExecutionPlan spark = AllOn(plan, registry_, 1);
  EXPECT_GT(simple_.PlanCost(spark, cards),
            well_.PlanCost(spark, cards) * 2.0);
}

TEST_F(CostModelTest, SubplanCostSumsOverScope) {
  LogicalPlan plan = MakeWordCountPlan(1.0);
  const Cardinalities cards = CardinalityEstimator(&plan).Estimate();
  const ExecutionPlan exec = AllOn(plan, registry_, 1);
  std::vector<uint8_t> all(plan.num_operators(), 1);
  std::vector<uint8_t> first_half(plan.num_operators(), 0);
  std::vector<uint8_t> second_half(plan.num_operators(), 0);
  for (int i = 0; i < plan.num_operators(); ++i) {
    (i < plan.num_operators() / 2 ? first_half : second_half)[i] = 1;
  }
  const double whole = well_.SubplanCost(exec, cards, all);
  const double parts = well_.SubplanCost(exec, cards, first_half) +
                       well_.SubplanCost(exec, cards, second_half);
  // Splitting double-counts the per-platform startup but loses no operator
  // cost; they must be close.
  EXPECT_NEAR(whole, parts - well_.StartupCost(1), 1e-6);
}

TEST_F(CostModelTest, ConversionCostIncludesSwitchPenalty) {
  ConversionInstance conv;
  conv.from_platform = 1;
  conv.to_platform = 0;
  conv.kind = ConversionKind::kCollect;
  // Even moving one tuple costs at least the fixed coordination penalty.
  EXPECT_GE(well_.ConversionCostLinear(conv, 1.0, 16.0), 0.5);
}

TEST_F(CostModelTest, ModelPrefersCachedSamplerInLoops) {
  // The documented-behavior modeling gap (Section VII-C2): the cost model
  // believes the cache+sample variant is cheaper over many iterations,
  // while the ground truth knows the stateful sampler wins.
  LogicalOperator sample;
  sample.kind = LogicalOpKind::kSample;
  sample.tuple_bytes = 28.0;
  const auto& alts = registry_.AlternativesFor(LogicalOpKind::kSample);
  const ExecutionAlt* stateful = nullptr;
  const ExecutionAlt* cached = nullptr;
  for (const auto& alt : alts) {
    if (alt.platform != 1) continue;
    (alt.variant == 0 ? stateful : cached) = &alt;
  }
  ASSERT_NE(stateful, nullptr);
  ASSERT_NE(cached, nullptr);
  const double in = 1e7;
  const double out = 100;
  const int iters = 1000;
  // Model: cached looks better.
  EXPECT_LT(well_.OpCost(sample, *cached, in, out, iters),
            well_.OpCost(sample, *stateful, in, out, iters));
  // Truth: stateful is better.
  double truth_stateful = truth_.OpCostRaw(sample, *stateful, in, out, 0) +
                          (iters - 1) *
                              truth_.OpCostRaw(sample, *stateful, in, out, 1);
  double truth_cached = truth_.OpCostRaw(sample, *cached, in, out, 0) +
                        (iters - 1) *
                            truth_.OpCostRaw(sample, *cached, in, out, 1);
  EXPECT_LT(truth_stateful, truth_cached);
}

TEST_F(CostModelTest, ModelChargesBroadcastOnceDespiteLoops) {
  LogicalOperator bcast;
  bcast.kind = LogicalOpKind::kBroadcast;
  bcast.tuple_bytes = 64.0;
  const auto& alts = registry_.AlternativesFor(LogicalOpKind::kBroadcast);
  const ExecutionAlt* spark = nullptr;
  for (const auto& alt : alts) {
    if (alt.platform == 1) spark = &alt;
  }
  ASSERT_NE(spark, nullptr);
  EXPECT_DOUBLE_EQ(well_.OpCost(bcast, *spark, 1000, 1000, 1),
                   well_.OpCost(bcast, *spark, 1000, 1000, 500));
}

TEST_F(CostModelTest, CoefficientsAreNonNegative) {
  // Indirectly: zero-cardinality operators can never have negative cost.
  LogicalOperator map;
  map.kind = LogicalOpKind::kMap;
  const auto& alts = registry_.AlternativesFor(LogicalOpKind::kMap);
  for (const auto& alt : alts) {
    EXPECT_GE(well_.OpCost(map, alt, 0, 0, 1), 0.0);
    EXPECT_GE(simple_.OpCost(map, alt, 0, 0, 1), 0.0);
  }
}

}  // namespace
}  // namespace robopt
