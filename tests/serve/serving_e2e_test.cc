#include "serve/optimizer_service.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <thread>

#include "tdgen/tdgen.h"
#include "workloads/datagen.h"
#include "workloads/queries.h"

namespace robopt {
namespace {

/// End-to-end serving lifecycle over the full stack: TDGEN bootstraps v1,
/// real executions feed the FeedbackCollector, a retrain cycle validates a
/// candidate on the holdout split and promotes (or rejects) it, and the
/// plan cache rides the version changes.
class ServingE2eTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    RegisterWorkloadKernels();
    registry_ = new PlatformRegistry(PlatformRegistry::Default(2));
    schema_ = new FeatureSchema(registry_);
    cost_ = new VirtualCost(registry_);
    TdgenOptions options;
    options.plans_per_shape = 4;
    options.max_operators = 10;
    options.max_structures_per_plan = 16;
    options.seed = 321;
    Executor plain(registry_, cost_);
    Tdgen tdgen(registry_, schema_, &plain, options);
    auto base = tdgen.Generate();
    ASSERT_TRUE(base.ok()) << base.status().ToString();
    base_ = new MlDataset(std::move(base.value()));
  }

  static ServeOptions SmallServeOptions() {
    ServeOptions options;
    options.background_retrain = false;  // Tests drive cycles explicitly.
    options.retrain_min_events = 8;
    options.promote_tolerance = 0.5;
    options.forest.num_trees = 20;
    return options;
  }

  /// Runs the service's optimized plan through a real executor wired to the
  /// service as its observer, `n` times.
  static void ExecuteOptimized(OptimizerService* service, int n) {
    LogicalPlan plan = MakeWordCountPlan(0.001);
    auto optimized = service->Optimize(plan);
    ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
    DataCatalog catalog;
    catalog.Bind(plan.SourceIds()[0], GenerateTextLines(1000, 1000, 5));
    ExecutorOptions exec_options;
    exec_options.observer = service;
    Executor executor(registry_, cost_, nullptr, exec_options);
    for (int i = 0; i < n; ++i) {
      auto result = executor.Execute(optimized->optimize.plan, catalog);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
    }
  }

  static PlatformRegistry* registry_;
  static FeatureSchema* schema_;
  static VirtualCost* cost_;
  static MlDataset* base_;
};

PlatformRegistry* ServingE2eTest::registry_ = nullptr;
FeatureSchema* ServingE2eTest::schema_ = nullptr;
VirtualCost* ServingE2eTest::cost_ = nullptr;
MlDataset* ServingE2eTest::base_ = nullptr;

TEST_F(ServingE2eTest, TrainsV1AndServesFromPlanCache) {
  auto service = OptimizerService::Create(registry_, schema_, *base_,
                                          /*initial=*/nullptr,
                                          SmallServeOptions());
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  EXPECT_EQ((*service)->registry().current_version(), 1u);
  // v1 was validated on the holdout carved from the base set.
  EXPECT_FALSE(std::isnan((*service)->registry().Current()->holdout_mae()));

  LogicalPlan plan = MakeWordCountPlan(0.001);
  auto first = (*service)->Optimize(plan);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->cache_hit);
  EXPECT_EQ(first->optimize.model_version, 1u);
  EXPECT_TRUE(first->optimize.plan.Validate().ok());

  // A *different instance* of the same logical plan must hit via the
  // canonical fingerprint and carry the identical assignment.
  LogicalPlan again = MakeWordCountPlan(0.001);
  auto second = (*service)->Optimize(again);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cache_hit);
  EXPECT_TRUE(second->optimize.plan.Validate().ok());
  EXPECT_EQ(second->optimize.predicted_runtime_s,
            first->optimize.predicted_runtime_s);
  for (const LogicalOperator& op : plan.operators()) {
    EXPECT_EQ(second->optimize.plan.alt_index(op.id),
              first->optimize.plan.alt_index(op.id));
  }
  // Different options hash → different key → no false hit.
  OptimizeOptions single;
  single.single_platform = true;
  auto third = (*service)->Optimize(plan, nullptr, single);
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(third->cache_hit);
  const ServeStats stats = (*service)->Stats();
  EXPECT_EQ(stats.plan_cache.hits, 1u);
  EXPECT_EQ(stats.plan_cache.insertions, 2u);
}

/// Two-source join dataflow built in a configurable insertion order: the
/// same graph, permuted operator ids. Mirrors fingerprint_test's JoinPlan.
LogicalPlan PermutableJoinPlan(bool reversed) {
  auto source = [](double cardinality) {
    LogicalOperator op;
    op.kind = LogicalOpKind::kCollectionSource;
    op.source_cardinality = cardinality;
    return op;
  };
  auto make = [](LogicalOpKind kind, double selectivity) {
    LogicalOperator op;
    op.kind = kind;
    op.selectivity = selectivity;
    return op;
  };
  LogicalPlan plan;
  OperatorId left, right, join, filter, sink;
  if (!reversed) {
    left = plan.Add(source(1e6));
    right = plan.Add(source(1e3));
    join = plan.Add(make(LogicalOpKind::kJoin, 0.01));
    filter = plan.Add(make(LogicalOpKind::kFilter, 0.5));
    sink = plan.Add(make(LogicalOpKind::kCollectionSink, 1.0));
  } else {
    sink = plan.Add(make(LogicalOpKind::kCollectionSink, 1.0));
    filter = plan.Add(make(LogicalOpKind::kFilter, 0.5));
    join = plan.Add(make(LogicalOpKind::kJoin, 0.01));
    right = plan.Add(source(1e3));
    left = plan.Add(source(1e6));
  }
  plan.Connect(left, join);
  plan.Connect(right, join);
  plan.Connect(join, filter);
  plan.Connect(filter, sink);
  return plan;
}

TEST_F(ServingE2eTest, CacheHitRemapsAcrossPermutedInsertionOrders) {
  // The fingerprint is insertion-order independent, so a plan built in a
  // different Add() order hits the entry its permuted twin inserted — but
  // its operator ids are permuted, and a hit that transferred alts by raw
  // id would put them on the wrong operators (or crash in Assign). The hit
  // must remap through the canonical node hashes.
  auto service = OptimizerService::Create(registry_, schema_, *base_,
                                          nullptr, SmallServeOptions());
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  LogicalPlan forward = PermutableJoinPlan(false);
  auto first = (*service)->Optimize(forward);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->cache_hit);

  LogicalPlan reversed = PermutableJoinPlan(true);
  auto hit = (*service)->Optimize(reversed);
  ASSERT_TRUE(hit.ok()) << hit.status().ToString();
  EXPECT_TRUE(hit->cache_hit);
  EXPECT_TRUE(hit->optimize.plan.Validate().ok());
  EXPECT_EQ(hit->optimize.predicted_runtime_s,
            first->optimize.predicted_runtime_s);

  // Ground truth: a second service over the same base trains a bit-identical
  // v1 (deterministic seeds), so its fresh optimization of the reversed
  // plan is what the hit must reproduce, operator by operator.
  auto fresh_service = OptimizerService::Create(registry_, schema_, *base_,
                                                nullptr, SmallServeOptions());
  ASSERT_TRUE(fresh_service.ok());
  auto fresh = (*fresh_service)->Optimize(reversed);
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh->cache_hit);
  for (const LogicalOperator& op : reversed.operators()) {
    EXPECT_EQ(hit->optimize.plan.alt_index(op.id),
              fresh->optimize.plan.alt_index(op.id))
        << "operator " << op.id;
  }
}

TEST_F(ServingE2eTest, EmptyHoldoutNeverValidatesVacuously) {
  // With no holdout at all, the MAE comparison has no data behind it. The
  // cycle must surface that (validated=false, NaN MAEs) and reject the
  // candidate by default instead of promoting on a vacuous 0 <= 0.
  ServeOptions options = SmallServeOptions();
  options.holdout_fraction = 0.0;
  options.holdout_every = 0;
  auto service =
      OptimizerService::Create(registry_, schema_, *base_, nullptr, options);
  ASSERT_TRUE(service.ok());
  // v1 itself could not be validated either.
  EXPECT_TRUE(std::isnan((*service)->registry().Current()->holdout_mae()));
  ExecuteOptimized(service->get(), 12);
  auto cycle = (*service)->RetrainNow(/*force=*/true);
  ASSERT_TRUE(cycle.ok()) << cycle.status().ToString();
  EXPECT_TRUE(cycle->triggered);
  EXPECT_FALSE(cycle->validated);
  EXPECT_FALSE(cycle->promoted);
  EXPECT_TRUE(std::isnan(cycle->candidate_mae));
  EXPECT_EQ(cycle->holdout_rows, 0u);
  EXPECT_EQ((*service)->registry().current_version(), 1u);
  EXPECT_EQ((*service)->Stats().rejections, 1u);

  // Opting in promotes, but the version is explicitly marked unvalidated —
  // the same NaN-MAE contract as PublishExternal.
  options.promote_unvalidated = true;
  auto opted =
      OptimizerService::Create(registry_, schema_, *base_, nullptr, options);
  ASSERT_TRUE(opted.ok());
  ExecuteOptimized(opted->get(), 12);
  auto promoted = (*opted)->RetrainNow(/*force=*/true);
  ASSERT_TRUE(promoted.ok());
  EXPECT_TRUE(promoted->triggered);
  EXPECT_FALSE(promoted->validated);
  EXPECT_TRUE(promoted->promoted);
  EXPECT_EQ((*opted)->registry().current_version(), 2u);
  EXPECT_TRUE(std::isnan((*opted)->registry().Current()->holdout_mae()));
}

TEST_F(ServingE2eTest, FeedbackRetrainsAndPromotesV2) {
  auto service = OptimizerService::Create(registry_, schema_, *base_,
                                          nullptr, SmallServeOptions());
  ASSERT_TRUE(service.ok());
  // Below the size trigger nothing happens.
  ExecuteOptimized(service->get(), 3);
  auto idle = (*service)->RetrainNow();
  ASSERT_TRUE(idle.ok());
  EXPECT_FALSE(idle->triggered);
  EXPECT_EQ((*service)->registry().current_version(), 1u);

  // Cross the trigger: 1 in holdout_every events lands in the holdout, the
  // rest in the experience log, so 12 more executions comfortably clear
  // retrain_min_events = 8.
  ExecuteOptimized(service->get(), 12);
  auto cycle = (*service)->RetrainNow();
  ASSERT_TRUE(cycle.ok()) << cycle.status().ToString();
  EXPECT_TRUE(cycle->triggered);
  ASSERT_TRUE(cycle->promoted)
      << "candidate MAE " << cycle->candidate_mae << " vs incumbent "
      << cycle->incumbent_mae;
  EXPECT_EQ(cycle->version, 2u);
  EXPECT_GT(cycle->experience_rows, 0u);
  EXPECT_GT(cycle->holdout_rows, 0u);
  // The candidate passed validation within tolerance.
  EXPECT_LE(cycle->candidate_mae,
            cycle->incumbent_mae * (1.0 + SmallServeOptions().promote_tolerance));

  const ServeStats stats = (*service)->Stats();
  EXPECT_EQ(stats.current_version, 2u);
  EXPECT_EQ(stats.retrains, 1u);
  EXPECT_EQ(stats.promotions, 1u);
  EXPECT_EQ(stats.rejections, 0u);
  EXPECT_GT(stats.feedback.drained, 0u);
  // Live feedback events carried drift observations for v1.
  EXPECT_GT((*service)->registry().Get(1)->drift().observations, 0u);

  // Promotion invalidated the plan cache: the next optimize recomputes on
  // v2, then repeat queries hit again.
  LogicalPlan plan = MakeWordCountPlan(0.001);
  auto after = (*service)->Optimize(plan);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->cache_hit);
  EXPECT_EQ(after->optimize.model_version, 2u);
  auto cached = (*service)->Optimize(plan);
  ASSERT_TRUE(cached.ok());
  EXPECT_TRUE(cached->cache_hit);
}

TEST_F(ServingE2eTest, RegressingCandidateIsRejected) {
  ServeOptions options = SmallServeOptions();
  // An impossible bar: candidate MAE would have to be negative. The cycle
  // must train, validate, and refuse to promote.
  options.promote_tolerance = -2.0;
  auto service =
      OptimizerService::Create(registry_, schema_, *base_, nullptr, options);
  ASSERT_TRUE(service.ok());
  ExecuteOptimized(service->get(), 12);
  auto cycle = (*service)->RetrainNow(/*force=*/true);
  ASSERT_TRUE(cycle.ok());
  EXPECT_TRUE(cycle->triggered);
  EXPECT_FALSE(cycle->promoted);
  EXPECT_EQ((*service)->registry().current_version(), 1u);
  const ServeStats stats = (*service)->Stats();
  EXPECT_EQ(stats.retrains, 1u);
  EXPECT_EQ(stats.promotions, 0u);
  EXPECT_EQ(stats.rejections, 1u);
  // The rejected candidate never touched the serving path or the cache.
  LogicalPlan plan = MakeWordCountPlan(0.001);
  auto result = (*service)->Optimize(plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->optimize.model_version, 1u);
}

TEST_F(ServingE2eTest, PublishExternalBypassesValidation) {
  auto service = OptimizerService::Create(registry_, schema_, *base_,
                                          nullptr, SmallServeOptions());
  ASSERT_TRUE(service.ok());
  LogicalPlan plan = MakeWordCountPlan(0.001);
  ASSERT_TRUE((*service)->Optimize(plan).ok());

  RandomForest::Params params;
  params.num_trees = 10;
  auto forest = std::make_shared<RandomForest>(params);
  ASSERT_TRUE(forest->Train(*base_).ok());
  const uint64_t version = (*service)->PublishExternal(std::move(forest));
  EXPECT_EQ(version, 2u);
  EXPECT_TRUE(
      std::isnan((*service)->registry().Current()->holdout_mae()));
  // The ops push also invalidated the cache.
  auto result = (*service)->Optimize(plan);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->cache_hit);
  EXPECT_EQ(result->optimize.model_version, 2u);
}

TEST_F(ServingE2eTest, BackgroundWorkerRetrainsOnItsOwn) {
  ServeOptions options = SmallServeOptions();
  options.background_retrain = true;
  options.worker_poll_s = 0.01;
  options.retrain_min_events = 4;
  auto service =
      OptimizerService::Create(registry_, schema_, *base_, nullptr, options);
  ASSERT_TRUE(service.ok());
  ExecuteOptimized(service->get(), 8);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while ((*service)->Stats().retrains == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE((*service)->Stats().retrains, 1u);
  // Destruction joins the worker cleanly (verified by TSan in CI).
  service->reset();
}

TEST_F(ServingE2eTest, CreateRejectsBadInputs) {
  MlDataset wrong(3);
  EXPECT_FALSE(
      OptimizerService::Create(registry_, schema_, wrong, nullptr).ok());
  MlDataset empty(schema_->width());
  EXPECT_FALSE(
      OptimizerService::Create(registry_, schema_, empty, nullptr).ok());
  // An empty base is fine when an initial model is supplied.
  RandomForest::Params params;
  params.num_trees = 5;
  auto forest = std::make_shared<RandomForest>(params);
  ASSERT_TRUE(forest->Train(*base_).ok());
  ServeOptions options = SmallServeOptions();
  auto service = OptimizerService::Create(registry_, schema_, empty,
                                          std::move(forest), options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  EXPECT_EQ((*service)->registry().current_version(), 1u);
}

}  // namespace
}  // namespace robopt
