/// End-to-end SLO control loop on a manual clock, the acceptance scenario:
/// an injected latency degradation trips the fast-burn pair, the service
/// visibly tightens admission (kSloDeadline sheds, the shed_slo counters
/// rise, shed decision records carry the critical health), and once the
/// degradation stops and the windows drain the health clears and serving
/// resumes. Also pins the sliding-window p99 view of the degradation and
/// DriveWorkload's slo_every evaluation cadence.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "exec/executor.h"
#include "obs/decision.h"
#include "obs/slo.h"
#include "serve/optimizer_service.h"
#include "tdgen/tdgen.h"
#include "workload/driver.h"
#include "workload/generators.h"
#include "workloads/queries.h"

namespace robopt {
namespace {

class SloE2eTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    RegisterWorkloadKernels();
    registry_ = new PlatformRegistry(PlatformRegistry::Default(2));
    schema_ = new FeatureSchema(registry_);
    cost_ = new VirtualCost(registry_);
    TdgenOptions options;
    options.plans_per_shape = 4;
    options.max_operators = 10;
    options.max_structures_per_plan = 16;
    options.seed = 17;
    Executor plain(registry_, cost_);
    Tdgen tdgen(registry_, schema_, &plain, options);
    auto base = tdgen.Generate();
    ASSERT_TRUE(base.ok()) << base.status().ToString();
    base_ = new MlDataset(std::move(base.value()));
  }

  /// Sharded service with the SLO engine on a test-pinned clock. The
  /// objective: 99% of optimizes under 1s; fast pair = 12s window (1s
  /// confirmation), burn threshold 2x budget. The plan cache is off so
  /// every served call does real work (a warm EWMA for admission), and the
  /// critical deadline factor crushes the 1h default deadline to
  /// microseconds — any request sheds while burn is critical.
  std::unique_ptr<OptimizerService> MakeService() {
    ServeOptions options;
    options.background_retrain = false;
    options.forest.num_trees = 20;
    options.num_shards = 2;
    options.plan_cache_capacity = 0;
    options.default_deadline_s = 3600.0;
    options.diagnostics.enabled = true;
    options.slo.enabled = true;
    options.slo.sketch_alpha = 0.01;
    options.slo.sketch_window_s = 1.0;
    options.slo.sketch_windows = 64;
    options.slo.critical_deadline_factor = 1e-9;
    options.slo.critical_queue_factor = 1.0;
    SloObjective objective;
    objective.name = "optimize_latency";
    objective.threshold_us = 1e6;
    objective.target = 0.99;
    objective.fast_window_s = 12.0;
    objective.slow_window_s = 24.0;
    objective.fast_burn = 2.0;
    objective.slow_burn = 1.0;
    options.slo.objectives.push_back(objective);
    now_ = std::make_shared<double>(0.5);
    const std::shared_ptr<double> clock = now_;
    options.slo.clock = [clock] { return *clock; };
    auto service = OptimizerService::Create(registry_, schema_, *base_,
                                            /*initial=*/nullptr, options);
    EXPECT_TRUE(service.ok()) << service.status().ToString();
    return std::move(service.value());
  }

  std::shared_ptr<double> now_;
  static PlatformRegistry* registry_;
  static FeatureSchema* schema_;
  static VirtualCost* cost_;
  static MlDataset* base_;
};

PlatformRegistry* SloE2eTest::registry_ = nullptr;
FeatureSchema* SloE2eTest::schema_ = nullptr;
VirtualCost* SloE2eTest::cost_ = nullptr;
MlDataset* SloE2eTest::base_ = nullptr;

TEST_F(SloE2eTest, DegradationTripsFastBurnTightensAdmissionAndRecovers) {
  auto service = MakeService();
  const LogicalPlan plan = MakeWordCountPlan(0.001);
  const OptimizeOptions opt;
  RequestContext ctx;
  ctx.tenant = 7;  // One tenant + one plan -> one shard, warm EWMA.

  // --- Phase 1: healthy traffic in window [0, 1). ---
  *now_ = 0.5;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(service->Optimize(plan, nullptr, opt, ctx)
                    .ok());
  }
  service->EvaluateSloNow();
  EXPECT_EQ(service->slo_health(), SloHealth::kOk);
  EXPECT_EQ(service->Stats().shard_shed_slo, 0u);

  // --- Phase 2: a 5s latency degradation lands in window [1, 2). The
  // requests still serve (the injection only pads what the sketch
  // observes), but every one of them blows the 1s objective. ---
  service->set_slo_inject_latency_us(5e6);
  *now_ = 1.5;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(service->Optimize(plan, nullptr, opt, ctx)
                    .ok());
  }
  *now_ = 1.6;
  service->EvaluateSloNow();
  ASSERT_EQ(service->slo_health(), SloHealth::kCritical);
  const SloStatus tripped = service->slo_status();
  ASSERT_EQ(tripped.objectives.size(), 1u);
  EXPECT_GE(tripped.objectives[0].burn_fast, 2.0);
  EXPECT_GE(tripped.objectives[0].burn_fast_short, 2.0);
  EXPECT_DOUBLE_EQ(tripped.objectives[0].bad_fraction_fast, 0.5);

  // The sliding-window p99 sees the degradation within the sketch's
  // relative-error bound (alpha = 0.01, plus the real serving latency the
  // injection rides on).
  const double p99 =
      service->latency_sketch()->Quantile(0.99, 12.0, *now_);
  EXPECT_GE(p99, 5e6 * (1.0 - 0.011));
  EXPECT_LE(p99, 6e6);

  // --- Phase 3: under critical burn, admission is tightened. The 1h
  // deadline is now microseconds; the shard's EWMA service time (real
  // optimizes) dwarfs it, so requests shed as kSloDeadline — attributed to
  // the SLO, not the deadline, because the untightened deadline would have
  // admitted them. ---
  *now_ = 2.5;
  int sheds = 0;
  for (int i = 0; i < 5; ++i) {
    auto result = service->Optimize(plan, nullptr, opt, ctx);
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
      ++sheds;
    }
  }
  EXPECT_EQ(sheds, 5);
  const ServeStats degraded = service->Stats();
  EXPECT_EQ(degraded.shard_shed_slo, 5u);
  EXPECT_EQ(degraded.shard_shed_deadline, 0u);
  EXPECT_EQ(degraded.shard_shed_queue_full, 0u);

  // The shed decisions are in the explain ring, stamped with the critical
  // health and the SLO shed reason.
  const std::vector<DecisionRecord> records = service->RecentDecisions(5);
  ASSERT_EQ(records.size(), 5u);
  for (const DecisionRecord& record : records) {
    EXPECT_EQ(record.status, StatusCode::kResourceExhausted);
    EXPECT_EQ(record.shed, ShedReason::kSloDeadline);
    EXPECT_EQ(record.slo_health,
              static_cast<uint8_t>(SloHealth::kCritical));
    EXPECT_EQ(record.cache, DecisionCacheResult::kDisabled);
  }
  const std::string json = service->ExportDecisionsJson(1);
  EXPECT_NE(json.find("\"shed\": \"slo_deadline\""), std::string::npos);

  // --- Phase 4: the degradation stops and the windows drain. 38s later
  // every bad window is outside the fast pair; the sheds were recorded as
  // bad *events*, which the latency objective deliberately does not count
  // (that would latch critical forever). Health clears, serving resumes. ---
  service->set_slo_inject_latency_us(0.0);
  *now_ = 40.0;
  service->EvaluateSloNow();
  EXPECT_EQ(service->slo_health(), SloHealth::kOk);
  auto recovered = service->Optimize(plan, nullptr, opt, ctx);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(service->Stats().shard_shed_slo, 5u);  // No new sheds.

  // The shed counter is visible on the metrics endpoint.
  const MetricsSnapshot snap = service->SnapshotMetrics();
  EXPECT_DOUBLE_EQ(snap.Value("robopt_shard_shed_slo_total", -1.0), 5.0);
  EXPECT_GT(snap.Value("robopt_slo_evaluations_total", -1.0), 0.0);
}

TEST_F(SloE2eTest, DriveWorkloadEvaluatesBurnAtTheConfiguredCadence) {
  auto service = MakeService();
  // Replayed degradation: everything the drive serves is recorded 5s slow,
  // so the very first mid-drive evaluation after a served op trips
  // critical and the rest of the stream sheds.
  service->set_slo_inject_latency_us(5e6);
  *now_ = 50.5;

  GeneratorOptions gen;
  gen.base.seed = 11;
  gen.base.max_ops = 64;
  OpenLoopSource source(PlanPool::kSynthetic, gen);
  ASSERT_TRUE(source.Load().ok());
  DriveOptions drive;
  drive.registry = registry_;
  drive.slo_every = 1;
  const ReplayStats stats = DriveWorkload(service.get(), &source, drive);

  EXPECT_GT(stats.optimizes, 0u);
  // Every op in the stream triggered one mid-drive evaluation.
  EXPECT_EQ(stats.slo_evaluations,
            stats.optimizes + stats.feedbacks + stats.feedbacks_skipped);
  EXPECT_EQ(stats.worst_slo_health, SloHealth::kCritical);
  EXPECT_EQ(stats.final_slo_health, SloHealth::kCritical);
  // The tightened admission visibly shed mid-drive.
  EXPECT_GT(stats.optimize_errors, 0u);
  EXPECT_GT(service->Stats().shard_shed_slo, 0u);
}

}  // namespace
}  // namespace robopt
