#include "serve/feedback.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>

namespace robopt {
namespace {

FeedbackEvent Event(double actual_s) {
  FeedbackEvent event;
  event.features = {1.0f, 2.0f};
  event.predicted_s = 1.5f;
  event.actual_s = actual_s;
  event.model_version = 1;
  return event;
}

TEST(FeedbackCollectorTest, DrainsInArrivalOrder) {
  FeedbackCollector collector(8);
  EXPECT_TRUE(collector.Offer(Event(1.0)));
  EXPECT_TRUE(collector.Offer(Event(2.0)));
  EXPECT_TRUE(collector.Offer(Event(3.0)));
  EXPECT_EQ(collector.size(), 3u);
  const auto events = collector.Drain();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_DOUBLE_EQ(events[0].actual_s, 1.0);
  EXPECT_DOUBLE_EQ(events[1].actual_s, 2.0);
  EXPECT_DOUBLE_EQ(events[2].actual_s, 3.0);
  EXPECT_EQ(collector.size(), 0u);
  EXPECT_TRUE(collector.Drain().empty());
}

TEST(FeedbackCollectorTest, EvictsOldestWhenFullWithoutBlocking) {
  FeedbackCollector collector(2);
  EXPECT_TRUE(collector.Offer(Event(1.0)));
  EXPECT_TRUE(collector.Offer(Event(2.0)));
  // The producer side must never block or grow the queue: execution
  // feedback is lossy by design. Ring semantics — the *oldest* event is
  // evicted, the newest observation is always kept.
  EXPECT_TRUE(collector.Offer(Event(3.0)));
  EXPECT_EQ(collector.size(), 2u);
  {
    const FeedbackStats stats = collector.stats();
    EXPECT_EQ(stats.offered, 3u);
    EXPECT_EQ(stats.accepted, 3u);
    EXPECT_EQ(stats.dropped, 1u);
  }
  const auto events = collector.Drain();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_DOUBLE_EQ(events[0].actual_s, 2.0);
  EXPECT_DOUBLE_EQ(events[1].actual_s, 3.0);
  // Draining frees capacity again; no further evictions.
  EXPECT_TRUE(collector.Offer(Event(4.0)));
  const FeedbackStats stats = collector.stats();
  EXPECT_EQ(stats.drained, 2u);
  EXPECT_EQ(stats.dropped, 1u);
}

TEST(FeedbackCollectorTest, EvictionCounterIsAccurateInBothOrders) {
  // Fill-then-overflow and alternate-offer-drain must both account every
  // event as exactly accepted or dropped or still queued.
  FeedbackCollector collector(3);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(collector.Offer(Event(i)));
  FeedbackStats stats = collector.stats();
  EXPECT_EQ(stats.offered, 10u);
  EXPECT_EQ(stats.accepted, 10u);
  EXPECT_EQ(stats.dropped, 7u);
  auto events = collector.Drain();
  ASSERT_EQ(events.size(), 3u);
  // The survivors are exactly the newest three, in arrival order.
  EXPECT_DOUBLE_EQ(events[0].actual_s, 7.0);
  EXPECT_DOUBLE_EQ(events[1].actual_s, 8.0);
  EXPECT_DOUBLE_EQ(events[2].actual_s, 9.0);

  // Interleaved order: drain between offers, so nothing ever overflows.
  FeedbackCollector interleaved(3);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(interleaved.Offer(Event(i)));
    EXPECT_EQ(interleaved.Drain().size(), 1u);
  }
  stats = interleaved.stats();
  EXPECT_EQ(stats.accepted, 10u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.drained, 10u);
}

TEST(FeedbackCollectorTest, RejectsNonFiniteRuntimes) {
  FeedbackCollector collector(4);
  // An OOM reports +inf virtual seconds; NaN would be a measurement bug.
  // Neither may reach training, and neither evicts a queued event.
  EXPECT_TRUE(collector.Offer(Event(1.0)));
  EXPECT_FALSE(collector.Offer(Event(std::numeric_limits<double>::infinity())));
  EXPECT_FALSE(
      collector.Offer(Event(-std::numeric_limits<double>::infinity())));
  EXPECT_FALSE(collector.Offer(Event(std::nan(""))));
  EXPECT_EQ(collector.size(), 1u);
  const FeedbackStats stats = collector.stats();
  EXPECT_EQ(stats.offered, 4u);
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.rejected_nonfinite, 3u);
  EXPECT_EQ(stats.dropped, 0u);
  const auto events = collector.Drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_DOUBLE_EQ(events[0].actual_s, 1.0);
}

TEST(FeedbackCollectorTest, RecordFailureCounts) {
  FeedbackCollector collector(2);
  collector.RecordFailure();
  collector.RecordFailure();
  EXPECT_EQ(collector.stats().failures, 2u);
  EXPECT_EQ(collector.size(), 0u);  // Failures enqueue nothing.
}

TEST(FeedbackCollectorTest, ConcurrentProducersLoseNothingBelowCapacity) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 250;
  FeedbackCollector collector(kThreads * kPerThread);
  std::vector<std::thread> producers;
  producers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&collector, t] {
      for (int i = 0; i < kPerThread; ++i) {
        FeedbackEvent event;
        event.model_version = static_cast<uint64_t>(t);
        event.actual_s = i;
        collector.Offer(std::move(event));
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  const auto events = collector.Drain();
  EXPECT_EQ(events.size(), size_t{kThreads} * kPerThread);
  const FeedbackStats stats = collector.stats();
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.drained, events.size());
  // Per-producer order is preserved even though producers interleave.
  std::vector<double> last(kThreads, -1.0);
  for (const FeedbackEvent& event : events) {
    EXPECT_GT(event.actual_s, last[event.model_version]);
    last[event.model_version] = event.actual_s;
  }
}

}  // namespace
}  // namespace robopt
