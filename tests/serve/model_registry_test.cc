#include "serve/model_registry.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace robopt {
namespace {

/// A tiny forest predicting (roughly) a constant, distinguishable per label.
std::shared_ptr<RandomForest> TinyForest(float label, uint64_t seed = 1) {
  MlDataset data(1);
  Rng rng(seed);
  for (int i = 0; i < 50; ++i) {
    const float x = static_cast<float>(rng.NextUniform(0, 1));
    data.Add({x}, label);
  }
  RandomForest::Params params;
  params.num_trees = 5;
  params.log_label = false;
  params.seed = seed;
  auto forest = std::make_shared<RandomForest>(params);
  EXPECT_TRUE(forest->Train(data).ok());
  return forest;
}

float PredictVia(const CostOracle& oracle) {
  const float x = 0.5f;
  float out = 0.0f;
  oracle.EstimateBatch(&x, 1, 1, &out);
  return out;
}

TEST(ModelRegistryTest, StartsEmpty) {
  ModelRegistry registry;
  EXPECT_EQ(registry.Current(), nullptr);
  EXPECT_EQ(registry.current_version(), 0u);
  EXPECT_EQ(registry.num_published(), 0u);
  const PinnedOracle pinned = registry.Acquire();
  EXPECT_EQ(pinned.oracle, nullptr);
  EXPECT_EQ(pinned.version, 0u);
}

TEST(ModelRegistryTest, PublishesSequentialVersionsAndStampsMeta) {
  ModelRegistry registry;
  auto v1 = TinyForest(1.0f);
  auto v2 = TinyForest(2.0f);
  EXPECT_EQ(registry.Publish(v1, 0.25), 1u);
  EXPECT_EQ(v1->meta().version, 1u);
  EXPECT_EQ(registry.Publish(v2, 0.125), 2u);
  EXPECT_EQ(v2->meta().version, 2u);
  EXPECT_EQ(registry.current_version(), 2u);
  EXPECT_EQ(registry.num_published(), 2u);
  const auto current = registry.Current();
  ASSERT_NE(current, nullptr);
  EXPECT_EQ(current->version(), 2u);
  EXPECT_DOUBLE_EQ(current->holdout_mae(), 0.125);
  EXPECT_DOUBLE_EQ(registry.Get(1)->holdout_mae(), 0.25);
}

TEST(ModelRegistryTest, HistoryIsBounded) {
  ModelRegistry registry(/*history=*/2);
  for (int i = 0; i < 4; ++i) {
    registry.Publish(TinyForest(static_cast<float>(i + 1)), 0.0);
  }
  EXPECT_EQ(registry.Get(1), nullptr);
  EXPECT_EQ(registry.Get(2), nullptr);
  ASSERT_NE(registry.Get(3), nullptr);
  ASSERT_NE(registry.Get(4), nullptr);
  EXPECT_EQ(registry.current_version(), 4u);
  EXPECT_EQ(registry.num_published(), 4u);
}

TEST(ModelRegistryTest, AcquirePinsAcrossPublish) {
  ModelRegistry registry;
  registry.Publish(TinyForest(10.0f), 0.0);
  const PinnedOracle pinned = registry.Acquire();
  ASSERT_NE(pinned.oracle, nullptr);
  EXPECT_EQ(pinned.version, 1u);
  const float before = PredictVia(*pinned.oracle);

  // Hot-swap in a very different model; the pinned oracle must keep
  // predicting from version 1 — even after the registry's history forgets
  // it entirely.
  ModelRegistry* reg = &registry;
  for (int i = 0; i < 20; ++i) reg->Publish(TinyForest(1000.0f), 0.0);
  EXPECT_EQ(registry.Get(1), nullptr);  // Evicted from history.
  EXPECT_EQ(registry.current_version(), 21u);
  EXPECT_EQ(PredictVia(*pinned.oracle), before);
  EXPECT_NEAR(before, 10.0f, 1.0f);
  EXPECT_GT(PredictVia(*registry.Acquire().oracle), 500.0f);
}

TEST(ModelRegistryTest, DriftEwmaSeedsThenSmooths) {
  ModelRegistry registry;
  registry.Publish(TinyForest(1.0f), 0.0);
  const auto snapshot = registry.Current();
  EXPECT_EQ(snapshot->drift().observations, 0u);
  snapshot->ObserveError(1.0, /*alpha=*/0.5);
  // First observation seeds the EWMA rather than decaying from zero.
  EXPECT_DOUBLE_EQ(snapshot->drift().error_ewma, 1.0);
  snapshot->ObserveError(2.0, 0.5);
  EXPECT_DOUBLE_EQ(snapshot->drift().error_ewma, 1.5);
  EXPECT_EQ(snapshot->drift().observations, 2u);
  // Drift is per-version: a new version starts a fresh curve.
  registry.Publish(TinyForest(2.0f), 0.0);
  EXPECT_EQ(registry.Current()->drift().observations, 0u);
}

TEST(ModelRegistryTest, UnvalidatedPublishRecordsNanMae) {
  ModelRegistry registry;
  registry.Publish(TinyForest(1.0f), std::nan(""));
  EXPECT_TRUE(std::isnan(registry.Current()->holdout_mae()));
}

TEST(ModelRegistryTest, QuantizedOracleExposedOnlyWhenValidated) {
  ModelRegistry registry;
  // Default publish: the quantized tables exist but were never validated
  // against a holdout, so Acquire must not hand them out.
  registry.Publish(TinyForest(3.0f), 0.0);
  EXPECT_FALSE(registry.Current()->quantized_validated());
  EXPECT_EQ(registry.Acquire().quantized_oracle, nullptr);

  registry.Publish(TinyForest(3.0f, /*seed=*/2), 0.0,
                   /*quantized_validated=*/true);
  EXPECT_TRUE(registry.Current()->quantized_validated());
  const PinnedOracle pinned = registry.Acquire();
  ASSERT_NE(pinned.quantized_oracle, nullptr);
  // The quantized oracle shares the pinned snapshot's forest; its estimate
  // must track the exact oracle closely (1-D data, tiny threshold range).
  EXPECT_NEAR(PredictVia(*pinned.quantized_oracle), PredictVia(*pinned.oracle),
              0.25f);
}

}  // namespace
}  // namespace robopt
