#include "serve/plan_cache.h"

#include <gtest/gtest.h>

namespace robopt {
namespace {

PlanCacheKey Key(uint64_t lo) {
  PlanCacheKey key;
  key.plan.lo = lo;
  key.plan.hi = ~lo;
  return key;
}

/// Canonical node-hash sequence every test entry is stored under.
const std::vector<uint64_t> kHashes = {10, 20, 30};

PlanCache::Entry Entry(uint64_t version, float predicted = 1.0f) {
  PlanCache::Entry entry;
  entry.assignment = {{10, 0}, {20, 1}, {30, 2}};
  entry.predicted_runtime_s = predicted;
  entry.model_version = version;
  return entry;
}

TEST(PlanCacheTest, HitReturnsInsertedEntry) {
  PlanCache cache(4);
  EXPECT_TRUE(cache.enabled());
  cache.Insert(Key(1), Entry(7, 3.5f));
  PlanCache::Entry out;
  ASSERT_TRUE(cache.Lookup(Key(1), /*current_version=*/7, kHashes, &out));
  EXPECT_EQ(out.model_version, 7u);
  EXPECT_FLOAT_EQ(out.predicted_runtime_s, 3.5f);
  EXPECT_EQ(out.assignment, Entry(7).assignment);
  EXPECT_FALSE(cache.Lookup(Key(2), 7, kHashes, &out));
  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(PlanCacheTest, KeyDistinguishesCardsAndOptions) {
  PlanCache cache(8);
  PlanCacheKey base = Key(1);
  cache.Insert(base, Entry(1));
  PlanCacheKey other_cards = base;
  other_cards.cards_hash = 99;
  PlanCacheKey other_options = base;
  other_options.options_hash = 99;
  PlanCache::Entry out;
  EXPECT_TRUE(cache.Lookup(base, 1, kHashes, &out));
  EXPECT_FALSE(cache.Lookup(other_cards, 1, kHashes, &out));
  EXPECT_FALSE(cache.Lookup(other_options, 1, kHashes, &out));
}

TEST(PlanCacheTest, StaleVersionIsLazilyInvalidated) {
  PlanCache cache(4);
  cache.Insert(Key(1), Entry(1));
  PlanCache::Entry out;
  // A promotion happened: the same key under version 2 must miss, and the
  // stale entry must be gone afterwards (not resurrected by version 1).
  EXPECT_FALSE(cache.Lookup(Key(1), 2, kHashes, &out));
  EXPECT_FALSE(cache.Lookup(Key(1), 1, kHashes, &out));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(PlanCacheTest, NodeHashMismatchIsAMissAndDropsTheEntry) {
  PlanCache cache(4);
  cache.Insert(Key(1), Entry(1));
  PlanCache::Entry out;
  // Same full key, different canonical node hashes: a fingerprint collision
  // between structurally different plans. Serving the entry would put alts
  // on the wrong operators — it must miss and be dropped, never returned.
  const std::vector<uint64_t> other = {10, 20, 31};
  EXPECT_FALSE(cache.Lookup(Key(1), 1, other, &out));
  const std::vector<uint64_t> shorter = {10, 20};
  cache.Insert(Key(1), Entry(1));
  EXPECT_FALSE(cache.Lookup(Key(1), 1, shorter, &out));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().invalidations, 2u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(PlanCacheTest, InvalidateAllEmptiesTheCache) {
  PlanCache cache(4);
  cache.Insert(Key(1), Entry(1));
  cache.Insert(Key(2), Entry(1));
  cache.InvalidateAll();
  EXPECT_EQ(cache.size(), 0u);
  PlanCache::Entry out;
  EXPECT_FALSE(cache.Lookup(Key(1), 1, kHashes, &out));
  EXPECT_EQ(cache.stats().invalidations, 2u);
}

TEST(PlanCacheTest, EvictsLeastRecentlyUsed) {
  PlanCache cache(2);
  cache.Insert(Key(1), Entry(1));
  cache.Insert(Key(2), Entry(1));
  PlanCache::Entry out;
  // Touch key 1 so key 2 becomes the LRU victim.
  ASSERT_TRUE(cache.Lookup(Key(1), 1, kHashes, &out));
  cache.Insert(Key(3), Entry(1));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Lookup(Key(1), 1, kHashes, &out));
  EXPECT_FALSE(cache.Lookup(Key(2), 1, kHashes, &out));
  EXPECT_TRUE(cache.Lookup(Key(3), 1, kHashes, &out));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(PlanCacheTest, ReinsertReplacesInPlace) {
  PlanCache cache(2);
  cache.Insert(Key(1), Entry(1, 1.0f));
  cache.Insert(Key(1), Entry(2, 2.0f));
  EXPECT_EQ(cache.size(), 1u);
  PlanCache::Entry out;
  ASSERT_TRUE(cache.Lookup(Key(1), 2, kHashes, &out));
  EXPECT_FLOAT_EQ(out.predicted_runtime_s, 2.0f);
}

TEST(PlanCacheTest, ZeroCapacityDisablesCaching) {
  PlanCache cache(0);
  EXPECT_FALSE(cache.enabled());
  cache.Insert(Key(1), Entry(1));
  EXPECT_EQ(cache.size(), 0u);
  PlanCache::Entry out;
  EXPECT_FALSE(cache.Lookup(Key(1), 1, kHashes, &out));
}

TEST(PlanCacheTest, HashOptionsCoversSearchRelevantFields) {
  OptimizeOptions base;
  const uint64_t h = PlanCache::HashOptions(base);

  OptimizeOptions mask = base;
  mask.allowed_platform_mask = 0b11;
  EXPECT_NE(PlanCache::HashOptions(mask), h);

  OptimizeOptions single = base;
  single.single_platform = true;
  EXPECT_NE(PlanCache::HashOptions(single), h);

  OptimizeOptions prune = base;
  prune.prune = PruneMode::kNone;
  EXPECT_NE(PlanCache::HashOptions(prune), h);

  // num_threads and oracle_cache_bytes are documented as bit-identical
  // knobs: they must NOT change the key, or repeat queries would miss.
  OptimizeOptions threads = base;
  threads.num_threads = 7;
  threads.oracle_cache_bytes = 1 << 20;
  EXPECT_EQ(PlanCache::HashOptions(threads), h);
}

}  // namespace
}  // namespace robopt
