#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "serve/optimizer_service.h"
#include "tdgen/tdgen.h"
#include "workloads/datagen.h"
#include "workloads/queries.h"

namespace robopt {
namespace {

/// Soak coverage of the sharded serving path (run under TSan in CI):
/// concurrent Optimize() across shards while model promotions, breaker
/// trips/recoveries and plan-cache invalidations fire — plans must stay
/// bit-identical to the single-shard service and no invalidation may be
/// lost on any shard. Worker threads record mismatches into atomics and the
/// main thread asserts after joining (gtest failure recording is not
/// thread-safe).
class ShardSoakTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    RegisterWorkloadKernels();
    registry_ = new PlatformRegistry(PlatformRegistry::Default(2));
    schema_ = new FeatureSchema(registry_);
    TdgenOptions options;
    options.plans_per_shape = 4;
    options.max_operators = 10;
    options.max_structures_per_plan = 16;
    options.seed = 321;
    VirtualCost cost(registry_);
    Executor plain(registry_, &cost);
    Tdgen tdgen(registry_, schema_, &plain, options);
    auto base = tdgen.Generate();
    ASSERT_TRUE(base.ok()) << base.status().ToString();
    base_ = new MlDataset(std::move(base.value()));
    RandomForest::Params params;
    params.num_trees = 10;
    forest_ = new std::shared_ptr<RandomForest>(
        std::make_shared<RandomForest>(params));
    ASSERT_TRUE((*forest_)->Train(*base_).ok());
  }

  static ServeOptions ShardedServeOptions(int num_shards) {
    ServeOptions options;
    options.background_retrain = false;
    options.forest.num_trees = 20;
    options.num_shards = num_shards;
    options.shard_queue_capacity = 256;
    return options;
  }

  static PlatformRegistry* registry_;
  static FeatureSchema* schema_;
  static MlDataset* base_;
  /// One deterministic forest shared by every service and every chaos
  /// publish: all versions predict identically, so served plans are
  /// bit-identical no matter which promotion a request races with.
  static std::shared_ptr<RandomForest>* forest_;
};

PlatformRegistry* ShardSoakTest::registry_ = nullptr;
FeatureSchema* ShardSoakTest::schema_ = nullptr;
MlDataset* ShardSoakTest::base_ = nullptr;
std::shared_ptr<RandomForest>* ShardSoakTest::forest_ = nullptr;

constexpr PlatformId kSpark = 1;  // Platform 0 hosts the driver-pinned ops.

TEST_F(ShardSoakTest, PlansStayBitIdenticalToSingleShardUnderChaos) {
  const std::vector<double> sizes = {0.001, 0.002, 0.004,
                                     0.008, 0.016, 0.032};
  // Requests stay on the driver platform, so the chaos thread's Spark
  // breaker flaps change the cache key (exclusion mask) but never the
  // effective search space — plans must not move.
  OptimizeOptions java_only;
  java_only.allowed_platform_mask = 1ull << 0;

  // Ground truth: the legacy single-instance path, no chaos.
  auto reference = OptimizerService::Create(registry_, schema_, *base_,
                                            *forest_, ShardedServeOptions(1));
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_EQ((*reference)->num_shards(), 1);
  struct RefPlan {
    float predicted = 0.0f;
    std::vector<std::pair<OperatorId, int>> alts;
  };
  std::vector<RefPlan> refs;
  for (double size : sizes) {
    LogicalPlan plan = MakeWordCountPlan(size);
    auto result = (*reference)->Optimize(plan, nullptr, java_only);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    RefPlan ref;
    ref.predicted = result->optimize.predicted_runtime_s;
    for (const LogicalOperator& op : plan.operators()) {
      ref.alts.emplace_back(op.id, result->optimize.plan.alt_index(op.id));
    }
    refs.push_back(std::move(ref));
  }

  ServeOptions sharded_options = ShardedServeOptions(4);
  sharded_options.breaker.failure_threshold = 3;
  sharded_options.breaker.cooldown_s = 1.0;
  auto sharded = OptimizerService::Create(registry_, schema_, *base_,
                                          *forest_, sharded_options);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  ASSERT_EQ((*sharded)->num_shards(), 4);
  OptimizerService* service = sharded->get();

  constexpr int kWorkers = 4;
  constexpr int kIters = 20;
  constexpr int kChaosRounds = 6;
  std::atomic<uint64_t> mismatches{0};
  std::atomic<uint64_t> failures{0};

  // Chaos: promotions (identical model), no-op retrain cycles, and full
  // breaker trip/recover flaps on Spark — all racing the serving threads.
  std::thread chaos([&] {
    PlatformHealth* health = service->health();
    for (int round = 0; round < kChaosRounds; ++round) {
      service->PublishExternal(*forest_);
      (void)service->RetrainNow(/*force=*/false);
      for (int i = 0; i < sharded_options.breaker.failure_threshold; ++i) {
        health->RecordFailure(kSpark);
      }
      health->AdvanceClock(sharded_options.breaker.cooldown_s);
      (void)health->state(kSpark);  // Applies open -> half-open.
      health->RecordSuccess(kSpark);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::vector<std::thread> workers;
  workers.reserve(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      RequestContext ctx;
      ctx.tenant = static_cast<uint64_t>(w);
      ctx.deadline_s = -1.0;  // Never shed: every plan must be served.
      for (int iter = 0; iter < kIters; ++iter) {
        for (size_t p = 0; p < sizes.size(); ++p) {
          LogicalPlan plan = MakeWordCountPlan(sizes[p]);
          auto result = service->Optimize(plan, nullptr, java_only, ctx);
          if (!result.ok()) {
            failures.fetch_add(1);
            continue;
          }
          if (result->optimize.predicted_runtime_s != refs[p].predicted) {
            mismatches.fetch_add(1);
          }
          for (const auto& [op_id, alt] : refs[p].alts) {
            if (result->optimize.plan.alt_index(op_id) != alt) {
              mismatches.fetch_add(1);
            }
          }
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  chaos.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);

  const ServeStats stats = service->Stats();
  constexpr uint64_t kTotal =
      static_cast<uint64_t>(kWorkers) * kIters * 6 /* sizes */;
  EXPECT_EQ(stats.num_shards, 4);
  ASSERT_EQ(stats.shards.size(), 4u);
  EXPECT_EQ(stats.shard_processed, kTotal);
  EXPECT_EQ(stats.shard_shed_queue_full, 0u);
  EXPECT_EQ(stats.shard_shed_deadline, 0u);
  EXPECT_EQ(stats.shard_queue_depth, 0u);
  uint64_t routed = 0;
  for (const ShardStats& shard : stats.shards) {
    routed += shard.routed;
    EXPECT_EQ(shard.queue_depth, 0u);
  }
  EXPECT_EQ(routed, kTotal);
  // Every chaos publish landed (v1 + kChaosRounds external pushes).
  EXPECT_EQ(stats.current_version, 1u + kChaosRounds);
  // The chaos trips were observed by the breaker plane.
  EXPECT_EQ(stats.recovery.breaker_trips,
            static_cast<uint64_t>(kChaosRounds));
  EXPECT_EQ(stats.recovery.breaker_recoveries,
            static_cast<uint64_t>(kChaosRounds));
}

TEST_F(ShardSoakTest, BreakerTripInvalidatesEveryShardWithoutLoss) {
  const std::vector<double> sizes = {0.001, 0.002, 0.004, 0.008,
                                     0.016, 0.032, 0.064, 0.128};
  ServeOptions options = ShardedServeOptions(4);
  options.breaker.failure_threshold = 3;
  options.breaker.cooldown_s = 1e9;
  auto service = OptimizerService::Create(registry_, schema_, *base_,
                                          *forest_, options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  // Warm every shard's cache with plans that route through Spark.
  OptimizeOptions spark_only;
  spark_only.allowed_platform_mask = 1ull << kSpark;
  for (double size : sizes) {
    LogicalPlan plan = MakeWordCountPlan(size);
    auto result = (*service)->Optimize(plan, nullptr, spark_only);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    bool uses_spark = false;
    for (PlatformId p : result->optimize.plan.PlatformsUsed()) {
      uses_spark |= p == kSpark;
    }
    ASSERT_TRUE(uses_spark);
  }
  ASSERT_EQ((*service)->Stats().plan_cache.insertions, sizes.size());

  // Spark goes dark. The invalidation fans out lazily: each shard
  // reconciles the trip epoch on its next request entry.
  for (int i = 0; i < options.breaker.failure_threshold; ++i) {
    (*service)->health()->RecordFailure(kSpark);
  }
  ASSERT_EQ((*service)->health()->state(kSpark), BreakerState::kOpen);

  // Re-optimize every query unrestricted: each result must avoid Spark,
  // and touching each owning shard must drop its cached Spark plans.
  for (double size : sizes) {
    LogicalPlan plan = MakeWordCountPlan(size);
    auto result = (*service)->Optimize(plan);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_FALSE(result->cache_hit);
    for (PlatformId p : result->optimize.plan.PlatformsUsed()) {
      EXPECT_NE(p, kSpark);
    }
  }

  const ServeStats stats = (*service)->Stats();
  EXPECT_EQ(stats.recovery.open_platform_mask, 1ull << kSpark);
  // Zero lost invalidations: every warmed Spark plan was dropped, across
  // all shards.
  EXPECT_EQ(stats.recovery.plans_invalidated_on_trip, sizes.size());
  EXPECT_EQ(stats.plan_cache.platform_invalidations, sizes.size());
  EXPECT_GE(stats.recovery.masked_optimizes, sizes.size());
}

TEST_F(ShardSoakTest, EstimatedDelayPastDeadlineShedsDeterministically) {
  ServeOptions options = ShardedServeOptions(2);
  // Impossibly tight default deadline: once the shard has any service-time
  // EWMA, (depth + 1) * ewma exceeds it and admission must shed.
  options.default_deadline_s = 1e-12;
  auto service = OptimizerService::Create(registry_, schema_, *base_,
                                          *forest_, options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  LogicalPlan plan = MakeWordCountPlan(0.001);

  // First request: deadline explicitly disabled, establishes the EWMA.
  RequestContext no_deadline;
  no_deadline.deadline_s = -1.0;
  auto first =
      (*service)->Optimize(plan, nullptr, options.optimize, no_deadline);
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  // Second request: defaults to the tiny deadline and sheds up front.
  auto shed = (*service)->Optimize(plan);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);

  // Explicitly opting out of the deadline bypasses shedding (and hits the
  // cache warmed by the first request).
  auto served =
      (*service)->Optimize(plan, nullptr, options.optimize, no_deadline);
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  EXPECT_TRUE(served->cache_hit);

  const ServeStats stats = (*service)->Stats();
  EXPECT_EQ(stats.shard_shed_deadline, 1u);
  EXPECT_EQ(stats.shard_shed_queue_full, 0u);
  EXPECT_EQ(stats.shard_processed, 2u);
}

TEST_F(ShardSoakTest, FullAdmissionQueueShedsUnderConcurrency) {
  ServeOptions options = ShardedServeOptions(2);
  options.shard_queue_capacity = 1;  // One outstanding request per shard.
  auto service = OptimizerService::Create(registry_, schema_, *base_,
                                          *forest_, options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  OptimizerService* svc = service->get();

  constexpr int kThreads = 6;
  constexpr int kMaxAttempts = 500;
  std::atomic<uint64_t> served{0};
  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> other_errors{0};
  std::atomic<uint64_t> next_plan{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      // Every attempt uses a fresh plan, so each Optimize is a full (slow)
      // cold enumeration — long enough a window that concurrent attempts
      // overlap it even on one core. Stop once a shed was observed.
      for (int i = 0; i < kMaxAttempts && shed.load() == 0; ++i) {
        const uint64_t n = next_plan.fetch_add(1);
        LogicalPlan plan = MakeWordCountPlan(0.001 + 1e-6 * n);
        auto result = svc->Optimize(plan);
        if (result.ok()) {
          served.fetch_add(1);
        } else if (result.status().code() == StatusCode::kResourceExhausted) {
          shed.fetch_add(1);
        } else {
          other_errors.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(other_errors.load(), 0u);
  EXPECT_GT(served.load(), 0u);
  EXPECT_GT(shed.load(), 0u) << "capacity-1 queue never filled";
  const ServeStats stats = svc->Stats();
  EXPECT_EQ(stats.shard_processed, served.load());
  EXPECT_EQ(stats.shard_shed_queue_full, shed.load());
  EXPECT_EQ(stats.shard_shed_deadline, 0u);
  EXPECT_EQ(stats.shard_queue_depth, 0u);
}

TEST_F(ShardSoakTest, SustainedImbalanceMigratesCacheEntriesIntact) {
  ServeOptions options = ShardedServeOptions(2);
  options.rebalance_min_checks = 1;
  options.rebalance_imbalance_factor = 1.5;
  auto service = OptimizerService::Create(registry_, schema_, *base_,
                                          *forest_, options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  // Collect plans that all route to one shard (the soon-to-be-hot one).
  const uint32_t hot = (*service)->ShardFor(0, MakeWordCountPlan(0.001));
  std::vector<double> hot_sizes;
  for (double size = 0.001; hot_sizes.size() < 6 && size < 1.0;
       size *= 1.25) {
    if ((*service)->ShardFor(0, MakeWordCountPlan(size)) == hot) {
      hot_sizes.push_back(size);
    }
  }
  ASSERT_EQ(hot_sizes.size(), 6u) << "could not find enough same-shard plans";

  std::vector<float> predicted;
  for (double size : hot_sizes) {
    LogicalPlan plan = MakeWordCountPlan(size);
    auto result = (*service)->Optimize(plan);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    predicted.push_back(result->optimize.predicted_runtime_s);
  }

  // One observation window, all load on one shard: the next check must
  // migrate hot slots (and their cache entries) to the cold shard.
  const size_t migrated = (*service)->RebalanceNow();
  EXPECT_GT(migrated, 0u);
  {
    const ServeStats stats = (*service)->Stats();
    EXPECT_EQ(stats.router_rebalances, 1u);
    EXPECT_GE(stats.router_slots_moved, 1u);
    EXPECT_EQ(stats.plan_cache.migrated_in, migrated);
    EXPECT_EQ(stats.plan_cache.migrated_out, migrated);
  }

  // Migrated entries serve from their new shard: still hits, identical
  // predictions.
  size_t hits = 0;
  for (size_t i = 0; i < hot_sizes.size(); ++i) {
    LogicalPlan plan = MakeWordCountPlan(hot_sizes[i]);
    auto result = (*service)->Optimize(plan);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->optimize.predicted_runtime_s, predicted[i]);
    hits += result->cache_hit ? 1 : 0;
  }
  EXPECT_EQ(hits, hot_sizes.size());
  // A rebalanced key routes to the destination shard now.
  size_t moved_keys = 0;
  for (double size : hot_sizes) {
    moved_keys +=
        (*service)->ShardFor(0, MakeWordCountPlan(size)) != hot ? 1 : 0;
  }
  EXPECT_GT(moved_keys, 0u);
}

TEST_F(ShardSoakTest, StatsAndExportSurfaceShardDimensions) {
  auto sharded = OptimizerService::Create(registry_, schema_, *base_,
                                          *forest_, ShardedServeOptions(4));
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  LogicalPlan plan = MakeWordCountPlan(0.001);
  ASSERT_TRUE((*sharded)->Optimize(plan).ok());
  const ServeStats stats = (*sharded)->Stats();
  EXPECT_EQ(stats.num_shards, 4);
  ASSERT_EQ(stats.shards.size(), 4u);
  // The feedback collector stripes its drop counters per shard.
  EXPECT_EQ(stats.feedback.stripe_dropped.size(), 4u);
  // Per-shard gauges only exist in sharded mode; aggregates always do.
  const std::string prom = (*sharded)->ExportPrometheus();
  EXPECT_NE(prom.find("robopt_shard_count 4"), std::string::npos);
  EXPECT_NE(prom.find("robopt_shard_processed_total 1"), std::string::npos);
  EXPECT_NE(prom.find("robopt_shard_routed{shard=\"0\"}"), std::string::npos);

  auto legacy = OptimizerService::Create(registry_, schema_, *base_,
                                         *forest_, ShardedServeOptions(1));
  ASSERT_TRUE(legacy.ok());
  const ServeStats legacy_stats = (*legacy)->Stats();
  EXPECT_EQ(legacy_stats.num_shards, 1);
  EXPECT_TRUE(legacy_stats.shards.empty());
  const std::string legacy_prom = (*legacy)->ExportPrometheus();
  EXPECT_NE(legacy_prom.find("robopt_shard_count 1"), std::string::npos);
  EXPECT_EQ(legacy_prom.find("robopt_shard_routed{shard="), std::string::npos);
}

}  // namespace
}  // namespace robopt
