/// Per-query decision diagnostics on the serving path:
///   - diagnostics + SLO instrumentation change nothing observable about
///     served plans (bit-identical assignments, predictions and stats);
///   - the DecisionRecord carries the layered story: cache cold -> hit,
///     runner-up plans ordered by predicted cost, model version, masks;
///   - the recent-queries ring is bounded, ordered and JSON-exportable;
///   - concurrent serving + collection is race-free and the ring's
///     recorded/dropped accounting balances (TSan CI leg via serve_test).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "exec/executor.h"
#include "obs/decision.h"
#include "serve/optimizer_service.h"
#include "serve/plan_cache.h"
#include "tdgen/tdgen.h"
#include "workloads/queries.h"

namespace robopt {
namespace {

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

class DiagnosticsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    RegisterWorkloadKernels();
    registry_ = new PlatformRegistry(PlatformRegistry::Default(2));
    schema_ = new FeatureSchema(registry_);
    cost_ = new VirtualCost(registry_);
    TdgenOptions options;
    options.plans_per_shape = 4;
    options.max_operators = 10;
    options.max_structures_per_plan = 16;
    options.seed = 99;
    Executor plain(registry_, cost_);
    Tdgen tdgen(registry_, schema_, &plain, options);
    auto base = tdgen.Generate();
    ASSERT_TRUE(base.ok()) << base.status().ToString();
    base_ = new MlDataset(std::move(base.value()));
  }

  /// Model training is fully seeded, so two services built from the same
  /// base dataset serve the identical v1 model — the cross-service
  /// bit-identity comparisons below rely on that.
  static std::unique_ptr<OptimizerService> MakeService(ServeOptions options) {
    options.background_retrain = false;
    options.forest.num_trees = 20;
    if (options.num_shards == 0) options.num_shards = 1;
    auto service = OptimizerService::Create(registry_, schema_, *base_,
                                            /*initial=*/nullptr, options);
    EXPECT_TRUE(service.ok()) << service.status().ToString();
    return std::move(service.value());
  }

  static PlatformRegistry* registry_;
  static FeatureSchema* schema_;
  static VirtualCost* cost_;
  static MlDataset* base_;
};

PlatformRegistry* DiagnosticsTest::registry_ = nullptr;
FeatureSchema* DiagnosticsTest::schema_ = nullptr;
VirtualCost* DiagnosticsTest::cost_ = nullptr;
MlDataset* DiagnosticsTest::base_ = nullptr;

TEST_F(DiagnosticsTest, DiagnosticsAndSloAreBitIdenticalToPlainServing) {
  ServeOptions plain_options;
  auto plain = MakeService(plain_options);

  ServeOptions instrumented_options;
  instrumented_options.diagnostics.enabled = true;
  instrumented_options.slo.enabled = true;
  auto instrumented = MakeService(instrumented_options);

  const LogicalPlan plans[] = {MakeWordCountPlan(0.001),
                               MakeTpchQ3Plan(0.01)};
  for (const LogicalPlan& plan : plans) {
    auto base = plain->Optimize(plan);
    auto diag = instrumented->Optimize(plan);
    ASSERT_TRUE(base.ok()) << base.status().ToString();
    ASSERT_TRUE(diag.ok()) << diag.status().ToString();
    for (const LogicalOperator& op : plan.operators()) {
      EXPECT_EQ(diag->optimize.plan.alt_index(op.id),
                base->optimize.plan.alt_index(op.id));
    }
    EXPECT_EQ(diag->optimize.predicted_runtime_s,
              base->optimize.predicted_runtime_s);
    EXPECT_EQ(diag->optimize.model_version, base->optimize.model_version);
    EXPECT_EQ(diag->optimize.chosen_platform, base->optimize.chosen_platform);
    EXPECT_EQ(diag->optimize.stats.vectors_created,
              base->optimize.stats.vectors_created);
    EXPECT_EQ(diag->optimize.stats.vectors_pruned,
              base->optimize.stats.vectors_pruned);
    EXPECT_EQ(diag->optimize.stats.final_vectors,
              base->optimize.stats.final_vectors);
    EXPECT_EQ(diag->optimize.stats.concat_steps,
              base->optimize.stats.concat_steps);
    EXPECT_EQ(diag->optimize.stats.oracle_rows,
              base->optimize.stats.oracle_rows);
    EXPECT_EQ(diag->optimize.stats.oracle_batches,
              base->optimize.stats.oracle_batches);
  }
  // The plain service paid nothing for diagnostics it never asked for.
  EXPECT_TRUE(plain->RecentDecisions().empty());
  EXPECT_EQ(plain->ExportDecisionsJson(), "[\n\n]\n");
  // And the instrumented one saw every call.
  EXPECT_EQ(instrumented->RecentDecisions().size(), 2u);
}

TEST_F(DiagnosticsTest, RecordsTellTheCacheAndRunnerUpStory) {
  ServeOptions options;
  options.diagnostics.enabled = true;
  // Sharded, so the stale-version part below exercises the shards' *lazy*
  // invalidation (the legacy path drops entries eagerly on promotion).
  options.num_shards = 2;
  auto service = MakeService(options);

  const LogicalPlan plan = MakeWordCountPlan(0.001);
  RequestContext ctx;
  ctx.tenant = 42;
  auto first = service->Optimize(plan, nullptr, options.optimize, ctx);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->cache_hit);
  auto second = service->Optimize(plan, nullptr, options.optimize, ctx);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cache_hit);

  const std::vector<DecisionRecord> records = service->RecentDecisions();
  ASSERT_EQ(records.size(), 2u);

  const DecisionRecord& miss = records[0];
  const DecisionRecord& hit = records[1];
  // Oldest first, sequenced in request order, same query identity.
  EXPECT_LT(miss.seq, hit.seq);
  EXPECT_LE(miss.wall_us, hit.wall_us);
  EXPECT_EQ(miss.tenant, 42u);
  EXPECT_NE(miss.fp_lo | miss.fp_hi, 0u);
  EXPECT_EQ(miss.fp_lo, hit.fp_lo);
  EXPECT_EQ(miss.fp_hi, hit.fp_hi);
  EXPECT_EQ(miss.options_hash, hit.options_hash);
  // Same (tenant, fingerprint) -> same shard, which is why the repeat
  // lands on the warm cache slice.
  EXPECT_EQ(miss.shard, hit.shard);

  // First call: a cold miss that really optimized.
  EXPECT_EQ(miss.status, StatusCode::kOk);
  EXPECT_EQ(miss.shed, ShedReason::kNone);
  EXPECT_EQ(miss.cache, DecisionCacheResult::kMissCold);
  EXPECT_EQ(miss.model_version, first->optimize.model_version);
  EXPECT_EQ(miss.predicted_runtime_s, first->optimize.predicted_runtime_s);
  EXPECT_EQ(miss.vectors_created, first->optimize.stats.vectors_created);
  EXPECT_GT(miss.vectors_created, 0u);
  EXPECT_GT(miss.oracle_rows, 0u);
  EXPECT_GT(miss.latency_us, 0.0);
  EXPECT_FALSE(miss.quantized_used);
  EXPECT_EQ(miss.excluded_platform_mask, 0u);
  EXPECT_EQ(miss.open_breaker_mask, 0u);

  // Runner-ups: predicted costs no better than the served plan, ascending,
  // each identified by a non-zero assignment hash distinct from the others.
  ASSERT_GT(miss.num_runners, 0u);
  ASSERT_LE(miss.num_runners, kDecisionRunners);
  float prev = miss.predicted_runtime_s;
  for (uint32_t i = 0; i < miss.num_runners; ++i) {
    EXPECT_GE(miss.runners[i].predicted_runtime_s, prev) << i;
    EXPECT_NE(miss.runners[i].assignment_hash, 0u) << i;
    prev = miss.runners[i].predicted_runtime_s;
  }

  // Second call: a hit — served from the cache, so no enumeration stats
  // and no runner-ups, but the same plan identity and model version.
  EXPECT_EQ(hit.cache, DecisionCacheResult::kHit);
  EXPECT_EQ(hit.model_version, miss.model_version);
  EXPECT_EQ(hit.vectors_created, 0u);
  EXPECT_EQ(hit.num_runners, 0u);

  // A promotion invalidates the entry: the next call is a stale-version
  // miss, pinned to the new model.
  const uint64_t v2 = service->PublishExternal(
      std::make_shared<RandomForest>(service->registry().Current()->forest()));
  auto third = service->Optimize(plan, nullptr, options.optimize, ctx);
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(third->cache_hit);
  const std::vector<DecisionRecord> after = service->RecentDecisions();
  ASSERT_EQ(after.size(), 3u);
  EXPECT_EQ(after[2].cache, DecisionCacheResult::kMissStaleVersion);
  EXPECT_EQ(after[2].model_version, v2);
}

TEST_F(DiagnosticsTest, CacheDisabledRecordsSayDisabled) {
  ServeOptions options;
  options.diagnostics.enabled = true;
  options.plan_cache_capacity = 0;
  auto service = MakeService(options);
  const LogicalPlan plan = MakeWordCountPlan(0.001);
  ASSERT_TRUE(service->Optimize(plan).ok());
  ASSERT_TRUE(service->Optimize(plan).ok());
  const std::vector<DecisionRecord> records = service->RecentDecisions();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].cache, DecisionCacheResult::kDisabled);
  EXPECT_EQ(records[1].cache, DecisionCacheResult::kDisabled);
  // No cache key was ever computed; diagnostics fingerprinted on its own.
  EXPECT_NE(records[0].fp_lo | records[0].fp_hi, 0u);
  // Without a cache the repeat query re-enumerates and finds runner-ups.
  EXPECT_GT(records[1].num_runners, 0u);
}

TEST_F(DiagnosticsTest, RingIsBoundedOldestRecordsFallOff) {
  ServeOptions options;
  options.diagnostics.enabled = true;
  options.diagnostics.ring_capacity = 4;
  options.plan_cache_capacity = 0;
  auto service = MakeService(options);
  const LogicalPlan plan = MakeWordCountPlan(0.001);
  for (int i = 0; i < 10; ++i) {
    RequestContext ctx;
    ctx.tenant = static_cast<uint64_t>(i);
    ASSERT_TRUE(service->Optimize(plan, nullptr, options.optimize, ctx).ok());
  }
  const std::vector<DecisionRecord> records = service->RecentDecisions();
  ASSERT_EQ(records.size(), 4u);  // Capacity, not history.
  // The retained window is the most recent 4, oldest first.
  EXPECT_EQ(records[0].tenant, 6u);
  EXPECT_EQ(records[3].tenant, 9u);
  for (size_t i = 1; i < records.size(); ++i) {
    EXPECT_LT(records[i - 1].seq, records[i].seq);
  }
  // max_records trims from the old end.
  const std::vector<DecisionRecord> last_two = service->RecentDecisions(2);
  ASSERT_EQ(last_two.size(), 2u);
  EXPECT_EQ(last_two[0].tenant, 8u);
  EXPECT_EQ(last_two[1].tenant, 9u);
}

TEST_F(DiagnosticsTest, JsonExportIsWellFormedAndNamed) {
  ServeOptions options;
  options.diagnostics.enabled = true;
  auto service = MakeService(options);
  const LogicalPlan plan = MakeWordCountPlan(0.001);
  ASSERT_TRUE(service->Optimize(plan).ok());
  ASSERT_TRUE(service->Optimize(plan).ok());

  const std::string json = service->ExportDecisionsJson();
  EXPECT_TRUE(Contains(json, "\"seq\": 0"));
  EXPECT_TRUE(Contains(json, "\"cache\": \"miss_cold\""));
  EXPECT_TRUE(Contains(json, "\"cache\": \"hit\""));
  EXPECT_TRUE(Contains(json, "\"shed\": \"none\""));
  EXPECT_TRUE(Contains(json, "\"status\": \"ok\""));
  EXPECT_TRUE(Contains(json, "\"runners_up\": ["));
  EXPECT_TRUE(Contains(json, "\"assignment_hash\""));
  EXPECT_TRUE(Contains(json, "\"model_version\": 1"));

  // Ring health gauges ride the metrics snapshot.
  const MetricsSnapshot snap = service->SnapshotMetrics();
  EXPECT_DOUBLE_EQ(snap.Value("robopt_decisions_recorded_total", -1.0), 2.0);
  EXPECT_DOUBLE_EQ(snap.Value("robopt_decisions_dropped_total", -1.0), 0.0);
}

/// N threads serve through one diagnostics-enabled sharded service while a
/// collector thread drains the ring and exports JSON. The ring must account
/// for every request exactly once (recorded + dropped == calls) and the
/// sequence numbers must stay unique.
TEST_F(DiagnosticsTest, ConcurrentServingAndCollectionIsRaceFree) {
  ServeOptions options;
  options.diagnostics.enabled = true;
  options.diagnostics.ring_capacity = 64;
  options.slo.enabled = true;
  options.num_shards = 2;
  auto service = MakeService(options);

  constexpr int kThreads = 4;
  constexpr int kCallsPerThread = 50;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> ok_calls{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const LogicalPlan plan = MakeWordCountPlan(0.001);
      for (int i = 0; i < kCallsPerThread; ++i) {
        RequestContext ctx;
        ctx.tenant = static_cast<uint64_t>(t);
        auto result =
            service->Optimize(plan, nullptr, options.optimize, ctx);
        if (result.ok()) ok_calls.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::thread collector([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::vector<DecisionRecord> records = service->RecentDecisions();
      for (size_t i = 1; i < records.size(); ++i) {
        EXPECT_LT(records[i - 1].seq, records[i].seq);
      }
      (void)service->ExportDecisionsJson(8);
      service->EvaluateSloNow();
    }
  });
  for (std::thread& thread : threads) thread.join();
  stop.store(true, std::memory_order_relaxed);
  collector.join();

  EXPECT_EQ(ok_calls.load(), static_cast<uint64_t>(kThreads) *
                                 kCallsPerThread);
  const MetricsSnapshot snap = service->SnapshotMetrics();
  const double recorded = snap.Value("robopt_decisions_recorded_total", -1.0);
  const double dropped = snap.Value("robopt_decisions_dropped_total", -1.0);
  EXPECT_DOUBLE_EQ(recorded + dropped,
                   static_cast<double>(kThreads) * kCallsPerThread);
}

}  // namespace
}  // namespace robopt
