#include <gtest/gtest.h>

#include <cmath>

#include "serve/optimizer_service.h"
#include "tdgen/tdgen.h"
#include "workloads/datagen.h"
#include "workloads/queries.h"

namespace robopt {
namespace {

ExecutionPlan AllOn(const LogicalPlan& plan, const PlatformRegistry& registry,
                    PlatformId platform) {
  ExecutionPlan exec(&plan, &registry);
  for (const LogicalOperator& op : plan.operators()) {
    const auto& alts = registry.AlternativesFor(op.kind);
    for (size_t a = 0; a < alts.size(); ++a) {
      if (alts[a].platform == platform && alts[a].variant == 0) {
        exec.Assign(op.id, static_cast<int>(a));
        break;
      }
    }
  }
  return exec;
}

/// End-to-end fault recovery over the full stack: executors feed the
/// service-owned circuit breakers, a trip invalidates the affected cached
/// plans and masks the platform out of re-optimization, and a half-open
/// probe success recovers it — all on the deterministic virtual clock.
class RecoveryE2eTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    RegisterWorkloadKernels();
    registry_ = new PlatformRegistry(PlatformRegistry::Default(2));
    schema_ = new FeatureSchema(registry_);
    cost_ = new VirtualCost(registry_);
    TdgenOptions options;
    options.plans_per_shape = 4;
    options.max_operators = 10;
    options.max_structures_per_plan = 16;
    options.seed = 321;
    Executor plain(registry_, cost_);
    Tdgen tdgen(registry_, schema_, &plain, options);
    auto base = tdgen.Generate();
    ASSERT_TRUE(base.ok()) << base.status().ToString();
    base_ = new MlDataset(std::move(base.value()));
  }

  static ServeOptions RecoveryServeOptions(int threshold, double cooldown_s) {
    ServeOptions options;
    options.background_retrain = false;
    options.forest.num_trees = 20;
    options.breaker.failure_threshold = threshold;
    options.breaker.cooldown_s = cooldown_s;
    return options;
  }

  /// Executes `plan` assigned wholly to `platform` through an executor wired
  /// to the service (observer + breakers), under an optional permanent fault
  /// on that platform. Returns the execution status.
  static Status ExecuteOn(OptimizerService* service, const LogicalPlan& plan,
                          PlatformId platform, bool inject_permanent_fault) {
    DataCatalog catalog;
    catalog.Bind(plan.SourceIds()[0], GenerateTextLines(1000, 1000, 5));
    ExecutorOptions exec_options;
    exec_options.observer = service;
    exec_options.health = service->health();
    if (inject_permanent_fault) {
      exec_options.fault_plan.profiles.push_back(
          FaultProfile{static_cast<int>(platform), kAnyOpKind,
                       /*failure_rate=*/1.0, /*fail_on_invocation=*/0,
                       /*permanent=*/true, /*slowdown=*/1.0});
    }
    Executor executor(registry_, cost_, nullptr, exec_options);
    return executor.Execute(AllOn(plan, *registry_, platform), catalog)
        .status();
  }

  static PlatformRegistry* registry_;
  static FeatureSchema* schema_;
  static VirtualCost* cost_;
  static MlDataset* base_;
};

PlatformRegistry* RecoveryE2eTest::registry_ = nullptr;
FeatureSchema* RecoveryE2eTest::schema_ = nullptr;
VirtualCost* RecoveryE2eTest::cost_ = nullptr;
MlDataset* RecoveryE2eTest::base_ = nullptr;

TEST_F(RecoveryE2eTest, PermanentOutageTripsBreakerAndReoptimizesAroundIt) {
  constexpr int kThreshold = 3;
  constexpr PlatformId kSpark = 1;  // Platform 0 hosts the driver-pinned ops.
  auto service = OptimizerService::Create(
      registry_, schema_, *base_, nullptr,
      RecoveryServeOptions(kThreshold, /*cooldown_s=*/1e9));
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  // Warm the cache with a plan that routes through Spark.
  LogicalPlan plan = MakeWordCountPlan(0.001);
  OptimizeOptions spark_only;
  spark_only.allowed_platform_mask = 1ull << kSpark;
  auto spark_plan = (*service)->Optimize(plan, nullptr, spark_only);
  ASSERT_TRUE(spark_plan.ok()) << spark_plan.status().ToString();
  bool uses_spark = false;
  for (PlatformId p : spark_plan->optimize.plan.PlatformsUsed()) {
    uses_spark |= p == kSpark;
  }
  ASSERT_TRUE(uses_spark);
  ASSERT_GE((*service)->Stats().plan_cache.insertions, 1u);

  // Spark goes permanently dark: every execution against it dies until the
  // breaker trips at the consecutive-failure threshold.
  for (int i = 0; i < kThreshold; ++i) {
    // Below the threshold the breaker is still closed.
    EXPECT_EQ((*service)->health()->state(kSpark), BreakerState::kClosed);
    const Status status =
        ExecuteOn(service->get(), plan, kSpark, /*inject_permanent_fault=*/true);
    EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  }
  EXPECT_EQ((*service)->health()->state(kSpark), BreakerState::kOpen);

  {
    const ServeStats stats = (*service)->Stats();
    EXPECT_EQ(stats.recovery.failures_observed,
              static_cast<uint64_t>(kThreshold));
    EXPECT_EQ(stats.feedback.failures, static_cast<uint64_t>(kThreshold));
    EXPECT_EQ(stats.recovery.breaker_trips, 1u);
    EXPECT_EQ(stats.recovery.open_platform_mask, 1ull << kSpark);
    // The trip dropped the cached plan that routed through Spark.
    EXPECT_GE(stats.recovery.plans_invalidated_on_trip, 1u);
    EXPECT_GE(stats.plan_cache.platform_invalidations, 1u);
  }

  // Re-optimization masks the dead platform out of enumeration: the same
  // query now gets a plan that avoids Spark entirely (a fresh optimize, not
  // a cache hit — the exclusion mask is part of the cache key).
  auto fallback = (*service)->Optimize(plan);
  ASSERT_TRUE(fallback.ok()) << fallback.status().ToString();
  EXPECT_FALSE(fallback->cache_hit);
  for (PlatformId p : fallback->optimize.plan.PlatformsUsed()) {
    EXPECT_NE(p, kSpark);
  }
  {
    const ServeStats stats = (*service)->Stats();
    EXPECT_GE(stats.recovery.masked_optimizes, 1u);
  }

  // A query restricted to the dead platform alone has nowhere to run.
  EXPECT_FALSE((*service)->Optimize(plan, nullptr, spark_only).ok());

  // Breaker-open fast-fail: an execution pinned to Spark is rejected up
  // front without touching its kernels.
  const Status rejected =
      ExecuteOn(service->get(), plan, kSpark, /*inject_permanent_fault=*/false);
  EXPECT_EQ(rejected.code(), StatusCode::kUnavailable);
  EXPECT_GE((*service)->health()->snapshot(kSpark).rejected, 1u);
}

TEST_F(RecoveryE2eTest, HalfOpenProbeRecoversThePlatform) {
  constexpr int kThreshold = 2;
  constexpr double kCooldown = 50.0;
  constexpr PlatformId kSpark = 1;
  auto service = OptimizerService::Create(
      registry_, schema_, *base_, nullptr,
      RecoveryServeOptions(kThreshold, kCooldown));
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  LogicalPlan plan = MakeWordCountPlan(0.001);

  // Transient outage: trip the breaker...
  for (int i = 0; i < kThreshold; ++i) {
    EXPECT_EQ(ExecuteOn(service->get(), plan, kSpark,
                        /*inject_permanent_fault=*/true)
                  .code(),
              StatusCode::kUnavailable);
  }
  ASSERT_EQ((*service)->health()->state(kSpark), BreakerState::kOpen);
  EXPECT_EQ((*service)->Stats().recovery.open_platform_mask, 1ull << kSpark);

  // ...let the cooldown elapse on the virtual clock (no wall time)...
  service->get()->health()->AdvanceClock(kCooldown);
  EXPECT_EQ((*service)->health()->state(kSpark), BreakerState::kHalfOpen);
  // Half-open is routable: the serving layer no longer masks the platform.
  EXPECT_EQ((*service)->Stats().recovery.open_platform_mask, 0u);

  // ...and send the probe: a healthy execution closes the breaker.
  ASSERT_TRUE(ExecuteOn(service->get(), plan, kSpark,
                        /*inject_permanent_fault=*/false)
                  .ok());
  EXPECT_EQ((*service)->health()->state(kSpark), BreakerState::kClosed);
  const ServeStats stats = (*service)->Stats();
  EXPECT_EQ(stats.recovery.breaker_recoveries, 1u);
  EXPECT_EQ(stats.recovery.breaker_trips, 1u);
  EXPECT_EQ(stats.recovery.open_platform_mask, 0u);

  // Fully recovered: a Spark-only optimization works again.
  OptimizeOptions spark_only;
  spark_only.allowed_platform_mask = 1ull << kSpark;
  EXPECT_TRUE((*service)->Optimize(plan, nullptr, spark_only).ok());
}

TEST_F(RecoveryE2eTest, OomExecutionNeverReachesTraining) {
  // Regression for non-finite runtime ingestion: an OOM run reports +inf
  // virtual seconds through the observer; neither the feedback queue nor
  // the drift stats may ingest it.
  auto service = OptimizerService::Create(
      registry_, schema_, *base_, nullptr,
      RecoveryServeOptions(/*threshold=*/100, /*cooldown_s=*/1e9));
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  LogicalPlan oom_plan = MakeWordCountPlan(1000.0);  // 1 TB on Java.
  DataCatalog catalog;
  catalog.Bind(oom_plan.SourceIds()[0],
               GenerateTextLines(1000.0 * 1e9 / 80, 500, 5));
  ExecutorOptions exec_options;
  exec_options.observer = service->get();
  exec_options.health = service->get()->health();
  Executor executor(registry_, cost_, nullptr, exec_options);
  auto result = executor.Execute(AllOn(oom_plan, *registry_, 0), catalog);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->cost.oom);

  const ServeStats stats = (*service)->Stats();
  EXPECT_EQ(stats.feedback.accepted, 0u);
  EXPECT_EQ(stats.feedback.offered, 0u);  // The service filters before Offer.
  // The OOM still registered as a platform failure with the breaker.
  EXPECT_EQ((*service)->health()->snapshot(0).consecutive_failures, 1);
  // And the +inf runtime did not advance the virtual clock.
  EXPECT_DOUBLE_EQ((*service)->health()->now_s(), 0.0);
}

}  // namespace
}  // namespace robopt
