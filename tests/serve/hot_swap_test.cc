#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "core/optimizer.h"
#include "serve/model_registry.h"
#include "workloads/synthetic.h"

namespace robopt {
namespace {

/// Concurrent hot-swap contract (run under TSan in CI): N optimizer threads
/// race Optimize() against a publisher thread doing repeated promotions.
/// Every call must see one complete model — the result of a call that
/// reports version v must be bit-identical to a single-threaded optimization
/// against v's forest, no matter how many swaps happened mid-call.
class HotSwapTest : public ::testing::Test {
 protected:
  HotSwapTest()
      : registry_(PlatformRegistry::Default(2)),
        schema_(&registry_),
        plan_(MakeSyntheticPipeline(5, 1e5, 1)) {}

  /// Trains a forest on every plan vector of plan_, labeled by `label`.
  std::shared_ptr<RandomForest> TrainOn(float (*label)(const float*, size_t)) {
    auto ctx = EnumerationContext::Make(&plan_, &registry_, &schema_);
    EXPECT_TRUE(ctx.ok());
    const PlanVectorEnumeration all = Enumerate(*ctx, Vectorize(*ctx));
    MlDataset data(schema_.width());
    for (size_t row = 0; row < all.size(); ++row) {
      data.Add(all.features(row), label(all.features(row), schema_.width()));
    }
    RandomForest::Params params;
    params.num_trees = 10;
    params.log_label = false;
    auto forest = std::make_shared<RandomForest>(params);
    EXPECT_TRUE(forest->Train(data).ok());
    return forest;
  }

  struct Expected {
    std::vector<int> alts;
    float predicted = 0.0f;
  };

  /// Single-threaded reference optimization against one fixed forest.
  Expected ExpectedFor(const RandomForest& forest) {
    const MlCostOracle oracle(&forest);
    const RoboptOptimizer optimizer(&registry_, &schema_, &oracle);
    auto result = optimizer.Optimize(plan_);
    EXPECT_TRUE(result.ok());
    Expected expected;
    expected.predicted = result->predicted_runtime_s;
    for (const LogicalOperator& op : plan_.operators()) {
      expected.alts.push_back(result->plan.alt_index(op.id));
    }
    return expected;
  }

  PlatformRegistry registry_;
  FeatureSchema schema_;
  LogicalPlan plan_;
};

float SumLabel(const float* row, size_t width) {
  float sum = 1.0f;
  for (size_t i = 0; i < width; ++i) sum += std::fabs(row[i]);
  return sum;
}

/// Reversed preference order relative to SumLabel, so the two models choose
/// different plans and a torn read would be observable.
float InverseLabel(const float* row, size_t width) {
  return 1e9f / SumLabel(row, width);
}

TEST_F(HotSwapTest, RacingOptimizeAlwaysSeesOneCompleteModel) {
  auto forest_a = TrainOn(SumLabel);     // Odd versions.
  auto forest_b = TrainOn(InverseLabel); // Even versions.
  const Expected expected_a = ExpectedFor(*forest_a);
  const Expected expected_b = ExpectedFor(*forest_b);

  ModelRegistry models;
  models.Publish(forest_a, 0.0);  // v1.
  const RoboptOptimizer optimizer(&registry_, &schema_,
                                  static_cast<const OracleProvider*>(&models));

  constexpr int kOptimizerThreads = 4;
  constexpr int kMinIterations = 25;
  constexpr int kMaxIterations = 2000;
  constexpr int kPromotions = 60;
  std::atomic<bool> done_publishing{false};
  std::atomic<int> failures{0};

  std::thread publisher([&] {
    for (int i = 0; i < kPromotions; ++i) {
      models.Publish(i % 2 == 0 ? forest_b : forest_a, 0.0);
      std::this_thread::yield();
    }
    done_publishing.store(true);
  });

  std::vector<std::thread> optimizers;
  optimizers.reserve(kOptimizerThreads);
  for (int t = 0; t < kOptimizerThreads; ++t) {
    optimizers.emplace_back([&] {
      // Keep racing until every promotion has happened, so swaps land
      // while calls are genuinely in flight.
      for (int i = 0; (i < kMinIterations || !done_publishing.load()) &&
                      i < kMaxIterations;
           ++i) {
        auto result = optimizer.Optimize(plan_);
        if (!result.ok()) {
          ++failures;
          continue;
        }
        const uint64_t version = result->model_version;
        if (version == 0) {
          ++failures;
          continue;
        }
        // Odd versions republished forest_a, even ones forest_b; the whole
        // call must match that forest's single-threaded result bit for bit.
        const Expected& expected =
            version % 2 == 1 ? expected_a : expected_b;
        if (result->predicted_runtime_s != expected.predicted) {
          ++failures;
          continue;
        }
        for (const LogicalOperator& op : plan_.operators()) {
          if (result->plan.alt_index(op.id) != expected.alts[op.id]) {
            ++failures;
            break;
          }
        }
      }
    });
  }
  for (std::thread& thread : optimizers) thread.join();
  publisher.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(models.num_published(), size_t{kPromotions} + 1);
  // The two models must actually disagree, or this test proves nothing.
  EXPECT_NE(expected_a.alts, expected_b.alts);
}

TEST_F(HotSwapTest, PinnedVersionSurvivesPublishMidCall) {
  // Deterministic (non-racing) version of the same contract: acquire a pin,
  // publish, and check the pinned oracle still serves the old model.
  auto forest_a = TrainOn(SumLabel);
  auto forest_b = TrainOn(InverseLabel);
  ModelRegistry models;
  models.Publish(forest_a, 0.0);
  const PinnedOracle pinned = models.Acquire();
  models.Publish(forest_b, 0.0);

  auto ctx = EnumerationContext::Make(&plan_, &registry_, &schema_);
  ASSERT_TRUE(ctx.ok());
  const PlanVectorEnumeration all = Enumerate(*ctx, Vectorize(*ctx));
  ASSERT_GT(all.size(), 0u);
  float pinned_out = 0.0f;
  float direct_out = 0.0f;
  pinned.oracle->EstimateBatch(all.features(0), 1, schema_.width(),
                               &pinned_out);
  forest_a->PredictBatch(all.features(0), 1, schema_.width(), &direct_out);
  EXPECT_EQ(pinned_out, direct_out);
  EXPECT_EQ(pinned.version, 1u);
  EXPECT_EQ(models.current_version(), 2u);
}

}  // namespace
}  // namespace robopt
