#include "serve/shard_router.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/thread_pool.h"

namespace robopt {
namespace {

PlanFingerprint Fp(uint64_t lo, uint64_t hi) {
  PlanFingerprint fp;
  fp.lo = lo;
  fp.hi = hi;
  return fp;
}

TEST(ShardRouterTest, ResolveShardCountFollowsTheThreadConvention) {
  EXPECT_EQ(ShardRouter::ResolveShardCount(0), ThreadPool::HardwareThreads());
  EXPECT_EQ(ShardRouter::ResolveShardCount(-3), ThreadPool::HardwareThreads());
  EXPECT_EQ(ShardRouter::ResolveShardCount(1), 1);
  EXPECT_EQ(ShardRouter::ResolveShardCount(4), 4);
}

TEST(ShardRouterTest, RouteHashIsDeterministicAndTenantSensitive) {
  const PlanFingerprint fp = Fp(0x1234, 0x5678);
  EXPECT_EQ(ShardRouter::RouteHash(7, fp), ShardRouter::RouteHash(7, fp));
  EXPECT_NE(ShardRouter::RouteHash(7, fp), ShardRouter::RouteHash(8, fp));
  EXPECT_NE(ShardRouter::RouteHash(7, fp),
            ShardRouter::RouteHash(7, Fp(0x1235, 0x5678)));
}

TEST(ShardRouterTest, SlotTableIsPowerOfTwoAndCoversAllShards) {
  ShardRouter router(3, /*num_slots=*/100);  // Rounds up to 128.
  EXPECT_EQ(router.num_slots(), 128u);
  std::set<uint32_t> owners;
  for (uint32_t slot = 0; slot < router.num_slots(); ++slot) {
    const uint32_t shard = router.ShardOf(slot);
    ASSERT_LT(shard, 3u);
    owners.insert(shard);
  }
  EXPECT_EQ(owners.size(), 3u);
}

TEST(ShardRouterTest, RoutingSpreadsDistinctKeysAcrossShards) {
  ShardRouter router(4);
  std::vector<uint64_t> per_shard(4, 0);
  for (uint64_t i = 0; i < 4000; ++i) {
    uint32_t slot = 0;
    const uint32_t shard = router.Route(i % 7, Fp(i * 13, i * 31), &slot);
    ASSERT_LT(shard, 4u);
    ASSERT_EQ(router.ShardOf(slot), shard);
    ++per_shard[shard];
  }
  // A full-avalanche hash over 1000 expected keys per shard stays well
  // within a loose 2x band.
  for (uint64_t count : per_shard) {
    EXPECT_GT(count, 500u);
    EXPECT_LT(count, 2000u);
  }
  const RouterStats stats = router.stats();
  uint64_t routed = 0;
  for (uint64_t r : stats.routed) routed += r;
  EXPECT_EQ(routed, 4000u);
}

TEST(ShardRouterTest, SameKeyAlwaysLandsOnTheSameShard) {
  ShardRouter router(4);
  const PlanFingerprint fp = Fp(0xabcdef, 0x1357);
  uint32_t slot = 0;
  const uint32_t first = router.Route(42, fp, &slot);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(router.Route(42, fp, &slot), first);
  }
}

TEST(ShardRouterTest, MoveSlotRetargetsRouting) {
  ShardRouter router(2);
  const PlanFingerprint fp = Fp(99, 11);
  uint32_t slot = 0;
  const uint32_t before = router.Route(0, fp, &slot);
  const uint32_t other = before == 0 ? 1 : 0;
  router.MoveSlot(slot, other);
  EXPECT_EQ(router.Route(0, fp, &slot), other);
  EXPECT_EQ(router.stats().slots_moved, 1u);
}

/// Drives `hits` routed requests whose slots are owned by `shard` right now.
void LoadShard(ShardRouter* router, uint32_t shard, int hits) {
  int sent = 0;
  for (uint64_t i = 0; sent < hits; ++i) {
    const PlanFingerprint fp = Fp(i * 7919, i * 104729);
    const uint32_t slot =
        router->SlotOf(ShardRouter::RouteHash(/*tenant=*/0, fp));
    if (router->ShardOf(slot) != shard) continue;
    uint32_t routed_slot = 0;
    ASSERT_EQ(router->Route(0, fp, &routed_slot), shard);
    ++sent;
  }
}

TEST(ShardRouterTest, BalancedLoadNeverTriggersMigration) {
  ShardRouter router(2);
  ShardRouter::MigrationPlan plan;
  for (int window = 0; window < 5; ++window) {
    LoadShard(&router, 0, 100);
    LoadShard(&router, 1, 100);
    EXPECT_FALSE(router.DetectImbalance(1.5, 1, &plan));
  }
  EXPECT_EQ(router.stats().rebalances, 0u);
}

TEST(ShardRouterTest, SustainedImbalanceYieldsAMigrationPlan) {
  ShardRouter router(2);
  ShardRouter::MigrationPlan plan;
  // min_checks = 3: two imbalanced windows are not "sustained" yet.
  LoadShard(&router, 0, 300);
  EXPECT_FALSE(router.DetectImbalance(1.5, 3, &plan));
  LoadShard(&router, 0, 300);
  EXPECT_FALSE(router.DetectImbalance(1.5, 3, &plan));
  // A balanced window in between resets the streak.
  LoadShard(&router, 0, 100);
  LoadShard(&router, 1, 100);
  EXPECT_FALSE(router.DetectImbalance(1.5, 3, &plan));
  // Three consecutive imbalanced windows trigger.
  LoadShard(&router, 0, 300);
  EXPECT_FALSE(router.DetectImbalance(1.5, 3, &plan));
  LoadShard(&router, 0, 300);
  EXPECT_FALSE(router.DetectImbalance(1.5, 3, &plan));
  LoadShard(&router, 0, 300);
  ASSERT_TRUE(router.DetectImbalance(1.5, 3, &plan));
  EXPECT_EQ(plan.from, 0u);
  EXPECT_EQ(plan.to, 1u);
  ASSERT_FALSE(plan.slots.empty());
  ASSERT_EQ(plan.slot_set.size(), router.num_slots());
  for (uint32_t slot : plan.slots) {
    EXPECT_EQ(router.ShardOf(slot), 0u);
    EXPECT_TRUE(plan.slot_set[slot]);
  }
  EXPECT_EQ(router.stats().rebalances, 1u);

  // Applying the plan and re-driving the same skewed key set no longer
  // reads as one-sided: the moved slots now land on shard 1.
  for (uint32_t slot : plan.slots) router.MoveSlot(slot, plan.to);
  const RouterStats before = router.stats();
  LoadShard(&router, 1, 1);  // At least one key maps to shard 1 now.
  EXPECT_GT(router.stats().routed[1], before.routed[1]);
}

TEST(ShardRouterTest, SingleShardNeverMigrates) {
  ShardRouter router(1);
  ShardRouter::MigrationPlan plan;
  LoadShard(&router, 0, 200);
  EXPECT_FALSE(router.DetectImbalance(1.1, 1, &plan));
}

}  // namespace
}  // namespace robopt
