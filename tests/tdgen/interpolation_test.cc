#include "tdgen/interpolation.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "common/rng.h"

namespace robopt {
namespace {

TEST(InterpolationTest, ExactOnPolynomialOfFittedDegree) {
  // y = 2x^3 - x + 1; degree-5 pieces reproduce it exactly at any x within
  // the node range.
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i <= 5; ++i) {
    const double xi = i * 2.0;
    x.push_back(xi);
    y.push_back(2 * xi * xi * xi - xi + 1);
  }
  const PiecewisePolynomial poly = PiecewisePolynomial::Fit(x, y, 5);
  EXPECT_EQ(poly.num_pieces(), 1u);
  for (double probe : {0.5, 3.3, 7.7, 9.9}) {
    EXPECT_NEAR(poly.Eval(probe), 2 * probe * probe * probe - probe + 1,
                1e-6 * std::abs(2 * probe * probe * probe));
  }
}

TEST(InterpolationTest, PassesThroughAllNodes) {
  std::vector<double> x = {1, 10, 100, 1000, 10000, 100000, 1e6, 1e7};
  std::vector<double> y;
  for (double xi : x) y.push_back(3.0 * xi * std::log2(xi + 1) + 7);
  const PiecewisePolynomial poly = PiecewisePolynomial::Fit(x, y, 5);
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(poly.Eval(x[i]), y[i], std::abs(y[i]) * 1e-9 + 1e-9);
  }
}

TEST(InterpolationTest, InterpolatesRuntimeCurveInterior) {
  // The Fig. 8 scenario: runtimes at a few cardinalities, impute between.
  // TDGEN fits in log-log space, where runtime curves are near power laws
  // and the evenly spaced nodes keep the polynomial well conditioned.
  auto runtime = [](double n) { return 5.0 + 2e-6 * n * std::log2(n + 2); };
  std::vector<double> x;
  std::vector<double> y;
  for (double n : {1e3, 1e4, 1e5, 1e6, 1e8}) {
    x.push_back(std::log10(n));
    y.push_back(std::log1p(runtime(n)));
  }
  const PiecewisePolynomial poly = PiecewisePolynomial::Fit(x, y, 5);
  // Interior probe 1e7 (between executed 1e6 and 1e8).
  const double predicted = std::expm1(poly.Eval(std::log10(1e7)));
  const double actual = runtime(1e7);
  EXPECT_NEAR(predicted, actual, actual * 0.5);
}

TEST(InterpolationTest, MultiplePiecesForManyPoints) {
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 14; ++i) {
    x.push_back(i);
    y.push_back(i * i);
  }
  const PiecewisePolynomial poly = PiecewisePolynomial::Fit(x, y, 5);
  EXPECT_GE(poly.num_pieces(), 2u);
  for (int i = 0; i < 14; ++i) {
    EXPECT_NEAR(poly.Eval(i), i * i, 1e-6);
  }
}

TEST(InterpolationTest, SinglePointIsConstant) {
  const PiecewisePolynomial poly = PiecewisePolynomial::Fit({5.0}, {42.0}, 5);
  EXPECT_DOUBLE_EQ(poly.Eval(5.0), 42.0);
  EXPECT_DOUBLE_EQ(poly.Eval(100.0), 42.0);
}

TEST(InterpolationTest, TwoPointsAreLinear) {
  const PiecewisePolynomial poly =
      PiecewisePolynomial::Fit({0.0, 10.0}, {0.0, 100.0}, 5);
  EXPECT_NEAR(poly.Eval(5.0), 50.0, 1e-9);
}

TEST(InterpolationTest, DuplicateAbscissaeAreDeduped) {
  const PiecewisePolynomial poly =
      PiecewisePolynomial::Fit({1.0, 1.0, 2.0}, {10.0, 999.0, 20.0}, 5);
  EXPECT_NEAR(poly.Eval(1.0), 10.0, 1e-9);
  EXPECT_NEAR(poly.Eval(2.0), 20.0, 1e-9);
}

TEST(InterpolationTest, UnsortedInputIsSorted) {
  const PiecewisePolynomial poly =
      PiecewisePolynomial::Fit({3.0, 1.0, 2.0}, {9.0, 1.0, 4.0}, 5);
  EXPECT_NEAR(poly.Eval(1.5), 1.5 * 1.5, 0.3);  // Quadratic through 3 pts.
}

TEST(InterpolationTest, DegreeThreeWindows) {
  std::vector<double> x = {0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<double> y = {0, 1, 8, 27, 64, 125, 216, 343};  // x^3.
  const PiecewisePolynomial poly = PiecewisePolynomial::Fit(x, y, 3);
  EXPECT_EQ(poly.num_pieces(), 2u);
  EXPECT_NEAR(poly.Eval(1.5), 1.5 * 1.5 * 1.5, 1e-6);
}

TEST(InterpolationTest, BinarySearchEvalIsBitIdenticalToScan) {
  // Eval switched from an O(pieces) linear scan to std::upper_bound on the
  // piece lower bounds. Both must select the same piece for every input —
  // the results must match bit-for-bit, not approximately.
  Rng rng(0x1e57);
  std::vector<double> x;
  std::vector<double> y;
  double xi = 0.0;
  for (int i = 0; i < 200; ++i) {
    xi += 0.01 + rng.NextDouble();  // Strictly increasing, irregular gaps.
    x.push_back(xi);
    y.push_back(std::sin(xi) * 100.0 + rng.NextGaussian());
  }
  const double x_max = xi;
  for (int degree : {1, 2, 3, 5}) {
    const PiecewisePolynomial poly = PiecewisePolynomial::Fit(x, y, degree);
    ASSERT_GT(poly.num_pieces(), 10u);
    // Probes: every node, every piece boundary neighborhood, random
    // interior points, and extrapolation beyond both ends.
    std::vector<double> probes = {-1e9, -1.0, 0.0, x_max + 1.0, 1e9};
    for (double node : x) {
      probes.push_back(node);
      probes.push_back(std::nextafter(node, -1e300));
      probes.push_back(std::nextafter(node, 1e300));
    }
    for (int i = 0; i < 1000; ++i) {
      probes.push_back(rng.NextDouble() * (x_max + 2.0) - 1.0);
    }
    for (double probe : probes) {
      const double fast = poly.Eval(probe);
      const double reference = poly.EvalScanReference(probe);
      EXPECT_EQ(std::memcmp(&fast, &reference, sizeof(double)), 0)
          << "probe=" << probe << " fast=" << fast << " ref=" << reference;
    }
  }
}

}  // namespace
}  // namespace robopt
