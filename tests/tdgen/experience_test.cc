#include "tdgen/experience.h"

#include <gtest/gtest.h>

#include <thread>

#include "workloads/synthetic.h"

namespace robopt {
namespace {

class ExperienceTest : public ::testing::Test {
 protected:
  ExperienceTest()
      : registry_(PlatformRegistry::Default(2)),
        schema_(&registry_),
        plan_(MakeSyntheticPipeline(5, 1e5, 1)) {}

  ExecutionPlan AllOn(PlatformId platform) {
    ExecutionPlan exec(&plan_, &registry_);
    for (const LogicalOperator& op : plan_.operators()) {
      const auto& alts = registry_.AlternativesFor(op.kind);
      for (size_t a = 0; a < alts.size(); ++a) {
        if (alts[a].platform == platform && alts[a].variant == 0) {
          exec.Assign(op.id, static_cast<int>(a));
        }
      }
    }
    return exec;
  }

  PlatformRegistry registry_;
  FeatureSchema schema_;
  LogicalPlan plan_;
};

TEST_F(ExperienceTest, RecordsExecutedPlans) {
  auto ctx = EnumerationContext::Make(&plan_, &registry_, &schema_);
  ASSERT_TRUE(ctx.ok());
  ExperienceLog log(&schema_);
  EXPECT_TRUE(log.Record(*ctx, AllOn(0), 12.5).ok());
  EXPECT_TRUE(log.Record(*ctx, AllOn(1), 3.25).ok());
  ASSERT_EQ(log.size(), 2u);
  const MlDataset snapshot = log.Snapshot();
  EXPECT_FLOAT_EQ(snapshot.label(0), 12.5f);
  EXPECT_FLOAT_EQ(snapshot.label(1), 3.25f);
  // Recorded features match direct encoding of the same assignment.
  std::vector<uint8_t> assignment(plan_.num_operators());
  const ExecutionPlan java = AllOn(0);
  for (const LogicalOperator& op : plan_.operators()) {
    assignment[op.id] = static_cast<uint8_t>(java.alt_index(op.id) + 1);
  }
  const std::vector<float> direct =
      EncodeAssignment(*ctx, assignment.data());
  for (size_t c = 0; c < schema_.width(); ++c) {
    EXPECT_FLOAT_EQ(snapshot.row(0)[c], direct[c]);
  }
}

TEST_F(ExperienceTest, RejectsInvalidInput) {
  auto ctx = EnumerationContext::Make(&plan_, &registry_, &schema_);
  ASSERT_TRUE(ctx.ok());
  ExperienceLog log(&schema_);
  // Unassigned plan.
  ExecutionPlan incomplete(&plan_, &registry_);
  EXPECT_FALSE(log.Record(*ctx, incomplete, 1.0).ok());
  // Negative / non-finite runtime.
  EXPECT_FALSE(log.Record(*ctx, AllOn(0), -1.0).ok());
  EXPECT_FALSE(log.Record(*ctx, AllOn(0),
                          std::numeric_limits<double>::quiet_NaN())
                   .ok());
  EXPECT_EQ(log.size(), 0u);
}

TEST_F(ExperienceTest, RejectsMismatchedSchemaWidth) {
  auto ctx = EnumerationContext::Make(&plan_, &registry_, &schema_);
  ASSERT_TRUE(ctx.ok());
  // A log built over a different registry has a different vector width;
  // recording this context's plans into it must be rejected, not silently
  // corrupt the row-major dataset.
  PlatformRegistry wide_registry = PlatformRegistry::Default(3);
  FeatureSchema wide_schema(&wide_registry);
  ASSERT_NE(wide_schema.width(), schema_.width());
  ExperienceLog log(&wide_schema);
  const Status status = log.Record(*ctx, AllOn(0), 1.0);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("width"), std::string::npos);
  EXPECT_EQ(log.size(), 0u);
  // Same contract on the pre-encoded path.
  EXPECT_FALSE(
      log.RecordRow(std::vector<float>(schema_.width(), 0.0f), 1.0).ok());
  EXPECT_TRUE(
      log.RecordRow(std::vector<float>(wide_schema.width(), 0.0f), 1.0).ok());
  EXPECT_EQ(log.size(), 1u);
}

TEST_F(ExperienceTest, ConcurrentRecordingIsSafe) {
  auto ctx = EnumerationContext::Make(&plan_, &registry_, &schema_);
  ASSERT_TRUE(ctx.ok());
  ExperienceLog log(&schema_);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(log.Record(*ctx, AllOn(t % 2), 1.0 + i).ok());
        if (i % 10 == 0) {
          const MlDataset snapshot = log.Snapshot();
          ASSERT_EQ(snapshot.features().size(),
                    snapshot.size() * schema_.width());
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(log.size(), size_t{kThreads} * kPerThread);
}

TEST_F(ExperienceTest, RetrainBlendsExperienceIntoModel) {
  auto ctx = EnumerationContext::Make(&plan_, &registry_, &schema_);
  ASSERT_TRUE(ctx.ok());

  // Base set: claims both platforms cost the same.
  MlDataset base(schema_.width());
  std::vector<uint8_t> assignment(plan_.num_operators());
  for (PlatformId p : {PlatformId{0}, PlatformId{1}}) {
    const ExecutionPlan exec = AllOn(p);
    for (const LogicalOperator& op : plan_.operators()) {
      assignment[op.id] = static_cast<uint8_t>(exec.alt_index(op.id) + 1);
    }
    base.Add(EncodeAssignment(*ctx, assignment.data()), 10.0f);
  }

  // Experience: Java is actually 100x slower.
  ExperienceLog log(&schema_);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(log.Record(*ctx, AllOn(0), 1000.0).ok());
    ASSERT_TRUE(log.Record(*ctx, AllOn(1), 10.0).ok());
  }
  auto forest = log.Retrain(base, /*weight=*/4);
  ASSERT_TRUE(forest.ok()) << forest.status().ToString();

  const ExecutionPlan java = AllOn(0);
  const ExecutionPlan spark = AllOn(1);
  for (const LogicalOperator& op : plan_.operators()) {
    assignment[op.id] = static_cast<uint8_t>(java.alt_index(op.id) + 1);
  }
  const float java_pred = (*forest)->Predict(
      EncodeAssignment(*ctx, assignment.data()).data(), schema_.width());
  for (const LogicalOperator& op : plan_.operators()) {
    assignment[op.id] = static_cast<uint8_t>(spark.alt_index(op.id) + 1);
  }
  const float spark_pred = (*forest)->Predict(
      EncodeAssignment(*ctx, assignment.data()).data(), schema_.width());
  EXPECT_GT(java_pred, spark_pred * 5);
}

TEST_F(ExperienceTest, RetrainRejectsMismatchedBase) {
  ExperienceLog log(&schema_);
  MlDataset wrong(3);
  EXPECT_FALSE(log.Retrain(wrong).ok());
}

}  // namespace
}  // namespace robopt
