#include "tdgen/tdgen.h"

#include <gtest/gtest.h>

#include <cmath>

namespace robopt {
namespace {

class TdgenTest : public ::testing::Test {
 protected:
  TdgenTest()
      : registry_(PlatformRegistry::Default(3)),
        schema_(&registry_),
        cost_(&registry_),
        executor_(&registry_, &cost_) {}

  TdgenOptions SmallOptions() {
    TdgenOptions options;
    options.plans_per_shape = 2;
    options.max_operators = 8;
    options.max_structures_per_plan = 8;
    options.cardinality_grid = {1e3, 1e4, 1e5, 1e6};
    options.executed_points = {0, 1, 3};
    options.seed = 3;
    return options;
  }

  PlatformRegistry registry_;
  FeatureSchema schema_;
  VirtualCost cost_;
  Executor executor_;
};

TEST_F(TdgenTest, GeneratesLabeledDataset) {
  Tdgen tdgen(&registry_, &schema_, &executor_, SmallOptions());
  TdgenReport report;
  auto data = tdgen.Generate(&report);
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_EQ(data->dim(), schema_.width());
  EXPECT_GT(data->size(), 50u);
  EXPECT_EQ(report.logical_plans, 6u);  // 3 shapes x 2 plans.
  EXPECT_GT(report.structures, 6u);
  EXPECT_EQ(report.jobs_total, data->size());
  EXPECT_EQ(report.jobs_total, report.jobs_executed + report.jobs_imputed);
  EXPECT_GT(report.jobs_imputed, 0u);  // One grid point is imputed.
}

TEST_F(TdgenTest, LabelsArePositiveAndFinite) {
  Tdgen tdgen(&registry_, &schema_, &executor_, SmallOptions());
  auto data = tdgen.Generate(nullptr);
  ASSERT_TRUE(data.ok());
  for (size_t i = 0; i < data->size(); ++i) {
    EXPECT_TRUE(std::isfinite(data->label(i)));
    EXPECT_GT(data->label(i), 0.0f);
  }
}

TEST_F(TdgenTest, GenerationIsDeterministic) {
  Tdgen a(&registry_, &schema_, &executor_, SmallOptions());
  Tdgen b(&registry_, &schema_, &executor_, SmallOptions());
  auto da = a.Generate(nullptr);
  auto db = b.Generate(nullptr);
  ASSERT_TRUE(da.ok() && db.ok());
  ASSERT_EQ(da->size(), db->size());
  for (size_t i = 0; i < da->size(); i += 17) {
    EXPECT_EQ(da->label(i), db->label(i));
  }
}

TEST_F(TdgenTest, LabelsGrowWithCardinality) {
  // Within one structure, larger inputs must not be drastically cheaper —
  // check the aggregate trend: mean label of the biggest grid point exceeds
  // the mean of the smallest.
  TdgenOptions options = SmallOptions();
  Tdgen tdgen(&registry_, &schema_, &executor_, options);
  auto data = tdgen.Generate(nullptr);
  ASSERT_TRUE(data.ok());
  const size_t grid = options.cardinality_grid.size();
  double small_sum = 0.0;
  double large_sum = 0.0;
  size_t count = 0;
  for (size_t i = 0; i + grid - 1 < data->size(); i += grid) {
    small_sum += data->label(i);
    large_sum += data->label(i + grid - 1);
    ++count;
  }
  ASSERT_GT(count, 0u);
  EXPECT_GT(large_sum / count, small_sum / count);
}

TEST_F(TdgenTest, UnknownShapeIsRejected) {
  TdgenOptions options = SmallOptions();
  options.shapes = {"mystery"};
  Tdgen tdgen(&registry_, &schema_, &executor_, options);
  auto data = tdgen.Generate(nullptr);
  EXPECT_FALSE(data.ok());
  EXPECT_EQ(data.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(TdgenTest, TrainRuntimeModelOrdersPlansWell) {
  TdgenOptions options = SmallOptions();
  options.plans_per_shape = 4;
  options.max_structures_per_plan = 16;
  RegressionMetrics holdout;
  TdgenReport report;
  auto model = TrainRuntimeModel(&registry_, &schema_, &executor_, options,
                                 &holdout, &report);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  // What the optimizer needs is ordering quality.
  EXPECT_GT(holdout.spearman, 0.8);
  EXPECT_GT(report.jobs_total, 200u);
}

}  // namespace
}  // namespace robopt
