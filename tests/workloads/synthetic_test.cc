#include "workloads/synthetic.h"

#include <gtest/gtest.h>

namespace robopt {
namespace {

class SyntheticPipelineTest : public ::testing::TestWithParam<int> {};

TEST_P(SyntheticPipelineTest, ValidatesAtEverySize) {
  const int n = GetParam();
  for (uint64_t seed = 0; seed < 5; ++seed) {
    LogicalPlan plan = MakeSyntheticPipeline(n, 1e6, seed);
    EXPECT_EQ(plan.num_operators(), n);
    EXPECT_TRUE(plan.Validate().ok()) << "n=" << n << " seed=" << seed;
    EXPECT_EQ(plan.SourceIds().size(), 1u);
    EXPECT_EQ(plan.SinkIds().size(), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SyntheticPipelineTest,
                         ::testing::Values(3, 5, 10, 20, 40, 80));

class SyntheticJoinTreeTest : public ::testing::TestWithParam<int> {};

TEST_P(SyntheticJoinTreeTest, ValidatesAtEveryJoinCount) {
  const int joins = GetParam();
  for (uint64_t seed = 0; seed < 3; ++seed) {
    LogicalPlan plan = MakeSyntheticJoinTree(joins, 1e6, seed);
    EXPECT_TRUE(plan.Validate().ok());
    EXPECT_EQ(plan.SourceIds().size(), static_cast<size_t>(joins + 1));
    int join_count = 0;
    for (const LogicalOperator& op : plan.operators()) {
      if (op.kind == LogicalOpKind::kJoin) ++join_count;
    }
    EXPECT_EQ(join_count, joins);
  }
}

INSTANTIATE_TEST_SUITE_P(JoinCounts, SyntheticJoinTreeTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(SyntheticLoopTest, ValidatesAcrossSizes) {
  for (int n : {9, 12, 16, 24}) {
    for (uint64_t seed = 0; seed < 4; ++seed) {
      LogicalPlan plan = MakeSyntheticLoopPlan(n, 1e6, 10, seed);
      EXPECT_TRUE(plan.Validate().ok()) << "n=" << n << " seed=" << seed;
      int begins = 0;
      for (const LogicalOperator& op : plan.operators()) {
        if (op.kind == LogicalOpKind::kLoopBegin) {
          ++begins;
          EXPECT_EQ(op.loop_iterations, 10);
        }
      }
      EXPECT_EQ(begins, 1);
    }
  }
}

TEST(SyntheticTest, SameSeedSamePlan) {
  LogicalPlan a = MakeSyntheticPipeline(10, 1e6, 77);
  LogicalPlan b = MakeSyntheticPipeline(10, 1e6, 77);
  ASSERT_EQ(a.num_operators(), b.num_operators());
  for (int i = 0; i < a.num_operators(); ++i) {
    EXPECT_EQ(a.op(i).kind, b.op(i).kind);
    EXPECT_DOUBLE_EQ(a.op(i).selectivity, b.op(i).selectivity);
  }
}

TEST(SyntheticTest, DifferentSeedsGiveDifferentPlans) {
  LogicalPlan a = MakeSyntheticPipeline(15, 1e6, 1);
  LogicalPlan b = MakeSyntheticPipeline(15, 1e6, 2);
  bool any_diff = false;
  for (int i = 0; i < a.num_operators(); ++i) {
    if (a.op(i).kind != b.op(i).kind ||
        a.op(i).selectivity != b.op(i).selectivity) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace robopt
