#include "workloads/datagen.h"

#include <gtest/gtest.h>

#include <set>

namespace robopt {
namespace {

TEST(DatagenTest, TextLinesHaveRequestedShape) {
  Dataset data = GenerateTextLines(1000, 1000, 1, /*words_per_line=*/5);
  ASSERT_EQ(data.rows.size(), 1000u);
  EXPECT_DOUBLE_EQ(data.virtual_cardinality, 1000.0);
  for (const Record& row : data.rows) {
    int spaces = 0;
    for (char c : row.text) {
      if (c == ' ') ++spaces;
    }
    EXPECT_EQ(spaces, 4);
  }
}

TEST(DatagenTest, PhysicalCapKeepsVirtualCardinality) {
  Dataset data = GenerateTextLines(1e9, 500, 2);
  EXPECT_EQ(data.rows.size(), 500u);
  EXPECT_DOUBLE_EQ(data.virtual_cardinality, 1e9);
  EXPECT_DOUBLE_EQ(data.Scale(), 2e6);
}

TEST(DatagenTest, SameSeedSameData) {
  Dataset a = GenerateTransactions(100, 100, 7);
  Dataset b = GenerateTransactions(100, 100, 7);
  for (size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(a.rows[i].key, b.rows[i].key);
    EXPECT_DOUBLE_EQ(a.rows[i].num, b.rows[i].num);
  }
}

TEST(DatagenTest, TransactionsReferenceCustomerRange) {
  Dataset data = GenerateTransactions(1000, 1000, 3, /*num_customers=*/50);
  for (const Record& row : data.rows) {
    EXPECT_GE(row.key, 0);
    EXPECT_LT(row.key, 50);
    EXPECT_GT(row.num, 0.0);
    EXPECT_FALSE(row.text.empty());
  }
}

TEST(DatagenTest, CustomersHaveUniqueIds) {
  Dataset data = GenerateCustomers(200, 200, 4);
  std::set<int64_t> ids;
  for (const Record& row : data.rows) {
    EXPECT_TRUE(ids.insert(row.key).second);
  }
}

TEST(DatagenTest, PointsHaveRequestedDimension) {
  Dataset data = GeneratePoints(100, 100, 5, /*dim=*/7, /*clusters=*/2);
  for (const Record& row : data.rows) {
    EXPECT_EQ(row.vec.size(), 7u);
  }
}

TEST(DatagenTest, LabeledSamplesFollowLinearModel) {
  Dataset data = GenerateLabeledSamples(5000, 5000, 6, /*dim=*/3);
  // Label variance should be mostly explained by features: check that
  // labels are bounded by |w|_max * dim + noise.
  for (const Record& row : data.rows) {
    EXPECT_LT(std::abs(row.num), 2.0 * 3 + 1.0);
  }
}

TEST(DatagenTest, EdgesStayInNodeRange) {
  Dataset data = GenerateEdges(1000, 1000, 7, /*num_nodes=*/100);
  for (const Record& row : data.rows) {
    EXPECT_GE(row.key, 0);
    EXPECT_LT(row.key, 100);
    EXPECT_GE(row.num, 0.0);
    EXPECT_LT(row.num, 100.0);
  }
}

TEST(DatagenTest, CentroidsAndWeights) {
  Dataset centroids = MakeCentroids(5, 3, 8);
  EXPECT_EQ(centroids.rows.size(), 5u);
  EXPECT_EQ(centroids.rows[0].vec.size(), 3u);
  Dataset weights = MakeInitialWeights(4);
  ASSERT_EQ(weights.rows.size(), 1u);
  EXPECT_EQ(weights.rows[0].vec.size(), 4u);
  for (double w : weights.rows[0].vec) EXPECT_DOUBLE_EQ(w, 0.0);
}

}  // namespace
}  // namespace robopt
