#include "workloads/queries.h"

#include <gtest/gtest.h>

#include "exec/kernel.h"
#include "plan/cardinality.h"

namespace robopt {
namespace {

TEST(QueriesTest, OperatorCountsMatchTableII) {
  EXPECT_EQ(MakeWordCountPlan(1).num_operators(), 6);
  EXPECT_EQ(MakeWord2NVecPlan(30).num_operators(), 14);
  EXPECT_EQ(MakeSimWordsPlan(3).num_operators(), 26);
  EXPECT_EQ(MakeTpchQ1Plan(1).num_operators(), 7);
  EXPECT_EQ(MakeTpchQ3Plan(1).num_operators(), 17);
  EXPECT_EQ(MakeCrocoPrPlan(1, 10).num_operators(), 22);
}

TEST(QueriesTest, AllPlansValidate) {
  EXPECT_TRUE(MakeWordCountPlan(1).Validate().ok());
  EXPECT_TRUE(MakeWord2NVecPlan(30).Validate().ok());
  EXPECT_TRUE(MakeSimWordsPlan(3).Validate().ok());
  EXPECT_TRUE(MakeTpchQ1Plan(1).Validate().ok());
  EXPECT_TRUE(MakeTpchQ3Plan(1).Validate().ok());
  EXPECT_TRUE(MakeAggregatePlan(200).Validate().ok());
  EXPECT_TRUE(MakeJoinPlan(10).Validate().ok());
  EXPECT_TRUE(MakeJoinPlan(10, /*table_sources=*/true).Validate().ok());
  EXPECT_TRUE(MakeKmeansPlan(36, 100, 10).Validate().ok());
  EXPECT_TRUE(MakeSgdPlan(0.74, 100, 50).Validate().ok());
  EXPECT_TRUE(MakeCrocoPrPlan(0.2, 10).Validate().ok());
  EXPECT_TRUE(MakeCrocoPrPlan(0.2, 10, /*from_postgres=*/true)
                  .Validate()
                  .ok());
}

TEST(QueriesTest, SourceCardinalityScalesWithInputSize) {
  LogicalPlan small = MakeWordCountPlan(0.1);
  LogicalPlan large = MakeWordCountPlan(10.0);
  EXPECT_NEAR(large.op(0).source_cardinality /
                  small.op(0).source_cardinality,
              100.0, 1.0);
}

TEST(QueriesTest, KmeansLoopIterationsAndCentroids) {
  LogicalPlan plan = MakeKmeansPlan(36, 100, 37);
  int begin_count = 0;
  for (const LogicalOperator& op : plan.operators()) {
    if (op.kind == LogicalOpKind::kLoopBegin) {
      ++begin_count;
      EXPECT_EQ(op.loop_iterations, 37);
    }
    if (op.kind == LogicalOpKind::kCollectionSource) {
      EXPECT_DOUBLE_EQ(op.source_cardinality, 100.0);
    }
  }
  EXPECT_EQ(begin_count, 1);
}

TEST(QueriesTest, SgdSampleUsesBatchParam) {
  LogicalPlan plan = MakeSgdPlan(1.0, 256, 10);
  bool found = false;
  for (const LogicalOperator& op : plan.operators()) {
    if (op.kind == LogicalOpKind::kSample) {
      found = true;
      EXPECT_DOUBLE_EQ(op.param, 256.0);
      EXPECT_TRUE(plan.InLoop(op.id));
    }
  }
  EXPECT_TRUE(found);
}

TEST(QueriesTest, CrocoPrPostgresVariantUsesTableSource) {
  LogicalPlan hdfs = MakeCrocoPrPlan(1, 10, false);
  LogicalPlan pg = MakeCrocoPrPlan(1, 10, true);
  EXPECT_EQ(hdfs.op(0).kind, LogicalOpKind::kTextFileSource);
  EXPECT_EQ(pg.op(0).kind, LogicalOpKind::kTableSource);
}

TEST(QueriesTest, TpchQ3JoinsThreeTables) {
  LogicalPlan plan = MakeTpchQ3Plan(10);
  int sources = 0;
  int joins = 0;
  for (const LogicalOperator& op : plan.operators()) {
    if (IsSource(op.kind)) ++sources;
    if (op.kind == LogicalOpKind::kJoin) ++joins;
  }
  EXPECT_EQ(sources, 3);
  EXPECT_EQ(joins, 2);
}

TEST(QueriesTest, CardinalitiesPropagateThroughQ3) {
  LogicalPlan plan = MakeTpchQ3Plan(1);
  const Cardinalities cards = CardinalityEstimator(&plan).Estimate();
  for (const LogicalOperator& op : plan.operators()) {
    EXPECT_GE(cards.output[op.id], 0.0) << op.name;
    if (!IsSource(op.kind)) {
      EXPECT_GT(cards.input[op.id], 0.0) << op.name;
    }
  }
}

TEST(QueriesTest, RegisterWorkloadKernelsIsIdempotent) {
  RegisterWorkloadKernels();
  RegisterWorkloadKernels();
  EXPECT_NE(KernelRegistry::Global().Find("tokenize"), nullptr);
  EXPECT_NE(KernelRegistry::Global().Find("kmeans_assign"), nullptr);
  EXPECT_NE(KernelRegistry::Global().Find("sgd_gradient"), nullptr);
  EXPECT_NE(KernelRegistry::Global().Find("pr_damping"), nullptr);
}

}  // namespace
}  // namespace robopt
