#include "obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

namespace robopt {
namespace {

TEST(TracerTest, SpanScopeRecordsOnEnd) {
  Tracer tracer(64);
  const uint64_t trace = tracer.NewTrace();
  {
    SpanScope span(&tracer, trace, /*parent_id=*/0, "optimize");
    span.SetArgA("rows", 17);
  }
  const std::vector<SpanRecord> spans = tracer.Collect(trace);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].trace_id, trace);
  EXPECT_EQ(spans[0].parent_id, 0u);
  EXPECT_EQ(spans[0].name, "optimize");
  EXPECT_EQ(spans[0].arg_name_a, "rows");
  EXPECT_EQ(spans[0].arg_a, 17);
  EXPECT_GE(spans[0].dur_us, 0.0);
  EXPECT_LT(spans[0].virt_start_s, 0.0);  // No virtual interval attached.
}

TEST(TracerTest, NullTracerIsANoOp) {
  SpanScope span(nullptr, 1, 0, "nothing");
  EXPECT_EQ(span.id(), 0u);
  span.SetArgA("x", 1);
  span.End();  // Must not crash.
}

TEST(TracerTest, CollectFiltersByTraceId) {
  Tracer tracer(64);
  const uint64_t a = tracer.NewTrace();
  const uint64_t b = tracer.NewTrace();
  { SpanScope span(&tracer, a, 0, "a1"); }
  { SpanScope span(&tracer, b, 0, "b1"); }
  { SpanScope span(&tracer, a, 0, "a2"); }
  EXPECT_EQ(tracer.Collect(a).size(), 2u);
  EXPECT_EQ(tracer.Collect(b).size(), 1u);
  EXPECT_EQ(tracer.Collect().size(), 3u);
}

TEST(TracerTest, ParentChildLinksSurvive) {
  Tracer tracer(64);
  const uint64_t trace = tracer.NewTrace();
  SpanScope root(&tracer, trace, 0, "root");
  const uint64_t root_id = root.id();
  { SpanScope child(&tracer, trace, root_id, "child"); }
  root.End();
  const std::vector<SpanRecord> spans = tracer.Collect(trace);
  ASSERT_EQ(spans.size(), 2u);
  // Children record before their parents (RAII order); Collect orders by
  // completion.
  EXPECT_EQ(spans[0].name, "child");
  EXPECT_EQ(spans[0].parent_id, root_id);
  EXPECT_EQ(spans[1].name, "root");
  EXPECT_NE(spans[0].span_id, spans[1].span_id);
}

TEST(TracerTest, VirtualIntervalRoundTrips) {
  Tracer tracer(16);
  SpanRecord record;
  record.trace_id = tracer.NewTrace();
  record.span_id = tracer.NewSpanId();
  record.name = "op";
  record.virt_start_s = 1.5;
  record.virt_dur_s = 2.25;
  tracer.Record(record);
  const std::vector<SpanRecord> spans = tracer.Collect(record.trace_id);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_DOUBLE_EQ(spans[0].virt_start_s, 1.5);
  EXPECT_DOUBLE_EQ(spans[0].virt_dur_s, 2.25);
}

TEST(TracerTest, RingBoundsRetentionNotRecording) {
  Tracer tracer(4);  // Rounds to 4 slots.
  EXPECT_EQ(tracer.capacity(), 4u);
  const uint64_t trace = tracer.NewTrace();
  for (int i = 0; i < 10; ++i) {
    SpanScope span(&tracer, trace, 0, "s");
  }
  EXPECT_EQ(tracer.recorded(), 10u);
  EXPECT_EQ(tracer.dropped(), 0u);  // Sequential writers never collide.
  const std::vector<SpanRecord> spans = tracer.Collect(trace);
  EXPECT_LE(spans.size(), 4u);
  EXPECT_GE(spans.size(), 1u);
}

TEST(TracerTest, CollectOrdersByCompletion) {
  Tracer tracer(64);
  const uint64_t trace = tracer.NewTrace();
  std::vector<uint64_t> ids;
  for (int i = 0; i < 8; ++i) {
    SpanScope span(&tracer, trace, 0, "s");
    ids.push_back(span.id());
  }
  const std::vector<SpanRecord> spans = tracer.Collect(trace);
  ASSERT_EQ(spans.size(), 8u);
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].span_id, ids[i]);
  }
}

// Writers from many threads against a small ring: every span is either
// accepted or counted as dropped (nothing lost silently), span ids stay
// unique, and the ring's slot state machine holds up under TSan.
TEST(TracerConcurrencyTest, ConcurrentRecordAndCollect) {
  Tracer tracer(128);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      const uint64_t trace = tracer.NewTrace();
      for (int i = 0; i < kPerThread; ++i) {
        SpanScope span(&tracer, trace, 0, "hammer");
        span.SetArgA("i", i);
      }
    });
  }
  // Concurrent readers: every snapshot must be internally consistent.
  for (int i = 0; i < 50; ++i) {
    const std::vector<SpanRecord> spans = tracer.Collect();
    EXPECT_LE(spans.size(), tracer.capacity());
    std::set<uint64_t> ids;
    for (const SpanRecord& span : spans) {
      EXPECT_EQ(span.name, "hammer");
      EXPECT_TRUE(ids.insert(span.span_id).second) << "duplicate span id";
    }
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(tracer.recorded() + tracer.dropped(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace robopt
