#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

namespace robopt {
namespace {

TEST(CounterTest, AddAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  EXPECT_DOUBLE_EQ(gauge.Value(), 0.0);
  gauge.Set(2.5);
  EXPECT_DOUBLE_EQ(gauge.Value(), 2.5);
  gauge.Add(-1.25);
  EXPECT_DOUBLE_EQ(gauge.Value(), 1.25);
  gauge.Set(-7.0);  // Set overwrites, Add accumulates.
  EXPECT_DOUBLE_EQ(gauge.Value(), -7.0);
}

TEST(HistogramTest, BucketsFollowLeSemantics) {
  Histogram histogram({1.0, 10.0, 100.0});
  histogram.Observe(0.5);    // le=1 bucket.
  histogram.Observe(1.0);    // Upper edges are inclusive: still le=1.
  histogram.Observe(5.0);    // le=10.
  histogram.Observe(1000.0); // +inf.
  const std::vector<uint64_t> counts = histogram.Counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(histogram.TotalCount(), 4u);
  EXPECT_NEAR(histogram.Sum(), 1006.5, 1e-6);
}

TEST(HistogramTest, LatencyBucketsAreStrictlyIncreasing) {
  const std::vector<double> bounds = Histogram::LatencyBucketsUs();
  ASSERT_GE(bounds.size(), 4u);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

// The concurrency contract: any number of threads may hammer one counter
// and one histogram; totals are exact (no lost updates), and under TSan
// (the CI leg that runs this target) any data race in the sharded storage
// fails the test.
TEST(MetricsConcurrencyTest, HammeredCounterAndHistogramStayExact) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  Counter* counter = registry.GetCounter("hammered_total");
  Histogram* histogram = registry.GetHistogram("hammered_us", {10.0, 1000.0});
  ASSERT_NE(counter, nullptr);
  ASSERT_NE(histogram, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Add(1);
        histogram->Observe(static_cast<double>(t));
      }
    });
  }
  // Concurrent snapshots must be safe against the writers (values are
  // torn-free per metric even if mid-hammer).
  for (int i = 0; i < 10; ++i) {
    (void)registry.Snapshot();
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter->Value(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(histogram->TotalCount(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  // Sum of t over threads, kPerThread each: (0+1+..+7) * 50000.
  EXPECT_NEAR(histogram->Sum(), 28.0 * kPerThread, 1e-3);
}

TEST(MetricsRegistryTest, TypeClashReturnsNullInsteadOfCrashing) {
  MetricsRegistry registry;
  ASSERT_NE(registry.GetCounter("robopt_thing"), nullptr);
  EXPECT_EQ(registry.GetGauge("robopt_thing"), nullptr);
  EXPECT_EQ(registry.GetHistogram("robopt_thing", {1.0}), nullptr);
  // Same name, same type: the one instance comes back.
  EXPECT_EQ(registry.GetCounter("robopt_thing"),
            registry.GetCounter("robopt_thing"));
}

TEST(MetricsRegistryTest, SnapshotCarriesAllTypes) {
  MetricsRegistry registry;
  registry.GetCounter("c_total")->Add(3);
  registry.Set("g", 1.5);
  registry.GetHistogram("h", {2.0})->Observe(1.0);
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.points.size(), 3u);
  EXPECT_TRUE(snapshot.Has("c_total"));
  EXPECT_TRUE(snapshot.Has("g"));
  EXPECT_TRUE(snapshot.Has("h"));
  EXPECT_FALSE(snapshot.Has("missing"));
  EXPECT_DOUBLE_EQ(snapshot.Value("c_total"), 3.0);
  EXPECT_DOUBLE_EQ(snapshot.Value("g"), 1.5);
  EXPECT_DOUBLE_EQ(snapshot.Value("missing", -1.0), -1.0);
  for (const MetricPoint& point : snapshot.points) {
    if (point.name != "h") continue;
    EXPECT_EQ(point.type, MetricPoint::Type::kHistogram);
    ASSERT_EQ(point.buckets.size(), 1u);
    ASSERT_EQ(point.counts.size(), 2u);
    EXPECT_EQ(point.counts[0], 1u);
    EXPECT_EQ(point.count, 1u);
  }
}

TEST(MetricsRegistryTest, GlobalRegistryIsAProcessSingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

}  // namespace
}  // namespace robopt
