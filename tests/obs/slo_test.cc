/// SloEngine burn-rate math against a hand-driven clock:
///   - burn = bad_fraction / (1 - target), per window;
///   - critical requires the fast threshold on BOTH the fast window and its
///     1/12 confirmation window (same for the warning pair), so a resolved
///     spike degrades critical -> warning -> ok as the short windows drain;
///   - sheds (RecordBad) only count for objectives that opted in;
///   - gauge export carries health, burns and bad fractions per objective.
#include "obs/slo.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/sketch.h"

namespace robopt {
namespace {

WindowedSketch::Options TenSecondWindows() {
  WindowedSketch::Options options;
  options.alpha = 0.01;
  options.window_s = 10.0;
  options.windows = 64;
  return options;
}

SloObjective TestObjective() {
  SloObjective objective;
  objective.name = "optimize_latency";
  objective.threshold_us = 1000.0;
  objective.target = 0.99;  // Budget 0.01.
  objective.fast_window_s = 120.0;
  objective.slow_window_s = 240.0;
  objective.fast_burn = 14.4;
  objective.slow_burn = 6.0;
  return objective;
}

TEST(SloEngineTest, EmptyObjectiveListGetsTheDefaultObjective) {
  WindowedSketch sketch(TenSecondWindows());
  SloEngine engine({}, &sketch);
  ASSERT_EQ(engine.objectives().size(), 1u);
  EXPECT_EQ(engine.objectives()[0].name, "optimize_latency");
  EXPECT_EQ(engine.health(), SloHealth::kOk);
  EXPECT_EQ(engine.evaluations(), 0u);
}

TEST(SloEngineTest, HealthyTrafficBurnsNothing) {
  WindowedSketch sketch(TenSecondWindows());
  SloEngine engine({TestObjective()}, &sketch);
  for (int i = 0; i < 100; ++i) sketch.Record(5.0, 100.0);
  const SloStatus status = engine.Evaluate(6.0);
  EXPECT_EQ(status.health, SloHealth::kOk);
  ASSERT_EQ(status.objectives.size(), 1u);
  EXPECT_DOUBLE_EQ(status.objectives[0].burn_fast, 0.0);
  EXPECT_DOUBLE_EQ(status.objectives[0].burn_slow, 0.0);
  EXPECT_DOUBLE_EQ(status.objectives[0].bad_fraction_fast, 0.0);
  EXPECT_EQ(engine.health(), SloHealth::kOk);
  EXPECT_EQ(engine.evaluations(), 1u);
}

TEST(SloEngineTest, BurnIsBadFractionOverBudget) {
  WindowedSketch sketch(TenSecondWindows());
  SloEngine engine({TestObjective()}, &sketch);
  // 80 good, 20 bad in one window: bad fraction 0.2, budget 0.01 -> 20x.
  for (int i = 0; i < 80; ++i) sketch.Record(5.0, 100.0);
  for (int i = 0; i < 20; ++i) sketch.Record(5.0, 50000.0);
  const SloStatus status = engine.Evaluate(6.0);
  ASSERT_EQ(status.objectives.size(), 1u);
  EXPECT_DOUBLE_EQ(status.objectives[0].bad_fraction_fast, 0.2);
  EXPECT_NEAR(status.objectives[0].burn_fast, 20.0, 1e-9);
  EXPECT_NEAR(status.objectives[0].burn_fast_short, 20.0, 1e-9);
  // 20x >= 14.4 on both fast windows: page.
  EXPECT_EQ(status.health, SloHealth::kCritical);
  EXPECT_EQ(engine.health(), SloHealth::kCritical);
}

TEST(SloEngineTest, ResolvedSpikeStepsDownCriticalWarningOk) {
  WindowedSketch sketch(TenSecondWindows());
  SloEngine engine({TestObjective()}, &sketch);

  // Window [0, 10): healthy traffic.
  for (int i = 0; i < 50; ++i) sketch.Record(5.0, 100.0);
  EXPECT_EQ(engine.Evaluate(6.0).health, SloHealth::kOk);

  // Window [10, 20): a hard regression — 50 requests all above threshold.
  for (int i = 0; i < 50; ++i) sketch.Record(15.0, 50000.0);
  // Fast window (120s) holds 50/100 bad -> burn 50; the 10s confirmation
  // window still covers the bad window. Critical.
  SloStatus status = engine.Evaluate(16.0);
  EXPECT_EQ(status.health, SloHealth::kCritical);
  EXPECT_GE(status.objectives[0].burn_fast, 14.4);
  EXPECT_GE(status.objectives[0].burn_fast_short, 14.4);

  // Window [30, 40): the regression stopped; fresh healthy traffic. The
  // fast confirmation window (last 10s) is clean, so critical clears — but
  // the slow pair (240s long, 20s confirmation reaching back to the bad
  // window) still burns: warning.
  for (int i = 0; i < 200; ++i) sketch.Record(35.0, 100.0);
  status = engine.Evaluate(36.0);
  EXPECT_EQ(status.health, SloHealth::kWarning);
  EXPECT_LT(status.objectives[0].burn_fast_short, 14.4);
  EXPECT_GE(status.objectives[0].burn_slow, 6.0);
  EXPECT_GE(status.objectives[0].burn_slow_short, 6.0);

  // By t = 45 the slow confirmation window (25s back) has shed the bad
  // window too: fully recovered, even though the slow long window still
  // remembers the spike.
  status = engine.Evaluate(45.0);
  EXPECT_EQ(status.health, SloHealth::kOk);
  EXPECT_GE(status.objectives[0].burn_slow, 6.0);
  EXPECT_LT(status.objectives[0].burn_slow_short, 6.0);
  EXPECT_EQ(engine.evaluations(), 4u);
}

TEST(SloEngineTest, ShedsCountOnlyForOptedInObjectives) {
  WindowedSketch sketch(TenSecondWindows());
  SloObjective latency = TestObjective();
  SloObjective availability = TestObjective();
  availability.name = "availability";
  availability.count_sheds_as_bad = true;

  SloEngine engine({latency, availability}, &sketch);
  // 50 served fast, 50 shed (no latency recorded).
  for (int i = 0; i < 50; ++i) sketch.Record(5.0, 100.0);
  for (int i = 0; i < 50; ++i) sketch.RecordBad(5.0);
  const SloStatus status = engine.Evaluate(6.0);
  ASSERT_EQ(status.objectives.size(), 2u);
  // The latency objective scores served requests only: clean.
  EXPECT_EQ(status.objectives[0].health, SloHealth::kOk);
  EXPECT_DOUBLE_EQ(status.objectives[0].bad_fraction_fast, 0.0);
  // The availability objective counts the sheds: half the traffic is bad.
  EXPECT_EQ(status.objectives[1].health, SloHealth::kCritical);
  EXPECT_DOUBLE_EQ(status.objectives[1].bad_fraction_fast, 0.5);
  // Aggregate = worst objective.
  EXPECT_EQ(status.health, SloHealth::kCritical);
}

TEST(SloEngineTest, StatusIsACopyOfTheLastEvaluation) {
  WindowedSketch sketch(TenSecondWindows());
  SloEngine engine({TestObjective()}, &sketch);
  for (int i = 0; i < 10; ++i) sketch.Record(5.0, 50000.0);
  const SloStatus live = engine.Evaluate(6.0);
  const SloStatus copy = engine.status();
  ASSERT_EQ(copy.objectives.size(), live.objectives.size());
  EXPECT_EQ(copy.health, live.health);
  EXPECT_DOUBLE_EQ(copy.objectives[0].burn_fast, live.objectives[0].burn_fast);
}

TEST(SloEngineTest, ExportsHealthBurnsAndFractionsPerObjective) {
  WindowedSketch sketch(TenSecondWindows());
  SloEngine engine({TestObjective()}, &sketch);
  MetricsRegistry registry;

  // Pre-evaluation export: series exist (zeros) for a stable metric table.
  engine.ExportTo(&registry);
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_DOUBLE_EQ(snap.Value("robopt_slo_health", -1.0), 0.0);
  EXPECT_DOUBLE_EQ(snap.Value("robopt_slo_evaluations_total", -1.0), 0.0);
  EXPECT_DOUBLE_EQ(
      snap.Value("robopt_slo_burn_fast{objective=\"optimize_latency\"}", -1.0),
      0.0);

  for (int i = 0; i < 80; ++i) sketch.Record(5.0, 100.0);
  for (int i = 0; i < 20; ++i) sketch.Record(5.0, 50000.0);
  engine.Evaluate(6.0);
  engine.ExportTo(&registry);
  snap = registry.Snapshot();
  EXPECT_DOUBLE_EQ(snap.Value("robopt_slo_health", -1.0),
                   static_cast<double>(
                       static_cast<uint8_t>(SloHealth::kCritical)));
  EXPECT_DOUBLE_EQ(snap.Value("robopt_slo_evaluations_total", -1.0), 1.0);
  EXPECT_NEAR(
      snap.Value("robopt_slo_burn_fast{objective=\"optimize_latency\"}", -1.0),
      20.0, 1e-9);
  EXPECT_NEAR(
      snap.Value("robopt_slo_burn_slow{objective=\"optimize_latency\"}", -1.0),
      20.0, 1e-9);
  EXPECT_DOUBLE_EQ(
      snap.Value("robopt_slo_bad_fraction{objective=\"optimize_latency\"}",
                 -1.0),
      0.2);
}

TEST(SloEngineTest, HealthNamesAreStable) {
  EXPECT_STREQ(SloHealthName(SloHealth::kOk), "ok");
  EXPECT_STREQ(SloHealthName(SloHealth::kWarning), "warning");
  EXPECT_STREQ(SloHealthName(SloHealth::kCritical), "critical");
}

}  // namespace
}  // namespace robopt
