/// End-to-end observability coverage over the real stack:
///   - span-tree well-formedness for an optimize + execute round trip on a
///     multi-platform registry, exported to a loadable Chrome trace;
///   - bit-identical results with observability on vs. off;
///   - snapshot-vs-struct equality for every stats struct with an
///     ExportTo() hook (serve, feedback, plan cache, drift, recovery,
///     breakers);
///   - the raced shared-Executor regression: FaultStats aggregation from
///     concurrent Execute() calls goes through registry atomics and loses
///     nothing (runs under the TSan CI leg via obs_test).
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/linear_oracle.h"
#include "core/optimizer.h"
#include "exec/executor.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/optimizer_service.h"
#include "tdgen/tdgen.h"
#include "workload/driver.h"
#include "workload/generators.h"
#include "workload/trace_recorder.h"
#include "workload/trace_replay.h"
#include "workloads/datagen.h"
#include "workloads/queries.h"

namespace robopt {
namespace {

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

class ObsRoundTripTest : public ::testing::Test {
 protected:
  ObsRoundTripTest()
      : registry_(PlatformRegistry::Default(3)),
        schema_(&registry_),
        oracle_(schema_, 5),
        optimizer_(&registry_, &schema_, &oracle_),
        cost_(&registry_) {
    RegisterWorkloadKernels();
    plan_ = MakeWordCountPlan(0.001);
    catalog_.Bind(plan_.SourceIds()[0], GenerateTextLines(1000, 1000, 5));
  }

  PlatformRegistry registry_;
  FeatureSchema schema_;
  LinearFeatureOracle oracle_;
  RoboptOptimizer optimizer_;
  VirtualCost cost_;
  LogicalPlan plan_ = MakeWordCountPlan(0.001);
  DataCatalog catalog_;
};

TEST_F(ObsRoundTripTest, SpanTreeIsWellFormedAcrossOptimizeAndExecute) {
  MetricsRegistry metrics;
  Tracer tracer(4096);

  OptimizeOptions opt;
  opt.obs.metrics = &metrics;
  opt.obs.tracer = &tracer;
  opt.obs.profile = true;
  auto optimized = optimizer_.Optimize(plan_, nullptr, opt);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();

  const OptimizeProfile& oprof = optimized->profile;
  EXPECT_TRUE(oprof.enabled);
  ASSERT_NE(oprof.trace_id, 0u);
  EXPECT_GT(oprof.phase.total_us, 0.0);
  EXPECT_EQ(oprof.plans_enumerated, optimized->stats.vectors_created);
  EXPECT_EQ(oprof.oracle_rows, optimized->stats.oracle_rows);
  EXPECT_EQ(oprof.oracle_batches, optimized->stats.oracle_batches);

  // Execute the chosen plan into the *same* trace, so one Collect yields
  // the full query lifecycle.
  ExecutorOptions eo;
  eo.obs.metrics = &metrics;
  eo.obs.tracer = &tracer;
  eo.obs.profile = true;
  eo.obs.trace_id = oprof.trace_id;
  Executor executor(&registry_, &cost_, nullptr, eo);
  auto executed = executor.Execute(optimized->plan, catalog_);
  ASSERT_TRUE(executed.ok()) << executed.status().ToString();

  const ExecProfile& eprof = executed->profile;
  EXPECT_TRUE(eprof.enabled);
  EXPECT_EQ(eprof.trace_id, oprof.trace_id);
  ASSERT_EQ(eprof.ops.size(), plan_.num_operators());
  EXPECT_GT(eprof.total_wall_us, 0.0);
  double virt_sum = 0.0;
  for (const OpProfile& op : eprof.ops) {
    EXPECT_GE(op.attempts, 1);
    EXPECT_GE(op.wall_us, 0.0);
    EXPECT_GE(op.virt_s, 0.0);
    virt_sum += op.virt_s;
  }
  EXPECT_LE(virt_sum, executed->cost.total_s + 1e-9);

  // --- Span-tree well-formedness over the whole round trip. ---
  const std::vector<SpanRecord> spans = tracer.Collect(oprof.trace_id);
  ASSERT_FALSE(spans.empty());
  std::map<uint64_t, const SpanRecord*> by_id;
  for (const SpanRecord& span : spans) {
    EXPECT_EQ(span.trace_id, oprof.trace_id);
    EXPECT_TRUE(by_id.emplace(span.span_id, &span).second)
        << "duplicate span id " << span.span_id;
  }
  uint64_t optimize_root = 0, execute_root = 0;
  std::set<std::string> names;
  for (const SpanRecord& span : spans) {
    names.insert(std::string(span.name));
    // Every parent resolves inside the collected tree (or is a root).
    if (span.parent_id != 0) {
      EXPECT_TRUE(by_id.count(span.parent_id))
          << span.name << " has dangling parent " << span.parent_id;
    } else if (span.name == "optimize") {
      optimize_root = span.span_id;
    } else if (span.name == "execute") {
      execute_root = span.span_id;
    }
    EXPECT_GE(span.dur_us, 0.0);
  }
  ASSERT_NE(optimize_root, 0u);
  ASSERT_NE(execute_root, 0u);
  // The optimize tree carries Algorithm 1's phases.
  for (const char* phase :
       {"vectorize", "enumerate", "predict-batch", "unvectorize"}) {
    EXPECT_TRUE(names.count(phase)) << "missing phase span: " << phase;
  }
  // The execute tree carries one span per operator, each stamped with a
  // virtual-clock interval, plus the root's whole-plan interval.
  size_t op_spans = 0;
  for (const SpanRecord& span : spans) {
    if (span.parent_id != execute_root) continue;
    if (span.name == "convert") continue;
    ++op_spans;
    EXPECT_GE(span.virt_start_s, 0.0) << span.name;
    EXPECT_GE(span.virt_dur_s, 0.0) << span.name;
  }
  EXPECT_EQ(op_spans, plan_.num_operators());
  const SpanRecord& exec_span = *by_id.at(execute_root);
  EXPECT_DOUBLE_EQ(exec_span.virt_start_s, 0.0);
  EXPECT_NEAR(exec_span.virt_dur_s, executed->cost.total_s, 1e-9);

  // The round trip exports to a Chrome-loadable trace with both clock
  // timelines populated.
  const std::string json = ExportChromeTrace(spans);
  EXPECT_TRUE(Contains(json, "\"traceEvents\""));
  EXPECT_TRUE(Contains(json, "\"name\": \"optimize\""));
  EXPECT_TRUE(Contains(json, "\"name\": \"execute\""));
  EXPECT_TRUE(Contains(json, "\"pid\": 1"));
  EXPECT_TRUE(Contains(json, "\"pid\": 2"));

  // --- Hot-path counters landed in the shared registry. ---
  const MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_DOUBLE_EQ(snap.Value("robopt_optimize_calls_total"), 1.0);
  EXPECT_DOUBLE_EQ(snap.Value("robopt_exec_calls_total"), 1.0);
  EXPECT_DOUBLE_EQ(snap.Value("robopt_exec_ops_total"),
                   static_cast<double>(plan_.num_operators()));
  EXPECT_DOUBLE_EQ(
      snap.Value("robopt_optimize_vectors_created_total"),
      static_cast<double>(optimized->stats.vectors_created));
}

TEST_F(ObsRoundTripTest, ObservabilityOnAndOffAreBitIdentical) {
  auto base = optimizer_.Optimize(plan_);
  ASSERT_TRUE(base.ok());

  MetricsRegistry metrics;
  Tracer tracer(1024);
  OptimizeOptions opt;
  opt.obs.metrics = &metrics;
  opt.obs.tracer = &tracer;
  opt.obs.profile = true;
  auto observed = optimizer_.Optimize(plan_, nullptr, opt);
  ASSERT_TRUE(observed.ok());

  for (const LogicalOperator& op : plan_.operators()) {
    EXPECT_EQ(observed->plan.alt_index(op.id), base->plan.alt_index(op.id));
  }
  EXPECT_EQ(observed->predicted_runtime_s, base->predicted_runtime_s);
  EXPECT_EQ(observed->stats.vectors_created, base->stats.vectors_created);
  EXPECT_EQ(observed->stats.vectors_pruned, base->stats.vectors_pruned);
  EXPECT_EQ(observed->stats.final_vectors, base->stats.final_vectors);
  EXPECT_EQ(observed->stats.concat_steps, base->stats.concat_steps);
  EXPECT_EQ(observed->stats.oracle_rows, base->stats.oracle_rows);
  EXPECT_EQ(observed->stats.oracle_batches, base->stats.oracle_batches);

  // Same contract on the executor, fault layer included.
  ExecutorOptions plain;
  plain.fault_plan.profiles.push_back(
      FaultProfile{/*platform=*/kAnyPlatform, kAnyOpKind,
                   /*failure_rate=*/0.0, /*fail_on_invocation=*/2,
                   /*permanent=*/false, /*slowdown=*/1.0});
  ExecutorOptions instrumented = plain;
  instrumented.obs.metrics = &metrics;
  instrumented.obs.tracer = &tracer;
  instrumented.obs.profile = true;

  Executor plain_exec(&registry_, &cost_, nullptr, plain);
  Executor obs_exec(&registry_, &cost_, nullptr, instrumented);
  auto plain_result = plain_exec.Execute(base->plan, catalog_);
  auto obs_result = obs_exec.Execute(base->plan, catalog_);
  ASSERT_TRUE(plain_result.ok());
  ASSERT_TRUE(obs_result.ok());
  EXPECT_EQ(obs_result->cost.total_s, plain_result->cost.total_s);
  EXPECT_EQ(obs_result->cost.oom, plain_result->cost.oom);
  EXPECT_EQ(obs_result->output.rows.size(), plain_result->output.rows.size());
  EXPECT_EQ(obs_result->faults.attempts, plain_result->faults.attempts);
  EXPECT_EQ(obs_result->faults.retries, plain_result->faults.retries);
  EXPECT_EQ(obs_result->faults.backoff_s, plain_result->faults.backoff_s);
  // The plain run must not have paid for a profile.
  EXPECT_FALSE(plain_result->profile.enabled);
  EXPECT_TRUE(plain_result->profile.ops.empty());
}

// The regression this pins down: ExecResult/FaultStats are per-call structs;
// the only sanctioned way to sum them across threads sharing one Executor is
// MetricsRegistry's sharded atomics. N threads hammer one Executor with a
// deterministic one-retry fault plan and export each call's FaultStats; the
// registry must land on the exact per-thread sums, and no call may observe
// another call's accounting.
TEST_F(ObsRoundTripTest, SharedExecutorFaultStatsAggregateThroughRegistry) {
  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 20;
  MetricsRegistry metrics;

  ExecutorOptions options;
  options.obs.metrics = &metrics;  // Shared by every concurrent call.
  options.fault_plan.profiles.push_back(
      FaultProfile{/*platform=*/kAnyPlatform, kAnyOpKind,
                   /*failure_rate=*/0.0, /*fail_on_invocation=*/2,
                   /*permanent=*/false, /*slowdown=*/1.0});
  Executor executor(&registry_, &cost_, nullptr, options);
  const ExecutionPlan exec_plan = [&] {
    auto optimized = optimizer_.Optimize(plan_);
    EXPECT_TRUE(optimized.ok());
    return optimized->plan;
  }();

  // Per-thread ground truth, summed after the join.
  std::vector<FaultStats> per_thread(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kCallsPerThread; ++i) {
        auto result = executor.Execute(exec_plan, catalog_);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        // Deterministic scenario: every call sees exactly this accounting.
        ASSERT_EQ(result->faults.faults_injected, 1);
        ASSERT_EQ(result->faults.retries, 1);
        result->faults.ExportTo(&metrics);
        per_thread[t].attempts += result->faults.attempts;
        per_thread[t].retries += result->faults.retries;
        per_thread[t].faults_injected += result->faults.faults_injected;
        per_thread[t].backoff_s += result->faults.backoff_s;
        per_thread[t].retry_s += result->faults.retry_s;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  FaultStats expected;
  for (const FaultStats& s : per_thread) {
    expected.attempts += s.attempts;
    expected.retries += s.retries;
    expected.faults_injected += s.faults_injected;
    expected.backoff_s += s.backoff_s;
    expected.retry_s += s.retry_s;
  }
  const MetricsSnapshot snap = metrics.Snapshot();
  const double calls = static_cast<double>(kThreads) * kCallsPerThread;
  EXPECT_DOUBLE_EQ(snap.Value("robopt_exec_calls_total"), calls);
  EXPECT_DOUBLE_EQ(snap.Value("robopt_fault_attempts_total"),
                   static_cast<double>(expected.attempts));
  EXPECT_DOUBLE_EQ(snap.Value("robopt_fault_retries_total"),
                   static_cast<double>(expected.retries));
  EXPECT_DOUBLE_EQ(snap.Value("robopt_fault_injected_total"),
                   static_cast<double>(expected.faults_injected));
  EXPECT_NEAR(snap.Value("robopt_fault_backoff_virtual_seconds"),
              expected.backoff_s, 1e-6);
  EXPECT_NEAR(snap.Value("robopt_fault_retry_virtual_seconds"),
              expected.retry_s, 1e-6);
  // The executor's own per-call counters aggregated identically.
  EXPECT_DOUBLE_EQ(snap.Value("robopt_exec_retries_total"),
                   static_cast<double>(expected.retries));
}

/// Serving-layer half: snapshot-vs-struct equality and the Prometheus
/// endpoint carrying the complete DESIGN.md metric table.
class ObsServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    RegisterWorkloadKernels();
    registry_ = new PlatformRegistry(PlatformRegistry::Default(2));
    schema_ = new FeatureSchema(registry_);
    cost_ = new VirtualCost(registry_);
    TdgenOptions options;
    options.plans_per_shape = 4;
    options.max_operators = 10;
    options.max_structures_per_plan = 16;
    options.seed = 321;
    Executor plain(registry_, cost_);
    Tdgen tdgen(registry_, schema_, &plain, options);
    auto base = tdgen.Generate();
    ASSERT_TRUE(base.ok()) << base.status().ToString();
    base_ = new MlDataset(std::move(base.value()));
  }

  static std::unique_ptr<OptimizerService> MakeService(
      RequestObserver* observer = nullptr) {
    ServeOptions options;
    options.background_retrain = false;
    options.retrain_min_events = 8;
    options.promote_tolerance = 0.5;
    options.forest.num_trees = 20;
    options.observability = true;
    options.request_observer = observer;
    // The second observability layer rides along: decision diagnostics and
    // the SLO engine, so their metric families join the exposition below.
    options.diagnostics.enabled = true;
    options.slo.enabled = true;
    auto service = OptimizerService::Create(registry_, schema_, *base_,
                                            /*initial=*/nullptr, options);
    EXPECT_TRUE(service.ok()) << service.status().ToString();
    return std::move(service.value());
  }

  /// Drives real traffic through every instrumented subsystem: optimizes
  /// (cache miss + hit + oracle-cache run), executions with retries and
  /// slowdowns feeding the service observer, one fault-layer failure, and a
  /// forced retrain cycle.
  static void DriveTraffic(OptimizerService* service) {
    LogicalPlan plan = MakeWordCountPlan(0.001);
    auto first = service->Optimize(plan);
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    auto second = service->Optimize(plan);  // Plan-cache hit.
    ASSERT_TRUE(second.ok());
    EXPECT_TRUE(second->cache_hit);
    // A different query (a plan-cache miss, so the optimizer really runs)
    // with the per-call oracle cache on, to materialize the cache counters.
    LogicalPlan q3 = MakeTpchQ3Plan(0.01);
    OptimizeOptions cached;
    cached.oracle_cache_bytes = 1 << 20;
    auto third = service->Optimize(q3, nullptr, cached);
    ASSERT_TRUE(third.ok());
    ASSERT_GT(third->optimize.oracle_cache.rows, 0u);

    DataCatalog catalog;
    catalog.Bind(plan.SourceIds()[0], GenerateTextLines(1000, 1000, 5));

    // Successful executions with one injected retry and a slowdown rule;
    // each call's FaultStats goes through the sanctioned registry path.
    ExecutorOptions eo;
    eo.observer = service;
    eo.health = service->health();
    eo.obs = service->obs();
    eo.fault_plan.profiles.push_back(
        FaultProfile{/*platform=*/kAnyPlatform, kAnyOpKind,
                     /*failure_rate=*/0.0, /*fail_on_invocation=*/2,
                     /*permanent=*/false, /*slowdown=*/1.0});
    eo.fault_plan.profiles.push_back(
        FaultProfile{/*platform=*/kAnyPlatform, kAnyOpKind,
                     /*failure_rate=*/0.0, /*fail_on_invocation=*/0,
                     /*permanent=*/false, /*slowdown=*/1.5});
    Executor executor(registry_, cost_, nullptr, eo);
    for (int i = 0; i < 10; ++i) {
      auto result = executor.Execute(first->optimize.plan, catalog);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      result->faults.ExportTo(service->metrics());
    }

    // One fault-layer failure: permanent fault, retries can't help. Lands
    // in RecoveryStats via OnExecutionFailure and in the breaker books.
    ExecutorOptions failing = eo;
    failing.fault_plan.profiles.clear();
    failing.fault_plan.profiles.push_back(
        FaultProfile{/*platform=*/kAnyPlatform, kAnyOpKind,
                     /*failure_rate=*/1.0, /*fail_on_invocation=*/0,
                     /*permanent=*/true, /*slowdown=*/1.0});
    Executor bad(registry_, cost_, nullptr, failing);
    FailureReport report;
    auto failed = bad.Execute(first->optimize.plan, catalog, &report);
    EXPECT_FALSE(failed.ok());
    EXPECT_TRUE(report.failed);

    auto retrain = service->RetrainNow(/*force=*/true);
    ASSERT_TRUE(retrain.ok()) << retrain.status().ToString();
  }

  static PlatformRegistry* registry_;
  static FeatureSchema* schema_;
  static VirtualCost* cost_;
  static MlDataset* base_;
};

PlatformRegistry* ObsServeTest::registry_ = nullptr;
FeatureSchema* ObsServeTest::schema_ = nullptr;
VirtualCost* ObsServeTest::cost_ = nullptr;
MlDataset* ObsServeTest::base_ = nullptr;

TEST_F(ObsServeTest, SnapshotMirrorsEveryExportedStatsStruct) {
  auto service = MakeService();
  DriveTraffic(service.get());

  const MetricsSnapshot snap = service->SnapshotMetrics();
  const ServeStats stats = service->Stats();

  auto expect = [&](const char* name, double want) {
    EXPECT_DOUBLE_EQ(snap.Value(name, -1.0), want) << name;
  };
  // ServeStats.
  expect("robopt_serve_current_version",
         static_cast<double>(stats.current_version));
  expect("robopt_serve_versions_published",
         static_cast<double>(stats.versions_published));
  expect("robopt_serve_retrains", static_cast<double>(stats.retrains));
  expect("robopt_serve_promotions", static_cast<double>(stats.promotions));
  expect("robopt_serve_rejections", static_cast<double>(stats.rejections));
  expect("robopt_serve_experience_rows",
         static_cast<double>(stats.experience_rows));
  expect("robopt_serve_holdout_rows",
         static_cast<double>(stats.holdout_rows));
  // FeedbackStats.
  expect("robopt_feedback_offered", static_cast<double>(stats.feedback.offered));
  expect("robopt_feedback_accepted",
         static_cast<double>(stats.feedback.accepted));
  expect("robopt_feedback_dropped",
         static_cast<double>(stats.feedback.dropped));
  expect("robopt_feedback_rejected_nonfinite",
         static_cast<double>(stats.feedback.rejected_nonfinite));
  expect("robopt_feedback_drained",
         static_cast<double>(stats.feedback.drained));
  expect("robopt_feedback_failures",
         static_cast<double>(stats.feedback.failures));
  // PlanCacheStats.
  expect("robopt_plan_cache_hits", static_cast<double>(stats.plan_cache.hits));
  expect("robopt_plan_cache_misses",
         static_cast<double>(stats.plan_cache.misses));
  expect("robopt_plan_cache_insertions",
         static_cast<double>(stats.plan_cache.insertions));
  expect("robopt_plan_cache_evictions",
         static_cast<double>(stats.plan_cache.evictions));
  expect("robopt_plan_cache_invalidations",
         static_cast<double>(stats.plan_cache.invalidations));
  expect("robopt_plan_cache_platform_invalidations",
         static_cast<double>(stats.plan_cache.platform_invalidations));
  expect("robopt_plan_cache_migrated_in",
         static_cast<double>(stats.plan_cache.migrated_in));
  expect("robopt_plan_cache_migrated_out",
         static_cast<double>(stats.plan_cache.migrated_out));
  // Per-stripe feedback drop counters (stripe 0 always exists; one stripe
  // per resolved shard).
  ASSERT_FALSE(stats.feedback.stripe_dropped.empty());
  EXPECT_EQ(stats.feedback.stripe_dropped.size(),
            static_cast<size_t>(stats.num_shards));
  for (size_t i = 0; i < stats.feedback.stripe_dropped.size(); ++i) {
    expect(("robopt_feedback_stripe_dropped{stripe=\"" + std::to_string(i) +
            "\"}")
               .c_str(),
           static_cast<double>(stats.feedback.stripe_dropped[i]));
  }
  // Sharded-serving aggregates (exported in legacy mode too, mostly zero,
  // so the metric table is stable across shard counts).
  expect("robopt_shard_count", static_cast<double>(stats.num_shards));
  expect("robopt_shard_processed_total",
         static_cast<double>(stats.shard_processed));
  expect("robopt_shard_shed_queue_full_total",
         static_cast<double>(stats.shard_shed_queue_full));
  expect("robopt_shard_shed_deadline_total",
         static_cast<double>(stats.shard_shed_deadline));
  expect("robopt_shard_queue_depth",
         static_cast<double>(stats.shard_queue_depth));
  expect("robopt_router_rebalances_total",
         static_cast<double>(stats.router_rebalances));
  expect("robopt_router_slots_moved_total",
         static_cast<double>(stats.router_slots_moved));
  // DriftStats.
  expect("robopt_drift_error_ewma", stats.current_drift.error_ewma);
  expect("robopt_drift_observations",
         static_cast<double>(stats.current_drift.observations));
  // RecoveryStats.
  expect("robopt_recovery_failures_observed",
         static_cast<double>(stats.recovery.failures_observed));
  expect("robopt_recovery_breaker_trips",
         static_cast<double>(stats.recovery.breaker_trips));
  expect("robopt_recovery_breaker_recoveries",
         static_cast<double>(stats.recovery.breaker_recoveries));
  expect("robopt_recovery_masked_optimizes",
         static_cast<double>(stats.recovery.masked_optimizes));
  expect("robopt_recovery_plans_invalidated_on_trip",
         static_cast<double>(stats.recovery.plans_invalidated_on_trip));
  expect("robopt_recovery_open_platform_mask",
         static_cast<double>(stats.recovery.open_platform_mask));
  // Breaker views, per platform.
  for (int i = 0; i < registry_->num_platforms(); ++i) {
    const BreakerSnapshot breaker =
        service->health()->snapshot(static_cast<PlatformId>(i));
    const std::string label = "{platform=\"" + std::to_string(i) + "\"}";
    expect(("robopt_breaker_state" + label).c_str(),
           static_cast<double>(static_cast<int>(breaker.state)));
    expect(("robopt_breaker_consecutive_failures" + label).c_str(),
           static_cast<double>(breaker.consecutive_failures));
    expect(("robopt_breaker_trips" + label).c_str(),
           static_cast<double>(breaker.trips));
    expect(("robopt_breaker_recoveries" + label).c_str(),
           static_cast<double>(breaker.recoveries));
    expect(("robopt_breaker_rejected" + label).c_str(),
           static_cast<double>(breaker.rejected));
  }
  // Sanity: the traffic actually moved the interesting books.
  EXPECT_GT(stats.plan_cache.hits, 0u);
  EXPECT_GT(stats.feedback.offered, 0u);
  EXPECT_GT(stats.recovery.failures_observed, 0u);
  EXPECT_GE(stats.retrains, 1u);
}

// Every metric in DESIGN.md's observability table must appear in the
// Prometheus exposition after real traffic. Names here are the table,
// verbatim; a rename on either side fails this test.
TEST_F(ObsServeTest, PrometheusEndpointCoversTheWholeMetricTable) {
  // The service records its own traffic so the trace/replay/workload metric
  // families materialize in the same exposition as everything else.
  const std::string trace_path =
      ::testing::TempDir() + "robopt_obs_e2e.trace";
  auto recorder = TraceRecorder::Open(trace_path);
  ASSERT_TRUE(recorder.ok()) << recorder.status().ToString();
  auto service = MakeService(recorder->get());
  DriveTraffic(service.get());

  // Workload-API traffic: a seeded open-loop stream into the recording
  // service, then the closed trace replayed back through it.
  GeneratorOptions gen;
  gen.base.seed = 5;
  gen.base.max_ops = 8;
  gen.base.metrics = service->metrics();
  OpenLoopSource source(PlanPool::kSynthetic, gen);
  ASSERT_TRUE(source.Load().ok());
  DriveOptions drive;
  drive.registry = registry_;
  drive.metrics = service->metrics();
  DriveWorkload(service.get(), &source, drive);
  ASSERT_TRUE(recorder->get()->Close().ok());
  WorkloadOptions replay_options;
  replay_options.metrics = service->metrics();
  TraceReplaySource replay(trace_path, replay_options);
  ASSERT_TRUE(replay.Load().ok());
  DriveWorkload(service.get(), &replay, drive);
  std::remove(trace_path.c_str());

  const std::string text = service->ExportPrometheus();
  const char* kTable[] = {
      // Optimizer (src/core).
      "robopt_optimize_calls_total",
      "robopt_optimize_vectors_created_total",
      "robopt_optimize_vectors_pruned_total",
      "robopt_optimize_oracle_rows_total",
      "robopt_optimize_oracle_batches_total",
      "robopt_optimize_latency_us",
      "robopt_oracle_cache_hits_total",
      "robopt_oracle_cache_dups_total",
      "robopt_oracle_cache_unique_total",
      // Executor + fault layer (src/exec).
      "robopt_exec_calls_total",
      "robopt_exec_ops_total",
      "robopt_exec_attempts_total",
      "robopt_exec_retries_total",
      "robopt_exec_faults_injected_total",
      "robopt_exec_failures_total",
      "robopt_exec_breaker_rejections_total",
      "robopt_exec_oom_total",
      "robopt_exec_wall_us",
      "robopt_fault_attempts_total",
      "robopt_fault_retries_total",
      "robopt_fault_injected_total",
      "robopt_fault_backoff_virtual_seconds",
      "robopt_fault_retry_virtual_seconds",
      "robopt_fault_slowdown_virtual_seconds",
      // Circuit breakers.
      "robopt_breaker_virtual_clock_seconds",
      "robopt_breaker_state",
      "robopt_breaker_consecutive_failures",
      "robopt_breaker_trips",
      "robopt_breaker_recoveries",
      "robopt_breaker_rejected",
      // Serving layer.
      "robopt_serve_optimize_calls_total",
      "robopt_serve_plan_cache_hits_total",
      "robopt_serve_current_version",
      "robopt_serve_versions_published",
      "robopt_serve_retrains",
      "robopt_serve_promotions",
      "robopt_serve_rejections",
      "robopt_serve_experience_rows",
      "robopt_serve_holdout_rows",
      "robopt_feedback_offered",
      "robopt_feedback_accepted",
      "robopt_feedback_dropped",
      "robopt_feedback_rejected_nonfinite",
      "robopt_feedback_drained",
      "robopt_feedback_failures",
      "robopt_feedback_stripe_dropped",
      "robopt_plan_cache_hits",
      "robopt_plan_cache_misses",
      "robopt_plan_cache_insertions",
      "robopt_plan_cache_evictions",
      "robopt_plan_cache_invalidations",
      "robopt_plan_cache_platform_invalidations",
      "robopt_plan_cache_migrated_in",
      "robopt_plan_cache_migrated_out",
      // Sharded serving (aggregates exist in legacy mode too).
      "robopt_shard_count",
      "robopt_shard_processed_total",
      "robopt_shard_shed_queue_full_total",
      "robopt_shard_shed_deadline_total",
      "robopt_shard_queue_depth",
      "robopt_router_rebalances_total",
      "robopt_router_slots_moved_total",
      "robopt_drift_error_ewma",
      "robopt_drift_observations",
      "robopt_recovery_failures_observed",
      "robopt_recovery_breaker_trips",
      "robopt_recovery_breaker_recoveries",
      "robopt_recovery_masked_optimizes",
      "robopt_recovery_plans_invalidated_on_trip",
      "robopt_recovery_open_platform_mask",
      // ML inference telemetry.
      "robopt_ml_forest_rows_scored_total",
      "robopt_ml_forest_batches_total",
      // Workload API + trace record/replay (src/workload).
      "robopt_workload_ops_total",
      "robopt_trace_records_written_total",
      "robopt_trace_records_dropped_total",
      "robopt_trace_plan_defs_total",
      "robopt_trace_bytes_written_total",
      "robopt_replay_ops_total",
      "robopt_replay_lag_us",
      "robopt_replay_mismatches_total",
      // Decision diagnostics, sketches & SLOs (src/obs second layer).
      "robopt_decisions_recorded_total",
      "robopt_decisions_dropped_total",
      "robopt_optimize_latency_p50_us",
      "robopt_optimize_latency_p95_us",
      "robopt_optimize_latency_p99_us",
      "robopt_slo_health",
      "robopt_slo_burn_fast",
      "robopt_slo_burn_slow",
      "robopt_slo_bad_fraction",
      "robopt_slo_evaluations_total",
      "robopt_shard_shed_slo_total",
      // Trace-ring health + process identity.
      "robopt_trace_spans_total",
      "robopt_trace_dropped_total",
      "robopt_trace_ring_utilization",
      "robopt_build_info",
      "robopt_uptime_seconds",
  };
  for (const char* name : kTable) {
    EXPECT_TRUE(Contains(text, name)) << "metric missing from /metrics: "
                                      << name;
  }
  // And the trace endpoint produces a loadable Chrome trace of the traffic.
  const std::string trace = service->ExportTraceJson();
  EXPECT_TRUE(Contains(trace, "\"traceEvents\""));
  EXPECT_TRUE(Contains(trace, "\"name\": \"optimize\""));
}

}  // namespace
}  // namespace robopt
