/// QuantileSketch / ShardedSketch / WindowedSketch correctness:
///   - the DDSketch relative-error guarantee, property-tested against a
///     sorted-reference oracle across adversarial distributions;
///   - lossless bucket-wise merge (split + merge == one sketch);
///   - CountAbove bucket-granular semantics on separated clusters;
///   - windowed rotation: trailing-window filtering, ring overwrite, lazy
///     rotation on quiet periods, bad-event accounting and exemplar
///     retention;
///   - concurrent shard adds + snapshot merge + window rotation (runs under
///     the TSan CI leg via obs_test).
#include "obs/sketch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <random>
#include <thread>
#include <vector>

namespace robopt {
namespace {

/// The same rank the sketch targets: the element of rank floor(q * (n - 1))
/// of the sorted values.
double ReferenceQuantile(const std::vector<double>& sorted, double q) {
  const size_t rank =
      static_cast<size_t>(q * static_cast<double>(sorted.size() - 1));
  return sorted[rank];
}

/// Asserts the sketch answers every probed quantile within the alpha
/// relative-error bound of the sorted-reference oracle.
void ExpectWithinAlpha(const std::vector<double>& values, double alpha) {
  QuantileSketch sketch(alpha);
  for (double v : values) sketch.Add(v);
  ASSERT_EQ(sketch.count(), values.size());

  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const double probes[] = {0.0,  0.01, 0.1,  0.25, 0.5,  0.75,
                           0.9,  0.95, 0.99, 0.999, 1.0};
  for (double q : probes) {
    const double truth = ReferenceQuantile(sorted, q);
    const double estimate = sketch.Quantile(q);
    if (truth <= QuantileSketch::kMinTrackable) {
      // Sub-trackable values are exact (the zero bucket).
      EXPECT_LE(estimate, QuantileSketch::kMinTrackable) << "q=" << q;
    } else {
      EXPECT_NEAR(estimate, truth, alpha * truth + 1e-12)
          << "q=" << q << " n=" << values.size() << " alpha=" << alpha;
    }
  }
  // Extremes are exact, not just within alpha.
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.0), sorted.front());
  EXPECT_DOUBLE_EQ(sketch.Quantile(1.0), sorted.back());
}

TEST(QuantileSketchTest, EmptySketchAnswersZero) {
  QuantileSketch sketch(0.01);
  EXPECT_EQ(sketch.count(), 0u);
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.5), 0.0);
  EXPECT_EQ(sketch.CountAbove(1.0), 0u);
  EXPECT_DOUBLE_EQ(sketch.min(), 0.0);
  EXPECT_DOUBLE_EQ(sketch.max(), 0.0);
}

TEST(QuantileSketchTest, PropertyTestAgainstSortedReference) {
  std::mt19937_64 rng(20260809);
  for (double alpha : {0.005, 0.01, 0.05}) {
    // Uniform latencies across three orders of magnitude.
    {
      std::uniform_real_distribution<double> dist(1.0, 1e6);
      std::vector<double> values(20000);
      for (double& v : values) v = dist(rng);
      ExpectWithinAlpha(values, alpha);
    }
    // Log-normal: the canonical latency shape (heavy right tail).
    {
      std::lognormal_distribution<double> dist(4.0, 2.0);
      std::vector<double> values(20000);
      for (double& v : values) v = dist(rng);
      ExpectWithinAlpha(values, alpha);
    }
    // Exponential with a long tail.
    {
      std::exponential_distribution<double> dist(1e-3);
      std::vector<double> values(20000);
      for (double& v : values) v = dist(rng);
      ExpectWithinAlpha(values, alpha);
    }
    // Constant stream: every quantile is the constant, exactly.
    {
      std::vector<double> values(5000, 42.0);
      ExpectWithinAlpha(values, alpha);
    }
    // Bimodal: cache hits around 5us, misses around 5ms.
    {
      std::normal_distribution<double> hit(5.0, 0.5);
      std::normal_distribution<double> miss(5000.0, 200.0);
      std::bernoulli_distribution pick(0.8);
      std::vector<double> values(20000);
      for (double& v : values) {
        v = std::max(0.1, pick(rng) ? hit(rng) : miss(rng));
      }
      ExpectWithinAlpha(values, alpha);
    }
    // Zero-heavy: a third of the stream below the trackable floor.
    {
      std::uniform_real_distribution<double> dist(10.0, 1000.0);
      std::vector<double> values;
      values.reserve(9000);
      for (int i = 0; i < 3000; ++i) values.push_back(0.0);
      for (int i = 0; i < 6000; ++i) values.push_back(dist(rng));
      std::shuffle(values.begin(), values.end(), rng);
      ExpectWithinAlpha(values, alpha);
    }
  }
}

TEST(QuantileSketchTest, WeightedAddMatchesRepeatedAdd) {
  QuantileSketch weighted(0.01);
  QuantileSketch repeated(0.01);
  weighted.Add(100.0, 7);
  weighted.Add(2000.0, 3);
  for (int i = 0; i < 7; ++i) repeated.Add(100.0);
  for (int i = 0; i < 3; ++i) repeated.Add(2000.0);
  EXPECT_EQ(weighted.count(), repeated.count());
  for (double q : {0.0, 0.3, 0.5, 0.69, 0.71, 1.0}) {
    EXPECT_DOUBLE_EQ(weighted.Quantile(q), repeated.Quantile(q)) << q;
  }
}

TEST(QuantileSketchTest, MergeIsLossless) {
  std::mt19937_64 rng(7);
  std::lognormal_distribution<double> dist(3.0, 1.5);
  std::vector<double> values(10000);
  for (double& v : values) v = dist(rng);

  QuantileSketch whole(0.01);
  QuantileSketch left(0.01);
  QuantileSketch right(0.01);
  for (size_t i = 0; i < values.size(); ++i) {
    whole.Add(values[i]);
    (i % 2 == 0 ? left : right).Add(values[i]);
  }
  left.Merge(right);
  ASSERT_EQ(left.count(), whole.count());
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    EXPECT_DOUBLE_EQ(left.Quantile(q), whole.Quantile(q)) << "q=" << q;
  }
  EXPECT_EQ(left.CountAbove(50.0), whole.CountAbove(50.0));
}

TEST(QuantileSketchTest, MergeIgnoresIncompatibleAlpha) {
  QuantileSketch a(0.01);
  QuantileSketch b(0.05);
  a.Add(10.0);
  b.Add(99999.0);
  a.Merge(b);  // Dropped, not corrupted.
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.Quantile(1.0), 10.0);
}

TEST(QuantileSketchTest, CountAboveIsExactBetweenSeparatedClusters) {
  QuantileSketch sketch(0.01);
  for (int i = 0; i < 700; ++i) sketch.Add(1000.0);
  for (int i = 0; i < 300; ++i) sketch.Add(100000.0);
  // The threshold sits far (>> alpha) from both clusters: exact answer.
  EXPECT_EQ(sketch.CountAbove(5000.0), 300u);
  EXPECT_EQ(sketch.CountAbove(0.5), 1000u);
  EXPECT_EQ(sketch.CountAbove(200000.0), 0u);
}

TEST(QuantileSketchTest, ClearResetsEverything) {
  QuantileSketch sketch(0.01);
  sketch.Add(123.0);
  sketch.Clear();
  EXPECT_EQ(sketch.count(), 0u);
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.99), 0.0);
  sketch.Add(7.0);
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.5), 7.0);
}

TEST(ShardedSketchTest, SnapshotMergesEveryShard) {
  ShardedSketch sharded(0.01);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sharded, t] {
      for (int i = 0; i < kPerThread; ++i) {
        sharded.Add(100.0 * (t + 1));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(sharded.count(), static_cast<uint64_t>(kThreads * kPerThread));
  QuantileSketch merged = sharded.Snapshot();
  EXPECT_EQ(merged.count(), static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_DOUBLE_EQ(merged.Quantile(0.0), 100.0);
  EXPECT_DOUBLE_EQ(merged.Quantile(1.0), 100.0 * kThreads);
}

/// The windowed fixture drives time by hand: window_s = 10, four retained
/// windows, exemplar capacity 2.
WindowedSketch::Options SmallWindowOptions() {
  WindowedSketch::Options options;
  options.alpha = 0.01;
  options.window_s = 10.0;
  options.windows = 4;
  options.exemplars_per_window = 2;
  return options;
}

TEST(WindowedSketchTest, TrailingWindowFiltersOldRollups) {
  WindowedSketch sketch(SmallWindowOptions());
  // Window [0, 10): 100 values at 1000us.
  for (int i = 0; i < 100; ++i) sketch.Record(1.0, 1000.0);
  // Window [10, 20): 100 values at 9000us.
  for (int i = 0; i < 100; ++i) sketch.Record(11.0, 9000.0);

  // Full retention sees both populations.
  QuantileSketch all = sketch.Merged(0.0, 12.0);
  EXPECT_EQ(all.count(), 200u);
  EXPECT_NEAR(all.Quantile(0.25), 1000.0, 1000.0 * 0.011);
  EXPECT_NEAR(all.Quantile(0.75), 9000.0, 9000.0 * 0.011);

  // At t = 35 a 10s trailing window excludes both closed windows: only the
  // (empty) live window remains.
  EXPECT_EQ(sketch.Merged(10.0, 35.0).count(), 0u);
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.99, 10.0, 35.0), 0.0);
  // A 20s trailing window at t = 35 (cutoff 15) still covers window
  // [10, 20) but not [0, 10).
  QuantileSketch recent = sketch.Merged(20.0, 35.0);
  EXPECT_EQ(recent.count(), 100u);
  EXPECT_NEAR(recent.Quantile(0.5), 9000.0, 9000.0 * 0.011);
  // Lifetime counter is rotation-immune.
  EXPECT_EQ(sketch.total_count(), 200u);
}

TEST(WindowedSketchTest, RingOverwritesOldestWindows) {
  WindowedSketch sketch(SmallWindowOptions());  // 4 retained windows.
  for (int w = 0; w < 6; ++w) {
    sketch.Record(w * 10.0 + 1.0, 100.0 * (w + 1));
  }
  // Rotate the last window closed; [0,10) and [10,20) fell off the ring.
  QuantileSketch all = sketch.Merged(0.0, 61.0);
  EXPECT_EQ(all.count(), 4u);
  EXPECT_DOUBLE_EQ(all.Quantile(0.0), 300.0);
  EXPECT_DOUBLE_EQ(all.Quantile(1.0), 600.0);
}

TEST(WindowedSketchTest, QuietPeriodRotatesLazilyOnQuery) {
  WindowedSketch sketch(SmallWindowOptions());
  for (int i = 0; i < 50; ++i) sketch.Record(5.0, 2000.0);
  // No Record() since; a query an hour later must not see stale data as
  // current. The query itself rotates.
  EXPECT_EQ(sketch.Merged(20.0, 3600.0).count(), 0u);
  EXPECT_DOUBLE_EQ(sketch.BadFraction(1000.0, 20.0, 3600.0), 0.0);
}

TEST(WindowedSketchTest, BadFractionCountsThresholdAndBadEvents) {
  WindowedSketch sketch(SmallWindowOptions());
  // 60 good (100us), 20 bad-by-latency (50000us), 20 shed (no latency).
  for (int i = 0; i < 60; ++i) sketch.Record(1.0, 100.0);
  for (int i = 0; i < 20; ++i) sketch.Record(1.0, 50000.0);
  for (int i = 0; i < 20; ++i) sketch.RecordBad(1.0);

  // Threshold separates the clusters, so the fractions are exact.
  EXPECT_DOUBLE_EQ(sketch.BadFraction(5000.0, 0.0, 2.0,
                                      /*count_bad_events=*/true),
                   40.0 / 100.0);
  EXPECT_DOUBLE_EQ(sketch.BadFraction(5000.0, 0.0, 2.0,
                                      /*count_bad_events=*/false),
                   20.0 / 80.0);
  // Bad events survive rotation into the rollup.
  EXPECT_DOUBLE_EQ(sketch.BadFraction(5000.0, 0.0, 15.0,
                                      /*count_bad_events=*/true),
                   40.0 / 100.0);
}

TEST(WindowedSketchTest, ExemplarsKeepHighestPerWindow) {
  WindowedSketch sketch(SmallWindowOptions());  // 2 exemplars per window.
  for (int i = 1; i <= 5; ++i) {
    SketchExemplar exemplar;
    exemplar.fp_lo = static_cast<uint64_t>(i);
    exemplar.span_id = static_cast<uint64_t>(100 + i);
    sketch.Record(1.0, 1000.0 * i, &exemplar);
  }
  std::vector<SketchExemplar> kept = sketch.Exemplars(0.0, 2.0);
  ASSERT_EQ(kept.size(), 2u);  // Capacity 2, highest first.
  EXPECT_DOUBLE_EQ(kept[0].value, 5000.0);
  EXPECT_EQ(kept[0].fp_lo, 5u);
  EXPECT_EQ(kept[0].span_id, 105u);
  EXPECT_DOUBLE_EQ(kept[1].value, 4000.0);
  EXPECT_EQ(kept[1].fp_lo, 4u);

  // A second window's exemplars join the trailing view, still sorted.
  SketchExemplar late;
  late.fp_lo = 99;
  sketch.Record(11.0, 4500.0, &late);
  kept = sketch.Exemplars(0.0, 12.0);
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_DOUBLE_EQ(kept[0].value, 5000.0);
  EXPECT_DOUBLE_EQ(kept[1].value, 4500.0);
  EXPECT_EQ(kept[1].fp_lo, 99u);
  EXPECT_DOUBLE_EQ(kept[2].value, 4000.0);
}

/// Writers hammer Record()/RecordBad() across window edges while readers
/// merge trailing windows, pull quantiles and exemplars — the TSan check of
/// the rotation lock discipline. Counts must balance exactly afterwards.
TEST(WindowedSketchTest, ConcurrentRecordRotateAndQueryIsRaceFree) {
  WindowedSketch::Options options;
  options.alpha = 0.01;
  options.window_s = 0.001;  // Many rotations over the run.
  options.windows = 8;
  options.exemplars_per_window = 2;
  WindowedSketch sketch(options);

  constexpr int kWriters = 4;
  constexpr int kPerWriter = 5000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&sketch, t] {
      for (int i = 0; i < kPerWriter; ++i) {
        const double now_s = static_cast<double>(i) * 1e-5 * (t + 1);
        if (i % 16 == 0) {
          sketch.RecordBad(now_s);
        } else if (i % 7 == 0) {
          SketchExemplar exemplar;
          exemplar.fp_lo = static_cast<uint64_t>(i);
          sketch.Record(now_s, 1000.0 + i, &exemplar);
        } else {
          sketch.Record(now_s, 100.0 + (i % 100));
        }
      }
    });
  }
  std::thread reader([&sketch, &stop] {
    double now_s = 0.0;
    while (!stop.load(std::memory_order_relaxed)) {
      now_s += 0.002;
      (void)sketch.Quantile(0.99, 0.01, now_s);
      (void)sketch.BadFraction(500.0, 0.01, now_s);
      (void)sketch.Exemplars(0.01, now_s);
      (void)sketch.Merged(0.0, now_s).count();
    }
  });
  for (std::thread& writer : writers) writer.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  // Every non-bad Record landed exactly once in the lifetime counter.
  const uint64_t expected_records = [] {
    uint64_t n = 0;
    for (int i = 0; i < kPerWriter; ++i) {
      if (i % 16 != 0) ++n;
    }
    return n * kWriters;
  }();
  EXPECT_EQ(sketch.total_count(), expected_records);
}

}  // namespace
}  // namespace robopt
