#include "obs/export.h"

#include <gtest/gtest.h>

#include <string>

namespace robopt {
namespace {

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

/// Minimal structural JSON check: braces/brackets balance and close in
/// order, quotes pair up. Catches the classes of breakage (trailing commas
/// aside) that keep chrome://tracing from loading a file.
void ExpectBalancedJson(const std::string& json) {
  std::string stack;
  bool in_string = false;
  bool escaped = false;
  for (char c : json) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"') in_string = false;
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        break;
      case '}':
        ASSERT_FALSE(stack.empty());
        ASSERT_EQ(stack.back(), '{');
        stack.pop_back();
        break;
      case ']':
        ASSERT_FALSE(stack.empty());
        ASSERT_EQ(stack.back(), '[');
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  EXPECT_FALSE(in_string);
  EXPECT_TRUE(stack.empty());
}

TEST(PrometheusExportTest, CountersAndGauges) {
  MetricsRegistry registry;
  registry.GetCounter("robopt_optimize_calls_total")->Add(5);
  registry.Set("robopt_serve_current_version", 3.0);
  const std::string text = ExportPrometheus(registry.Snapshot());
  EXPECT_TRUE(Contains(text, "# TYPE robopt_optimize_calls_total counter\n"));
  EXPECT_TRUE(Contains(text, "robopt_optimize_calls_total 5\n"));
  EXPECT_TRUE(Contains(text, "# TYPE robopt_serve_current_version gauge\n"));
  EXPECT_TRUE(Contains(text, "robopt_serve_current_version 3\n"));
}

TEST(PrometheusExportTest, LabeledSeriesKeepLabelsOffTheTypeLine) {
  MetricsRegistry registry;
  registry.Set("robopt_breaker_trips{platform=\"1\"}", 2.0);
  registry.Set("robopt_breaker_trips{platform=\"0\"}", 7.0);
  const std::string text = ExportPrometheus(registry.Snapshot());
  EXPECT_TRUE(Contains(text, "# TYPE robopt_breaker_trips gauge\n"));
  EXPECT_TRUE(Contains(text, "robopt_breaker_trips{platform=\"0\"} 7\n"));
  EXPECT_TRUE(Contains(text, "robopt_breaker_trips{platform=\"1\"} 2\n"));
  EXPECT_FALSE(Contains(text, "# TYPE robopt_breaker_trips{"));
}

TEST(PrometheusExportTest, HistogramIsCumulativeWithInfBucket) {
  MetricsRegistry registry;
  Histogram* histogram = registry.GetHistogram("robopt_lat_us", {1.0, 10.0});
  histogram->Observe(0.5);
  histogram->Observe(0.7);
  histogram->Observe(5.0);
  histogram->Observe(100.0);
  const std::string text = ExportPrometheus(registry.Snapshot());
  EXPECT_TRUE(Contains(text, "# TYPE robopt_lat_us histogram\n"));
  EXPECT_TRUE(Contains(text, "robopt_lat_us_bucket{le=\"1\"} 2\n"));
  // Cumulative: le=10 includes the le=1 observations.
  EXPECT_TRUE(Contains(text, "robopt_lat_us_bucket{le=\"10\"} 3\n"));
  EXPECT_TRUE(Contains(text, "robopt_lat_us_bucket{le=\"+Inf\"} 4\n"));
  EXPECT_TRUE(Contains(text, "robopt_lat_us_count 4\n"));
  EXPECT_TRUE(Contains(text, "robopt_lat_us_sum 106.2"));
}

TEST(PrometheusExportTest, EscapeLabelValueCoversTheExpositionTriple) {
  // Exposition format 0.0.4: inside a quoted label value, backslash,
  // double-quote and newline are the only characters that need escaping.
  EXPECT_EQ(PromEscapeLabelValue("plain"), "plain");
  EXPECT_EQ(PromEscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(PromEscapeLabelValue("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(PromEscapeLabelValue("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(PromEscapeLabelValue("\\\"\n"), "\\\\\\\"\\n");
  EXPECT_EQ(PromEscapeLabelValue(""), "");
  // Escaping an already-escaped value is stable under the normalizer (the
  // doubled backslash is a valid \\ escape), not under re-escaping; callers
  // must escape exactly once.
  EXPECT_EQ(PromEscapeLabelValue("a\\\\b"), "a\\\\\\\\b");
}

TEST(PrometheusExportTest, ExpositionNormalizesUnescapedLabelValues) {
  // A builder that skipped PromEscapeLabelValue and baked a raw newline and
  // a stray backslash into its series key. The exposition must still come
  // out as one sample per line with valid escapes.
  MetricsRegistry registry;
  registry.Set("robopt_model_info{version=\"v1\nbeta\"}", 1.0);
  registry.Set("robopt_path_info{path=\"C:\\temp\"}", 2.0);
  const std::string text = ExportPrometheus(registry.Snapshot());
  EXPECT_TRUE(
      Contains(text, "robopt_model_info{version=\"v1\\nbeta\"} 1\n"));
  EXPECT_TRUE(Contains(text, "robopt_path_info{path=\"C:\\\\temp\"} 2\n"));
  // The raw newline never reaches the wire inside a label block.
  EXPECT_FALSE(Contains(text, "v1\nbeta"));
  EXPECT_FALSE(Contains(text, "C:\\temp\""));
}

TEST(PrometheusExportTest, NormalizationIsIdempotentForEscapedValues) {
  // A series built the right way (through PromEscapeLabelValue) must pass
  // through the defensive normalizer byte-for-byte.
  MetricsRegistry registry;
  const std::string escaped = PromEscapeLabelValue("a\\b \"q\"\nend");
  registry.Set("robopt_info{detail=\"" + escaped + "\"}", 3.0);
  const std::string text = ExportPrometheus(registry.Snapshot());
  EXPECT_TRUE(Contains(text, "robopt_info{detail=\"" + escaped + "\"} 3\n"));
}

TEST(JsonExportTest, SnapshotRoundTripsNamesAndValues) {
  MetricsRegistry registry;
  registry.GetCounter("c_total")->Add(2);
  registry.GetHistogram("h_us", {4.0})->Observe(3.0);
  const std::string json = ExportMetricsJson(registry.Snapshot());
  ExpectBalancedJson(json);
  EXPECT_TRUE(Contains(json, "\"c_total\": 2"));
  EXPECT_TRUE(Contains(json, "\"h_us\": {\"sum\": 3"));
  EXPECT_TRUE(Contains(json, "{\"le\": 4, \"count\": 1}"));
  EXPECT_TRUE(Contains(json, "{\"le\": \"+Inf\", \"count\": 0}"));
}

TEST(ChromeTraceExportTest, EmitsCompleteEventsOnBothClocks) {
  Tracer tracer(16);
  const uint64_t trace = tracer.NewTrace();
  SpanRecord span;
  span.trace_id = trace;
  span.span_id = tracer.NewSpanId();
  span.parent_id = 0;
  span.name = "execute";
  span.start_us = 10.0;
  span.dur_us = 25.0;
  span.virt_start_s = 0.0;
  span.virt_dur_s = 2.0;
  span.arg_name_a = "ops";
  span.arg_a = 4;
  tracer.Record(span);
  const std::string json = ExportChromeTrace(tracer.Collect(trace));
  ExpectBalancedJson(json);
  EXPECT_TRUE(Contains(json, "\"traceEvents\""));
  EXPECT_TRUE(Contains(json, "\"name\": \"execute\""));
  EXPECT_TRUE(Contains(json, "\"ph\": \"X\""));
  EXPECT_TRUE(Contains(json, "\"pid\": 1"));  // Wall timeline.
  EXPECT_TRUE(Contains(json, "\"pid\": 2"));  // Virtual timeline.
  EXPECT_TRUE(Contains(json, "\"ts\": 10.000"));
  EXPECT_TRUE(Contains(json, "\"dur\": 25.000"));
  // 2 virtual seconds -> 2e6 trace micros.
  EXPECT_TRUE(Contains(json, "\"dur\": 2000000.000"));
  EXPECT_TRUE(Contains(json, "\"ops\": 4"));
  EXPECT_TRUE(Contains(json, "\"displayTimeUnit\": \"ms\""));
}

TEST(ChromeTraceExportTest, WallOnlySpanEmitsOneEvent) {
  Tracer tracer(16);
  const uint64_t trace = tracer.NewTrace();
  { SpanScope span(&tracer, trace, 0, "vectorize"); }
  const std::string json = ExportChromeTrace(tracer.Collect(trace));
  ExpectBalancedJson(json);
  EXPECT_TRUE(Contains(json, "\"pid\": 1"));
  EXPECT_FALSE(Contains(json, "\"pid\": 2"));
}

TEST(ChromeTraceExportTest, EmptySpanSetIsStillValidJson) {
  ExpectBalancedJson(ExportChromeTrace({}));
}

}  // namespace
}  // namespace robopt
