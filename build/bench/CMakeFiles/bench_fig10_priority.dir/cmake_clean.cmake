file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_priority.dir/bench_fig10_priority.cc.o"
  "CMakeFiles/bench_fig10_priority.dir/bench_fig10_priority.cc.o.d"
  "bench_fig10_priority"
  "bench_fig10_priority.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
