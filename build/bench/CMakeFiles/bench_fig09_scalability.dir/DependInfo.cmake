
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig09_scalability.cc" "bench/CMakeFiles/bench_fig09_scalability.dir/bench_fig09_scalability.cc.o" "gcc" "bench/CMakeFiles/bench_fig09_scalability.dir/bench_fig09_scalability.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baseline/CMakeFiles/robopt_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/tdgen/CMakeFiles/robopt_tdgen.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/robopt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/robopt_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/robopt_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/robopt_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/robopt_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/robopt_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/robopt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
