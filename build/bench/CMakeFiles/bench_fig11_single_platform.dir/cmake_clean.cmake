file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_single_platform.dir/bench_fig11_single_platform.cc.o"
  "CMakeFiles/bench_fig11_single_platform.dir/bench_fig11_single_platform.cc.o.d"
  "bench_fig11_single_platform"
  "bench_fig11_single_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_single_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
