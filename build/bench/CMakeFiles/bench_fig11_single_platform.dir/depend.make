# Empty dependencies file for bench_fig11_single_platform.
# This may be replaced when dependencies are built.
