file(REMOVE_RECURSE
  "CMakeFiles/bench_model_selection.dir/bench_model_selection.cc.o"
  "CMakeFiles/bench_model_selection.dir/bench_model_selection.cc.o.d"
  "bench_model_selection"
  "bench_model_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
