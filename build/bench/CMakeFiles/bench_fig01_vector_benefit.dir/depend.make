# Empty dependencies file for bench_fig01_vector_benefit.
# This may be replaced when dependencies are built.
