file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_vector_benefit.dir/bench_fig01_vector_benefit.cc.o"
  "CMakeFiles/bench_fig01_vector_benefit.dir/bench_fig01_vector_benefit.cc.o.d"
  "bench_fig01_vector_benefit"
  "bench_fig01_vector_benefit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_vector_benefit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
