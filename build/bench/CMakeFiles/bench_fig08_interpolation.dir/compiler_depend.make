# Empty compiler generated dependencies file for bench_fig08_interpolation.
# This may be replaced when dependencies are built.
