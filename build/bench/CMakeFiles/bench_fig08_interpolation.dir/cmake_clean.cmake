file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_interpolation.dir/bench_fig08_interpolation.cc.o"
  "CMakeFiles/bench_fig08_interpolation.dir/bench_fig08_interpolation.cc.o.d"
  "bench_fig08_interpolation"
  "bench_fig08_interpolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_interpolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
