# Empty dependencies file for bench_fig02_cost_mistuning.
# This may be replaced when dependencies are built.
