file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_cost_mistuning.dir/bench_fig02_cost_mistuning.cc.o"
  "CMakeFiles/bench_fig02_cost_mistuning.dir/bench_fig02_cost_mistuning.cc.o.d"
  "bench_fig02_cost_mistuning"
  "bench_fig02_cost_mistuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_cost_mistuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
