file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_multi_platform.dir/bench_fig12_multi_platform.cc.o"
  "CMakeFiles/bench_fig12_multi_platform.dir/bench_fig12_multi_platform.cc.o.d"
  "bench_fig12_multi_platform"
  "bench_fig12_multi_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_multi_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
