# Empty compiler generated dependencies file for bench_fig13_join_pg.
# This may be replaced when dependencies are built.
