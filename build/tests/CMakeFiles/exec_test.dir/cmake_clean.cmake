file(REMOVE_RECURSE
  "CMakeFiles/exec_test.dir/exec/executor_errors_test.cc.o"
  "CMakeFiles/exec_test.dir/exec/executor_errors_test.cc.o.d"
  "CMakeFiles/exec_test.dir/exec/executor_test.cc.o"
  "CMakeFiles/exec_test.dir/exec/executor_test.cc.o.d"
  "CMakeFiles/exec_test.dir/exec/kernel_test.cc.o"
  "CMakeFiles/exec_test.dir/exec/kernel_test.cc.o.d"
  "CMakeFiles/exec_test.dir/exec/perf_profile_test.cc.o"
  "CMakeFiles/exec_test.dir/exec/perf_profile_test.cc.o.d"
  "CMakeFiles/exec_test.dir/exec/record_test.cc.o"
  "CMakeFiles/exec_test.dir/exec/record_test.cc.o.d"
  "CMakeFiles/exec_test.dir/exec/virtual_cost_test.cc.o"
  "CMakeFiles/exec_test.dir/exec/virtual_cost_test.cc.o.d"
  "exec_test"
  "exec_test.pdb"
  "exec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
