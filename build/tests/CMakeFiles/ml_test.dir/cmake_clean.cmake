file(REMOVE_RECURSE
  "CMakeFiles/ml_test.dir/ml/linear_regression_test.cc.o"
  "CMakeFiles/ml_test.dir/ml/linear_regression_test.cc.o.d"
  "CMakeFiles/ml_test.dir/ml/metrics_test.cc.o"
  "CMakeFiles/ml_test.dir/ml/metrics_test.cc.o.d"
  "CMakeFiles/ml_test.dir/ml/ml_dataset_test.cc.o"
  "CMakeFiles/ml_test.dir/ml/ml_dataset_test.cc.o.d"
  "CMakeFiles/ml_test.dir/ml/mlp_test.cc.o"
  "CMakeFiles/ml_test.dir/ml/mlp_test.cc.o.d"
  "CMakeFiles/ml_test.dir/ml/random_forest_test.cc.o"
  "CMakeFiles/ml_test.dir/ml/random_forest_test.cc.o.d"
  "ml_test"
  "ml_test.pdb"
  "ml_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
