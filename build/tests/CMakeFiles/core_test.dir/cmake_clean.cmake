file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/feature_schema_test.cc.o"
  "CMakeFiles/core_test.dir/core/feature_schema_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/interesting_property_test.cc.o"
  "CMakeFiles/core_test.dir/core/interesting_property_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/operations_test.cc.o"
  "CMakeFiles/core_test.dir/core/operations_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/optimizer_test.cc.o"
  "CMakeFiles/core_test.dir/core/optimizer_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/plan_vector_test.cc.o"
  "CMakeFiles/core_test.dir/core/plan_vector_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/priority_enumeration_test.cc.o"
  "CMakeFiles/core_test.dir/core/priority_enumeration_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/pruning_test.cc.o"
  "CMakeFiles/core_test.dir/core/pruning_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/vector_consistency_test.cc.o"
  "CMakeFiles/core_test.dir/core/vector_consistency_test.cc.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
