file(REMOVE_RECURSE
  "CMakeFiles/workloads_unit_test.dir/workloads/datagen_test.cc.o"
  "CMakeFiles/workloads_unit_test.dir/workloads/datagen_test.cc.o.d"
  "CMakeFiles/workloads_unit_test.dir/workloads/queries_test.cc.o"
  "CMakeFiles/workloads_unit_test.dir/workloads/queries_test.cc.o.d"
  "CMakeFiles/workloads_unit_test.dir/workloads/synthetic_test.cc.o"
  "CMakeFiles/workloads_unit_test.dir/workloads/synthetic_test.cc.o.d"
  "workloads_unit_test"
  "workloads_unit_test.pdb"
  "workloads_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
