# Empty compiler generated dependencies file for workloads_unit_test.
# This may be replaced when dependencies are built.
