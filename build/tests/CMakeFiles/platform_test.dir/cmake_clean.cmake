file(REMOVE_RECURSE
  "CMakeFiles/platform_test.dir/platform/conversion_test.cc.o"
  "CMakeFiles/platform_test.dir/platform/conversion_test.cc.o.d"
  "CMakeFiles/platform_test.dir/platform/dot_test.cc.o"
  "CMakeFiles/platform_test.dir/platform/dot_test.cc.o.d"
  "CMakeFiles/platform_test.dir/platform/execution_plan_test.cc.o"
  "CMakeFiles/platform_test.dir/platform/execution_plan_test.cc.o.d"
  "CMakeFiles/platform_test.dir/platform/registry_test.cc.o"
  "CMakeFiles/platform_test.dir/platform/registry_test.cc.o.d"
  "platform_test"
  "platform_test.pdb"
  "platform_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
