file(REMOVE_RECURSE
  "CMakeFiles/tdgen_unit_test.dir/tdgen/experience_test.cc.o"
  "CMakeFiles/tdgen_unit_test.dir/tdgen/experience_test.cc.o.d"
  "CMakeFiles/tdgen_unit_test.dir/tdgen/interpolation_test.cc.o"
  "CMakeFiles/tdgen_unit_test.dir/tdgen/interpolation_test.cc.o.d"
  "CMakeFiles/tdgen_unit_test.dir/tdgen/tdgen_test.cc.o"
  "CMakeFiles/tdgen_unit_test.dir/tdgen/tdgen_test.cc.o.d"
  "tdgen_unit_test"
  "tdgen_unit_test.pdb"
  "tdgen_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdgen_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
