# Empty compiler generated dependencies file for tdgen_unit_test.
# This may be replaced when dependencies are built.
