# Empty compiler generated dependencies file for robopt_tdgen.
# This may be replaced when dependencies are built.
