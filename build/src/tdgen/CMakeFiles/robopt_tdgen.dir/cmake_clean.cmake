file(REMOVE_RECURSE
  "CMakeFiles/robopt_tdgen.dir/experience.cc.o"
  "CMakeFiles/robopt_tdgen.dir/experience.cc.o.d"
  "CMakeFiles/robopt_tdgen.dir/interpolation.cc.o"
  "CMakeFiles/robopt_tdgen.dir/interpolation.cc.o.d"
  "CMakeFiles/robopt_tdgen.dir/tdgen.cc.o"
  "CMakeFiles/robopt_tdgen.dir/tdgen.cc.o.d"
  "librobopt_tdgen.a"
  "librobopt_tdgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robopt_tdgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
