file(REMOVE_RECURSE
  "librobopt_tdgen.a"
)
