file(REMOVE_RECURSE
  "librobopt_baseline.a"
)
