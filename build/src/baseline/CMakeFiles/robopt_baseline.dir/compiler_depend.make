# Empty compiler generated dependencies file for robopt_baseline.
# This may be replaced when dependencies are built.
