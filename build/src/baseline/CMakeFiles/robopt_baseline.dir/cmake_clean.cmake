file(REMOVE_RECURSE
  "CMakeFiles/robopt_baseline.dir/baseline_optimizers.cc.o"
  "CMakeFiles/robopt_baseline.dir/baseline_optimizers.cc.o.d"
  "CMakeFiles/robopt_baseline.dir/cost_model.cc.o"
  "CMakeFiles/robopt_baseline.dir/cost_model.cc.o.d"
  "CMakeFiles/robopt_baseline.dir/traditional_enumerator.cc.o"
  "CMakeFiles/robopt_baseline.dir/traditional_enumerator.cc.o.d"
  "librobopt_baseline.a"
  "librobopt_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robopt_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
