file(REMOVE_RECURSE
  "CMakeFiles/robopt_ml.dir/decision_tree.cc.o"
  "CMakeFiles/robopt_ml.dir/decision_tree.cc.o.d"
  "CMakeFiles/robopt_ml.dir/linear_regression.cc.o"
  "CMakeFiles/robopt_ml.dir/linear_regression.cc.o.d"
  "CMakeFiles/robopt_ml.dir/metrics.cc.o"
  "CMakeFiles/robopt_ml.dir/metrics.cc.o.d"
  "CMakeFiles/robopt_ml.dir/ml_dataset.cc.o"
  "CMakeFiles/robopt_ml.dir/ml_dataset.cc.o.d"
  "CMakeFiles/robopt_ml.dir/mlp.cc.o"
  "CMakeFiles/robopt_ml.dir/mlp.cc.o.d"
  "CMakeFiles/robopt_ml.dir/random_forest.cc.o"
  "CMakeFiles/robopt_ml.dir/random_forest.cc.o.d"
  "librobopt_ml.a"
  "librobopt_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robopt_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
