file(REMOVE_RECURSE
  "librobopt_ml.a"
)
