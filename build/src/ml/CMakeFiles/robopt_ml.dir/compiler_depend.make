# Empty compiler generated dependencies file for robopt_ml.
# This may be replaced when dependencies are built.
