file(REMOVE_RECURSE
  "librobopt_platform.a"
)
