
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/conversion.cc" "src/platform/CMakeFiles/robopt_platform.dir/conversion.cc.o" "gcc" "src/platform/CMakeFiles/robopt_platform.dir/conversion.cc.o.d"
  "/root/repo/src/platform/dot.cc" "src/platform/CMakeFiles/robopt_platform.dir/dot.cc.o" "gcc" "src/platform/CMakeFiles/robopt_platform.dir/dot.cc.o.d"
  "/root/repo/src/platform/execution_plan.cc" "src/platform/CMakeFiles/robopt_platform.dir/execution_plan.cc.o" "gcc" "src/platform/CMakeFiles/robopt_platform.dir/execution_plan.cc.o.d"
  "/root/repo/src/platform/platform.cc" "src/platform/CMakeFiles/robopt_platform.dir/platform.cc.o" "gcc" "src/platform/CMakeFiles/robopt_platform.dir/platform.cc.o.d"
  "/root/repo/src/platform/registry.cc" "src/platform/CMakeFiles/robopt_platform.dir/registry.cc.o" "gcc" "src/platform/CMakeFiles/robopt_platform.dir/registry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/plan/CMakeFiles/robopt_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/robopt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
