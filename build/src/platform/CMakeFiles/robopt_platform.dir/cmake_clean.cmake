file(REMOVE_RECURSE
  "CMakeFiles/robopt_platform.dir/conversion.cc.o"
  "CMakeFiles/robopt_platform.dir/conversion.cc.o.d"
  "CMakeFiles/robopt_platform.dir/dot.cc.o"
  "CMakeFiles/robopt_platform.dir/dot.cc.o.d"
  "CMakeFiles/robopt_platform.dir/execution_plan.cc.o"
  "CMakeFiles/robopt_platform.dir/execution_plan.cc.o.d"
  "CMakeFiles/robopt_platform.dir/platform.cc.o"
  "CMakeFiles/robopt_platform.dir/platform.cc.o.d"
  "CMakeFiles/robopt_platform.dir/registry.cc.o"
  "CMakeFiles/robopt_platform.dir/registry.cc.o.d"
  "librobopt_platform.a"
  "librobopt_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robopt_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
