# Empty dependencies file for robopt_platform.
# This may be replaced when dependencies are built.
