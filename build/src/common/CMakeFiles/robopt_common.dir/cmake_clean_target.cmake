file(REMOVE_RECURSE
  "librobopt_common.a"
)
