file(REMOVE_RECURSE
  "CMakeFiles/robopt_common.dir/rng.cc.o"
  "CMakeFiles/robopt_common.dir/rng.cc.o.d"
  "CMakeFiles/robopt_common.dir/status.cc.o"
  "CMakeFiles/robopt_common.dir/status.cc.o.d"
  "CMakeFiles/robopt_common.dir/strings.cc.o"
  "CMakeFiles/robopt_common.dir/strings.cc.o.d"
  "librobopt_common.a"
  "librobopt_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robopt_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
