# Empty compiler generated dependencies file for robopt_common.
# This may be replaced when dependencies are built.
