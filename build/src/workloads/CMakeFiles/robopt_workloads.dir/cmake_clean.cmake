file(REMOVE_RECURSE
  "CMakeFiles/robopt_workloads.dir/datagen.cc.o"
  "CMakeFiles/robopt_workloads.dir/datagen.cc.o.d"
  "CMakeFiles/robopt_workloads.dir/queries.cc.o"
  "CMakeFiles/robopt_workloads.dir/queries.cc.o.d"
  "CMakeFiles/robopt_workloads.dir/synthetic.cc.o"
  "CMakeFiles/robopt_workloads.dir/synthetic.cc.o.d"
  "librobopt_workloads.a"
  "librobopt_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robopt_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
