file(REMOVE_RECURSE
  "librobopt_workloads.a"
)
