
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/datagen.cc" "src/workloads/CMakeFiles/robopt_workloads.dir/datagen.cc.o" "gcc" "src/workloads/CMakeFiles/robopt_workloads.dir/datagen.cc.o.d"
  "/root/repo/src/workloads/queries.cc" "src/workloads/CMakeFiles/robopt_workloads.dir/queries.cc.o" "gcc" "src/workloads/CMakeFiles/robopt_workloads.dir/queries.cc.o.d"
  "/root/repo/src/workloads/synthetic.cc" "src/workloads/CMakeFiles/robopt_workloads.dir/synthetic.cc.o" "gcc" "src/workloads/CMakeFiles/robopt_workloads.dir/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exec/CMakeFiles/robopt_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/robopt_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/robopt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/robopt_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
