# Empty dependencies file for robopt_workloads.
# This may be replaced when dependencies are built.
