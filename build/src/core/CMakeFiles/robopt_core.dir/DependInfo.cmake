
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/feature_schema.cc" "src/core/CMakeFiles/robopt_core.dir/feature_schema.cc.o" "gcc" "src/core/CMakeFiles/robopt_core.dir/feature_schema.cc.o.d"
  "/root/repo/src/core/interesting_property.cc" "src/core/CMakeFiles/robopt_core.dir/interesting_property.cc.o" "gcc" "src/core/CMakeFiles/robopt_core.dir/interesting_property.cc.o.d"
  "/root/repo/src/core/operations.cc" "src/core/CMakeFiles/robopt_core.dir/operations.cc.o" "gcc" "src/core/CMakeFiles/robopt_core.dir/operations.cc.o.d"
  "/root/repo/src/core/optimizer.cc" "src/core/CMakeFiles/robopt_core.dir/optimizer.cc.o" "gcc" "src/core/CMakeFiles/robopt_core.dir/optimizer.cc.o.d"
  "/root/repo/src/core/priority_enumeration.cc" "src/core/CMakeFiles/robopt_core.dir/priority_enumeration.cc.o" "gcc" "src/core/CMakeFiles/robopt_core.dir/priority_enumeration.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/platform/CMakeFiles/robopt_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/robopt_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/robopt_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/robopt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
