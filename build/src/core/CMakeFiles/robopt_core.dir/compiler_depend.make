# Empty compiler generated dependencies file for robopt_core.
# This may be replaced when dependencies are built.
