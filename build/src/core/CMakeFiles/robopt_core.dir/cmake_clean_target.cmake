file(REMOVE_RECURSE
  "librobopt_core.a"
)
