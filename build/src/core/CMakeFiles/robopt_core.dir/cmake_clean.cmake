file(REMOVE_RECURSE
  "CMakeFiles/robopt_core.dir/feature_schema.cc.o"
  "CMakeFiles/robopt_core.dir/feature_schema.cc.o.d"
  "CMakeFiles/robopt_core.dir/interesting_property.cc.o"
  "CMakeFiles/robopt_core.dir/interesting_property.cc.o.d"
  "CMakeFiles/robopt_core.dir/operations.cc.o"
  "CMakeFiles/robopt_core.dir/operations.cc.o.d"
  "CMakeFiles/robopt_core.dir/optimizer.cc.o"
  "CMakeFiles/robopt_core.dir/optimizer.cc.o.d"
  "CMakeFiles/robopt_core.dir/priority_enumeration.cc.o"
  "CMakeFiles/robopt_core.dir/priority_enumeration.cc.o.d"
  "librobopt_core.a"
  "librobopt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robopt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
