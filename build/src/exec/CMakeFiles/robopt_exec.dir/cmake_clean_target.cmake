file(REMOVE_RECURSE
  "librobopt_exec.a"
)
