
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/executor.cc" "src/exec/CMakeFiles/robopt_exec.dir/executor.cc.o" "gcc" "src/exec/CMakeFiles/robopt_exec.dir/executor.cc.o.d"
  "/root/repo/src/exec/kernel.cc" "src/exec/CMakeFiles/robopt_exec.dir/kernel.cc.o" "gcc" "src/exec/CMakeFiles/robopt_exec.dir/kernel.cc.o.d"
  "/root/repo/src/exec/perf_profile.cc" "src/exec/CMakeFiles/robopt_exec.dir/perf_profile.cc.o" "gcc" "src/exec/CMakeFiles/robopt_exec.dir/perf_profile.cc.o.d"
  "/root/repo/src/exec/virtual_cost.cc" "src/exec/CMakeFiles/robopt_exec.dir/virtual_cost.cc.o" "gcc" "src/exec/CMakeFiles/robopt_exec.dir/virtual_cost.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/platform/CMakeFiles/robopt_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/robopt_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/robopt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
