# Empty compiler generated dependencies file for robopt_exec.
# This may be replaced when dependencies are built.
