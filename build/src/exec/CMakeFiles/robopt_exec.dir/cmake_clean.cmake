file(REMOVE_RECURSE
  "CMakeFiles/robopt_exec.dir/executor.cc.o"
  "CMakeFiles/robopt_exec.dir/executor.cc.o.d"
  "CMakeFiles/robopt_exec.dir/kernel.cc.o"
  "CMakeFiles/robopt_exec.dir/kernel.cc.o.d"
  "CMakeFiles/robopt_exec.dir/perf_profile.cc.o"
  "CMakeFiles/robopt_exec.dir/perf_profile.cc.o.d"
  "CMakeFiles/robopt_exec.dir/virtual_cost.cc.o"
  "CMakeFiles/robopt_exec.dir/virtual_cost.cc.o.d"
  "librobopt_exec.a"
  "librobopt_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robopt_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
