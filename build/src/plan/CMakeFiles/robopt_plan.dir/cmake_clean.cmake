file(REMOVE_RECURSE
  "CMakeFiles/robopt_plan.dir/cardinality.cc.o"
  "CMakeFiles/robopt_plan.dir/cardinality.cc.o.d"
  "CMakeFiles/robopt_plan.dir/logical_plan.cc.o"
  "CMakeFiles/robopt_plan.dir/logical_plan.cc.o.d"
  "CMakeFiles/robopt_plan.dir/operator_kind.cc.o"
  "CMakeFiles/robopt_plan.dir/operator_kind.cc.o.d"
  "librobopt_plan.a"
  "librobopt_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robopt_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
