# Empty compiler generated dependencies file for robopt_plan.
# This may be replaced when dependencies are built.
