file(REMOVE_RECURSE
  "librobopt_plan.a"
)
