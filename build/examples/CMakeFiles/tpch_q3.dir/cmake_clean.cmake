file(REMOVE_RECURSE
  "CMakeFiles/tpch_q3.dir/tpch_q3.cpp.o"
  "CMakeFiles/tpch_q3.dir/tpch_q3.cpp.o.d"
  "tpch_q3"
  "tpch_q3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_q3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
