# Empty dependencies file for tpch_q3.
# This may be replaced when dependencies are built.
