# Empty compiler generated dependencies file for kmeans_multiplatform.
# This may be replaced when dependencies are built.
