file(REMOVE_RECURSE
  "CMakeFiles/kmeans_multiplatform.dir/kmeans_multiplatform.cpp.o"
  "CMakeFiles/kmeans_multiplatform.dir/kmeans_multiplatform.cpp.o.d"
  "kmeans_multiplatform"
  "kmeans_multiplatform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kmeans_multiplatform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
