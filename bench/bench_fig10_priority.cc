// Reproduces Figure 10: the effectiveness of the priority-based enumeration
// against classic top-down and bottom-up strategies, on join trees with
// 2..5 joins over 3 and 5 platforms. All strategies use the same boundary
// pruning; the priority changes only the concatenation order, and with it
// how many subplan vectors get materialized.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/stopwatch.h"
#include "core/linear_oracle.h"
#include "core/priority_enumeration.h"
#include "workloads/synthetic.h"

namespace robopt::bench {
namespace {

struct Measurement {
  double ms = 0.0;
  size_t vectors = 0;
};

Measurement Measure(const EnumerationContext& ctx, const CostOracle& oracle,
                    PriorityMode mode) {
  std::vector<double> samples;
  Measurement out;
  for (int r = 0; r < 5; ++r) {
    Stopwatch watch;
    EnumeratorOptions options;
    options.priority = mode;
    PriorityEnumerator enumerator(&ctx, &oracle, options);
    auto result = enumerator.Run();
    samples.push_back(watch.ElapsedMillis());
    if (result.ok()) out.vectors = result->stats.vectors_created;
  }
  std::sort(samples.begin(), samples.end());
  out.ms = samples[samples.size() / 2];
  return out;
}

void Main() {
  std::printf("=== Figure 10: priority-based vs top-down vs bottom-up "
              "enumeration (join trees) ===\n");
  std::printf("%-8s %-8s %12s %12s %12s %16s\n", "#plats", "#joins",
              "Robopt(ms)", "TopDown(ms)", "BottomUp(ms)",
              "vectors R/T/B");
  for (int k : {3, 5}) {
    PlatformRegistry registry = PlatformRegistry::Synthetic(k);
    FeatureSchema schema(&registry);
    LinearFeatureOracle oracle(schema, 23);
    for (int joins = 2; joins <= 5; ++joins) {
      LogicalPlan plan = MakeSyntheticJoinTree(joins, 1e7, 11);
      auto ctx = EnumerationContext::Make(&plan, &registry, &schema);
      if (!ctx.ok()) continue;
      const Measurement paper =
          Measure(ctx.value(), oracle, PriorityMode::kPaper);
      const Measurement top =
          Measure(ctx.value(), oracle, PriorityMode::kTopDown);
      const Measurement bottom =
          Measure(ctx.value(), oracle, PriorityMode::kBottomUp);
      std::printf("%-8d %-8d %12.2f %12.2f %12.2f   %zu/%zu/%zu\n", k, joins,
                  paper.ms, top.ms, bottom.ms, paper.vectors, top.vectors,
                  bottom.vectors);
    }
  }
  std::printf("\nPaper's shape: the priority-based order materializes the "
              "fewest subplans; its advantage grows with joins and "
              "platforms (up to 2.5x vs top-down, 8.5x vs bottom-up).\n");
}

}  // namespace
}  // namespace robopt::bench

int main() { robopt::bench::Main(); }
