// Reproduces Table I: the number of enumerated subplans with and without the
// boundary pruning, for pipelines of 5 and 20 operators over 2..5 platforms.
// Exhaustive counts beyond ~10^6 are reported analytically (as the paper
// does — its Table I shows 10^6..10^14 for the 20-operator rows).

#include <cmath>
#include <cstdio>
#include <string>

#include "core/priority_enumeration.h"
#include "core/linear_oracle.h"
#include "workloads/synthetic.h"

namespace robopt::bench {
namespace {

std::string WithoutPruning(const EnumerationContext& ctx,
                           const LogicalPlan& plan, int num_ops, int k,
                           const CostOracle& oracle) {
  // Exhaustive enumeration materializes sum_{i=2..n} k^i vectors; count it
  // exactly while small, estimate analytically otherwise.
  double analytic = 0.0;
  for (int i = 2; i <= num_ops; ++i) analytic += std::pow(k, i);
  if (analytic > 2e6) {
    return "10^" + std::to_string(static_cast<int>(std::log10(analytic)));
  }
  EnumeratorOptions options;
  options.prune = PruneMode::kNone;
  PriorityEnumerator enumerator(&ctx, &oracle, options);
  auto result = enumerator.Run();
  if (!result.ok()) return "n/a";
  return std::to_string(result->stats.vectors_created);
}

void Main() {
  std::printf("=== Table I: number of enumerated subplans ===\n");
  std::printf("%-14s", "(#ops,#plats)");
  for (int num_ops : {5, 20}) {
    for (int k = 2; k <= 5; ++k) {
      std::printf(" %9s", ("(" + std::to_string(num_ops) + "," +
                           std::to_string(k) + ")")
                              .c_str());
    }
  }
  std::printf("\n%-14s", "w/ pruning");
  std::string without_row;
  for (int num_ops : {5, 20}) {
    for (int k = 2; k <= 5; ++k) {
      PlatformRegistry registry = PlatformRegistry::Synthetic(k);
      FeatureSchema schema(&registry);
      LinearFeatureOracle oracle(schema, 17);
      LogicalPlan plan = MakeSyntheticPipeline(num_ops, 1e6, 5);
      auto ctx = EnumerationContext::Make(&plan, &registry, &schema);
      if (!ctx.ok()) continue;
      PriorityEnumerator enumerator(&ctx.value(), &oracle);
      auto result = enumerator.Run();
      std::printf(" %9zu", result.ok() ? result->stats.vectors_created : 0);
      char buf[32];
      std::snprintf(buf, sizeof(buf), " %9s",
                    WithoutPruning(ctx.value(), plan, num_ops, k, oracle)
                        .c_str());
      without_row += buf;
    }
  }
  std::printf("\n%-14s%s\n", "w/o pruning", without_row.c_str());
  std::printf("\nPaper's shape: pruning turns exponential growth (up to "
              "~10^14 at 20 ops / 5 platforms) into quadratic growth.\n");
}

}  // namespace
}  // namespace robopt::bench

int main() { robopt::bench::Main(); }
