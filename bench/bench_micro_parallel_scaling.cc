// Serial-vs-parallel throughput of the vector-algebra hot path: sharded
// Concat, footprint-grouped PruneBoundary, and the blocked RandomForest
// batch kernel, on a >= 100k-row enumeration. Verifies along the way that
// every parallel result is bit-identical to the serial one (the determinism
// contract of DESIGN.md, "Threading model & determinism"), and emits
// BENCH_parallel.json for the scaling record.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/operations.h"
#include "ml/random_forest.h"
#include "workloads/synthetic.h"

namespace robopt {
namespace {

constexpr int kThreadCounts[] = {1, 2, 4, 8};
constexpr int kMaxThreads = 8;

double MedianOf3(double a, double b, double c) {
  if (a > b) std::swap(a, b);
  if (b > c) std::swap(b, c);
  return a > b ? a : b;
}

/// Times `fn` three times and returns the median, in seconds.
template <typename Fn>
double TimeSeconds(const Fn& fn) {
  double samples[3];
  for (double& sample : samples) {
    Stopwatch stopwatch;
    fn();
    sample = stopwatch.ElapsedMillis() / 1000.0;
  }
  return MedianOf3(samples[0], samples[1], samples[2]);
}

bool SameEnumeration(const PlanVectorEnumeration& a,
                     const PlanVectorEnumeration& b) {
  if (a.size() != b.size() || a.width() != b.width()) return false;
  if (std::memcmp(a.feature_pool().data(), b.feature_pool().data(),
                  a.size() * a.width() * sizeof(float)) != 0) {
    return false;
  }
  for (size_t row = 0; row < a.size(); ++row) {
    if (a.switches(row) != b.switches(row)) return false;
    if (std::memcmp(a.assignment(row), b.assignment(row), a.num_ops()) != 0) {
      return false;
    }
  }
  return true;
}

int Main() {
  PlatformRegistry registry = PlatformRegistry::Synthetic(4);
  FeatureSchema schema(&registry);
  LogicalPlan plan = MakeSyntheticPipeline(12, 1e7, 3);
  auto made = EnumerationContext::Make(&plan, &registry, &schema);
  if (!made.ok()) {
    std::fprintf(stderr, "context: %s\n", made.status().ToString().c_str());
    return 1;
  }
  const EnumerationContext ctx = std::move(made).value();

  // A 4^8-row pool concatenated with a 4-row singleton: 262144 output rows.
  AbstractPlanVector left_ops;
  for (OperatorId op = 0; op < 8; ++op) left_ops.ops.push_back(op);
  AbstractPlanVector right_ops;
  right_ops.ops = {8};
  const PlanVectorEnumeration left = Enumerate(ctx, left_ops);
  const PlanVectorEnumeration right = Enumerate(ctx, right_ops);
  const PlanVectorEnumeration big = Concat(ctx, left, right);
  std::fprintf(stderr,
               "[bench] %zu x %zu -> %zu rows, width %zu, hardware threads "
               "%d\n",
               left.size(), right.size(), big.size(), big.width(),
               ThreadPool::HardwareThreads());

  // A small forest over the schema width: inference cost is what matters,
  // not model quality.
  MlDataset data(schema.width());
  Rng rng(17);
  std::vector<float> row(schema.width());
  for (int i = 0; i < 512; ++i) {
    for (float& cell : row) {
      cell = static_cast<float>(rng.NextUniform(0, 100));
    }
    data.Add(row, static_cast<float>(rng.NextUniform(0, 1000)));
  }
  RandomForest::Params params;
  params.num_trees = 40;
  RandomForest forest(params);
  if (!forest.Train(data).ok()) {
    std::fprintf(stderr, "forest training failed\n");
    return 1;
  }
  MlCostOracle oracle(&forest);

  // Reference serial outputs for the determinism check.
  const PlanVectorEnumeration concat_serial = Concat(ctx, left, right, 1);
  const PlanVectorEnumeration prune_serial =
      PruneBoundary(ctx, big, oracle, nullptr, 1);
  std::vector<float> predict_serial(big.size());
  forest.set_num_threads(1);
  forest.PredictBatch(big.feature_pool().data(), big.size(), big.width(),
                      predict_serial.data());

  double concat_s[kMaxThreads + 1] = {0};
  double prune_s[kMaxThreads + 1] = {0};
  double predict_s[kMaxThreads + 1] = {0};
  std::vector<float> predictions(big.size());
  for (int threads : kThreadCounts) {
    concat_s[threads] = TimeSeconds([&] {
      const PlanVectorEnumeration out = Concat(ctx, left, right, threads);
      if (!SameEnumeration(out, concat_serial)) {
        std::fprintf(stderr, "FATAL: Concat(%d threads) != serial\n", threads);
        std::abort();
      }
    });
    prune_s[threads] = TimeSeconds([&] {
      forest.set_num_threads(threads);
      const PlanVectorEnumeration out =
          PruneBoundary(ctx, big, oracle, nullptr, threads);
      if (!SameEnumeration(out, prune_serial)) {
        std::fprintf(stderr, "FATAL: PruneBoundary(%d threads) != serial\n",
                     threads);
        std::abort();
      }
    });
    predict_s[threads] = TimeSeconds([&] {
      forest.set_num_threads(threads);
      forest.PredictBatch(big.feature_pool().data(), big.size(), big.width(),
                          predictions.data());
      if (std::memcmp(predictions.data(), predict_serial.data(),
                      predictions.size() * sizeof(float)) != 0) {
        std::fprintf(stderr, "FATAL: PredictBatch(%d threads) != serial\n",
                     threads);
        std::abort();
      }
    });
    std::fprintf(stderr,
                 "[bench] threads=%d concat %.3fs  prune %.3fs  predict "
                 "%.3fs\n",
                 threads, concat_s[threads], prune_s[threads],
                 predict_s[threads]);
  }

  const double serial_total = concat_s[1] + prune_s[1] + predict_s[1];
  const double parallel_total = concat_s[8] + prune_s[8] + predict_s[8];
  const double combined_speedup =
      parallel_total > 0 ? serial_total / parallel_total : 0.0;
  std::fprintf(stderr, "[bench] combined speedup at 8 threads: %.2fx\n",
               combined_speedup);

  FILE* json = std::fopen("BENCH_parallel.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_parallel.json\n");
    return 1;
  }
  const double rows = static_cast<double>(big.size());
  std::fprintf(json,
               "{\n"
               "  \"rows\": %zu,\n"
               "  \"width\": %zu,\n"
               "  \"hardware_threads\": %d,\n",
               big.size(), big.width(), ThreadPool::HardwareThreads());
  const char* names[] = {"concat", "prune_boundary", "predict_batch"};
  const double* times[] = {concat_s, prune_s, predict_s};
  for (int op = 0; op < 3; ++op) {
    std::fprintf(json, "  \"%s\": {", names[op]);
    for (int t = 0; t < 4; ++t) {
      const int threads = kThreadCounts[t];
      std::fprintf(json, "\"threads_%d_rows_per_s\": %.0f, ", threads,
                   times[op][threads] > 0 ? rows / times[op][threads] : 0.0);
    }
    std::fprintf(json, "\"speedup_8_vs_1\": %.3f},\n",
                 times[op][8] > 0 ? times[op][1] / times[op][8] : 0.0);
  }
  std::fprintf(json,
               "  \"combined\": {\"serial_s\": %.4f, \"parallel_8_s\": %.4f, "
               "\"speedup_8_vs_1\": %.3f}\n}\n",
               serial_total, parallel_total, combined_speedup);
  std::fclose(json);
  std::fprintf(stderr, "[bench] wrote BENCH_parallel.json\n");
  return 0;
}

}  // namespace
}  // namespace robopt

int main() { return robopt::Main(); }
