// Reproduces Figure 13: the Join query when its input tables live in
// Postgres. The obvious plan runs entirely inside the DBMS; the optimizers
// may instead push the selections/projections into Postgres and ship the
// rest to a parallel engine.

#include <cstdio>

#include "bench/bench_env.h"
#include "plan/cardinality.h"

namespace robopt::bench {
namespace {

void Main() {
  std::printf("=== Figure 13: Join query with data stored in Postgres ===\n");
  BenchEnv env(4);  // Java, Spark, Flink, Postgres.
  const PlatformId pg = *env.registry.FindPlatform("Postgres");

  std::printf("%-8s %12s %28s %28s\n", "size", "Postgres", "RHEEMix",
              "Robopt");
  for (double gb : {10.0, 100.0}) {
    const LogicalPlan plan = MakeJoinPlan(gb, /*table_sources=*/true);
    const Cardinalities cards = CardinalityEstimator(&plan).Estimate();
    const double pg_only = env.SinglePlatformRuntime(plan, cards, pg);

    auto rheemix = env.rheemix->Optimize(plan, &cards);
    auto robopt = env.robopt->Optimize(plan, &cards);
    if (!rheemix.ok() || !robopt.ok()) {
      std::printf("%-8.0fGB optimization failed\n", gb);
      continue;
    }
    const double rheemix_s = env.TrueRuntime(rheemix->plan, cards);
    const double robopt_s = env.TrueRuntime(robopt->plan, cards);
    char rheemix_cell[64];
    char robopt_cell[64];
    std::snprintf(rheemix_cell, sizeof(rheemix_cell), "%s (%s)",
                  Runtime(rheemix_s).c_str(),
                  env.PlatformsOf(rheemix->plan).c_str());
    std::snprintf(robopt_cell, sizeof(robopt_cell), "%s (%s)",
                  Runtime(robopt_s).c_str(),
                  env.PlatformsOf(robopt->plan).c_str());
    std::printf("%-5.0fGB  %12s %28s %28s   speedup over Pg: %.1fx\n", gb,
                Runtime(pg_only).c_str(), rheemix_cell, robopt_cell,
                pg_only / robopt_s);
  }
  std::printf("\nPaper's shape: pushing the selections into Postgres and "
              "joining on a parallel engine beats the all-Postgres plan by "
              "up to ~2.5x; Robopt and RHEEMix find the same plan here.\n");
}

}  // namespace
}  // namespace robopt::bench

int main() { robopt::bench::Main(); }
