// Reproduces Figure 12: multi-platform execution mode. K-means sweeping the
// number of centroids, SGD sweeping the batch size, CrocoPR sweeping
// iterations from HDFS and from Postgres. For each configuration: the best
// single-platform runtimes, and the plans chosen by RHEEMix and Robopt with
// their true runtimes and platform combinations.

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_env.h"
#include "plan/cardinality.h"

namespace robopt::bench {
namespace {

void RunCase(BenchEnv& env, const std::string& label,
             const LogicalPlan& plan) {
  const Cardinalities cards = CardinalityEstimator(&plan).Estimate();
  std::printf("%-14s", label.c_str());
  for (const Platform& platform : env.registry.platforms()) {
    std::printf(" %9s",
                Runtime(env.SinglePlatformRuntime(plan, cards, platform.id))
                    .c_str());
  }
  auto rheemix = env.rheemix->Optimize(plan, &cards);
  auto robopt = env.robopt->Optimize(plan, &cards);
  if (!rheemix.ok() || !robopt.ok()) {
    std::printf("  optimization failed (%s / %s)\n",
                rheemix.status().ToString().c_str(),
                robopt.status().ToString().c_str());
    return;
  }
  std::printf("  | RHEEMix %8s on %-18s | Robopt %8s on %-18s\n",
              Runtime(env.TrueRuntime(rheemix->plan, cards)).c_str(),
              env.PlatformsOf(rheemix->plan).c_str(),
              Runtime(env.TrueRuntime(robopt->plan, cards)).c_str(),
              env.PlatformsOf(robopt->plan).c_str());
}

void Header(BenchEnv& env, const std::string& title,
            const std::string& param) {
  std::printf("\n--- %s ---\n%-14s", title.c_str(), param.c_str());
  for (const Platform& platform : env.registry.platforms()) {
    std::printf(" %9s", platform.name.c_str());
  }
  std::printf("\n");
}

void Main() {
  std::printf("=== Figure 12: multi-platform execution mode ===\n");
  {
    BenchEnv env(3);
    Header(env, "(a) K-means, 361MB, 100 iterations", "#centroids");
    for (int centroids : {10, 100, 1000}) {
      RunCase(env, std::to_string(centroids),
              MakeKmeansPlan(361, centroids, 100));
    }
    Header(env, "(b) SGD, 740MB, 1000 iterations", "batch size");
    for (int batch : {1, 100, 1000}) {
      RunCase(env, std::to_string(batch), MakeSgdPlan(0.74, batch, 1000));
    }
    Header(env, "(c) CrocoPR-HDFS, 1GB", "#iterations");
    for (int iterations : {1, 10, 100}) {
      RunCase(env, std::to_string(iterations),
              MakeCrocoPrPlan(1.0, iterations));
    }
  }
  {
    BenchEnv env(4);  // + Postgres.
    Header(env, "(d) CrocoPR-PG, 1GB (dirty data in Postgres)",
           "#iterations");
    for (int iterations : {1, 10, 100}) {
      RunCase(env, std::to_string(iterations),
              MakeCrocoPrPlan(1.0, iterations, /*from_postgres=*/true));
    }
  }
  std::printf("\nPaper's shape: Robopt matches or beats RHEEMix — notably "
              "Spark+Java for K-means (broadcast as a collection) and the "
              "cache-free sampler for SGD (~2x); CrocoPR uses Flink for "
              "preprocessing and Java for the rank loop.\n");
}

}  // namespace
}  // namespace robopt::bench

int main() { robopt::bench::Main(); }
