// Reproduces Figure 8: TDGEN's log generation — a handful of executed jobs
// (blue points) and the piecewise degree-5 polynomial that imputes the
// runtime of every other job of the same plan structure. Printed as a table
// of cardinality / true runtime / interpolated runtime / relative error.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_env.h"
#include "plan/cardinality.h"
#include "tdgen/interpolation.h"
#include "workloads/synthetic.h"

namespace robopt::bench {
namespace {

void Main() {
  std::printf("=== Figure 8: interpolation of job runtimes (6-operator "
              "plan, Spark) ===\n");
  BenchEnv env(3);

  LogicalPlan plan = MakeSyntheticPipeline(6, 1e6, 42);
  const OperatorId source = plan.SourceIds()[0];

  // One plan structure: everything on Spark.
  auto runtime_at = [&](double cardinality) {
    plan.mutable_op(source).source_cardinality = cardinality;
    const Cardinalities cards = CardinalityEstimator(&plan).Estimate();
    ExecutionPlan exec(&plan, &env.registry);
    for (const LogicalOperator& op : plan.operators()) {
      const auto& alts = env.registry.AlternativesFor(op.kind);
      for (size_t a = 0; a < alts.size(); ++a) {
        if (alts[a].platform == 1 && alts[a].variant == 0) {
          exec.Assign(op.id, static_cast<int>(a));
        }
      }
    }
    return env.TrueRuntime(exec, cards);
  };

  // Executed jobs J_r (the blue points of Fig. 8).
  const std::vector<double> executed = {1e4, 1e5, 1e6, 2e6, 5e6, 2e7};
  std::vector<double> xs;
  std::vector<double> ys;
  std::printf("executed jobs (J_r):\n");
  for (double card : executed) {
    const double runtime = runtime_at(card);
    xs.push_back(std::log10(card));
    ys.push_back(std::log1p(runtime));
    std::printf("  cardinality %10.0f -> %8.3f s\n", card, runtime);
  }
  const PiecewisePolynomial poly = PiecewisePolynomial::Fit(xs, ys, 5);

  std::printf("\nimputed jobs (J_i = J \\ J_r):\n");
  std::printf("%14s %12s %14s %10s\n", "cardinality", "true (s)",
              "interpolated", "error");
  double worst = 0.0;
  for (double card : {3e4, 7e4, 3e5, 7e5, 1.5e6, 3e6, 8e6, 1.5e7}) {
    const double truth = runtime_at(card);
    const double interpolated = std::expm1(poly.Eval(std::log10(card)));
    const double error = std::abs(interpolated - truth) / truth;
    worst = std::max(worst, error);
    std::printf("%14.0f %12.3f %14.3f %9.1f%%\n", card, truth, interpolated,
                error * 100);
  }
  std::printf("\nWorst interior error: %.1f%% — interpolation lets TDGEN "
              "label thousands of jobs while executing a handful.\n",
              worst * 100);
}

}  // namespace
}  // namespace robopt::bench

int main() { robopt::bench::Main(); }
