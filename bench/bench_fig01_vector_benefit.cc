// Reproduces Figure 1: the speed-up of the vector-based plan enumeration
// (Robopt) over the traditional object-based enumeration that calls the same
// ML model as a black box (Rheem-ML). Two platforms; three tasks: WordCount
// (6 operators), TPC-H Q3 (17 operators), a synthetic pipeline (40
// operators). Both sides explore the same plans with the same pruning; only
// the representation differs.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "baseline/traditional_enumerator.h"
#include "bench/bench_env.h"
#include "common/stopwatch.h"
#include "core/priority_enumeration.h"
#include "workloads/synthetic.h"

namespace robopt::bench {
namespace {

double MedianMs(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

void RunTask(BenchEnv& env, const std::string& name,
             const LogicalPlan& plan) {
  auto ctx = EnumerationContext::Make(&plan, &env.registry, &env.schema);
  if (!ctx.ok()) {
    std::fprintf(stderr, "context failed: %s\n",
                 ctx.status().ToString().c_str());
    return;
  }
  constexpr int kRepeats = 7;

  std::vector<double> vector_ms;
  float vector_cost = 0;
  for (int r = 0; r < kRepeats; ++r) {
    Stopwatch watch;
    PriorityEnumerator enumerator(&ctx.value(), env.oracle.get());
    auto result = enumerator.Run();
    vector_ms.push_back(watch.ElapsedMillis());
    if (result.ok()) vector_cost = result->predicted_runtime_s;
  }

  std::vector<double> object_ms;
  double object_cost = 0;
  for (int r = 0; r < kRepeats; ++r) {
    Stopwatch watch;
    TraditionalOptions options;
    options.oracle = TraditionalOracle::kMlModel;
    TraditionalEnumerator enumerator(&ctx.value(), nullptr, env.forest.get(),
                                     options);
    auto result = enumerator.Run();
    object_ms.push_back(watch.ElapsedMillis());
    if (result.ok()) object_cost = result->predicted_cost;
  }

  const double vec = MedianMs(vector_ms);
  const double obj = MedianMs(object_ms);
  std::printf("%-22s %6d ops   Rheem-ML %9.2f ms   Robopt %8.2f ms   "
              "improvement %5.1fx   (same optimum: %s)\n",
              name.c_str(), plan.num_operators(), obj, vec, obj / vec,
              std::abs(object_cost - vector_cost) <
                      std::abs(vector_cost) * 1e-3 + 1e-6
                  ? "yes"
                  : "NO");
}

void Main() {
  std::printf("=== Figure 1: benefit of vectors in the plan enumeration "
              "(2 platforms) ===\n");
  BenchEnv env(2);
  RunTask(env, "WordCount", MakeWordCountPlan(1.0));
  RunTask(env, "TPC-H Q3", MakeTpchQ3Plan(10.0));
  RunTask(env, "Synthetic (40 op.)", MakeSyntheticPipeline(40, 1e8, 7));
  std::printf("\nPaper's shape: improvement grows with the number of "
              "operators (up to ~9x at 40 operators).\n");
}

}  // namespace
}  // namespace robopt::bench

int main() { robopt::bench::Main(); }
