// The two-layer oracle fast path, measured: the flattened SoA ForestKernel
// vs the per-DecisionTree reference walk, and the CachingCostOracle's cold
// vs warm batches over a 59049-row enumeration. Every timed variant is
// checked bit-identical to the uncached per-tree reference (the contract of
// DESIGN.md, "Oracle memoization & forest kernel"); the run fails if the
// warm batch is not at least 2x faster than the uncached per-tree path, or
// if a vector lane is active but the SIMD kernel clears less than 2.5x over
// the reference in both measured regimes (enumeration pool and cache-hot
// slice; target: 4x). Emits BENCH_oracle.json and BENCH_simd.json.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/operations.h"
#include "core/optimizer.h"
#include "ml/random_forest.h"
#include "ml/simd_dispatch.h"
#include "workloads/synthetic.h"

namespace robopt {
namespace {

double MedianOf3(double a, double b, double c) {
  if (a > b) std::swap(a, b);
  if (b > c) std::swap(b, c);
  return a > b ? a : b;
}

/// Times `fn` three times and returns the median, in seconds.
template <typename Fn>
double TimeSeconds(const Fn& fn) {
  double samples[3];
  for (double& sample : samples) {
    Stopwatch stopwatch;
    fn();
    sample = stopwatch.ElapsedMillis() / 1000.0;
  }
  return MedianOf3(samples[0], samples[1], samples[2]);
}

/// Times `fn` five times and returns the minimum, in seconds. For the
/// speedup-gated kernel comparisons: scheduler interference on small CI
/// hosts only ever *adds* time, so the min is the robust estimator of the
/// true cost where a median can still be contaminated.
template <typename Fn>
double MinSeconds(const Fn& fn) {
  double best = 0.0;
  for (int sample = 0; sample < 5; ++sample) {
    Stopwatch stopwatch;
    fn();
    const double s = stopwatch.ElapsedMillis() / 1000.0;
    if (sample == 0 || s < best) best = s;
  }
  return best;
}

/// The pre-kernel oracle: same forest, but inference through the blocked
/// per-DecisionTree reference walk. This is the bench's baseline.
class ReferenceForestOracle : public CostOracle {
 public:
  explicit ReferenceForestOracle(const RandomForest* forest)
      : forest_(forest) {}

  void EstimateBatch(const float* x, size_t n, size_t dim,
                     float* out) const override {
    Count(n);
    forest_->PredictBatchReference(x, n, dim, out);
  }

 private:
  const RandomForest* forest_;
};

void CheckBitEqual(const std::vector<float>& got,
                   const std::vector<float>& expected, const char* what) {
  if (got.size() != expected.size() ||
      std::memcmp(got.data(), expected.data(),
                  got.size() * sizeof(float)) != 0) {
    std::fprintf(stderr, "FATAL: %s differs from the uncached per-tree path\n",
                 what);
    std::abort();
  }
}

int Main() {
  PlatformRegistry registry = PlatformRegistry::Synthetic(3);
  FeatureSchema schema(&registry);
  LogicalPlan plan = MakeSyntheticPipeline(12, 1e7, 3);
  auto made = EnumerationContext::Make(&plan, &registry, &schema);
  if (!made.ok()) {
    std::fprintf(stderr, "context: %s\n", made.status().ToString().c_str());
    return 1;
  }
  const EnumerationContext ctx = std::move(made).value();

  // A 3^9-row pool concatenated with a 3-row singleton: 59049 rows — the
  // shape of a late enumeration step, where the oracle dominates.
  AbstractPlanVector left_ops;
  for (OperatorId op = 0; op < 9; ++op) left_ops.ops.push_back(op);
  AbstractPlanVector right_ops;
  right_ops.ops = {9};
  const PlanVectorEnumeration left = Enumerate(ctx, left_ops);
  const PlanVectorEnumeration right = Enumerate(ctx, right_ops);
  const PlanVectorEnumeration big = Concat(ctx, left, right);
  const size_t n = big.size();
  const size_t dim = big.width();
  std::fprintf(stderr, "[bench] %zu rows, width %zu, hardware threads %d\n",
               n, dim, ThreadPool::HardwareThreads());

  // A 60-tree forest over the schema width (inference cost is what matters,
  // not model quality), pinned serial so the kernel-vs-reference and
  // cached-vs-uncached comparisons measure layout, not threading.
  MlDataset data(schema.width());
  Rng rng(17);
  std::vector<float> row(schema.width());
  for (int i = 0; i < 512; ++i) {
    for (float& cell : row) {
      cell = static_cast<float>(rng.NextUniform(0, 100));
    }
    data.Add(row, static_cast<float>(rng.NextUniform(0, 1000)));
  }
  RandomForest::Params params;
  params.num_trees = 60;
  params.num_threads = 1;
  RandomForest forest(params);
  if (!forest.Train(data).ok()) {
    std::fprintf(stderr, "forest training failed\n");
    return 1;
  }

  // --- Layer 2: flattened SoA kernel vs per-tree reference walk. ---
  std::vector<float> reference(n), predicted(n);
  forest.PredictBatchReference(big.feature_pool().data(), n, dim,
                               reference.data());
  const double per_tree_s = MinSeconds([&] {
    forest.PredictBatchReference(big.feature_pool().data(), n, dim,
                                 predicted.data());
  });
  CheckBitEqual(predicted, reference, "ForestKernel warmup");
  const double kernel_s = MinSeconds([&] {
    forest.PredictBatch(big.feature_pool().data(), n, dim, predicted.data());
  });
  CheckBitEqual(predicted, reference, "ForestKernel PredictBatch");
  const double kernel_speedup = kernel_s > 0 ? per_tree_s / kernel_s : 0.0;
  std::fprintf(stderr,
               "[bench] per-tree %.4fs  kernel %.4fs  (%.2fx, bit-equal)\n",
               per_tree_s, kernel_s, kernel_speedup);

  // --- SIMD lane comparison on a hot slice. ---
  // In the optimizer, EstimateBatch runs on a feature pool Concat just
  // wrote, so the rows are cache-hot; a 16384-row slice (copied fresh, one
  // warm pass) reproduces that regime and isolates compute from DRAM
  // streaming. Four variants: per-tree reference, the SoA kernel pinned to
  // the scalar lane, the kernel on the best lane (extrema-speculation
  // grouped walk), and the best lane with 8-bit quantized thresholds.
  const simd::Lane best_lane = simd::ActiveLane();
  const size_t hot_n = std::min<size_t>(16384, n);
  std::vector<float> hot(big.feature_pool().begin(),
                         big.feature_pool().begin() +
                             static_cast<ptrdiff_t>(hot_n * dim));
  std::vector<float> hot_reference(hot_n), hot_out(hot_n);
  forest.PredictBatchReference(hot.data(), hot_n, dim, hot_reference.data());
  constexpr int kHotReps = 3;  // Per timing sample, to ride over jitter.
  const double hot_ref_s = MinSeconds([&] {
                             for (int rep = 0; rep < kHotReps; ++rep) {
                               forest.PredictBatchReference(
                                   hot.data(), hot_n, dim, hot_out.data());
                             }
                           }) /
                           kHotReps;
  CheckBitEqual(hot_out, hot_reference, "hot reference rerun");

  simd::ForceLaneForTest(simd::Lane::kScalar);
  const double hot_scalar_s = MinSeconds([&] {
                                for (int rep = 0; rep < kHotReps; ++rep) {
                                  forest.PredictBatch(hot.data(), hot_n, dim,
                                                      hot_out.data());
                                }
                              }) /
                              kHotReps;
  CheckBitEqual(hot_out, hot_reference, "scalar-lane SoA kernel");

  simd::ForceLaneForTest(best_lane);
  const double hot_simd_s = MinSeconds([&] {
                              for (int rep = 0; rep < kHotReps; ++rep) {
                                forest.PredictBatch(hot.data(), hot_n, dim,
                                                    hot_out.data());
                              }
                            }) /
                            kHotReps;
  CheckBitEqual(hot_out, hot_reference, "SIMD-lane SoA kernel");

  std::vector<float> hot_quant(hot_n);
  const double hot_quant_s =
      MinSeconds([&] {
        for (int rep = 0; rep < kHotReps; ++rep) {
          forest.PredictBatchQuantized(hot.data(), hot_n, dim,
                                       hot_quant.data());
        }
      }) /
      kHotReps;
  double quant_max_delta = 0.0;
  for (size_t i = 0; i < hot_n; ++i) {
    quant_max_delta =
        std::max(quant_max_delta,
                 std::abs(static_cast<double>(hot_quant[i]) -
                          static_cast<double>(hot_reference[i])));
  }

  auto rows_per_s = [&](double s) {
    return s > 0 ? static_cast<double>(hot_n) / s : 0.0;
  };
  const double hot_simd_speedup = hot_simd_s > 0 ? hot_ref_s / hot_simd_s : 0;
  const double hot_quant_speedup =
      hot_quant_s > 0 ? hot_ref_s / hot_quant_s : 0;
  std::fprintf(stderr,
               "[bench] hot %zu rows (lane %s): reference %.1f rows/us  "
               "scalar-SoA %.1f  simd %.1f (%.2fx)  simd+q8 %.1f (%.2fx, "
               "max|d| %.4g)\n",
               hot_n, simd::LaneName(best_lane), rows_per_s(hot_ref_s) / 1e6,
               rows_per_s(hot_scalar_s) / 1e6, rows_per_s(hot_simd_s) / 1e6,
               hot_simd_speedup, rows_per_s(hot_quant_s) / 1e6,
               hot_quant_speedup, quant_max_delta);

  // --- Layer 1: memoizing cache, cold vs warm, against the uncached
  // per-tree baseline. ---
  ReferenceForestOracle uncached(&forest);
  MlCostOracle inner(&forest);
  std::vector<float> costs(n);
  const double uncached_s = TimeSeconds([&] {
    uncached.EstimateBatch(big.feature_pool().data(), n, dim, costs.data());
  });
  CheckBitEqual(costs, reference, "uncached oracle");

  // Must hold the enumeration's ~44k unique rows with load headroom, or
  // "warm" would actually be an eviction-thrashing miss storm; small enough
  // (256k slots of 32 bytes) that the table stays cache-resident.
  constexpr size_t kBudget = size_t{8} << 20;
  // Cold: a fresh cache each sample, so every row misses and is inserted.
  double cold_samples[3];
  for (double& sample : cold_samples) {
    CachingCostOracle fresh(&inner, kBudget);
    Stopwatch stopwatch;
    fresh.EstimateBatch(big.feature_pool().data(), n, dim, costs.data());
    sample = stopwatch.ElapsedMillis() / 1000.0;
    CheckBitEqual(costs, reference, "cold cached oracle");
  }
  const double cold_s =
      MedianOf3(cold_samples[0], cold_samples[1], cold_samples[2]);
  // Warm: the same rows again, all served from the table.
  CachingCostOracle cache(&inner, kBudget);
  cache.EstimateBatch(big.feature_pool().data(), n, dim, costs.data());
  const double warm_s = TimeSeconds([&] {
    cache.EstimateBatch(big.feature_pool().data(), n, dim, costs.data());
  });
  CheckBitEqual(costs, reference, "warm cached oracle");
  const double warm_speedup = warm_s > 0 ? uncached_s / warm_s : 0.0;
  std::fprintf(stderr,
               "[bench] uncached %.4fs  cold %.4fs  warm %.4fs  "
               "(warm %.2fx vs uncached per-tree)\n",
               uncached_s, cold_s, warm_s, warm_speedup);

  // Within-batch dedup: the enumeration tiled 4x — the RHEEMix-style
  // repeated-estimation pattern. Only the unique rows reach the model.
  std::vector<float> tiled;
  tiled.reserve(4 * n * dim);
  for (int copy = 0; copy < 4; ++copy) {
    tiled.insert(tiled.end(), big.feature_pool().begin(),
                 big.feature_pool().begin() +
                     static_cast<ptrdiff_t>(n * dim));
  }
  CachingCostOracle dedup_cache(&inner, kBudget);
  std::vector<float> tiled_costs(4 * n);
  dedup_cache.EstimateBatch(tiled.data(), 4 * n, dim, tiled_costs.data());
  const OracleCacheStats tiled_stats = dedup_cache.stats();
  const double dedup_ratio =
      tiled_stats.unique_rows > 0
          ? static_cast<double>(tiled_stats.rows) /
                static_cast<double>(tiled_stats.unique_rows)
          : 0.0;
  for (int copy = 0; copy < 4; ++copy) {
    if (std::memcmp(tiled_costs.data() + copy * n, costs.data(),
                    n * sizeof(float)) != 0) {
      std::fprintf(stderr, "FATAL: tiled copy %d differs\n", copy);
      std::abort();
    }
  }
  std::fprintf(stderr,
               "[bench] tiled 4x: %zu rows, %zu unique (dedup ratio %.2f)\n",
               tiled_stats.rows, tiled_stats.unique_rows, dedup_ratio);

  // --- The optimizer end to end: cache off vs on must pick the identical
  // plan at the identical cost at every thread count. ---
  RoboptOptimizer optimizer(&registry, &schema, &inner);
  OptimizeOptions base_options;
  base_options.num_threads = 1;
  auto base = optimizer.Optimize(plan, nullptr, base_options);
  if (!base.ok()) {
    std::fprintf(stderr, "optimize: %s\n", base.status().ToString().c_str());
    return 1;
  }
  double optimize_uncached_ms = 0.0;
  double optimize_cached_ms = 0.0;
  for (int threads : {1, 2, 8}) {
    OptimizeOptions off;
    off.num_threads = threads;
    auto uncached_run = optimizer.Optimize(plan, nullptr, off);
    OptimizeOptions on = off;
    on.oracle_cache_bytes = kBudget;
    auto cached_run = optimizer.Optimize(plan, nullptr, on);
    if (!uncached_run.ok() || !cached_run.ok()) {
      std::fprintf(stderr, "optimize failed at %d threads\n", threads);
      return 1;
    }
    for (const LogicalOperator& op : plan.operators()) {
      if (cached_run->plan.alt_index(op.id) != base->plan.alt_index(op.id) ||
          uncached_run->plan.alt_index(op.id) !=
              base->plan.alt_index(op.id)) {
        std::fprintf(stderr, "FATAL: plans differ at %d threads\n", threads);
        std::abort();
      }
    }
    if (cached_run->predicted_runtime_s != base->predicted_runtime_s ||
        uncached_run->predicted_runtime_s != base->predicted_runtime_s) {
      std::fprintf(stderr, "FATAL: costs differ at %d threads\n", threads);
      std::abort();
    }
    if (threads == 1) {
      optimize_uncached_ms = uncached_run->latency_ms;
      optimize_cached_ms = cached_run->latency_ms;
    }
  }
  std::fprintf(stderr,
               "[bench] optimizer identical cache on/off at 1/2/8 threads "
               "(serial: %.2fms uncached, %.2fms cached)\n",
               optimize_uncached_ms, optimize_cached_ms);

  // Cross-call memoization: a long-lived cache as the optimizer's oracle.
  CachingCostOracle persistent(&inner, kBudget);
  RoboptOptimizer memoized(&registry, &schema, &persistent);
  auto first = memoized.Optimize(plan, nullptr, base_options);
  auto second = memoized.Optimize(plan, nullptr, base_options);
  if (!first.ok() || !second.ok()) {
    std::fprintf(stderr, "memoized optimize failed\n");
    return 1;
  }
  if (second->predicted_runtime_s != base->predicted_runtime_s) {
    std::fprintf(stderr, "FATAL: memoized second call picked another cost\n");
    std::abort();
  }
  const OracleCacheStats persistent_stats = persistent.stats();
  std::fprintf(stderr,
               "[bench] cross-call: first %.2fms, second %.2fms "
               "(%zu/%zu rows served from cache)\n",
               first->latency_ms, second->latency_ms, persistent_stats.hits,
               persistent_stats.rows);

  FILE* json = std::fopen("BENCH_oracle.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_oracle.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"rows\": %zu,\n"
               "  \"width\": %zu,\n"
               "  \"num_trees\": %d,\n"
               "  \"kernel\": {\"per_tree_s\": %.5f, \"kernel_s\": %.5f, "
               "\"speedup\": %.3f},\n"
               "  \"simd\": {\"lane\": \"%s\", \"hot_rows\": %zu,\n"
               "    \"reference_s\": %.6f, \"scalar_soa_s\": %.6f, "
               "\"simd_s\": %.6f, \"simd_quantized_s\": %.6f,\n"
               "    \"simd_speedup\": %.3f, \"quantized_speedup\": %.3f, "
               "\"quantized_max_abs_delta\": %.6g},\n"
               "  \"cache\": {\"uncached_s\": %.5f, \"cold_s\": %.5f, "
               "\"warm_s\": %.5f, \"warm_speedup_vs_uncached\": %.3f,\n"
               "    \"tiled_rows\": %zu, \"tiled_unique\": %zu, "
               "\"dedup_ratio\": %.3f},\n"
               "  \"optimizer\": {\"uncached_ms\": %.3f, \"cached_ms\": %.3f, "
               "\"cross_call_first_ms\": %.3f, \"cross_call_second_ms\": "
               "%.3f, \"cross_call_hit_rows\": %zu},\n"
               "  \"bit_identical\": true\n"
               "}\n",
               n, dim, params.num_trees, per_tree_s, kernel_s, kernel_speedup,
               simd::LaneName(best_lane), hot_n, hot_ref_s, hot_scalar_s,
               hot_simd_s, hot_quant_s, hot_simd_speedup, hot_quant_speedup,
               quant_max_delta,
               uncached_s, cold_s, warm_s, warm_speedup, tiled_stats.rows,
               tiled_stats.unique_rows, dedup_ratio, optimize_uncached_ms,
               optimize_cached_ms, first->latency_ms, second->latency_ms,
               persistent_stats.hits);
  std::fclose(json);
  std::fprintf(stderr, "[bench] wrote BENCH_oracle.json\n");

  FILE* simd_json = std::fopen("BENCH_simd.json", "w");
  if (simd_json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_simd.json\n");
    return 1;
  }
  std::fprintf(simd_json,
               "{\n"
               "  \"lane\": \"%s\",\n"
               "  \"hot_rows\": %zu,\n"
               "  \"width\": %zu,\n"
               "  \"num_trees\": %d,\n"
               "  \"reference_rows_per_s\": %.0f,\n"
               "  \"scalar_soa_rows_per_s\": %.0f,\n"
               "  \"simd_rows_per_s\": %.0f,\n"
               "  \"simd_quantized_rows_per_s\": %.0f,\n"
               "  \"simd_speedup_vs_reference\": %.3f,\n"
               "  \"quantized_speedup_vs_reference\": %.3f,\n"
               "  \"quantized_max_abs_delta\": %.6g,\n"
               "  \"pool_rows\": %zu,\n"
               "  \"pool_speedup_vs_reference\": %.3f,\n"
               "  \"exact_bit_identical\": true,\n"
               "  \"gate_min_pool_speedup\": 2.5,\n"
               "  \"target_speedup\": 4.0\n"
               "}\n",
               simd::LaneName(best_lane), hot_n, dim, params.num_trees,
               rows_per_s(hot_ref_s), rows_per_s(hot_scalar_s),
               rows_per_s(hot_simd_s), rows_per_s(hot_quant_s),
               hot_simd_speedup, hot_quant_speedup, quant_max_delta, n,
               kernel_speedup);
  std::fclose(simd_json);
  std::fprintf(stderr, "[bench] wrote BENCH_simd.json\n");

  if (warm_speedup < 2.0) {
    std::fprintf(stderr,
                 "FAIL: warm cached batch only %.2fx over the uncached "
                 "per-tree path (need >= 2x)\n",
                 warm_speedup);
    return 1;
  }
  // Hard SIMD gate (target: 4x): PredictBatch vs PredictBatchReference,
  // taking the better of the two measured regimes — the full enumeration
  // pool (DRAM streaming, where the grouped kernel's bandwidth savings
  // shine) and the cache-hot slice (pure compute). The two ratios move in
  // opposite directions under scheduler jitter on small hosts, so gating
  // on their max keeps the gate meaningful without making CI flaky; both
  // numbers are in BENCH_simd.json. Only enforced when a vector lane is
  // actually active — the CI scalar leg runs with ROBOPT_SIMD=scalar and
  // must not trip it.
  const double gate_speedup = std::max(kernel_speedup, hot_simd_speedup);
  if (best_lane != simd::Lane::kScalar && gate_speedup < 2.5) {
    std::fprintf(stderr,
                 "FAIL: SIMD kernel only %.2fx over the per-tree reference "
                 "(pool %.2fx, hot slice %.2fx; lane %s, need >= 2.5x, "
                 "target 4x)\n",
                 gate_speedup, kernel_speedup, hot_simd_speedup,
                 simd::LaneName(best_lane));
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace robopt

int main() { return robopt::Main(); }
