// Ablation behind Section VII-A's model choice: "we tried linear
// regression, random forests, and neural networks and found random forests
// to be more robust". Trains all three on the same TDGEN set and reports
// holdout quality — Spearman rank correlation is what the optimizer needs.

#include <cstdio>

#include "ml/linear_regression.h"
#include "ml/metrics.h"
#include "ml/mlp.h"
#include "tdgen/tdgen.h"
#include "workloads/queries.h"

namespace robopt::bench {
namespace {

void Report(const char* name, const RuntimeModel& model,
            const MlDataset& test) {
  const RegressionMetrics metrics = Evaluate(model, test);
  std::printf("%-18s R2 %7.3f   Spearman %6.3f   MAE %10.2f s\n", name,
              metrics.r2, metrics.spearman, metrics.mae);
}

void Main() {
  std::printf("=== Model selection (Section VII-A): runtime-prediction "
              "quality on a TDGEN holdout ===\n");
  PlatformRegistry registry = PlatformRegistry::Default(3);
  FeatureSchema schema(&registry);
  VirtualCost cost(&registry);
  Executor executor(&registry, &cost);
  RegisterWorkloadKernels();

  TdgenOptions options;
  options.plans_per_shape = 10;
  options.max_operators = 16;
  options.max_structures_per_plan = 24;
  options.seed = 2020;
  Tdgen tdgen(&registry, &schema, &executor, options);
  TdgenReport report;
  auto data = tdgen.Generate(&report);
  if (!data.ok()) {
    std::fprintf(stderr, "TDGEN failed: %s\n",
                 data.status().ToString().c_str());
    return;
  }
  MlDataset train(schema.width());
  MlDataset test(schema.width());
  data->Split(0.9, 99, &train, &test);
  std::printf("training set: %zu jobs (%zu executed, %zu imputed), holdout "
              "%zu\n\n",
              report.jobs_total, report.jobs_executed, report.jobs_imputed,
              test.size());

  LinearRegression linear;
  if (linear.Train(train).ok()) Report("LinearRegression", linear, test);

  MlpRegressor::Params mlp_params;
  mlp_params.epochs = 40;
  MlpRegressor mlp(mlp_params);
  if (mlp.Train(train).ok()) Report("NeuralNetwork", mlp, test);

  RandomForest::Params forest_params;
  forest_params.tree.max_features = static_cast<int>(schema.width() / 3);
  RandomForest forest(forest_params);
  if (forest.Train(train).ok()) Report("RandomForest", forest, test);

  std::printf("\nPaper's conclusion: random forests are the most robust; "
              "the linear model embodies the fixed-function-form problem "
              "of tuned cost models.\n");
}

}  // namespace
}  // namespace robopt::bench

int main() { robopt::bench::Main(); }
