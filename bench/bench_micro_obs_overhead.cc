// The observability tax, measured and gated: optimize latency with the
// full obs plane on (metrics + tracer + profile) vs off. Each arm's cost
// is the MINIMUM single-call latency over interleaved off/on reps —
// scheduler noise and frequency drift only ever add latency, so min-of-
// many converges on the true deterministic cost of each arm even on a
// loaded 1-core box where whole-rep QPS flaps by 10%+. The run fails if
// observability costs more than 3% optimize throughput, and aborts if the
// chosen plan or its predicted cost differ in any call — the bit-identical
// contract of ObsOptions. A second A/B repeats the measurement one layer
// up, on OptimizerService: decision diagnostics + latency sketch + SLO
// engine on vs off, same min-of-reps discipline, same 3% gate, same
// bit-identity abort. Emits BENCH_obs.json, BENCH_slo.json (burn-rate
// reaction/recovery latency on a manual clock) plus a sample trace.json
// (an optimize + execute round trip, loadable in chrome://tracing /
// Perfetto).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "core/cost_oracle.h"
#include "core/linear_oracle.h"
#include "core/optimizer.h"
#include "ml/random_forest.h"
#include "exec/executor.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "serve/optimizer_service.h"
#include "tdgen/tdgen.h"
#include "workloads/datagen.h"
#include "workloads/queries.h"
#include "workloads/synthetic.h"

namespace robopt {
namespace {

constexpr int kReps = 7;
constexpr double kMaxOverhead = 0.03;

/// One timed optimize call; checks it lands on the reference plan/cost and
/// returns its latency (ms).
double RunOne(const RoboptOptimizer& optimizer, const LogicalPlan& plan,
              const OptimizeOptions& options,
              const OptimizeResult& reference) {
  Stopwatch stopwatch;
  auto result = optimizer.Optimize(plan, nullptr, options);
  const double ms = stopwatch.ElapsedMillis();
  if (!result.ok()) {
    std::fprintf(stderr, "optimize: %s\n", result.status().ToString().c_str());
    std::abort();
  }
  if (result->predicted_runtime_s != reference.predicted_runtime_s) {
    std::fprintf(stderr, "FATAL: predicted cost differs under obs\n");
    std::abort();
  }
  for (const LogicalOperator& op : plan.operators()) {
    if (result->plan.alt_index(op.id) != reference.plan.alt_index(op.id)) {
      std::fprintf(stderr, "FATAL: chosen plan differs under obs\n");
      std::abort();
    }
  }
  return ms;
}

struct OverheadResult {
  double qps_off = 0.0;  // 1 / min-latency: noise-free throughput bound.
  double qps_on = 0.0;
  double overhead = 0.0;
};

/// Minimum per-call latency per arm over `kReps` reps of call-level
/// interleaved off/on pairs: every off call is immediately followed by an
/// on call, so thermal or frequency drift and scheduler stalls hit both
/// arms in the same window and fall out of the per-arm min. The
/// instrumented arm pays for everything at once: sharded counters, the
/// span ring, and the profile.
OverheadResult MeasureOverhead(const RoboptOptimizer& optimizer,
                               const LogicalPlan& plan, int calls,
                               MetricsRegistry* metrics, Tracer* tracer,
                               const char* what) {
  OptimizeOptions off;
  off.num_threads = 1;  // Serial: the A/B delta measures obs, not scheduling.
  auto reference = optimizer.Optimize(plan, nullptr, off);
  if (!reference.ok()) {
    std::fprintf(stderr, "reference optimize failed\n");
    std::abort();
  }
  OptimizeOptions on = off;
  on.obs.metrics = metrics;
  on.obs.tracer = tracer;
  on.obs.profile = true;

  for (int i = 0; i < calls; ++i) {  // Warm both arms.
    RunOne(optimizer, plan, off, *reference);
    RunOne(optimizer, plan, on, *reference);
  }
  // The gate reads the *median* matched-pair ratio: each rep's on/off
  // ratio pairs minima from the same time window, and the median over
  // reps discards windows where a background stall hit one arm harder —
  // robust in both directions, unlike a min (deflated when the off arm
  // catches the noise) or a global-min ratio (pairs minima from
  // different windows).
  double min_off_ms = 1e18;
  double min_on_ms = 1e18;
  std::vector<double> ratios;
  ratios.reserve(kReps);
  for (int rep = 0; rep < kReps; ++rep) {
    double off_ms = 1e18;
    double on_ms = 1e18;
    for (int i = 0; i < calls; ++i) {
      off_ms = std::min(off_ms, RunOne(optimizer, plan, off, *reference));
      on_ms = std::min(on_ms, RunOne(optimizer, plan, on, *reference));
    }
    if (off_ms < min_off_ms) min_off_ms = off_ms;
    if (on_ms < min_on_ms) min_on_ms = on_ms;
    ratios.push_back(on_ms / off_ms);
    std::fprintf(stderr,
                 "[bench] %s rep %d: off min %.3f ms, on min %.3f ms\n",
                 what, rep, off_ms, on_ms);
  }
  std::sort(ratios.begin(), ratios.end());
  OverheadResult result;
  result.qps_off = 1000.0 / min_off_ms;
  result.qps_on = 1000.0 / min_on_ms;
  result.overhead = ratios[ratios.size() / 2] - 1.0;
  return result;
}

/// Builds a serving-layer instance over the shared TDGEN base. Training is
/// fully seeded, so every service built here serves the identical v1
/// forest — the precondition of the cross-service bit-identity check.
std::unique_ptr<OptimizerService> MakeService(
    const PlatformRegistry* registry, const FeatureSchema* schema,
    const MlDataset& base, bool instrumented,
    ServeSloOptions* slo_override = nullptr) {
  ServeOptions options;
  options.background_retrain = false;
  options.forest.num_trees = 20;
  // Sharded mode is the production path: both arms pay routing (incl. the
  // plan fingerprint diagnostics reuse), so the A/B isolates the
  // diagnostics layer itself.
  options.num_shards = 2;
  options.plan_cache_capacity = 0;  // Every call does real optimize work.
  if (instrumented) {
    options.diagnostics.enabled = true;
    options.slo.enabled = true;
  }
  if (slo_override != nullptr) options.slo = *slo_override;
  auto service = OptimizerService::Create(registry, schema, base,
                                          /*initial=*/nullptr, options);
  if (!service.ok()) {
    std::fprintf(stderr, "service create failed: %s\n",
                 service.status().ToString().c_str());
    std::abort();
  }
  return std::move(service.value());
}

/// Service-level A/B: the full second observability layer (per-query
/// decision records + windowed latency sketch + SLO engine) on vs off.
/// Same min-of-interleaved-reps discipline as MeasureOverhead, and every
/// instrumented call must reproduce the plain service's plan, predicted
/// cost and model version exactly.
OverheadResult MeasureServiceOverhead(const PlatformRegistry* registry,
                                      const FeatureSchema* schema,
                                      const MlDataset& base) {
  auto plain = MakeService(registry, schema, base, /*instrumented=*/false);
  auto instrumented =
      MakeService(registry, schema, base, /*instrumented=*/true);

  // The same enumeration-heavy pipeline the core A/B gates on: the
  // record/sketch cost is fixed per call, so it must vanish at the real
  // optimize scale (a tiny plan would put the ~µs fixed cost at 5%+ the
  // same way the tiny-plan diagnostic above does for spans).
  const LogicalPlan plan = MakeSyntheticPipeline(16, 1e7, 3);
  OptimizeOptions opt;
  opt.num_threads = 1;  // Serial: the A/B delta measures obs, not scheduling.
  RequestContext ctx;
  ctx.tenant = 3;
  auto reference = plain->Optimize(plan, nullptr, opt, ctx);
  if (!reference.ok()) {
    std::fprintf(stderr, "reference serve failed: %s\n",
                 reference.status().ToString().c_str());
    std::abort();
  }

  auto timed_call = [&](OptimizerService* service) {
    Stopwatch stopwatch;
    auto result = service->Optimize(plan, nullptr, opt, ctx);
    const double ms = stopwatch.ElapsedMillis();
    if (!result.ok()) {
      std::fprintf(stderr, "serve optimize: %s\n",
                   result.status().ToString().c_str());
      std::abort();
    }
    if (result->optimize.predicted_runtime_s !=
            reference->optimize.predicted_runtime_s ||
        result->optimize.model_version != reference->optimize.model_version) {
      std::fprintf(stderr,
                   "FATAL: served cost/version differ under diagnostics\n");
      std::abort();
    }
    for (const LogicalOperator& op : plan.operators()) {
      if (result->optimize.plan.alt_index(op.id) !=
          reference->optimize.plan.alt_index(op.id)) {
        std::fprintf(stderr, "FATAL: served plan differs under diagnostics\n");
        std::abort();
      }
    }
    return ms;
  };

  // Call-level interleave (off, on, off, on, ...): both arms' minima are
  // drawn from the same machine windows, as in MeasureOverhead.
  constexpr int kCalls = 60;
  for (int i = 0; i < kCalls; ++i) {  // Warm both arms.
    timed_call(plain.get());
    timed_call(instrumented.get());
  }
  // Median matched-pair ratio, as MeasureOverhead.
  double min_off_ms = 1e18;
  double min_on_ms = 1e18;
  std::vector<double> ratios;
  ratios.reserve(kReps);
  for (int r = 0; r < kReps; ++r) {
    double off_ms = 1e18;
    double on_ms = 1e18;
    for (int i = 0; i < kCalls; ++i) {
      off_ms = std::min(off_ms, timed_call(plain.get()));
      on_ms = std::min(on_ms, timed_call(instrumented.get()));
    }
    if (off_ms < min_off_ms) min_off_ms = off_ms;
    if (on_ms < min_on_ms) min_on_ms = on_ms;
    ratios.push_back(on_ms / off_ms);
    std::fprintf(stderr,
                 "[bench] service rep %d: off min %.3f ms, on min %.3f ms\n",
                 r, off_ms, on_ms);
  }
  std::sort(ratios.begin(), ratios.end());
  OverheadResult result;
  result.qps_off = 1000.0 / min_off_ms;
  result.qps_on = 1000.0 / min_on_ms;
  result.overhead = ratios[ratios.size() / 2] - 1.0;
  return result;
}

struct SloReaction {
  double reaction_s = -1.0;  // Degradation start -> critical burn.
  double recovery_s = -1.0;  // Degradation end -> health ok again.
  uint64_t evaluations = 0;
};

/// Burn-rate reaction latency on a manual clock: healthy traffic, then an
/// injected 5s-per-request latency degradation. The clock steps in 50ms
/// ticks with one served request + one evaluation per tick until the fast
/// pair trips critical; then the injection stops and the clock steps in
/// 250ms ticks until the windows drain and health clears.
SloReaction MeasureSloReaction(const PlatformRegistry* registry,
                               const FeatureSchema* schema,
                               const MlDataset& base) {
  ServeSloOptions slo;
  slo.enabled = true;
  slo.sketch_window_s = 0.5;
  slo.sketch_windows = 64;
  SloObjective objective;
  objective.name = "optimize_latency";
  objective.threshold_us = 1e6;
  objective.target = 0.99;
  objective.fast_window_s = 6.0;
  objective.slow_window_s = 12.0;
  objective.fast_burn = 2.0;
  objective.slow_burn = 1.0;
  slo.objectives.push_back(objective);
  auto now = std::make_shared<double>(0.25);
  slo.clock = [now] { return *now; };
  auto service =
      MakeService(registry, schema, base, /*instrumented=*/true, &slo);

  const LogicalPlan plan = MakeWordCountPlan(0.001);
  const OptimizeOptions opt;
  RequestContext ctx;
  ctx.tenant = 3;
  for (int i = 0; i < 20; ++i) {
    (void)service->Optimize(plan, nullptr, opt, ctx);
  }
  service->EvaluateSloNow();
  SloReaction out;
  ++out.evaluations;
  if (service->slo_health() != SloHealth::kOk) {
    std::fprintf(stderr, "FATAL: SLO not healthy before degradation\n");
    std::abort();
  }

  const double t0 = 1.0;
  *now = t0;
  service->set_slo_inject_latency_us(5e6);
  for (int step = 0; step < 400; ++step) {
    *now += 0.05;
    (void)service->Optimize(plan, nullptr, opt, ctx);
    service->EvaluateSloNow();
    ++out.evaluations;
    if (service->slo_health() == SloHealth::kCritical) {
      out.reaction_s = *now - t0;
      break;
    }
  }
  service->set_slo_inject_latency_us(0.0);
  const double t1 = *now;
  for (int step = 0; step < 400; ++step) {
    *now += 0.25;
    service->EvaluateSloNow();
    ++out.evaluations;
    if (service->slo_health() == SloHealth::kOk) {
      out.recovery_s = *now - t1;
      break;
    }
  }
  return out;
}

int Main() {
  RegisterWorkloadKernels();
  PlatformRegistry registry = PlatformRegistry::Default(3);
  FeatureSchema schema(&registry);
  LinearFeatureOracle oracle(schema, 5);
  RoboptOptimizer optimizer(&registry, &schema, &oracle);

  MetricsRegistry metrics;
  Tracer tracer(1 << 14);

  // The gated workload: the optimizer in its real configuration — a
  // RandomForest cost oracle (model quality is irrelevant here, inference
  // cost is the point) over an enumeration-heavy 12-operator pipeline, at
  // the paper's millisecond optimize scale. Obs cost is per-phase and
  // per-operator (never per enumerated vector), so it must disappear in
  // the noise; a hot-path regression — say a span or a name lookup per
  // vector — blows straight through the 3% gate.
  MlDataset data(schema.width());
  Rng rng(17);
  std::vector<float> feature_row(schema.width());
  for (int i = 0; i < 2048; ++i) {
    for (float& cell : feature_row) {
      cell = static_cast<float>(rng.NextUniform(0, 100));
    }
    data.Add(feature_row, static_cast<float>(rng.NextUniform(0, 1000)));
  }
  RandomForest::Params params;
  params.num_trees = 150;
  params.num_threads = 1;
  RandomForest forest(params);
  if (!forest.Train(data).ok()) {
    std::fprintf(stderr, "forest training failed\n");
    return 1;
  }
  MlCostOracle forest_oracle(&forest);
  RoboptOptimizer ml_optimizer(&registry, &schema, &forest_oracle);
  // 50 calls/rep keeps a rep ~20ms — long enough that a single scheduler
  // hiccup on a 1-core box can't fake a >3% delta on its own.
  const LogicalPlan heavy = MakeSyntheticPipeline(16, 1e7, 3);
  const OverheadResult gated =
      MeasureOverhead(ml_optimizer, heavy, 100, &metrics, &tracer, "gated");
  std::fprintf(stderr,
               "[bench] gated min-of-%d-reps: off %.1f qps, on %.1f qps "
               "(overhead %.2f%%, gate %.0f%%)\n",
               kReps, gated.qps_off, gated.qps_on, gated.overhead * 100.0,
               kMaxOverhead * 100.0);

  // Diagnostic only (reported, not gated): a tiny 10-operator plan at
  // ~70us/optimize, where the fixed per-call cost — ~20 spans, the metric
  // publishes, the profile — is proportionally at its worst.
  const LogicalPlan tiny = MakeSyntheticPipeline(10, 1e6, 13);
  const OverheadResult small =
      MeasureOverhead(optimizer, tiny, 40, &metrics, &tracer, "tiny");
  std::fprintf(stderr,
               "[bench] tiny-plan diagnostic: off %.1f qps, on %.1f qps "
               "(overhead %.2f%%)\n",
               small.qps_off, small.qps_on, small.overhead * 100.0);

  // The serving-layer A/B and the SLO reaction probe share one TDGEN base:
  // seeded training means every service arm serves the identical v1 model.
  VirtualCost cost(&registry);
  TdgenOptions tdgen_options;
  tdgen_options.plans_per_shape = 4;
  tdgen_options.max_operators = 10;
  tdgen_options.max_structures_per_plan = 16;
  tdgen_options.seed = 17;
  Executor tdgen_executor(&registry, &cost);
  Tdgen tdgen(&registry, &schema, &tdgen_executor, tdgen_options);
  auto base = tdgen.Generate();
  if (!base.ok()) {
    std::fprintf(stderr, "tdgen failed: %s\n", base.status().ToString().c_str());
    return 1;
  }
  const OverheadResult service =
      MeasureServiceOverhead(&registry, &schema, base.value());
  std::fprintf(stderr,
               "[bench] service diagnostics+sketch+slo: off %.1f qps, on "
               "%.1f qps (overhead %.2f%%, gate %.0f%%)\n",
               service.qps_off, service.qps_on, service.overhead * 100.0,
               kMaxOverhead * 100.0);

  const SloReaction reaction =
      MeasureSloReaction(&registry, &schema, base.value());
  std::fprintf(stderr,
               "[bench] slo burn-rate: reaction %.2f s, recovery %.2f s "
               "(%llu evaluations)\n",
               reaction.reaction_s, reaction.recovery_s,
               static_cast<unsigned long long>(reaction.evaluations));
  FILE* slo_json = std::fopen("BENCH_slo.json", "w");
  if (slo_json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_slo.json\n");
    return 1;
  }
  std::fprintf(slo_json,
               "{\n"
               "  \"objective\": {\"threshold_us\": 1000000, \"target\": "
               "0.99, \"fast_window_s\": 6.0, \"fast_burn\": 2.0, "
               "\"slow_window_s\": 12.0, \"slow_burn\": 1.0},\n"
               "  \"injected_latency_us\": 5000000,\n"
               "  \"reaction_s\": %.3f,\n"
               "  \"recovery_s\": %.3f,\n"
               "  \"evaluations\": %llu\n"
               "}\n",
               reaction.reaction_s, reaction.recovery_s,
               static_cast<unsigned long long>(reaction.evaluations));
  std::fclose(slo_json);
  std::fprintf(stderr, "[bench] wrote BENCH_slo.json\n");

  // A sample trace for the CI artifact: one real optimize + execute round
  // trip on one trace id, both clock timelines populated.
  LogicalPlan wc = MakeWordCountPlan(0.001);
  Tracer trace_ring(4096);
  OptimizeOptions traced;
  traced.num_threads = 1;
  traced.obs.tracer = &trace_ring;
  traced.obs.profile = true;
  auto optimized = optimizer.Optimize(wc, nullptr, traced);
  if (!optimized.ok()) {
    std::fprintf(stderr, "traced optimize failed\n");
    return 1;
  }
  DataCatalog catalog;
  catalog.Bind(wc.SourceIds()[0], GenerateTextLines(1000, 1000, 5));
  ExecutorOptions eo;
  eo.obs.tracer = &trace_ring;
  eo.obs.trace_id = optimized->profile.trace_id;
  Executor executor(&registry, &cost, nullptr, eo);
  auto executed = executor.Execute(optimized->plan, catalog);
  if (!executed.ok()) {
    std::fprintf(stderr, "traced execute failed\n");
    return 1;
  }
  const std::string trace_json =
      ExportChromeTrace(trace_ring.Collect(optimized->profile.trace_id));
  FILE* trace_file = std::fopen("trace.json", "w");
  if (trace_file == nullptr) {
    std::fprintf(stderr, "cannot write trace.json\n");
    return 1;
  }
  std::fwrite(trace_json.data(), 1, trace_json.size(), trace_file);
  std::fclose(trace_file);
  std::fprintf(stderr, "[bench] wrote trace.json (%zu bytes)\n",
               trace_json.size());

  const MetricsSnapshot snapshot = metrics.Snapshot();
  FILE* json = std::fopen("BENCH_obs.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_obs.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"reps\": %d,\n"
               "  \"gated\": {\"qps_obs_off\": %.2f, \"qps_obs_on\": %.2f, "
               "\"overhead_fraction\": %.5f},\n"
               "  \"tiny_plan\": {\"qps_obs_off\": %.2f, \"qps_obs_on\": "
               "%.2f, \"overhead_fraction\": %.5f},\n"
               "  \"service_diagnostics\": {\"qps_diag_off\": %.2f, "
               "\"qps_diag_on\": %.2f, \"overhead_fraction\": %.5f},\n"
               "  \"gate_fraction\": %.3f,\n"
               "  \"instrumented_calls\": %.0f,\n"
               "  \"spans_recorded\": %llu,\n"
               "  \"bit_identical\": true\n"
               "}\n",
               kReps, gated.qps_off, gated.qps_on, gated.overhead,
               small.qps_off, small.qps_on, small.overhead,
               service.qps_off, service.qps_on, service.overhead,
               kMaxOverhead, snapshot.Value("robopt_optimize_calls_total"),
               static_cast<unsigned long long>(tracer.recorded()));
  std::fclose(json);
  std::fprintf(stderr, "[bench] wrote BENCH_obs.json\n");

  if (gated.overhead > kMaxOverhead) {
    std::fprintf(stderr,
                 "FAIL: observability costs %.2f%% optimize QPS "
                 "(gate: %.0f%%)\n",
                 gated.overhead * 100.0, kMaxOverhead * 100.0);
    return 1;
  }
  if (service.overhead > kMaxOverhead) {
    std::fprintf(stderr,
                 "FAIL: diagnostics+sketch+slo cost %.2f%% served QPS "
                 "(gate: %.0f%%)\n",
                 service.overhead * 100.0, kMaxOverhead * 100.0);
    return 1;
  }
  if (reaction.reaction_s < 0.0 || reaction.recovery_s < 0.0) {
    std::fprintf(stderr,
                 "FAIL: SLO engine never %s (reaction %.2f, recovery %.2f)\n",
                 reaction.reaction_s < 0.0 ? "tripped" : "recovered",
                 reaction.reaction_s, reaction.recovery_s);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace robopt

int main() { return robopt::Main(); }
