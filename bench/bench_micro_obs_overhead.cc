// The observability tax, measured and gated: optimize latency with the
// full obs plane on (metrics + tracer + profile) vs off. Each arm's cost
// is the MINIMUM single-call latency over interleaved off/on reps —
// scheduler noise and frequency drift only ever add latency, so min-of-
// many converges on the true deterministic cost of each arm even on a
// loaded 1-core box where whole-rep QPS flaps by 10%+. The run fails if
// observability costs more than 3% optimize throughput, and aborts if the
// chosen plan or its predicted cost differ in any call — the bit-identical
// contract of ObsOptions. Emits BENCH_obs.json plus a sample trace.json
// (an optimize + execute round trip, loadable in chrome://tracing /
// Perfetto).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "core/cost_oracle.h"
#include "core/linear_oracle.h"
#include "core/optimizer.h"
#include "ml/random_forest.h"
#include "exec/executor.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workloads/datagen.h"
#include "workloads/queries.h"
#include "workloads/synthetic.h"

namespace robopt {
namespace {

constexpr int kReps = 7;
constexpr double kMaxOverhead = 0.03;

/// One rep of `calls` optimize calls; returns the minimum single-call
/// latency (ms) and checks every call lands on the reference plan/cost.
double RunRep(const RoboptOptimizer& optimizer, const LogicalPlan& plan,
              const OptimizeOptions& options, const OptimizeResult& reference,
              int calls) {
  double min_ms = 1e18;
  for (int i = 0; i < calls; ++i) {
    Stopwatch stopwatch;
    auto result = optimizer.Optimize(plan, nullptr, options);
    const double ms = stopwatch.ElapsedMillis();
    if (ms < min_ms) min_ms = ms;
    if (!result.ok()) {
      std::fprintf(stderr, "optimize: %s\n",
                   result.status().ToString().c_str());
      std::abort();
    }
    if (result->predicted_runtime_s != reference.predicted_runtime_s) {
      std::fprintf(stderr, "FATAL: predicted cost differs under obs\n");
      std::abort();
    }
    for (const LogicalOperator& op : plan.operators()) {
      if (result->plan.alt_index(op.id) != reference.plan.alt_index(op.id)) {
        std::fprintf(stderr, "FATAL: chosen plan differs under obs\n");
        std::abort();
      }
    }
  }
  return min_ms;
}

struct OverheadResult {
  double qps_off = 0.0;  // 1 / min-latency: noise-free throughput bound.
  double qps_on = 0.0;
  double overhead = 0.0;
};

/// Minimum per-call latency per arm over `kReps` interleaved off/on reps,
/// so thermal or frequency drift hits both arms equally and transient
/// stalls fall out of the min. The instrumented arm pays for everything
/// at once: sharded counters, the span ring, and the profile.
OverheadResult MeasureOverhead(const RoboptOptimizer& optimizer,
                               const LogicalPlan& plan, int calls,
                               MetricsRegistry* metrics, Tracer* tracer,
                               const char* what) {
  OptimizeOptions off;
  off.num_threads = 1;  // Serial: the A/B delta measures obs, not scheduling.
  auto reference = optimizer.Optimize(plan, nullptr, off);
  if (!reference.ok()) {
    std::fprintf(stderr, "reference optimize failed\n");
    std::abort();
  }
  OptimizeOptions on = off;
  on.obs.metrics = metrics;
  on.obs.tracer = tracer;
  on.obs.profile = true;

  RunRep(optimizer, plan, off, *reference, calls);  // Warm both arms.
  RunRep(optimizer, plan, on, *reference, calls);
  double min_off_ms = 1e18;
  double min_on_ms = 1e18;
  for (int rep = 0; rep < kReps; ++rep) {
    const double off_ms = RunRep(optimizer, plan, off, *reference, calls);
    const double on_ms = RunRep(optimizer, plan, on, *reference, calls);
    if (off_ms < min_off_ms) min_off_ms = off_ms;
    if (on_ms < min_on_ms) min_on_ms = on_ms;
    std::fprintf(stderr,
                 "[bench] %s rep %d: off min %.3f ms, on min %.3f ms\n",
                 what, rep, off_ms, on_ms);
  }
  OverheadResult result;
  result.qps_off = 1000.0 / min_off_ms;
  result.qps_on = 1000.0 / min_on_ms;
  result.overhead = (min_on_ms - min_off_ms) / min_off_ms;
  return result;
}

int Main() {
  PlatformRegistry registry = PlatformRegistry::Default(3);
  FeatureSchema schema(&registry);
  LinearFeatureOracle oracle(schema, 5);
  RoboptOptimizer optimizer(&registry, &schema, &oracle);

  MetricsRegistry metrics;
  Tracer tracer(1 << 14);

  // The gated workload: the optimizer in its real configuration — a
  // RandomForest cost oracle (model quality is irrelevant here, inference
  // cost is the point) over an enumeration-heavy 12-operator pipeline, at
  // the paper's millisecond optimize scale. Obs cost is per-phase and
  // per-operator (never per enumerated vector), so it must disappear in
  // the noise; a hot-path regression — say a span or a name lookup per
  // vector — blows straight through the 3% gate.
  MlDataset data(schema.width());
  Rng rng(17);
  std::vector<float> feature_row(schema.width());
  for (int i = 0; i < 2048; ++i) {
    for (float& cell : feature_row) {
      cell = static_cast<float>(rng.NextUniform(0, 100));
    }
    data.Add(feature_row, static_cast<float>(rng.NextUniform(0, 1000)));
  }
  RandomForest::Params params;
  params.num_trees = 150;
  params.num_threads = 1;
  RandomForest forest(params);
  if (!forest.Train(data).ok()) {
    std::fprintf(stderr, "forest training failed\n");
    return 1;
  }
  MlCostOracle forest_oracle(&forest);
  RoboptOptimizer ml_optimizer(&registry, &schema, &forest_oracle);
  // 50 calls/rep keeps a rep ~20ms — long enough that a single scheduler
  // hiccup on a 1-core box can't fake a >3% delta on its own.
  const LogicalPlan heavy = MakeSyntheticPipeline(16, 1e7, 3);
  const OverheadResult gated =
      MeasureOverhead(ml_optimizer, heavy, 50, &metrics, &tracer, "gated");
  std::fprintf(stderr,
               "[bench] gated min-of-%d-reps: off %.1f qps, on %.1f qps "
               "(overhead %.2f%%, gate %.0f%%)\n",
               kReps, gated.qps_off, gated.qps_on, gated.overhead * 100.0,
               kMaxOverhead * 100.0);

  // Diagnostic only (reported, not gated): a tiny 10-operator plan at
  // ~70us/optimize, where the fixed per-call cost — ~20 spans, the metric
  // publishes, the profile — is proportionally at its worst.
  const LogicalPlan tiny = MakeSyntheticPipeline(10, 1e6, 13);
  const OverheadResult small =
      MeasureOverhead(optimizer, tiny, 40, &metrics, &tracer, "tiny");
  std::fprintf(stderr,
               "[bench] tiny-plan diagnostic: off %.1f qps, on %.1f qps "
               "(overhead %.2f%%)\n",
               small.qps_off, small.qps_on, small.overhead * 100.0);

  // A sample trace for the CI artifact: one real optimize + execute round
  // trip on one trace id, both clock timelines populated.
  RegisterWorkloadKernels();
  VirtualCost cost(&registry);
  LogicalPlan wc = MakeWordCountPlan(0.001);
  Tracer trace_ring(4096);
  OptimizeOptions traced;
  traced.num_threads = 1;
  traced.obs.tracer = &trace_ring;
  traced.obs.profile = true;
  auto optimized = optimizer.Optimize(wc, nullptr, traced);
  if (!optimized.ok()) {
    std::fprintf(stderr, "traced optimize failed\n");
    return 1;
  }
  DataCatalog catalog;
  catalog.Bind(wc.SourceIds()[0], GenerateTextLines(1000, 1000, 5));
  ExecutorOptions eo;
  eo.obs.tracer = &trace_ring;
  eo.obs.trace_id = optimized->profile.trace_id;
  Executor executor(&registry, &cost, nullptr, eo);
  auto executed = executor.Execute(optimized->plan, catalog);
  if (!executed.ok()) {
    std::fprintf(stderr, "traced execute failed\n");
    return 1;
  }
  const std::string trace_json =
      ExportChromeTrace(trace_ring.Collect(optimized->profile.trace_id));
  FILE* trace_file = std::fopen("trace.json", "w");
  if (trace_file == nullptr) {
    std::fprintf(stderr, "cannot write trace.json\n");
    return 1;
  }
  std::fwrite(trace_json.data(), 1, trace_json.size(), trace_file);
  std::fclose(trace_file);
  std::fprintf(stderr, "[bench] wrote trace.json (%zu bytes)\n",
               trace_json.size());

  const MetricsSnapshot snapshot = metrics.Snapshot();
  FILE* json = std::fopen("BENCH_obs.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_obs.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"reps\": %d,\n"
               "  \"gated\": {\"qps_obs_off\": %.2f, \"qps_obs_on\": %.2f, "
               "\"overhead_fraction\": %.5f},\n"
               "  \"tiny_plan\": {\"qps_obs_off\": %.2f, \"qps_obs_on\": "
               "%.2f, \"overhead_fraction\": %.5f},\n"
               "  \"gate_fraction\": %.3f,\n"
               "  \"instrumented_calls\": %.0f,\n"
               "  \"spans_recorded\": %llu,\n"
               "  \"bit_identical\": true\n"
               "}\n",
               kReps, gated.qps_off, gated.qps_on, gated.overhead,
               small.qps_off, small.qps_on, small.overhead, kMaxOverhead,
               snapshot.Value("robopt_optimize_calls_total"),
               static_cast<unsigned long long>(tracer.recorded()));
  std::fclose(json);
  std::fprintf(stderr, "[bench] wrote BENCH_obs.json\n");

  if (gated.overhead > kMaxOverhead) {
    std::fprintf(stderr,
                 "FAIL: observability costs %.2f%% optimize QPS "
                 "(gate: %.0f%%)\n",
                 gated.overhead * 100.0, kMaxOverhead * 100.0);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace robopt

int main() { return robopt::Main(); }
