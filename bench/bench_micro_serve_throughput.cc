// Serving-layer throughput: optimize-QPS under concurrent clients, with the
// model hot-swap machinery exercised three ways —
//   (a) baseline: no promotions in flight;
//   (b) hot-swap: a publisher thread repeatedly promotes while clients
//       optimize. The promoted forest is the *same object* every time, so
//       every client call must return bit-identical predictions to (a) no
//       matter which version it pinned — correctness is checked inside the
//       measurement;
//   (c) retraining on (informational): clients optimize while feeding
//       execution feedback and the background worker drains/retrains/
//       promotes concurrently.
// The run FAILS if hot-swapping stalls the optimize path: (b) must keep at
// least 90% of (a)'s QPS. Plan caching is OFF in (a)-(c) so the comparison
// measures the swap machinery, not cache hits (promotions invalidate the
// cache, which would masquerade as a stall); a cache-on rate is reported
// separately. Emits BENCH_serve.json.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "plan/cardinality.h"
#include "serve/optimizer_service.h"
#include "workloads/synthetic.h"

namespace robopt {
namespace {

constexpr int kClients = 2;
constexpr double kPhaseSeconds = 1.5;
constexpr double kMinSwapRatio = 0.9;
/// Baseline and storm phases alternate this many times and the gate
/// compares the best repetition of each: run-to-run QPS on a shared (often
/// single-core) CI box swings by tens of percent from scheduler and
/// frequency noise, while a genuine swap-path stall caps *every* storm
/// repetition and still trips the ratio.
constexpr int kReps = 3;

float SumLabel(const float* row, size_t width) {
  float sum = 1.0f;
  for (size_t i = 0; i < width; ++i) sum += std::fabs(row[i]);
  return sum;
}

/// One measured phase: kClients threads optimize round-robin over `plans`
/// for kPhaseSeconds. Returns total optimize calls per second. If
/// `expected` is non-null, every call's prediction is checked bit-identical
/// to expected[plan index] (the hot-swap correctness contract).
double MeasureQps(OptimizerService* service,
                  const std::vector<LogicalPlan>& plans,
                  const std::vector<float>* expected,
                  std::atomic<int>* mismatches,
                  const std::function<void(int)>& per_call = nullptr) {
  std::atomic<bool> stop{false};
  std::atomic<long> calls{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      int i = c;
      while (!stop.load(std::memory_order_relaxed)) {
        const int which = i % static_cast<int>(plans.size());
        auto result = service->Optimize(plans[which]);
        if (!result.ok() ||
            (expected != nullptr &&
             result->optimize.predicted_runtime_s != (*expected)[which])) {
          if (mismatches != nullptr) ++*mismatches;
        }
        if (per_call) per_call(which);
        calls.fetch_add(1, std::memory_order_relaxed);
        ++i;
      }
    });
  }
  Stopwatch stopwatch;
  std::this_thread::sleep_for(
      std::chrono::duration<double>(kPhaseSeconds));
  stop.store(true);
  for (std::thread& client : clients) client.join();
  const double elapsed_s = stopwatch.ElapsedMillis() / 1000.0;
  return static_cast<double>(calls.load()) / elapsed_s;
}

int Main() {
  PlatformRegistry registry = PlatformRegistry::Default(2);
  FeatureSchema schema(&registry);

  // The client workload: three small distinct pipelines.
  std::vector<LogicalPlan> plans;
  plans.push_back(MakeSyntheticPipeline(5, 1e5, 1));
  plans.push_back(MakeSyntheticPipeline(6, 1e6, 2));
  plans.push_back(MakeSyntheticPipeline(7, 1e4, 3));

  // Base training set: every plan vector of the workload, labeled by a
  // deterministic function (throughput measures inference+enumeration, not
  // model quality).
  MlDataset base(schema.width());
  for (const LogicalPlan& plan : plans) {
    auto ctx = EnumerationContext::Make(&plan, &registry, &schema);
    if (!ctx.ok()) {
      std::fprintf(stderr, "context: %s\n", ctx.status().ToString().c_str());
      return 1;
    }
    const PlanVectorEnumeration all = Enumerate(*ctx, Vectorize(*ctx));
    for (size_t row = 0; row < all.size(); ++row) {
      base.Add(all.features(row), SumLabel(all.features(row), schema.width()));
    }
  }
  std::fprintf(stderr, "[bench] base set: %zu rows, %d clients, %u cores\n",
               base.size(), kClients, std::thread::hardware_concurrency());

  ServeOptions options;
  options.background_retrain = false;
  options.plan_cache_capacity = 0;  // Measure the swap path, not the cache.
  options.forest.num_trees = 20;
  options.forest.num_threads = 1;
  auto made = OptimizerService::Create(&registry, &schema, base, nullptr,
                                       options);
  if (!made.ok()) {
    std::fprintf(stderr, "service: %s\n", made.status().ToString().c_str());
    return 1;
  }
  OptimizerService* service = made->get();
  const std::shared_ptr<const RandomForest> v1 =
      service->registry().Current()->forest_ptr();

  // Reference predictions on v1 — the bit-identity baseline for phase (b).
  std::vector<float> expected;
  for (const LogicalPlan& plan : plans) {
    auto result = service->Optimize(plan);
    if (!result.ok()) {
      std::fprintf(stderr, "optimize: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    expected.push_back(result->optimize.predicted_runtime_s);
  }

  std::atomic<int> mismatches{0};

  // Phases (a) and (b) alternate kReps times; the gate compares the best
  // repetition of each (see kReps).
  double qps_off = 0.0;
  double qps_swap = 0.0;
  std::atomic<long> promotions{0};
  for (int rep = 0; rep < kReps; ++rep) {
    // --- (a) Baseline: no promotions. ---
    qps_off = std::max(
        qps_off, MeasureQps(service, plans, &expected, &mismatches));

    // --- (b) Hot-swap storm: promote the same weights as new versions
    // while clients run. Predictions must stay bit-identical throughout.
    // The publisher sleeps 5ms between promotions — hundreds of swaps over
    // the phase, far above any real promotion rate, while keeping the
    // publisher's own CPU share small enough that oversubscribed
    // single-core runs measure the swap path rather than the scheduler. ---
    std::atomic<bool> stop_publishing{false};
    std::thread publisher([&] {
      while (!stop_publishing.load()) {
        service->PublishExternal(std::const_pointer_cast<RandomForest>(v1));
        promotions.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    });
    qps_swap = std::max(
        qps_swap, MeasureQps(service, plans, &expected, &mismatches));
    stop_publishing.store(true);
    publisher.join();
  }
  const double swap_ratio = qps_off > 0 ? qps_swap / qps_off : 0.0;
  std::fprintf(stderr,
               "[bench] best of %d reps: qps off %.1f  qps under %ld "
               "promotions %.1f (ratio %.3f, %d mismatches)\n",
               kReps, qps_off, promotions.load(), qps_swap, swap_ratio,
               mismatches.load());

  // --- Plan cache on (informational): repeat queries short-circuit. ---
  ServeOptions cached_options = options;
  cached_options.plan_cache_capacity = 256;
  auto cached_made = OptimizerService::Create(&registry, &schema, base,
                                              nullptr, cached_options);
  if (!cached_made.ok()) return 1;
  const double qps_cached =
      MeasureQps(cached_made->get(), plans, nullptr, nullptr);
  std::fprintf(stderr, "[bench] qps with plan cache %.1f (%.1fx)\n",
               qps_cached, qps_off > 0 ? qps_cached / qps_off : 0.0);

  // --- (c) Retraining on (informational): clients also feed execution
  // feedback; the background worker drains, retrains and promotes
  // concurrently with the optimize traffic. ---
  ServeOptions retrain_options = options;
  retrain_options.background_retrain = true;
  retrain_options.worker_poll_s = 0.005;
  retrain_options.retrain_min_events = 64;
  auto retrain_made = OptimizerService::Create(&registry, &schema, base,
                                               nullptr, retrain_options);
  if (!retrain_made.ok()) return 1;
  OptimizerService* retrain_service = retrain_made->get();
  // Pre-built feedback payloads, one per plan.
  std::vector<ExecutionPlan> exec_plans;
  std::vector<ExecResult> exec_results;
  for (const LogicalPlan& plan : plans) {
    auto result = retrain_service->Optimize(plan);
    if (!result.ok()) return 1;
    exec_plans.push_back(result->optimize.plan);
    ExecResult exec;
    exec.cost.total_s = result->optimize.predicted_runtime_s * 1.1;
    exec.observed = CardinalityEstimator(&plan).Estimate();
    exec_results.push_back(std::move(exec));
  }
  const double qps_retrain = MeasureQps(
      retrain_service, plans, nullptr, nullptr, [&](int which) {
        retrain_service->OnExecution(exec_plans[which], exec_results[which]);
      });
  const ServeStats retrain_stats = retrain_service->Stats();
  std::fprintf(stderr,
               "[bench] qps with retraining %.1f (%zu retrains, "
               "%zu promotions, %zu events drained)\n",
               qps_retrain, retrain_stats.retrains, retrain_stats.promotions,
               retrain_stats.feedback.drained);

  FILE* json = std::fopen("BENCH_serve.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_serve.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"clients\": %d,\n"
               "  \"phase_seconds\": %.2f,\n"
               "  \"qps_no_promotions\": %.2f,\n"
               "  \"qps_under_hot_swap\": %.2f,\n"
               "  \"hot_swap_ratio\": %.4f,\n"
               "  \"promotions_during_swap_phase\": %ld,\n"
               "  \"prediction_mismatches\": %d,\n"
               "  \"qps_plan_cache\": %.2f,\n"
               "  \"qps_retraining\": %.2f,\n"
               "  \"retrains\": %zu,\n"
               "  \"retrain_promotions\": %zu,\n"
               "  \"feedback_drained\": %zu\n"
               "}\n",
               kClients, kPhaseSeconds, qps_off, qps_swap, swap_ratio,
               promotions.load(), mismatches.load(), qps_cached, qps_retrain,
               retrain_stats.retrains, retrain_stats.promotions,
               retrain_stats.feedback.drained);
  std::fclose(json);
  std::fprintf(stderr, "[bench] wrote BENCH_serve.json\n");

  if (mismatches.load() != 0) {
    std::fprintf(stderr,
                 "FAIL: %d optimize calls saw a torn or wrong model\n",
                 mismatches.load());
    return 1;
  }
  if (swap_ratio < kMinSwapRatio) {
    std::fprintf(stderr,
                 "FAIL: hot-swap stalls optimize path: %.1f%% of baseline "
                 "QPS (need >= %.0f%%)\n",
                 100.0 * swap_ratio, 100.0 * kMinSwapRatio);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace robopt

int main() { return robopt::Main(); }
