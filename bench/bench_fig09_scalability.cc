// Reproduces Figure 9: optimization latency scalability.
//  (a) latency vs. #operators (5..80) on 2 platforms for Exhaustive,
//      RHEEMix, Rheem-ML and Robopt;
//  (b)-(d) latency vs. #platforms (2..5) at 5, 20 and 80 operators for
//      Exhaustive (5 ops only), RHEEMix and Robopt.
// Also reports Rheem-ML's vectorization share of optimization time (the
// paper measured 47%).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "baseline/cost_model.h"
#include "baseline/traditional_enumerator.h"
#include "bench/bench_env.h"
#include "common/stopwatch.h"
#include "core/priority_enumeration.h"
#include "workloads/synthetic.h"

namespace robopt::bench {
namespace {

struct Setup {
  PlatformRegistry registry;
  FeatureSchema schema;
  VirtualCost cost;
  Executor executor;
  CostModel cost_model;
  std::unique_ptr<RandomForest> forest;
  std::unique_ptr<MlCostOracle> oracle;

  explicit Setup(int k)
      : registry(PlatformRegistry::Synthetic(k)),
        schema(&registry),
        cost(&registry),
        executor(&registry, &cost),
        cost_model(&registry, &cost, CostModel::Tuning::kWellTuned) {
    // A lightly trained forest suffices: these benches time the
    // enumeration, not plan quality.
    TdgenOptions options;
    options.plans_per_shape = 3;
    options.max_operators = 10;
    options.max_structures_per_plan = 12;
    options.cardinality_grid = {1e3, 1e5, 1e7};
    options.executed_points = {0, 1, 2};
    options.seed = 99;
    auto model = TrainRuntimeModel(&registry, &schema, &executor, options);
    if (!model.ok()) std::abort();
    forest = std::move(model).value();
    oracle = std::make_unique<MlCostOracle>(forest.get());
  }
};

constexpr int kRepeats = 5;

double Median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

double RoboptMs(Setup& setup, const EnumerationContext& ctx) {
  std::vector<double> ms;
  for (int r = 0; r < kRepeats; ++r) {
    Stopwatch watch;
    PriorityEnumerator enumerator(&ctx, setup.oracle.get());
    (void)enumerator.Run();
    ms.push_back(watch.ElapsedMillis());
  }
  return Median(ms);
}

double ExhaustiveMs(Setup& setup, const EnumerationContext& ctx) {
  std::vector<double> ms;
  for (int r = 0; r < kRepeats; ++r) {
    Stopwatch watch;
    EnumeratorOptions options;
    options.prune = PruneMode::kNone;
    options.max_vectors = 5u * 1000u * 1000u;
    PriorityEnumerator enumerator(&ctx, setup.oracle.get(), options);
    auto result = enumerator.Run();
    if (!result.ok()) return -1.0;  // Search space too large.
    ms.push_back(watch.ElapsedMillis());
  }
  return Median(ms);
}

double TraditionalMs(Setup& setup, const EnumerationContext& ctx,
                     TraditionalOracle oracle, double* vectorize_share) {
  std::vector<double> ms;
  for (int r = 0; r < kRepeats; ++r) {
    Stopwatch watch;
    TraditionalOptions options;
    options.oracle = oracle;
    TraditionalEnumerator enumerator(&ctx, &setup.cost_model,
                                     setup.forest.get(), options);
    auto result = enumerator.Run();
    ms.push_back(watch.ElapsedMillis());
    if (result.ok() && vectorize_share != nullptr &&
        result->stats.total_ms > 0) {
      *vectorize_share = result->stats.vectorize_ms / result->stats.total_ms;
    }
  }
  return Median(ms);
}

std::string Cell(double ms) {
  if (ms < 0) return "     n/a";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%8.2f", ms);
  return buf;
}

void Main() {
  std::printf("=== Figure 9(a): latency (ms) vs #operators, 2 platforms "
              "===\n");
  Setup two(2);
  std::printf("%-6s %10s %10s %10s %10s %12s\n", "#ops", "Exhaustive",
              "RHEEMix", "Rheem-ML", "Robopt", "vec-share");
  for (int num_ops : {5, 20, 40, 80}) {
    LogicalPlan plan = MakeSyntheticPipeline(num_ops, 1e7, 3);
    auto ctx = EnumerationContext::Make(&plan, &two.registry, &two.schema);
    if (!ctx.ok()) continue;
    double share = 0.0;
    const double exhaustive =
        num_ops <= 20 ? ExhaustiveMs(two, ctx.value()) : -1.0;
    const double rheemix =
        TraditionalMs(two, ctx.value(), TraditionalOracle::kCostModel,
                      nullptr);
    const double rheem_ml = TraditionalMs(two, ctx.value(),
                                          TraditionalOracle::kMlModel,
                                          &share);
    const double robopt = RoboptMs(two, ctx.value());
    std::printf("%-6d %10s %10s %10s %10s %10.0f%%\n", num_ops,
                Cell(exhaustive).c_str(), Cell(rheemix).c_str(),
                Cell(rheem_ml).c_str(), Cell(robopt).c_str(), share * 100);
  }

  for (int num_ops : {5, 20, 80}) {
    std::printf("\n=== Figure 9(%c): latency (ms) vs #platforms, %d "
                "operators ===\n",
                num_ops == 5 ? 'b' : (num_ops == 20 ? 'c' : 'd'), num_ops);
    std::printf("%-8s %10s %10s %10s\n", "#plats", "Exhaustive", "RHEEMix",
                "Robopt");
    for (int k = 2; k <= 5; ++k) {
      Setup setup(k);
      LogicalPlan plan = MakeSyntheticPipeline(num_ops, 1e7, 3);
      auto ctx =
          EnumerationContext::Make(&plan, &setup.registry, &setup.schema);
      if (!ctx.ok()) continue;
      const double exhaustive =
          num_ops <= 5 ? ExhaustiveMs(setup, ctx.value()) : -1.0;
      const double rheemix = TraditionalMs(
          setup, ctx.value(), TraditionalOracle::kCostModel, nullptr);
      const double robopt = RoboptMs(setup, ctx.value());
      std::printf("%-8d %10s %10s %10s\n", k, Cell(exhaustive).c_str(),
                  Cell(rheemix).c_str(), Cell(robopt).c_str());
    }
  }
  std::printf("\nPaper's shape: Robopt scales best; Rheem-ML pays up to 11x "
              "over Robopt (≈47%% of its time re-vectorizing subplans); the "
              "RHEEMix gap widens with operators and platforms.\n");
}

}  // namespace
}  // namespace robopt::bench

int main() { robopt::bench::Main(); }
