#ifndef ROBOPT_BENCH_BENCH_ENV_H_
#define ROBOPT_BENCH_BENCH_ENV_H_

#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "baseline/baseline_optimizers.h"
#include "common/strings.h"
#include "core/optimizer.h"
#include "exec/executor.h"
#include "tdgen/tdgen.h"
#include "workloads/queries.h"

namespace robopt::bench {

/// Everything a reproduction bench needs: the simulated cluster, a
/// TDGEN-trained runtime model (cached on disk so the suite trains once per
/// platform count), the three optimizers, and ground-truth helpers.
class BenchEnv {
 public:
  explicit BenchEnv(int num_platforms)
      : registry(PlatformRegistry::Default(num_platforms)),
        schema(&registry),
        cost(&registry),
        executor(&registry, &cost),
        well_tuned(&registry, &cost, CostModel::Tuning::kWellTuned),
        simply_tuned(&registry, &cost, CostModel::Tuning::kSimplyTuned) {
    RegisterWorkloadKernels();
    forest = LoadOrTrain(num_platforms);
    // Route every oracle batch through the parallel blocked kernel (0 =
    // hardware concurrency); predictions are identical to serial.
    forest->set_num_threads(0);
    oracle = std::make_unique<MlCostOracle>(forest.get());
    robopt = std::make_unique<RoboptOptimizer>(&registry, &schema,
                                               oracle.get());
    rheemix = std::make_unique<RheemixOptimizer>(&registry, &schema,
                                                 &well_tuned);
    rheem_ml = std::make_unique<RheemMlOptimizer>(&registry, &schema,
                                                  forest.get());
  }

  /// True (virtual-clock) runtime of an execution plan in seconds.
  double TrueRuntime(const ExecutionPlan& plan,
                     const Cardinalities& cards) const {
    return cost.PlanCost(plan, cards).total_s;
  }

  /// Single-platform execution plan using each platform's default variants.
  /// Driver-side collection sources (Java-only in Rheem) fall back to their
  /// sole platform, as Rheem's single-platform mode does; any other
  /// unsupported operator makes the platform inapplicable (NaN -> "n/a").
  double SinglePlatformRuntime(const LogicalPlan& plan,
                               const Cardinalities& cards,
                               PlatformId platform) const {
    ExecutionPlan exec(&plan, &registry);
    for (const LogicalOperator& op : plan.operators()) {
      const auto& alts = registry.AlternativesFor(op.kind);
      int chosen = -1;
      for (size_t a = 0; a < alts.size(); ++a) {
        if (alts[a].platform == platform && alts[a].variant == 0) {
          chosen = static_cast<int>(a);
        }
      }
      if (chosen < 0) {
        if ((op.kind == LogicalOpKind::kCollectionSource ||
             op.kind == LogicalOpKind::kCollectionSink) &&
            !alts.empty()) {
          chosen = 0;  // The driver-side collection.
        } else {
          return std::numeric_limits<double>::quiet_NaN();
        }
      }
      exec.Assign(op.id, chosen);
    }
    return TrueRuntime(exec, cards);
  }

  /// Comma-separated names of the platforms an execution plan uses.
  std::string PlatformsOf(const ExecutionPlan& plan) const {
    std::vector<std::string> names;
    for (PlatformId p : plan.PlatformsUsed()) {
      names.push_back(registry.platform(p).name);
    }
    return JoinStrings(names, "+");
  }

  PlatformRegistry registry;
  FeatureSchema schema;
  VirtualCost cost;
  Executor executor;
  CostModel well_tuned;
  CostModel simply_tuned;
  std::unique_ptr<RandomForest> forest;
  std::unique_ptr<MlCostOracle> oracle;
  std::unique_ptr<RoboptOptimizer> robopt;
  std::unique_ptr<RheemixOptimizer> rheemix;
  std::unique_ptr<RheemMlOptimizer> rheem_ml;

 private:
  std::unique_ptr<RandomForest> LoadOrTrain(int num_platforms) {
    const std::string cache =
        "robopt_model_k" + std::to_string(num_platforms) + ".forest";
    auto loaded = std::make_unique<RandomForest>();
    if (std::getenv("ROBOPT_NO_MODEL_CACHE") == nullptr &&
        loaded->Load(cache).ok()) {
      std::fprintf(stderr, "[bench] loaded cached runtime model %s\n",
                   cache.c_str());
      return loaded;
    }
    std::fprintf(stderr,
                 "[bench] training runtime model with TDGEN (%d platforms) "
                 "...\n",
                 num_platforms);
    TdgenOptions options;
    options.plans_per_shape = 28;
    options.max_operators = 22;
    options.max_structures_per_plan = 48;
    options.cardinality_grid = {1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10};
    options.executed_points = {0, 1, 2, 4, 6, 7};
    options.loop_iterations = 60;
    options.seed = 20200416;  // ICDE 2020 :-)
    RegressionMetrics holdout;
    TdgenReport report;
    auto model = TrainRuntimeModel(&registry, &schema, &executor, options,
                                   &holdout, &report);
    if (!model.ok()) {
      std::fprintf(stderr, "model training failed: %s\n",
                   model.status().ToString().c_str());
      std::abort();
    }
    std::fprintf(stderr,
                 "[bench] TDGEN: %zu jobs (%zu executed, %zu imputed); "
                 "holdout r2=%.3f spearman=%.3f\n",
                 report.jobs_total, report.jobs_executed, report.jobs_imputed,
                 holdout.r2, holdout.spearman);
    (void)(*model)->Save(cache);
    return std::move(model).value();
  }
};

/// Formats a runtime like the paper's figures: seconds, "OOM" or ">1h".
inline std::string Runtime(double seconds) {
  if (std::isnan(seconds)) return "n/a";
  if (!std::isfinite(seconds)) return "OOM";
  if (seconds > 3600.0) return ">1h";
  return FormatDouble(seconds, seconds < 10 ? 2 : 0);
}

}  // namespace robopt::bench

#endif  // ROBOPT_BENCH_BENCH_ENV_H_
