// Sharded-serving scaling and load-shedding gate. Three measured parts —
//   (a) warm-cache QPS scaling across shard counts S in {1, 2, 4} (capped
//       at the core count), with one shard-affine pinned client per shard:
//       the gate requires >= kMinEfficiency of linear scaling at the
//       largest S (efficiency = QPS_S / (S * QPS_1), best-of-kReps);
//   (b) tail latency under 2x saturation: with per-request deadlines, twice
//       as many clients as shards must shed the overload at admission and
//       keep the served p99 within kMaxP99Factor of the 1x-saturation p99
//       — instead of queueing without bound;
//   (c) cache-entry migration (informational): a deliberately skewed load
//       triggers RebalanceNow() and the entry/slot counters are reported.
// Both gates are waived (with a warning and JSON fields) on single-core
// machines, where "scaling" measures the scheduler. Emits BENCH_shard.json.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "common/affinity.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "serve/optimizer_service.h"
#include "workloads/synthetic.h"

namespace robopt {
namespace {

constexpr double kPhaseSeconds = 1.0;
constexpr int kReps = 3;
constexpr double kMinEfficiency = 0.7;   // Of linear, at the largest S.
constexpr double kMaxP99Factor = 10.0;   // Served p99 at 2x vs 1x saturation.
constexpr int kPlansPerClient = 4;

float SumLabel(const float* row, size_t width) {
  float sum = 1.0f;
  for (size_t i = 0; i < width; ++i) sum += std::fabs(row[i]);
  return sum;
}

/// A (tenant, plan) pair that routes to one specific shard.
struct AffinePlan {
  uint64_t tenant = 0;
  LogicalPlan plan;
};

/// For each shard, finds kPlansPerClient (tenant, plan) pairs routing there,
/// probing tenants against a fixed plan pool via ShardFor().
std::vector<std::vector<AffinePlan>> BuildAffineWork(
    const OptimizerService* service, int num_shards,
    const std::vector<LogicalPlan>& pool) {
  std::vector<std::vector<AffinePlan>> work(num_shards);
  for (uint64_t tenant = 0; tenant < 4096; ++tenant) {
    for (const LogicalPlan& plan : pool) {
      const uint32_t shard = service->ShardFor(tenant, plan);
      if (work[shard].size() < kPlansPerClient) {
        work[shard].push_back(AffinePlan{tenant, plan});
      }
    }
    bool done = true;
    for (const auto& w : work) done &= w.size() >= kPlansPerClient;
    if (done) break;
  }
  return work;
}

struct PhaseResult {
  double qps = 0.0;
  double p99_us = 0.0;
  long served = 0;
  long shed = 0;
  long errors = 0;
};

/// Runs `clients` closed-loop threads for kPhaseSeconds. Client c serves
/// work[c % work.size()] round-robin with its pair's tenant (keeping every
/// request shard-affine) and is pinned to core (c % cores) when supported.
/// `deadline_s` < 0 disables deadlines (never shed).
PhaseResult MeasurePhase(OptimizerService* service,
                         const std::vector<std::vector<AffinePlan>>& work,
                         int clients, double deadline_s) {
  std::atomic<bool> stop{false};
  std::vector<PhaseResult> per_client(clients);
  std::vector<std::vector<double>> latencies(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  const int cores = std::max(1, ThreadPool::HardwareThreads());
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      if (AffinitySupported()) PinCurrentThreadToCore(c % cores);
      const std::vector<AffinePlan>& mine =
          work[static_cast<size_t>(c) % work.size()];
      PhaseResult& local = per_client[c];
      std::vector<double>& lat = latencies[c];
      lat.reserve(1 << 16);
      size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const AffinePlan& ap = mine[i++ % mine.size()];
        RequestContext ctx;
        ctx.tenant = ap.tenant;
        ctx.deadline_s = deadline_s;
        Stopwatch watch;
        auto result = service->Optimize(ap.plan, nullptr,
                                        ServeOptions{}.optimize, ctx);
        const double us = watch.ElapsedMillis() * 1000.0;
        if (result.ok()) {
          ++local.served;
          lat.push_back(us);
        } else if (result.status().code() ==
                   StatusCode::kResourceExhausted) {
          ++local.shed;
          // A rejected client backs off (as a real caller would) instead of
          // busy-spinning admission — a hot shed loop starves the window
          // holder on oversubscribed cores and poisons its service-time
          // EWMA with preemption time.
          std::this_thread::sleep_for(std::chrono::microseconds(100));
        } else {
          ++local.errors;
        }
      }
    });
  }
  Stopwatch stopwatch;
  std::this_thread::sleep_for(std::chrono::duration<double>(kPhaseSeconds));
  stop.store(true);
  for (std::thread& thread : threads) thread.join();
  const double elapsed_s = stopwatch.ElapsedMillis() / 1000.0;

  PhaseResult total;
  std::vector<double> all;
  for (int c = 0; c < clients; ++c) {
    total.served += per_client[c].served;
    total.shed += per_client[c].shed;
    total.errors += per_client[c].errors;
    all.insert(all.end(), latencies[c].begin(), latencies[c].end());
  }
  total.qps = static_cast<double>(total.served) / elapsed_s;
  if (!all.empty()) {
    std::sort(all.begin(), all.end());
    total.p99_us = all[static_cast<size_t>(0.99 * (all.size() - 1))];
  }
  return total;
}

std::unique_ptr<OptimizerService> MakeService(const PlatformRegistry* registry,
                                              const FeatureSchema* schema,
                                              const MlDataset& base,
                                              int num_shards,
                                              size_t queue_capacity) {
  ServeOptions options;
  options.background_retrain = false;
  options.forest.num_trees = 20;
  options.forest.num_threads = 1;
  options.plan_cache_capacity = 1024;  // Warm-cache scaling is the target.
  options.num_shards = num_shards;
  options.shard_queue_capacity = queue_capacity;
  options.rebalance_min_checks = 1;
  options.rebalance_imbalance_factor = 1.5;
  auto made =
      OptimizerService::Create(registry, schema, base, nullptr, options);
  if (!made.ok()) {
    std::fprintf(stderr, "service: %s\n", made.status().ToString().c_str());
    return nullptr;
  }
  return std::move(made.value());
}

int Main() {
  PlatformRegistry registry = PlatformRegistry::Default(2);
  FeatureSchema schema(&registry);
  const int cores = std::max(1, ThreadPool::HardwareThreads());

  std::vector<LogicalPlan> pool;
  pool.push_back(MakeSyntheticPipeline(5, 1e5, 1));
  pool.push_back(MakeSyntheticPipeline(6, 1e6, 2));
  pool.push_back(MakeSyntheticPipeline(7, 1e4, 3));
  pool.push_back(MakeSyntheticPipeline(8, 1e5, 4));

  MlDataset base(schema.width());
  for (const LogicalPlan& plan : pool) {
    auto ctx = EnumerationContext::Make(&plan, &registry, &schema);
    if (!ctx.ok()) {
      std::fprintf(stderr, "context: %s\n", ctx.status().ToString().c_str());
      return 1;
    }
    const PlanVectorEnumeration all = Enumerate(*ctx, Vectorize(*ctx));
    for (size_t row = 0; row < all.size(); ++row) {
      base.Add(all.features(row), SumLabel(all.features(row), schema.width()));
    }
  }

  // --- (a) Warm-cache QPS scaling across shard counts. ---
  std::vector<int> shard_counts = {1};
  for (int s : {2, 4}) {
    if (s <= cores) shard_counts.push_back(s);
  }
  const bool gates_waived = cores < 2;
  std::fprintf(stderr, "[bench] %d cores, shard counts up to %d%s\n", cores,
               shard_counts.back(),
               gates_waived ? " (single core: gates waived)" : "");

  std::vector<double> qps_by_shards;
  for (int s : shard_counts) {
    auto service = MakeService(&registry, &schema, base, s,
                               /*queue_capacity=*/64);
    if (service == nullptr) return 1;
    auto work = BuildAffineWork(service.get(), service->num_shards(), pool);
    for (auto& w : work) {
      if (w.empty()) {
        std::fprintf(stderr, "no affine plans for some shard at S=%d\n", s);
        return 1;
      }
      for (const AffinePlan& ap : w) {  // Warm every cache slice.
        RequestContext ctx;
        ctx.tenant = ap.tenant;
        auto result =
            service->Optimize(ap.plan, nullptr, ServeOptions{}.optimize, ctx);
        if (!result.ok()) {
          std::fprintf(stderr, "warm: %s\n",
                       result.status().ToString().c_str());
          return 1;
        }
      }
    }
    double best = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      best = std::max(best, MeasurePhase(service.get(), work, /*clients=*/s,
                                         /*deadline_s=*/-1.0)
                                .qps);
    }
    qps_by_shards.push_back(best);
    const ServeStats stats = service->Stats();
    const double hit_rate =
        stats.plan_cache.hits + stats.plan_cache.misses > 0
            ? static_cast<double>(stats.plan_cache.hits) /
                  static_cast<double>(stats.plan_cache.hits +
                                      stats.plan_cache.misses)
            : 0.0;
    std::fprintf(stderr,
                 "[bench] S=%d: %.1f qps (best of %d), cache hit rate %.3f\n",
                 s, best, kReps, hit_rate);
  }
  const int max_shards = shard_counts.back();
  const double efficiency =
      qps_by_shards.back() /
      (static_cast<double>(max_shards) * qps_by_shards.front());
  std::fprintf(stderr, "[bench] efficiency at S=%d: %.3f of linear\n",
               max_shards, efficiency);

  // --- (b) 2x saturation with admission shedding. ---
  // Capacity-1 shard queues: a request is admitted only when its shard is
  // idle, so saturation beyond one client per shard sheds at admission and
  // every served request's latency stays ~ one warm service time. Requests
  // also carry a (generous, calibrated) deadline so the deadline-estimate
  // branch is exercised; the tight-deadline semantics are pinned
  // deterministically in tests/serve/shard_soak_test.cc.
  const int sat_shards = std::max(2, max_shards);
  auto sat_service = MakeService(&registry, &schema, base, sat_shards,
                                 /*queue_capacity=*/1);
  if (sat_service == nullptr) return 1;
  auto sat_work =
      BuildAffineWork(sat_service.get(), sat_service->num_shards(), pool);
  for (auto& w : sat_work) {
    for (const AffinePlan& ap : w) {
      RequestContext ctx;
      ctx.tenant = ap.tenant;
      if (!sat_service->Optimize(ap.plan, nullptr, ServeOptions{}.optimize, ctx)
               .ok()) {
        return 1;
      }
    }
  }
  // Converge each shard's service-time EWMA onto the warm-hit latency (the
  // first, cold optimizes are milliseconds; the EWMA must forget them
  // before a microsecond deadline is meaningful), then take the median
  // warm-hit latency as the calibration point.
  std::vector<double> warm_us;
  for (int pass = 0; pass < 2000; ++pass) {
    for (auto& w : sat_work) {
      const AffinePlan& ap = w[static_cast<size_t>(pass) % w.size()];
      RequestContext ctx;
      ctx.tenant = ap.tenant;
      Stopwatch watch;
      (void)sat_service->Optimize(ap.plan, nullptr, ServeOptions{}.optimize,
                                  ctx);
      if (pass >= 1800) warm_us.push_back(watch.ElapsedMillis() * 1000.0);
    }
  }
  std::sort(warm_us.begin(), warm_us.end());
  const double median_us = warm_us[warm_us.size() / 2];
  const double deadline_s = 50.0 * median_us * 1e-6;

  const PhaseResult sat1x = MeasurePhase(sat_service.get(), sat_work,
                                         /*clients=*/sat_shards, deadline_s);
  const PhaseResult sat2x = MeasurePhase(sat_service.get(), sat_work,
                                         /*clients=*/2 * sat_shards,
                                         deadline_s);
  // The bound has a floor of 100x the (microsecond-scale) warm latency so
  // that scheduler jitter on a near-zero 1x p99 cannot fail the gate alone.
  const double p99_factor =
      sat1x.p99_us > 0.0 ? sat2x.p99_us / sat1x.p99_us : 0.0;
  const double p99_bound_us =
      std::max(kMaxP99Factor * sat1x.p99_us, 100.0 * median_us);
  std::fprintf(stderr,
               "[bench] saturation S=%d deadline %.1fus: 1x p99 %.1fus "
               "(%ld served, %ld shed) | 2x p99 %.1fus (%ld served, %ld "
               "shed, factor %.2f)\n",
               sat_shards, deadline_s * 1e6, sat1x.p99_us, sat1x.served,
               sat1x.shed, sat2x.p99_us, sat2x.served, sat2x.shed,
               p99_factor);
  const ServeStats sat_stats = sat_service->Stats();

  // --- (c) Migration under skew (informational): all load on one shard
  // until the router hands slots (and cache entries) to the coldest one. ---
  auto skew_service = MakeService(&registry, &schema, base, /*num_shards=*/2,
                                  /*queue_capacity=*/64);
  if (skew_service == nullptr) return 1;
  auto skew_work =
      BuildAffineWork(skew_service.get(), skew_service->num_shards(), pool);
  for (const AffinePlan& ap : skew_work[0]) {
    RequestContext ctx;
    ctx.tenant = ap.tenant;
    for (int i = 0; i < 8; ++i) {
      if (!skew_service
               ->Optimize(ap.plan, nullptr, ServeOptions{}.optimize, ctx)
               .ok()) {
        return 1;
      }
    }
  }
  const size_t migrated = skew_service->RebalanceNow();
  const ServeStats skew_stats = skew_service->Stats();
  std::fprintf(stderr,
               "[bench] skewed load: %zu cache entries migrated, %llu slots "
               "moved, %llu rebalances\n",
               migrated,
               static_cast<unsigned long long>(skew_stats.router_slots_moved),
               static_cast<unsigned long long>(skew_stats.router_rebalances));

  FILE* json = std::fopen("BENCH_shard.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_shard.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"cores\": %d,\n"
               "  \"phase_seconds\": %.2f,\n"
               "  \"gates_waived_single_core\": %s,\n"
               "  \"shard_counts\": [",
               cores, kPhaseSeconds, gates_waived ? "true" : "false");
  for (size_t i = 0; i < shard_counts.size(); ++i) {
    std::fprintf(json, "%s%d", i > 0 ? ", " : "", shard_counts[i]);
  }
  std::fprintf(json, "],\n  \"qps_by_shards\": [");
  for (size_t i = 0; i < qps_by_shards.size(); ++i) {
    std::fprintf(json, "%s%.2f", i > 0 ? ", " : "", qps_by_shards[i]);
  }
  std::fprintf(json,
               "],\n"
               "  \"linear_efficiency\": %.4f,\n"
               "  \"min_efficiency_gate\": %.2f,\n"
               "  \"saturation_shards\": %d,\n"
               "  \"saturation_deadline_us\": %.2f,\n"
               "  \"p99_1x_us\": %.2f,\n"
               "  \"p99_2x_us\": %.2f,\n"
               "  \"p99_factor\": %.3f,\n"
               "  \"max_p99_factor_gate\": %.1f,\n"
               "  \"served_1x\": %ld,\n"
               "  \"shed_1x\": %ld,\n"
               "  \"served_2x\": %ld,\n"
               "  \"shed_2x\": %ld,\n"
               "  \"shed_deadline_total\": %llu,\n"
               "  \"shed_queue_full_total\": %llu,\n"
               "  \"queue_depth_after\": %llu,\n"
               "  \"migrated_entries\": %zu,\n"
               "  \"migrated_slots\": %llu,\n"
               "  \"per_shard\": [",
               efficiency, kMinEfficiency, sat_shards, deadline_s * 1e6,
               sat1x.p99_us, sat2x.p99_us, p99_factor, kMaxP99Factor,
               sat1x.served, sat1x.shed, sat2x.served, sat2x.shed,
               static_cast<unsigned long long>(sat_stats.shard_shed_deadline),
               static_cast<unsigned long long>(
                   sat_stats.shard_shed_queue_full),
               static_cast<unsigned long long>(sat_stats.shard_queue_depth),
               migrated,
               static_cast<unsigned long long>(skew_stats.router_slots_moved));
  for (size_t i = 0; i < sat_stats.shards.size(); ++i) {
    const ShardStats& shard = sat_stats.shards[i];
    const double hit_rate =
        shard.plan_cache.hits + shard.plan_cache.misses > 0
            ? static_cast<double>(shard.plan_cache.hits) /
                  static_cast<double>(shard.plan_cache.hits +
                                      shard.plan_cache.misses)
            : 0.0;
    std::fprintf(json,
                 "%s\n    {\"shard\": %zu, \"processed\": %llu, "
                 "\"shed_deadline\": %llu, \"shed_queue_full\": %llu, "
                 "\"cache_hit_rate\": %.4f}",
                 i > 0 ? "," : "", i,
                 static_cast<unsigned long long>(shard.processed),
                 static_cast<unsigned long long>(shard.shed_deadline),
                 static_cast<unsigned long long>(shard.shed_queue_full),
                 hit_rate);
  }
  std::fprintf(json, "\n  ]\n}\n");
  std::fclose(json);
  std::fprintf(stderr, "[bench] wrote BENCH_shard.json\n");

  long total_errors = sat1x.errors + sat2x.errors;
  if (total_errors != 0) {
    std::fprintf(stderr, "FAIL: %ld unexpected optimize errors\n",
                 total_errors);
    return 1;
  }
  if (gates_waived) {
    std::fprintf(stderr,
                 "[bench] WARNING: single core — scaling and p99 gates "
                 "waived\n");
    return 0;
  }
  if (efficiency < kMinEfficiency) {
    std::fprintf(stderr,
                 "FAIL: %.1f%% of linear scaling at %d shards (need >= "
                 "%.0f%%)\n",
                 100.0 * efficiency, max_shards, 100.0 * kMinEfficiency);
    return 1;
  }
  if (sat1x.served == 0 || sat2x.served == 0) {
    std::fprintf(stderr,
                 "FAIL: saturation phases served nothing (1x %ld, 2x %ld) — "
                 "the deadline shed everything\n",
                 sat1x.served, sat2x.served);
    return 1;
  }
  if (sat2x.shed == 0) {
    std::fprintf(stderr, "FAIL: 2x saturation never shed a request\n");
    return 1;
  }
  if (sat2x.p99_us > p99_bound_us) {
    std::fprintf(stderr,
                 "FAIL: served p99 %.1fus under 2x saturation exceeds the "
                 "bound %.1fus — shedding is not protecting the tail\n",
                 sat2x.p99_us, p99_bound_us);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace robopt

int main() { return robopt::Main(); }
