// Microbenchmarks (google-benchmark) of the algebraic vector operations —
// the ablation behind Figures 1 and 9: contiguous float-row merges and
// batched model prediction vs. per-row prediction.

#include <benchmark/benchmark.h>

#include "core/linear_oracle.h"
#include "core/operations.h"
#include "ml/random_forest.h"
#include "workloads/synthetic.h"

namespace robopt {
namespace {

struct Fixture {
  PlatformRegistry registry = PlatformRegistry::Synthetic(4);
  FeatureSchema schema{&registry};
  LogicalPlan plan = MakeSyntheticPipeline(12, 1e7, 3);
  EnumerationContext ctx;
  PlanVectorEnumeration left{0, 0};
  PlanVectorEnumeration right{0, 0};

  Fixture() {
    auto made = EnumerationContext::Make(&plan, &registry, &schema);
    ctx = std::move(made).value();
    AbstractPlanVector a;
    a.ops = {0, 1, 2, 3};
    AbstractPlanVector b;
    b.ops = {4, 5, 6};
    left = Enumerate(ctx, a);
    right = Enumerate(ctx, b);
  }

  static Fixture& Get() {
    static Fixture* fixture = new Fixture();
    return *fixture;
  }
};

void BM_MergeRows(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  PlanVectorEnumeration out(f.left.width(), f.left.num_ops());
  out.mutable_scope() = f.left.scope() | f.right.scope();
  out.Reserve(4);
  for (auto _ : state) {
    out.Clear();
    MergeRows(f.ctx, f.left, 0, f.right, 0, &out);
    benchmark::DoNotOptimize(out.features(0));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * f.left.width() *
                          sizeof(float) * 2);
}
BENCHMARK(BM_MergeRows);

void BM_Concat(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  for (auto _ : state) {
    PlanVectorEnumeration merged = Concat(f.ctx, f.left, f.right);
    benchmark::DoNotOptimize(merged.size());
  }
  state.SetItemsProcessed(state.iterations() * f.left.size() *
                          f.right.size());
}
BENCHMARK(BM_Concat);

void BM_PruneBoundary(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  LinearFeatureOracle oracle(f.schema, 7);
  PlanVectorEnumeration merged = Concat(f.ctx, f.left, f.right);
  for (auto _ : state) {
    PlanVectorEnumeration pruned = PruneBoundary(f.ctx, merged, oracle);
    benchmark::DoNotOptimize(pruned.size());
  }
  state.SetItemsProcessed(state.iterations() * merged.size());
}
BENCHMARK(BM_PruneBoundary);

void BM_EncodeAssignmentFromScratch(benchmark::State& state) {
  // What Rheem-ML pays on *every* oracle call instead of merging.
  Fixture& f = Fixture::Get();
  PlanVectorEnumeration merged = Concat(f.ctx, f.left, f.right);
  for (auto _ : state) {
    std::vector<float> row = EncodeAssignment(f.ctx, merged.assignment(0));
    benchmark::DoNotOptimize(row.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EncodeAssignmentFromScratch);

void ForestBatchArgs(benchmark::internal::Benchmark* bench) {
  bench->Arg(1)->Arg(16)->Arg(256);
}

void BM_ForestPredict(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  // A tiny forest; relative batch-vs-single behavior is what matters.
  MlDataset data(f.schema.width());
  Rng rng(5);
  std::vector<float> row(f.schema.width());
  for (int i = 0; i < 256; ++i) {
    for (float& cell : row) {
      cell = static_cast<float>(rng.NextUniform(0, 100));
    }
    data.Add(row, static_cast<float>(rng.NextUniform(0, 1000)));
  }
  RandomForest forest;
  if (!forest.Train(data).ok()) state.SkipWithError("train failed");
  const size_t batch = static_cast<size_t>(state.range(0));
  std::vector<float> out(batch);
  for (auto _ : state) {
    forest.PredictBatch(data.features().data(), batch, f.schema.width(),
                        out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ForestPredict)->Apply(ForestBatchArgs);

}  // namespace
}  // namespace robopt

BENCHMARK_MAIN();
