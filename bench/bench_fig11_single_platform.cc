// Reproduces Figure 11 and Table III: single-platform execution mode. For
// each query and input size, the per-platform ground-truth runtimes (the
// bars) plus the platform chosen by RHEEMix (the red triangle) and by Robopt
// (the green triangle). Table III summarizes each optimizer's max/average
// distance from the optimal runtime.

#include <algorithm>
#include <cstdio>
#include <functional>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_env.h"
#include "plan/cardinality.h"

namespace robopt::bench {
namespace {

struct Summary {
  double rheemix_max = 0.0;
  double rheemix_sum = 0.0;
  double robopt_max = 0.0;
  double robopt_sum = 0.0;
  int cases = 0;
  int rheemix_optimal = 0;
  int robopt_optimal = 0;
};

void RunSweep(BenchEnv& env, const std::string& query,
              const std::vector<std::pair<std::string, LogicalPlan>>& sweep,
              Summary* summary, int* total_cases, int* rheemix_best,
              int* robopt_best) {
  std::printf("\n--- %s ---\n", query.c_str());
  std::printf("%-12s", "size");
  for (const Platform& platform : env.registry.platforms()) {
    std::printf(" %10s", platform.name.c_str());
  }
  std::printf(" %10s %10s\n", "RHEEMix", "Robopt");

  for (const auto& [label, plan] : sweep) {
    const Cardinalities cards = CardinalityEstimator(&plan).Estimate();
    std::vector<double> runtimes;
    double best = std::numeric_limits<double>::infinity();
    for (const Platform& platform : env.registry.platforms()) {
      const double s = env.SinglePlatformRuntime(plan, cards, platform.id);
      runtimes.push_back(s);
      best = std::min(best, s);
    }

    OptimizeOptions options;
    options.single_platform = true;
    auto rheemix = env.rheemix->Optimize(plan, &cards, options);
    auto robopt = env.robopt->Optimize(plan, &cards, options);
    if (!rheemix.ok() || !robopt.ok()) {
      std::printf("%-12s optimization failed\n", label.c_str());
      continue;
    }
    const double rheemix_s = runtimes[rheemix->chosen_platform];
    const double robopt_s = runtimes[robopt->chosen_platform];

    std::printf("%-12s", label.c_str());
    for (size_t p = 0; p < runtimes.size(); ++p) {
      std::string cell = Runtime(runtimes[p]);
      if (p == rheemix->chosen_platform) cell += "*";   // RHEEMix pick.
      if (p == robopt->chosen_platform) cell += "+";    // Robopt pick.
      std::printf(" %10s", cell.c_str());
    }
    std::printf(" %10s %10s\n", Runtime(rheemix_s).c_str(),
                Runtime(robopt_s).c_str());

    // Runs beyond one hour were aborted in the paper's testbed; exclude
    // them from the Table III distances just as the paper does.
    if (std::isfinite(best) && std::isfinite(rheemix_s) &&
        std::isfinite(robopt_s) && best <= 3600.0 && rheemix_s <= 3600.0 &&
        robopt_s <= 3600.0) {
      const double rheemix_diff = rheemix_s - best;
      const double robopt_diff = robopt_s - best;
      summary->rheemix_max = std::max(summary->rheemix_max, rheemix_diff);
      summary->rheemix_sum += rheemix_diff;
      summary->robopt_max = std::max(summary->robopt_max, robopt_diff);
      summary->robopt_sum += robopt_diff;
      ++summary->cases;
      ++*total_cases;
      if (rheemix_diff <= best * 0.02 + 0.5) ++*rheemix_best;
      if (robopt_diff <= best * 0.02 + 0.5) ++*robopt_best;
      if (rheemix_diff <= best * 0.02 + 0.5) ++summary->rheemix_optimal;
      if (robopt_diff <= best * 0.02 + 0.5) ++summary->robopt_optimal;
    }
  }
}

void Main() {
  std::printf("=== Figure 11: single-platform execution mode "
              "(* = RHEEMix pick, + = Robopt pick) ===\n");
  BenchEnv env(3);

  std::map<std::string, Summary> summaries;
  int total_cases = 0;
  int rheemix_best = 0;
  int robopt_best = 0;

  auto sweep = [&](const std::string& name,
                   std::vector<std::pair<std::string, LogicalPlan>> plans) {
    RunSweep(env, name, plans, &summaries[name], &total_cases, &rheemix_best,
             &robopt_best);
  };

  sweep("(a) WordCount",
        {{"30MB", MakeWordCountPlan(0.03)},
         {"300MB", MakeWordCountPlan(0.3)},
         {"1.5GB", MakeWordCountPlan(1.5)},
         {"6GB", MakeWordCountPlan(6)},
         {"24GB", MakeWordCountPlan(24)},
         {"1TB", MakeWordCountPlan(1000)}});
  sweep("(b) Word2NVec",
        {{"3MB", MakeWord2NVecPlan(3)},
         {"30MB", MakeWord2NVecPlan(30)},
         {"60MB", MakeWord2NVecPlan(60)},
         {"90MB", MakeWord2NVecPlan(90)},
         {"150MB", MakeWord2NVecPlan(150)}});
  sweep("(c) SimWords",
        {{"3MB", MakeSimWordsPlan(3)},
         {"30MB", MakeSimWordsPlan(30)},
         {"60MB", MakeSimWordsPlan(60)},
         {"90MB", MakeSimWordsPlan(90)},
         {"150MB", MakeSimWordsPlan(150)}});
  sweep("(d) Aggregate (TPC-H Q1)",
        {{"1GB", MakeTpchQ1Plan(1)},
         {"10GB", MakeTpchQ1Plan(10)},
         {"100GB", MakeTpchQ1Plan(100)},
         {"200GB", MakeTpchQ1Plan(200)},
         {"1TB", MakeTpchQ1Plan(1000)}});
  sweep("(e) Join (TPC-H Q3)",
        {{"1GB", MakeTpchQ3Plan(1)},
         {"10GB", MakeTpchQ3Plan(10)},
         {"100GB", MakeTpchQ3Plan(100)},
         {"200GB", MakeTpchQ3Plan(200)},
         {"1TB", MakeTpchQ3Plan(1000)}});
  sweep("(f) K-means",
        {{"36MB", MakeKmeansPlan(36, 100, 100)},
         {"361MB", MakeKmeansPlan(361, 100, 100)},
         {"3.6GB", MakeKmeansPlan(3610, 100, 100)},
         {"1TB", MakeKmeansPlan(1e6, 100, 100)}});
  sweep("(g) SGD",
        {{"740MB", MakeSgdPlan(0.74, 100, 1000)},
         {"1.85GB", MakeSgdPlan(1.85, 100, 1000)},
         {"3.7GB", MakeSgdPlan(3.7, 100, 1000)},
         {"7.4GB", MakeSgdPlan(7.4, 100, 1000)},
         {"14.8GB", MakeSgdPlan(14.8, 100, 1000)},
         {"1TB", MakeSgdPlan(1000, 100, 1000)}});
  sweep("(h) CrocoPR",
        {{"200MB", MakeCrocoPrPlan(0.2, 10)},
         {"1GB", MakeCrocoPrPlan(1, 10)},
         {"5GB", MakeCrocoPrPlan(5, 10)},
         {"10GB", MakeCrocoPrPlan(10, 10)},
         {"20GB", MakeCrocoPrPlan(20, 10)},
         {"1TB", MakeCrocoPrPlan(1000, 10)}});

  std::printf("\n=== Table III: runtime distance from the optimal platform "
              "(seconds) ===\n");
  std::printf("%-26s %12s %12s %12s %12s\n", "Query", "RHEEMix max",
              "RHEEMix avg", "Robopt max", "Robopt avg");
  for (const auto& [name, s] : summaries) {
    if (s.cases == 0) continue;
    std::printf("%-26s %12.1f %12.1f %12.1f %12.1f\n", name.c_str(),
                s.rheemix_max, s.rheemix_sum / s.cases, s.robopt_max,
                s.robopt_sum / s.cases);
  }
  std::printf("\nFastest-platform hit rate: Robopt %d/%d (%.0f%%), RHEEMix "
              "%d/%d (%.0f%%). Paper: 84%% vs 43%%.\n",
              robopt_best, total_cases, 100.0 * robopt_best / total_cases,
              rheemix_best, total_cases, 100.0 * rheemix_best / total_cases);
}

}  // namespace
}  // namespace robopt::bench

int main() { robopt::bench::Main(); }
