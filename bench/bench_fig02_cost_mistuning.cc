// Reproduces Figure 2: the impact of a well-tuned vs. a simply-tuned cost
// model on cross-platform optimization. Both cost models drive RHEEMix's
// object-based enumerator with true cardinalities injected; the chosen plans
// are then scored on the simulated cluster (the virtual clock).

#include <cstdio>

#include "bench/bench_env.h"
#include "plan/cardinality.h"

namespace robopt::bench {
namespace {

void RunQuery(BenchEnv& env, const std::string& name,
              const LogicalPlan& plan) {
  const Cardinalities cards = CardinalityEstimator(&plan).Estimate();

  RheemixOptimizer simply(&env.registry, &env.schema, &env.simply_tuned);
  auto well_result = env.rheemix->Optimize(plan, &cards);
  auto simple_result = simply.Optimize(plan, &cards);
  if (!well_result.ok() || !simple_result.ok()) {
    std::fprintf(stderr, "%s failed: %s / %s\n", name.c_str(),
                 well_result.status().ToString().c_str(),
                 simple_result.status().ToString().c_str());
    return;
  }
  const double well_s = env.TrueRuntime(well_result->plan, cards);
  const double simple_s = env.TrueRuntime(simple_result->plan, cards);
  std::printf("%-24s well-tuned %8s s on %-18s simply-tuned %8s s on %-18s "
              "slowdown %4.1fx\n",
              name.c_str(), Runtime(well_s).c_str(),
              env.PlatformsOf(well_result->plan).c_str(),
              Runtime(simple_s).c_str(),
              env.PlatformsOf(simple_result->plan).c_str(),
              simple_s / well_s);
}

void Main() {
  std::printf("=== Figure 2: impact of cost-model tuning on RHEEMix "
              "(Java/Spark/Flink, real cardinalities injected) ===\n");
  BenchEnv env(3);
  RunQuery(env, "SGD (7.4GB input)", MakeSgdPlan(7.4, 100, 1000));
  RunQuery(env, "Word2NVec (30MB input)", MakeWord2NVecPlan(30));
  RunQuery(env, "Aggregate (200GB input)", MakeAggregatePlan(200));
  RunQuery(env, "CrocoPR (2GB input)", MakeCrocoPrPlan(2, 10));
  std::printf("\nPaper's shape: a simply-tuned cost model degrades runtime "
              "by up to an order of magnitude.\n");
}

}  // namespace
}  // namespace robopt::bench

int main() { robopt::bench::Main(); }
