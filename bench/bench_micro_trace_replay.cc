// The trace pipeline, measured and gated twice. (1) Recorder overhead: a
// serving loop with the TraceRecorder attached vs detached; each arm's
// cost is the MINIMUM single-call latency over interleaved reps
// (min-of-many converges on the true deterministic cost under scheduler
// noise), and the run fails if recording costs more than 3% serving QPS.
// The gated arm serves with the plan cache off, so every call is a real
// optimize — the workload "serving QPS" means; the warm cache-hit path
// (~1us/call, where ANY per-request byte-copy is a large fraction) is
// reported as a diagnostic, the same split bench_micro_obs_overhead makes.
// (2) Replay speed: an as-fast-as-possible replay of a freshly recorded
// multi-tenant open-loop run through a fresh service must sustain at least
// 0.5x the live optimize QPS — and must reproduce every recorded
// assignment, predicted cost and model version bit-for-bit, or the run
// aborts. Both gates are waived (with a warning and JSON fields) on
// single-core boxes, where the recorder's writer thread and the serving
// thread timeshare one core. Emits BENCH_replay.json and leaves the
// recorded replay.trace as a CI artifact.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/operations.h"
#include "serve/optimizer_service.h"
#include "workload/driver.h"
#include "workload/generators.h"
#include "workload/trace_recorder.h"
#include "workload/trace_replay.h"
#include "workloads/synthetic.h"

namespace robopt {
namespace {

constexpr int kReps = 7;
constexpr int kCallsPerRep = 200;
constexpr double kMaxRecorderOverhead = 0.03;
constexpr double kMinReplaySpeedFraction = 0.5;
constexpr const char* kTracePath = "replay.trace";

float SumLabel(const float* row, int width) {
  float sum = 0.0f;
  for (int i = 0; i < width; ++i) sum += row[i];
  return sum;
}

std::unique_ptr<OptimizerService> MakeService(
    const PlatformRegistry* registry, const FeatureSchema* schema,
    const MlDataset& base, RequestObserver* observer,
    bool plan_cache = true) {
  ServeOptions options;
  options.background_retrain = false;
  options.forest.num_trees = 20;
  options.forest.num_threads = 1;
  options.num_shards = 1;
  options.request_observer = observer;
  if (!plan_cache) options.plan_cache_capacity = 0;
  auto made =
      OptimizerService::Create(registry, schema, base, nullptr, options);
  if (!made.ok()) {
    std::fprintf(stderr, "service: %s\n", made.status().ToString().c_str());
    std::abort();
  }
  return std::move(made.value());
}

struct OverheadResult {
  double qps_off = 0.0;
  double qps_on = 0.0;
  double overhead = 0.0;
};

/// One rep of kCallsPerRep warm serving calls over the pool; returns the
/// minimum single-call latency in microseconds.
double RunRep(OptimizerService* service, const std::vector<LogicalPlan>& pool) {
  double min_us = 1e18;
  for (int i = 0; i < kCallsPerRep; ++i) {
    const LogicalPlan& plan = pool[static_cast<size_t>(i) % pool.size()];
    RequestContext ctx;
    ctx.tenant = static_cast<uint64_t>(i) % 4;
    Stopwatch watch;
    auto result = service->Optimize(plan, nullptr, OptimizeOptions{}, ctx);
    const double us = watch.ElapsedMillis() * 1000.0;
    if (!result.ok()) {
      std::fprintf(stderr, "optimize: %s\n",
                   result.status().ToString().c_str());
      std::abort();
    }
    if (us < min_us) min_us = us;
  }
  return min_us;
}

int Main() {
  PlatformRegistry registry = PlatformRegistry::Default(2);
  FeatureSchema schema(&registry);
  const int cores = std::max(1, ThreadPool::HardwareThreads());
  const bool gates_waived = cores < 2;
  std::fprintf(stderr, "[bench] %d cores%s\n", cores,
               gates_waived ? " (single core: gates waived)" : "");

  // A deterministic base set from full enumerations of a small pool, the
  // same bootstrap the other serving benches use.
  const std::vector<LogicalPlan> pool = MakeSyntheticPlanPool(4, 1234);
  MlDataset base(schema.width());
  for (const LogicalPlan& plan : pool) {
    auto ctx = EnumerationContext::Make(&plan, &registry, &schema);
    if (!ctx.ok()) {
      std::fprintf(stderr, "context: %s\n", ctx.status().ToString().c_str());
      return 1;
    }
    const PlanVectorEnumeration all = Enumerate(*ctx, Vectorize(*ctx));
    for (size_t row = 0; row < all.size(); ++row) {
      base.Add(all.features(row), SumLabel(all.features(row), schema.width()));
    }
  }

  // --- (1) Recorder overhead on the serving path. ---
  auto measure_overhead = [&](bool plan_cache,
                              const char* what) -> OverheadResult {
    auto off_service = MakeService(&registry, &schema, base, nullptr,
                                   plan_cache);
    auto recorder = TraceRecorder::Open("overhead_probe.trace");
    if (!recorder.ok()) {
      std::fprintf(stderr, "recorder: %s\n",
                   recorder.status().ToString().c_str());
      std::abort();
    }
    auto on_service = MakeService(&registry, &schema, base, recorder->get(),
                                  plan_cache);
    // Pin the bit-identical contract while warming both arms: a recorder
    // must never change what gets served.
    for (const LogicalPlan& plan : pool) {
      auto off = off_service->Optimize(plan);
      auto on = on_service->Optimize(plan);
      if (!off.ok() || !on.ok()) std::abort();
      if (off->optimize.predicted_runtime_s !=
              on->optimize.predicted_runtime_s) {
        std::fprintf(stderr, "FATAL: predicted cost differs under recording\n");
        std::abort();
      }
      for (const LogicalOperator& op : plan.operators()) {
        if (off->optimize.plan.alt_index(op.id) !=
            on->optimize.plan.alt_index(op.id)) {
          std::fprintf(stderr, "FATAL: served plan differs under recording\n");
          std::abort();
        }
      }
    }
    RunRep(off_service.get(), pool);  // Warm both arms.
    RunRep(on_service.get(), pool);
    double min_off_us = 1e18;
    double min_on_us = 1e18;
    for (int rep = 0; rep < kReps; ++rep) {
      const double off_us = RunRep(off_service.get(), pool);
      const double on_us = RunRep(on_service.get(), pool);
      min_off_us = std::min(min_off_us, off_us);
      min_on_us = std::min(min_on_us, on_us);
      std::fprintf(stderr,
                   "[bench] %s rep %d: off min %.2f us, on min %.2f us\n",
                   what, rep, off_us, on_us);
    }
    if (!recorder->get()->Close().ok()) std::abort();
    std::remove("overhead_probe.trace");
    OverheadResult result;
    result.qps_off = 1e6 / min_off_us;
    result.qps_on = 1e6 / min_on_us;
    result.overhead = (min_on_us - min_off_us) / min_off_us;
    return result;
  };

  // The gated workload: plan cache off, so every serve runs the optimizer
  // and "serving QPS" means optimize throughput.
  const OverheadResult gated =
      measure_overhead(/*plan_cache=*/false, "gated");
  std::fprintf(stderr,
               "[bench] recorder overhead: off %.0f qps, on %.0f qps "
               "(%.2f%%, gate %.0f%%)\n",
               gated.qps_off, gated.qps_on, gated.overhead * 100.0,
               kMaxRecorderOverhead * 100.0);
  // Diagnostic only: the warm cache-hit path, the recorder's worst
  // denominator (~1us/call).
  const OverheadResult warm_hit =
      measure_overhead(/*plan_cache=*/true, "warm-hit");
  std::fprintf(stderr,
               "[bench] warm-hit diagnostic: off %.0f qps, on %.0f qps "
               "(%.2f%%)\n",
               warm_hit.qps_off, warm_hit.qps_on, warm_hit.overhead * 100.0);

  // --- (2) Replay speed vs the live run. ---
  // Live: a bursty multi-tenant open-loop stream, as fast as possible.
  GeneratorOptions gen;
  gen.base.seed = 77;
  gen.base.max_ops = 512;
  gen.base.num_tenants = 16;
  gen.arrival.kind = ArrivalOptions::Kind::kBursty;
  auto live_service = MakeService(&registry, &schema, base, nullptr);
  OpenLoopSource live_source(PlanPool::kSynthetic, gen);
  if (!live_source.Load().ok()) return 1;
  DriveOptions drive;
  drive.registry = &registry;
  const ReplayStats live = DriveWorkload(live_service.get(), &live_source,
                                         drive);
  const double live_qps = static_cast<double>(live.optimizes) / live.wall_s;

  // Record the identical stream (same seed) through a recording service.
  auto tape = TraceRecorder::Open(kTracePath);
  if (!tape.ok()) return 1;
  auto recording_service = MakeService(&registry, &schema, base, tape->get());
  OpenLoopSource record_source(PlanPool::kSynthetic, gen);
  if (!record_source.Load().ok()) return 1;
  const ReplayStats recorded =
      DriveWorkload(recording_service.get(), &record_source, drive);
  if (!tape->get()->Close().ok()) {
    std::fprintf(stderr, "trace close failed\n");
    return 1;
  }
  const TraceRecorderStats tape_stats = tape->get()->Stats();

  // Replay the trace through a fresh service, verifying every outcome.
  auto replay_service = MakeService(&registry, &schema, base, nullptr);
  TraceReplaySource replay_source(kTracePath);
  Status load = replay_source.Load();
  if (!load.ok()) {
    std::fprintf(stderr, "trace load: %s\n", load.ToString().c_str());
    return 1;
  }
  DriveOptions verify = drive;
  verify.verify = true;
  const ReplayStats replay =
      DriveWorkload(replay_service.get(), &replay_source, verify);
  const double replay_qps =
      static_cast<double>(replay.optimizes) / replay.wall_s;
  const double speed_fraction = replay_qps / live_qps;
  std::fprintf(stderr,
               "[bench] live %.0f qps (%llu optimizes) | replay %.0f qps "
               "(%llu optimizes, %llu verified) = %.2fx live "
               "(gate %.2fx)\n",
               live_qps, static_cast<unsigned long long>(live.optimizes),
               replay_qps, static_cast<unsigned long long>(replay.optimizes),
               static_cast<unsigned long long>(replay.verified),
               speed_fraction, kMinReplaySpeedFraction);
  std::fprintf(stderr,
               "[bench] trace: %llu records (%llu plan defs, %llu dropped), "
               "%llu bytes\n",
               static_cast<unsigned long long>(tape_stats.records_written),
               static_cast<unsigned long long>(tape_stats.plan_defs),
               static_cast<unsigned long long>(tape_stats.records_dropped),
               static_cast<unsigned long long>(tape_stats.bytes_written));

  FILE* json = std::fopen("BENCH_replay.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_replay.json\n");
    return 1;
  }
  std::fprintf(
      json,
      "{\n"
      "  \"reps\": %d,\n"
      "  \"recorder\": {\"qps_off\": %.1f, \"qps_on\": %.1f, "
      "\"overhead_fraction\": %.5f, \"gate_fraction\": %.3f},\n"
      "  \"recorder_warm_hit\": {\"qps_off\": %.1f, \"qps_on\": %.1f, "
      "\"overhead_fraction\": %.5f},\n"
      "  \"replay\": {\"live_qps\": %.1f, \"replay_qps\": %.1f, "
      "\"speed_fraction\": %.3f, \"gate_fraction\": %.3f,\n"
      "    \"optimizes\": %llu, \"feedbacks\": %llu, \"verified\": %llu, "
      "\"mismatches\": %llu},\n"
      "  \"trace\": {\"records\": %llu, \"plan_defs\": %llu, "
      "\"dropped\": %llu, \"bytes\": %llu},\n"
      "  \"cores\": %d,\n"
      "  \"gates_waived\": %s,\n"
      "  \"bit_identical\": %s\n"
      "}\n",
      kReps, gated.qps_off, gated.qps_on, gated.overhead,
      kMaxRecorderOverhead, warm_hit.qps_off, warm_hit.qps_on,
      warm_hit.overhead, live_qps,
      replay_qps, speed_fraction, kMinReplaySpeedFraction,
      static_cast<unsigned long long>(replay.optimizes),
      static_cast<unsigned long long>(replay.feedbacks),
      static_cast<unsigned long long>(replay.verified),
      static_cast<unsigned long long>(replay.mismatches),
      static_cast<unsigned long long>(tape_stats.records_written),
      static_cast<unsigned long long>(tape_stats.plan_defs),
      static_cast<unsigned long long>(tape_stats.records_dropped),
      static_cast<unsigned long long>(tape_stats.bytes_written), cores,
      gates_waived ? "true" : "false",
      replay.mismatches == 0 ? "true" : "false");
  std::fclose(json);
  std::fprintf(stderr, "[bench] wrote BENCH_replay.json and %s\n", kTracePath);

  // Correctness never waives: a replay that does not reproduce the
  // recording is broken regardless of machine shape.
  if (replay.verified == 0 || replay.mismatches != 0 ||
      replay.options_hash_mismatches != 0) {
    std::fprintf(stderr, "FAIL: replay did not reproduce the recording "
                         "(%llu verified, %llu mismatches)\n",
                 static_cast<unsigned long long>(replay.verified),
                 static_cast<unsigned long long>(replay.mismatches));
    return 1;
  }
  if (recorded.optimizes != live.optimizes ||
      tape_stats.records_dropped != 0) {
    std::fprintf(stderr, "FAIL: recording lost events\n");
    return 1;
  }
  if (!gates_waived && gated.overhead > kMaxRecorderOverhead) {
    std::fprintf(stderr,
                 "FAIL: recording costs %.2f%% serving QPS (gate: %.0f%%)\n",
                 gated.overhead * 100.0, kMaxRecorderOverhead * 100.0);
    return 1;
  }
  if (!gates_waived && speed_fraction < kMinReplaySpeedFraction) {
    std::fprintf(stderr,
                 "FAIL: replay runs at %.2fx live QPS (gate: %.2fx)\n",
                 speed_fraction, kMinReplaySpeedFraction);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace robopt

int main() { return robopt::Main(); }
