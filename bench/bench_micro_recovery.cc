// Fault-tolerance microbenchmark: what the recovery layer costs and how
// fast it reroutes around a dead platform —
//   (a) healthy baseline: single-client optimize+execute QPS through the
//       serving layer (breakers wired, no faults injected);
//   (b) degraded: the same loop under a 10% per-attempt transient fault
//       rate on every platform; operator-level retry with backoff absorbs
//       the faults. The run FAILS if the degraded loop retains less than
//       50% of the healthy QPS (best repetition of each, see kReps);
//   (c) outage recovery: Spark dies permanently; failures trip its circuit
//       breaker, the trip invalidates the cached Spark plans, and the next
//       optimize re-plans around the outage. Reports the wall-clock
//       recovery latency from the first failure to the first successful
//       fallback execution.
// Emits BENCH_recovery.json.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/stopwatch.h"
#include "serve/optimizer_service.h"
#include "workloads/datagen.h"
#include "workloads/queries.h"
#include "workloads/synthetic.h"

namespace robopt {
namespace {

constexpr double kPhaseSeconds = 1.0;
constexpr int kReps = 3;
constexpr double kFaultRate = 0.10;
constexpr double kMinRetainedRatio = 0.5;

float SumLabel(const float* row, size_t width) {
  float sum = 1.0f;
  for (size_t i = 0; i < width; ++i) sum += std::fabs(row[i]);
  return sum;
}

ExecutionPlan AllOn(const LogicalPlan& plan, const PlatformRegistry& registry,
                    PlatformId platform) {
  ExecutionPlan exec(&plan, &registry);
  for (const LogicalOperator& op : plan.operators()) {
    const auto& alts = registry.AlternativesFor(op.kind);
    for (size_t a = 0; a < alts.size(); ++a) {
      if (alts[a].platform == platform && alts[a].variant == 0) {
        exec.Assign(op.id, static_cast<int>(a));
        break;
      }
    }
  }
  return exec;
}

struct PhaseStats {
  double qps = 0.0;
  long ok = 0;
  long failed = 0;
  long faults_injected = 0;
  long retries = 0;
};

/// One measured phase: a single client loops optimize -> execute for
/// kPhaseSeconds under `faults`. QPS counts successful end-to-end cycles.
/// Fault draws are deterministic per (seed, invocation, attempt) — repeating
/// one plan under one seed would replay the same faults every cycle — so
/// each cycle runs under seed + cycle to actually sample the fault rate.
PhaseStats MeasurePhase(OptimizerService* service,
                        const PlatformRegistry* registry,
                        const VirtualCost* cost, const LogicalPlan& plan,
                        const DataCatalog& catalog, const FaultPlan& faults) {
  ExecutorOptions exec_options;
  exec_options.observer = service;
  exec_options.health = service->health();
  exec_options.fault_plan = faults;

  PhaseStats stats;
  Stopwatch stopwatch;
  for (long cycle = 0; stopwatch.ElapsedMillis() < kPhaseSeconds * 1000.0;
       ++cycle) {
    exec_options.fault_plan.seed = faults.seed + static_cast<uint64_t>(cycle);
    Executor executor(registry, cost, nullptr, exec_options);
    auto optimized = service->Optimize(plan);
    if (!optimized.ok()) {
      ++stats.failed;
      continue;
    }
    auto result = executor.Execute(optimized->optimize.plan, catalog);
    if (result.ok()) {
      ++stats.ok;
      stats.faults_injected += result->faults.faults_injected;
      stats.retries += result->faults.retries;
    } else {
      ++stats.failed;
    }
  }
  stats.qps = static_cast<double>(stats.ok) /
              (stopwatch.ElapsedMillis() / 1000.0);
  return stats;
}

StatusOr<std::unique_ptr<OptimizerService>> MakeService(
    const PlatformRegistry* registry, const FeatureSchema* schema,
    const MlDataset& base, int failure_threshold, double cooldown_s) {
  ServeOptions options;
  options.background_retrain = false;
  options.forest.num_trees = 20;
  options.forest.num_threads = 1;
  options.breaker.failure_threshold = failure_threshold;
  options.breaker.cooldown_s = cooldown_s;
  return OptimizerService::Create(registry, schema, base, nullptr, options);
}

int Main() {
  RegisterWorkloadKernels();
  PlatformRegistry registry = PlatformRegistry::Default(2);
  FeatureSchema schema(&registry);
  VirtualCost cost(&registry);

  // Base training set: plan vectors of a few synthetic pipelines with a
  // deterministic label (the bench measures the recovery path, not model
  // quality).
  MlDataset base(schema.width());
  std::vector<LogicalPlan> base_plans;
  base_plans.push_back(MakeSyntheticPipeline(5, 1e5, 1));
  base_plans.push_back(MakeSyntheticPipeline(6, 1e6, 2));
  base_plans.push_back(MakeSyntheticPipeline(7, 1e4, 3));
  for (const LogicalPlan& plan : base_plans) {
    auto ctx = EnumerationContext::Make(&plan, &registry, &schema);
    if (!ctx.ok()) {
      std::fprintf(stderr, "context: %s\n", ctx.status().ToString().c_str());
      return 1;
    }
    const PlanVectorEnumeration all = Enumerate(*ctx, Vectorize(*ctx));
    for (size_t row = 0; row < all.size(); ++row) {
      base.Add(all.features(row), SumLabel(all.features(row), schema.width()));
    }
  }

  // The served workload.
  LogicalPlan plan = MakeWordCountPlan(0.001);
  DataCatalog catalog;
  catalog.Bind(plan.SourceIds()[0], GenerateTextLines(1000, 1000, 5));

  // --- (a) + (b): healthy vs 10% transient faults, best of kReps each.
  // A high trip threshold keeps the degraded phase measuring retry cost,
  // not breaker flapping.
  auto healthy_service =
      MakeService(&registry, &schema, base, /*failure_threshold=*/1 << 20,
                  /*cooldown_s=*/1e12);
  auto degraded_service =
      MakeService(&registry, &schema, base, /*failure_threshold=*/1 << 20,
                  /*cooldown_s=*/1e12);
  if (!healthy_service.ok() || !degraded_service.ok()) {
    std::fprintf(stderr, "service construction failed\n");
    return 1;
  }
  FaultPlan no_faults;
  FaultPlan transient;
  transient.profiles.push_back(FaultProfile{kAnyPlatform, kAnyOpKind,
                                            kFaultRate,
                                            /*fail_on_invocation=*/0,
                                            /*permanent=*/false,
                                            /*slowdown=*/1.0});
  PhaseStats healthy;
  PhaseStats degraded;
  for (int rep = 0; rep < kReps; ++rep) {
    const PhaseStats h = MeasurePhase(healthy_service->get(), &registry,
                                      &cost, plan, catalog, no_faults);
    if (h.qps > healthy.qps) healthy = h;
    const PhaseStats d = MeasurePhase(degraded_service->get(), &registry,
                                      &cost, plan, catalog, transient);
    if (d.qps > degraded.qps) degraded = d;
  }
  const double retained =
      healthy.qps > 0.0 ? degraded.qps / healthy.qps : 0.0;
  std::fprintf(stderr,
               "[bench] best of %d reps: healthy %.1f qps, degraded %.1f qps "
               "at %.0f%% fault rate (retained %.3f; %ld faults, %ld retries, "
               "%ld failed runs)\n",
               kReps, healthy.qps, degraded.qps, 100.0 * kFaultRate, retained,
               degraded.faults_injected, degraded.retries, degraded.failed);

  // --- (c) Outage recovery: Spark dies permanently. ---
  constexpr PlatformId kSpark = 1;
  constexpr int kTripThreshold = 3;
  auto outage_service = MakeService(&registry, &schema, base, kTripThreshold,
                                    /*cooldown_s=*/1e15);
  if (!outage_service.ok()) return 1;
  OptimizerService* service = outage_service->get();
  // Warm the plan cache with a Spark-routed plan so the trip has something
  // to invalidate.
  OptimizeOptions spark_only;
  spark_only.allowed_platform_mask = 1ull << kSpark;
  if (!service->Optimize(plan, nullptr, spark_only).ok()) {
    std::fprintf(stderr, "spark-only warmup optimize failed\n");
    return 1;
  }

  FaultPlan outage;
  outage.profiles.push_back(FaultProfile{static_cast<int>(kSpark), kAnyOpKind,
                                         /*failure_rate=*/1.0,
                                         /*fail_on_invocation=*/0,
                                         /*permanent=*/true,
                                         /*slowdown=*/1.0});
  ExecutorOptions outage_exec;
  outage_exec.observer = service;
  outage_exec.health = service->health();
  outage_exec.fault_plan = outage;
  Executor executor(&registry, &cost, nullptr, outage_exec);
  const ExecutionPlan spark_pinned = AllOn(plan, registry, kSpark);

  Stopwatch recovery_watch;
  long outage_queries = 0;
  // The outage burns through the trip threshold...
  while (service->health()->state(kSpark) != BreakerState::kOpen) {
    ++outage_queries;
    if (executor.Execute(spark_pinned, catalog).ok()) {
      std::fprintf(stderr, "FAIL: execution on dead platform succeeded\n");
      return 1;
    }
    if (outage_queries > 10 * kTripThreshold) {
      std::fprintf(stderr, "FAIL: breaker never tripped\n");
      return 1;
    }
  }
  // ...then the next served query re-optimizes around the dead platform.
  double recovery_ms = -1.0;
  auto fallback = service->Optimize(plan);
  if (fallback.ok()) {
    bool avoids_spark = true;
    for (PlatformId p : fallback->optimize.plan.PlatformsUsed()) {
      avoids_spark &= p != kSpark;
    }
    // The outage profile only matches Spark: the fallback plan runs clean.
    if (avoids_spark &&
        executor.Execute(fallback->optimize.plan, catalog).ok()) {
      recovery_ms = recovery_watch.ElapsedMillis();
    }
  }
  const ServeStats stats = service->Stats();
  std::fprintf(stderr,
               "[bench] outage: %ld failed queries tripped the breaker, "
               "recovery in %.2f ms (%llu trips, %llu cached plans "
               "invalidated, %llu masked optimizes)\n",
               outage_queries, recovery_ms,
               static_cast<unsigned long long>(stats.recovery.breaker_trips),
               static_cast<unsigned long long>(
                   stats.recovery.plans_invalidated_on_trip),
               static_cast<unsigned long long>(
                   stats.recovery.masked_optimizes));

  FILE* json = std::fopen("BENCH_recovery.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_recovery.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"phase_seconds\": %.2f,\n"
               "  \"fault_rate\": %.2f,\n"
               "  \"healthy_qps\": %.2f,\n"
               "  \"degraded_qps\": %.2f,\n"
               "  \"retained_ratio\": %.4f,\n"
               "  \"degraded_faults_injected\": %ld,\n"
               "  \"degraded_retries\": %ld,\n"
               "  \"degraded_failed_runs\": %ld,\n"
               "  \"outage_queries_to_trip\": %ld,\n"
               "  \"recovery_latency_ms\": %.3f,\n"
               "  \"breaker_trips\": %llu,\n"
               "  \"plans_invalidated_on_trip\": %llu,\n"
               "  \"masked_optimizes\": %llu\n"
               "}\n",
               kPhaseSeconds, kFaultRate, healthy.qps, degraded.qps, retained,
               degraded.faults_injected, degraded.retries, degraded.failed,
               outage_queries, recovery_ms,
               static_cast<unsigned long long>(stats.recovery.breaker_trips),
               static_cast<unsigned long long>(
                   stats.recovery.plans_invalidated_on_trip),
               static_cast<unsigned long long>(
                   stats.recovery.masked_optimizes));
  std::fclose(json);
  std::fprintf(stderr, "[bench] wrote BENCH_recovery.json\n");

  if (recovery_ms < 0.0) {
    std::fprintf(stderr, "FAIL: service did not recover from the outage\n");
    return 1;
  }
  if (retained < kMinRetainedRatio) {
    std::fprintf(stderr,
                 "FAIL: degraded throughput %.1f%% of healthy baseline "
                 "(need >= %.0f%%)\n",
                 100.0 * retained, 100.0 * kMinRetainedRatio);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace robopt

int main() { return robopt::Main(); }
