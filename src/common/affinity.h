#ifndef ROBOPT_COMMON_AFFINITY_H_
#define ROBOPT_COMMON_AFFINITY_H_

namespace robopt {

/// Pins the calling thread to logical core `core % hardware cores`.
/// Best-effort: returns true on success, false where the platform does not
/// support affinity (non-Linux) or the syscall fails (e.g. a restricted
/// cpuset). Shard-per-core benchmarks pin their clients so per-shard cache
/// warmth translates into per-core cache warmth; correctness never depends
/// on pinning.
bool PinCurrentThreadToCore(int core);

/// Whether PinCurrentThreadToCore can work at all on this platform.
bool AffinitySupported();

}  // namespace robopt

#endif  // ROBOPT_COMMON_AFFINITY_H_
