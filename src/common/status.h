#ifndef ROBOPT_COMMON_STATUS_H_
#define ROBOPT_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace robopt {

/// Error codes used across the library. Modeled after the RocksDB/Arrow
/// convention of returning a Status object instead of throwing exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  kResourceExhausted,
  kUnavailable,
};

/// Result of an operation that can fail. Cheap to copy in the OK case.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  /// A transient infrastructure failure (injected fault, open circuit
  /// breaker): the operation may succeed if retried or re-planned.
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: bad operator id".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value of type T or an error Status. Use `ok()` before `value()`.
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value or a non-OK status keeps call sites
  /// terse: `return result;` / `return Status::InvalidArgument(...)`.
  StatusOr(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  StatusOr(Status status) : repr_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(repr_);
  }

  const T& value() const& { return std::get<T>(repr_); }
  T& value() & { return std::get<T>(repr_); }
  T&& value() && { return std::get<T>(std::move(repr_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

/// Propagates a non-OK status to the caller.
#define ROBOPT_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::robopt::Status _st = (expr);              \
    if (!_st.ok()) return _st;                  \
  } while (0)

}  // namespace robopt

#endif  // ROBOPT_COMMON_STATUS_H_
