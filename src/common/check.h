#ifndef ROBOPT_COMMON_CHECK_H_
#define ROBOPT_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace robopt::internal_check {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "ROBOPT_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace robopt::internal_check

/// Aborts the process when an internal invariant does not hold. Used for
/// programmer errors; recoverable conditions return a Status instead.
#define ROBOPT_CHECK(expr)                                              \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::robopt::internal_check::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                                   \
  } while (0)

#ifndef NDEBUG
#define ROBOPT_DCHECK(expr) ROBOPT_CHECK(expr)
#else
#define ROBOPT_DCHECK(expr) \
  do {                      \
  } while (0)
#endif

#endif  // ROBOPT_COMMON_CHECK_H_
