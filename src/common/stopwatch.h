#ifndef ROBOPT_COMMON_STOPWATCH_H_
#define ROBOPT_COMMON_STOPWATCH_H_

#include <chrono>

namespace robopt {

/// Wall-clock stopwatch used to time the optimizers themselves (the
/// enumeration latency experiments) and the observability layer's span
/// timestamps. Query *execution* time, in contrast, is virtual time
/// produced by the executor's performance model.
///
/// Every reading comes from std::chrono::steady_clock — monotonic by
/// definition, so elapsed values can never go negative even if the system
/// (wall) clock steps backwards under NTP correction mid-measurement.
/// Nothing in this repo may time intervals with system_clock or
/// high_resolution_clock (the latter is system_clock on some standard
/// libraries); see tests/common_test stopwatch coverage.
class Stopwatch {
 public:
  /// The monotonic clock all intervals are measured on. Public so callers
  /// that need raw time points (e.g. the tracer's epoch) provably share the
  /// stopwatch's monotonicity guarantee.
  using Clock = std::chrono::steady_clock;

  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }

 private:
  Clock::time_point start_;
};

}  // namespace robopt

#endif  // ROBOPT_COMMON_STOPWATCH_H_
