#ifndef ROBOPT_COMMON_STOPWATCH_H_
#define ROBOPT_COMMON_STOPWATCH_H_

#include <chrono>

namespace robopt {

/// Wall-clock stopwatch used to time the optimizers themselves (the
/// enumeration latency experiments). Query *execution* time, in contrast, is
/// virtual time produced by the executor's performance model.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time in milliseconds since construction or last Restart().
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace robopt

#endif  // ROBOPT_COMMON_STOPWATCH_H_
