#ifndef ROBOPT_COMMON_STRINGS_H_
#define ROBOPT_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace robopt {

/// Splits `text` on any character in `delims`, dropping empty pieces.
std::vector<std::string_view> SplitTokens(std::string_view text,
                                          std::string_view delims = " \t\n");

/// Joins pieces with a separator; convenience for report printing.
std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep);

/// Renders a double with fixed precision (report tables).
std::string FormatDouble(double value, int precision = 2);

/// Renders "12.3 ms" / "4.56 s" style human-readable durations from seconds.
std::string FormatSeconds(double seconds);

}  // namespace robopt

#endif  // ROBOPT_COMMON_STRINGS_H_
