#ifndef ROBOPT_COMMON_TICKET_QUEUE_H_
#define ROBOPT_COMMON_TICKET_QUEUE_H_

#include <atomic>
#include <cstdint>

namespace robopt {

/// Bounded FIFO admission queue for one shard: multiple producers enter,
/// exactly one request executes at a time, in ticket order. The queue holds
/// no payloads — each admitted caller keeps its request on its own stack and
/// *becomes* the shard's executor when its ticket comes up, so the critical
/// path has no cross-thread handoff, no mutex and no allocation:
///
///   - TryEnter() claims the next ticket with a bounded CAS loop; it fails
///     (shed) when `capacity` tickets are already outstanding, so a stalled
///     shard back-pressures by rejection, never by unbounded queueing.
///   - WaitTurn() blocks (C++20 atomic wait — futex on Linux) until the
///     caller's ticket is being served. The serving counter's release/acquire
///     chain orders every request after the previous one, so shard-local
///     state needs no further synchronization while a ticket is held.
///   - Leave() publishes the next turn and wakes waiters.
///
/// depth() is a racy snapshot (relaxed) meant for admission estimates and
/// telemetry, not for invariants.
class TicketQueue {
 public:
  explicit TicketQueue(uint64_t capacity) : capacity_(capacity) {}

  TicketQueue(const TicketQueue&) = delete;
  TicketQueue& operator=(const TicketQueue&) = delete;

  /// Claims the next ticket into `*ticket` and returns true, or returns
  /// false without side effects when `capacity` requests are already
  /// admitted (the caller sheds). Lock-free.
  bool TryEnter(uint64_t* ticket) {
    uint64_t next = next_.load(std::memory_order_relaxed);
    for (;;) {
      if (next - serving_.load(std::memory_order_relaxed) >= capacity_) {
        return false;
      }
      if (next_.compare_exchange_weak(next, next + 1,
                                      std::memory_order_relaxed)) {
        *ticket = next;
        return true;
      }
    }
  }

  /// Blocks until `ticket` is the serving ticket. On return the caller owns
  /// the shard until Leave().
  void WaitTurn(uint64_t ticket) const {
    uint64_t current = serving_.load(std::memory_order_acquire);
    while (current != ticket) {
      serving_.wait(current, std::memory_order_acquire);
      current = serving_.load(std::memory_order_acquire);
    }
  }

  /// Releases the shard to the next ticket and wakes every waiter (each
  /// re-checks its own ticket; the queue is bounded by `capacity`, so the
  /// herd is too).
  void Leave() {
    serving_.fetch_add(1, std::memory_order_release);
    serving_.notify_all();
  }

  /// Outstanding admitted requests (including the one being served), as a
  /// relaxed snapshot.
  uint64_t depth() const {
    const uint64_t next = next_.load(std::memory_order_relaxed);
    const uint64_t serving = serving_.load(std::memory_order_relaxed);
    return next >= serving ? next - serving : 0;
  }

  uint64_t capacity() const { return capacity_; }

 private:
  const uint64_t capacity_;
  std::atomic<uint64_t> next_{0};
  std::atomic<uint64_t> serving_{0};
};

}  // namespace robopt

#endif  // ROBOPT_COMMON_TICKET_QUEUE_H_
