#include "common/affinity.h"

#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace robopt {

bool AffinitySupported() {
#if defined(__linux__)
  return true;
#else
  return false;
#endif
}

bool PinCurrentThreadToCore(int core) {
#if defined(__linux__)
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0 || core < 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(core) % hw, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)core;
  return false;
#endif
}

}  // namespace robopt
