#include "common/strings.h"

#include <cmath>
#include <cstdio>

namespace robopt {

std::vector<std::string_view> SplitTokens(std::string_view text,
                                          std::string_view delims) {
  std::vector<std::string_view> out;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t start = text.find_first_not_of(delims, pos);
    if (start == std::string_view::npos) break;
    size_t end = text.find_first_of(delims, start);
    if (end == std::string_view::npos) end = text.size();
    out.push_back(text.substr(start, end - start));
    pos = end;
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FormatSeconds(double seconds) {
  char buf[64];
  if (!std::isfinite(seconds)) {
    return "inf";
  }
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1f ms", seconds * 1e3);
  } else if (seconds < 120.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f min", seconds / 60.0);
  }
  return buf;
}

}  // namespace robopt
