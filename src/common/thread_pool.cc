#include "common/thread_pool.h"

#include <algorithm>

namespace robopt {
namespace {

/// Set while a thread is executing chunks of a pool job; nested ParallelFor
/// calls from such a thread run inline instead of re-entering the pool.
thread_local bool t_inside_pool_job = false;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  const int worker_count = std::max(0, num_threads - 1);
  workers_.reserve(static_cast<size_t>(worker_count));
  for (int i = 0; i < worker_count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

int ThreadPool::HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool& ThreadPool::Global() {
  // Leaked on purpose: workers must outlive every static-destruction-order
  // user, and the process is about to exit anyway.
  static ThreadPool* pool = new ThreadPool(HardwareThreads());
  return *pool;
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_epoch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock,
                    [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
      ++running_workers_;
    }
    t_inside_pool_job = true;
    RunChunks();
    t_inside_pool_job = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      --running_workers_;
      if (running_workers_ == 0 && done_chunks_ == chunks_.size()) {
        cv_done_.notify_all();
      }
    }
  }
}

void ThreadPool::RunChunks() {
  for (;;) {
    std::pair<size_t, size_t> chunk;
    const RangeFn* fn;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (next_chunk_ >= chunks_.size()) return;
      chunk = chunks_[next_chunk_++];
      fn = fn_;
    }
    (*fn)(chunk.first, chunk.second);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++done_chunks_;
      if (done_chunks_ == chunks_.size()) cv_done_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                             int max_shards, const RangeFn& fn) {
  if (end <= begin) return;
  const size_t range = end - begin;
  const size_t min_per_shard = std::max<size_t>(grain, 1);
  // Deterministic chunk layout: a function of the arguments only.
  const size_t shard_cap = std::max<int>(max_shards, 1);
  const size_t shards =
      std::min<size_t>(shard_cap, (range + min_per_shard - 1) / min_per_shard);
  if (shards <= 1 || t_inside_pool_job) {
    fn(begin, end);
    return;
  }
  // Note: even with zero workers (single-core hardware) the chunked job
  // runs — the caller drains every chunk — so the sharded code path behaves
  // identically everywhere.

  std::vector<std::pair<size_t, size_t>> chunks;
  chunks.reserve(shards);
  const size_t base = range / shards;
  const size_t extra = range % shards;
  size_t at = begin;
  for (size_t s = 0; s < shards; ++s) {
    const size_t len = base + (s < extra ? 1 : 0);
    chunks.emplace_back(at, at + len);
    at += len;
  }

  std::lock_guard<std::mutex> call_lock(call_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    chunks_ = std::move(chunks);
    next_chunk_ = 0;
    done_chunks_ = 0;
    ++epoch_;
  }
  cv_work_.notify_all();
  t_inside_pool_job = true;
  RunChunks();
  t_inside_pool_job = false;
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [&] {
    return done_chunks_ == chunks_.size() && running_workers_ == 0;
  });
  fn_ = nullptr;
}

void ParallelFor(int num_threads, size_t begin, size_t end, size_t grain,
                 const ThreadPool::RangeFn& fn) {
  if (num_threads <= 1) {
    if (end > begin) fn(begin, end);
    return;
  }
  ThreadPool::Global().ParallelFor(begin, end, grain, num_threads, fn);
}

}  // namespace robopt
