#ifndef ROBOPT_COMMON_ALIGNED_VECTOR_H_
#define ROBOPT_COMMON_ALIGNED_VECTOR_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <new>
#include <vector>

namespace robopt {

/// Cache-line alignment of hot SoA arrays (ForestKernel's node pool).
/// 64 bytes is one line on every target we build for, and a whole AVX-512
/// vector, so a vector load at an aligned offset can never split a line.
inline constexpr size_t kCacheLineBytes = 64;

/// Minimal std::allocator drop-in whose allocations start on an `Align`-byte
/// boundary. The data() of a vector using it is guaranteed aligned; element
/// k then sits at an aligned offset whenever k * sizeof(T) is a multiple of
/// the alignment — which is all the SoA kernels need, since they stream
/// whole arrays from index 0.
template <typename T, size_t Align = kCacheLineBytes>
class AlignedAllocator {
 public:
  static_assert((Align & (Align - 1)) == 0, "alignment must be a power of 2");
  static_assert(Align >= alignof(T), "alignment below the type's natural one");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  T* allocate(size_t n) {
    if (n > std::numeric_limits<size_t>::max() / sizeof(T)) {
      throw std::bad_alloc();
    }
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Align)));
  }

  void deallocate(T* p, size_t /*n*/) noexcept {
    ::operator delete(p, std::align_val_t(Align));
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return false;
  }
};

/// std::vector whose backing storage starts on a 64-byte boundary.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

/// True when `p` sits on an `Align`-byte boundary (test hook).
inline bool IsAligned(const void* p, size_t align = kCacheLineBytes) {
  return (reinterpret_cast<uintptr_t>(p) & (align - 1)) == 0;
}

}  // namespace robopt

#endif  // ROBOPT_COMMON_ALIGNED_VECTOR_H_
