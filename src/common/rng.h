#ifndef ROBOPT_COMMON_RNG_H_
#define ROBOPT_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

namespace robopt {

/// Deterministic, fast pseudo-random generator (xoshiro256** seeded via
/// splitmix64). Every stochastic component in the library takes an explicit
/// seed so experiments are reproducible run-to-run.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 expansion of the seed into the 4-word state.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * 0x1.0p-53; }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextBounded(
                    static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Standard normal via Box-Muller.
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Zipf-distributed rank in [1, n] with exponent `s` (rejection-inversion).
  uint64_t NextZipf(uint64_t n, double s);

  /// True with probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace robopt

#endif  // ROBOPT_COMMON_RNG_H_
