#ifndef ROBOPT_COMMON_THREAD_POOL_H_
#define ROBOPT_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace robopt {

/// Fixed-size worker pool with one blocking primitive: ParallelFor over a
/// contiguous index range. Built for the enumerator's hot path, so the
/// design constraints are determinism and zero surprises rather than
/// generality:
///
///   - The *chunking* of [begin, end) depends only on (begin, end, grain,
///     max_shards) — never on scheduling — so any code that writes chunk k's
///     results to a chunk-derived location produces bit-identical output for
///     every thread count.
///   - The calling thread participates in the work; a pool of N threads plus
///     the caller executes up to N+1 chunks concurrently.
///   - Calls are serialized: one ParallelFor runs at a time. A nested call
///     from inside a worker chunk degrades to an inline serial loop instead
///     of deadlocking.
///   - ParallelFor does not return until every chunk has finished *and*
///     every worker has left the job, so job state can be republished
///     without racing stale workers.
class ThreadPool {
 public:
  using RangeFn = std::function<void(size_t begin, size_t end)>;

  /// Spawns `num_threads - 1` workers (the caller is the extra thread).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads that can work on a job (workers + calling thread).
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Splits [begin, end) into at most `max_shards` contiguous chunks of at
  /// least `grain` indices each and runs `fn(chunk_begin, chunk_end)` on
  /// them concurrently. Blocks until the whole range is done. Falls back to
  /// a single inline `fn(begin, end)` when the range is too small to shard,
  /// when `max_shards <= 1`, or when called from inside a pool job.
  void ParallelFor(size_t begin, size_t end, size_t grain, int max_shards,
                   const RangeFn& fn);

  /// Process-wide pool sized to the hardware, created on first use.
  static ThreadPool& Global();

  /// max(1, std::thread::hardware_concurrency()).
  static int HardwareThreads();

 private:
  void WorkerLoop();
  /// Claims and runs chunks of the current job until none remain.
  void RunChunks();

  std::vector<std::thread> workers_;

  std::mutex call_mu_;  ///< Serializes ParallelFor callers.

  std::mutex mu_;  ///< Guards all job state below.
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  const RangeFn* fn_ = nullptr;
  std::vector<std::pair<size_t, size_t>> chunks_;
  size_t next_chunk_ = 0;
  size_t done_chunks_ = 0;
  size_t running_workers_ = 0;
  uint64_t epoch_ = 0;
  bool stop_ = false;
};

/// The serial/parallel switch the vector algebra uses: `num_threads <= 1`
/// runs `fn(begin, end)` inline (the exact serial code path, no pool, no
/// locks); otherwise dispatches to the global pool capped at `num_threads`
/// shards. Chunking is deterministic (see ThreadPool).
void ParallelFor(int num_threads, size_t begin, size_t end, size_t grain,
                 const ThreadPool::RangeFn& fn);

}  // namespace robopt

#endif  // ROBOPT_COMMON_THREAD_POOL_H_
