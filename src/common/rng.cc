#include "common/rng.h"

namespace robopt {

uint64_t Rng::NextZipf(uint64_t n, double s) {
  // Rejection-inversion sampling (Hörmann & Derflinger). Good enough for the
  // synthetic text generators; exactness of the tail is not required.
  if (n <= 1) return 1;
  if (s <= 1.001) s = 1.001;  // The sampler below requires s > 1.
  const double b = std::pow(2.0, s - 1.0);
  double x;
  double t;
  do {
    x = std::floor(std::pow(NextDouble(), -1.0 / (s - 1.0)));
    t = std::pow(1.0 + 1.0 / x, s - 1.0);
  } while (x > static_cast<double>(n) ||
           NextDouble() * x * (t - 1.0) * b > t * (b - 1.0));
  return static_cast<uint64_t>(x);
}

}  // namespace robopt
