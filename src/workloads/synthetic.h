#ifndef ROBOPT_WORKLOADS_SYNTHETIC_H_
#define ROBOPT_WORKLOADS_SYNTHETIC_H_

#include <cstdint>

#include "plan/logical_plan.h"

namespace robopt {

/// Synthetic plan generators for the scalability experiments (Table I,
/// Figs. 1, 9, 10) and for TDGEN's shape templates.

/// A linear pipeline of `num_ops` operators (source, mixed unary operators,
/// sink). Operator kinds, selectivities and UDF complexities are drawn
/// deterministically from `seed`. With `table_source`, the input is a
/// relational table (Postgres-style), which forces an Export conversion
/// before any non-relational operator.
LogicalPlan MakeSyntheticPipeline(int num_ops, double source_cardinality,
                                  uint64_t seed, bool table_source = false);

/// A left-deep join tree with `num_joins` joins (num_joins + 1 sources), a
/// per-branch filter/map, an aggregation and a sink — the Fig. 10 workload.
LogicalPlan MakeSyntheticJoinTree(int num_joins, double source_cardinality,
                                  uint64_t seed, bool table_sources = false);

/// An iterative plan: a preprocessing pipeline feeding a loop whose body
/// holds a broadcast, a (sometimes sampled) UDF stage and an aggregation —
/// the shape of the paper's ML workloads (k-means, SGD, pagerank).
LogicalPlan MakeSyntheticLoopPlan(int num_ops, double source_cardinality,
                                  int iterations, uint64_t seed);

}  // namespace robopt

#endif  // ROBOPT_WORKLOADS_SYNTHETIC_H_
