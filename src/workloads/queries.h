#ifndef ROBOPT_WORKLOADS_QUERIES_H_
#define ROBOPT_WORKLOADS_QUERIES_H_

#include "plan/logical_plan.h"

namespace robopt {

/// Builders for the paper's evaluation queries (Table II). Each returns a
/// validated logical plan whose source cardinalities reflect the requested
/// input size; operator counts match the paper's within the limits of the
/// operator catalog. The executor can run all of them for real via the
/// kernels registered by RegisterWorkloadKernels().

/// WordCount — count distinct words (6 operators), Wikipedia-style text.
LogicalPlan MakeWordCountPlan(double input_gb);

/// Word2NVec — word neighborhood vectors (14 operators), map-heavy with
/// quadratic UDFs.
LogicalPlan MakeWord2NVecPlan(double input_mb);

/// SimWords — clustering of similar words (26 operators), includes an
/// iterative clustering loop.
LogicalPlan MakeSimWordsPlan(double input_mb);

/// TPC-H Q1 — scan + aggregate (7 operators).
LogicalPlan MakeTpchQ1Plan(double input_gb);

/// TPC-H Q3 — 3-table join query (17 operators).
LogicalPlan MakeTpchQ3Plan(double input_gb);

/// Aggregate — the Fig. 2 / Fig. 11(d) scan-heavy aggregation.
LogicalPlan MakeAggregatePlan(double input_gb);

/// Join — the running example of Fig. 3 (customers x transactions, 9
/// operators). `table_sources` switches the two sources to Postgres tables
/// (the Fig. 13 scenario).
LogicalPlan MakeJoinPlan(double input_gb, bool table_sources = false);

/// K-means clustering (loop + broadcast; Fig. 12(a)).
LogicalPlan MakeKmeansPlan(double input_mb, int num_centroids,
                           int iterations);

/// Stochastic gradient descent (loop + sampler; Fig. 12(b)).
LogicalPlan MakeSgdPlan(double input_gb, int batch_size, int iterations);

/// CrocoPR — cross-community pagerank (22 operators; Figs. 11(h), 12(c-d)).
/// `from_postgres` stores the dirty input in a Postgres table that must be
/// cleaned before ranking (the Fig. 12(d) scenario).
LogicalPlan MakeCrocoPrPlan(double input_gb, int iterations,
                            bool from_postgres = false);

/// Registers the real execution kernels used by these queries (tokenize,
/// k-means assignment, gradient steps, pagerank contributions, ...) in
/// KernelRegistry::Global(). Idempotent.
void RegisterWorkloadKernels();

}  // namespace robopt

#endif  // ROBOPT_WORKLOADS_QUERIES_H_
