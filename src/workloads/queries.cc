#include "workloads/queries.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <map>
#include <string>

#include "common/check.h"
#include "exec/kernel.h"

namespace robopt {
namespace {

/// Adds a text-file source emitting `bytes / tuple_bytes` tuples.
OperatorId AddTextSource(LogicalPlan* plan, const std::string& name,
                         double bytes, double tuple_bytes) {
  LogicalOperator op;
  op.kind = LogicalOpKind::kTextFileSource;
  op.name = name;
  op.source_cardinality = std::max(1.0, bytes / tuple_bytes);
  op.tuple_bytes = tuple_bytes;
  return plan->Add(std::move(op));
}

OperatorId AddTableSource(LogicalPlan* plan, const std::string& name,
                          double bytes, double tuple_bytes) {
  LogicalOperator op;
  op.kind = LogicalOpKind::kTableSource;
  op.name = name;
  op.source_cardinality = std::max(1.0, bytes / tuple_bytes);
  op.tuple_bytes = tuple_bytes;
  return plan->Add(std::move(op));
}

OperatorId AddOp(LogicalPlan* plan, LogicalOpKind kind,
                 const std::string& name, OperatorId parent,
                 double selectivity, double tuple_bytes,
                 UdfComplexity udf = UdfComplexity::kLinear,
                 const std::string& kernel = "") {
  LogicalOperator op;
  op.kind = kind;
  op.name = name;
  op.selectivity = selectivity;
  op.tuple_bytes = tuple_bytes;
  op.udf = udf;
  op.kernel = kernel;
  const OperatorId id = plan->Add(std::move(op));
  plan->Connect(parent, id);
  return id;
}

}  // namespace

LogicalPlan MakeWordCountPlan(double input_gb) {
  LogicalPlan plan;
  const double bytes = input_gb * 1e9;
  OperatorId src = AddTextSource(&plan, "wikipedia", bytes, 80.0);
  OperatorId tok = AddOp(&plan, LogicalOpKind::kFlatMap, "tokenize", src,
                         /*selectivity=*/8.0, 12.0, UdfComplexity::kLinear,
                         "tokenize");
  OperatorId pair = AddOp(&plan, LogicalOpKind::kMap, "to_pair", tok, 1.0,
                          16.0, UdfComplexity::kLinear, "word_pair");
  OperatorId reduce = AddOp(&plan, LogicalOpKind::kReduceBy, "count", pair,
                            /*selectivity=*/0.01, 16.0);
  OperatorId fmt = AddOp(&plan, LogicalOpKind::kMap, "format", reduce, 1.0,
                         24.0);
  AddOp(&plan, LogicalOpKind::kCollectionSink, "sink", fmt, 1.0, 24.0,
        UdfComplexity::kNone);
  return plan;
}

LogicalPlan MakeWord2NVecPlan(double input_mb) {
  LogicalPlan plan;
  const double bytes = input_mb * 1e6;
  OperatorId cur = AddTextSource(&plan, "wikipedia", bytes, 100.0);
  cur = AddOp(&plan, LogicalOpKind::kFlatMap, "tokenize", cur, 10.0, 12.0,
              UdfComplexity::kLinear, "tokenize");
  cur = AddOp(&plan, LogicalOpKind::kFilter, "drop_stopwords", cur, 0.6, 12.0);
  cur = AddOp(&plan, LogicalOpKind::kMap, "window", cur, 1.0, 64.0,
              UdfComplexity::kQuadratic);
  cur = AddOp(&plan, LogicalOpKind::kMap, "neighbor_vector", cur, 1.0, 256.0,
              UdfComplexity::kQuadratic);
  cur = AddOp(&plan, LogicalOpKind::kReduceBy, "by_word", cur, 0.05, 256.0);
  cur = AddOp(&plan, LogicalOpKind::kMap, "normalize", cur, 1.0, 256.0,
              UdfComplexity::kQuadratic);
  cur = AddOp(&plan, LogicalOpKind::kFilter, "drop_rare", cur, 0.8, 256.0);
  cur = AddOp(&plan, LogicalOpKind::kMap, "project", cur, 1.0, 128.0);
  cur = AddOp(&plan, LogicalOpKind::kMap, "score", cur, 1.0, 128.0,
              UdfComplexity::kQuadratic);
  cur = AddOp(&plan, LogicalOpKind::kDistinct, "dedupe", cur, 0.95, 128.0);
  cur = AddOp(&plan, LogicalOpKind::kSort, "order", cur, 1.0, 128.0);
  cur = AddOp(&plan, LogicalOpKind::kMap, "label", cur, 1.0, 128.0);
  AddOp(&plan, LogicalOpKind::kCollectionSink, "sink", cur, 1.0, 128.0,
        UdfComplexity::kNone);
  return plan;  // 14 operators.
}

LogicalPlan MakeSimWordsPlan(double input_mb) {
  LogicalPlan plan;
  const double bytes = input_mb * 1e6;
  OperatorId cur = AddTextSource(&plan, "wikipedia", bytes, 100.0);
  cur = AddOp(&plan, LogicalOpKind::kFlatMap, "tokenize", cur, 10.0, 12.0,
              UdfComplexity::kLinear, "tokenize");
  cur = AddOp(&plan, LogicalOpKind::kFilter, "drop_stopwords", cur, 0.6, 12.0);
  cur = AddOp(&plan, LogicalOpKind::kMap, "clean", cur, 1.0, 12.0);
  cur = AddOp(&plan, LogicalOpKind::kMap, "neighbors", cur, 1.0, 64.0,
              UdfComplexity::kQuadratic);
  cur = AddOp(&plan, LogicalOpKind::kReduceBy, "merge_contexts", cur, 0.05,
              256.0);
  cur = AddOp(&plan, LogicalOpKind::kMap, "context_vector", cur, 1.0, 256.0,
              UdfComplexity::kQuadratic);
  cur = AddOp(&plan, LogicalOpKind::kFilter, "min_support", cur, 0.7, 256.0);
  cur = AddOp(&plan, LogicalOpKind::kMap, "tf_idf_weight", cur, 1.0, 256.0);
  OperatorId vectors =
      AddOp(&plan, LogicalOpKind::kCache, "cache_vectors", cur, 1.0, 256.0,
            UdfComplexity::kNone);

  // Iterative clustering of the word vectors (k-means style).
  LogicalOperator init;
  init.kind = LogicalOpKind::kCollectionSource;
  init.name = "init_centroids";
  init.source_cardinality = 100;
  init.tuple_bytes = 256.0;
  const OperatorId init_id = plan.Add(std::move(init));
  LogicalOperator begin;
  begin.kind = LogicalOpKind::kLoopBegin;
  begin.name = "cluster_loop";
  begin.loop_iterations = 10;
  begin.tuple_bytes = 256.0;
  const OperatorId begin_id = plan.Add(std::move(begin));
  plan.Connect(init_id, begin_id);
  OperatorId bcast = AddOp(&plan, LogicalOpKind::kBroadcast, "centroids",
                           begin_id, 1.0, 256.0, UdfComplexity::kNone);
  OperatorId assign = AddOp(&plan, LogicalOpKind::kMap, "assign", vectors, 1.0,
                            264.0, UdfComplexity::kQuadratic, "kmeans_assign");
  plan.ConnectBroadcast(bcast, assign);
  OperatorId update =
      AddOp(&plan, LogicalOpKind::kReduceBy, "update_centroids", assign, 1e-4,
            256.0, UdfComplexity::kLinear, "kmeans_update");
  LogicalOperator end;
  end.kind = LogicalOpKind::kLoopEnd;
  end.name = "cluster_loop_end";
  end.loop_begin = begin_id;
  end.tuple_bytes = 256.0;
  const OperatorId end_id = plan.Add(std::move(end));
  plan.Connect(update, end_id);

  // Post-processing: label each word vector with its cluster.
  OperatorId final_bcast =
      AddOp(&plan, LogicalOpKind::kBroadcast, "final_centroids", end_id, 1.0,
            256.0, UdfComplexity::kNone);
  OperatorId relabel = AddOp(&plan, LogicalOpKind::kMap, "relabel", vectors,
                             1.0, 264.0, UdfComplexity::kQuadratic,
                             "kmeans_assign");
  plan.ConnectBroadcast(final_bcast, relabel);
  OperatorId project =
      AddOp(&plan, LogicalOpKind::kMap, "project", relabel, 1.0, 32.0);
  OperatorId by_cluster =
      AddOp(&plan, LogicalOpKind::kReduceBy, "group_clusters", project, 0.01,
            64.0);
  OperatorId fmt =
      AddOp(&plan, LogicalOpKind::kMap, "format", by_cluster, 1.0, 64.0);
  OperatorId sorted =
      AddOp(&plan, LogicalOpKind::kSort, "order", fmt, 1.0, 64.0);
  OperatorId dedupe =
      AddOp(&plan, LogicalOpKind::kDistinct, "dedupe", sorted, 0.99, 64.0);
  OperatorId top =
      AddOp(&plan, LogicalOpKind::kFilter, "top", dedupe, 0.5, 64.0);
  OperatorId label2 =
      AddOp(&plan, LogicalOpKind::kMap, "annotate", top, 1.0, 72.0);
  AddOp(&plan, LogicalOpKind::kCollectionSink, "sink", label2, 1.0, 72.0,
        UdfComplexity::kNone);
  return plan;  // 26 operators.
}

LogicalPlan MakeTpchQ1Plan(double input_gb) {
  LogicalPlan plan;
  const double bytes = input_gb * 1e9;
  OperatorId src = AddTextSource(&plan, "lineitem", bytes, 120.0);
  OperatorId filter =
      AddOp(&plan, LogicalOpKind::kFilter, "shipdate", src, 0.97, 120.0);
  OperatorId parse =
      AddOp(&plan, LogicalOpKind::kMap, "compute", filter, 1.0, 48.0);
  OperatorId agg = AddOp(&plan, LogicalOpKind::kReduceBy,
                         "by_flag_status", parse, 1e-6, 64.0);
  OperatorId avg = AddOp(&plan, LogicalOpKind::kMap, "averages", agg, 1.0,
                         64.0);
  OperatorId sort =
      AddOp(&plan, LogicalOpKind::kSort, "order", avg, 1.0, 64.0);
  AddOp(&plan, LogicalOpKind::kCollectionSink, "sink", sort, 1.0, 64.0,
        UdfComplexity::kNone);
  return plan;  // 7 operators.
}

LogicalPlan MakeTpchQ3Plan(double input_gb) {
  LogicalPlan plan;
  const double bytes = input_gb * 1e9;
  // TPC-H size ratios: lineitem ~70%, orders ~20%, customer ~3%.
  OperatorId customer = AddTextSource(&plan, "customer", bytes * 0.03, 150.0);
  OperatorId c_filter = AddOp(&plan, LogicalOpKind::kFilter, "mktsegment",
                              customer, 0.2, 150.0);
  OperatorId c_proj =
      AddOp(&plan, LogicalOpKind::kMap, "c_project", c_filter, 1.0, 16.0);

  OperatorId orders = AddTextSource(&plan, "orders", bytes * 0.2, 110.0);
  OperatorId o_filter = AddOp(&plan, LogicalOpKind::kFilter, "orderdate",
                              orders, 0.48, 110.0);
  OperatorId o_proj =
      AddOp(&plan, LogicalOpKind::kMap, "o_project", o_filter, 1.0, 24.0);

  OperatorId lineitem = AddTextSource(&plan, "lineitem", bytes * 0.7, 120.0);
  OperatorId l_filter = AddOp(&plan, LogicalOpKind::kFilter, "shipdate",
                              lineitem, 0.54, 120.0);
  OperatorId l_proj =
      AddOp(&plan, LogicalOpKind::kMap, "l_project", l_filter, 1.0, 24.0);

  LogicalOperator join1;
  join1.kind = LogicalOpKind::kJoin;
  join1.name = "cust_orders";
  join1.selectivity = 0.2;  // Orders of matching customers.
  join1.tuple_bytes = 32.0;
  const OperatorId j1 = plan.Add(std::move(join1));
  plan.Connect(c_proj, j1);
  plan.Connect(o_proj, j1);
  OperatorId j1_proj = AddOp(&plan, LogicalOpKind::kMap, "co_project", j1,
                             1.0, 24.0);

  LogicalOperator join2;
  join2.kind = LogicalOpKind::kJoin;
  join2.name = "co_lineitem";
  join2.selectivity = 0.3;
  join2.tuple_bytes = 40.0;
  const OperatorId j2 = plan.Add(std::move(join2));
  plan.Connect(j1_proj, j2);
  plan.Connect(l_proj, j2);
  OperatorId j2_proj = AddOp(&plan, LogicalOpKind::kMap, "col_project", j2,
                             1.0, 32.0);

  OperatorId agg = AddOp(&plan, LogicalOpKind::kReduceBy, "by_order", j2_proj,
                         0.1, 32.0);
  OperatorId revenue =
      AddOp(&plan, LogicalOpKind::kMap, "revenue", agg, 1.0, 32.0);
  OperatorId sort =
      AddOp(&plan, LogicalOpKind::kSort, "order_by", revenue, 1.0, 32.0);
  AddOp(&plan, LogicalOpKind::kCollectionSink, "sink", sort, 1.0, 32.0,
        UdfComplexity::kNone);
  return plan;  // 17 operators.
}

LogicalPlan MakeAggregatePlan(double input_gb) {
  LogicalPlan plan;
  const double bytes = input_gb * 1e9;
  OperatorId src = AddTextSource(&plan, "events", bytes, 96.0);
  OperatorId parse =
      AddOp(&plan, LogicalOpKind::kMap, "parse", src, 1.0, 40.0);
  OperatorId filter =
      AddOp(&plan, LogicalOpKind::kFilter, "valid", parse, 0.5, 40.0);
  OperatorId agg = AddOp(&plan, LogicalOpKind::kReduceBy, "by_key", filter,
                         1e-3, 32.0);
  OperatorId fmt = AddOp(&plan, LogicalOpKind::kMap, "format", agg, 1.0, 32.0);
  AddOp(&plan, LogicalOpKind::kCollectionSink, "sink", fmt, 1.0, 32.0,
        UdfComplexity::kNone);
  return plan;  // 6 operators.
}

LogicalPlan MakeJoinPlan(double input_gb, bool table_sources) {
  LogicalPlan plan;
  const double bytes = input_gb * 1e9;
  // The Fig. 3 running example: transactions (large) x customers (small).
  OperatorId transactions =
      table_sources
          ? AddTableSource(&plan, "transactions", bytes * 0.95, 48.0)
          : AddTextSource(&plan, "transactions", bytes * 0.95, 48.0);
  OperatorId t_filter = AddOp(&plan, LogicalOpKind::kFilter, "month",
                              transactions, 0.08, 48.0);
  OperatorId customers =
      table_sources ? AddTableSource(&plan, "customers", bytes * 0.05, 120.0)
                    : AddTextSource(&plan, "customers", bytes * 0.05, 120.0);
  OperatorId c_filter = AddOp(&plan, LogicalOpKind::kFilter, "country",
                              customers, 0.1, 120.0);
  OperatorId c_proj = AddOp(&plan, LogicalOpKind::kProject, "project",
                            c_filter, 1.0, 16.0, UdfComplexity::kNone);
  LogicalOperator join;
  join.kind = LogicalOpKind::kJoin;
  join.name = "customer_id";
  join.selectivity = 0.5;
  join.tuple_bytes = 56.0;
  const OperatorId j = plan.Add(std::move(join));
  plan.Connect(t_filter, j);
  plan.Connect(c_proj, j);
  OperatorId agg = AddOp(&plan, LogicalOpKind::kReduceBy, "sum_and_count", j,
                         0.02, 32.0);
  OperatorId label =
      AddOp(&plan, LogicalOpKind::kMap, "label", agg, 1.0, 40.0);
  AddOp(&plan, LogicalOpKind::kCollectionSink, "sink", label, 1.0, 40.0,
        UdfComplexity::kNone);
  return plan;  // 9 operators (Fig. 3(a)).
}

LogicalPlan MakeKmeansPlan(double input_mb, int num_centroids,
                           int iterations) {
  LogicalPlan plan;
  const double point_bytes = 36.0;  // USCensus-style rows.
  const double points = std::max(1.0, input_mb * 1e6 / point_bytes);

  OperatorId src = AddTextSource(&plan, "points", input_mb * 1e6, point_bytes);
  LogicalOperator init;
  init.kind = LogicalOpKind::kCollectionSource;
  init.name = "init_centroids";
  init.source_cardinality = num_centroids;
  init.tuple_bytes = 64.0;
  const OperatorId init_id = plan.Add(std::move(init));

  LogicalOperator begin;
  begin.kind = LogicalOpKind::kLoopBegin;
  begin.name = "kmeans_loop";
  begin.loop_iterations = iterations;
  begin.tuple_bytes = 64.0;
  const OperatorId begin_id = plan.Add(std::move(begin));
  plan.Connect(init_id, begin_id);

  OperatorId bcast = AddOp(&plan, LogicalOpKind::kBroadcast, "centroids",
                           begin_id, 1.0, 64.0, UdfComplexity::kNone);
  OperatorId assign = AddOp(&plan, LogicalOpKind::kMap, "assign", src, 1.0,
                            44.0, UdfComplexity::kLinear, "kmeans_assign");
  plan.ConnectBroadcast(bcast, assign);
  LogicalOperator update;
  update.kind = LogicalOpKind::kReduceBy;
  update.name = "update_centroids";
  update.selectivity = std::min(1.0, num_centroids / points);
  update.tuple_bytes = 64.0;
  update.kernel = "kmeans_update";
  const OperatorId update_id = plan.Add(std::move(update));
  plan.Connect(assign, update_id);

  LogicalOperator end;
  end.kind = LogicalOpKind::kLoopEnd;
  end.name = "kmeans_loop_end";
  end.loop_begin = begin_id;
  end.tuple_bytes = 64.0;
  const OperatorId end_id = plan.Add(std::move(end));
  plan.Connect(update_id, end_id);

  AddOp(&plan, LogicalOpKind::kCollectionSink, "sink", end_id, 1.0, 64.0,
        UdfComplexity::kNone);
  return plan;  // 8 operators.
}

LogicalPlan MakeSgdPlan(double input_gb, int batch_size, int iterations) {
  LogicalPlan plan;
  const double sample_bytes = 28.0;  // HIGGS-style rows.
  OperatorId src =
      AddTextSource(&plan, "training_points", input_gb * 1e9, sample_bytes);

  LogicalOperator init;
  init.kind = LogicalOpKind::kCollectionSource;
  init.name = "init_weights";
  init.source_cardinality = 1;
  init.tuple_bytes = 256.0;
  const OperatorId init_id = plan.Add(std::move(init));

  LogicalOperator begin;
  begin.kind = LogicalOpKind::kLoopBegin;
  begin.name = "sgd_loop";
  begin.loop_iterations = iterations;
  begin.tuple_bytes = 256.0;
  const OperatorId begin_id = plan.Add(std::move(begin));
  plan.Connect(init_id, begin_id);

  OperatorId bcast = AddOp(&plan, LogicalOpKind::kBroadcast, "weights",
                           begin_id, 1.0, 256.0, UdfComplexity::kNone);

  LogicalOperator sample;
  sample.kind = LogicalOpKind::kSample;
  sample.name = "batch";
  sample.param = batch_size;
  sample.tuple_bytes = sample_bytes;
  const OperatorId sample_id = plan.Add(std::move(sample));
  plan.Connect(src, sample_id);
  // Loop-context edge: the sampler runs once per iteration even though its
  // data input is loop-invariant (Rheem models this via the loop context).
  plan.ConnectBroadcast(begin_id, sample_id);

  OperatorId grad = AddOp(&plan, LogicalOpKind::kMap, "gradient", sample_id,
                          1.0, 256.0, UdfComplexity::kLinear, "sgd_gradient");
  plan.ConnectBroadcast(bcast, grad);
  OperatorId sum = AddOp(&plan, LogicalOpKind::kGlobalReduce, "sum_gradients",
                         grad, 1.0, 256.0);
  OperatorId update = AddOp(&plan, LogicalOpKind::kMap, "update_weights", sum,
                            1.0, 256.0, UdfComplexity::kLinear, "sgd_update");
  plan.ConnectBroadcast(bcast, update);

  LogicalOperator end;
  end.kind = LogicalOpKind::kLoopEnd;
  end.name = "sgd_loop_end";
  end.loop_begin = begin_id;
  end.tuple_bytes = 256.0;
  const OperatorId end_id = plan.Add(std::move(end));
  plan.Connect(update, end_id);

  AddOp(&plan, LogicalOpKind::kCollectionSink, "sink", end_id, 1.0, 256.0,
        UdfComplexity::kNone);
  return plan;  // 10 operators.
}

LogicalPlan MakeCrocoPrPlan(double input_gb, int iterations,
                            bool from_postgres) {
  LogicalPlan plan;
  const double edge_bytes = 40.0;
  const double bytes = input_gb * 1e9;
  OperatorId src = from_postgres
                       ? AddTableSource(&plan, "dbpedia_links", bytes,
                                        edge_bytes)
                       : AddTextSource(&plan, "dbpedia_links", bytes,
                                       edge_bytes);
  // Preprocessing / cleaning.
  OperatorId no_nulls =
      AddOp(&plan, LogicalOpKind::kFilter, "drop_nulls", src, 0.95,
            edge_bytes, UdfComplexity::kNone);
  OperatorId parse = AddOp(&plan, LogicalOpKind::kFlatMap, "parse_links",
                           no_nulls, 1.0, 24.0);
  OperatorId clean =
      AddOp(&plan, LogicalOpKind::kMap, "normalize_uris", parse, 1.0, 24.0);
  OperatorId no_self = AddOp(&plan, LogicalOpKind::kFilter, "drop_self_loops",
                             clean, 0.99, 24.0, UdfComplexity::kNone);
  OperatorId dedupe =
      AddOp(&plan, LogicalOpKind::kDistinct, "dedupe_edges", no_self, 0.9,
            24.0);
  OperatorId encode = AddOp(&plan, LogicalOpKind::kMap, "encode_ints", dedupe,
                            1.0, 12.0);
  OperatorId edges = AddOp(&plan, LogicalOpKind::kCache, "cache_edges",
                           encode, 1.0, 12.0, UdfComplexity::kNone);

  // Rank initialization over the node set.
  OperatorId nodes = AddOp(&plan, LogicalOpKind::kReduceBy, "node_set", edges,
                           0.1, 12.0);
  OperatorId init_ranks = AddOp(&plan, LogicalOpKind::kMap, "init_ranks",
                                nodes, 1.0, 16.0);

  // PageRank loop.
  LogicalOperator begin;
  begin.kind = LogicalOpKind::kLoopBegin;
  begin.name = "pagerank_loop";
  begin.loop_iterations = iterations;
  begin.tuple_bytes = 16.0;
  const OperatorId begin_id = plan.Add(std::move(begin));
  plan.Connect(init_ranks, begin_id);

  LogicalOperator join;
  join.kind = LogicalOpKind::kJoin;
  join.name = "edges_ranks";
  join.selectivity = 1.0;
  join.tuple_bytes = 24.0;
  const OperatorId join_id = plan.Add(std::move(join));
  plan.Connect(edges, join_id);
  plan.Connect(begin_id, join_id);

  OperatorId contrib =
      AddOp(&plan, LogicalOpKind::kFlatMap, "contributions", join_id, 1.0,
            16.0, UdfComplexity::kLinear, "pr_contrib");
  OperatorId sum = AddOp(&plan, LogicalOpKind::kReduceBy, "sum_by_target",
                         contrib, 0.1, 16.0);
  OperatorId damp = AddOp(&plan, LogicalOpKind::kMap, "damping", sum, 1.0,
                          16.0, UdfComplexity::kLinear, "pr_damping");

  LogicalOperator end;
  end.kind = LogicalOpKind::kLoopEnd;
  end.name = "pagerank_loop_end";
  end.loop_begin = begin_id;
  end.tuple_bytes = 16.0;
  const OperatorId end_id = plan.Add(std::move(end));
  plan.Connect(damp, end_id);

  // Post-processing.
  OperatorId decode =
      AddOp(&plan, LogicalOpKind::kMap, "decode_uris", end_id, 1.0, 32.0);
  OperatorId cross_comm = AddOp(&plan, LogicalOpKind::kFilter,
                                "cross_community", decode, 0.3, 32.0);
  OperatorId sorted =
      AddOp(&plan, LogicalOpKind::kSort, "by_rank", cross_comm, 1.0, 32.0);
  OperatorId top =
      AddOp(&plan, LogicalOpKind::kFilter, "top_k", sorted, 0.01, 32.0,
            UdfComplexity::kNone);
  OperatorId fmt = AddOp(&plan, LogicalOpKind::kMap, "format", top, 1.0, 48.0);
  AddOp(&plan, LogicalOpKind::kCollectionSink, "sink", fmt, 1.0, 48.0,
        UdfComplexity::kNone);
  return plan;  // 22 operators.
}

void RegisterWorkloadKernels() {
  static bool registered = false;
  if (registered) return;
  registered = true;
  KernelRegistry& registry = KernelRegistry::Global();

  registry.Register("tokenize", [](const KernelContext& ctx)
                                    -> StatusOr<Dataset> {
    const Dataset& in = *ctx.inputs[0];
    std::vector<Record> rows;
    rows.reserve(in.rows.size() * 8);
    for (const Record& line : in.rows) {
      size_t pos = 0;
      while (pos < line.text.size()) {
        size_t start = line.text.find_first_not_of(' ', pos);
        if (start == std::string::npos) break;
        size_t end = line.text.find(' ', start);
        if (end == std::string::npos) end = line.text.size();
        Record word;
        word.text = line.text.substr(start, end - start);
        word.key = static_cast<int64_t>(
            std::hash<std::string>{}(word.text));
        rows.push_back(std::move(word));
        pos = end;
      }
    }
    const double virt = ScaleVirtual(in.virtual_cardinality, in.rows.size(),
                                     rows.size(), ctx.op->selectivity);
    Dataset out;
    out.rows = std::move(rows);
    out.virtual_cardinality = virt;
    out.tuple_bytes = ctx.op->tuple_bytes;
    return out;
  });

  registry.Register("word_pair", [](const KernelContext& ctx)
                                     -> StatusOr<Dataset> {
    const Dataset& in = *ctx.inputs[0];
    Dataset out;
    out.rows.reserve(in.rows.size());
    for (const Record& word : in.rows) {
      Record pair = word;
      pair.num = 1.0;
      out.rows.push_back(std::move(pair));
    }
    out.virtual_cardinality = in.virtual_cardinality;
    out.tuple_bytes = ctx.op->tuple_bytes;
    return out;
  });

  registry.Register("kmeans_assign", [](const KernelContext& ctx)
                                         -> StatusOr<Dataset> {
    if (ctx.side_inputs.empty()) {
      return Status::FailedPrecondition("kmeans_assign needs centroids");
    }
    const Dataset& points = *ctx.inputs[0];
    const Dataset& centroids = *ctx.side_inputs[0];
    Dataset out;
    out.rows.reserve(points.rows.size());
    for (const Record& point : points.rows) {
      double best = std::numeric_limits<double>::infinity();
      int64_t best_idx = 0;
      for (size_t c = 0; c < centroids.rows.size(); ++c) {
        const auto& center = centroids.rows[c].vec;
        double dist = 0.0;
        const size_t dim = std::min(center.size(), point.vec.size());
        for (size_t d = 0; d < dim; ++d) {
          const double delta = point.vec[d] - center[d];
          dist += delta * delta;
        }
        if (dist < best) {
          best = dist;
          best_idx = static_cast<int64_t>(c);
        }
      }
      Record assigned = point;
      assigned.key = best_idx;
      assigned.num = 1.0;
      out.rows.push_back(std::move(assigned));
    }
    out.virtual_cardinality = points.virtual_cardinality;
    out.tuple_bytes = ctx.op->tuple_bytes;
    return out;
  });

  registry.Register("kmeans_update", [](const KernelContext& ctx)
                                         -> StatusOr<Dataset> {
    const Dataset& assigned = *ctx.inputs[0];
    std::map<int64_t, std::pair<std::vector<double>, double>> sums;
    for (const Record& r : assigned.rows) {
      auto& [sum, count] = sums[r.key];
      if (sum.size() < r.vec.size()) sum.resize(r.vec.size(), 0.0);
      for (size_t d = 0; d < r.vec.size(); ++d) sum[d] += r.vec[d];
      count += 1.0;
    }
    Dataset out;
    for (auto& [key, entry] : sums) {
      Record centroid;
      centroid.key = key;
      centroid.vec = entry.first;
      if (entry.second > 0) {
        for (double& v : centroid.vec) v /= entry.second;
      }
      out.rows.push_back(std::move(centroid));
    }
    out.virtual_cardinality = static_cast<double>(out.rows.size());
    out.tuple_bytes = ctx.op->tuple_bytes;
    return out;
  });

  registry.Register("sgd_gradient", [](const KernelContext& ctx)
                                        -> StatusOr<Dataset> {
    if (ctx.side_inputs.empty() || ctx.side_inputs[0]->rows.empty()) {
      return Status::FailedPrecondition("sgd_gradient needs weights");
    }
    const Dataset& batch = *ctx.inputs[0];
    const std::vector<double>& weights = ctx.side_inputs[0]->rows[0].vec;
    Dataset out;
    out.rows.reserve(batch.rows.size());
    for (const Record& sample : batch.rows) {
      double prediction = 0.0;
      const size_t dim = std::min(weights.size(), sample.vec.size());
      for (size_t d = 0; d < dim; ++d) {
        prediction += weights[d] * sample.vec[d];
      }
      const double error = prediction - sample.num;  // Squared loss.
      Record grad;
      grad.vec.resize(weights.size(), 0.0);
      for (size_t d = 0; d < dim; ++d) grad.vec[d] = error * sample.vec[d];
      grad.num = 1.0;
      out.rows.push_back(std::move(grad));
    }
    out.virtual_cardinality = batch.virtual_cardinality;
    out.tuple_bytes = ctx.op->tuple_bytes;
    return out;
  });

  registry.Register("sgd_update", [](const KernelContext& ctx)
                                      -> StatusOr<Dataset> {
    if (ctx.side_inputs.empty() || ctx.side_inputs[0]->rows.empty()) {
      return Status::FailedPrecondition("sgd_update needs weights");
    }
    const Dataset& grad_sum = *ctx.inputs[0];
    const Record& weights = ctx.side_inputs[0]->rows[0];
    Record updated = weights;
    if (!grad_sum.rows.empty()) {
      const Record& grad = grad_sum.rows[0];
      const double count = std::max(grad.num, 1.0);
      const double learning_rate = 0.1;
      if (updated.vec.size() < grad.vec.size()) {
        updated.vec.resize(grad.vec.size(), 0.0);
      }
      for (size_t d = 0; d < grad.vec.size(); ++d) {
        updated.vec[d] -= learning_rate * grad.vec[d] / count;
      }
    }
    Dataset out;
    out.rows.push_back(std::move(updated));
    out.virtual_cardinality = 1.0;
    out.tuple_bytes = ctx.op->tuple_bytes;
    return out;
  });

  registry.Register("pr_contrib", [](const KernelContext& ctx)
                                      -> StatusOr<Dataset> {
    const Dataset& joined = *ctx.inputs[0];
    Dataset out;
    out.rows.reserve(joined.rows.size());
    for (const Record& edge_rank : joined.rows) {
      Record contrib;
      // Joined rows carry target id in `key` (see the Join kernel) and the
      // source rank in `num`.
      contrib.key = edge_rank.key;
      contrib.num = edge_rank.num * 0.5;
      out.rows.push_back(std::move(contrib));
    }
    out.virtual_cardinality = joined.virtual_cardinality;
    out.tuple_bytes = ctx.op->tuple_bytes;
    return out;
  });

  registry.Register("pr_damping", [](const KernelContext& ctx)
                                      -> StatusOr<Dataset> {
    const Dataset& in = *ctx.inputs[0];
    Dataset out;
    out.rows.reserve(in.rows.size());
    const double n = std::max(in.virtual_cardinality, 1.0);
    for (const Record& r : in.rows) {
      Record ranked = r;
      ranked.num = 0.15 / n + 0.85 * r.num;
      out.rows.push_back(std::move(ranked));
    }
    out.virtual_cardinality = in.virtual_cardinality;
    out.tuple_bytes = ctx.op->tuple_bytes;
    return out;
  });
}

}  // namespace robopt
