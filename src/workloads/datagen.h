#ifndef ROBOPT_WORKLOADS_DATAGEN_H_
#define ROBOPT_WORKLOADS_DATAGEN_H_

#include <cstdint>

#include "exec/record.h"

namespace robopt {

/// Synthetic dataset generators standing in for the paper's corpora
/// (Wikipedia, TPC-H, USCensus1990, HIGGS, DBpedia). Each produces a
/// physical sample of at most `cap` rows representing `virtual_rows`
/// tuples; kernels compute on the sample, the virtual clock charges the
/// full size (see DESIGN.md substitutions).

/// Zipfian text lines (Wikipedia stand-in): `words_per_line` words drawn
/// from a vocabulary of `vocab` words.
Dataset GenerateTextLines(double virtual_rows, size_t cap, uint64_t seed,
                          int words_per_line = 8, int vocab = 20000);

/// Keyed transaction rows (key = customer id, num = amount, text = month).
Dataset GenerateTransactions(double virtual_rows, size_t cap, uint64_t seed,
                             int num_customers = 1000);

/// Customer rows (key = customer id, text = country).
Dataset GenerateCustomers(double virtual_rows, size_t cap, uint64_t seed);

/// Points from `clusters` Gaussian blobs in `dim` dimensions (USCensus
/// stand-in for K-means).
Dataset GeneratePoints(double virtual_rows, size_t cap, uint64_t seed,
                       int dim = 4, int clusters = 3);

/// Labeled samples y = w*x + noise (HIGGS stand-in for SGD).
Dataset GenerateLabeledSamples(double virtual_rows, size_t cap, uint64_t seed,
                               int dim = 4);

/// Directed edges of a power-law-ish graph (DBpedia stand-in): key = source
/// node, num = target node.
Dataset GenerateEdges(double virtual_rows, size_t cap, uint64_t seed,
                      int64_t num_nodes = 10000);

/// `k` random centroids in `dim` dimensions (k-means initialization).
Dataset MakeCentroids(int k, int dim, uint64_t seed);

/// A single zero weight vector of `dim` dimensions (SGD initialization).
Dataset MakeInitialWeights(int dim);

}  // namespace robopt

#endif  // ROBOPT_WORKLOADS_DATAGEN_H_
