#include "workloads/synthetic.h"

#include <string>

#include "common/check.h"
#include "common/rng.h"

namespace robopt {
namespace {

/// Unary operator kinds a synthetic pipeline draws from.
constexpr LogicalOpKind kPipelineKinds[] = {
    LogicalOpKind::kMap,    LogicalOpKind::kFilter,
    LogicalOpKind::kMap,    LogicalOpKind::kFlatMap,
    LogicalOpKind::kMap,    LogicalOpKind::kReduceBy,
    LogicalOpKind::kFilter, LogicalOpKind::kSort,
};

UdfComplexity DrawComplexity(Rng* rng) {
  const double p = rng->NextDouble();
  if (p < 0.15) return UdfComplexity::kLogarithmic;
  if (p < 0.8) return UdfComplexity::kLinear;
  if (p < 0.95) return UdfComplexity::kQuadratic;
  return UdfComplexity::kSuperQuadratic;
}

double DrawSelectivity(LogicalOpKind kind, Rng* rng) {
  switch (kind) {
    case LogicalOpKind::kFilter:
      return rng->NextUniform(0.05, 0.95);
    case LogicalOpKind::kFlatMap:
      return rng->NextUniform(1.0, 6.0);
    case LogicalOpKind::kReduceBy:
      return rng->NextUniform(0.001, 0.3);
    default:
      return 1.0;
  }
}

}  // namespace

LogicalPlan MakeSyntheticPipeline(int num_ops, double source_cardinality,
                                  uint64_t seed, bool table_source) {
  ROBOPT_CHECK(num_ops >= 3);
  Rng rng(seed);
  LogicalPlan plan;
  LogicalOperator source;
  source.kind = table_source ? LogicalOpKind::kTableSource
                             : LogicalOpKind::kTextFileSource;
  source.name = "src";
  source.source_cardinality = source_cardinality;
  source.tuple_bytes = 64.0;
  OperatorId prev = plan.Add(std::move(source));
  for (int i = 0; i < num_ops - 2; ++i) {
    const LogicalOpKind kind =
        kPipelineKinds[rng.NextBounded(std::size(kPipelineKinds))];
    LogicalOperator op;
    op.kind = kind;
    op.name = "op" + std::to_string(i);
    op.udf = DrawComplexity(&rng);
    op.selectivity = DrawSelectivity(kind, &rng);
    op.tuple_bytes = rng.NextUniform(8.0, 128.0);
    const OperatorId id = plan.Add(std::move(op));
    plan.Connect(prev, id);
    prev = id;
  }
  LogicalOperator sink;
  sink.kind = LogicalOpKind::kCollectionSink;
  sink.name = "sink";
  sink.tuple_bytes = 32.0;
  const OperatorId sink_id = plan.Add(std::move(sink));
  plan.Connect(prev, sink_id);
  return plan;
}

LogicalPlan MakeSyntheticJoinTree(int num_joins, double source_cardinality,
                                  uint64_t seed, bool table_sources) {
  ROBOPT_CHECK(num_joins >= 1);
  Rng rng(seed);
  LogicalPlan plan;

  auto add_branch = [&](int index) {
    LogicalOperator source;
    // With table sources, odd branches stay in the DBMS (a polystore mix).
    source.kind = (table_sources && index % 2 == 1)
                      ? LogicalOpKind::kTableSource
                      : LogicalOpKind::kTextFileSource;
    source.name = "src" + std::to_string(index);
    source.source_cardinality =
        source_cardinality * rng.NextUniform(0.2, 1.0);
    source.tuple_bytes = 64.0;
    const OperatorId src = plan.Add(std::move(source));
    LogicalOperator filter;
    filter.kind = LogicalOpKind::kFilter;
    filter.name = "filter" + std::to_string(index);
    filter.selectivity = rng.NextUniform(0.1, 0.9);
    filter.tuple_bytes = 48.0;
    const OperatorId f = plan.Add(std::move(filter));
    plan.Connect(src, f);
    return f;
  };

  OperatorId left = add_branch(0);
  for (int j = 0; j < num_joins; ++j) {
    const OperatorId right = add_branch(j + 1);
    LogicalOperator join;
    join.kind = LogicalOpKind::kJoin;
    join.name = "join" + std::to_string(j);
    join.selectivity = rng.NextUniform(0.2, 1.0);
    join.tuple_bytes = 72.0;
    const OperatorId id = plan.Add(std::move(join));
    plan.Connect(left, id);
    plan.Connect(right, id);
    left = id;
  }
  LogicalOperator agg;
  agg.kind = LogicalOpKind::kReduceBy;
  agg.name = "aggregate";
  agg.selectivity = 0.05;
  agg.tuple_bytes = 32.0;
  const OperatorId agg_id = plan.Add(std::move(agg));
  plan.Connect(left, agg_id);
  LogicalOperator sink;
  sink.kind = LogicalOpKind::kCollectionSink;
  sink.name = "sink";
  sink.tuple_bytes = 32.0;
  const OperatorId sink_id = plan.Add(std::move(sink));
  plan.Connect(agg_id, sink_id);
  return plan;
}

LogicalPlan MakeSyntheticLoopPlan(int num_ops, double source_cardinality,
                                  int iterations, uint64_t seed) {
  ROBOPT_CHECK(num_ops >= 9);
  Rng rng(seed);
  LogicalPlan plan;

  LogicalOperator source;
  source.kind = LogicalOpKind::kTextFileSource;
  source.name = "data";
  source.source_cardinality = source_cardinality;
  source.tuple_bytes = 48.0;
  OperatorId data = plan.Add(std::move(source));
  // Preprocessing pipeline consumes the operator budget beyond the fixed
  // 8-operator loop skeleton.
  const int preprocess = num_ops - 8;
  for (int i = 0; i < preprocess; ++i) {
    const LogicalOpKind kind =
        kPipelineKinds[rng.NextBounded(std::size(kPipelineKinds))];
    LogicalOperator op;
    op.kind = kind;
    op.name = "prep" + std::to_string(i);
    op.udf = DrawComplexity(&rng);
    op.selectivity = DrawSelectivity(kind, &rng);
    op.tuple_bytes = rng.NextUniform(8.0, 96.0);
    const OperatorId id = plan.Add(std::move(op));
    plan.Connect(data, id);
    data = id;
  }

  LogicalOperator init;
  init.kind = LogicalOpKind::kCollectionSource;
  init.name = "state0";
  init.source_cardinality = rng.NextUniform(1.0, 1000.0);
  init.tuple_bytes = 64.0;
  const OperatorId init_id = plan.Add(std::move(init));

  LogicalOperator begin;
  begin.kind = LogicalOpKind::kLoopBegin;
  begin.name = "loop";
  begin.loop_iterations = iterations;
  begin.tuple_bytes = 64.0;
  const OperatorId begin_id = plan.Add(std::move(begin));
  plan.Connect(init_id, begin_id);

  LogicalOperator bcast;
  bcast.kind = LogicalOpKind::kBroadcast;
  bcast.name = "state";
  bcast.tuple_bytes = 64.0;
  const OperatorId bcast_id = plan.Add(std::move(bcast));
  plan.Connect(begin_id, bcast_id);

  // Half the loop plans read the invariant data through a per-iteration
  // sampler (the SGD pattern), half map over all of it (the k-means
  // pattern).
  OperatorId body_in = data;
  const bool sampled = rng.NextBernoulli(0.5);
  if (sampled) {
    LogicalOperator sample;
    sample.kind = LogicalOpKind::kSample;
    sample.name = "batch";
    sample.param = rng.NextUniform(1.0, 1000.0);
    sample.tuple_bytes = 48.0;
    const OperatorId sample_id = plan.Add(std::move(sample));
    plan.Connect(body_in, sample_id);
    plan.ConnectBroadcast(begin_id, sample_id);
    body_in = sample_id;
  }

  LogicalOperator udf;
  udf.kind = LogicalOpKind::kMap;
  udf.name = "body_udf";
  udf.udf = DrawComplexity(&rng);
  udf.tuple_bytes = 64.0;
  const OperatorId udf_id = plan.Add(std::move(udf));
  plan.Connect(body_in, udf_id);
  plan.ConnectBroadcast(bcast_id, udf_id);

  LogicalOperator agg;
  agg.kind = sampled ? LogicalOpKind::kGlobalReduce : LogicalOpKind::kReduceBy;
  agg.name = "state_update";
  agg.selectivity = rng.NextUniform(1e-4, 1e-2);
  agg.tuple_bytes = 64.0;
  const OperatorId agg_id = plan.Add(std::move(agg));
  plan.Connect(udf_id, agg_id);

  LogicalOperator end;
  end.kind = LogicalOpKind::kLoopEnd;
  end.name = "loop_end";
  end.loop_begin = begin_id;
  end.tuple_bytes = 64.0;
  const OperatorId end_id = plan.Add(std::move(end));
  plan.Connect(agg_id, end_id);

  // When the preprocessing budget left room, the skeleton is 8 ops and the
  // sampler makes 9; keep a sink either way.
  LogicalOperator sink;
  sink.kind = LogicalOpKind::kCollectionSink;
  sink.name = "sink";
  sink.tuple_bytes = 64.0;
  const OperatorId sink_id = plan.Add(std::move(sink));
  plan.Connect(end_id, sink_id);
  return plan;
}

}  // namespace robopt
