#include "workloads/datagen.h"

#include <algorithm>
#include <string>

#include "common/rng.h"

namespace robopt {
namespace {

size_t PhysicalRows(double virtual_rows, size_t cap) {
  return static_cast<size_t>(
      std::min(virtual_rows, static_cast<double>(cap)));
}

Dataset Finish(std::vector<Record> rows, double virtual_rows,
               double tuple_bytes) {
  Dataset out;
  out.rows = std::move(rows);
  out.virtual_cardinality = std::max(
      virtual_rows, static_cast<double>(out.rows.size()));
  out.tuple_bytes = tuple_bytes;
  return out;
}

}  // namespace

Dataset GenerateTextLines(double virtual_rows, size_t cap, uint64_t seed,
                          int words_per_line, int vocab) {
  Rng rng(seed);
  const size_t n = PhysicalRows(virtual_rows, cap);
  std::vector<Record> rows(n);
  for (size_t i = 0; i < n; ++i) {
    std::string line;
    for (int w = 0; w < words_per_line; ++w) {
      if (w > 0) line += ' ';
      line += "w" + std::to_string(rng.NextZipf(vocab, 1.3));
    }
    rows[i].text = std::move(line);
    rows[i].key = static_cast<int64_t>(i);
  }
  return Finish(std::move(rows), virtual_rows, 80.0);
}

Dataset GenerateTransactions(double virtual_rows, size_t cap, uint64_t seed,
                             int num_customers) {
  Rng rng(seed);
  const size_t n = PhysicalRows(virtual_rows, cap);
  std::vector<Record> rows(n);
  static const char* kMonths[] = {"jan", "feb", "mar", "apr", "may", "jun",
                                  "jul", "aug", "sep", "oct", "nov", "dec"};
  for (size_t i = 0; i < n; ++i) {
    rows[i].key = static_cast<int64_t>(rng.NextBounded(num_customers));
    rows[i].num = rng.NextUniform(1.0, 500.0);
    rows[i].text = kMonths[rng.NextBounded(12)];
  }
  return Finish(std::move(rows), virtual_rows, 48.0);
}

Dataset GenerateCustomers(double virtual_rows, size_t cap, uint64_t seed) {
  Rng rng(seed);
  const size_t n = PhysicalRows(virtual_rows, cap);
  std::vector<Record> rows(n);
  static const char* kCountries[] = {"DE", "QA", "US", "FR", "GR", "MX",
                                     "BR", "JP", "IN", "ES"};
  for (size_t i = 0; i < n; ++i) {
    rows[i].key = static_cast<int64_t>(i);
    rows[i].text = kCountries[rng.NextBounded(10)];
  }
  return Finish(std::move(rows), virtual_rows, 120.0);
}

Dataset GeneratePoints(double virtual_rows, size_t cap, uint64_t seed,
                       int dim, int clusters) {
  Rng rng(seed);
  // Cluster centers on a grid.
  std::vector<std::vector<double>> centers(clusters,
                                           std::vector<double>(dim));
  for (auto& center : centers) {
    for (double& x : center) x = rng.NextUniform(-10.0, 10.0);
  }
  const size_t n = PhysicalRows(virtual_rows, cap);
  std::vector<Record> rows(n);
  for (size_t i = 0; i < n; ++i) {
    const auto& center = centers[rng.NextBounded(clusters)];
    rows[i].vec.resize(dim);
    for (int d = 0; d < dim; ++d) {
      rows[i].vec[d] = center[d] + rng.NextGaussian();
    }
    rows[i].key = static_cast<int64_t>(i);
  }
  return Finish(std::move(rows), virtual_rows, 36.0);
}

Dataset GenerateLabeledSamples(double virtual_rows, size_t cap, uint64_t seed,
                               int dim) {
  Rng rng(seed);
  std::vector<double> truth(dim);
  for (double& w : truth) w = rng.NextUniform(-2.0, 2.0);
  const size_t n = PhysicalRows(virtual_rows, cap);
  std::vector<Record> rows(n);
  for (size_t i = 0; i < n; ++i) {
    rows[i].vec.resize(dim);
    double y = 0.0;
    for (int d = 0; d < dim; ++d) {
      rows[i].vec[d] = rng.NextUniform(-1.0, 1.0);
      y += truth[d] * rows[i].vec[d];
    }
    rows[i].num = y + 0.01 * rng.NextGaussian();
    rows[i].key = static_cast<int64_t>(i);
  }
  return Finish(std::move(rows), virtual_rows, 28.0);
}

Dataset GenerateEdges(double virtual_rows, size_t cap, uint64_t seed,
                      int64_t num_nodes) {
  Rng rng(seed);
  const size_t n = PhysicalRows(virtual_rows, cap);
  std::vector<Record> rows(n);
  for (size_t i = 0; i < n; ++i) {
    // Power-law-ish in-degree via Zipf targets.
    rows[i].key = static_cast<int64_t>(rng.NextBounded(num_nodes));
    rows[i].num = static_cast<double>(
        rng.NextZipf(static_cast<uint64_t>(num_nodes), 1.5) - 1);
    rows[i].text = "link";
  }
  return Finish(std::move(rows), virtual_rows, 40.0);
}

Dataset MakeCentroids(int k, int dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<Record> rows(k);
  for (int c = 0; c < k; ++c) {
    rows[c].key = c;
    rows[c].vec.resize(dim);
    for (int d = 0; d < dim; ++d) rows[c].vec[d] = rng.NextUniform(-10, 10);
  }
  return Finish(std::move(rows), k, 64.0);
}

Dataset MakeInitialWeights(int dim) {
  std::vector<Record> rows(1);
  rows[0].vec.assign(dim, 0.0);
  return Finish(std::move(rows), 1, 256.0);
}

}  // namespace robopt
