#ifndef ROBOPT_OBS_TRACE_H_
#define ROBOPT_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

namespace robopt {

class MetricsRegistry;

/// One completed span. POD-sized so a ring slot write is a plain struct
/// copy; `name` and the arg names must point at static storage (string
/// literals / enum name tables) — the ring never owns strings.
///
/// Two clock domains (see DESIGN.md, "Observability"):
///   - wall: microseconds since the tracer's epoch (steady_clock — never
///     steps backwards under NTP slew);
///   - virtual: the executor's simulated-platform clock, in seconds.
///     `virt_start_s < 0` means the span carries no virtual interval.
struct SpanRecord {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  ///< 0 = root span of its trace.
  std::string_view name;
  double start_us = 0.0;  ///< Wall, micros since tracer epoch.
  double dur_us = 0.0;
  double virt_start_s = -1.0;  ///< Virtual-clock interval; < 0 = none.
  double virt_dur_s = 0.0;
  uint32_t tid = 0;  ///< Recording thread (stable small index).
  /// Up to two numeric args (-1 = unset), e.g. rows in/out of a prune.
  std::string_view arg_name_a;
  std::string_view arg_name_b;
  int64_t arg_a = -1;
  int64_t arg_b = -1;
};

/// Bounded lock-free span recorder: a fixed ring of slots claimed by an
/// atomic ticket. Tracing can therefore stay on in serving — a Record() is
/// a ticket fetch_add, one CAS to take the slot, a struct copy and a
/// release store; it never blocks and never allocates. When the ring wraps,
/// the oldest spans are overwritten; if a writer collides with a concurrent
/// writer or an in-flight Collect() on the *same slot* (only possible after
/// wrapping a full ring mid-operation), the span is dropped and counted
/// rather than waited for.
///
/// Collect() is the slow path (export): it copies out every readable slot
/// and orders them by ticket, i.e. by record completion order.
class Tracer {
 public:
  /// `capacity` is rounded up to a power of two slots.
  explicit Tracer(size_t capacity = 8192);

  /// Allocates a fresh trace id (1, 2, ...).
  uint64_t NewTrace() {
    return next_trace_.fetch_add(1, std::memory_order_relaxed) ;
  }
  /// Allocates a fresh span id, unique within this tracer.
  uint64_t NewSpanId() {
    return next_span_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Wall micros since the tracer's epoch (steady clock).
  double NowMicros() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// Records one completed span into the ring (lock-free, wait-free for
  /// writers up to the drop-on-collision rule above).
  void Record(const SpanRecord& record);

  /// Snapshot of every live span, ordered oldest-to-newest. `trace_id`
  /// filters to one trace (0 = all).
  std::vector<SpanRecord> Collect(uint64_t trace_id = 0) const;

  size_t capacity() const { return capacity_; }
  /// Spans lost: ring-wrap overwrites are *not* drops (the ring is a
  /// bounded retention window by design); this counts only writer/reader
  /// slot collisions.
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  /// Total spans recorded (accepted into the ring).
  uint64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }

  /// Mirrors ring health into the registry so span loss is visible on a
  /// scrape without touching the Tracer API:
  /// robopt_trace_spans_total / robopt_trace_dropped_total gauges plus
  /// robopt_trace_ring_utilization (live slots / capacity, saturating at 1
  /// once the ring has wrapped).
  void ExportTo(MetricsRegistry* registry) const;

 private:
  enum SlotState : uint32_t { kEmpty = 0, kWriting = 1, kReady = 2,
                              kReading = 3 };
  struct Slot {
    std::atomic<uint32_t> state{kEmpty};
    uint64_t ticket = 0;
    SpanRecord record;
  };

  const size_t capacity_;  ///< Power of two.
  const std::chrono::steady_clock::time_point epoch_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> next_ticket_{0};
  std::atomic<uint64_t> next_trace_{1};
  std::atomic<uint64_t> next_span_{1};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> recorded_{0};
};

/// Small stable per-thread index for SpanRecord::tid (thread ids are
/// unwieldy 64-bit hashes on most platforms; Chrome's viewer groups rows by
/// this value).
uint32_t TraceThreadId();

/// RAII helper: captures the start time at construction and records the
/// completed span at destruction (or at End()). Null tracer = no-op.
class SpanScope {
 public:
  SpanScope(Tracer* tracer, uint64_t trace_id, uint64_t parent_id,
            std::string_view name)
      : tracer_(tracer) {
    if (tracer_ == nullptr) return;
    record_.trace_id = trace_id;
    record_.span_id = tracer_->NewSpanId();
    record_.parent_id = parent_id;
    record_.name = name;
    record_.start_us = tracer_->NowMicros();
    record_.tid = TraceThreadId();
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;
  ~SpanScope() { End(); }

  /// Span id for parenting children (0 when tracing is off).
  uint64_t id() const { return tracer_ == nullptr ? 0 : record_.span_id; }

  void SetArgA(std::string_view name, int64_t value) {
    record_.arg_name_a = name;
    record_.arg_a = value;
  }
  void SetArgB(std::string_view name, int64_t value) {
    record_.arg_name_b = name;
    record_.arg_b = value;
  }
  void SetVirtual(double start_s, double dur_s) {
    record_.virt_start_s = start_s;
    record_.virt_dur_s = dur_s;
  }

  void End() {
    if (tracer_ == nullptr) return;
    record_.dur_us = tracer_->NowMicros() - record_.start_us;
    tracer_->Record(record_);
    tracer_ = nullptr;
  }

 private:
  Tracer* tracer_;
  SpanRecord record_;
};

}  // namespace robopt

#endif  // ROBOPT_OBS_TRACE_H_
