#ifndef ROBOPT_OBS_BUILD_INFO_H_
#define ROBOPT_OBS_BUILD_INFO_H_

#include <string_view>

namespace robopt {

class MetricsRegistry;

/// The build/version string baked into this binary (set via the
/// ROBOPT_VERSION compile definition; "unknown" otherwise).
const char* BuildVersion();

/// True when the obs instrumentation sites were compiled out
/// (-DROBOPT_NO_OBS).
bool ObsCompiledOut();

/// Seconds since this process loaded (static-init epoch, steady clock).
double ProcessUptimeSeconds();

/// Sets the fleet-dashboard process gauges into `registry`:
///   robopt_build_info{version="...",lane="...",no_obs="0|1"} 1
///   robopt_uptime_seconds <seconds>
/// `simd_lane` is the active SIMD dispatch lane name (the caller owns the
/// ml dependency; obs stays lane-agnostic). Label values are escaped per
/// the Prometheus exposition format.
void ExportBuildInfo(MetricsRegistry* registry, std::string_view simd_lane);

}  // namespace robopt

#endif  // ROBOPT_OBS_BUILD_INFO_H_
