#include "obs/trace.h"

#include <algorithm>

#include "obs/metrics.h"

namespace robopt {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

uint32_t TraceThreadId() {
  static std::atomic<uint32_t> next{1};
  thread_local const uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

Tracer::Tracer(size_t capacity)
    : capacity_(RoundUpPow2(std::max<size_t>(capacity, 2))),
      epoch_(std::chrono::steady_clock::now()),
      slots_(std::make_unique<Slot[]>(capacity_)) {}

void Tracer::Record(const SpanRecord& record) {
  const uint64_t ticket =
      next_ticket_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket & (capacity_ - 1)];
  uint32_t state = slot.state.load(std::memory_order_relaxed);
  // Take the slot from kEmpty or kReady (a wrapped-over old span). If a
  // concurrent writer or reader holds it, drop: writers must never wait.
  do {
    if (state == kWriting || state == kReading) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  } while (!slot.state.compare_exchange_weak(state, kWriting,
                                             std::memory_order_acquire,
                                             std::memory_order_relaxed));
  slot.ticket = ticket;
  slot.record = record;
  slot.state.store(kReady, std::memory_order_release);
  recorded_.fetch_add(1, std::memory_order_relaxed);
}

void Tracer::ExportTo(MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  const uint64_t total = recorded();
  registry->Set("robopt_trace_spans_total", static_cast<double>(total));
  registry->Set("robopt_trace_dropped_total", static_cast<double>(dropped()));
  registry->Set("robopt_trace_ring_utilization",
                static_cast<double>(std::min<uint64_t>(total, capacity_)) /
                    static_cast<double>(capacity_));
}

std::vector<SpanRecord> Tracer::Collect(uint64_t trace_id) const {
  struct Ticketed {
    uint64_t ticket;
    SpanRecord record;
  };
  std::vector<Ticketed> out;
  out.reserve(capacity_);
  for (size_t i = 0; i < capacity_; ++i) {
    Slot& slot = const_cast<Slot&>(slots_[i]);
    uint32_t state = slot.state.load(std::memory_order_acquire);
    if (state != kReady) continue;
    // Exclusive read access via the same CAS protocol writers use: a writer
    // that lands on this slot meanwhile drops its span instead of racing.
    if (!slot.state.compare_exchange_strong(state, kReading,
                                            std::memory_order_acquire)) {
      continue;
    }
    Ticketed t{slot.ticket, slot.record};
    slot.state.store(kReady, std::memory_order_release);
    if (trace_id == 0 || t.record.trace_id == trace_id) {
      out.push_back(std::move(t));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Ticketed& a, const Ticketed& b) {
              return a.ticket < b.ticket;
            });
  std::vector<SpanRecord> records;
  records.reserve(out.size());
  for (Ticketed& t : out) records.push_back(std::move(t.record));
  return records;
}

}  // namespace robopt
