#include "obs/metrics.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"

namespace robopt {

size_t MetricShardIndex() {
  // Round-robin assignment at first use: spreads threads evenly over the
  // shards regardless of how the platform hashes thread ids.
  static std::atomic<size_t> next{0};
  thread_local const size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return index;
}

uint64_t Gauge::Encode(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double Gauge::Decode(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    ROBOPT_CHECK(bounds_[i - 1] < bounds_[i]);
  }
  for (Shard& shard : shards_) {
    shard.counts =
        std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
    for (size_t i = 0; i <= bounds_.size(); ++i) {
      shard.counts[i].store(0, std::memory_order_relaxed);
    }
  }
}

const std::vector<double>& Histogram::LatencyBucketsUs() {
  static const std::vector<double> kBounds = [] {
    std::vector<double> bounds;
    for (double edge = 1.0; edge <= 16.0 * 1e6; edge *= 4.0) {
      bounds.push_back(edge);  // 1us, 4us, ..., ~16.8s (13 edges).
    }
    return bounds;
  }();
  return kBounds;
}

void Histogram::Observe(double value) {
  // Prometheus `le` semantics: upper edges are inclusive, so the target
  // bucket is the first bound >= value (lower_bound, not upper_bound).
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  Shard& shard = shards_[MetricShardIndex()];
  shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.sum_nanos.fetch_add(static_cast<int64_t>(value * 1e9),
                            std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::Counts() const {
  std::vector<uint64_t> total(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (size_t i = 0; i <= bounds_.size(); ++i) {
      total[i] += shard.counts[i].load(std::memory_order_relaxed);
    }
  }
  return total;
}

uint64_t Histogram::TotalCount() const {
  uint64_t sum = 0;
  for (uint64_t c : Counts()) sum += c;
  return sum;
}

double Histogram::Sum() const {
  int64_t nanos = 0;
  for (const Shard& shard : shards_) {
    nanos += shard.sum_nanos.load(std::memory_order_relaxed);
  }
  return static_cast<double>(nanos) / 1e9;
}

double MetricsSnapshot::Value(const std::string& name, double fallback) const {
  for (const MetricPoint& point : points) {
    if (point.name == name) return point.value;
  }
  return fallback;
}

bool MetricsSnapshot::Has(const std::string& name) const {
  for (const MetricPoint& point : points) {
    if (point.name == name) return true;
  }
  return false;
}

namespace {

/// Transparent find-or-insert: the find is heterogeneous (no string
/// construction), so the steady-state hit path of every instrumented call
/// allocates nothing; only a first-time miss materialises the key.
template <typename Map>
typename Map::mapped_type& EntryOf(Map& map, std::string_view name) {
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.try_emplace(std::string(name)).first;
  }
  return it->second;
}

}  // namespace

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = EntryOf(metrics_, name);
  if (entry.counter == nullptr) {
    if (entry.gauge != nullptr || entry.histogram != nullptr) return nullptr;
    entry.type = MetricPoint::Type::kCounter;
    entry.counter = std::make_unique<Counter>();
  }
  return entry.counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = EntryOf(metrics_, name);
  if (entry.gauge == nullptr) {
    if (entry.counter != nullptr || entry.histogram != nullptr) return nullptr;
    entry.type = MetricPoint::Type::kGauge;
    entry.gauge = std::make_unique<Gauge>();
  }
  return entry.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = EntryOf(metrics_, name);
  if (entry.histogram == nullptr) {
    if (entry.counter != nullptr || entry.gauge != nullptr) return nullptr;
    entry.type = MetricPoint::Type::kHistogram;
    entry.histogram = std::make_unique<Histogram>(bounds);
  }
  return entry.histogram.get();
}

void MetricsRegistry::Set(std::string_view name, double value) {
  Gauge* gauge = GetGauge(name);
  if (gauge != nullptr) gauge->Set(value);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  snapshot.points.reserve(metrics_.size());
  for (const auto& [name, entry] : metrics_) {
    MetricPoint point;
    point.name = name;
    point.type = entry.type;
    switch (entry.type) {
      case MetricPoint::Type::kCounter:
        point.value = static_cast<double>(entry.counter->Value());
        break;
      case MetricPoint::Type::kGauge:
        point.value = entry.gauge->Value();
        break;
      case MetricPoint::Type::kHistogram:
        point.buckets = entry.histogram->bounds();
        point.counts = entry.histogram->Counts();
        point.value = entry.histogram->Sum();
        for (uint64_t c : point.counts) point.count += c;
        break;
    }
    snapshot.points.push_back(std::move(point));
  }
  return snapshot;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace robopt
