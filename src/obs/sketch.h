#ifndef ROBOPT_OBS_SKETCH_H_
#define ROBOPT_OBS_SKETCH_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <mutex>
#include <vector>

namespace robopt {

/// Mergeable DDSketch-style quantile sketch over positive values with a
/// guaranteed *relative* error: for any quantile q, the returned estimate x̂
/// satisfies |x̂ - x_q| <= alpha * x_q, where x_q is the true q-quantile of
/// the inserted values (values below kMinTrackable collapse into an exact
/// zero bucket; the bound holds for everything else while the bucket count
/// stays under the collapse cap). Buckets are logarithmic — index(v) =
/// ceil(log_gamma v) with gamma = (1+alpha)/(1-alpha) — so there are no
/// fixed edges to pre-pick and two sketches with the same alpha merge by
/// bucket-wise addition, losslessly.
///
/// Not internally synchronized; ShardedSketch / WindowedSketch below layer
/// concurrency on top.
class QuantileSketch {
 public:
  /// Values at or below this are exact (stored in the zero bucket).
  static constexpr double kMinTrackable = 1e-9;
  /// Collapse cap: when the bucket span would exceed this, the lowest
  /// buckets fold into the lowest retained one (standard DDSketch collapse;
  /// the error bound then degrades only for the lowest quantiles). 4096
  /// buckets at alpha = 0.01 cover ~36 orders of magnitude — in practice
  /// the cap never triggers for latency data.
  static constexpr size_t kMaxBuckets = 4096;

  explicit QuantileSketch(double alpha = 0.01);

  void Add(double value, uint64_t weight = 1);

  /// Bucket-wise merge. Both sketches must have been built with the same
  /// alpha (checked; a mismatch is ignored rather than corrupting the
  /// receiver — observability must never crash the host).
  void Merge(const QuantileSketch& other);

  /// Estimate of the q-quantile (q in [0, 1]), within alpha relative error.
  /// Returns 0 when the sketch is empty. Estimates are clamped to the exact
  /// observed [min, max], so q = 0 / q = 1 are exact.
  double Quantile(double q) const;

  /// Approximate count of inserted values strictly above `threshold`
  /// (bucket-granular: values within alpha of the threshold may land on
  /// either side — exactly the guarantee an SLO bound on the threshold
  /// itself needs).
  uint64_t CountAbove(double threshold) const;

  uint64_t count() const { return count_; }
  double alpha() const { return alpha_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  void Clear();

 private:
  int32_t IndexOf(double value) const;
  double EstimateOf(int32_t index) const;
  /// Grows (or collapses) the contiguous store so `index` is addressable.
  uint64_t& BucketAt(int32_t index);

  double alpha_;
  double gamma_;
  double inv_log_gamma_;
  /// Contiguous bucket counts; buckets_[i] holds log-bucket min_index_ + i.
  std::vector<uint64_t> buckets_;
  int32_t min_index_ = 0;
  uint64_t zero_count_ = 0;  ///< Values <= kMinTrackable (exact).
  uint64_t count_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// One exemplar: a concrete request sampled into a sketch window, linking
/// the latency distribution back to a trace (span id) and a plan
/// (fingerprint). Windows keep the highest-valued exemplars — the requests
/// an operator debugging a tail regression wants first.
struct SketchExemplar {
  double value = 0.0;  ///< The recorded value (latency in micros).
  uint64_t fp_lo = 0;  ///< Canonical plan fingerprint.
  uint64_t fp_hi = 0;
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
};

/// Thread-safe sharded front of a QuantileSketch: Add() takes one
/// uncontended per-thread-shard mutex (threads map to shards via
/// MetricShardIndex(), same cache-line discipline as Counter), so
/// concurrent writers never serialize against each other or against
/// readers merging a snapshot.
class ShardedSketch {
 public:
  explicit ShardedSketch(double alpha = 0.01);

  void Add(double value);

  /// Point-in-time merge of every shard.
  QuantileSketch Snapshot() const;

  void Clear();
  uint64_t count() const;
  double alpha() const { return alpha_; }

 private:
  struct alignas(64) Shard {
    mutable std::mutex mu;
    QuantileSketch sketch;
    Shard() : sketch(0.01) {}
  };

  friend class WindowedSketch;

  double alpha_;
  std::vector<Shard> shards_;
};

/// Sliding-window quantiles: a ring of closed per-window rollups plus one
/// live ShardedSketch. Record() lands in the live window (lock-free across
/// threads up to the per-shard mutexes); when time crosses a window edge
/// the live sketch is sealed into the ring and a trailing-window query
/// merges the rollups covering the last T seconds with the live sketch.
/// Each rollup also carries the window's highest-value exemplars and a
/// count of *bad events* (requests that never produced a latency — sheds —
/// which an availability-style objective may choose to count).
///
/// Time is always passed in explicitly (seconds on any monotone clock), so
/// tests and replays drive rotation deterministically.
class WindowedSketch {
 public:
  struct Options {
    double alpha = 0.01;
    double window_s = 60.0;  ///< Width of one rollup window.
    size_t windows = 64;     ///< Retained closed windows (ring capacity).
    size_t exemplars_per_window = 4;
  };

  explicit WindowedSketch(const Options& options);

  /// Records one value at `now_s`; `exemplar` (optional) competes for the
  /// window's highest-value exemplar slots.
  void Record(double now_s, double value,
              const SketchExemplar* exemplar = nullptr);

  /// Records one bad event (no latency to record — e.g. a shed request).
  void RecordBad(double now_s);

  /// Merged sketch of the windows covering (now_s - trailing_s, now_s].
  /// trailing_s <= 0 merges the full retention.
  QuantileSketch Merged(double trailing_s, double now_s) const;

  /// Quantile over the trailing window (0 when empty).
  double Quantile(double q, double trailing_s, double now_s) const;

  /// (count above threshold + bad events) / (total + bad events) over the
  /// trailing window; 0 when no events at all. The burn-rate numerator of
  /// a latency SLO.
  double BadFraction(double threshold, double trailing_s, double now_s,
                     bool count_bad_events = true) const;

  /// Exemplars retained in the trailing window, highest value first.
  std::vector<SketchExemplar> Exemplars(double trailing_s, double now_s) const;

  /// Total values recorded over the sketch's lifetime (rotation-immune).
  uint64_t total_count() const {
    return total_count_.load(std::memory_order_relaxed);
  }

  const Options& options() const { return options_; }

 private:
  struct Rollup {
    int64_t window_index = -1;  ///< floor(now_s / window_s); -1 = unused.
    QuantileSketch sketch;
    uint64_t bad_events = 0;
    std::vector<SketchExemplar> exemplars;  ///< Sorted, highest value first.
    Rollup() : sketch(0.01) {}
  };

  /// Seals the live window into the ring if `now_s` has crossed into a
  /// newer window (queries call this too, so a long quiet period cannot
  /// leave stale events looking current). Caller must NOT hold rotate_mu_.
  void MaybeRotate(double now_s) const;
  int64_t WindowIndexOf(double now_s) const;
  /// Offers an exemplar to the live window's slots (rotate_mu_ held).
  void OfferExemplarLocked(const SketchExemplar& exemplar) const;

  const Options options_;
  /// Guards rotation, the ring, the live window's bad/exemplar state and
  /// the live window index. The per-value hot path only touches it on a
  /// window edge (or for exemplar offers); plain Adds go through the
  /// sharded sketch's own mutexes. Members are mutable because read paths
  /// may apply the lazy rotation.
  mutable std::mutex rotate_mu_;
  mutable ShardedSketch live_;
  mutable std::atomic<int64_t> live_index_{-1};  ///< Window index of live_.
  mutable uint64_t live_bad_ = 0;
  mutable std::vector<SketchExemplar> live_exemplars_;
  mutable std::vector<Rollup> ring_;
  mutable size_t ring_next_ = 0;
  std::atomic<uint64_t> total_count_{0};
};

}  // namespace robopt

#endif  // ROBOPT_OBS_SKETCH_H_
