#ifndef ROBOPT_OBS_DECISION_H_
#define ROBOPT_OBS_DECISION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace robopt {

class MetricsRegistry;

/// Why a request was rejected at admission (sharded serving).
enum class ShedReason : uint8_t {
  kNone = 0,
  kQueueFull = 1,    ///< Shard admission queue at capacity.
  kDeadline = 2,     ///< Estimated queue delay past the request deadline.
  kSloDeadline = 3,  ///< Past the deadline only because critical SLO burn
                     ///< tightened it (the request would have been admitted
                     ///< under the untightened deadline).
  kSloQueue = 4,     ///< Depth past the SLO-tightened effective queue bound.
};

const char* ShedReasonName(ShedReason reason);

/// How the plan cache answered for a request.
enum class DecisionCacheResult : uint8_t {
  kDisabled = 0,           ///< Cache capacity 0 — no lookup attempted.
  kHit = 1,
  kMissCold = 2,           ///< Key never seen (or evicted).
  kMissStaleVersion = 3,   ///< Entry died to a model promotion.
  kMissHashMismatch = 4,   ///< Fingerprint collision — entry dropped.
  kMissUntransferable = 5, ///< Hit, but the assignment failed to replay.
};

const char* DecisionCacheResultName(DecisionCacheResult result);

/// One runner-up plan the enumeration considered: the predicted cost and a
/// hash of the per-operator assignment (enough to tell "how close was the
/// second-best, and was it a different plan?" without storing plans).
struct DecisionRunnerUp {
  float predicted_runtime_s = 0.0f;
  uint64_t assignment_hash = 0;
};

inline constexpr size_t kDecisionRunners = 3;

/// Per-request "query explain": every layered decision the serving path
/// made for one Optimize() call, POD-sized so a ring-slot write is a plain
/// struct copy. Assembled at the service's request choke point and kept in
/// a bounded lock-free DecisionRing; exportable as JSON.
struct DecisionRecord {
  uint64_t seq = 0;     ///< Ring ticket — global request order.
  double wall_us = 0.0; ///< Micros since the ring's epoch (steady clock).
  uint64_t tenant = 0;
  uint64_t fp_lo = 0;   ///< Canonical plan fingerprint (0 if not computed).
  uint64_t fp_hi = 0;
  uint64_t options_hash = 0;  ///< PlanCache::HashOptions of caller options.
  uint32_t shard = 0;         ///< Shard routed (0 on the legacy path).
  StatusCode status = StatusCode::kOk;
  ShedReason shed = ShedReason::kNone;
  DecisionCacheResult cache = DecisionCacheResult::kDisabled;
  uint8_t slo_health = 0;     ///< SloHealth at admission (0 = ok / no SLO).
  bool quantized_used = false;
  uint8_t chosen_platform = 0;
  uint64_t open_breaker_mask = 0;      ///< Breakers open at call time.
  uint64_t excluded_platform_mask = 0; ///< Effective exclusion mask.
  uint64_t model_version = 0;
  float predicted_runtime_s = 0.0f;
  uint64_t vectors_created = 0;
  uint64_t vectors_pruned = 0;
  uint64_t final_vectors = 0;
  uint64_t oracle_rows = 0;
  double latency_us = 0.0;  ///< End-to-end service latency (queue included).
  uint32_t num_runners = 0;
  DecisionRunnerUp runners[kDecisionRunners] = {};
};

/// Bounded lock-free ring of the most recent DecisionRecords: same
/// ticket-claimed slot design as the Tracer span ring (fetch_add ticket,
/// one CAS to take the slot, struct copy, release store) — a Record()
/// never blocks the serving path and never allocates. Ring wrap overwrites
/// the oldest records by design; writer/reader collisions on one slot drop
/// the record and count it.
class DecisionRing {
 public:
  /// `capacity` is rounded up to a power of two slots.
  explicit DecisionRing(size_t capacity = 1024);

  /// Records one decision; assigns DecisionRecord::seq from the ticket.
  void Record(DecisionRecord record);

  /// The most recent records, oldest first. `max_records` 0 = everything
  /// retained.
  std::vector<DecisionRecord> Collect(size_t max_records = 0) const;

  size_t capacity() const { return capacity_; }
  uint64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// Mirrors ring health into robopt_decisions_recorded_total /
  /// robopt_decisions_dropped_total gauges.
  void ExportTo(MetricsRegistry* registry) const;

 private:
  enum SlotState : uint32_t {
    kEmpty = 0,
    kWriting = 1,
    kReady = 2,
    kReading = 3
  };
  struct Slot {
    std::atomic<uint32_t> state{kEmpty};
    uint64_t ticket = 0;
    DecisionRecord record;
  };

  const size_t capacity_;  ///< Power of two.
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> next_ticket_{0};
  std::atomic<uint64_t> recorded_{0};
  std::atomic<uint64_t> dropped_{0};
};

/// JSON array of decision records (readable enum names, hex fingerprints),
/// the wire shape of a "recent queries" debug endpoint.
std::string ExportDecisionsJson(const std::vector<DecisionRecord>& records);

}  // namespace robopt

#endif  // ROBOPT_OBS_DECISION_H_
