#include "obs/decision.h"

#include <algorithm>
#include <cstdio>

#include "obs/metrics.h"

namespace robopt {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

const char* StatusCodeLabel(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kUnavailable:
      return "unavailable";
  }
  return "unknown";
}

}  // namespace

const char* ShedReasonName(ShedReason reason) {
  switch (reason) {
    case ShedReason::kNone:
      return "none";
    case ShedReason::kQueueFull:
      return "queue_full";
    case ShedReason::kDeadline:
      return "deadline";
    case ShedReason::kSloDeadline:
      return "slo_deadline";
    case ShedReason::kSloQueue:
      return "slo_queue";
  }
  return "unknown";
}

const char* DecisionCacheResultName(DecisionCacheResult result) {
  switch (result) {
    case DecisionCacheResult::kDisabled:
      return "disabled";
    case DecisionCacheResult::kHit:
      return "hit";
    case DecisionCacheResult::kMissCold:
      return "miss_cold";
    case DecisionCacheResult::kMissStaleVersion:
      return "miss_stale_version";
    case DecisionCacheResult::kMissHashMismatch:
      return "miss_hash_mismatch";
    case DecisionCacheResult::kMissUntransferable:
      return "miss_untransferable";
  }
  return "unknown";
}

DecisionRing::DecisionRing(size_t capacity)
    : capacity_(RoundUpPow2(std::max<size_t>(capacity, 2))),
      slots_(std::make_unique<Slot[]>(capacity_)) {}

void DecisionRing::Record(DecisionRecord record) {
  const uint64_t ticket =
      next_ticket_.fetch_add(1, std::memory_order_relaxed);
  record.seq = ticket;
  Slot& slot = slots_[ticket & (capacity_ - 1)];
  uint32_t state = slot.state.load(std::memory_order_relaxed);
  // Take the slot from kEmpty or kReady (a wrapped-over old record); a
  // concurrent writer or reader on the same slot means the ring lapped an
  // in-flight operation — drop rather than wait (counted).
  do {
    if (state == kWriting || state == kReading) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  } while (!slot.state.compare_exchange_weak(state, kWriting,
                                             std::memory_order_acquire,
                                             std::memory_order_relaxed));
  slot.ticket = ticket;
  slot.record = record;
  slot.state.store(kReady, std::memory_order_release);
  recorded_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<DecisionRecord> DecisionRing::Collect(size_t max_records) const {
  struct Ticketed {
    uint64_t ticket;
    DecisionRecord record;
  };
  std::vector<Ticketed> out;
  out.reserve(capacity_);
  for (size_t i = 0; i < capacity_; ++i) {
    Slot& slot = const_cast<Slot&>(slots_[i]);
    uint32_t state = slot.state.load(std::memory_order_acquire);
    if (state != kReady) continue;
    if (!slot.state.compare_exchange_strong(state, kReading,
                                            std::memory_order_acquire)) {
      continue;
    }
    Ticketed t{slot.ticket, slot.record};
    slot.state.store(kReady, std::memory_order_release);
    out.push_back(std::move(t));
  }
  std::sort(out.begin(), out.end(),
            [](const Ticketed& a, const Ticketed& b) {
              return a.ticket < b.ticket;
            });
  if (max_records > 0 && out.size() > max_records) {
    out.erase(out.begin(),
              out.begin() + static_cast<ptrdiff_t>(out.size() - max_records));
  }
  std::vector<DecisionRecord> records;
  records.reserve(out.size());
  for (Ticketed& t : out) records.push_back(t.record);
  return records;
}

void DecisionRing::ExportTo(MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  registry->Set("robopt_decisions_recorded_total",
                static_cast<double>(recorded()));
  registry->Set("robopt_decisions_dropped_total",
                static_cast<double>(dropped()));
}

std::string ExportDecisionsJson(const std::vector<DecisionRecord>& records) {
  std::string out = "[\n";
  char buf[256];
  bool first = true;
  for (const DecisionRecord& r : records) {
    if (!first) out += ",\n";
    first = false;
    out += "  {";
    std::snprintf(buf, sizeof(buf),
                  "\"seq\": %llu, \"wall_us\": %.3f, \"tenant\": %llu, "
                  "\"fingerprint\": \"%016llx%016llx\", ",
                  static_cast<unsigned long long>(r.seq), r.wall_us,
                  static_cast<unsigned long long>(r.tenant),
                  static_cast<unsigned long long>(r.fp_hi),
                  static_cast<unsigned long long>(r.fp_lo));
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "\"shard\": %u, \"status\": \"%s\", \"shed\": \"%s\", "
                  "\"cache\": \"%s\", \"slo_health\": %u, ",
                  r.shard, StatusCodeLabel(r.status), ShedReasonName(r.shed),
                  DecisionCacheResultName(r.cache),
                  static_cast<unsigned>(r.slo_health));
    out += buf;
    std::snprintf(
        buf, sizeof(buf),
        "\"quantized\": %s, \"platform\": %u, \"open_breakers\": %llu, "
        "\"excluded_mask\": %llu, \"model_version\": %llu, ",
        r.quantized_used ? "true" : "false",
        static_cast<unsigned>(r.chosen_platform),
        static_cast<unsigned long long>(r.open_breaker_mask),
        static_cast<unsigned long long>(r.excluded_platform_mask),
        static_cast<unsigned long long>(r.model_version));
    out += buf;
    std::snprintf(
        buf, sizeof(buf),
        "\"predicted_s\": %.9g, \"vectors_created\": %llu, "
        "\"vectors_pruned\": %llu, \"final_vectors\": %llu, "
        "\"oracle_rows\": %llu, \"latency_us\": %.3f",
        static_cast<double>(r.predicted_runtime_s),
        static_cast<unsigned long long>(r.vectors_created),
        static_cast<unsigned long long>(r.vectors_pruned),
        static_cast<unsigned long long>(r.final_vectors),
        static_cast<unsigned long long>(r.oracle_rows), r.latency_us);
    out += buf;
    out += ", \"runners_up\": [";
    for (uint32_t i = 0; i < r.num_runners && i < kDecisionRunners; ++i) {
      if (i > 0) out += ", ";
      std::snprintf(buf, sizeof(buf),
                    "{\"predicted_s\": %.9g, \"assignment_hash\": "
                    "\"%016llx\"}",
                    static_cast<double>(r.runners[i].predicted_runtime_s),
                    static_cast<unsigned long long>(
                        r.runners[i].assignment_hash));
      out += buf;
    }
    out += "]}";
  }
  out += "\n]\n";
  return out;
}

}  // namespace robopt
