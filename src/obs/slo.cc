#include "obs/slo.h"

#include <algorithm>

#include "obs/export.h"
#include "obs/metrics.h"

namespace robopt {

const char* SloHealthName(SloHealth health) {
  switch (health) {
    case SloHealth::kOk:
      return "ok";
    case SloHealth::kWarning:
      return "warning";
    case SloHealth::kCritical:
      return "critical";
  }
  return "unknown";
}

SloEngine::SloEngine(std::vector<SloObjective> objectives,
                     const WindowedSketch* sketch)
    : objectives_(objectives.empty() ? std::vector<SloObjective>{{}}
                                     : std::move(objectives)),
      sketch_(sketch) {}

SloStatus SloEngine::Evaluate(double now_s) {
  SloStatus status;
  status.objectives.reserve(objectives_.size());
  for (const SloObjective& objective : objectives_) {
    SloObjectiveStatus os;
    os.name = objective.name;
    const double budget = std::max(1e-9, 1.0 - objective.target);
    auto burn = [&](double window_s, double* bad_fraction_out) {
      const double fraction =
          sketch_ == nullptr
              ? 0.0
              : sketch_->BadFraction(objective.threshold_us, window_s, now_s,
                                     objective.count_sheds_as_bad);
      if (bad_fraction_out != nullptr) *bad_fraction_out = fraction;
      return fraction / budget;
    };
    os.burn_fast = burn(objective.fast_window_s, &os.bad_fraction_fast);
    os.burn_fast_short = burn(objective.fast_window_s / 12.0, nullptr);
    os.burn_slow = burn(objective.slow_window_s, nullptr);
    os.burn_slow_short = burn(objective.slow_window_s / 12.0, nullptr);
    // Both windows of a pair must burn: the long window proves budget
    // impact, the short one proves the burn is still live (hysteresis-free
    // recovery once the regression stops).
    if (os.burn_fast >= objective.fast_burn &&
        os.burn_fast_short >= objective.fast_burn) {
      os.health = SloHealth::kCritical;
    } else if (os.burn_slow >= objective.slow_burn &&
               os.burn_slow_short >= objective.slow_burn) {
      os.health = SloHealth::kWarning;
    }
    if (static_cast<uint8_t>(os.health) >
        static_cast<uint8_t>(status.health)) {
      status.health = os.health;
    }
    status.objectives.push_back(std::move(os));
  }
  health_.store(static_cast<uint8_t>(status.health),
                std::memory_order_relaxed);
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(status_mu_);
    last_status_ = status;
  }
  return status;
}

SloStatus SloEngine::status() const {
  std::lock_guard<std::mutex> lock(status_mu_);
  return last_status_;
}

void SloEngine::ExportTo(MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  SloStatus status;
  {
    std::lock_guard<std::mutex> lock(status_mu_);
    status = last_status_;
  }
  registry->Set("robopt_slo_health",
                static_cast<double>(static_cast<uint8_t>(health())));
  registry->Set("robopt_slo_evaluations_total",
                static_cast<double>(evaluations()));
  // Before the first Evaluate the status has no per-objective rows yet;
  // export zeros from the configuration so the series exist from scrape
  // one (stable metric table).
  if (status.objectives.empty()) {
    for (const SloObjective& objective : objectives_) {
      SloObjectiveStatus os;
      os.name = objective.name;
      status.objectives.push_back(std::move(os));
    }
  }
  for (const SloObjectiveStatus& os : status.objectives) {
    const std::string label =
        "{objective=\"" + PromEscapeLabelValue(os.name) + "\"}";
    registry->Set("robopt_slo_burn_fast" + label, os.burn_fast);
    registry->Set("robopt_slo_burn_slow" + label, os.burn_slow);
    registry->Set("robopt_slo_bad_fraction" + label, os.bad_fraction_fast);
  }
}

}  // namespace robopt
