#ifndef ROBOPT_OBS_SLO_H_
#define ROBOPT_OBS_SLO_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/sketch.h"

namespace robopt {

class MetricsRegistry;

/// Aggregate health the serving layer keys admission decisions off.
/// Ordered: higher is worse.
enum class SloHealth : uint8_t {
  kOk = 0,
  kWarning = 1,   ///< Slow burn: budget exhausting over the long horizon.
  kCritical = 2,  ///< Fast burn: budget exhausting now — act.
};

const char* SloHealthName(SloHealth health);

/// One declarative latency objective, e.g. "99% of optimizes complete
/// within 5ms over 1h": target = 0.99, threshold_us = 5000,
/// slow_window_s = 3600.
///
/// Evaluation follows the multiwindow, multi-burn-rate pattern (Google SRE
/// Workbook ch. 5): the *burn rate* is the fraction of bad events divided
/// by the error budget (1 - target); burning at rate 1 spends exactly the
/// budget over the objective window. A page-worthy (critical) condition
/// requires the fast burn threshold on BOTH the fast window and its 1/12
/// short window — the short window confirms the burn is still happening,
/// so a resolved spike stops alerting without waiting for the long window
/// to drain. The warning (slow-burn) pair works the same way over the slow
/// window.
struct SloObjective {
  std::string name = "optimize_latency";  ///< Label value in exports.
  double threshold_us = 5000.0;  ///< A request above this is "bad".
  double target = 0.99;          ///< Good fraction the objective demands.
  double fast_window_s = 300.0;  ///< Long window of the critical pair.
  double slow_window_s = 3600.0; ///< Long window of the warning pair.
  double fast_burn = 14.4;       ///< Critical burn-rate threshold.
  double slow_burn = 6.0;        ///< Warning burn-rate threshold.
  /// Count bad events (sheds recorded via WindowedSketch::RecordBad) as
  /// violations of this objective. Default off: a latency objective scores
  /// *served* requests, and counting the sheds the SLO reaction itself
  /// causes would latch the critical state forever. Shed visibility lives
  /// in the shed counters (or a dedicated availability objective with this
  /// flag on).
  bool count_sheds_as_bad = false;
};

/// Evaluation of one objective at one instant.
struct SloObjectiveStatus {
  std::string name;
  SloHealth health = SloHealth::kOk;
  double burn_fast = 0.0;        ///< Burn rate over the fast (long) window.
  double burn_fast_short = 0.0;  ///< Over fast_window_s / 12.
  double burn_slow = 0.0;
  double burn_slow_short = 0.0;
  double bad_fraction_fast = 0.0;  ///< Raw violating fraction, fast window.
};

struct SloStatus {
  SloHealth health = SloHealth::kOk;  ///< Max over objectives.
  std::vector<SloObjectiveStatus> objectives;
};

/// Evaluates declarative objectives against a WindowedSketch of request
/// latencies and caches an aggregate health state the serving hot path
/// reads with one relaxed atomic load. Evaluate() is cheap (merges a
/// handful of rollups per window) but not hot-path cheap — the serving
/// layer calls it from its background worker / export path and tests drive
/// it explicitly.
class SloEngine {
 public:
  /// `sketch` must outlive the engine. An empty objective list gets the
  /// default SloObjective.
  SloEngine(std::vector<SloObjective> objectives, const WindowedSketch* sketch);

  /// Re-evaluates every objective at `now_s` (same clock the sketch is fed
  /// with) and updates the cached health.
  SloStatus Evaluate(double now_s);

  /// Cached aggregate health from the last Evaluate (kOk before the first).
  SloHealth health() const {
    return static_cast<SloHealth>(health_.load(std::memory_order_relaxed));
  }

  /// Copy of the last Evaluate's full status.
  SloStatus status() const;

  uint64_t evaluations() const {
    return evaluations_.load(std::memory_order_relaxed);
  }

  const std::vector<SloObjective>& objectives() const { return objectives_; }

  /// Mirrors the last status into gauges: robopt_slo_health plus
  /// per-objective robopt_slo_burn_fast / robopt_slo_burn_slow /
  /// robopt_slo_bad_fraction{objective="..."} and
  /// robopt_slo_evaluations_total.
  void ExportTo(MetricsRegistry* registry) const;

 private:
  const std::vector<SloObjective> objectives_;
  const WindowedSketch* sketch_;
  std::atomic<uint8_t> health_{0};
  std::atomic<uint64_t> evaluations_{0};
  mutable std::mutex status_mu_;
  SloStatus last_status_;
};

}  // namespace robopt

#endif  // ROBOPT_OBS_SLO_H_
