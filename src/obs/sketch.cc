#include "obs/sketch.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"

namespace robopt {

QuantileSketch::QuantileSketch(double alpha) {
  // Clamp into the meaningful range; alpha outside (0, 1) has no log-bucket
  // interpretation.
  alpha_ = std::min(0.5, std::max(1e-4, alpha));
  gamma_ = (1.0 + alpha_) / (1.0 - alpha_);
  inv_log_gamma_ = 1.0 / std::log(gamma_);
}

int32_t QuantileSketch::IndexOf(double value) const {
  // Bucket i covers (gamma^(i-1), gamma^i].
  return static_cast<int32_t>(std::ceil(std::log(value) * inv_log_gamma_));
}

double QuantileSketch::EstimateOf(int32_t index) const {
  // Midpoint estimate 2*gamma^i / (gamma + 1): within alpha relative error
  // of every value in bucket i.
  return 2.0 * std::pow(gamma_, static_cast<double>(index)) / (gamma_ + 1.0);
}

uint64_t& QuantileSketch::BucketAt(int32_t index) {
  if (buckets_.empty()) {
    min_index_ = index;
    buckets_.push_back(0);
    return buckets_[0];
  }
  if (index < min_index_) {
    buckets_.insert(buckets_.begin(),
                    static_cast<size_t>(min_index_ - index), 0);
    min_index_ = index;
  } else if (index >= min_index_ + static_cast<int32_t>(buckets_.size())) {
    buckets_.resize(static_cast<size_t>(index - min_index_) + 1, 0);
  }
  // DDSketch collapse: fold the lowest buckets into the lowest retained one
  // so memory stays bounded. High quantiles keep their guarantee.
  if (buckets_.size() > kMaxBuckets) {
    const size_t excess = buckets_.size() - kMaxBuckets;
    uint64_t folded = 0;
    for (size_t i = 0; i <= excess; ++i) folded += buckets_[i];
    buckets_.erase(buckets_.begin(), buckets_.begin() + excess);
    buckets_[0] = folded;
    min_index_ += static_cast<int32_t>(excess);
  }
  return buckets_[static_cast<size_t>(index - min_index_)];
}

void QuantileSketch::Add(double value, uint64_t weight) {
  if (weight == 0 || std::isnan(value)) return;
  if (value < 0.0) value = 0.0;
  count_ += weight;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  if (value <= kMinTrackable) {
    zero_count_ += weight;
    return;
  }
  BucketAt(IndexOf(value)) += weight;
}

void QuantileSketch::Merge(const QuantileSketch& other) {
  if (other.count_ == 0) return;
  if (std::fabs(other.alpha_ - alpha_) > 1e-12) return;  // Incompatible.
  count_ += other.count_;
  zero_count_ += other.zero_count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  for (size_t i = 0; i < other.buckets_.size(); ++i) {
    if (other.buckets_[i] == 0) continue;
    BucketAt(other.min_index_ + static_cast<int32_t>(i)) += other.buckets_[i];
  }
}

double QuantileSketch::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // The bucket holding the element of rank floor(q * (n - 1)) — the same
  // element a sorted-reference oracle indexes.
  const uint64_t rank = static_cast<uint64_t>(
      q * static_cast<double>(count_ - 1));
  // The extreme ranks are the tracked min/max themselves; answering them
  // exactly (not with a bucket midpoint) keeps q=0 and q=1 oracle-equal.
  if (rank == 0) return min_;
  if (rank == count_ - 1) return max_;
  uint64_t cumulative = zero_count_;
  double estimate = 0.0;
  if (cumulative <= rank) {
    for (size_t i = 0; i < buckets_.size(); ++i) {
      cumulative += buckets_[i];
      if (cumulative > rank) {
        estimate = EstimateOf(min_index_ + static_cast<int32_t>(i));
        break;
      }
    }
  }
  // Exact extremes tighten the tails (and q=0 / q=1 become exact).
  return std::min(max_, std::max(min_, estimate));
}

uint64_t QuantileSketch::CountAbove(double threshold) const {
  if (count_ == 0) return 0;
  if (threshold < 0.0) return count_;
  if (threshold >= max_) return 0;
  uint64_t above = 0;
  const int32_t threshold_index =
      threshold <= kMinTrackable ? min_index_ - 1 : IndexOf(threshold);
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (min_index_ + static_cast<int32_t>(i) > threshold_index) {
      above += buckets_[i];
    }
  }
  return above;
}

void QuantileSketch::Clear() {
  buckets_.clear();
  min_index_ = 0;
  zero_count_ = 0;
  count_ = 0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

ShardedSketch::ShardedSketch(double alpha)
    : alpha_(alpha), shards_(kMetricShards) {
  for (Shard& shard : shards_) shard.sketch = QuantileSketch(alpha);
}

void ShardedSketch::Add(double value) {
  Shard& shard = shards_[MetricShardIndex()];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.sketch.Add(value);
}

QuantileSketch ShardedSketch::Snapshot() const {
  QuantileSketch merged(alpha_);
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    merged.Merge(shard.sketch);
  }
  return merged;
}

void ShardedSketch::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.sketch.Clear();
  }
}

uint64_t ShardedSketch::count() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.sketch.count();
  }
  return total;
}

WindowedSketch::WindowedSketch(const Options& options)
    : options_(options),
      live_(options.alpha),
      ring_(std::max<size_t>(1, options.windows)) {}

int64_t WindowedSketch::WindowIndexOf(double now_s) const {
  return static_cast<int64_t>(
      std::floor(now_s / std::max(1e-9, options_.window_s)));
}

void WindowedSketch::MaybeRotate(double now_s) const {
  const int64_t target = WindowIndexOf(now_s);
  const int64_t live = live_index_.load(std::memory_order_acquire);
  if (live == target) return;
  std::lock_guard<std::mutex> lock(rotate_mu_);
  const int64_t current = live_index_.load(std::memory_order_relaxed);
  if (current == target) return;  // Raced; someone else rotated.
  if (current >= 0 && target > current) {
    // Seal the live window into the ring. Quiet gaps need no filler
    // entries — rollups carry their own window index and trailing-window
    // queries filter by it.
    Rollup& slot = ring_[ring_next_];
    slot.window_index = current;
    slot.sketch = live_.Snapshot();
    slot.bad_events = live_bad_;
    slot.exemplars = live_exemplars_;
    ring_next_ = (ring_next_ + 1) % ring_.size();
    live_.Clear();
    live_bad_ = 0;
    live_exemplars_.clear();
  }
  live_index_.store(target, std::memory_order_release);
}

void WindowedSketch::OfferExemplarLocked(
    const SketchExemplar& exemplar) const {
  if (options_.exemplars_per_window == 0) return;
  if (live_exemplars_.size() < options_.exemplars_per_window) {
    live_exemplars_.push_back(exemplar);
  } else {
    // Replace the lowest-valued kept exemplar if this one beats it.
    size_t lowest = 0;
    for (size_t i = 1; i < live_exemplars_.size(); ++i) {
      if (live_exemplars_[i].value < live_exemplars_[lowest].value) {
        lowest = i;
      }
    }
    if (exemplar.value <= live_exemplars_[lowest].value) return;
    live_exemplars_[lowest] = exemplar;
  }
}

void WindowedSketch::Record(double now_s, double value,
                            const SketchExemplar* exemplar) {
  MaybeRotate(now_s);
  live_.Add(value);
  total_count_.fetch_add(1, std::memory_order_relaxed);
  if (exemplar != nullptr) {
    std::lock_guard<std::mutex> lock(rotate_mu_);
    SketchExemplar copy = *exemplar;
    copy.value = value;
    OfferExemplarLocked(copy);
  }
}

void WindowedSketch::RecordBad(double now_s) {
  MaybeRotate(now_s);
  std::lock_guard<std::mutex> lock(rotate_mu_);
  ++live_bad_;
}

QuantileSketch WindowedSketch::Merged(double trailing_s, double now_s) const {
  MaybeRotate(now_s);
  QuantileSketch merged(options_.alpha);
  std::lock_guard<std::mutex> lock(rotate_mu_);
  const double cutoff_s = trailing_s <= 0.0
                              ? -std::numeric_limits<double>::infinity()
                              : now_s - trailing_s;
  for (const Rollup& rollup : ring_) {
    if (rollup.window_index < 0) continue;
    const double window_end_s =
        static_cast<double>(rollup.window_index + 1) * options_.window_s;
    if (window_end_s <= cutoff_s) continue;
    merged.Merge(rollup.sketch);
  }
  merged.Merge(live_.Snapshot());
  return merged;
}

double WindowedSketch::Quantile(double q, double trailing_s,
                                double now_s) const {
  return Merged(trailing_s, now_s).Quantile(q);
}

double WindowedSketch::BadFraction(double threshold, double trailing_s,
                                   double now_s,
                                   bool count_bad_events) const {
  MaybeRotate(now_s);
  QuantileSketch merged(options_.alpha);
  uint64_t bad_events = 0;
  {
    std::lock_guard<std::mutex> lock(rotate_mu_);
    const double cutoff_s = trailing_s <= 0.0
                                ? -std::numeric_limits<double>::infinity()
                                : now_s - trailing_s;
    for (const Rollup& rollup : ring_) {
      if (rollup.window_index < 0) continue;
      const double window_end_s =
          static_cast<double>(rollup.window_index + 1) * options_.window_s;
      if (window_end_s <= cutoff_s) continue;
      merged.Merge(rollup.sketch);
      bad_events += rollup.bad_events;
    }
    merged.Merge(live_.Snapshot());
    bad_events += live_bad_;
  }
  if (!count_bad_events) bad_events = 0;
  const uint64_t total = merged.count() + bad_events;
  if (total == 0) return 0.0;
  return static_cast<double>(merged.CountAbove(threshold) + bad_events) /
         static_cast<double>(total);
}

std::vector<SketchExemplar> WindowedSketch::Exemplars(double trailing_s,
                                                      double now_s) const {
  MaybeRotate(now_s);
  std::vector<SketchExemplar> out;
  {
    std::lock_guard<std::mutex> lock(rotate_mu_);
    const double cutoff_s = trailing_s <= 0.0
                                ? -std::numeric_limits<double>::infinity()
                                : now_s - trailing_s;
    for (const Rollup& rollup : ring_) {
      if (rollup.window_index < 0) continue;
      const double window_end_s =
          static_cast<double>(rollup.window_index + 1) * options_.window_s;
      if (window_end_s <= cutoff_s) continue;
      out.insert(out.end(), rollup.exemplars.begin(), rollup.exemplars.end());
    }
    out.insert(out.end(), live_exemplars_.begin(), live_exemplars_.end());
  }
  std::sort(out.begin(), out.end(),
            [](const SketchExemplar& a, const SketchExemplar& b) {
              return a.value > b.value;
            });
  return out;
}

}  // namespace robopt
