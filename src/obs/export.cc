#include "obs/export.h"

#include <cmath>
#include <cstdio>

namespace robopt {

namespace {

/// Prometheus sample value: integers print bare, everything else with
/// enough digits to round-trip.
std::string FormatValue(double v) {
  char buf[64];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

/// Defensive pass over a "{k=\"v\",...}" label block: inside quoted label
/// values, a raw newline becomes \n and a backslash that does not start a
/// valid exposition escape (\\, \", \n) is doubled. Values already built
/// through PromEscapeLabelValue pass through unchanged — their escapes are
/// valid — so the normalization is idempotent.
std::string NormalizeLabels(const std::string& labels) {
  std::string out;
  out.reserve(labels.size());
  bool in_value = false;
  for (size_t i = 0; i < labels.size(); ++i) {
    const char c = labels[i];
    if (!in_value) {
      out += c;
      if (c == '"') in_value = true;
      continue;
    }
    switch (c) {
      case '\\': {
        const char next = i + 1 < labels.size() ? labels[i + 1] : '\0';
        if (next == '\\' || next == '"' || next == 'n') {
          out += c;
          out += next;
          ++i;
        } else {
          out += "\\\\";
        }
        break;
      }
      case '\n':
        out += "\\n";
        break;
      case '"':
        out += c;
        in_value = false;
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// Splits "name{label=\"x\"}" into (base, "{label=\"x\"}" or ""),
/// normalizing the label block.
void SplitLabels(const std::string& series, std::string* base,
                 std::string* labels) {
  const size_t brace = series.find('{');
  if (brace == std::string::npos) {
    *base = series;
    labels->clear();
  } else {
    *base = series.substr(0, brace);
    *labels = NormalizeLabels(series.substr(brace));
  }
}

/// Re-opens a label set to append one more label ("{a=\"b\"}" + le ->
/// "{a=\"b\",le=\"x\"}").
std::string WithLabel(const std::string& labels, const std::string& extra) {
  if (labels.empty()) return "{" + extra + "}";
  return labels.substr(0, labels.size() - 1) + "," + extra + "}";
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        // Remaining control characters are invalid raw JSON; \u-encode.
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendTraceEvent(std::string* out, const SpanRecord& span, int pid,
                      double ts_us, double dur_us, bool first) {
  char buf[256];
  if (!first) *out += ",\n";
  *out += "  {\"name\": \"" + JsonEscape(span.name) + "\", \"cat\": \"robopt\"";
  std::snprintf(buf, sizeof(buf),
                ", \"ph\": \"X\", \"pid\": %d, \"tid\": %u, \"ts\": %.3f, "
                "\"dur\": %.3f",
                pid, span.tid, ts_us, dur_us);
  *out += buf;
  std::snprintf(buf, sizeof(buf),
                ", \"args\": {\"trace_id\": %llu, \"span_id\": %llu, "
                "\"parent_id\": %llu",
                static_cast<unsigned long long>(span.trace_id),
                static_cast<unsigned long long>(span.span_id),
                static_cast<unsigned long long>(span.parent_id));
  *out += buf;
  if (!span.arg_name_a.empty()) {
    std::snprintf(buf, sizeof(buf), ", \"%s\": %lld",
                  std::string(span.arg_name_a).c_str(),
                  static_cast<long long>(span.arg_a));
    *out += buf;
  }
  if (!span.arg_name_b.empty()) {
    std::snprintf(buf, sizeof(buf), ", \"%s\": %lld",
                  std::string(span.arg_name_b).c_str(),
                  static_cast<long long>(span.arg_b));
    *out += buf;
  }
  *out += "}}";
}

}  // namespace

std::string PromEscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string ExportPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const MetricPoint& point : snapshot.points) {
    std::string base;
    std::string labels;
    SplitLabels(point.name, &base, &labels);
    switch (point.type) {
      case MetricPoint::Type::kCounter:
        out += "# TYPE " + base + " counter\n";
        out += base + labels + " " + FormatValue(point.value) + "\n";
        break;
      case MetricPoint::Type::kGauge:
        out += "# TYPE " + base + " gauge\n";
        out += base + labels + " " + FormatValue(point.value) + "\n";
        break;
      case MetricPoint::Type::kHistogram: {
        out += "# TYPE " + base + " histogram\n";
        uint64_t cumulative = 0;
        for (size_t i = 0; i < point.buckets.size(); ++i) {
          cumulative += point.counts[i];
          out += base + "_bucket" +
                 WithLabel(labels,
                           "le=\"" + FormatValue(point.buckets[i]) + "\"") +
                 " " + FormatValue(static_cast<double>(cumulative)) + "\n";
        }
        cumulative += point.counts.back();
        out += base + "_bucket" + WithLabel(labels, "le=\"+Inf\"") + " " +
               FormatValue(static_cast<double>(cumulative)) + "\n";
        out += base + "_sum" + labels + " " + FormatValue(point.value) + "\n";
        out += base + "_count" + labels + " " +
               FormatValue(static_cast<double>(point.count)) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string ExportMetricsJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\n";
  bool first = true;
  for (const MetricPoint& point : snapshot.points) {
    if (!first) out += ",\n";
    first = false;
    out += "  \"" + JsonEscape(point.name) + "\": ";
    if (point.type == MetricPoint::Type::kHistogram) {
      out += "{\"sum\": " + FormatValue(point.value) +
             ", \"count\": " + FormatValue(static_cast<double>(point.count)) +
             ", \"buckets\": [";
      for (size_t i = 0; i < point.buckets.size(); ++i) {
        if (i > 0) out += ", ";
        out += "{\"le\": " + FormatValue(point.buckets[i]) + ", \"count\": " +
               FormatValue(static_cast<double>(point.counts[i])) + "}";
      }
      if (!point.counts.empty()) {
        if (!point.buckets.empty()) out += ", ";
        out += "{\"le\": \"+Inf\", \"count\": " +
               FormatValue(static_cast<double>(point.counts.back())) + "}";
      }
      out += "]}";
    } else {
      out += FormatValue(point.value);
    }
  }
  out += "\n}\n";
  return out;
}

std::string ExportChromeTrace(const std::vector<SpanRecord>& spans) {
  std::string out = "{\"traceEvents\": [\n";
  bool first = true;
  for (const SpanRecord& span : spans) {
    AppendTraceEvent(&out, span, /*pid=*/1, span.start_us, span.dur_us,
                     first);
    first = false;
    if (span.virt_start_s >= 0.0) {
      AppendTraceEvent(&out, span, /*pid=*/2, span.virt_start_s * 1e6,
                       span.virt_dur_s * 1e6, false);
    }
  }
  out += "\n], \"displayTimeUnit\": \"ms\", \"otherData\": "
         "{\"pid_1\": \"wall clock\", \"pid_2\": \"virtual clock\"}}\n";
  return out;
}

}  // namespace robopt
