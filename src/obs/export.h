#ifndef ROBOPT_OBS_EXPORT_H_
#define ROBOPT_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace robopt {

/// Escapes one label *value* per the Prometheus exposition format 0.0.4:
/// backslash -> \\, double-quote -> \", newline -> \n. Metric builders that
/// embed free-form strings (version labels, objective names, paths) must
/// pass them through here before composing a `name{label="value"}` series
/// key.
std::string PromEscapeLabelValue(std::string_view value);

/// Prometheus text exposition (version 0.0.4) of a metrics snapshot:
/// counters/gauges as single samples, histograms as cumulative `_bucket`
/// series with `le` labels plus `_sum` and `_count`. Series whose name
/// carries a `{label="..."}` suffix keep it (the TYPE line uses the base
/// name). Label blocks are defensively normalized on the way out: a raw
/// newline or an un-escaped backslash inside a label value (a builder that
/// skipped PromEscapeLabelValue) is escaped rather than emitted verbatim,
/// so one bad series can never corrupt the whole exposition.
std::string ExportPrometheus(const MetricsSnapshot& snapshot);

/// The same snapshot as a JSON object: name -> value for counters/gauges,
/// name -> {sum, count, buckets: [{le, count}]} for histograms.
std::string ExportMetricsJson(const MetricsSnapshot& snapshot);

/// Chrome trace_event JSON (the "JSON Array Format") of a span set, loadable
/// directly in chrome://tracing or Perfetto. Wall-clock spans become
/// complete ("ph":"X") events under pid 1; spans carrying a virtual-clock
/// interval additionally emit a pid-2 event on the virtual timeline
/// (1 virtual second = 1s of trace time), so a query's simulated execution
/// reads as a second flamegraph row group. Span args and the span hierarchy
/// (parent ids) are preserved in each event's "args".
std::string ExportChromeTrace(const std::vector<SpanRecord>& spans);

}  // namespace robopt

#endif  // ROBOPT_OBS_EXPORT_H_
