#include "obs/build_info.h"

#include <chrono>
#include <string>

#include "obs/export.h"
#include "obs/metrics.h"

namespace robopt {

namespace {

/// Captured at static-init time, so uptime measures the process, not the
/// first export.
const std::chrono::steady_clock::time_point kProcessEpoch =
    std::chrono::steady_clock::now();

}  // namespace

const char* BuildVersion() {
#ifdef ROBOPT_VERSION
  return ROBOPT_VERSION;
#else
  return "unknown";
#endif
}

bool ObsCompiledOut() {
#ifdef ROBOPT_NO_OBS
  return true;
#else
  return false;
#endif
}

double ProcessUptimeSeconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       kProcessEpoch)
      .count();
}

void ExportBuildInfo(MetricsRegistry* registry, std::string_view simd_lane) {
  if (registry == nullptr) return;
  const std::string name =
      "robopt_build_info{version=\"" + PromEscapeLabelValue(BuildVersion()) +
      "\",lane=\"" + PromEscapeLabelValue(simd_lane) + "\",no_obs=\"" +
      (ObsCompiledOut() ? "1" : "0") + "\"}";
  registry->Set(name, 1.0);
  registry->Set("robopt_uptime_seconds", ProcessUptimeSeconds());
}

}  // namespace robopt
