#ifndef ROBOPT_OBS_METRICS_H_
#define ROBOPT_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace robopt {

/// Shards of one hot-path metric. Each shard owns a cache line so two
/// threads bumping the same counter never ping-pong the same line; a thread
/// picks its shard once (thread-local round-robin assignment) and then pays
/// exactly one relaxed atomic add per update. 16 shards saturate the
/// machines this repo targets while keeping Snapshot() reads cheap.
inline constexpr size_t kMetricShards = 16;

/// Returns this thread's shard index in [0, kMetricShards). Stable for the
/// thread's lifetime.
size_t MetricShardIndex();

/// Monotonic counter. Hot-path cost: one relaxed fetch_add on the calling
/// thread's shard.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    shards_[MetricShardIndex()].v.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t sum = 0;
    for (const Shard& shard : shards_) {
      sum += shard.v.load(std::memory_order_relaxed);
    }
    return sum;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  Shard shards_[kMetricShards];
};

/// Point-in-time value, set (not accumulated) by whoever exports it — the
/// derived-export side of the "struct is the source of truth" contract.
/// Single atomic: gauges are written at export time, not on hot paths.
class Gauge {
 public:
  void Set(double value) { bits_.store(Encode(value), std::memory_order_relaxed); }
  void Add(double delta) {
    uint64_t cur = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(cur, Encode(Decode(cur) + delta),
                                        std::memory_order_relaxed)) {
    }
  }
  double Value() const { return Decode(bits_.load(std::memory_order_relaxed)); }

 private:
  static uint64_t Encode(double v);
  static double Decode(uint64_t bits);
  std::atomic<uint64_t> bits_{0};
};

/// Fixed-bucket histogram. Bucket bounds are upper edges (Prometheus `le`
/// semantics) with an implicit +inf bucket; Observe() costs one bucket
/// lookup plus two relaxed atomic adds on the calling thread's shard (the
/// sum is accumulated in nanos so no CAS loop is needed on the hot path).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  /// Default optimize-latency bucket edges: 1us .. ~16s, powers of 4.
  /// Returns a shared immutable vector — per-call GetHistogram sites pass
  /// it without constructing anything.
  static const std::vector<double>& LatencyBucketsUs();

  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts (size bounds()+1; last = +inf bucket).
  std::vector<uint64_t> Counts() const;
  uint64_t TotalCount() const;
  double Sum() const;

 private:
  struct alignas(64) Shard {
    /// Heap array sized bounds_+1; atomics are not movable, so shards own
    /// their storage via unique_ptr.
    std::unique_ptr<std::atomic<uint64_t>[]> counts;
    std::atomic<int64_t> sum_nanos{0};  ///< Sum scaled by 1e9.
  };
  const std::vector<double> bounds_;
  Shard shards_[kMetricShards];
};

/// One exported series in a point-in-time snapshot.
struct MetricPoint {
  enum class Type { kCounter, kGauge, kHistogram };
  std::string name;  ///< Full series name, labels included ("a{b=\"c\"}").
  Type type = Type::kCounter;
  double value = 0.0;  ///< Counter/gauge value; histogram sum.
  /// Histogram only: bucket upper bounds and cumulative-free counts
  /// (buckets.size() == counts.size() - 1; counts.back() = +inf bucket).
  std::vector<double> buckets;
  std::vector<uint64_t> counts;
  uint64_t count = 0;  ///< Histogram observation count.
};

/// Point-in-time copy of every metric in a registry.
struct MetricsSnapshot {
  std::vector<MetricPoint> points;

  /// Value of the named series, or `fallback` if absent. Histograms return
  /// their sum.
  double Value(const std::string& name, double fallback = 0.0) const;
  bool Has(const std::string& name) const;
};

/// Process-wide (or per-service) registry of named metrics.
///
/// Creation (GetCounter / GetGauge / GetHistogram) takes a mutex and is
/// expected once per metric per call site — callers cache the returned
/// pointer, which stays valid for the registry's lifetime. Updates through
/// the returned objects are lock-free sharded atomics; Snapshot() walks the
/// map under the same mutex but only reads the atomics, so it never stalls
/// writers.
///
/// Metric names follow Prometheus conventions (`robopt_<subsystem>_<what>`,
/// `_total` for counters). A name may carry a label suffix in curly braces
/// (e.g. `robopt_breaker_trips{platform="1"}`); the registry treats it as an
/// opaque series key and the Prometheus exporter splits it back out.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the named metric, creating it on first use. A type clash with
  /// an existing name returns nullptr (callers treat it as disabled —
  /// observability must never crash the query path). Lookup is
  /// heterogeneous (string_view against the string-keyed map), so a hit —
  /// the steady state of every instrumented call — allocates nothing.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  /// `bounds` is copied on first creation only (strictly increasing upper
  /// edges); later calls return the existing histogram.
  Histogram* GetHistogram(std::string_view name,
                          const std::vector<double>& bounds);

  /// Export-time convenience: set `name` (gauge semantics) to `value`.
  void Set(std::string_view name, double value);

  MetricsSnapshot Snapshot() const;

  /// The process-wide default registry.
  static MetricsRegistry& Global();

 private:
  struct Entry {
    MetricPoint::Type type;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;  ///< Guards metrics_ (map structure only).
  std::map<std::string, Entry, std::less<>> metrics_;
};

}  // namespace robopt

#endif  // ROBOPT_OBS_METRICS_H_
