#ifndef ROBOPT_OBS_PROFILE_H_
#define ROBOPT_OBS_PROFILE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace robopt {

class MetricsRegistry;
class Tracer;

/// Observability knobs threaded through OptimizeOptions / ExecutorOptions /
/// EnumeratorOptions. All pointers are borrowed and may be null; with
/// everything unset (the default) the instrumented code paths are skipped
/// entirely and results are bit-identical to an uninstrumented build.
///
/// Compile with -DROBOPT_NO_OBS to constant-fold every instrumentation site
/// away (the ROBOPT_OBS_ON macro below becomes `false`).
struct ObsOptions {
  /// Hot-path counters/histograms land here (relaxed sharded atomics).
  MetricsRegistry* metrics = nullptr;
  /// Per-query span trees land here (bounded lock-free ring).
  Tracer* tracer = nullptr;
  /// Fill the per-call OptimizeProfile / ExecProfile on the result struct.
  bool profile = false;
  /// Trace to record spans under; 0 = start a new trace per call.
  uint64_t trace_id = 0;
  /// Parent span for this call's root span (0 = root).
  uint64_t parent_span = 0;

  bool enabled() const {
    return metrics != nullptr || tracer != nullptr || profile;
  }
};

#ifdef ROBOPT_NO_OBS
#define ROBOPT_OBS_ON(obs) false
#else
#define ROBOPT_OBS_ON(obs) ((obs).enabled())
#endif

/// Where one Optimize() call spent its time, in wall microseconds, keyed by
/// the enumeration phases of Algorithm 1.
struct OptimizePhaseMicros {
  double vectorize_us = 0.0;    ///< Vectorize + Split + singleton Enumerates.
  double concat_us = 0.0;       ///< All pairwise Concat merges.
  double prune_us = 0.0;        ///< All prune steps (oracle batches included).
  double predict_us = 0.0;      ///< Final getOptimal (ArgMinCost batch).
  double unvectorize_us = 0.0;  ///< Winning row -> ExecutionPlan.
  double total_us = 0.0;        ///< Whole Optimize() call.
};

/// Per-call optimizer profile, attached to OptimizeResult when
/// ObsOptions::profile is set (all-zero otherwise). Everything here is also
/// derivable from EnumerationStats + OracleCacheStats — the profile adds
/// the per-phase timeline and the pruning split in one exportable struct.
struct OptimizeProfile {
  bool enabled = false;
  uint64_t trace_id = 0;  ///< Trace holding this call's span tree (0 = off).
  OptimizePhaseMicros phase;
  size_t plans_enumerated = 0;  ///< Vectors materialized (Table I metric).
  /// Rows into/out of boundary pruning (plain PruneBoundary and the
  /// interesting-property variant both count here).
  size_t boundary_prune_rows_in = 0;
  size_t boundary_prune_rows_out = 0;
  /// Rows into/out of the switch-cap (property-heuristic) prune.
  size_t switch_prune_rows_in = 0;
  size_t switch_prune_rows_out = 0;
  size_t oracle_rows = 0;     ///< Rows sent to the cost oracle.
  size_t oracle_batches = 0;
  size_t oracle_cache_hits = 0;    ///< Cross-batch memo hits.
  size_t oracle_cache_dups = 0;    ///< Within-batch dedup folds.
  size_t forest_rows_scored = 0;   ///< Unique rows that reached the model.
};

/// Per-operator slice of one execution.
struct OpProfile {
  int op = 0;            ///< OperatorId.
  int platform = 0;      ///< Assigned platform.
  int attempts = 0;      ///< Fault-layer attempts (1 = clean run).
  double wall_us = 0.0;  ///< Wall time inside the operator's kernel runs.
  double virt_s = 0.0;   ///< Virtual seconds charged to the operator.
};

/// Per-call executor profile, attached to ExecResult when
/// ObsOptions::profile is set. Per-Execute, never shared: any cross-thread
/// aggregation goes through MetricsRegistry's atomics (see DESIGN.md,
/// "Observability").
struct ExecProfile {
  bool enabled = false;
  uint64_t trace_id = 0;
  std::vector<OpProfile> ops;
  int retries = 0;
  int faults_injected = 0;
  uint64_t breaker_rejections = 0;
  double conversion_virt_s = 0.0;  ///< Virtual seconds in conversions.
  double total_wall_us = 0.0;      ///< Whole Execute() call.
};

}  // namespace robopt

#endif  // ROBOPT_OBS_PROFILE_H_
