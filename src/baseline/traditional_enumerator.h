#ifndef ROBOPT_BASELINE_TRADITIONAL_ENUMERATOR_H_
#define ROBOPT_BASELINE_TRADITIONAL_ENUMERATOR_H_

#include <memory>
#include <vector>

#include "baseline/cost_model.h"
#include "common/status.h"
#include "core/operations.h"
#include "ml/model.h"

namespace robopt {

/// Which oracle the traditional enumerator consults.
enum class TraditionalOracle {
  kCostModel,  ///< RHEEMix: the tuned linear cost model.
  kMlModel,    ///< Rheem-ML: an ML model called as a black box — every
               ///< sub-plan is re-transformed into a vector per invocation
               ///< (the overhead the paper's Fig. 1/9 quantify).
};

struct TraditionalOptions {
  TraditionalOracle oracle = TraditionalOracle::kCostModel;
  bool prune = true;  ///< Boundary pruning, same as Robopt's (fairness).
  uint64_t allowed_platform_mask = ~0ull;
};

struct TraditionalStats {
  /// Sub-plan objects materialized during enumeration.
  size_t subplans_created = 0;
  /// Time spent transforming sub-plan object graphs into feature vectors
  /// (Rheem-ML only; the paper measured 47% of optimization time here).
  double vectorize_ms = 0.0;
  /// Time spent inside the oracle.
  double oracle_ms = 0.0;
  double total_ms = 0.0;
};

struct TraditionalResult {
  ExecutionPlan plan;
  double predicted_cost = 0.0;
  TraditionalStats stats;

  TraditionalResult() : plan(nullptr, nullptr) {}
};

/// The traditional, *object-based* plan enumerator used by the paper's two
/// baselines. It explores exactly the same search space with the same
/// boundary pruning and the same (paper) priority order as Robopt — the
/// difference is purely representational: sub-plans are pointer-linked
/// operator objects that are re-allocated on every concatenation and walked
/// on every costing, instead of contiguous float rows.
class TraditionalEnumerator {
 public:
  /// `cost_model` is required for kCostModel, `ml_model` for kMlModel; the
  /// context provides the plan, cardinalities and (for Rheem-ML) the
  /// feature schema. All pointers must outlive the enumerator.
  TraditionalEnumerator(const EnumerationContext* ctx,
                        const CostModel* cost_model,
                        const RuntimeModel* ml_model,
                        TraditionalOptions options);

  StatusOr<TraditionalResult> Run();

 private:
  struct ObjectOperator;
  struct ObjectSubplan;

  double CostOf(const ObjectSubplan& subplan, TraditionalStats* stats) const;
  std::vector<float> VectorizeSubplan(const ObjectSubplan& subplan) const;

  const EnumerationContext* ctx_;
  const CostModel* cost_model_;
  const RuntimeModel* ml_model_;
  TraditionalOptions options_;
};

}  // namespace robopt

#endif  // ROBOPT_BASELINE_TRADITIONAL_ENUMERATOR_H_
