#include "baseline/baseline_optimizers.h"

#include <limits>

#include "common/stopwatch.h"

namespace robopt {
namespace {

/// Shared driver: run the traditional enumerator over the whole platform
/// mask, or per-platform in single-platform mode.
StatusOr<BaselineResult> RunTraditional(
    const PlatformRegistry* registry, const FeatureSchema* schema,
    const CostModel* cost_model, const RuntimeModel* ml_model,
    TraditionalOracle oracle, const LogicalPlan& plan,
    const Cardinalities* cards, const OptimizeOptions& options) {
  Stopwatch stopwatch;
  TraditionalOptions traditional;
  traditional.oracle = oracle;
  traditional.prune = options.prune != PruneMode::kNone;

  if (options.single_platform) {
    BaselineResult best;
    best.predicted_cost = std::numeric_limits<double>::infinity();
    bool found = false;
    for (const Platform& platform : registry->platforms()) {
      if (!((options.allowed_platform_mask >> platform.id) & 1ull)) continue;
      auto ctx = EnumerationContext::Make(&plan, registry, schema, cards,
                                          1ull << platform.id);
      if (!ctx.ok()) continue;
      TraditionalEnumerator enumerator(&ctx.value(), cost_model, ml_model,
                                       traditional);
      auto run = enumerator.Run();
      if (!run.ok()) return run.status();
      found = true;
      best.stats.subplans_created += run->stats.subplans_created;
      best.stats.vectorize_ms += run->stats.vectorize_ms;
      best.stats.oracle_ms += run->stats.oracle_ms;
      if (run->predicted_cost < best.predicted_cost) {
        best.plan = std::move(run->plan);
        best.predicted_cost = run->predicted_cost;
        best.chosen_platform = platform.id;
      }
    }
    if (!found) {
      return Status::InvalidArgument(
          "no single platform can execute the whole plan");
    }
    best.latency_ms = stopwatch.ElapsedMillis();
    return best;
  }

  auto ctx = EnumerationContext::Make(&plan, registry, schema, cards,
                                      options.allowed_platform_mask);
  if (!ctx.ok()) return ctx.status();
  TraditionalEnumerator enumerator(&ctx.value(), cost_model, ml_model,
                                   traditional);
  auto run = enumerator.Run();
  if (!run.ok()) return run.status();
  BaselineResult result;
  result.plan = std::move(run->plan);
  result.predicted_cost = run->predicted_cost;
  result.stats = run->stats;
  result.latency_ms = stopwatch.ElapsedMillis();
  return result;
}

}  // namespace

StatusOr<BaselineResult> RheemixOptimizer::Optimize(
    const LogicalPlan& plan, const Cardinalities* cards,
    const OptimizeOptions& options) const {
  return RunTraditional(registry_, schema_, cost_model_, nullptr,
                        TraditionalOracle::kCostModel, plan, cards, options);
}

StatusOr<BaselineResult> RheemMlOptimizer::Optimize(
    const LogicalPlan& plan, const Cardinalities* cards,
    const OptimizeOptions& options) const {
  return RunTraditional(registry_, schema_, nullptr, model_,
                        TraditionalOracle::kMlModel, plan, cards, options);
}

}  // namespace robopt
