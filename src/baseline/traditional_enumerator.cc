#include "baseline/traditional_enumerator.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <unordered_map>

#include "common/check.h"
#include "common/stopwatch.h"

namespace robopt {

/// One operator instance in an object sub-plan. Deliberately pointer-linked
/// and heap-allocated: this is how Rheem's (and most optimizers') sub-plans
/// look, and it is the representation cost the vectorized design removes.
struct TraditionalEnumerator::ObjectOperator {
  OperatorId op = 0;
  uint8_t alt = 0;
  std::vector<std::shared_ptr<ObjectOperator>> upstream;
};

struct TraditionalEnumerator::ObjectSubplan {
  std::vector<std::shared_ptr<ObjectOperator>> ops;
  Scope scope;
};

TraditionalEnumerator::TraditionalEnumerator(const EnumerationContext* ctx,
                                             const CostModel* cost_model,
                                             const RuntimeModel* ml_model,
                                             TraditionalOptions options)
    : ctx_(ctx),
      cost_model_(cost_model),
      ml_model_(ml_model),
      options_(options) {}

std::vector<float> TraditionalEnumerator::VectorizeSubplan(
    const ObjectSubplan& subplan) const {
  // Walks the object graph and produces exactly the feature row the
  // vectorized path maintains incrementally — this per-call reconstruction
  // is Rheem-ML's overhead.
  const FeatureSchema& schema = *ctx_->schema;
  const LogicalPlan& plan = *ctx_->plan;
  std::vector<float> f(schema.width(), 0.0f);
  bool any_pipeline = false;
  for (const auto& obj : subplan.ops) {
    const LogicalOperator& op = plan.op(obj->op);
    const Topology topology = ctx_->topologies[obj->op];
    if (topology == Topology::kLoop) {
      if (op.kind == LogicalOpKind::kLoopBegin) {
        f[schema.TopologyCell(Topology::kLoop)] += 1.0f;
      }
    } else if (topology == Topology::kPipeline) {
      any_pipeline = true;
    } else {
      f[schema.TopologyCell(topology)] += 1.0f;
    }
    const LogicalOpKind kind = op.kind;
    f[schema.OpCountCell(kind)] += 1.0f;
    f[schema.OpAltCell(kind, obj->alt)] += 1.0f;
    f[schema.OpTopologyCell(kind, topology)] += 1.0f;
    f[schema.OpUdfCell(kind)] += static_cast<float>(op.udf);
    const float iters = static_cast<float>(ctx_->loop_iters[obj->op]);
    f[schema.OpInCardCell(kind)] +=
        static_cast<float>(ctx_->cards.input[obj->op]) * iters;
    f[schema.OpOutCardCell(kind)] +=
        static_cast<float>(ctx_->cards.output[obj->op]) * iters;
    f[schema.TupleSizeCell()] =
        std::max(f[schema.TupleSizeCell()],
                 static_cast<float>(op.tuple_bytes));
  }
  if (any_pipeline) f[schema.TopologyCell(Topology::kPipeline)] = 1.0f;

  // Conversions on in-scope cross-platform edges.
  std::unordered_map<OperatorId, PlatformId> platform_of;
  platform_of.reserve(subplan.ops.size());
  for (const auto& obj : subplan.ops) {
    platform_of[obj->op] = ctx_->alt_platform[obj->op][obj->alt];
  }
  for (const EnumerationContext::Edge& edge : ctx_->edges) {
    auto from_it = platform_of.find(edge.from);
    auto to_it = platform_of.find(edge.to);
    if (from_it == platform_of.end() || to_it == platform_of.end()) continue;
    if (from_it->second == to_it->second) continue;
    const float conv_iters = static_cast<float>(
        std::min(ctx_->loop_iters[edge.from], ctx_->loop_iters[edge.to]));
    const float tuples =
        static_cast<float>(ctx_->cards.output[edge.from]) * conv_iters;
    f[ctx_->conv_cell_count[from_it->second][to_it->second]] += conv_iters;
    f[ctx_->conv_cell_in[from_it->second][to_it->second]] += tuples;
    f[ctx_->conv_cell_out[from_it->second][to_it->second]] += tuples;
  }
  return f;
}

double TraditionalEnumerator::CostOf(const ObjectSubplan& subplan,
                                     TraditionalStats* stats) const {
  if (options_.oracle == TraditionalOracle::kMlModel) {
    Stopwatch vectorize_watch;
    const std::vector<float> features = VectorizeSubplan(subplan);
    stats->vectorize_ms += vectorize_watch.ElapsedMillis();
    Stopwatch oracle_watch;
    const float cost =
        ml_model_->Predict(features.data(), features.size());
    stats->oracle_ms += oracle_watch.ElapsedMillis();
    return cost;
  }
  // RHEEMix: materialize the assignment and walk it with the cost model.
  Stopwatch oracle_watch;
  ExecutionPlan exec(ctx_->plan, ctx_->registry);
  std::vector<uint8_t> mask(ctx_->plan->num_operators(), 0);
  for (const auto& obj : subplan.ops) {
    exec.Assign(obj->op, obj->alt);
    mask[obj->op] = 1;
  }
  const double cost = cost_model_->SubplanCost(exec, ctx_->cards, mask);
  stats->oracle_ms += oracle_watch.ElapsedMillis();
  return cost;
}

StatusOr<TraditionalResult> TraditionalEnumerator::Run() {
  Stopwatch total_watch;
  const LogicalPlan& plan = *ctx_->plan;
  const int n = plan.num_operators();
  TraditionalResult result;

  if (options_.oracle == TraditionalOracle::kCostModel &&
      cost_model_ == nullptr) {
    return Status::InvalidArgument("cost model oracle requires a CostModel");
  }
  if (options_.oracle == TraditionalOracle::kMlModel && ml_model_ == nullptr) {
    return Status::InvalidArgument("ML oracle requires a RuntimeModel");
  }

  // Singleton sub-plan groups, one per operator.
  std::vector<std::vector<ObjectSubplan>> groups(n);
  std::vector<uint8_t> alive(n, 1);
  std::vector<size_t> owner(n);
  for (int op = 0; op < n; ++op) {
    owner[op] = op;
    for (size_t a = 0; a < ctx_->allowed_alts[op].size(); ++a) {
      ObjectSubplan single;
      auto obj = std::make_shared<ObjectOperator>();
      obj->op = static_cast<OperatorId>(op);
      obj->alt = ctx_->allowed_alts[op][a];
      single.ops.push_back(std::move(obj));
      single.scope.set(op);
      groups[op].push_back(std::move(single));
      ++result.stats.subplans_created;
    }
  }

  auto children_of = [&](size_t index) {
    std::set<size_t> children;
    for (int op = 0; op < n; ++op) {
      if (!groups[index].empty() && groups[index][0].scope.test(op)) {
        for (OperatorId child : plan.AllChildren(static_cast<OperatorId>(op))) {
          if (owner[child] != index) children.insert(owner[child]);
        }
      }
    }
    return children;
  };

  auto concat_pair = [&](const ObjectSubplan& a,
                         const ObjectSubplan& b) {
    // Deep-copy both object graphs into a fresh sub-plan (Rheem's
    // concatenation allocates new plan objects).
    ObjectSubplan out;
    out.scope = a.scope | b.scope;
    std::unordered_map<const ObjectOperator*, std::shared_ptr<ObjectOperator>>
        cloned;
    for (const ObjectSubplan* side : {&a, &b}) {
      for (const auto& obj : side->ops) {
        auto copy = std::make_shared<ObjectOperator>();
        copy->op = obj->op;
        copy->alt = obj->alt;
        cloned[obj.get()] = copy;
        out.ops.push_back(std::move(copy));
      }
    }
    for (const ObjectSubplan* side : {&a, &b}) {
      for (const auto& obj : side->ops) {
        for (const auto& up : obj->upstream) {
          cloned[obj.get()]->upstream.push_back(cloned[up.get()]);
        }
      }
    }
    // Wire new cross edges.
    std::unordered_map<OperatorId, std::shared_ptr<ObjectOperator>> by_id;
    for (const auto& obj : out.ops) by_id[obj->op] = obj;
    for (const EnumerationContext::Edge& edge : ctx_->edges) {
      const bool cross = (a.scope.test(edge.from) && b.scope.test(edge.to)) ||
                         (b.scope.test(edge.from) && a.scope.test(edge.to));
      if (cross) by_id[edge.to]->upstream.push_back(by_id[edge.from]);
    }
    return out;
  };

  auto prune_group = [&](std::vector<ObjectSubplan>& group) {
    if (!options_.prune || group.size() <= 1) return;
    const std::vector<OperatorId> boundary =
        ComputeBoundary(*ctx_, group[0].scope);
    std::map<std::string, std::pair<double, size_t>> best;
    for (size_t i = 0; i < group.size(); ++i) {
      std::unordered_map<OperatorId, PlatformId> platform_of;
      for (const auto& obj : group[i].ops) {
        platform_of[obj->op] = ctx_->alt_platform[obj->op][obj->alt];
      }
      std::string key(boundary.size(), '\0');
      for (size_t bi = 0; bi < boundary.size(); ++bi) {
        key[bi] = static_cast<char>(platform_of[boundary[bi]] + 1);
      }
      const double cost = CostOf(group[i], &result.stats);
      auto [it, inserted] = best.try_emplace(key, cost, i);
      if (!inserted && cost < it->second.first) it->second = {cost, i};
    }
    std::vector<ObjectSubplan> kept;
    kept.reserve(best.size());
    std::vector<size_t> keep_rows;
    for (const auto& [key, entry] : best) keep_rows.push_back(entry.second);
    std::sort(keep_rows.begin(), keep_rows.end());
    for (size_t row : keep_rows) kept.push_back(std::move(group[row]));
    group = std::move(kept);
  };

  std::vector<uint64_t> seq(n, 0);
  uint64_t seq_counter = n;
  size_t alive_count = n;
  while (alive_count > 1) {
    // Paper priority: |V| x prod |children|; ties by smaller boundary, then
    // queue-entry order — identical to the vectorized enumerator, so both
    // explore the same sub-plans.
    size_t best = SIZE_MAX;
    double best_priority = -1.0;
    std::vector<size_t> best_children;
    for (int i = 0; i < n; ++i) {
      if (!alive[i]) continue;
      const auto children = children_of(i);
      if (children.empty()) continue;
      double priority = static_cast<double>(groups[i].size());
      for (size_t child : children) {
        priority *= static_cast<double>(groups[child].size());
      }
      const bool wins =
          best == SIZE_MAX || priority > best_priority ||
          (priority == best_priority &&
           (ComputeBoundary(*ctx_, groups[i][0].scope).size() <
                ComputeBoundary(*ctx_, groups[best][0].scope).size() ||
            (ComputeBoundary(*ctx_, groups[i][0].scope).size() ==
                 ComputeBoundary(*ctx_, groups[best][0].scope).size() &&
             seq[i] < seq[best])));
      if (wins) {
        best = i;
        best_priority = priority;
        best_children.assign(children.begin(), children.end());
      }
    }
    if (best == SIZE_MAX) {
      return Status::Internal("traditional enumeration stuck (disconnected)");
    }
    for (size_t child : best_children) {
      if (!alive[child] || child == best) continue;
      std::vector<ObjectSubplan> merged;
      merged.reserve(groups[best].size() * groups[child].size());
      for (const ObjectSubplan& a : groups[best]) {
        for (const ObjectSubplan& b : groups[child]) {
          merged.push_back(concat_pair(a, b));
          ++result.stats.subplans_created;
        }
      }
      prune_group(merged);
      groups[best] = std::move(merged);
      alive[child] = 0;
      --alive_count;
      groups[child].clear();
      for (int op = 0; op < n; ++op) {
        if (owner[op] == static_cast<size_t>(child)) owner[op] = best;
      }
    }
    seq[best] = ++seq_counter;
  }

  size_t final_index = SIZE_MAX;
  for (int i = 0; i < n; ++i) {
    if (alive[i]) final_index = i;
  }
  ROBOPT_CHECK(final_index != SIZE_MAX);
  std::vector<ObjectSubplan>& final_group = groups[final_index];
  if (final_group.empty()) {
    return Status::Internal("traditional enumeration produced no plans");
  }
  double best_cost = std::numeric_limits<double>::infinity();
  size_t best_row = 0;
  for (size_t i = 0; i < final_group.size(); ++i) {
    const double cost = CostOf(final_group[i], &result.stats);
    if (cost < best_cost) {
      best_cost = cost;
      best_row = i;
    }
  }
  ExecutionPlan exec(ctx_->plan, ctx_->registry);
  for (const auto& obj : final_group[best_row].ops) {
    exec.Assign(obj->op, obj->alt);
  }
  result.plan = std::move(exec);
  result.predicted_cost = best_cost;
  result.stats.total_ms = total_watch.ElapsedMillis();
  return result;
}

}  // namespace robopt
