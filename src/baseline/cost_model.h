#ifndef ROBOPT_BASELINE_COST_MODEL_H_
#define ROBOPT_BASELINE_COST_MODEL_H_

#include <array>
#include <vector>

#include "exec/virtual_cost.h"
#include "plan/cardinality.h"
#include "platform/execution_plan.h"

namespace robopt {

/// Rheem-style tuned cost model: per execution operator a *linear* formula
///
///     cost_s = c0 + c_in * in_tuples + c_out * out_tuples
///
/// with per-(kind, alternative) coefficients, plus linear conversion and
/// per-platform startup terms. This is the paper's RHEEMix baseline and the
/// object of its critique: the form is fixed (linear), so no amount of
/// tuning captures shuffle nonlinearity, memory ceilings, or iteration
/// subtleties (Section II, Section VII-C).
///
/// Two tuning levels mirror the Fig. 2 experiment:
///  - kWellTuned: coefficients least-squares-fit against the ground truth
///    over a wide cardinality grid (the "two weeks of trial and error"
///    administrator, automated);
///  - kSimplyTuned: coefficients extrapolated from profiling each operator
///    once at small scale (the "single operator profiling" administrator).
class CostModel {
 public:
  enum class Tuning { kWellTuned, kSimplyTuned };

  /// Calibrates against `ground_truth` (the simulated cluster). Both
  /// pointers must outlive the model.
  CostModel(const PlatformRegistry* registry, const VirtualCost* ground_truth,
            Tuning tuning);

  /// Cost of a complete execution plan (loop-aware in the naive way
  /// described below).
  double PlanCost(const ExecutionPlan& plan, const Cardinalities& cards) const;

  /// Cost of the fragment of `plan` restricted to assigned operators with
  /// `scope_mask[op] != 0` (used by the object-based enumerators to cost
  /// partial subplans). Conversions between two in-scope operators are
  /// included; startup is charged per distinct platform in scope.
  double SubplanCost(const ExecutionPlan& plan, const Cardinalities& cards,
                     const std::vector<uint8_t>& scope_mask) const;

  /// Single-operator cost: c0 + c_in*in + c_out*out, with the naive loop
  /// semantics of the modeling-gap cases (see .cc).
  double OpCost(const LogicalOperator& op, const ExecutionAlt& alt,
                double in_tuples, double out_tuples, int loop_iterations) const;

  double ConversionCostLinear(const ConversionInstance& conv, double tuples,
                              double tuple_bytes) const;

  double StartupCost(PlatformId platform) const {
    return startup_[platform];
  }

  Tuning tuning() const { return tuning_; }

 private:
  struct Coefficients {
    double c0 = 0.0;
    double c_in = 0.0;
    double c_out = 0.0;
  };

  void Calibrate(const VirtualCost& ground_truth);

  const PlatformRegistry* registry_;
  Tuning tuning_;
  /// coeffs_[kind][alt_index].
  std::array<std::vector<Coefficients>, kNumLogicalOpKinds> coeffs_;
  /// Conversion cost coefficients per (from_platform, to_platform).
  std::vector<std::vector<Coefficients>> conv_coeffs_;
  std::vector<double> startup_;
};

}  // namespace robopt

#endif  // ROBOPT_BASELINE_COST_MODEL_H_
