#include "baseline/cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace robopt {
namespace {

/// Least-squares fit of cost ~= c0 + c_in*in + c_out*out over sample rows
/// (in, out, cost). Solves the 3x3 normal equations directly.
struct LinearFit {
  double c0 = 0.0;
  double c_in = 0.0;
  double c_out = 0.0;
};

LinearFit FitLinear(const std::vector<std::array<double, 3>>& samples) {
  // Normal equations A^T A x = A^T b with A rows (1, in, out).
  double ata[3][3] = {};
  double atb[3] = {};
  for (const auto& [in, out, cost] : samples) {
    const double row[3] = {1.0, in, out};
    for (int i = 0; i < 3; ++i) {
      atb[i] += row[i] * cost;
      for (int j = 0; j < 3; ++j) ata[i][j] += row[i] * row[j];
    }
  }
  // Gaussian elimination with partial pivoting (3x3).
  double m[3][4];
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) m[i][j] = ata[i][j];
    m[i][3] = atb[i];
  }
  for (int col = 0; col < 3; ++col) {
    int pivot = col;
    for (int r = col + 1; r < 3; ++r) {
      if (std::abs(m[r][col]) > std::abs(m[pivot][col])) pivot = r;
    }
    std::swap(m[col], m[pivot]);
    if (std::abs(m[col][col]) < 1e-18) continue;  // Degenerate; leave 0.
    for (int r = 0; r < 3; ++r) {
      if (r == col) continue;
      const double factor = m[r][col] / m[col][col];
      for (int c = col; c < 4; ++c) m[r][c] -= factor * m[col][c];
    }
  }
  LinearFit fit;
  fit.c0 = std::abs(m[0][0]) > 1e-18 ? m[0][3] / m[0][0] : 0.0;
  fit.c_in = std::abs(m[1][1]) > 1e-18 ? m[1][3] / m[1][1] : 0.0;
  fit.c_out = std::abs(m[2][2]) > 1e-18 ? m[2][3] / m[2][2] : 0.0;
  // Negative coefficients are artifacts of fitting a nonlinear truth; a
  // careful administrator clamps them.
  fit.c0 = std::max(fit.c0, 0.0);
  fit.c_in = std::max(fit.c_in, 0.0);
  fit.c_out = std::max(fit.c_out, 0.0);
  return fit;
}

/// Fixed per-conversion coordination penalty RHEEMix's administrators bake
/// in ("platform switches are rarely worth it") — one of the fixed-form
/// assumptions the paper's Section VII-C2 shows misfiring.
constexpr double kSwitchPenaltyS = 0.5;

}  // namespace

CostModel::CostModel(const PlatformRegistry* registry,
                     const VirtualCost* ground_truth, Tuning tuning)
    : registry_(registry), tuning_(tuning) {
  Calibrate(*ground_truth);
}

void CostModel::Calibrate(const VirtualCost& ground_truth) {
  // Cardinality grid: the well-tuned administrator profiles every operator
  // across five orders of magnitude; the simply-tuned one profiles once at
  // small scale and extrapolates.
  const std::vector<double> well_grid = {1e3, 1e4, 1e5, 1e6, 1e7, 1e8};
  const std::vector<double> simple_grid = {1e2, 1e4};
  const std::vector<double>& grid =
      tuning_ == Tuning::kWellTuned ? well_grid : simple_grid;

  startup_.assign(registry_->num_platforms(), 0.0);
  for (const Platform& platform : registry_->platforms()) {
    if (tuning_ == Tuning::kWellTuned) {
      startup_[platform.id] = ground_truth.profile(platform.id).startup_s;
    } else {
      // Single-operator profiling cannot separate job startup from operator
      // cost; it leaks into each operator's c0 instead (see below).
      startup_[platform.id] = 0.0;
    }
  }

  for (int k = 0; k < kNumLogicalOpKinds; ++k) {
    const auto kind = static_cast<LogicalOpKind>(k);
    const auto& alts = registry_->AlternativesFor(kind);
    coeffs_[k].assign(alts.size(), Coefficients{});
    for (size_t a = 0; a < alts.size(); ++a) {
      LogicalOperator probe;
      probe.kind = kind;
      probe.udf = UdfComplexity::kLinear;
      probe.tuple_bytes = 16.0;
      std::vector<std::array<double, 3>> samples;
      for (double in : grid) {
        for (double out_ratio : {0.1, 1.0}) {
          const double out = in * out_ratio;
          double cost =
              ground_truth.OpCostRaw(probe, alts[a], in, out, /*iteration=*/0);
          if (!std::isfinite(cost)) continue;
          if (tuning_ == Tuning::kSimplyTuned) {
            // The profiling job's startup pollutes the measurement.
            cost += ground_truth.profile(alts[a].platform).startup_s;
          }
          samples.push_back({in, out, cost});
        }
      }
      const LinearFit fit = FitLinear(samples);
      coeffs_[k][a] = Coefficients{fit.c0, fit.c_in, fit.c_out};
    }
  }

  const int num_platforms = registry_->num_platforms();
  conv_coeffs_.assign(num_platforms,
                      std::vector<Coefficients>(num_platforms));
  for (PlatformId from = 0; from < num_platforms; ++from) {
    for (PlatformId to = 0; to < num_platforms; ++to) {
      if (from == to) continue;
      ConversionInstance conv;
      conv.from_platform = from;
      conv.to_platform = to;
      conv.kind = ConversionFor(registry_->platform(from).cls,
                                registry_->platform(to).cls);
      std::vector<std::array<double, 3>> samples;
      for (double tuples : grid) {
        const double cost = ground_truth.ConversionCost(conv, tuples, 16.0);
        samples.push_back({tuples, tuples, cost});
      }
      const LinearFit fit = FitLinear(samples);
      conv_coeffs_[from][to] =
          Coefficients{fit.c0, fit.c_in + fit.c_out, 0.0};
    }
  }
}

double CostModel::OpCost(const LogicalOperator& op, const ExecutionAlt& alt,
                         double in_tuples, double out_tuples,
                         int loop_iterations) const {
  const auto& alts = registry_->AlternativesFor(op.kind);
  size_t alt_index = static_cast<size_t>(&alt - alts.data());
  if (alt_index >= alts.size()) {
    // `alt` is a copy living outside the registry: resolve structurally.
    for (size_t a = 0; a < alts.size(); ++a) {
      if (alts[a].platform == alt.platform && alts[a].variant == alt.variant) {
        alt_index = a;
        break;
      }
    }
    ROBOPT_CHECK(alt_index < alts.size());
  }
  const Coefficients& c = coeffs_[static_cast<int>(op.kind)][alt_index];
  // Complexity classes are documented; administrators scale by them.
  static constexpr double kUdfFactor[5] = {0.3, 0.7, 1.0, 5.0, 20.0};
  const double udf = kUdfFactor[static_cast<int>(op.udf)];
  const double variable = (c.c_in * in_tuples + c.c_out * out_tuples) * udf;
  const double once = c.c0 + variable;
  const int iterations = std::max(1, loop_iterations);

  // Naive loop semantics — the modeling gaps of Section VII-C2:
  //  * fixed per-operator overheads (c0) are charged once, as if the
  //    engine scheduled the loop body a single time — reality: Spark and
  //    Flink pay scheduling and re-broadcasts on *every* iteration;
  //  * Broadcast / Cache are assumed one-time materializations;
  //  * the stateful sampler is assumed to re-process its input every
  //    iteration (reality: it keeps state and only shuffles once);
  //  * the cache-based sampler is assumed to read cheap batches after its
  //    first run (reality: caching destroys its state).
  if (op.kind == LogicalOpKind::kBroadcast ||
      op.kind == LogicalOpKind::kCache) {
    return once;
  }
  if (op.kind == LogicalOpKind::kSample) {
    if (alt.variant == 0) {
      return once * iterations;  // Pessimistic: full cost every iteration.
    }
    const double cheap_read = c.c_out * out_tuples;
    return once + (iterations - 1) * cheap_read;  // Optimistic steady state.
  }
  return c.c0 + variable * iterations;
}

double CostModel::ConversionCostLinear(const ConversionInstance& conv,
                                       double tuples,
                                       double tuple_bytes) const {
  const Coefficients& c = conv_coeffs_[conv.from_platform][conv.to_platform];
  const double scale = tuple_bytes / 16.0;
  return kSwitchPenaltyS + c.c0 + c.c_in * tuples * scale;
}

double CostModel::SubplanCost(const ExecutionPlan& plan,
                              const Cardinalities& cards,
                              const std::vector<uint8_t>& scope_mask) const {
  const LogicalPlan& logical = plan.logical_plan();
  double total = 0.0;
  uint64_t platforms_seen = 0;
  for (const LogicalOperator& op : logical.operators()) {
    if (!scope_mask[op.id] || !plan.IsAssigned(op.id)) continue;
    const ExecutionAlt& alt = plan.alt(op.id);
    total += OpCost(op, alt, cards.input[op.id], cards.output[op.id],
                    logical.LoopIterations(op.id));
    platforms_seen |= 1ull << alt.platform;
  }
  for (PlatformId p = 0; p < registry_->num_platforms(); ++p) {
    if ((platforms_seen >> p) & 1ull) total += startup_[p];
  }
  // Conversions whose both endpoints are inside the scope. They are charged
  // once — RHEEMix does not model loop-carried re-movement.
  for (const LogicalOperator& op : logical.operators()) {
    if (!scope_mask[op.id] || !plan.IsAssigned(op.id)) continue;
    for (OperatorId child : logical.AllChildren(op.id)) {
      if (!scope_mask[child] || !plan.IsAssigned(child)) continue;
      const PlatformId from = plan.PlatformOf(op.id);
      const PlatformId to = plan.PlatformOf(child);
      if (from == to) continue;
      ConversionInstance conv;
      conv.from_platform = from;
      conv.to_platform = to;
      conv.kind = ConversionFor(registry_->platform(from).cls,
                                registry_->platform(to).cls);
      total += ConversionCostLinear(conv, cards.output[op.id],
                                    logical.op(op.id).tuple_bytes);
    }
  }
  return total;
}

double CostModel::PlanCost(const ExecutionPlan& plan,
                           const Cardinalities& cards) const {
  std::vector<uint8_t> all(plan.logical_plan().num_operators(), 1);
  return SubplanCost(plan, cards, all);
}

}  // namespace robopt
