#ifndef ROBOPT_BASELINE_BASELINE_OPTIMIZERS_H_
#define ROBOPT_BASELINE_BASELINE_OPTIMIZERS_H_

#include "baseline/traditional_enumerator.h"
#include "core/optimizer.h"

namespace robopt {

/// Result of one baseline optimization call.
struct BaselineResult {
  ExecutionPlan plan;
  double predicted_cost = 0.0;
  double latency_ms = 0.0;
  TraditionalStats stats;
  PlatformId chosen_platform = 0;

  BaselineResult() : plan(nullptr, nullptr) {}
};

/// RHEEMix: Rheem's cost-based optimizer — traditional object-based
/// enumeration with boundary pruning, guided by the tuned linear cost model.
class RheemixOptimizer {
 public:
  /// All pointers must outlive the optimizer. `schema` is only used to
  /// build enumeration contexts (the cost model itself is vector-free).
  RheemixOptimizer(const PlatformRegistry* registry,
                   const FeatureSchema* schema, const CostModel* cost_model)
      : registry_(registry), schema_(schema), cost_model_(cost_model) {}

  StatusOr<BaselineResult> Optimize(const LogicalPlan& plan,
                                    const Cardinalities* cards = nullptr,
                                    const OptimizeOptions& options = {}) const;

 private:
  const PlatformRegistry* registry_;
  const FeatureSchema* schema_;
  const CostModel* cost_model_;
};

/// Rheem-ML: the strawman the paper compares against — keep the traditional
/// object-based enumeration, but replace the cost model with an ML model
/// called as a black box. Every oracle call re-transforms the sub-plan into
/// a vector.
class RheemMlOptimizer {
 public:
  RheemMlOptimizer(const PlatformRegistry* registry,
                   const FeatureSchema* schema, const RuntimeModel* model)
      : registry_(registry), schema_(schema), model_(model) {}

  StatusOr<BaselineResult> Optimize(const LogicalPlan& plan,
                                    const Cardinalities* cards = nullptr,
                                    const OptimizeOptions& options = {}) const;

 private:
  const PlatformRegistry* registry_;
  const FeatureSchema* schema_;
  const RuntimeModel* model_;
};

}  // namespace robopt

#endif  // ROBOPT_BASELINE_BASELINE_OPTIMIZERS_H_
