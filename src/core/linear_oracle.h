#ifndef ROBOPT_CORE_LINEAR_ORACLE_H_
#define ROBOPT_CORE_LINEAR_ORACLE_H_

#include <vector>

#include "common/rng.h"
#include "core/cost_oracle.h"
#include "core/feature_schema.h"

namespace robopt {

/// Deterministic oracle: cost = sum_i w_i * feature_i with non-negative
/// weights and zero weight on the max-merged cells, making the cost exactly
/// additive across merges. Stands in for the paper's "pricing catalogue"
/// oracle flavor; tests and the search-space benches use it because brute
/// force minima are cheap to verify against it.
class LinearFeatureOracle : public CostOracle {
 public:
  LinearFeatureOracle(const FeatureSchema& schema, uint64_t seed) {
    Rng rng(seed);
    weights_.resize(schema.width());
    for (double& w : weights_) w = rng.NextUniform(0.0, 1.0);
    // Max-merged cells break additivity; ignore them.
    weights_[schema.TopologyCell(Topology::kPipeline)] = 0.0;
    weights_[schema.TupleSizeCell()] = 0.0;
  }

  void EstimateBatch(const float* x, size_t n, size_t dim,
                     float* out) const override {
    Count(n);
    for (size_t i = 0; i < n; ++i) {
      double acc = 0.0;
      const float* row = x + i * dim;
      for (size_t j = 0; j < dim && j < weights_.size(); ++j) {
        acc += weights_[j] * row[j];
      }
      out[i] = static_cast<float>(acc);
    }
  }

  double CostOf(const std::vector<float>& features) const {
    float out = 0;
    EstimateBatch(features.data(), 1, features.size(), &out);
    return out;
  }

 private:
  std::vector<double> weights_;
};

}  // namespace robopt

#endif  // ROBOPT_CORE_LINEAR_ORACLE_H_
