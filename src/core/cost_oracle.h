#ifndef ROBOPT_CORE_COST_ORACLE_H_
#define ROBOPT_CORE_COST_ORACLE_H_

#include <cstddef>

#include "ml/model.h"

namespace robopt {

/// The model `m` of the prune operation (Section IV-E): "an oracle that
/// given a plan it returns its cost: it can be a cost model, an ML model, or
/// even a pricing catalogue". Batch interface over contiguous plan vectors.
class CostOracle {
 public:
  virtual ~CostOracle() = default;

  /// Estimates the cost of `n` plan vectors of `dim` floats each.
  virtual void EstimateBatch(const float* x, size_t n, size_t dim,
                             float* out) const = 0;

  /// Instrumentation: number of rows estimated so far (the paper reports
  /// model-invocation share of optimization time).
  size_t rows_estimated() const { return rows_estimated_; }
  size_t batches() const { return batches_; }

 protected:
  void Count(size_t n) const {
    rows_estimated_ += n;
    ++batches_;
  }

 private:
  mutable size_t rows_estimated_ = 0;
  mutable size_t batches_ = 0;
};

/// CostOracle backed by a trained runtime model (Robopt's default).
class MlCostOracle : public CostOracle {
 public:
  /// `model` must outlive the oracle.
  explicit MlCostOracle(const RuntimeModel* model) : model_(model) {}

  void EstimateBatch(const float* x, size_t n, size_t dim,
                     float* out) const override {
    Count(n);
    model_->PredictBatch(x, n, dim, out);
  }

 private:
  const RuntimeModel* model_;
};

/// Oracle that deems every plan free. Used where the enumeration machinery
/// requires an oracle but no pruning-by-cost should happen (e.g. TDGEN's
/// switch-capped enumeration, whose goal is coverage, not optimality).
class ZeroCostOracle : public CostOracle {
 public:
  void EstimateBatch(const float* /*x*/, size_t n, size_t /*dim*/,
                     float* out) const override {
    Count(n);
    for (size_t i = 0; i < n; ++i) out[i] = 0.0f;
  }
};

}  // namespace robopt

#endif  // ROBOPT_CORE_COST_ORACLE_H_
