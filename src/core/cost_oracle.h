#ifndef ROBOPT_CORE_COST_ORACLE_H_
#define ROBOPT_CORE_COST_ORACLE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

#include "ml/model.h"

namespace robopt {

/// The model `m` of the prune operation (Section IV-E): "an oracle that
/// given a plan it returns its cost: it can be a cost model, an ML model, or
/// even a pricing catalogue". Batch interface over contiguous plan vectors.
class CostOracle {
 public:
  virtual ~CostOracle() = default;

  /// Estimates the cost of `n` plan vectors of `dim` floats each.
  virtual void EstimateBatch(const float* x, size_t n, size_t dim,
                             float* out) const = 0;

  /// Instrumentation: number of rows estimated so far (the paper reports
  /// model-invocation share of optimization time).
  size_t rows_estimated() const {
    return rows_estimated_.load(std::memory_order_relaxed);
  }
  size_t batches() const { return batches_.load(std::memory_order_relaxed); }

 protected:
  /// Relaxed atomics: an oracle may be shared across threads (e.g. a cache
  /// serving parallel prune shards), and the counters are pure telemetry
  /// with no ordering requirements.
  void Count(size_t n) const {
    rows_estimated_.fetch_add(n, std::memory_order_relaxed);
    batches_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  mutable std::atomic<size_t> rows_estimated_{0};
  mutable std::atomic<size_t> batches_{0};
};

/// An oracle pinned for the duration of one optimization call. The
/// shared_ptr keeps the backing model alive (RCU-style) even if a newer
/// model is published mid-call, so every batch of one Optimize() sees one
/// consistent model. `version` tags which registry version was pinned
/// (0 = unversioned, e.g. a plain long-lived oracle).
struct PinnedOracle {
  std::shared_ptr<const CostOracle> oracle;
  /// The same model through its quantized inference path, when the provider
  /// published one *and* it passed the serving layer's holdout-error gate;
  /// nullptr otherwise. Callers that request quantized inference
  /// (OptimizeOptions::quantized_inference) use this oracle when present
  /// and silently fall back to the exact one when not — an unvalidated
  /// quantized table must never serve.
  std::shared_ptr<const CostOracle> quantized_oracle;
  uint64_t version = 0;
};

/// Source of cost oracles for optimizers that must survive model hot-swaps:
/// instead of holding one raw CostOracle pointer for its whole lifetime, an
/// optimizer constructed over a provider pins the *current* oracle once per
/// Optimize() call. The serving layer's ModelRegistry implements this over
/// an atomically swapped model snapshot.
class OracleProvider {
 public:
  virtual ~OracleProvider() = default;

  /// Pins the current oracle. Must be thread-safe; the returned oracle must
  /// stay valid (and keep predicting identically) for as long as the
  /// shared_ptr is held, regardless of later publications.
  virtual PinnedOracle Acquire() const = 0;
};

/// CostOracle backed by a trained runtime model (Robopt's default).
class MlCostOracle : public CostOracle {
 public:
  /// `model` must outlive the oracle. With `quantized`, batches go through
  /// the model's reduced-precision path (PredictBatchQuantized) — identical
  /// to the exact path for models without a quantized representation.
  explicit MlCostOracle(const RuntimeModel* model, bool quantized = false)
      : model_(model), quantized_(quantized) {}

  void EstimateBatch(const float* x, size_t n, size_t dim,
                     float* out) const override {
    Count(n);
    if (quantized_) {
      model_->PredictBatchQuantized(x, n, dim, out);
    } else {
      model_->PredictBatch(x, n, dim, out);
    }
  }

  bool quantized() const { return quantized_; }

 private:
  const RuntimeModel* model_;
  const bool quantized_;
};

/// Oracle that deems every plan free. Used where the enumeration machinery
/// requires an oracle but no pruning-by-cost should happen (e.g. TDGEN's
/// switch-capped enumeration, whose goal is coverage, not optimality).
class ZeroCostOracle : public CostOracle {
 public:
  void EstimateBatch(const float* /*x*/, size_t n, size_t /*dim*/,
                     float* out) const override {
    Count(n);
    for (size_t i = 0; i < n; ++i) out[i] = 0.0f;
  }
};

/// Counters of the memoizing oracle cache. `rows` always equals
/// `hits + batch_dups + unique_rows`: every row is either served from the
/// cross-batch table, folded into an identical row earlier in the same
/// batch, or sent to the inner oracle.
struct OracleCacheStats {
  size_t rows = 0;         ///< Rows seen by the cache.
  size_t hits = 0;         ///< Served from the cross-batch table.
  size_t batch_dups = 0;   ///< Folded into an identical in-batch row.
  size_t unique_rows = 0;  ///< Reached the inner oracle.
  size_t evictions = 0;    ///< Generation bumps (whole-table evictions).
  size_t entries = 0;      ///< Live entries at snapshot time.
  size_t capacity = 0;     ///< Table slots (0: budget too small for one).

  /// Rows not served by the cross-batch table.
  size_t misses() const { return batch_dups + unique_rows; }
};

/// Memoizing fast path in front of any CostOracle (the paper reports that
/// model invocation dominates optimization time, and boundary-pruned
/// enumeration re-estimates structurally identical rows round after round —
/// e.g. every final-ArgMinCost row was just estimated by the last prune).
///
/// Two mechanisms, both keyed on the raw bytes of a `dim`-float row through
/// a four-lane multiply-mix hash:
///   - *batch dedup*: identical rows within one EstimateBatch call are
///     estimated once and scattered back in row order. Candidate matches
///     are byte-verified against the gathered unique rows, so in-batch
///     folding is exact regardless of hash quality.
///   - *cross-batch memoization*: an open-addressing table with a bounded
///     byte budget remembers predictions across batches and optimize calls,
///     keyed by a 128-bit fingerprint (two independently mixed 64-bit lanes
///     of the same hash pass) rather than the stored row: at plan-vector
///     widths the byte compare against a stored key costs as much memory
///     traffic as the forest inference it replaces. Two distinct rows alias
///     only if both lanes collide (~2^-128 per pair — vanishingly unlikely
///     even across billions of rows, and far below the hardware fault
///     rate). Eviction is generation-based: when the live count reaches
///     the load cap the generation counter bumps, logically emptying every
///     slot in O(1) — no tombstones, no broken probe chains.
///
/// Outputs are bit-identical to the uncached oracle because the inner
/// oracle must be row-wise pure (a row's prediction depends only on its own
/// bytes — true of every oracle in this repository, including the blocked
/// forest kernel), so replaying a stored prediction equals recomputing it.
///
/// Thread-safe: EstimateBatch serializes on an internal mutex, so one cache
/// may be shared by concurrent optimize calls.
class CachingCostOracle : public CostOracle {
 public:
  /// `inner` must outlive the cache. `budget_bytes` bounds the memoization
  /// table (32 bytes per slot); a budget too small for even one entry
  /// disables the table but keeps within-batch dedup.
  CachingCostOracle(const CostOracle* inner, size_t budget_bytes)
      : inner_(inner), budget_bytes_(budget_bytes) {}

  void EstimateBatch(const float* x, size_t n, size_t dim,
                     float* out) const override;

  /// Snapshot of the cache counters (lock-synchronized).
  OracleCacheStats stats() const;

  const CostOracle* inner() const { return inner_; }

 private:
  /// Two independently mixed 64-bit lanes over a row's bytes.
  struct RowHash {
    uint64_t a = 0;
    uint64_t b = 0;
  };

  /// No default member initializers: slots live in calloc'd storage (all
  /// zeros = not live, since gen_ starts at 1 and only grows), so sizing a
  /// large table costs lazily faulted zero pages instead of an upfront
  /// fill.
  struct Slot {
    uint64_t hash_a;
    uint64_t hash_b;
    uint64_t gen;  ///< Live iff equal to the cache's current gen_.
    float prediction;
  };

  struct FreeDeleter {
    void operator()(void* p) const { std::free(p); }
  };

  /// The four-lane multiply-mix hash over a row's bytes.
  static RowHash HashRow(const float* row, size_t dim);
  /// (Re)sizes the table for rows of `dim` floats; flushes all entries.
  void Configure(size_t dim) const;
  /// Index of the live slot holding `hash`, or SIZE_MAX.
  size_t FindLive(RowHash hash) const;
  /// Inserts a prediction, bumping the generation first if at the load cap.
  void Insert(RowHash hash, float prediction) const;

  const CostOracle* inner_;
  const size_t budget_bytes_;

  mutable std::mutex mu_;  ///< Guards everything below.
  mutable size_t dim_ = 0;
  mutable size_t capacity_ = 0;  ///< Power of two; 0 = table disabled.
  mutable size_t max_live_ = 0;  ///< Load cap (< capacity_).
  mutable uint64_t gen_ = 1;
  mutable size_t live_ = 0;
  mutable std::unique_ptr<Slot[], FreeDeleter> slots_;
  mutable OracleCacheStats stats_;
  /// Scratch reused across batches: unique miss rows gathered for the inner
  /// call, their hashes/predictions, the (row, unique id) scatter list, and
  /// a flat open-addressing index deduplicating rows within one batch.
  mutable std::vector<float> unique_buf_;
  mutable std::vector<float> unique_out_;
  mutable std::vector<RowHash> unique_hash_;
  mutable std::vector<uint32_t> pending_rows_;
  mutable std::vector<uint32_t> pending_uid_;
  mutable std::vector<uint32_t> batch_index_;
};

}  // namespace robopt

#endif  // ROBOPT_CORE_COST_ORACLE_H_
