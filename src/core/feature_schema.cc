#include "core/feature_schema.h"

namespace robopt {

FeatureSchema::FeatureSchema(const PlatformRegistry* registry)
    : registry_(registry),
      num_platforms_(static_cast<size_t>(registry->num_platforms())) {
  size_t offset = kNumTopologies;  // Topology region first.
  op_offset_.resize(kNumLogicalOpKinds);
  op_alts_.resize(kNumLogicalOpKinds);
  for (int k = 0; k < kNumLogicalOpKinds; ++k) {
    const auto kind = static_cast<LogicalOpKind>(k);
    op_offset_[k] = offset;
    op_alts_[k] = registry->AlternativesFor(kind).size();
    offset += 1 + op_alts_[k] + kNumTopologies + 3;  // count, alts, topo,
                                                     // udf, in, out.
  }
  conv_offset_.resize(kNumConversionKinds);
  for (int c = 0; c < kNumConversionKinds; ++c) {
    conv_offset_[c] = offset;
    offset += num_platforms_ + 2;
  }
  width_ = offset + 1;  // Tuple-size cell last.

  max_mask_.assign(width_, 0);
  max_mask_[TopologyCell(Topology::kPipeline)] = 1;
  max_mask_[TupleSizeCell()] = 1;
}

std::vector<std::string> FeatureSchema::FeatureNames() const {
  std::vector<std::string> names(width_);
  names[TopologyCell(Topology::kPipeline)] = "#pipeline";
  names[TopologyCell(Topology::kJuncture)] = "#juncture";
  names[TopologyCell(Topology::kReplicate)] = "#replicate";
  names[TopologyCell(Topology::kLoop)] = "#loop";
  for (int k = 0; k < kNumLogicalOpKinds; ++k) {
    const auto kind = static_cast<LogicalOpKind>(k);
    const std::string base(ToString(kind));
    names[OpCountCell(kind)] = base + ".count";
    const auto& alts = registry_->AlternativesFor(kind);
    for (size_t a = 0; a < alts.size(); ++a) {
      names[OpAltCell(kind, a)] = base + ".#" + alts[a].name;
    }
    for (int t = 0; t < kNumTopologies; ++t) {
      const auto topology = static_cast<Topology>(t);
      names[OpTopologyCell(kind, topology)] =
          base + ".in_" + std::string(ToString(topology));
    }
    names[OpUdfCell(kind)] = base + ".udf_complexity";
    names[OpInCardCell(kind)] = base + ".in_card";
    names[OpOutCardCell(kind)] = base + ".out_card";
  }
  for (int c = 0; c < kNumConversionKinds; ++c) {
    const auto kind = static_cast<ConversionKind>(c);
    const std::string base(ToString(kind));
    for (size_t p = 0; p < num_platforms_; ++p) {
      names[ConvPlatformCell(kind, static_cast<PlatformId>(p))] =
          base + ".#" + registry_->platform(static_cast<PlatformId>(p)).name;
    }
    names[ConvInCardCell(kind)] = base + ".in_card";
    names[ConvOutCardCell(kind)] = base + ".out_card";
  }
  names[TupleSizeCell()] = "avg_tuple_bytes";
  return names;
}

}  // namespace robopt
