#include "core/priority_enumeration.h"

#include <algorithm>
#include <set>

#include "common/check.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "obs/trace.h"

namespace robopt {

PriorityEnumerator::PriorityEnumerator(const EnumerationContext* ctx,
                                       const CostOracle* oracle,
                                       EnumeratorOptions options)
    : ctx_(ctx),
      oracle_(oracle),
      options_(options),
      num_threads_(options.num_threads == 0 ? ThreadPool::HardwareThreads()
                                            : options.num_threads) {}

double PriorityEnumerator::PriorityOf(size_t index) const {
  const LogicalPlan& plan = *ctx_->plan;
  const PlanVectorEnumeration& v = enums_[index];
  switch (options_.priority) {
    case PriorityMode::kPaper: {
      // |V| x prod of children's sizes (Definition 3).
      double priority = static_cast<double>(v.size());
      std::set<size_t> children;
      for (int op = 0; op < plan.num_operators(); ++op) {
        if (!v.scope().test(op)) continue;
        const auto id = static_cast<OperatorId>(op);
        for (OperatorId child : plan.children(id)) {
          if (owner_[child] != index) children.insert(owner_[child]);
        }
        for (OperatorId child : plan.side_children(id)) {
          if (owner_[child] != index) children.insert(owner_[child]);
        }
      }
      for (size_t child : children) {
        priority *= static_cast<double>(enums_[child].size());
      }
      return priority;
    }
    case PriorityMode::kBottomUp: {
      int best = 0;
      for (int op = 0; op < plan.num_operators(); ++op) {
        if (v.scope().test(op)) best = std::max(best, dist_to_sink_[op]);
      }
      return best;
    }
    case PriorityMode::kTopDown: {
      int best = 0;
      for (int op = 0; op < plan.num_operators(); ++op) {
        if (v.scope().test(op)) best = std::max(best, dist_to_source_[op]);
      }
      return best;
    }
  }
  return 0.0;
}

StatusOr<EnumerationResult> PriorityEnumerator::Run() {
  const LogicalPlan& plan = *ctx_->plan;
  const int n = plan.num_operators();
  EnumerationResult result;

  // Observability: all instrumentation below is gated on `timed`, so with
  // obs disabled the run takes the exact pre-instrumentation code path
  // (bit-identical results either way — spans and micros never feed back
  // into the search).
  Tracer* const tracer = ROBOPT_OBS_ON(options_.obs) ? options_.obs.tracer
                                                     : nullptr;
  OptimizeProfile* const prof = options_.profile;
  const bool timed = tracer != nullptr || prof != nullptr;
  const uint64_t trace = options_.obs.trace_id;
  const uint64_t parent = options_.obs.parent_span;
  Stopwatch phase_clock;

  // Longest-path distances for the top-down/bottom-up priorities.
  dist_to_sink_.assign(n, 0);
  dist_to_source_.assign(n, 0);
  const std::vector<OperatorId> order = plan.TopologicalOrder();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    for (OperatorId child : plan.children(*it)) {
      dist_to_sink_[*it] =
          std::max(dist_to_sink_[*it], dist_to_sink_[child] + 1);
    }
    for (OperatorId child : plan.side_children(*it)) {
      dist_to_sink_[*it] =
          std::max(dist_to_sink_[*it], dist_to_sink_[child] + 1);
    }
  }
  for (OperatorId op : order) {
    for (OperatorId parent : plan.parents(op)) {
      dist_to_source_[op] =
          std::max(dist_to_source_[op], dist_to_source_[parent] + 1);
    }
    for (OperatorId parent : plan.side_parents(op)) {
      dist_to_source_[op] =
          std::max(dist_to_source_[op], dist_to_source_[parent] + 1);
    }
  }

  // Lines 2-5: vectorize, split into singletons, enumerate each, enqueue.
  if (timed) phase_clock.Restart();
  SpanScope vectorize_span(tracer, trace, parent, "vectorize");
  const AbstractPlanVector abstract = Vectorize(*ctx_);
  const std::vector<AbstractPlanVector> singles = Split(*ctx_, abstract);
  enums_.reserve(singles.size());
  for (const AbstractPlanVector& single : singles) {
    enums_.push_back(Enumerate(*ctx_, single));
    result.stats.vectors_created += enums_.back().size();
  }
  if (timed) {
    vectorize_span.SetArgA("singletons",
                           static_cast<int64_t>(enums_.size()));
    vectorize_span.SetArgB("vectors",
                           static_cast<int64_t>(result.stats.vectors_created));
    if (prof != nullptr) prof->phase.vectorize_us += phase_clock.ElapsedMicros();
  }
  vectorize_span.End();
  alive_.assign(enums_.size(), 1);
  seq_.assign(enums_.size(), 0);
  owner_.assign(n, 0);
  for (size_t i = 0; i < enums_.size(); ++i) {
    for (int op = 0; op < n; ++op) {
      if (enums_[i].scope().test(op)) owner_[op] = i;
    }
  }
  uint64_t seq_counter = enums_.size();

  const size_t oracle_rows_before = oracle_->rows_estimated();
  const size_t oracle_batches_before = oracle_->batches();

  // Runner-up harvest off the *final* prune's cost batch. The final
  // concat's prune scores every full-plan candidate and then — with
  // boundary pruning — typically keeps one row per footprint (often just
  // the winner's), so the discarded rows are the real runner-ups. Earlier
  // prunes see partial plans whose harvest would be overwritten anyway, so
  // only the call that merges the last two enumerations (harvest_runners)
  // pays for the scan. Zero extra oracle work, no stat changes.
  std::vector<std::pair<std::vector<uint8_t>, float>> prune_harvest;
  std::vector<std::pair<size_t, float>> prune_cheapest;

  auto prune = [&](PlanVectorEnumeration&& merged, uint64_t span_parent,
                   bool harvest_runners) -> PlanVectorEnumeration {
    const bool harvest = harvest_runners && options_.top_k_runners > 0;
    PruneStats prune_stats;
    PlanVectorEnumeration pruned(0, 0);
    if (timed) phase_clock.Restart();
    SpanScope prune_span(tracer, trace, span_parent, "prune");
    switch (options_.prune) {
      case PruneMode::kNone:
        return std::move(merged);
      case PruneMode::kBoundary:
        pruned = PruneBoundary(*ctx_, merged, *oracle_, &prune_stats,
                               num_threads_,
                               harvest ? &prune_cheapest : nullptr,
                               options_.top_k_runners + 1);
        if (harvest) {
          // Overwrite in place: the inner byte vectors keep their capacity
          // across prune calls, so the steady state allocates nothing.
          prune_harvest.resize(prune_cheapest.size());
          for (size_t i = 0; i < prune_cheapest.size(); ++i) {
            const auto& [row, cost] = prune_cheapest[i];
            prune_harvest[i].first.assign(
                merged.assignment(row),
                merged.assignment(row) + merged.num_ops());
            prune_harvest[i].second = cost;
          }
        }
        break;
      case PruneMode::kSwitchCap:
        pruned = PruneSwitchCap(*ctx_, merged, options_.beta, &prune_stats);
        break;
    }
    if (timed) {
      prune_span.SetArgA("rows_in", static_cast<int64_t>(prune_stats.rows_in));
      prune_span.SetArgB("rows_out",
                         static_cast<int64_t>(prune_stats.rows_out));
      if (prof != nullptr) {
        prof->phase.prune_us += phase_clock.ElapsedMicros();
        if (options_.prune == PruneMode::kBoundary) {
          prof->boundary_prune_rows_in += prune_stats.rows_in;
          prof->boundary_prune_rows_out += prune_stats.rows_out;
        } else {
          prof->switch_prune_rows_in += prune_stats.rows_in;
          prof->switch_prune_rows_out += prune_stats.rows_out;
        }
      }
    }
    prune_span.End();
    result.stats.vectors_pruned += prune_stats.rows_in - prune_stats.rows_out;
    const size_t cap = options_.max_rows_per_enumeration;
    if (cap > 0 && pruned.size() > cap) {
      PlanVectorEnumeration sampled(pruned.width(), pruned.num_ops());
      sampled.mutable_scope() = pruned.scope();
      sampled.set_boundary(pruned.boundary());
      sampled.Reserve(cap);
      const double stride =
          static_cast<double>(pruned.size()) / static_cast<double>(cap);
      for (size_t i = 0; i < cap; ++i) {
        sampled.AppendCopy(pruned, static_cast<size_t>(i * stride));
      }
      return sampled;
    }
    return pruned;
  };

  size_t alive_count = enums_.size();
  SpanScope enumerate_span(tracer, trace, parent, "enumerate");
  while (alive_count > 1) {
    // Dequeue: highest priority among enumerations that have children; ties
    // broken by smaller boundary (fewer new boundary operators), then queue
    // entry order.
    size_t best = SIZE_MAX;
    double best_priority = -1.0;
    std::vector<size_t> best_children;
    for (size_t i = 0; i < enums_.size(); ++i) {
      if (!alive_[i]) continue;
      std::set<size_t> children;
      for (int op = 0; op < n; ++op) {
        if (!enums_[i].scope().test(op)) continue;
        const auto id = static_cast<OperatorId>(op);
        for (OperatorId child : plan.children(id)) {
          if (owner_[child] != i) children.insert(owner_[child]);
        }
        for (OperatorId child : plan.side_children(id)) {
          if (owner_[child] != i) children.insert(owner_[child]);
        }
      }
      if (children.empty()) continue;
      const double priority = PriorityOf(i);
      const bool wins =
          best == SIZE_MAX || priority > best_priority ||
          (priority == best_priority &&
           (enums_[i].boundary().size() < enums_[best].boundary().size() ||
            (enums_[i].boundary().size() == enums_[best].boundary().size() &&
             seq_[i] < seq_[best])));
      if (wins) {
        best = i;
        best_priority = priority;
        best_children.assign(children.begin(), children.end());
      }
    }

    if (best == SIZE_MAX) {
      // Disconnected plan components: merge the first two alive directly.
      size_t first = SIZE_MAX;
      size_t second = SIZE_MAX;
      for (size_t i = 0; i < enums_.size() && second == SIZE_MAX; ++i) {
        if (!alive_[i]) continue;
        if (first == SIZE_MAX) {
          first = i;
        } else {
          second = i;
        }
      }
      ROBOPT_CHECK(second != SIZE_MAX);
      best = first;
      best_children = {second};
    }

    // Lines 8-14: concatenate with each child, pruning after each step.
    for (size_t child : best_children) {
      if (!alive_[child] || child == best) continue;
      if (timed) phase_clock.Restart();
      SpanScope concat_span(tracer, trace, enumerate_span.id(), "concat");
      PlanVectorEnumeration merged =
          Concat(*ctx_, enums_[best], enums_[child], num_threads_);
      result.stats.vectors_created += merged.size();
      ++result.stats.concat_steps;
      if (timed) {
        concat_span.SetArgA("rows", static_cast<int64_t>(merged.size()));
        if (prof != nullptr) {
          prof->phase.concat_us += phase_clock.ElapsedMicros();
        }
      }
      concat_span.End();
      if (result.stats.vectors_created > options_.max_vectors) {
        return Status::ResourceExhausted(
            "enumeration exceeded max_vectors; use pruning");
      }
      // alive_count == 2 here means this merge leaves one enumeration —
      // the final, full-scope one whose prune batch feeds the harvest.
      enums_[best] = prune(std::move(merged), enumerate_span.id(),
                           /*harvest_runners=*/alive_count == 2);
      alive_[child] = 0;
      --alive_count;
      for (int op = 0; op < n; ++op) {
        if (owner_[op] == child) owner_[op] = best;
      }
      enums_[child] = PlanVectorEnumeration(0, 0);  // Release memory.
    }
    seq_[best] = ++seq_counter;
  }

  enumerate_span.End();

  // Line 18: pick the cheapest full plan vector and unvectorize it.
  size_t final_index = SIZE_MAX;
  for (size_t i = 0; i < enums_.size(); ++i) {
    if (alive_[i]) final_index = i;
  }
  ROBOPT_CHECK(final_index != SIZE_MAX);
  PlanVectorEnumeration& final_enum = enums_[final_index];
  if (final_enum.size() == 0) {
    return Status::Internal("enumeration produced no plans");
  }
  if (timed) phase_clock.Restart();
  SpanScope predict_span(tracer, trace, parent, "predict-batch");
  float best_cost = 0.0f;
  // The runner-up selection reuses the cost batch ArgMinCost computes
  // anyway; requesting it changes neither the winner nor any stat.
  std::vector<float> final_costs;
  std::vector<float>* const costs_out =
      options_.top_k_runners > 0 ? &final_costs : nullptr;
  const size_t best_row = ArgMinCost(*ctx_, final_enum, *oracle_, &best_cost,
                                     num_threads_, costs_out);
  if (options_.top_k_runners > 0) {
    // Candidate pool: the final enumeration's kept rows (costs from the
    // getOptimal batch) plus the final prune's harvest (rows the prune
    // discarded). Kept rows appear in both with identical costs — the
    // oracle is deterministic over identical feature rows — so dedup by
    // assignment, drop the winner, and keep the k cheapest by
    // (cost, assignment bytes): a fully deterministic order.
    const size_t num_ops = static_cast<size_t>(final_enum.num_ops());
    const std::vector<uint8_t> winner(
        final_enum.assignment(best_row),
        final_enum.assignment(best_row) + num_ops);
    std::vector<std::pair<std::vector<uint8_t>, float>> candidates;
    candidates.reserve(final_enum.size() + prune_harvest.size());
    for (size_t i = 0; i < final_enum.size(); ++i) {
      if (i == best_row) continue;
      candidates.emplace_back(
          std::vector<uint8_t>(final_enum.assignment(i),
                               final_enum.assignment(i) + num_ops),
          final_costs[i]);
    }
    for (auto& harvested : prune_harvest) {
      candidates.push_back(std::move(harvested));
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second < b.second;
                return a.first < b.first;
              });
    for (auto& candidate : candidates) {
      if (result.runner_ups.size() >= options_.top_k_runners) break;
      if (candidate.first == winner) continue;
      if (!result.runner_ups.empty() &&
          result.runner_ups.back().first == candidate.first) {
        continue;
      }
      result.runner_ups.push_back(std::move(candidate));
    }
  }
  if (timed) {
    predict_span.SetArgA("rows", static_cast<int64_t>(final_enum.size()));
    if (prof != nullptr) prof->phase.predict_us += phase_clock.ElapsedMicros();
  }
  predict_span.End();
  if (timed) phase_clock.Restart();
  SpanScope unvectorize_span(tracer, trace, parent, "unvectorize");
  result.plan = Unvectorize(*ctx_, final_enum, best_row);
  if (timed && prof != nullptr) {
    prof->phase.unvectorize_us += phase_clock.ElapsedMicros();
  }
  unvectorize_span.End();
  result.predicted_runtime_s = best_cost;
  result.best_row = best_row;
  result.stats.final_vectors = final_enum.size();
  result.stats.oracle_rows = oracle_->rows_estimated() - oracle_rows_before;
  result.stats.oracle_batches = oracle_->batches() - oracle_batches_before;
  result.final_enumeration = std::move(final_enum);
  return result;
}

}  // namespace robopt
