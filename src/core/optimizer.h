#ifndef ROBOPT_CORE_OPTIMIZER_H_
#define ROBOPT_CORE_OPTIMIZER_H_

#include "common/status.h"
#include "core/priority_enumeration.h"
#include "obs/profile.h"

namespace robopt {

/// Options for one optimization call.
struct OptimizeOptions {
  /// Restrict the search to these platforms (bit i = platform id i).
  uint64_t allowed_platform_mask = ~0ull;
  /// Platforms masked *out* of the search on top of allowed_platform_mask
  /// (bit i = platform id i); the effective search space is
  /// allowed & ~excluded. The serving layer's re-optimize-on-failure path
  /// sets bits for platforms whose circuit breaker is open, so the
  /// vectorized enumeration never materializes alternatives on a dead
  /// platform. (Driver-pinned collection sources/sinks stay available, as
  /// under any restricted mask — the driver is assumed alive.)
  uint64_t excluded_platform_mask = 0;
  /// Single-platform execution mode (the paper's Section VII-C1): pick one
  /// platform for the whole query instead of mixing.
  bool single_platform = false;
  PriorityMode priority = PriorityMode::kPaper;
  PruneMode prune = PruneMode::kBoundary;
  /// Threads for the enumeration hot path. 0 = hardware concurrency
  /// (default); 1 = the exact serial code path. The chosen plan, its cost
  /// and all EnumerationStats are identical for every value.
  int num_threads = 0;
  /// Byte budget for a per-call memoizing oracle cache (CachingCostOracle)
  /// wrapped around the configured oracle: identical feature rows are
  /// deduplicated within each batch and predictions are memoized across
  /// batches, so only unique rows reach the model. 0 (default) disables
  /// the cache. The chosen plan, its predicted cost and all
  /// EnumerationStats are bit-identical with the cache on or off. To
  /// memoize across Optimize calls instead, construct a long-lived
  /// CachingCostOracle and pass it as the optimizer's oracle.
  size_t oracle_cache_bytes = 0;
  /// Estimate costs through the model's 8-bit quantized inference path for
  /// this call. Default off. Only honored when the optimizer pins its
  /// oracle from an OracleProvider whose current model published a
  /// *validated* quantized table (PinnedOracle::quantized_oracle — the
  /// serving layer fills it only after the quantized/exact holdout
  /// log1p-MAE delta passed its bound); otherwise the exact oracle serves
  /// the call unchanged. Part of the plan-cache key: quantized and exact
  /// estimates may legitimately pick different plans.
  bool quantized_inference = false;
  /// Observability sinks for this call: hot-path metrics, a span tree in
  /// the tracer, and/or a filled OptimizeResult::profile. All off by
  /// default; the chosen plan, its cost and every stat are bit-identical
  /// with observability on or off. Deliberately not part of the plan-cache
  /// key (PlanCache::HashOptions) for the same reason num_threads is not.
  ObsOptions obs;
  /// Diagnostics: report up to k runner-up plans (OptimizeResult::
  /// runners_up) next to the winner. Reuses the final getOptimal cost
  /// batch — zero extra oracle work — and the chosen plan and every stat
  /// are bit-identical for any value, so like obs/num_threads it is
  /// excluded from the plan-cache key. 0 (default) skips the selection.
  size_t top_k_runners = 0;
};

/// One runner-up plan the diagnostics path reports alongside the winner:
/// its predicted cost and a stable FNV-1a hash of its assignment bytes
/// (enough to tell "same plan as yesterday" without shipping the plan).
struct PlanRunnerUp {
  float predicted_runtime_s = 0.0f;
  uint64_t assignment_hash = 0;
};

/// Result of one optimization call.
struct OptimizeResult {
  ExecutionPlan plan;
  float predicted_runtime_s = 0.0f;
  EnumerationStats stats;
  /// Wall-clock optimization latency (what Figures 9-10 measure).
  double latency_ms = 0.0;
  /// In single-platform mode: the chosen platform.
  PlatformId chosen_platform = 0;
  /// Cache counters when options.oracle_cache_bytes > 0 (all zero
  /// otherwise). In single-platform mode one cache spans all per-platform
  /// searches.
  OracleCacheStats oracle_cache;
  /// Version of the model that served this call when the optimizer was
  /// constructed over an OracleProvider (0 with a raw oracle). The whole
  /// call — every prune and the final getOptimal — used this one version,
  /// even if a newer model was published mid-call.
  uint64_t model_version = 0;
  /// Per-call profile (phase timeline, pruning split, oracle-cache ratios,
  /// rows scored). Filled when options.obs.profile is set; all-zero with
  /// profile.enabled == false otherwise.
  OptimizeProfile profile;
  /// True when the call's costs were estimated through a validated
  /// quantized oracle (options.quantized_inference honored); false when
  /// the exact path served it (including the silent fallback).
  bool quantized_used = false;
  /// With options.top_k_runners > 0: the next-cheapest plans after the
  /// winner, ascending by predicted cost. In single-platform mode these
  /// are the other platforms' per-platform bests. Empty otherwise.
  std::vector<PlanRunnerUp> runners_up;

  OptimizeResult() : plan(nullptr, nullptr) {}
};

/// Robopt: the vector-based, ML-driven cross-platform optimizer (Fig. 4).
/// Given a logical plan it produces the execution plan with the lowest
/// predicted runtime, enumerating entirely over plan vectors.
class RoboptOptimizer {
 public:
  /// All pointers must outlive the optimizer. `oracle` is typically an
  /// MlCostOracle over a trained RandomForest.
  RoboptOptimizer(const PlatformRegistry* registry,
                  const FeatureSchema* schema, const CostOracle* oracle)
      : registry_(registry), schema_(schema), oracle_(oracle) {}

  /// Serving-layer form: instead of one fixed oracle, pin the provider's
  /// current oracle at the start of every Optimize() call. In-flight calls
  /// keep their pinned model while a new one is hot-swapped in;
  /// OptimizeResult::model_version reports which version served the call.
  RoboptOptimizer(const PlatformRegistry* registry,
                  const FeatureSchema* schema, const OracleProvider* provider)
      : registry_(registry), schema_(schema), provider_(provider) {}

  /// Optimizes `plan`. Passing `cards` injects true cardinalities (as the
  /// paper's experiments do); otherwise they are estimated from operator
  /// selectivities.
  StatusOr<OptimizeResult> Optimize(const LogicalPlan& plan,
                                    const Cardinalities* cards = nullptr,
                                    const OptimizeOptions& options = {}) const;

  const FeatureSchema& schema() const { return *schema_; }

 private:
  const PlatformRegistry* registry_;
  const FeatureSchema* schema_;
  const CostOracle* oracle_ = nullptr;
  const OracleProvider* provider_ = nullptr;
};

}  // namespace robopt

#endif  // ROBOPT_CORE_OPTIMIZER_H_
