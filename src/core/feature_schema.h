#ifndef ROBOPT_CORE_FEATURE_SCHEMA_H_
#define ROBOPT_CORE_FEATURE_SCHEMA_H_

#include <cstddef>
#include <string>
#include <vector>

#include "plan/logical_plan.h"
#include "platform/conversion.h"
#include "platform/registry.h"

namespace robopt {

/// Layout of a plan vector (Section IV-A / Fig. 5). The schema is a function
/// of the platform registry only — not of any particular query — so one
/// trained model serves every plan over the same registry.
///
/// Cell order:
///   [0..3]                       topology counts: pipeline, juncture,
///                                replicate, loop
///   per logical operator kind    a block of:
///     [0]                        total instance count
///     [1 .. A]                   instance count per execution alternative
///                                (A = alternatives of that kind; covers the
///                                "#instances in Java / in Spark" cells and
///                                distinguishes same-platform variants)
///     [A+1 .. A+4]               instance count per topology placement
///     [A+5]                      sum of UDF complexity codes
///     [A+6], [A+7]               sum of input / output cardinalities
///   per conversion kind          a block of:
///     [0 .. k-1]                 instance count per (source) platform
///     [k], [k+1]                 sum of input / output cardinalities
///   [width-1]                    average input tuple size (bytes)
///
/// All cells merge by addition when two sub-plan vectors are concatenated,
/// except the pipeline count and the tuple-size cell, which merge by max
/// (the paper's merge rule).
class FeatureSchema {
 public:
  explicit FeatureSchema(const PlatformRegistry* registry);

  size_t width() const { return width_; }
  const PlatformRegistry& registry() const { return *registry_; }

  // -- Topology region -------------------------------------------------
  static constexpr size_t kTopologyOffset = 0;
  size_t TopologyCell(Topology topology) const {
    return kTopologyOffset + static_cast<size_t>(topology);
  }

  // -- Operator blocks ---------------------------------------------------
  size_t OpBlockOffset(LogicalOpKind kind) const {
    return op_offset_[static_cast<int>(kind)];
  }
  size_t OpAlternatives(LogicalOpKind kind) const {
    return op_alts_[static_cast<int>(kind)];
  }
  size_t OpCountCell(LogicalOpKind kind) const { return OpBlockOffset(kind); }
  size_t OpAltCell(LogicalOpKind kind, size_t alt) const {
    return OpBlockOffset(kind) + 1 + alt;
  }
  size_t OpTopologyCell(LogicalOpKind kind, Topology topology) const {
    return OpBlockOffset(kind) + 1 + OpAlternatives(kind) +
           static_cast<size_t>(topology);
  }
  size_t OpUdfCell(LogicalOpKind kind) const {
    return OpBlockOffset(kind) + 1 + OpAlternatives(kind) + kNumTopologies;
  }
  size_t OpInCardCell(LogicalOpKind kind) const { return OpUdfCell(kind) + 1; }
  size_t OpOutCardCell(LogicalOpKind kind) const { return OpUdfCell(kind) + 2; }

  // -- Conversion blocks -------------------------------------------------
  size_t ConvBlockOffset(ConversionKind kind) const {
    return conv_offset_[static_cast<int>(kind)];
  }
  size_t ConvPlatformCell(ConversionKind kind, PlatformId platform) const {
    return ConvBlockOffset(kind) + platform;
  }
  size_t ConvInCardCell(ConversionKind kind) const {
    return ConvBlockOffset(kind) + num_platforms_;
  }
  size_t ConvOutCardCell(ConversionKind kind) const {
    return ConvBlockOffset(kind) + num_platforms_ + 1;
  }

  // -- Dataset region -----------------------------------------------------
  size_t TupleSizeCell() const { return width_ - 1; }

  /// Cells that merge with max instead of add (pipeline count, tuple size).
  const std::vector<uint8_t>& MaxMergeMask() const { return max_mask_; }

  /// Human-readable name of each cell (debugging, feature importance).
  std::vector<std::string> FeatureNames() const;

 private:
  const PlatformRegistry* registry_;
  size_t num_platforms_;
  size_t width_ = 0;
  std::vector<size_t> op_offset_;
  std::vector<size_t> op_alts_;
  std::vector<size_t> conv_offset_;
  std::vector<uint8_t> max_mask_;
};

}  // namespace robopt

#endif  // ROBOPT_CORE_FEATURE_SCHEMA_H_
