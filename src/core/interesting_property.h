#ifndef ROBOPT_CORE_INTERESTING_PROPERTY_H_
#define ROBOPT_CORE_INTERESTING_PROPERTY_H_

#include <cstdint>
#include <string>

#include "core/operations.h"

namespace robopt {

/// An interesting property in the Selinger sense, adapted to plan vectors
/// (Section V: the boundary-operator pruning "is an instance of interesting
/// properties... one can easily extend the enumeration algorithm to account
/// for other interesting properties by simply modifying the prune
/// operation").
///
/// A property maps each (boundary operator, chosen alternative) to a small
/// code; two plan vectors share a pruning footprint only if their boundary
/// operators agree on the platform AND on every registered property. More
/// properties mean finer partitions — less pruning, but losslessness is
/// preserved for any downstream cost that depends on boundary operators
/// only through (platform, property codes).
class InterestingProperty {
 public:
  virtual ~InterestingProperty() = default;

  /// Code of operator `op` when executed with the `alt_index`-th entry of
  /// the registry's alternatives for its kind. Must be < 250.
  virtual uint8_t CodeOf(const EnumerationContext& ctx, OperatorId op,
                         uint8_t alt_index) const = 0;

  virtual std::string Name() const = 0;
};

/// Distinguishes same-platform execution variants at the boundary (e.g.
/// Spark's stateful vs cache-based sampler): downstream costs may depend on
/// which variant produced the data, not just where it ran.
class VariantProperty : public InterestingProperty {
 public:
  uint8_t CodeOf(const EnumerationContext& ctx, OperatorId op,
                 uint8_t alt_index) const override {
    const auto& alts =
        ctx.registry->AlternativesFor(ctx.plan->op(op).kind);
    return alts[alt_index].variant;
  }
  std::string Name() const override { return "variant"; }
};

/// Whether the boundary operator emits key-ordered output (our Sort does,
/// on any platform) — the classic Selinger interesting order, preserved so
/// a downstream merge-style consumer could exploit it.
class SortednessProperty : public InterestingProperty {
 public:
  uint8_t CodeOf(const EnumerationContext& ctx, OperatorId op,
                 uint8_t /*alt_index*/) const override {
    return ctx.plan->op(op).kind == LogicalOpKind::kSort ? 1 : 0;
  }
  std::string Name() const override { return "sortedness"; }
};

/// prune(V, m) generalized with interesting properties: groups rows by the
/// (platform, property codes...) of every boundary operator and keeps the
/// cheapest row per group. With an empty property list this is exactly
/// PruneBoundary.
PlanVectorEnumeration PruneBoundaryWithProperties(
    const EnumerationContext& ctx, const PlanVectorEnumeration& v,
    const CostOracle& oracle,
    const std::vector<const InterestingProperty*>& properties,
    PruneStats* stats = nullptr);

}  // namespace robopt

#endif  // ROBOPT_CORE_INTERESTING_PROPERTY_H_
