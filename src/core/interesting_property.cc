#include "core/interesting_property.h"

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace robopt {

PlanVectorEnumeration PruneBoundaryWithProperties(
    const EnumerationContext& ctx, const PlanVectorEnumeration& v,
    const CostOracle& oracle,
    const std::vector<const InterestingProperty*>& properties,
    PruneStats* stats) {
  PlanVectorEnumeration out(v.width(), v.num_ops());
  out.mutable_scope() = v.scope();
  out.set_boundary(v.boundary());
  if (stats != nullptr) stats->rows_in += v.size();
  if (v.size() <= 1) {
    for (size_t i = 0; i < v.size(); ++i) out.AppendCopy(v, i);
    if (stats != nullptr) stats->rows_out += out.size();
    return out;
  }

  std::vector<float> costs(v.size());
  oracle.EstimateBatch(v.feature_pool().data(), v.size(), v.width(),
                       costs.data());

  const std::vector<OperatorId>& boundary = v.boundary();
  const size_t stride = 1 + properties.size();
  std::unordered_map<std::string, size_t> best;
  std::vector<std::pair<std::string, size_t>> order;
  std::string key(boundary.size() * stride, '\0');
  for (size_t row = 0; row < v.size(); ++row) {
    const uint8_t* assign = v.assignment(row);
    for (size_t bi = 0; bi < boundary.size(); ++bi) {
      const OperatorId op = boundary[bi];
      key[bi * stride] =
          static_cast<char>(ctx.PlatformOfAssignment(assign, op) + 1);
      const uint8_t alt_index =
          assign[op] != 0 ? static_cast<uint8_t>(assign[op] - 1) : 0;
      for (size_t pi = 0; pi < properties.size(); ++pi) {
        key[bi * stride + 1 + pi] = static_cast<char>(
            properties[pi]->CodeOf(ctx, op, alt_index) + 1);
      }
    }
    auto [it, inserted] = best.try_emplace(key, row);
    if (inserted) {
      order.emplace_back(key, row);
    } else if (costs[row] < costs[it->second]) {
      it->second = row;
    }
  }
  out.ReserveAdditional(order.size());
  for (auto& [footprint, first_row] : order) {
    out.AppendCopy(v, best[footprint]);
  }
  if (stats != nullptr) stats->rows_out += out.size();
  return out;
}

}  // namespace robopt
