#include "core/operations.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <string>
#include <unordered_map>

#include "common/check.h"

namespace robopt {
namespace {

/// Encodes operator `op` executed by allowed alternative `allowed_index`
/// into a zeroed feature row + assignment row.
void EncodeSingleton(const EnumerationContext& ctx, OperatorId op,
                     size_t allowed_index, float* f, uint8_t* a) {
  const FeatureSchema& schema = *ctx.schema;
  const LogicalOperator& logical_op = ctx.plan->op(op);
  const LogicalOpKind kind = logical_op.kind;
  const Topology topology = ctx.topologies[op];
  const uint8_t alt = ctx.allowed_alts[op][allowed_index];

  // Topology region: this operator's own contribution to the plan-level
  // counts (a loop is counted once, on its LoopBegin).
  if (topology == Topology::kLoop) {
    if (kind == LogicalOpKind::kLoopBegin) {
      f[schema.TopologyCell(Topology::kLoop)] += 1.0f;
    }
  } else {
    f[schema.TopologyCell(topology)] += 1.0f;
  }

  // Operator block.
  f[schema.OpCountCell(kind)] += 1.0f;
  f[schema.OpAltCell(kind, alt)] += 1.0f;
  f[schema.OpTopologyCell(kind, topology)] += 1.0f;
  f[schema.OpUdfCell(kind)] += static_cast<float>(logical_op.udf);
  const float iters = static_cast<float>(ctx.loop_iters[op]);
  f[schema.OpInCardCell(kind)] +=
      static_cast<float>(ctx.cards.input[op]) * iters;
  f[schema.OpOutCardCell(kind)] +=
      static_cast<float>(ctx.cards.output[op]) * iters;

  // Dataset region (max-merged).
  f[schema.TupleSizeCell()] =
      std::max(f[schema.TupleSizeCell()],
               static_cast<float>(logical_op.tuple_bytes));

  a[op] = alt + 1;
}

}  // namespace

StatusOr<EnumerationContext> EnumerationContext::Make(
    const LogicalPlan* plan, const PlatformRegistry* registry,
    const FeatureSchema* schema, const Cardinalities* cards,
    uint64_t allowed_platform_mask) {
  ROBOPT_RETURN_IF_ERROR(plan->Validate());
  EnumerationContext ctx;
  ctx.plan = plan;
  ctx.registry = registry;
  ctx.schema = schema;
  if (cards != nullptr) {
    ctx.cards = *cards;
  } else {
    ctx.cards = CardinalityEstimator(plan).Estimate();
  }
  ctx.topologies = plan->OperatorTopologies();

  const int n = plan->num_operators();
  ctx.loop_iters.resize(n);
  for (int i = 0; i < n; ++i) {
    ctx.loop_iters[i] = plan->LoopIterations(static_cast<OperatorId>(i));
  }
  ctx.allowed_alts.resize(n);
  ctx.alt_platform.resize(n);
  for (const LogicalOperator& op : plan->operators()) {
    const auto& alts = registry->AlternativesFor(op.kind);
    for (size_t a = 0; a < alts.size(); ++a) {
      ctx.alt_platform[op.id].push_back(alts[a].platform);
      if ((allowed_platform_mask >> alts[a].platform) & 1ull) {
        ctx.allowed_alts[op.id].push_back(static_cast<uint8_t>(a));
      }
    }
    if (ctx.allowed_alts[op.id].empty() &&
        (op.kind == LogicalOpKind::kCollectionSource ||
         op.kind == LogicalOpKind::kCollectionSink)) {
      // Driver-side collections are pinned to the driver platform (Rheem's
      // CollectionSource/Sink live in the Java driver); they stay available
      // even under a restricted platform mask (e.g. single-platform mode,
      // or an all-Postgres plan whose result must reach the application).
      for (size_t a = 0; a < alts.size(); ++a) {
        ctx.allowed_alts[op.id].push_back(static_cast<uint8_t>(a));
      }
    }
    if (ctx.allowed_alts[op.id].empty()) {
      return Status::InvalidArgument(
          "operator " + op.name + " (" + std::string(ToString(op.kind)) +
          ") has no execution alternative on the allowed platforms");
    }
  }

  for (const LogicalOperator& op : plan->operators()) {
    for (OperatorId child : plan->AllChildren(op.id)) {
      ctx.edges.push_back(Edge{op.id, child});
    }
  }

  const size_t k = static_cast<size_t>(registry->num_platforms());
  ctx.conv_cell_count.assign(k, std::vector<size_t>(k, SIZE_MAX));
  ctx.conv_cell_in.assign(k, std::vector<size_t>(k, SIZE_MAX));
  ctx.conv_cell_out.assign(k, std::vector<size_t>(k, SIZE_MAX));
  for (size_t from = 0; from < k; ++from) {
    for (size_t to = 0; to < k; ++to) {
      if (from == to) continue;
      const ConversionKind kind =
          ConversionFor(registry->platform(static_cast<PlatformId>(from)).cls,
                        registry->platform(static_cast<PlatformId>(to)).cls);
      ctx.conv_cell_count[from][to] =
          schema->ConvPlatformCell(kind, static_cast<PlatformId>(from));
      ctx.conv_cell_in[from][to] = schema->ConvInCardCell(kind);
      ctx.conv_cell_out[from][to] = schema->ConvOutCardCell(kind);
    }
  }
  return ctx;
}

AbstractPlanVector Vectorize(const EnumerationContext& ctx) {
  const FeatureSchema& schema = *ctx.schema;
  const LogicalPlan& plan = *ctx.plan;
  AbstractPlanVector v;
  v.features.assign(schema.width(), 0.0f);

  // Exact plan-level topology histogram (the enumeration reconstructs an
  // approximation of this via the merge rule; vectorize is exact).
  const TopologyCounts counts = plan.CountTopologies();
  v.features[schema.TopologyCell(Topology::kPipeline)] =
      static_cast<float>(counts.pipeline);
  v.features[schema.TopologyCell(Topology::kJuncture)] =
      static_cast<float>(counts.juncture);
  v.features[schema.TopologyCell(Topology::kReplicate)] =
      static_cast<float>(counts.replicate);
  v.features[schema.TopologyCell(Topology::kLoop)] =
      static_cast<float>(counts.loop);

  for (const LogicalOperator& op : plan.operators()) {
    v.ops.push_back(op.id);
    const LogicalOpKind kind = op.kind;
    v.features[schema.OpCountCell(kind)] += 1.0f;
    // -1 marks "one of the allowed alternatives" (the paper's abstract
    // plan vector).
    for (uint8_t alt : ctx.allowed_alts[op.id]) {
      v.features[schema.OpAltCell(kind, alt)] = -1.0f;
    }
    v.features[schema.OpTopologyCell(kind, ctx.topologies[op.id])] += 1.0f;
    v.features[schema.OpUdfCell(kind)] += static_cast<float>(op.udf);
    const float iters = static_cast<float>(ctx.loop_iters[op.id]);
    v.features[schema.OpInCardCell(kind)] +=
        static_cast<float>(ctx.cards.input[op.id]) * iters;
    v.features[schema.OpOutCardCell(kind)] +=
        static_cast<float>(ctx.cards.output[op.id]) * iters;
    v.features[schema.TupleSizeCell()] = std::max(
        v.features[schema.TupleSizeCell()],
        static_cast<float>(op.tuple_bytes));
  }
  return v;
}

std::vector<AbstractPlanVector> Split(const EnumerationContext& ctx,
                                      const AbstractPlanVector& v) {
  std::vector<AbstractPlanVector> out;
  out.reserve(v.ops.size());
  for (OperatorId op : v.ops) {
    AbstractPlanVector single;
    single.ops = {op};
    single.features.assign(ctx.schema->width(), 0.0f);
    const LogicalOpKind kind = ctx.plan->op(op).kind;
    single.features[ctx.schema->OpCountCell(kind)] = 1.0f;
    for (uint8_t alt : ctx.allowed_alts[op]) {
      single.features[ctx.schema->OpAltCell(kind, alt)] = -1.0f;
    }
    out.push_back(std::move(single));
  }
  return out;
}

std::vector<OperatorId> ComputeBoundary(const EnumerationContext& ctx,
                                        const Scope& scope) {
  std::vector<OperatorId> boundary;
  std::vector<uint8_t> is_boundary(ctx.plan->num_operators(), 0);
  for (const EnumerationContext::Edge& edge : ctx.edges) {
    const bool from_in = scope.test(edge.from);
    const bool to_in = scope.test(edge.to);
    if (from_in && !to_in) is_boundary[edge.from] = 1;
    if (!from_in && to_in) is_boundary[edge.to] = 1;
  }
  for (size_t i = 0; i < is_boundary.size(); ++i) {
    if (is_boundary[i]) boundary.push_back(static_cast<OperatorId>(i));
  }
  return boundary;
}

PlanVectorEnumeration Enumerate(const EnumerationContext& ctx,
                                const AbstractPlanVector& v) {
  // Fold the singleton enumerations together: enumerate(v̄) ==
  // concat(enumerate(v̄_1), ..., enumerate(v̄_m)). Conversions between the
  // scoped operators are accounted for by Concat.
  PlanVectorEnumeration acc(ctx.schema->width(),
                            ctx.plan->num_operators());
  bool first = true;
  for (OperatorId op : v.ops) {
    PlanVectorEnumeration single(ctx.schema->width(),
                                 ctx.plan->num_operators());
    single.mutable_scope().set(op);
    single.set_boundary(ComputeBoundary(ctx, single.scope()));
    for (size_t i = 0; i < ctx.allowed_alts[op].size(); ++i) {
      const size_t row = single.AppendZero();
      EncodeSingleton(ctx, op, i, single.features(row),
                      single.assignment(row));
    }
    if (first) {
      acc = std::move(single);
      first = false;
    } else {
      acc = Concat(ctx, acc, single);
    }
  }
  return acc;
}

void MergeRows(const EnumerationContext& ctx, const PlanVectorEnumeration& a,
               size_t row_a, const PlanVectorEnumeration& b, size_t row_b,
               PlanVectorEnumeration* out) {
  const FeatureSchema& schema = *ctx.schema;
  const size_t width = schema.width();
  const size_t row = out->AppendZero();
  float* f = out->features(row);
  const float* fa = a.features(row_a);
  const float* fb = b.features(row_b);
  // Cell-wise addition over the contiguous row — the hot loop the compiler
  // vectorizes.
  for (size_t c = 0; c < width; ++c) f[c] = fa[c] + fb[c];
  // The two max-merged cells (pipeline count, tuple size).
  const size_t pipeline_cell = schema.TopologyCell(Topology::kPipeline);
  f[pipeline_cell] = std::max(fa[pipeline_cell], fb[pipeline_cell]);
  const size_t tuple_cell = schema.TupleSizeCell();
  f[tuple_cell] = std::max(fa[tuple_cell], fb[tuple_cell]);

  // Assignments are disjoint: bytewise OR.
  uint8_t* assign = out->assignment(row);
  const uint8_t* aa = a.assignment(row_a);
  const uint8_t* ab = b.assignment(row_b);
  const size_t num_ops = out->num_ops();
  for (size_t i = 0; i < num_ops; ++i) assign[i] = aa[i] | ab[i];

  // Conversion accounting on edges crossing the two scopes.
  uint16_t switches = a.switches(row_a) + b.switches(row_b);
  for (const EnumerationContext::Edge& edge : ctx.edges) {
    const bool a_from = a.scope().test(edge.from);
    const bool b_from = b.scope().test(edge.from);
    const bool a_to = a.scope().test(edge.to);
    const bool b_to = b.scope().test(edge.to);
    if (!((a_from && b_to) || (b_from && a_to))) continue;
    const PlatformId from = ctx.PlatformOfAssignment(assign, edge.from);
    const PlatformId to = ctx.PlatformOfAssignment(assign, edge.to);
    if (from == to) continue;
    const float conv_iters = static_cast<float>(
        std::min(ctx.loop_iters[edge.from], ctx.loop_iters[edge.to]));
    const float tuples =
        static_cast<float>(ctx.cards.output[edge.from]) * conv_iters;
    f[ctx.conv_cell_count[from][to]] += conv_iters;
    f[ctx.conv_cell_in[from][to]] += tuples;
    f[ctx.conv_cell_out[from][to]] += tuples;
    ++switches;
  }
  out->set_switches(row, switches);
}

PlanVectorEnumeration Concat(const EnumerationContext& ctx,
                             const PlanVectorEnumeration& a,
                             const PlanVectorEnumeration& b) {
  ROBOPT_DCHECK((a.scope() & b.scope()).none());
  PlanVectorEnumeration out(a.width(), a.num_ops());
  out.mutable_scope() = a.scope() | b.scope();
  out.set_boundary(ComputeBoundary(ctx, out.scope()));
  out.Reserve(a.size() * b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < b.size(); ++j) {
      MergeRows(ctx, a, i, b, j, &out);
    }
  }
  return out;
}

PlanVectorEnumeration PruneBoundary(const EnumerationContext& ctx,
                                    const PlanVectorEnumeration& v,
                                    const CostOracle& oracle,
                                    PruneStats* stats) {
  PlanVectorEnumeration out(v.width(), v.num_ops());
  out.mutable_scope() = v.scope();
  out.set_boundary(v.boundary());
  if (stats != nullptr) stats->rows_in += v.size();
  if (v.size() <= 1) {
    for (size_t i = 0; i < v.size(); ++i) out.AppendCopy(v, i);
    if (stats != nullptr) stats->rows_out += out.size();
    return out;
  }

  // One batch oracle call over the whole contiguous pool — no per-subplan
  // transformation.
  std::vector<float> costs(v.size());
  oracle.EstimateBatch(v.feature_pool().data(), v.size(), v.width(),
                       costs.data());

  // Group rows by pruning footprint: the *platform* of every boundary
  // operator (Definition 2); keep the cheapest row per footprint.
  const std::vector<OperatorId>& boundary = v.boundary();
  std::unordered_map<std::string, size_t> best;  // footprint -> row.
  std::vector<std::pair<std::string, size_t>> order;  // First-seen order.
  std::string key(boundary.size(), '\0');
  for (size_t row = 0; row < v.size(); ++row) {
    const uint8_t* assign = v.assignment(row);
    for (size_t bi = 0; bi < boundary.size(); ++bi) {
      key[bi] = static_cast<char>(
          ctx.PlatformOfAssignment(assign, boundary[bi]) + 1);
    }
    auto [it, inserted] = best.try_emplace(key, row);
    if (inserted) {
      order.emplace_back(key, row);
    } else if (costs[row] < costs[it->second]) {
      it->second = row;
    }
  }
  for (auto& [footprint, first_row] : order) {
    out.AppendCopy(v, best[footprint]);
  }
  if (stats != nullptr) stats->rows_out += out.size();
  return out;
}

PlanVectorEnumeration PruneSwitchCap(const EnumerationContext& ctx,
                                     const PlanVectorEnumeration& v, int beta,
                                     PruneStats* stats) {
  (void)ctx;
  PlanVectorEnumeration out(v.width(), v.num_ops());
  out.mutable_scope() = v.scope();
  out.set_boundary(v.boundary());
  if (stats != nullptr) stats->rows_in += v.size();
  for (size_t row = 0; row < v.size(); ++row) {
    if (v.switches(row) <= beta) out.AppendCopy(v, row);
  }
  if (stats != nullptr) stats->rows_out += out.size();
  return out;
}

ExecutionPlan Unvectorize(const EnumerationContext& ctx,
                          const PlanVectorEnumeration& v, size_t row) {
  ExecutionPlan plan(ctx.plan, ctx.registry);
  const uint8_t* assign = v.assignment(row);
  for (const LogicalOperator& op : ctx.plan->operators()) {
    if (assign[op.id] != 0) plan.Assign(op.id, assign[op.id] - 1);
  }
  return plan;
}

size_t ArgMinCost(const EnumerationContext& ctx,
                  const PlanVectorEnumeration& v, const CostOracle& oracle,
                  float* cost_out) {
  (void)ctx;
  ROBOPT_CHECK(v.size() > 0);
  std::vector<float> costs(v.size());
  oracle.EstimateBatch(v.feature_pool().data(), v.size(), v.width(),
                       costs.data());
  size_t best = 0;
  for (size_t row = 1; row < v.size(); ++row) {
    if (costs[row] < costs[best]) best = row;
  }
  if (cost_out != nullptr) *cost_out = costs[best];
  return best;
}

std::vector<float> EncodeAssignment(const EnumerationContext& ctx,
                                    const uint8_t* assignment) {
  const FeatureSchema& schema = *ctx.schema;
  const LogicalPlan& plan = *ctx.plan;
  std::vector<float> f(schema.width(), 0.0f);
  bool any_pipeline = false;
  for (const LogicalOperator& op : plan.operators()) {
    if (assignment[op.id] == 0) continue;
    const uint8_t alt = assignment[op.id] - 1;
    const Topology topology = ctx.topologies[op.id];
    if (topology == Topology::kLoop) {
      if (op.kind == LogicalOpKind::kLoopBegin) {
        f[schema.TopologyCell(Topology::kLoop)] += 1.0f;
      }
    } else if (topology == Topology::kPipeline) {
      any_pipeline = true;  // The merge rule keeps max(...) = 1.
    } else {
      f[schema.TopologyCell(topology)] += 1.0f;
    }
    f[schema.OpCountCell(op.kind)] += 1.0f;
    f[schema.OpAltCell(op.kind, alt)] += 1.0f;
    f[schema.OpTopologyCell(op.kind, topology)] += 1.0f;
    f[schema.OpUdfCell(op.kind)] += static_cast<float>(op.udf);
    const float iters = static_cast<float>(ctx.loop_iters[op.id]);
    f[schema.OpInCardCell(op.kind)] +=
        static_cast<float>(ctx.cards.input[op.id]) * iters;
    f[schema.OpOutCardCell(op.kind)] +=
        static_cast<float>(ctx.cards.output[op.id]) * iters;
    f[schema.TupleSizeCell()] = std::max(
        f[schema.TupleSizeCell()], static_cast<float>(op.tuple_bytes));
  }
  if (any_pipeline) f[schema.TopologyCell(Topology::kPipeline)] = 1.0f;

  for (const EnumerationContext::Edge& edge : ctx.edges) {
    if (assignment[edge.from] == 0 || assignment[edge.to] == 0) continue;
    const PlatformId from = ctx.PlatformOfAssignment(assignment, edge.from);
    const PlatformId to = ctx.PlatformOfAssignment(assignment, edge.to);
    if (from == to) continue;
    const float conv_iters = static_cast<float>(
        std::min(ctx.loop_iters[edge.from], ctx.loop_iters[edge.to]));
    const float tuples =
        static_cast<float>(ctx.cards.output[edge.from]) * conv_iters;
    f[ctx.conv_cell_count[from][to]] += conv_iters;
    f[ctx.conv_cell_in[from][to]] += tuples;
    f[ctx.conv_cell_out[from][to]] += tuples;
  }
  return f;
}

ExecutionPlan AssignmentToPlan(const EnumerationContext& ctx,
                               const uint8_t* assignment) {
  ExecutionPlan plan(ctx.plan, ctx.registry);
  for (const LogicalOperator& op : ctx.plan->operators()) {
    if (assignment[op.id] != 0) plan.Assign(op.id, assignment[op.id] - 1);
  }
  return plan;
}

}  // namespace robopt
