#include "core/operations.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "common/thread_pool.h"
#include "ml/simd_dispatch.h"

namespace robopt {
namespace {

/// Encodes operator `op` executed by allowed alternative `allowed_index`
/// into a zeroed feature row + assignment row.
void EncodeSingleton(const EnumerationContext& ctx, OperatorId op,
                     size_t allowed_index, float* f, uint8_t* a) {
  const FeatureSchema& schema = *ctx.schema;
  const LogicalOperator& logical_op = ctx.plan->op(op);
  const LogicalOpKind kind = logical_op.kind;
  const Topology topology = ctx.topologies[op];
  const uint8_t alt = ctx.allowed_alts[op][allowed_index];

  // Topology region: this operator's own contribution to the plan-level
  // counts (a loop is counted once, on its LoopBegin).
  if (topology == Topology::kLoop) {
    if (kind == LogicalOpKind::kLoopBegin) {
      f[schema.TopologyCell(Topology::kLoop)] += 1.0f;
    }
  } else {
    f[schema.TopologyCell(topology)] += 1.0f;
  }

  // Operator block.
  f[schema.OpCountCell(kind)] += 1.0f;
  f[schema.OpAltCell(kind, alt)] += 1.0f;
  f[schema.OpTopologyCell(kind, topology)] += 1.0f;
  f[schema.OpUdfCell(kind)] += static_cast<float>(logical_op.udf);
  const float iters = static_cast<float>(ctx.loop_iters[op]);
  f[schema.OpInCardCell(kind)] +=
      static_cast<float>(ctx.cards.input[op]) * iters;
  f[schema.OpOutCardCell(kind)] +=
      static_cast<float>(ctx.cards.output[op]) * iters;

  // Dataset region (max-merged).
  f[schema.TupleSizeCell()] =
      std::max(f[schema.TupleSizeCell()],
               static_cast<float>(logical_op.tuple_bytes));

  a[op] = alt + 1;
}

}  // namespace

StatusOr<EnumerationContext> EnumerationContext::Make(
    const LogicalPlan* plan, const PlatformRegistry* registry,
    const FeatureSchema* schema, const Cardinalities* cards,
    uint64_t allowed_platform_mask) {
  ROBOPT_RETURN_IF_ERROR(plan->Validate());
  EnumerationContext ctx;
  ctx.plan = plan;
  ctx.registry = registry;
  ctx.schema = schema;
  if (cards != nullptr) {
    ctx.cards = *cards;
  } else {
    ctx.cards = CardinalityEstimator(plan).Estimate();
  }
  ctx.topologies = plan->OperatorTopologies();

  const int n = plan->num_operators();
  ctx.loop_iters.resize(n);
  for (int i = 0; i < n; ++i) {
    ctx.loop_iters[i] = plan->LoopIterations(static_cast<OperatorId>(i));
  }
  ctx.allowed_alts.resize(n);
  ctx.alt_platform.resize(n);
  for (const LogicalOperator& op : plan->operators()) {
    const auto& alts = registry->AlternativesFor(op.kind);
    for (size_t a = 0; a < alts.size(); ++a) {
      ctx.alt_platform[op.id].push_back(alts[a].platform);
      if ((allowed_platform_mask >> alts[a].platform) & 1ull) {
        ctx.allowed_alts[op.id].push_back(static_cast<uint8_t>(a));
      }
    }
    if (ctx.allowed_alts[op.id].empty() &&
        (op.kind == LogicalOpKind::kCollectionSource ||
         op.kind == LogicalOpKind::kCollectionSink)) {
      // Driver-side collections are pinned to the driver platform (Rheem's
      // CollectionSource/Sink live in the Java driver); they stay available
      // even under a restricted platform mask (e.g. single-platform mode,
      // or an all-Postgres plan whose result must reach the application).
      for (size_t a = 0; a < alts.size(); ++a) {
        ctx.allowed_alts[op.id].push_back(static_cast<uint8_t>(a));
      }
    }
    if (ctx.allowed_alts[op.id].empty()) {
      return Status::InvalidArgument(
          "operator " + op.name + " (" + std::string(ToString(op.kind)) +
          ") has no execution alternative on the allowed platforms");
    }
  }

  for (const LogicalOperator& op : plan->operators()) {
    for (OperatorId child : plan->AllChildren(op.id)) {
      ctx.edges.push_back(Edge{op.id, child});
    }
  }

  const size_t k = static_cast<size_t>(registry->num_platforms());
  ctx.conv_cell_count.assign(k, std::vector<size_t>(k, SIZE_MAX));
  ctx.conv_cell_in.assign(k, std::vector<size_t>(k, SIZE_MAX));
  ctx.conv_cell_out.assign(k, std::vector<size_t>(k, SIZE_MAX));
  for (size_t from = 0; from < k; ++from) {
    for (size_t to = 0; to < k; ++to) {
      if (from == to) continue;
      const ConversionKind kind =
          ConversionFor(registry->platform(static_cast<PlatformId>(from)).cls,
                        registry->platform(static_cast<PlatformId>(to)).cls);
      ctx.conv_cell_count[from][to] =
          schema->ConvPlatformCell(kind, static_cast<PlatformId>(from));
      ctx.conv_cell_in[from][to] = schema->ConvInCardCell(kind);
      ctx.conv_cell_out[from][to] = schema->ConvOutCardCell(kind);
    }
  }
  return ctx;
}

AbstractPlanVector Vectorize(const EnumerationContext& ctx) {
  const FeatureSchema& schema = *ctx.schema;
  const LogicalPlan& plan = *ctx.plan;
  AbstractPlanVector v;
  v.features.assign(schema.width(), 0.0f);

  // Exact plan-level topology histogram (the enumeration reconstructs an
  // approximation of this via the merge rule; vectorize is exact).
  const TopologyCounts counts = plan.CountTopologies();
  v.features[schema.TopologyCell(Topology::kPipeline)] =
      static_cast<float>(counts.pipeline);
  v.features[schema.TopologyCell(Topology::kJuncture)] =
      static_cast<float>(counts.juncture);
  v.features[schema.TopologyCell(Topology::kReplicate)] =
      static_cast<float>(counts.replicate);
  v.features[schema.TopologyCell(Topology::kLoop)] =
      static_cast<float>(counts.loop);

  for (const LogicalOperator& op : plan.operators()) {
    v.ops.push_back(op.id);
    const LogicalOpKind kind = op.kind;
    v.features[schema.OpCountCell(kind)] += 1.0f;
    // -1 marks "one of the allowed alternatives" (the paper's abstract
    // plan vector).
    for (uint8_t alt : ctx.allowed_alts[op.id]) {
      v.features[schema.OpAltCell(kind, alt)] = -1.0f;
    }
    v.features[schema.OpTopologyCell(kind, ctx.topologies[op.id])] += 1.0f;
    v.features[schema.OpUdfCell(kind)] += static_cast<float>(op.udf);
    const float iters = static_cast<float>(ctx.loop_iters[op.id]);
    v.features[schema.OpInCardCell(kind)] +=
        static_cast<float>(ctx.cards.input[op.id]) * iters;
    v.features[schema.OpOutCardCell(kind)] +=
        static_cast<float>(ctx.cards.output[op.id]) * iters;
    v.features[schema.TupleSizeCell()] = std::max(
        v.features[schema.TupleSizeCell()],
        static_cast<float>(op.tuple_bytes));
  }
  return v;
}

std::vector<AbstractPlanVector> Split(const EnumerationContext& ctx,
                                      const AbstractPlanVector& v) {
  std::vector<AbstractPlanVector> out;
  out.reserve(v.ops.size());
  for (OperatorId op : v.ops) {
    AbstractPlanVector single;
    single.ops = {op};
    single.features.assign(ctx.schema->width(), 0.0f);
    const LogicalOpKind kind = ctx.plan->op(op).kind;
    single.features[ctx.schema->OpCountCell(kind)] = 1.0f;
    for (uint8_t alt : ctx.allowed_alts[op]) {
      single.features[ctx.schema->OpAltCell(kind, alt)] = -1.0f;
    }
    out.push_back(std::move(single));
  }
  return out;
}

std::vector<OperatorId> ComputeBoundary(const EnumerationContext& ctx,
                                        const Scope& scope) {
  std::vector<OperatorId> boundary;
  std::vector<uint8_t> is_boundary(ctx.plan->num_operators(), 0);
  for (const EnumerationContext::Edge& edge : ctx.edges) {
    const bool from_in = scope.test(edge.from);
    const bool to_in = scope.test(edge.to);
    if (from_in && !to_in) is_boundary[edge.from] = 1;
    if (!from_in && to_in) is_boundary[edge.to] = 1;
  }
  for (size_t i = 0; i < is_boundary.size(); ++i) {
    if (is_boundary[i]) boundary.push_back(static_cast<OperatorId>(i));
  }
  return boundary;
}

PlanVectorEnumeration Enumerate(const EnumerationContext& ctx,
                                const AbstractPlanVector& v) {
  // Fold the singleton enumerations together: enumerate(v̄) ==
  // concat(enumerate(v̄_1), ..., enumerate(v̄_m)). Conversions between the
  // scoped operators are accounted for by Concat.
  PlanVectorEnumeration acc(ctx.schema->width(),
                            ctx.plan->num_operators());
  bool first = true;
  for (OperatorId op : v.ops) {
    PlanVectorEnumeration single(ctx.schema->width(),
                                 ctx.plan->num_operators());
    single.mutable_scope().set(op);
    single.set_boundary(ComputeBoundary(ctx, single.scope()));
    single.ReserveAdditional(ctx.allowed_alts[op].size());
    for (size_t i = 0; i < ctx.allowed_alts[op].size(); ++i) {
      const size_t row = single.AppendZero();
      EncodeSingleton(ctx, op, i, single.features(row),
                      single.assignment(row));
    }
    if (first) {
      acc = std::move(single);
      first = false;
    } else {
      acc = Concat(ctx, acc, single);
    }
  }
  return acc;
}

void MergeRows(const EnumerationContext& ctx, const PlanVectorEnumeration& a,
               size_t row_a, const PlanVectorEnumeration& b, size_t row_b,
               PlanVectorEnumeration* out) {
  MergeRowsAt(ctx, a, row_a, b, row_b, out, out->AppendZero());
}

void MergeRowsAt(const EnumerationContext& ctx, const PlanVectorEnumeration& a,
                 size_t row_a, const PlanVectorEnumeration& b, size_t row_b,
                 PlanVectorEnumeration* out, size_t row) {
  const FeatureSchema& schema = *ctx.schema;
  const size_t width = schema.width();
  float* f = out->features(row);
  const float* fa = a.features(row_a);
  const float* fb = b.features(row_b);
  // Cell-wise addition over the contiguous row — the Concat pair-space
  // sweep's hot loop, through the active SIMD lane.
  simd::Ops().add_rows_f32(f, fa, fb, width);
  // The two max-merged cells (pipeline count, tuple size).
  const size_t pipeline_cell = schema.TopologyCell(Topology::kPipeline);
  f[pipeline_cell] = std::max(fa[pipeline_cell], fb[pipeline_cell]);
  const size_t tuple_cell = schema.TupleSizeCell();
  f[tuple_cell] = std::max(fa[tuple_cell], fb[tuple_cell]);

  // Assignments are disjoint: bytewise OR.
  uint8_t* assign = out->assignment(row);
  const uint8_t* aa = a.assignment(row_a);
  const uint8_t* ab = b.assignment(row_b);
  simd::Ops().or_bytes(assign, aa, ab, out->num_ops());

  // Conversion accounting on edges crossing the two scopes.
  uint16_t switches = a.switches(row_a) + b.switches(row_b);
  for (const EnumerationContext::Edge& edge : ctx.edges) {
    const bool a_from = a.scope().test(edge.from);
    const bool b_from = b.scope().test(edge.from);
    const bool a_to = a.scope().test(edge.to);
    const bool b_to = b.scope().test(edge.to);
    if (!((a_from && b_to) || (b_from && a_to))) continue;
    const PlatformId from = ctx.PlatformOfAssignment(assign, edge.from);
    const PlatformId to = ctx.PlatformOfAssignment(assign, edge.to);
    if (from == to) continue;
    const float conv_iters = static_cast<float>(
        std::min(ctx.loop_iters[edge.from], ctx.loop_iters[edge.to]));
    const float tuples =
        static_cast<float>(ctx.cards.output[edge.from]) * conv_iters;
    f[ctx.conv_cell_count[from][to]] += conv_iters;
    f[ctx.conv_cell_in[from][to]] += tuples;
    f[ctx.conv_cell_out[from][to]] += tuples;
    ++switches;
  }
  out->set_switches(row, switches);
}

namespace {

/// Minimum rows a shard must own before forking pays for itself.
constexpr size_t kParallelGrainRows = 1024;

}  // namespace

PlanVectorEnumeration Concat(const EnumerationContext& ctx,
                             const PlanVectorEnumeration& a,
                             const PlanVectorEnumeration& b,
                             int num_threads) {
  ROBOPT_DCHECK((a.scope() & b.scope()).none());
  PlanVectorEnumeration out(a.width(), a.num_ops());
  out.mutable_scope() = a.scope() | b.scope();
  out.set_boundary(ComputeBoundary(ctx, out.scope()));
  const size_t rows = a.size() * b.size();
  if (num_threads <= 1 || rows < 2 * kParallelGrainRows) {
    out.Reserve(rows);
    for (size_t i = 0; i < a.size(); ++i) {
      for (size_t j = 0; j < b.size(); ++j) {
        MergeRows(ctx, a, i, b, j, &out);
      }
    }
    return out;
  }
  // Shard the flattened (i, j) pair space: row r of the output is the merge
  // of a[r / |b|] with b[r % |b|], exactly the serial (i-major) order, so
  // each shard fills a disjoint contiguous row range of the preallocated
  // pool and the result is bit-identical for every thread count.
  out.AppendZeroRows(rows);
  const size_t b_rows = b.size();
  ParallelFor(num_threads, 0, rows, kParallelGrainRows,
              [&](size_t begin, size_t end) {
                for (size_t r = begin; r < end; ++r) {
                  MergeRowsAt(ctx, a, r / b_rows, b, r % b_rows, &out, r);
                }
              });
  return out;
}

namespace {

/// Boundaries of up to this many operators pack into one uint64_t footprint
/// key (one platform byte per boundary operator, 0xff = unassigned).
constexpr size_t kPackedFootprintOps = 8;

/// Footprint grouping core: returns the kept row per footprint, in the
/// serial first-seen footprint order with the serial tie-break (a later row
/// replaces the group's champion only when strictly cheaper). Shards the
/// row range into contiguous per-thread maps and reduces them in ascending
/// shard order, which reproduces the serial semantics exactly because every
/// row of shard s precedes every row of shard s+1.
template <typename Key, typename KeyFn>
std::vector<size_t> GroupFootprints(size_t rows, const float* costs,
                                    const KeyFn& key_of, int num_threads) {
  struct Shard {
    std::unordered_map<Key, size_t> best;           // footprint -> row.
    std::vector<std::pair<Key, size_t>> order;      // First-seen order.
  };
  auto scan = [&](size_t begin, size_t end, Shard* shard) {
    for (size_t row = begin; row < end; ++row) {
      auto [it, inserted] = shard->best.try_emplace(key_of(row), row);
      if (inserted) {
        shard->order.emplace_back(it->first, row);
      } else if (costs[row] < costs[it->second]) {
        it->second = row;
      }
    }
  };

  const size_t shard_count =
      num_threads <= 1
          ? 1
          : std::min<size_t>(static_cast<size_t>(num_threads),
                             rows / kParallelGrainRows);
  if (shard_count <= 1) {
    Shard all;
    scan(0, rows, &all);
    std::vector<size_t> kept;
    kept.reserve(all.order.size());
    for (const auto& [key, first_row] : all.order) {
      kept.push_back(all.best[key]);
    }
    return kept;
  }

  std::vector<Shard> shards(shard_count);
  std::vector<size_t> starts(shard_count + 1, 0);
  const size_t base = rows / shard_count;
  const size_t extra = rows % shard_count;
  for (size_t s = 0; s < shard_count; ++s) {
    starts[s + 1] = starts[s] + base + (s < extra ? 1 : 0);
  }
  ParallelFor(num_threads, 0, shard_count, 1, [&](size_t s0, size_t s1) {
    for (size_t s = s0; s < s1; ++s) scan(starts[s], starts[s + 1], &shards[s]);
  });

  std::unordered_map<Key, size_t> best;
  std::vector<Key> order;
  for (const Shard& shard : shards) {
    for (const auto& [key, first_row] : shard.order) {
      const size_t row = shard.best.at(key);
      auto [it, inserted] = best.try_emplace(key, row);
      if (inserted) {
        order.push_back(key);
      } else if (costs[row] < costs[it->second]) {
        it->second = row;
      }
    }
  }
  std::vector<size_t> kept;
  kept.reserve(order.size());
  for (const Key& key : order) kept.push_back(best[key]);
  return kept;
}

/// Packed-footprint grouping: same contract as GroupFootprints (kept row
/// per footprint, serial first-seen order, strictly-cheaper tie-break), but
/// the footprint store is a dense first-seen-ordered uint64 array probed
/// with the SIMD dispatch shim's vector key compare instead of a hash map.
/// Distinct footprints are few in the common case (platforms^|boundary|,
/// tens on real plans), so the whole key array sits in a couple of cache
/// lines and a linear vector probe beats hashing + pointer chasing. When a
/// wide boundary does explode the footprint set, the shard migrates to a
/// hash index at kFlatFootprintCap keys — the probe's O(distinct) cost must
/// not go quadratic — while the dense arrays keep carrying the first-seen
/// order and champions.
constexpr size_t kFlatFootprintCap = 512;

template <typename KeyFn>
std::vector<size_t> GroupFootprintsPacked(size_t rows, const float* costs,
                                          const KeyFn& key_of,
                                          int num_threads) {
  struct Shard {
    std::vector<uint64_t> keys;  ///< Distinct footprints, first-seen order.
    std::vector<size_t> best;    ///< Champion row per key, parallel.
    /// footprint -> slot in keys/best; engaged past kFlatFootprintCap.
    std::unordered_map<uint64_t, size_t> index;
  };
  const auto find_u64 = simd::Ops().find_u64;
  auto insert = [&](Shard* shard, uint64_t key, size_t row) {
    size_t slot;
    if (shard->index.empty()) {
      slot = find_u64(shard->keys.data(), shard->keys.size(), key);
      if (slot == shard->keys.size()) {
        shard->keys.push_back(key);
        shard->best.push_back(row);
        if (shard->keys.size() >= kFlatFootprintCap) {
          shard->index.reserve(2 * shard->keys.size());
          for (size_t i = 0; i < shard->keys.size(); ++i) {
            shard->index.emplace(shard->keys[i], i);
          }
        }
        return;
      }
    } else {
      const auto [it, inserted] =
          shard->index.try_emplace(key, shard->keys.size());
      if (inserted) {
        shard->keys.push_back(key);
        shard->best.push_back(row);
        return;
      }
      slot = it->second;
    }
    if (costs[row] < costs[shard->best[slot]]) shard->best[slot] = row;
  };
  auto scan = [&](size_t begin, size_t end, Shard* shard) {
    for (size_t row = begin; row < end; ++row) {
      insert(shard, key_of(row), row);
    }
  };

  const size_t shard_count =
      num_threads <= 1
          ? 1
          : std::min<size_t>(static_cast<size_t>(num_threads),
                             rows / kParallelGrainRows);
  if (shard_count <= 1) {
    Shard all;
    scan(0, rows, &all);
    return std::move(all.best);
  }

  std::vector<Shard> shards(shard_count);
  std::vector<size_t> starts(shard_count + 1, 0);
  const size_t base = rows / shard_count;
  const size_t extra = rows % shard_count;
  for (size_t s = 0; s < shard_count; ++s) {
    starts[s + 1] = starts[s] + base + (s < extra ? 1 : 0);
  }
  ParallelFor(num_threads, 0, shard_count, 1, [&](size_t s0, size_t s1) {
    for (size_t s = s0; s < s1; ++s) scan(starts[s], starts[s + 1], &shards[s]);
  });

  // Ascending shard order reproduces the serial first-seen order and
  // tie-break exactly: every row of shard s precedes every row of s+1.
  Shard merged;
  for (const Shard& shard : shards) {
    for (size_t i = 0; i < shard.keys.size(); ++i) {
      insert(&merged, shard.keys[i], shard.best[i]);
    }
  }
  return std::move(merged.best);
}

}  // namespace

PlanVectorEnumeration PruneBoundary(
    const EnumerationContext& ctx, const PlanVectorEnumeration& v,
    const CostOracle& oracle, PruneStats* stats, int num_threads,
    std::vector<std::pair<size_t, float>>* cheapest_out, size_t cheapest_k) {
  if (cheapest_out != nullptr) cheapest_out->clear();
  PlanVectorEnumeration out(v.width(), v.num_ops());
  out.mutable_scope() = v.scope();
  out.set_boundary(v.boundary());
  if (stats != nullptr) stats->rows_in += v.size();
  if (v.size() <= 1) {
    for (size_t i = 0; i < v.size(); ++i) out.AppendCopy(v, i);
    if (stats != nullptr) stats->rows_out += out.size();
    return out;
  }

  // One batch oracle call over the whole contiguous pool — no per-subplan
  // transformation. (An ML oracle parallelizes internally over row blocks;
  // see RandomForest::PredictBatch.)
  std::vector<float> costs(v.size());
  oracle.EstimateBatch(v.feature_pool().data(), v.size(), v.width(),
                       costs.data());

  if (cheapest_out != nullptr && cheapest_k > 0) {
    // Runner-up harvest off the batch just computed: the k cheapest input
    // rows by (cost, row index) — the same tie order as the argmin scan.
    // k is tiny (top_k + 1), so a bounded insertion scan beats building an
    // index vector: one pass, no allocation on the prune hot path (the
    // caller reuses cheapest_out's capacity across calls).
    const size_t keep = std::min(cheapest_k, v.size());
    cheapest_out->reserve(keep);
    for (size_t row = 0; row < v.size(); ++row) {
      const float cost = costs[row];
      if (cheapest_out->size() == keep &&
          cost >= cheapest_out->back().second) {
        continue;  // Ties lose to the earlier row already held.
      }
      size_t pos = cheapest_out->size();
      while (pos > 0 && (*cheapest_out)[pos - 1].second > cost) --pos;
      cheapest_out->insert(cheapest_out->begin() + pos, {row, cost});
      if (cheapest_out->size() > keep) cheapest_out->pop_back();
    }
  }

  // Group rows by pruning footprint: the *platform* of every boundary
  // operator (Definition 2); keep the cheapest row per footprint.
  const std::vector<OperatorId>& boundary = v.boundary();
  std::vector<size_t> kept;
  if (boundary.size() <= kPackedFootprintOps) {
    const auto key_of = [&](size_t row) {
      const uint8_t* assign = v.assignment(row);
      uint64_t key = 0;
      for (size_t bi = 0; bi < boundary.size(); ++bi) {
        key |= static_cast<uint64_t>(
                   ctx.PlatformOfAssignment(assign, boundary[bi]))
               << (8 * bi);
      }
      return key;
    };
    kept = GroupFootprintsPacked(v.size(), costs.data(), key_of, num_threads);
  } else {
    // Wide-boundary fallback (more than 8 boundary operators): the original
    // string keys, same grouping semantics.
    const auto key_of = [&](size_t row) {
      const uint8_t* assign = v.assignment(row);
      std::string key(boundary.size(), '\0');
      for (size_t bi = 0; bi < boundary.size(); ++bi) {
        key[bi] = static_cast<char>(
            ctx.PlatformOfAssignment(assign, boundary[bi]) + 1);
      }
      return key;
    };
    kept = GroupFootprints<std::string>(v.size(), costs.data(), key_of,
                                        num_threads);
  }

  // Exact-size reservation: one output row per distinct footprint.
  out.Reserve(kept.size());
  for (size_t row : kept) out.AppendCopy(v, row);
  if (stats != nullptr) stats->rows_out += out.size();
  return out;
}

PlanVectorEnumeration PruneSwitchCap(const EnumerationContext& ctx,
                                     const PlanVectorEnumeration& v, int beta,
                                     PruneStats* stats) {
  (void)ctx;
  PlanVectorEnumeration out(v.width(), v.num_ops());
  out.mutable_scope() = v.scope();
  out.set_boundary(v.boundary());
  if (stats != nullptr) stats->rows_in += v.size();
  // Count survivors first so the append loop reserves exactly once.
  size_t surviving = 0;
  for (size_t row = 0; row < v.size(); ++row) {
    if (v.switches(row) <= beta) ++surviving;
  }
  out.Reserve(surviving);
  for (size_t row = 0; row < v.size(); ++row) {
    if (v.switches(row) <= beta) out.AppendCopy(v, row);
  }
  if (stats != nullptr) stats->rows_out += out.size();
  return out;
}

ExecutionPlan Unvectorize(const EnumerationContext& ctx,
                          const PlanVectorEnumeration& v, size_t row) {
  ExecutionPlan plan(ctx.plan, ctx.registry);
  const uint8_t* assign = v.assignment(row);
  for (const LogicalOperator& op : ctx.plan->operators()) {
    if (assign[op.id] != 0) plan.Assign(op.id, assign[op.id] - 1);
  }
  return plan;
}

size_t ArgMinCost(const EnumerationContext& ctx,
                  const PlanVectorEnumeration& v, const CostOracle& oracle,
                  float* cost_out, int num_threads,
                  std::vector<float>* costs_out) {
  (void)ctx;
  ROBOPT_CHECK(v.size() > 0);
  std::vector<float> costs(v.size());
  oracle.EstimateBatch(v.feature_pool().data(), v.size(), v.width(),
                       costs.data());
  size_t best = 0;
  const size_t shard_count =
      num_threads <= 1
          ? 1
          : std::min<size_t>(static_cast<size_t>(num_threads),
                             v.size() / kParallelGrainRows);
  if (shard_count <= 1) {
    for (size_t row = 1; row < v.size(); ++row) {
      if (costs[row] < costs[best]) best = row;
    }
  } else {
    // Per-shard argmin, reduced in ascending shard order with a strict "<"
    // so ties resolve to the earliest row, as in the serial scan.
    std::vector<size_t> shard_best(shard_count, 0);
    std::vector<size_t> starts(shard_count + 1, 0);
    const size_t base = v.size() / shard_count;
    const size_t extra = v.size() % shard_count;
    for (size_t s = 0; s < shard_count; ++s) {
      starts[s + 1] = starts[s] + base + (s < extra ? 1 : 0);
    }
    ParallelFor(num_threads, 0, shard_count, 1, [&](size_t s0, size_t s1) {
      for (size_t s = s0; s < s1; ++s) {
        size_t local = starts[s];
        for (size_t row = starts[s] + 1; row < starts[s + 1]; ++row) {
          if (costs[row] < costs[local]) local = row;
        }
        shard_best[s] = local;
      }
    });
    best = shard_best[0];
    for (size_t s = 1; s < shard_count; ++s) {
      if (costs[shard_best[s]] < costs[best]) best = shard_best[s];
    }
  }
  if (cost_out != nullptr) *cost_out = costs[best];
  if (costs_out != nullptr) *costs_out = std::move(costs);
  return best;
}

std::vector<float> EncodeAssignment(const EnumerationContext& ctx,
                                    const uint8_t* assignment) {
  const FeatureSchema& schema = *ctx.schema;
  const LogicalPlan& plan = *ctx.plan;
  std::vector<float> f(schema.width(), 0.0f);
  bool any_pipeline = false;
  for (const LogicalOperator& op : plan.operators()) {
    if (assignment[op.id] == 0) continue;
    const uint8_t alt = assignment[op.id] - 1;
    const Topology topology = ctx.topologies[op.id];
    if (topology == Topology::kLoop) {
      if (op.kind == LogicalOpKind::kLoopBegin) {
        f[schema.TopologyCell(Topology::kLoop)] += 1.0f;
      }
    } else if (topology == Topology::kPipeline) {
      any_pipeline = true;  // The merge rule keeps max(...) = 1.
    } else {
      f[schema.TopologyCell(topology)] += 1.0f;
    }
    f[schema.OpCountCell(op.kind)] += 1.0f;
    f[schema.OpAltCell(op.kind, alt)] += 1.0f;
    f[schema.OpTopologyCell(op.kind, topology)] += 1.0f;
    f[schema.OpUdfCell(op.kind)] += static_cast<float>(op.udf);
    const float iters = static_cast<float>(ctx.loop_iters[op.id]);
    f[schema.OpInCardCell(op.kind)] +=
        static_cast<float>(ctx.cards.input[op.id]) * iters;
    f[schema.OpOutCardCell(op.kind)] +=
        static_cast<float>(ctx.cards.output[op.id]) * iters;
    f[schema.TupleSizeCell()] = std::max(
        f[schema.TupleSizeCell()], static_cast<float>(op.tuple_bytes));
  }
  if (any_pipeline) f[schema.TopologyCell(Topology::kPipeline)] = 1.0f;

  for (const EnumerationContext::Edge& edge : ctx.edges) {
    if (assignment[edge.from] == 0 || assignment[edge.to] == 0) continue;
    const PlatformId from = ctx.PlatformOfAssignment(assignment, edge.from);
    const PlatformId to = ctx.PlatformOfAssignment(assignment, edge.to);
    if (from == to) continue;
    const float conv_iters = static_cast<float>(
        std::min(ctx.loop_iters[edge.from], ctx.loop_iters[edge.to]));
    const float tuples =
        static_cast<float>(ctx.cards.output[edge.from]) * conv_iters;
    f[ctx.conv_cell_count[from][to]] += conv_iters;
    f[ctx.conv_cell_in[from][to]] += tuples;
    f[ctx.conv_cell_out[from][to]] += tuples;
  }
  return f;
}

ExecutionPlan AssignmentToPlan(const EnumerationContext& ctx,
                               const uint8_t* assignment) {
  ExecutionPlan plan(ctx.plan, ctx.registry);
  for (const LogicalOperator& op : ctx.plan->operators()) {
    if (assignment[op.id] != 0) plan.Assign(op.id, assignment[op.id] - 1);
  }
  return plan;
}

}  // namespace robopt
