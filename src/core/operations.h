#ifndef ROBOPT_CORE_OPERATIONS_H_
#define ROBOPT_CORE_OPERATIONS_H_

#include <vector>

#include "common/status.h"
#include "core/cost_oracle.h"
#include "core/feature_schema.h"
#include "core/plan_vector.h"
#include "plan/cardinality.h"
#include "platform/execution_plan.h"

namespace robopt {

/// Everything the algebraic operations need about one optimization run:
/// the plan, the catalog, the vector schema, (injected or estimated)
/// cardinalities, and pre-resolved lookup tables so the per-row merge loop
/// touches only flat arrays.
struct EnumerationContext {
  const LogicalPlan* plan = nullptr;
  const PlatformRegistry* registry = nullptr;
  const FeatureSchema* schema = nullptr;
  Cardinalities cards;
  std::vector<Topology> topologies;
  /// Loop multiplier per operator: cardinality features encode the *total*
  /// tuples an operator processes across loop iterations, so the model can
  /// tell a 10-iteration loop from a 1000-iteration one.
  std::vector<int> loop_iters;

  /// Allowed execution alternatives per operator (restricted by platform
  /// mask), as indices into registry->AlternativesFor(kind).
  std::vector<std::vector<uint8_t>> allowed_alts;
  /// alt_platform[op][alt] = platform of that alternative.
  std::vector<std::vector<PlatformId>> alt_platform;

  /// All edges (data + broadcast), for cross-scope conversion accounting.
  struct Edge {
    OperatorId from;
    OperatorId to;
  };
  std::vector<Edge> edges;

  /// conv_cell_*[from_platform][to_platform]: pre-resolved feature cells for
  /// a conversion between two platforms (SIZE_MAX on the diagonal).
  std::vector<std::vector<size_t>> conv_cell_count;
  std::vector<std::vector<size_t>> conv_cell_in;
  std::vector<std::vector<size_t>> conv_cell_out;

  /// Builds a context. If `cards` is null, cardinalities are estimated from
  /// operator selectivities; the paper's evaluation injects real ones.
  /// `allowed_platform_mask` restricts the search to a platform subset (bit
  /// i = platform id i).
  static StatusOr<EnumerationContext> Make(
      const LogicalPlan* plan, const PlatformRegistry* registry,
      const FeatureSchema* schema, const Cardinalities* cards = nullptr,
      uint64_t allowed_platform_mask = ~0ull);

  /// Platform chosen for `op` by an assignment row (0xff if unassigned).
  PlatformId PlatformOfAssignment(const uint8_t* assignment,
                                  OperatorId op) const {
    const uint8_t alt_plus_one = assignment[op];
    if (alt_plus_one == 0) return 0xff;
    return alt_platform[op][alt_plus_one - 1];
  }
};

// ---------------------------------------------------------------------------
// The seven algebraic operations of Section IV. Names follow the paper.
// ---------------------------------------------------------------------------

/// (1) vectorize(p) -> v̄ : the abstract plan vector of the whole plan, with
/// -1 in every allowed execution-alternative cell.
AbstractPlanVector Vectorize(const EnumerationContext& ctx);

/// (4) split(v̄) -> {v̄_1, ...} : singleton abstract vectors, one per operator
/// (the granularity Algorithm 1 starts from).
std::vector<AbstractPlanVector> Split(const EnumerationContext& ctx,
                                      const AbstractPlanVector& v);

/// (2) enumerate(v̄) -> V : instantiates every execution alternative
/// combination of the abstract vector's scope. Exponential in |scope|; the
/// enumeration algorithm applies it to singletons only.
PlanVectorEnumeration Enumerate(const EnumerationContext& ctx,
                                const AbstractPlanVector& v);

/// (5)+(6) iterate + merge, fused: concatenates two enumerations into the
/// enumeration of the union scope — all |V1| x |V2| pairwise merges, each a
/// flat float-array addition plus conversion accounting on scope-crossing
/// edges. This fusion over a contiguous pool is the vectorized fast path
/// the paper's Figure 1 measures.
///
/// With `num_threads > 1` the flattened (row_a, row_b) pair space is sharded
/// into contiguous chunks, each merged by one pool thread directly into its
/// slice of the preallocated output. Row order and content are bit-identical
/// to the serial path for every thread count; `num_threads <= 1` runs the
/// original serial loop.
PlanVectorEnumeration Concat(const EnumerationContext& ctx,
                             const PlanVectorEnumeration& a,
                             const PlanVectorEnumeration& b,
                             int num_threads = 1);

/// (6) merge(v1, v2) -> v for a single pair of rows (exposed for tests and
/// for the paper-faithful formulation; Concat is the batched form).
void MergeRows(const EnumerationContext& ctx, const PlanVectorEnumeration& a,
               size_t row_a, const PlanVectorEnumeration& b, size_t row_b,
               PlanVectorEnumeration* out);

/// merge into a preexisting (zeroed) row `row` of `out` — the form the
/// sharded Concat uses so threads can write disjoint row ranges in place.
void MergeRowsAt(const EnumerationContext& ctx, const PlanVectorEnumeration& a,
                 size_t row_a, const PlanVectorEnumeration& b, size_t row_b,
                 PlanVectorEnumeration* out, size_t row);

/// Boundary operators of a scope: members adjacent (data or broadcast edge)
/// to at least one operator outside the scope.
std::vector<OperatorId> ComputeBoundary(const EnumerationContext& ctx,
                                        const Scope& scope);

struct PruneStats {
  size_t rows_in = 0;
  size_t rows_out = 0;
};

/// (7) prune(V, m) -> V' : the boundary pruning of Definition 2 — groups
/// rows by the platforms of the scope's boundary operators (the pruning
/// footprint) and keeps the cheapest row of each group according to the
/// oracle. Lossless w.r.t. the oracle.
///
/// Footprints of up to 8 boundary operators are packed into a `uint64_t`
/// key (one platform byte per boundary operator); larger boundaries fall
/// back to string keys. With `num_threads > 1` the rows are sharded into
/// per-thread footprint maps that are reduced in ascending shard order,
/// reproducing the serial first-seen group order and earliest-row
/// tie-breaking exactly.
/// With `cheapest_out` non-null and `cheapest_k > 0`, additionally reports
/// the `cheapest_k` cheapest *input* rows as (row, cost) pairs ascending by
/// (cost, row index) — reusing the batch the prune computes anyway, so the
/// diagnostics runner-up harvest costs zero extra oracle work. Left empty
/// when `v` has at most one row (no batch is computed). The pruned output,
/// every stat and the oracle row count are identical either way.
PlanVectorEnumeration PruneBoundary(
    const EnumerationContext& ctx, const PlanVectorEnumeration& v,
    const CostOracle& oracle, PruneStats* stats = nullptr,
    int num_threads = 1,
    std::vector<std::pair<size_t, float>>* cheapest_out = nullptr,
    size_t cheapest_k = 0);

/// TDGEN's alternative prune: drops rows with more than `beta` platform
/// switches (Section VI-A); keeps everything else.
PlanVectorEnumeration PruneSwitchCap(const EnumerationContext& ctx,
                                     const PlanVectorEnumeration& v, int beta,
                                     PruneStats* stats = nullptr);

/// (3) unvectorize(v) -> p : reads the assignment bytes of row `row` back
/// into an executable ExecutionPlan (via the LOT; conversions — the COT —
/// are implied by the assignment).
ExecutionPlan Unvectorize(const EnumerationContext& ctx,
                          const PlanVectorEnumeration& v, size_t row);

/// getOptimal: index of the cheapest row according to the oracle (batch
/// evaluated); `cost_out` receives its predicted cost if non-null. The scan
/// shards with `num_threads` (earliest-row tie-breaking, so the winner is
/// thread-count-independent); the oracle batch itself parallelizes inside
/// the model (see RandomForest::PredictBatch). `costs_out`, when non-null,
/// receives the whole per-row cost vector the scan already computed —
/// diagnostics (top-k runner-up plans) read it for free, with zero extra
/// oracle work.
size_t ArgMinCost(const EnumerationContext& ctx,
                  const PlanVectorEnumeration& v, const CostOracle& oracle,
                  float* cost_out = nullptr, int num_threads = 1,
                  std::vector<float>* costs_out = nullptr);

/// Re-encodes a full-plan assignment (one byte per operator, alt index + 1)
/// into a feature row under `ctx`'s cardinalities. TDGEN uses this to
/// instantiate one enumerated plan structure under many configuration
/// profiles (input sizes) without re-running the enumeration.
std::vector<float> EncodeAssignment(const EnumerationContext& ctx,
                                    const uint8_t* assignment);

/// Builds an ExecutionPlan directly from an assignment row.
ExecutionPlan AssignmentToPlan(const EnumerationContext& ctx,
                               const uint8_t* assignment);

}  // namespace robopt

#endif  // ROBOPT_CORE_OPERATIONS_H_
