#ifndef ROBOPT_CORE_PRIORITY_ENUMERATION_H_
#define ROBOPT_CORE_PRIORITY_ENUMERATION_H_

#include <vector>

#include "common/status.h"
#include "core/operations.h"
#include "obs/profile.h"

namespace robopt {

/// Order in which partial plan vector enumerations are concatenated.
enum class PriorityMode {
  /// The paper's priority (Definition 3): |V| x prod |children| — largest
  /// prospective concatenation first, maximizing the pruning effect.
  kPaper,
  /// Classic top-down (sink-side first), obtained by redefining priority as
  /// distance from the sources (Section V-B's discussion).
  kTopDown,
  /// Classic bottom-up (source-side first): distance from the sink.
  kBottomUp,
};

enum class PruneMode {
  kNone,       ///< Exhaustive enumeration (the "w/o pruning" rows of Table I).
  kBoundary,   ///< Lossless boundary pruning (Definition 2) via the oracle.
  kSwitchCap,  ///< TDGEN's platform-switch-count heuristic (beta).
};

struct EnumeratorOptions {
  PriorityMode priority = PriorityMode::kPaper;
  PruneMode prune = PruneMode::kBoundary;
  /// Max platform switches kept by kSwitchCap.
  int beta = 3;
  /// Safety valve for exhaustive runs; exceeded -> ResourceExhausted.
  size_t max_vectors = 200u * 1000u * 1000u;
  /// If nonzero, stride-subsample each pruned enumeration down to this many
  /// rows. TDGEN uses it to bound the switch-capped candidate pool (a
  /// practical cap; Robopt's optimizing mode leaves it off).
  size_t max_rows_per_enumeration = 0;
  /// Threads for the vector-algebra hot path (sharded Concat, footprint
  /// grouping, argmin scan). 0 = hardware concurrency; 1 = the exact serial
  /// code path. Results are bit-identical for every value (see DESIGN.md,
  /// "Threading model & determinism").
  int num_threads = 0;
  /// Observability sinks (tracer spans per phase; see DESIGN.md,
  /// "Observability"). The enumeration result is bit-identical whether
  /// these are set or not.
  ObsOptions obs;
  /// When non-null, per-phase wall micros and pruning splits accumulate
  /// here (the optimizer points this at OptimizeResult::profile).
  OptimizeProfile* profile = nullptr;
  /// Diagnostics: also report the k next-cheapest rows of the final
  /// enumeration (EnumerationResult::runner_up_rows), reusing the cost
  /// batch the final getOptimal computed anyway — zero extra oracle work.
  /// 0 (default) skips the selection. The chosen plan and every stat are
  /// bit-identical for any value.
  size_t top_k_runners = 0;
};

struct EnumerationStats {
  /// Plan vectors materialized across all concatenations (the paper's
  /// "number of enumerated subplans", Table I). Includes singletons.
  size_t vectors_created = 0;
  /// Rows removed by pruning.
  size_t vectors_pruned = 0;
  /// Rows in the final enumeration.
  size_t final_vectors = 0;
  /// Concat operations performed.
  size_t concat_steps = 0;
  /// Rows sent to the cost oracle (model invocations).
  size_t oracle_rows = 0;
  size_t oracle_batches = 0;
};

struct EnumerationResult {
  ExecutionPlan plan;
  float predicted_runtime_s = 0.0f;
  EnumerationStats stats;
  /// The final (pruned) enumeration over the full scope; TDGEN consumes all
  /// of its rows as candidate training plans.
  PlanVectorEnumeration final_enumeration{0, 0};
  /// Row of final_enumeration the winner came from (getOptimal's argmin).
  size_t best_row = 0;
  /// With EnumeratorOptions::top_k_runners > 0: the next-cheapest full
  /// plans after the winner, ascending by predicted cost, as (assignment
  /// bytes, cost) pairs (assignment layout as in PlanVectorEnumeration).
  /// Sourced from the final getOptimal cost batch *and* — under
  /// PruneMode::kBoundary — from the final prune's batch, whose discarded
  /// rows are the real runner-ups when the prune collapses the final set
  /// to a single footprint. Empty otherwise; serving is bit-identical for
  /// any value of top_k_runners.
  std::vector<std::pair<std::vector<uint8_t>, float>> runner_ups;

  EnumerationResult() : plan(nullptr, nullptr) {}
};

/// Algorithm 1: priority-based plan enumeration built from the algebraic
/// operations — vectorize+split into singletons, enumerate each, then
/// concatenate in priority order, pruning after every child concatenation.
/// Lossless pruning makes the result optimal w.r.t. the oracle.
class PriorityEnumerator {
 public:
  /// `ctx` and `oracle` must outlive the enumerator. The oracle is used both
  /// for pruning (kBoundary) and for the final getOptimal step.
  PriorityEnumerator(const EnumerationContext* ctx, const CostOracle* oracle,
                     EnumeratorOptions options = {});

  StatusOr<EnumerationResult> Run();

 private:
  double PriorityOf(size_t index) const;

  const EnumerationContext* ctx_;
  const CostOracle* oracle_;
  EnumeratorOptions options_;
  int num_threads_;  ///< options_.num_threads with 0 resolved to hardware.

  std::vector<PlanVectorEnumeration> enums_;
  std::vector<uint8_t> alive_;
  std::vector<size_t> owner_;     // op id -> enumeration index.
  std::vector<uint64_t> seq_;     // Queue-entry order for tie-breaking.
  std::vector<int> dist_to_sink_;
  std::vector<int> dist_to_source_;
};

}  // namespace robopt

#endif  // ROBOPT_CORE_PRIORITY_ENUMERATION_H_
