#include "core/cost_oracle.h"

#include <algorithm>
#include <cstring>

namespace robopt {
namespace {

/// Keep the table at most ~70% full so probe chains stay short and an empty
/// slot always terminates the scan.
constexpr size_t kLoadNumerator = 7;
constexpr size_t kLoadDenominator = 10;

}  // namespace

/// Four-lane multiply-mix over the row's bytes, folded into two
/// independently mixed 64-bit outputs. Four accumulators keep the
/// multiplies pipelined (a single FNV-style chain is latency-bound and was
/// the warm-path bottleneck at plan-vector widths of a few hundred floats);
/// the tail handles the final <32 bytes. Lane `a` buckets the tables; the
/// (a, b) pair is the 128-bit table fingerprint, and in-batch dedup
/// additionally byte-verifies, so distribution matters more than
/// cryptographic strength.
CachingCostOracle::RowHash CachingCostOracle::HashRow(const float* row,
                                                      size_t dim) {
  constexpr uint64_t kMul = 0x9ddfea08eb382d69ull;
  constexpr uint64_t kMul2 = 0xc2b2ae3d27d4eb4full;
  const auto* p = reinterpret_cast<const unsigned char*>(row);
  size_t bytes = dim * sizeof(float);
  uint64_t h0 = 0x243f6a8885a308d3ull;
  uint64_t h1 = 0x13198a2e03707344ull;
  uint64_t h2 = 0xa4093822299f31d0ull;
  uint64_t h3 = 0x082efa98ec4e6c89ull;
  while (bytes >= 32) {
    uint64_t w0, w1, w2, w3;
    std::memcpy(&w0, p, 8);
    std::memcpy(&w1, p + 8, 8);
    std::memcpy(&w2, p + 16, 8);
    std::memcpy(&w3, p + 24, 8);
    h0 = (h0 ^ w0) * kMul;
    h1 = (h1 ^ w1) * kMul;
    h2 = (h2 ^ w2) * kMul;
    h3 = (h3 ^ w3) * kMul;
    p += 32;
    bytes -= 32;
  }
  while (bytes >= 8) {
    uint64_t w;
    std::memcpy(&w, p, 8);
    h0 = (h0 ^ w) * kMul;
    p += 8;
    bytes -= 8;
  }
  if (bytes > 0) {  // Rows are whole floats, so the tail is 4 bytes.
    uint32_t w = 0;
    std::memcpy(&w, p, bytes);
    h1 = (h1 ^ w) * kMul;
  }
  RowHash hash;
  hash.a = (h0 ^ (h1 >> 29)) + (h2 ^ (h3 >> 31)) * kMul;
  hash.a ^= hash.a >> 33;
  hash.a *= kMul;
  hash.a ^= hash.a >> 29;
  hash.b = (h1 ^ (h2 >> 27)) + (h3 ^ (h0 >> 25)) * kMul2;
  hash.b ^= hash.b >> 31;
  hash.b *= kMul2;
  hash.b ^= hash.b >> 27;
  return hash;
}

void CachingCostOracle::Configure(size_t dim) const {
  dim_ = dim;
  size_t capacity = 0;
  if (budget_bytes_ >= 2 * sizeof(Slot)) {
    capacity = 2;
    while (capacity * 2 * sizeof(Slot) <= budget_bytes_ &&
           capacity < (size_t{1} << 31)) {
      capacity *= 2;
    }
  }
  capacity_ = capacity;
  max_live_ = capacity == 0
                  ? 0
                  : std::max<size_t>(1, capacity * kLoadNumerator /
                                            kLoadDenominator);
  gen_ = 1;
  live_ = 0;
  // calloc: zeroed pages arrive lazily from the kernel on first touch, so
  // configuring a multi-megabyte table is O(1), not an upfront fill.
  slots_.reset(capacity != 0 ? static_cast<Slot*>(
                                   std::calloc(capacity, sizeof(Slot)))
                             : nullptr);
  if (capacity != 0 && slots_ == nullptr) {
    capacity_ = 0;  // Allocation failed: fall back to dedup-only mode.
    max_live_ = 0;
  }
  stats_.capacity = capacity_;
}

size_t CachingCostOracle::FindLive(RowHash hash) const {
  const size_t mask = capacity_ - 1;
  size_t i = hash.a & mask;
  while (slots_[i].gen == gen_) {
    if (slots_[i].hash_a == hash.a && slots_[i].hash_b == hash.b) return i;
    i = (i + 1) & mask;
  }
  return SIZE_MAX;
}

void CachingCostOracle::Insert(RowHash hash, float prediction) const {
  if (live_ >= max_live_) {
    // Generation eviction: bumping gen_ logically empties every slot at
    // once. Old entries are overwritten as probes land on them.
    ++gen_;
    live_ = 0;
    ++stats_.evictions;
  }
  const size_t mask = capacity_ - 1;
  size_t i = hash.a & mask;
  while (slots_[i].gen == gen_) i = (i + 1) & mask;
  slots_[i] = Slot{hash.a, hash.b, gen_, prediction};
  ++live_;
}

void CachingCostOracle::EstimateBatch(const float* x, size_t n, size_t dim,
                                      float* out) const {
  // Count on the wrapper mirrors the uncached oracle exactly, so enumerator
  // instrumentation (EnumerationStats::oracle_rows) is cache-invariant; the
  // inner oracle's own counters see only the unique misses.
  Count(n);
  if (n == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (dim != dim_) Configure(dim);
  stats_.rows += n;

  // Flat open-addressing index over this batch's unique miss rows: slot ->
  // unique id, hash-verified then byte-verified against unique_buf_. Sized
  // to <= 50% load; rebuilt (one memset) per batch.
  size_t index_size = 2;
  while (index_size < 2 * n) index_size *= 2;
  const size_t index_mask = index_size - 1;
  batch_index_.assign(index_size, UINT32_MAX);
  unique_buf_.clear();
  unique_hash_.clear();
  pending_rows_.clear();
  pending_uid_.clear();

  // Pass 1: serve cross-batch hits in place; collect the rest as (row ->
  // unique id), gathering each distinct miss once into unique_buf_.
  //
  // Hashing runs kPrefetchAhead rows in front of probing, buffered in a
  // small ring, so each upcoming table slot is prefetched while earlier
  // rows are processed: the table is usually far larger than cache and a
  // dependent hash-then-probe per row would serialize on DRAM latency.
  constexpr size_t kPrefetchAhead = 8;
  RowHash hash_ring[kPrefetchAhead];
  const size_t lookahead = std::min<size_t>(kPrefetchAhead, n);
  for (size_t i = 0; i < lookahead; ++i) {
    hash_ring[i] = HashRow(x + i * dim, dim);
    if (capacity_ != 0) {
      __builtin_prefetch(&slots_[hash_ring[i].a & (capacity_ - 1)]);
    }
  }
  for (size_t i = 0; i < n; ++i) {
    const float* row = x + i * dim;
    const RowHash hash = hash_ring[i % kPrefetchAhead];
    if (i + lookahead < n) {
      const RowHash next = HashRow(x + (i + lookahead) * dim, dim);
      hash_ring[(i + lookahead) % kPrefetchAhead] = next;
      if (capacity_ != 0) {
        __builtin_prefetch(&slots_[next.a & (capacity_ - 1)]);
      }
    }
    if (capacity_ != 0) {
      const size_t slot = FindLive(hash);
      if (slot != SIZE_MAX) {
        out[i] = slots_[slot].prediction;
        ++stats_.hits;
        continue;
      }
    }
    size_t j = hash.a & index_mask;
    uint32_t uid = UINT32_MAX;
    while (batch_index_[j] != UINT32_MAX) {
      const uint32_t candidate = batch_index_[j];
      if (unique_hash_[candidate].a == hash.a &&
          unique_hash_[candidate].b == hash.b &&
          std::memcmp(unique_buf_.data() + candidate * dim, row,
                      dim * sizeof(float)) == 0) {
        uid = candidate;
        break;
      }
      j = (j + 1) & index_mask;
    }
    if (uid == UINT32_MAX) {
      uid = static_cast<uint32_t>(unique_hash_.size());
      batch_index_[j] = uid;
      unique_hash_.push_back(hash);
      unique_buf_.insert(unique_buf_.end(), row, row + dim);
      ++stats_.unique_rows;
    } else {
      ++stats_.batch_dups;
    }
    pending_rows_.push_back(static_cast<uint32_t>(i));
    pending_uid_.push_back(uid);
  }

  // Pass 2: one inner batch over the unique misses, scattered back in row
  // order; memoize for later batches.
  const size_t n_unique = unique_hash_.size();
  if (n_unique == 0) return;
  unique_out_.resize(n_unique);
  inner_->EstimateBatch(unique_buf_.data(), n_unique, dim, unique_out_.data());
  for (size_t k = 0; k < pending_rows_.size(); ++k) {
    out[pending_rows_[k]] = unique_out_[pending_uid_[k]];
  }
  if (capacity_ != 0) {
    for (size_t u = 0; u < n_unique; ++u) {
      Insert(unique_hash_[u], unique_out_[u]);
    }
  }
}

OracleCacheStats CachingCostOracle::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  OracleCacheStats snapshot = stats_;
  snapshot.entries = live_;
  snapshot.capacity = capacity_;
  return snapshot;
}

}  // namespace robopt
