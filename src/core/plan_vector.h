#ifndef ROBOPT_CORE_PLAN_VECTOR_H_
#define ROBOPT_CORE_PLAN_VECTOR_H_

#include <algorithm>
#include <bitset>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "core/feature_schema.h"
#include "plan/cardinality.h"
#include "plan/logical_plan.h"

namespace robopt {

/// Set of operator ids — the scope `s` of a plan vector enumeration
/// (Definition 1).
using Scope = std::bitset<kMaxPlanOperators>;

/// A plan vector enumeration V = (s, V): a scope plus a *contiguous pool* of
/// plan vectors, one row per alternative execution of the scoped sub-plan.
///
/// Three parallel pools per row:
///   - `features`   : `width` floats — the ML-ready plan vector (Fig. 5);
///   - `assignment` : one byte per plan operator — chosen execution
///                    alternative + 1, 0 where the operator is outside the
///                    scope (this is what unvectorize reads, and what the
///                    pruning footprint is derived from);
///   - `switches`   : running platform-switch count (TDGEN's beta-pruning).
///
/// Contiguity is the point: merge is a flat float-array addition the
/// compiler auto-vectorizes, and prune hands the whole feature pool to the
/// ML model in one batch call — no per-subplan transformation (the paper's
/// central performance argument, Section IV).
class PlanVectorEnumeration {
 public:
  PlanVectorEnumeration(size_t width, size_t num_ops)
      : width_(width), num_ops_(num_ops) {}

  size_t size() const { return size_; }
  size_t width() const { return width_; }
  size_t num_ops() const { return num_ops_; }

  const Scope& scope() const { return scope_; }
  Scope& mutable_scope() { return scope_; }

  /// Boundary operators of the scope, ascending. Shared by all rows;
  /// computed by the enumeration operations when the scope changes.
  const std::vector<OperatorId>& boundary() const { return boundary_; }
  void set_boundary(std::vector<OperatorId> boundary) {
    boundary_ = std::move(boundary);
  }

  float* features(size_t row) { return features_.data() + row * width_; }
  const float* features(size_t row) const {
    return features_.data() + row * width_;
  }
  const std::vector<float>& feature_pool() const { return features_; }

  uint8_t* assignment(size_t row) { return assign_.data() + row * num_ops_; }
  const uint8_t* assignment(size_t row) const {
    return assign_.data() + row * num_ops_;
  }

  uint16_t switches(size_t row) const { return switches_[row]; }
  void set_switches(size_t row, uint16_t value) { switches_[row] = value; }

  /// Appends a zeroed row and returns its index.
  size_t AppendZero() {
    features_.resize(features_.size() + width_, 0.0f);
    assign_.resize(assign_.size() + num_ops_, 0);
    switches_.push_back(0);
    return size_++;
  }

  /// Appends `rows` zeroed rows at once and returns the index of the first.
  /// The parallel Concat preallocates its whole output this way, then lets
  /// each shard fill a disjoint row range in place.
  size_t AppendZeroRows(size_t rows) {
    const size_t first = size_;
    features_.resize(features_.size() + rows * width_, 0.0f);
    assign_.resize(assign_.size() + rows * num_ops_, 0);
    switches_.resize(switches_.size() + rows, 0);
    size_ += rows;
    return first;
  }

  /// Appends a copy of row `row` of `other` (same width/num_ops).
  size_t AppendCopy(const PlanVectorEnumeration& other, size_t row) {
    ROBOPT_DCHECK(other.width_ == width_ && other.num_ops_ == num_ops_);
    features_.insert(features_.end(), other.features(row),
                     other.features(row) + width_);
    assign_.insert(assign_.end(), other.assignment(row),
                   other.assignment(row) + num_ops_);
    switches_.push_back(other.switches(row));
    return size_++;
  }

  void Reserve(size_t rows) {
    features_.reserve(rows * width_);
    assign_.reserve(rows * num_ops_);
    switches_.reserve(rows);
  }

  /// Reserves room for `rows` rows beyond the current size, growing at
  /// least geometrically (2x the current size) so call sites that append
  /// row-by-row stay amortized O(1) across all three pools instead of
  /// reallocating each of them independently per append.
  void ReserveAdditional(size_t rows) {
    const size_t want = size_ + rows;
    if (want * width_ <= features_.capacity() &&
        want * num_ops_ <= assign_.capacity() &&
        want <= switches_.capacity()) {
      return;
    }
    const size_t target = std::max(want, 2 * size_);
    features_.reserve(target * width_);
    assign_.reserve(target * num_ops_);
    switches_.reserve(target);
  }

  /// Drops all rows, keeping scope/boundary and capacity.
  void Clear() {
    features_.clear();
    assign_.clear();
    switches_.clear();
    size_ = 0;
  }

 private:
  size_t width_;
  size_t num_ops_;
  size_t size_ = 0;
  Scope scope_;
  std::vector<OperatorId> boundary_;
  std::vector<float> features_;
  std::vector<uint8_t> assign_;
  std::vector<uint16_t> switches_;
};

/// The abstract plan vector produced by `vectorize`: per-alternative cells
/// hold -1 ("any of these"), everything else is as in a concrete vector.
struct AbstractPlanVector {
  std::vector<OperatorId> ops;  ///< Scope, ascending.
  std::vector<float> features;
};

}  // namespace robopt

#endif  // ROBOPT_CORE_PLAN_VECTOR_H_
