#include "core/optimizer.h"

#include <limits>
#include <memory>

#include "common/stopwatch.h"

namespace robopt {

StatusOr<OptimizeResult> RoboptOptimizer::Optimize(
    const LogicalPlan& plan, const Cardinalities* cards,
    const OptimizeOptions& options) const {
  Stopwatch stopwatch;

  // Pin the model for the whole call: with a provider, every prune and the
  // final getOptimal below share one version even if a newer model is
  // published concurrently (the shared_ptr keeps it alive, RCU-style).
  PinnedOracle pinned;
  const CostOracle* base_oracle = oracle_;
  if (provider_ != nullptr) {
    pinned = provider_->Acquire();
    if (pinned.oracle == nullptr) {
      return Status::Internal("oracle provider has no model published");
    }
    base_oracle = pinned.oracle.get();
  }

  // The memoizing oracle fast path: dedupe and cache cost lookups for this
  // call. Wrapping here means every consumer below — boundary pruning and
  // the final ArgMinCost of each enumerator run — shares one table, so the
  // final getOptimal batch is served entirely from rows the last prune
  // already estimated.
  std::unique_ptr<CachingCostOracle> cache;
  const CostOracle* oracle = base_oracle;
  if (options.oracle_cache_bytes > 0) {
    cache = std::make_unique<CachingCostOracle>(base_oracle,
                                                options.oracle_cache_bytes);
    oracle = cache.get();
  }

  // Effective platform set: the caller's allowance minus the exclusions the
  // fault-recovery path injected (dead platforms' breakers).
  const uint64_t allowed_mask =
      options.allowed_platform_mask & ~options.excluded_platform_mask;

  if (options.single_platform) {
    // Try each allowed platform that can run the whole query; keep the one
    // whose best plan the model predicts fastest. The per-platform search
    // still enumerates same-platform variants (e.g. Spark's two samplers).
    OptimizeResult best;
    best.predicted_runtime_s = std::numeric_limits<float>::infinity();
    bool found = false;
    for (const Platform& platform : registry_->platforms()) {
      if (!((allowed_mask >> platform.id) & 1ull)) continue;
      const uint64_t mask = 1ull << platform.id;
      auto ctx = EnumerationContext::Make(&plan, registry_, schema_, cards,
                                          mask);
      if (!ctx.ok()) continue;  // Platform cannot run some operator.
      EnumeratorOptions enum_options;
      enum_options.priority = options.priority;
      enum_options.prune = options.prune;
      enum_options.num_threads = options.num_threads;
      PriorityEnumerator enumerator(&ctx.value(), oracle, enum_options);
      auto run = enumerator.Run();
      if (!run.ok()) return run.status();
      found = true;
      best.stats.vectors_created += run->stats.vectors_created;
      best.stats.oracle_rows += run->stats.oracle_rows;
      if (run->predicted_runtime_s < best.predicted_runtime_s) {
        best.plan = std::move(run->plan);
        best.predicted_runtime_s = run->predicted_runtime_s;
        best.chosen_platform = platform.id;
      }
    }
    if (!found) {
      return Status::InvalidArgument(
          "no single platform can execute the whole plan");
    }
    if (cache != nullptr) best.oracle_cache = cache->stats();
    best.model_version = pinned.version;
    best.latency_ms = stopwatch.ElapsedMillis();
    return best;
  }

  auto ctx = EnumerationContext::Make(&plan, registry_, schema_, cards,
                                      allowed_mask);
  if (!ctx.ok()) return ctx.status();
  EnumeratorOptions enum_options;
  enum_options.priority = options.priority;
  enum_options.prune = options.prune;
  enum_options.num_threads = options.num_threads;
  PriorityEnumerator enumerator(&ctx.value(), oracle, enum_options);
  auto run = enumerator.Run();
  if (!run.ok()) return run.status();

  OptimizeResult result;
  result.plan = std::move(run->plan);
  result.predicted_runtime_s = run->predicted_runtime_s;
  result.stats = run->stats;
  if (cache != nullptr) result.oracle_cache = cache->stats();
  result.model_version = pinned.version;
  result.latency_ms = stopwatch.ElapsedMillis();
  return result;
}

}  // namespace robopt
