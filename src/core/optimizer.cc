#include "core/optimizer.h"

#include <algorithm>
#include <limits>
#include <memory>

#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace robopt {

namespace {

/// Publishes one finished call's counters into the registry. Counter
/// creation is name-keyed (mutex-guarded, first call only); the updates
/// are sharded relaxed atomic adds. Null metric (type clash) is skipped —
/// observability must never take down the query path.
void PublishOptimizeMetrics(MetricsRegistry* metrics,
                            const OptimizeResult& result) {
  // Every series is created on the first instrumented call — zero values
  // included — so a scrape can tell "ran, saw none" from "never ran". The
  // cache counters are the one exception: they exist only when a cache was
  // actually in play for some call.
  auto add = [metrics](const char* name, size_t n) {
    if (Counter* counter = metrics->GetCounter(name)) counter->Add(n);
  };
  add("robopt_optimize_calls_total", 1);
  add("robopt_optimize_vectors_created_total", result.stats.vectors_created);
  add("robopt_optimize_vectors_pruned_total", result.stats.vectors_pruned);
  add("robopt_optimize_oracle_rows_total", result.stats.oracle_rows);
  add("robopt_optimize_oracle_batches_total", result.stats.oracle_batches);
  if (result.oracle_cache.rows > 0) {
    add("robopt_oracle_cache_hits_total", result.oracle_cache.hits);
    add("robopt_oracle_cache_dups_total", result.oracle_cache.batch_dups);
    add("robopt_oracle_cache_unique_total", result.oracle_cache.unique_rows);
  }
  if (Histogram* latency = metrics->GetHistogram(
          "robopt_optimize_latency_us", Histogram::LatencyBucketsUs())) {
    latency->Observe(result.latency_ms * 1000.0);
  }
}

/// FNV-1a over an assignment row — a stable plan identity for diagnostics.
uint64_t HashAssignment(const uint8_t* bytes, size_t n) {
  uint64_t hash = 1469598103934665603ull;
  for (size_t i = 0; i < n; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace

StatusOr<OptimizeResult> RoboptOptimizer::Optimize(
    const LogicalPlan& plan, const Cardinalities* cards,
    const OptimizeOptions& options) const {
  Stopwatch stopwatch;

  // Observability for this call: a root "optimize" span (children are the
  // enumerator's phases), an optional profile accumulator, and end-of-call
  // counters. Everything below is skipped when options.obs is unset, and
  // results are bit-identical either way.
  const bool obs_on = ROBOPT_OBS_ON(options.obs);
  Tracer* const tracer = obs_on ? options.obs.tracer : nullptr;
  uint64_t trace_id = 0;
  if (tracer != nullptr) {
    trace_id = options.obs.trace_id != 0 ? options.obs.trace_id
                                         : tracer->NewTrace();
  }
  SpanScope root_span(tracer, trace_id, options.obs.parent_span, "optimize");
  OptimizeProfile profile;
  OptimizeProfile* const prof =
      obs_on && options.obs.profile ? &profile : nullptr;
  if (prof != nullptr) {
    profile.enabled = true;
    profile.trace_id = trace_id;
  }

  // Pin the model for the whole call: with a provider, every prune and the
  // final getOptimal below share one version even if a newer model is
  // published concurrently (the shared_ptr keeps it alive, RCU-style).
  PinnedOracle pinned;
  const CostOracle* base_oracle = oracle_;
  bool quantized_used = false;
  if (provider_ != nullptr) {
    pinned = provider_->Acquire();
    if (pinned.oracle == nullptr) {
      return Status::Internal("oracle provider has no model published");
    }
    base_oracle = pinned.oracle.get();
    // Quantized inference is opt-in per call and only served when the
    // pinned model carries a *validated* quantized oracle; otherwise the
    // exact path answers, so an unvalidated table can never serve.
    if (options.quantized_inference && pinned.quantized_oracle != nullptr) {
      base_oracle = pinned.quantized_oracle.get();
      quantized_used = true;
    }
  }

  // The memoizing oracle fast path: dedupe and cache cost lookups for this
  // call. Wrapping here means every consumer below — boundary pruning and
  // the final ArgMinCost of each enumerator run — shares one table, so the
  // final getOptimal batch is served entirely from rows the last prune
  // already estimated.
  std::unique_ptr<CachingCostOracle> cache;
  const CostOracle* oracle = base_oracle;
  if (options.oracle_cache_bytes > 0) {
    cache = std::make_unique<CachingCostOracle>(base_oracle,
                                                options.oracle_cache_bytes);
    oracle = cache.get();
  }

  // Common tail of both search modes: stamp version/cache/latency, fill the
  // profile, close the root span and publish the call's metrics.
  auto finalize = [&](OptimizeResult& result) {
    if (cache != nullptr) result.oracle_cache = cache->stats();
    result.model_version = pinned.version;
    result.quantized_used = quantized_used;
    result.latency_ms = stopwatch.ElapsedMillis();
    if (prof != nullptr) {
      profile.plans_enumerated = result.stats.vectors_created;
      profile.oracle_rows = result.stats.oracle_rows;
      profile.oracle_batches = result.stats.oracle_batches;
      profile.oracle_cache_hits = result.oracle_cache.hits;
      profile.oracle_cache_dups = result.oracle_cache.batch_dups;
      profile.forest_rows_scored = cache != nullptr
                                       ? result.oracle_cache.unique_rows
                                       : result.stats.oracle_rows;
      profile.phase.total_us = result.latency_ms * 1000.0;
      result.profile = profile;
    }
    if (tracer != nullptr) {
      root_span.SetArgA("oracle_rows",
                        static_cast<int64_t>(result.stats.oracle_rows));
      root_span.SetArgB("vectors",
                        static_cast<int64_t>(result.stats.vectors_created));
      root_span.End();
    }
    if (obs_on && options.obs.metrics != nullptr) {
      PublishOptimizeMetrics(options.obs.metrics, result);
    }
  };

  EnumeratorOptions enum_options;
  enum_options.priority = options.priority;
  enum_options.prune = options.prune;
  enum_options.num_threads = options.num_threads;
  enum_options.obs.tracer = tracer;
  enum_options.obs.trace_id = trace_id;
  enum_options.obs.parent_span = root_span.id();
  enum_options.profile = prof;
  enum_options.top_k_runners = options.top_k_runners;

  // Effective platform set: the caller's allowance minus the exclusions the
  // fault-recovery path injected (dead platforms' breakers).
  const uint64_t allowed_mask =
      options.allowed_platform_mask & ~options.excluded_platform_mask;

  if (options.single_platform) {
    // Try each allowed platform that can run the whole query; keep the one
    // whose best plan the model predicts fastest. The per-platform search
    // still enumerates same-platform variants (e.g. Spark's two samplers).
    OptimizeResult best;
    best.predicted_runtime_s = std::numeric_limits<float>::infinity();
    bool found = false;
    // In single-platform mode the natural runner-ups are the *other*
    // platforms' per-platform bests, not same-platform variants.
    std::vector<std::pair<PlatformId, PlanRunnerUp>> per_platform;
    for (const Platform& platform : registry_->platforms()) {
      if (!((allowed_mask >> platform.id) & 1ull)) continue;
      const uint64_t mask = 1ull << platform.id;
      auto ctx = EnumerationContext::Make(&plan, registry_, schema_, cards,
                                          mask);
      if (!ctx.ok()) continue;  // Platform cannot run some operator.
      PriorityEnumerator enumerator(&ctx.value(), oracle, enum_options);
      auto run = enumerator.Run();
      if (!run.ok()) return run.status();
      found = true;
      best.stats.vectors_created += run->stats.vectors_created;
      best.stats.oracle_rows += run->stats.oracle_rows;
      if (options.top_k_runners > 0) {
        PlanRunnerUp entry;
        entry.predicted_runtime_s = run->predicted_runtime_s;
        entry.assignment_hash = HashAssignment(
            run->final_enumeration.assignment(run->best_row),
            run->final_enumeration.num_ops());
        per_platform.emplace_back(platform.id, entry);
      }
      if (run->predicted_runtime_s < best.predicted_runtime_s) {
        best.plan = std::move(run->plan);
        best.predicted_runtime_s = run->predicted_runtime_s;
        best.chosen_platform = platform.id;
      }
    }
    if (!found) {
      return Status::InvalidArgument(
          "no single platform can execute the whole plan");
    }
    if (options.top_k_runners > 0) {
      std::stable_sort(per_platform.begin(), per_platform.end(),
                       [](const auto& a, const auto& b) {
                         return a.second.predicted_runtime_s <
                                b.second.predicted_runtime_s;
                       });
      for (const auto& [platform_id, entry] : per_platform) {
        if (platform_id == best.chosen_platform) continue;
        if (best.runners_up.size() >= options.top_k_runners) break;
        best.runners_up.push_back(entry);
      }
    }
    finalize(best);
    return best;
  }

  auto ctx = EnumerationContext::Make(&plan, registry_, schema_, cards,
                                      allowed_mask);
  if (!ctx.ok()) return ctx.status();
  PriorityEnumerator enumerator(&ctx.value(), oracle, enum_options);
  auto run = enumerator.Run();
  if (!run.ok()) return run.status();

  OptimizeResult result;
  result.plan = std::move(run->plan);
  result.predicted_runtime_s = run->predicted_runtime_s;
  result.stats = run->stats;
  result.runners_up.reserve(run->runner_ups.size());
  for (const auto& [assignment, cost] : run->runner_ups) {
    PlanRunnerUp entry;
    entry.predicted_runtime_s = cost;
    entry.assignment_hash =
        HashAssignment(assignment.data(), assignment.size());
    result.runners_up.push_back(entry);
  }
  finalize(result);
  return result;
}

}  // namespace robopt
