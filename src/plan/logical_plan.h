#ifndef ROBOPT_PLAN_LOGICAL_PLAN_H_
#define ROBOPT_PLAN_LOGICAL_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "plan/operator_kind.h"

namespace robopt {

/// Index of an operator inside one LogicalPlan. Stable for the lifetime of
/// the plan; the paper's LOT (Logical Operators Table) keys on it.
using OperatorId = uint16_t;

inline constexpr OperatorId kInvalidOperatorId = 0xffff;

/// Maximum number of operators a single plan may hold. The paper's largest
/// experiment uses 80 operators; 256 leaves generous headroom while letting
/// scopes be fixed-size bitsets.
inline constexpr int kMaxPlanOperators = 256;

/// The topology context an operator sits in (Section IV-A). A plan can
/// contain several topologies at once; each operator is tagged with one.
enum class Topology : uint8_t {
  kPipeline = 0,
  kJuncture = 1,
  kReplicate = 2,
  kLoop = 3,
};

inline constexpr int kNumTopologies = 4;

std::string_view ToString(Topology topology);

/// Counts of each topology in a plan, e.g., the plan of Fig. 3(a) has
/// {pipeline: 3, juncture: 1, replicate: 0, loop: 0}.
struct TopologyCounts {
  int pipeline = 0;
  int juncture = 0;
  int replicate = 0;
  int loop = 0;
};

/// One platform-agnostic operator instance in a logical plan.
struct LogicalOperator {
  OperatorId id = kInvalidOperatorId;
  LogicalOpKind kind = LogicalOpKind::kMap;
  /// Instance label, e.g. "Filter(month)". Used in dumps and the LOT.
  std::string name;
  /// CPU complexity class of the contained UDF (plan-vector feature).
  UdfComplexity udf = UdfComplexity::kNone;
  /// Output/input cardinality ratio used by the default estimator. Sources
  /// ignore it (their output cardinality is declared); Join interprets it as
  /// the match ratio applied to the probe side.
  double selectivity = 1.0;
  /// Declared output cardinality for sources (#tuples of the input dataset).
  double source_cardinality = 0.0;
  /// Average tuple size in bytes flowing out of this operator.
  double tuple_bytes = 16.0;
  /// Name of the execution kernel in the executor's registry; empty means
  /// the executor falls back to a generic kernel for the operator kind.
  std::string kernel;
  /// Generic operator parameter: batch size for Sample, cluster count for
  /// a k-means update kernel, etc. Interpreted by the kernel.
  double param = 0.0;
  /// LoopBegin only: number of iterations the loop body runs.
  int loop_iterations = 0;
  /// LoopEnd only: id of the matching LoopBegin.
  OperatorId loop_begin = kInvalidOperatorId;
};

/// A directed acyclic dataflow graph of logical operators — the optimizer's
/// input (paper Section III-A). Acyclicity also holds for loops: the
/// LoopBegin/LoopEnd pairing implies the back edge instead of materializing
/// it.
class LogicalPlan {
 public:
  LogicalPlan() = default;

  /// Adds an operator and returns its id. Operators must be added before
  /// being connected.
  OperatorId Add(LogicalOperator op);

  /// Convenience for the common case.
  OperatorId Add(LogicalOpKind kind, std::string name,
                 UdfComplexity udf = UdfComplexity::kNone,
                 double selectivity = 1.0);

  /// Adds the dataflow edge `from -> to`.
  void Connect(OperatorId from, OperatorId to);

  /// Adds a broadcast side-input edge `from -> to`: `to` consumes `from`'s
  /// (small) output as a side channel rather than as its main data stream —
  /// Rheem's broadcast channels, used by K-means/SGD to feed loop-carried
  /// state (centroids, weights) into per-tuple UDFs. Side edges participate
  /// in scheduling, loop membership and data-movement analysis, but not in
  /// stream cardinality propagation or arity validation.
  void ConnectBroadcast(OperatorId from, OperatorId to);

  /// Checks structural well-formedness: every non-source has inputs, binary
  /// operators have exactly two, loops are correctly paired, and the edge
  /// relation is acyclic.
  Status Validate() const;

  int num_operators() const { return static_cast<int>(ops_.size()); }
  const LogicalOperator& op(OperatorId id) const { return ops_[id]; }
  LogicalOperator& mutable_op(OperatorId id) { return ops_[id]; }
  const std::vector<LogicalOperator>& operators() const { return ops_; }

  /// Main dataflow parents/children (side edges excluded).
  const std::vector<OperatorId>& parents(OperatorId id) const {
    return parents_[id];
  }
  const std::vector<OperatorId>& children(OperatorId id) const {
    return children_[id];
  }

  /// Broadcast side-input parents/children.
  const std::vector<OperatorId>& side_parents(OperatorId id) const {
    return side_parents_[id];
  }
  const std::vector<OperatorId>& side_children(OperatorId id) const {
    return side_children_[id];
  }

  /// Union of data and side neighbors (adjacency for boundary analysis).
  std::vector<OperatorId> AllParents(OperatorId id) const;
  std::vector<OperatorId> AllChildren(OperatorId id) const;

  std::vector<OperatorId> SourceIds() const;
  std::vector<OperatorId> SinkIds() const;

  /// Operator ids in a topological order (sources first).
  std::vector<OperatorId> TopologicalOrder() const;

  /// Topology tag of each operator (see Topology). Loop membership wins over
  /// the other classes, junctures over replicates, and anything linear is
  /// pipeline.
  std::vector<Topology> OperatorTopologies() const;

  /// Plan-level topology histogram (the orange features of Fig. 5).
  TopologyCounts CountTopologies() const;

  /// True if `id` lies in a loop body (between a LoopBegin and its LoopEnd,
  /// inclusive).
  bool InLoop(OperatorId id) const;

  /// Number of times `id` executes: 1 outside loops, the product of the
  /// enclosing loops' iteration counts inside.
  int LoopIterations(OperatorId id) const;

  /// Operators forming the body of the loop headed by `begin` (inclusive of
  /// the LoopBegin and its LoopEnd), in no particular order.
  std::vector<OperatorId> LoopBody(OperatorId begin) const;

  /// Multi-line human-readable rendering of the plan (the LOT).
  std::string DebugString() const;

 private:
  void ComputeLoopMembership() const;

  std::vector<LogicalOperator> ops_;
  std::vector<std::vector<OperatorId>> parents_;
  std::vector<std::vector<OperatorId>> children_;
  std::vector<std::vector<OperatorId>> side_parents_;
  std::vector<std::vector<OperatorId>> side_children_;
  // Lazily computed loop membership; invalidated on mutation.
  mutable std::vector<uint8_t> in_loop_;
  mutable std::vector<int> loop_iters_;
  mutable bool loop_dirty_ = true;
};

}  // namespace robopt

#endif  // ROBOPT_PLAN_LOGICAL_PLAN_H_
